#!/usr/bin/env python3
"""Gate a bench_report.py run against a committed baseline.

Compares per-benchmark real_time of a current report to the baseline
(``bench/baseline.json``) and exits non-zero when any benchmark regressed
beyond the threshold. The default threshold is deliberately generous (1.5x)
so shared-runner noise does not flake CI; real kernel regressions are an
order of magnitude above it.

Every mismatch between the two files is a hard failure with the offending
benchmark named: a baseline entry absent from the current run (a benchmark
silently stopped running), a current benchmark absent from the baseline (a
new benchmark was added without committing its baseline entry), and a
malformed entry on either side (missing/non-numeric real_time, unknown
time_unit). A gate that skips what it cannot parse is not a gate.

Usage:
    tools/bench_compare.py current.json bench/baseline.json [--threshold 1.5]
"""

import argparse
import json
import sys

UNIT_TO_NS = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}


def load_benchmarks(path: str, malformed: list) -> dict:
    """Parse ``{"benchmarks": {name: {real_time, time_unit}}}``.

    Structural problems (unreadable file, missing table) abort immediately;
    per-entry problems are recorded in ``malformed`` as ``file:key:
    reason`` so every bad entry is named in one run.
    """
    try:
        with open(path) as fh:
            doc = json.load(fh)
    except (OSError, json.JSONDecodeError) as err:
        sys.exit(f"FAIL: cannot read {path}: {err}")
    table = doc.get("benchmarks")
    if not isinstance(table, dict):
        sys.exit(f"FAIL: {path}: no 'benchmarks' object")
    out = {}
    for name, entry in table.items():
        reason = None
        if not isinstance(entry, dict):
            reason = "entry is not an object"
        elif not isinstance(entry.get("real_time"), (int, float)):
            reason = "missing or non-numeric 'real_time'"
        elif entry.get("time_unit", "ns") not in UNIT_TO_NS:
            reason = f"unknown time_unit {entry.get('time_unit')!r}"
        if reason is not None:
            malformed.append(f"{path}: '{name}': {reason}")
            continue
        out[name] = entry
    return out


def in_ns(entry: dict) -> float:
    return entry["real_time"] * UNIT_TO_NS[entry.get("time_unit", "ns")]


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("current")
    ap.add_argument("baseline")
    ap.add_argument("--threshold", type=float, default=1.5,
                    help="fail when current/baseline exceeds this ratio")
    ap.add_argument("--allow-new", action="store_true",
                    help="report benchmarks missing a baseline entry "
                         "without failing (local runs of a subset)")
    args = ap.parse_args()

    malformed = []
    current = load_benchmarks(args.current, malformed)
    baseline = load_benchmarks(args.baseline, malformed)

    failures = []
    missing = []
    rows = []
    for name, base in sorted(baseline.items()):
        cur = current.get(name)
        if cur is None:
            missing.append(name)
            continue
        ratio = in_ns(cur) / in_ns(base)
        verdict = "ok"
        if ratio > args.threshold:
            verdict = "REGRESSED"
            failures.append(name)
        elif ratio < 1 / args.threshold:
            verdict = "improved"
        rows.append((name, in_ns(base), in_ns(cur), ratio, verdict))

    width = max((len(r[0]) for r in rows), default=20)
    print(f"{'benchmark':<{width}} {'baseline':>12} {'current':>12} "
          f"{'ratio':>7}  verdict   (threshold {args.threshold:.2f}x)")
    for name, base_ns, cur_ns, ratio, verdict in rows:
        print(f"{name:<{width}} {base_ns:>10.1f}ns {cur_ns:>10.1f}ns "
              f"{ratio:>6.2f}x  {verdict}")

    unbaselined = sorted(set(current) - set(baseline))
    for name in unbaselined:
        print(f"{name:<{width}} {'(none)':>12} {in_ns(current[name]):>10.1f}ns"
              f"          NO BASELINE")

    ok = True
    if malformed:
        print("\nFAIL: malformed benchmark entries:\n  "
              + "\n  ".join(malformed), file=sys.stderr)
        ok = False
    if missing:
        print(f"\nFAIL: baseline benchmarks missing from current run: "
              f"{', '.join(missing)}", file=sys.stderr)
        ok = False
    if unbaselined and not args.allow_new:
        print(f"\nFAIL: benchmarks with no baseline entry (add them to "
              f"bench/baseline.json): {', '.join(unbaselined)}",
              file=sys.stderr)
        ok = False
    if failures:
        print(f"\nFAIL: regressions beyond {args.threshold:.2f}x: "
              f"{', '.join(failures)}", file=sys.stderr)
        ok = False
    if ok:
        print(f"\nOK: {len(rows)} benchmarks within {args.threshold:.2f}x "
              f"of baseline")
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
