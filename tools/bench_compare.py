#!/usr/bin/env python3
"""Gate a bench_report.py run against a committed baseline.

Compares per-benchmark real_time of a current report to the baseline
(``bench/baseline.json``) and exits non-zero when any benchmark regressed
beyond the threshold. The default threshold is deliberately generous (1.5x)
so shared-runner noise does not flake CI; real kernel regressions are an
order of magnitude above it.

Usage:
    tools/bench_compare.py current.json bench/baseline.json [--threshold 1.5]
"""

import argparse
import json
import sys
from pathlib import Path

UNIT_TO_NS = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}


def load(path: str) -> dict:
    with open(path) as fh:
        return json.load(fh)


def in_ns(entry: dict) -> float:
    return entry["real_time"] * UNIT_TO_NS[entry.get("time_unit", "ns")]


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("current")
    ap.add_argument("baseline")
    ap.add_argument("--threshold", type=float, default=1.5,
                    help="fail when current/baseline exceeds this ratio")
    args = ap.parse_args()

    current = load(args.current)["benchmarks"]
    baseline = load(args.baseline)["benchmarks"]

    failures = []
    missing = []
    rows = []
    for name, base in sorted(baseline.items()):
        cur = current.get(name)
        if cur is None:
            missing.append(name)
            continue
        ratio = in_ns(cur) / in_ns(base)
        verdict = "ok"
        if ratio > args.threshold:
            verdict = "REGRESSED"
            failures.append(name)
        elif ratio < 1 / args.threshold:
            verdict = "improved"
        rows.append((name, in_ns(base), in_ns(cur), ratio, verdict))

    width = max((len(r[0]) for r in rows), default=20)
    print(f"{'benchmark':<{width}} {'baseline':>12} {'current':>12} "
          f"{'ratio':>7}  verdict   (threshold {args.threshold:.2f}x)")
    for name, base_ns, cur_ns, ratio, verdict in rows:
        print(f"{name:<{width}} {base_ns:>10.1f}ns {cur_ns:>10.1f}ns "
              f"{ratio:>6.2f}x  {verdict}")

    for name in sorted(set(current) - set(baseline)):
        print(f"{name:<{width}} {'(new)':>12} {in_ns(current[name]):>10.1f}ns"
              f"          not gated")

    ok = True
    if missing:
        print(f"\nFAIL: baseline benchmarks missing from current run: "
              f"{', '.join(missing)}", file=sys.stderr)
        ok = False
    if failures:
        print(f"\nFAIL: regressions beyond {args.threshold:.2f}x: "
              f"{', '.join(failures)}", file=sys.stderr)
        ok = False
    if ok:
        print(f"\nOK: {len(rows)} benchmarks within {args.threshold:.2f}x "
              f"of baseline")
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
