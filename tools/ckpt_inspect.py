#!/usr/bin/env python3
"""Dump an AVCKPT checkpoint blob (src/ckpt) as JSON.

Independent re-implementation of the container parser (stdlib only) so a
snapshot can be inspected — or a format regression caught — without
building the simulator. Layout (all integers big-endian, see
src/ckpt/checkpoint.hpp and DESIGN.md §11):

    char[8]  magic "AVCKPT\\x00\\x01"
    u32      format version (currently 1)
    u64      config hash (FNV-1a over the elaboration config; 0 = unchecked)
    u64      sim time (ns) at the save point
    u32      section count
    per section:
        u32 name length, name bytes
        u32 payload length, payload bytes

The "rrm" section (multi-region virtualization pool, src/rrm) carries a
versioned region-array summary and is decoded in full:

    u32 version (currently 1)
    u32 region count
    per region:
        u8  region index, u8 resident engine kind
        u8  busy flag, u8 isolated flag
        u64 swaps (configuration sessions), u32 jobs completed

Usage:
    tools/ckpt_inspect.py snapshot.ckpt            # manifest + section table
    tools/ckpt_inspect.py --hex-head 16 s.ckpt     # + first bytes per section
"""

import argparse
import json
import struct
import sys

MAGIC = b"AVCKPT\x00\x01"


class Corrupt(Exception):
    pass


class Reader:
    def __init__(self, data: bytes):
        self.data = data
        self.pos = 0

    def take(self, n: int) -> bytes:
        if self.pos + n > len(self.data):
            raise Corrupt(f"truncated at byte {self.pos} "
                          f"(needed {n}, have {len(self.data) - self.pos})")
        out = self.data[self.pos:self.pos + n]
        self.pos += n
        return out

    def u32(self) -> int:
        return struct.unpack(">I", self.take(4))[0]

    def u64(self) -> int:
        return struct.unpack(">Q", self.take(8))[0]

    def u8(self) -> int:
        return self.take(1)[0]


ENGINE_KINDS = {0: "none", 1: "census", 2: "matching", 3: "sobel", 4: "flow"}


def decode_rrm(payload: bytes) -> dict:
    """Decode the versioned region-array summary (src/rrm/rrm_section.hpp)."""
    r = Reader(payload)
    version = r.u32()
    if version != 1:
        raise Corrupt(f"unsupported rrm section version {version}")
    count = r.u32()
    regions = []
    for _ in range(count):
        index = r.u8()
        resident = r.u8()
        busy = r.u8()
        isolated = r.u8()
        swaps = r.u64()
        jobs = r.u32()
        regions.append({
            "index": index,
            "resident": ENGINE_KINDS.get(resident, f"?{resident}"),
            "busy": bool(busy),
            "isolated": bool(isolated),
            "swaps": swaps,
            "jobs": jobs,
        })
    if r.pos != len(payload):
        raise Corrupt(f"{len(payload) - r.pos} trailing bytes "
                      "in rrm section")
    return {"version": version, "regions": regions}


def inspect(data: bytes, hex_head: int) -> dict:
    r = Reader(data)
    if r.take(8) != MAGIC:
        raise Corrupt("not a checkpoint (bad magic)")
    doc = {
        "format_version": r.u32(),
        "config_hash": f"0x{r.u64():016x}",
        "sim_time_ns": r.u64(),
        "file_bytes": len(data),
        "sections": [],
    }
    count = r.u32()
    for _ in range(count):
        name = r.take(r.u32()).decode("utf-8", errors="replace")
        payload = r.take(r.u32())
        entry = {"name": name, "bytes": len(payload)}
        if name == "rrm":
            entry["rrm"] = decode_rrm(payload)
        if hex_head > 0:
            entry["head"] = payload[:hex_head].hex()
        doc["sections"].append(entry)
    if r.pos != len(data):
        raise Corrupt(f"{len(data) - r.pos} trailing bytes "
                      "after section table")
    return doc


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("snapshot", help="checkpoint file to inspect")
    ap.add_argument("--hex-head", type=int, default=0, metavar="N",
                    help="include the first N payload bytes of each "
                         "section as hex")
    args = ap.parse_args()

    with open(args.snapshot, "rb") as fh:
        data = fh.read()
    try:
        doc = inspect(data, args.hex_head)
    except Corrupt as e:
        print(json.dumps({"error": str(e), "file_bytes": len(data)},
                         indent=2))
        return 1
    print(json.dumps(doc, indent=2))
    return 0


if __name__ == "__main__":
    sys.exit(main())
