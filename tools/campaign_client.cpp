// campaign_client: submit/inspect/await campaign-service jobs.
//
//   campaign_client --socket PATH [--name TAG] submit --kind closure|diff
//                   [--priority high|normal|batch] [--param KEY=VALUE]...
//   campaign_client --socket PATH status ID
//   campaign_client --socket PATH list
//   campaign_client --socket PATH wait ID [--quiet] [--out FILE]
//                   [--verdicts-out FILE] [--cover-out FILE]
//   campaign_client --socket PATH cancel ID
//   campaign_client --socket PATH shutdown
//
// submit prints the assigned job id (alone) on stdout so shell scripts can
// capture it; wait streams the job's JSONL records, writes the
// deterministic artifacts, and exits 0 only when the job finished as a
// pass. The batch campaign_runner and this client are peers: both are thin
// frontends over the same campaign machinery, one in-process, one through
// campaignd.
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "svc/client.hpp"

namespace {

using autovision::svc::Client;
using autovision::svc::JobList;
using autovision::svc::JobOutcome;
using autovision::svc::JobSpec;
using autovision::svc::JobState;
using autovision::svc::JobStatusInfo;
using autovision::svc::Priority;
using autovision::svc::RecordLine;
using autovision::svc::SubmitResult;
using autovision::svc::priority_from_string;
using autovision::svc::to_string;

int usage(const char* argv0) {
    std::fprintf(
        stderr,
        "usage: %s --socket PATH [--name TAG] COMMAND ...\n"
        "  submit --kind closure|diff [--priority high|normal|batch]\n"
        "         [--param KEY=VALUE]...\n"
        "  status ID | list | cancel ID | shutdown\n"
        "  wait ID [--quiet] [--out FILE] [--verdicts-out FILE]\n"
        "          [--cover-out FILE]\n",
        argv0);
    return 2;
}

int fail(const std::string& err) {
    std::fprintf(stderr, "campaign_client: %s\n", err.c_str());
    return 2;
}

void print_status(const JobStatusInfo& info) {
    std::printf("id %llu\n", static_cast<unsigned long long>(info.id));
    std::printf("state %s\n", to_string(info.state));
    std::printf("kind %s\n", info.kind.c_str());
    std::printf("priority %s\n", to_string(info.priority));
    std::printf("units %u/%u\n", info.units_done, info.units_total);
    std::printf("checkpoints %u\n", info.checkpoints);
    std::printf("resumed %u\n", info.resumed);
}

bool write_file(const std::string& path, const std::string& content,
                const char* what) {
    std::ofstream os(path, std::ios::out | std::ios::trunc);
    if (!os || !(os << content) || !os.flush()) {
        std::fprintf(stderr, "campaign_client: cannot write %s %s\n", what,
                     path.c_str());
        return false;
    }
    return true;
}

}  // namespace

int main(int argc, char** argv) {
    std::signal(SIGPIPE, SIG_IGN);

    std::string socket_path;
    std::string name = "campaign_client";
    int i = 1;
    for (; i < argc; ++i) {
        const std::string a = argv[i];
        if (a == "--socket" && i + 1 < argc) {
            socket_path = argv[++i];
        } else if (a == "--name" && i + 1 < argc) {
            name = argv[++i];
        } else {
            break;
        }
    }
    if (socket_path.empty() || i >= argc) return usage(argv[0]);
    const std::string cmd = argv[i++];

    Client client;
    std::string err;
    if (!client.connect(socket_path, name, &err)) return fail(err);

    if (cmd == "submit") {
        JobSpec spec;
        spec.client = name;
        for (; i < argc; ++i) {
            const std::string a = argv[i];
            if (a == "--kind" && i + 1 < argc) {
                spec.kind = argv[++i];
            } else if (a == "--priority" && i + 1 < argc) {
                if (!priority_from_string(argv[++i], &spec.priority)) {
                    return fail(std::string("unknown priority: ") + argv[i]);
                }
            } else if (a == "--param" && i + 1 < argc) {
                const std::string kv = argv[++i];
                const std::size_t eq = kv.find('=');
                if (eq == std::string::npos || eq == 0) {
                    return fail("--param wants KEY=VALUE, got '" + kv + "'");
                }
                spec.params[kv.substr(0, eq)] = kv.substr(eq + 1);
            } else {
                return usage(argv[0]);
            }
        }
        if (spec.kind.empty()) return fail("submit needs --kind");
        SubmitResult res;
        if (!client.submit(spec, &res, &err)) return fail(err);
        if (!res.accepted) {
            std::fprintf(stderr, "campaign_client: rejected: %s\n",
                         res.reason.c_str());
            return 3;
        }
        std::printf("%llu\n", static_cast<unsigned long long>(res.id));
        return 0;
    }

    if (cmd == "status" || cmd == "cancel") {
        if (i >= argc) return usage(argv[0]);
        const std::uint64_t id = std::strtoull(argv[i], nullptr, 0);
        JobStatusInfo info;
        const bool ok = cmd == "status" ? client.status(id, &info, &err)
                                        : client.cancel(id, &info, &err);
        if (!ok) return fail(err);
        print_status(info);
        return info.state == JobState::kUnknown ? 1 : 0;
    }

    if (cmd == "list") {
        JobList list;
        if (!client.list(&list, &err)) return fail(err);
        for (const JobStatusInfo& j : list.jobs) {
            std::printf("%llu %-9s %-8s %-6s %u/%u ckpt=%u resumed=%u\n",
                        static_cast<unsigned long long>(j.id),
                        to_string(j.state), j.kind.c_str(),
                        to_string(j.priority), j.units_done, j.units_total,
                        j.checkpoints, j.resumed);
        }
        return 0;
    }

    if (cmd == "wait") {
        if (i >= argc) return usage(argv[0]);
        const std::uint64_t id = std::strtoull(argv[i++], nullptr, 0);
        bool quiet = false;
        std::string out_path;
        std::string verdicts_path;
        std::string cover_path;
        for (; i < argc; ++i) {
            const std::string a = argv[i];
            if (a == "--quiet") {
                quiet = true;
            } else if (a == "--out" && i + 1 < argc) {
                out_path = argv[++i];
            } else if (a == "--verdicts-out" && i + 1 < argc) {
                verdicts_path = argv[++i];
            } else if (a == "--cover-out" && i + 1 < argc) {
                cover_path = argv[++i];
            } else {
                return usage(argv[0]);
            }
        }
        std::ofstream out_file;
        if (!out_path.empty()) {
            out_file.open(out_path, std::ios::out | std::ios::trunc);
            if (!out_file) {
                return fail("cannot open " + out_path);
            }
        }
        JobOutcome outcome;
        const bool ok = client.wait(
            id,
            [&](const RecordLine& rl) {
                if (!quiet) {
                    std::printf("%s\n", rl.line.c_str());
                    std::fflush(stdout);
                }
                if (out_file.is_open()) {
                    out_file << rl.line << '\n';
                    out_file.flush();
                }
            },
            &outcome, &err);
        if (!ok) return fail(err);
        if (!verdicts_path.empty() &&
            !write_file(verdicts_path, outcome.verdicts, "verdicts")) {
            return 2;
        }
        if (!cover_path.empty() &&
            !write_file(cover_path, outcome.cover_json, "coverage")) {
            return 2;
        }
        std::fprintf(stderr, "job %llu: %s%s\n%s",
                     static_cast<unsigned long long>(id),
                     to_string(outcome.state),
                     outcome.state == JobState::kDone
                         ? (outcome.pass ? " (pass)" : " (fail)")
                         : "",
                     outcome.summary.c_str());
        return outcome.state == JobState::kDone && outcome.pass ? 0 : 1;
    }

    if (cmd == "shutdown") {
        if (!client.shutdown_daemon(&err)) return fail(err);
        std::printf("shutdown acknowledged\n");
        return 0;
    }

    return usage(argv[0]);
}
