#!/usr/bin/env bash
# service_smoke.sh — end-to-end crash/resume check for the campaign service.
#
# Starts campaignd, submits a closure batch and a diff batch through
# campaign_client, kills the daemon with SIGKILL while each job is
# mid-flight (at least one checkpoint persisted, job still running),
# restarts it, lets the job resume from its journaled checkpoint, and
# asserts the merged artifacts — closure cover.json + verdict lines, diff
# verdict lines — are byte-identical to an uninterrupted batch-CLI run of
# the same campaign. This is the service's core durability contract,
# enforced in CI by the service-smoke job.
#
# usage: service_smoke.sh [BUILD_DIR]
set -euo pipefail

BUILD=${1:-build}
DAEMON="$BUILD/tools/campaignd"
CLIENT="$BUILD/tools/campaign_client"
RUNNER="$BUILD/tools/campaign_runner"
for bin in "$DAEMON" "$CLIENT" "$RUNNER"; do
    [ -x "$bin" ] || { echo "missing binary: $bin" >&2; exit 1; }
done

WORK=$(mktemp -d)
DPID=""
cleanup() {
    [ -n "$DPID" ] && kill -9 "$DPID" 2>/dev/null || true
    rm -rf "$WORK"
}
trap cleanup EXIT

SOCK="$WORK/campaignd.sock"
STATE="$WORK/state"
LOG="$WORK/daemon.log"

start_daemon() { # [worker-threads]
    "$DAEMON" --socket "$SOCK" --state "$STATE" --shards 2 \
        --jobs "${1:-2}" --ckpt-interval 1 >>"$LOG" 2>&1 &
    DPID=$!
    for _ in $(seq 1 100); do
        [ -S "$SOCK" ] && return 0
        kill -0 "$DPID" 2>/dev/null || break
        sleep 0.1
    done
    echo "FAIL: daemon did not come up (log follows)" >&2
    cat "$LOG" >&2
    exit 1
}

status_field() { # id field
    "$CLIENT" --socket "$SOCK" status "$1" | awk -v f="$2" '$1==f{print $2}'
}

# Poll until the job has >=1 persisted checkpoint while still running —
# the window where a SIGKILL provably interrupts mid-batch work.
wait_for_checkpoint() { # id
    for _ in $(seq 1 600); do
        local state ckpt
        state=$(status_field "$1" state)
        ckpt=$(status_field "$1" checkpoints)
        if [ "$state" = "done" ] || [ "$state" = "failed" ]; then
            echo "FAIL: job $1 reached '$state' before the kill window" >&2
            exit 1
        fi
        if [ "${ckpt:-0}" -ge 1 ] && [ "$state" = "running" ]; then
            return 0
        fi
        sleep 0.05
    done
    echo "FAIL: job $1 never checkpointed" >&2
    exit 1
}

kill_resume_one() { # kind pre-kill-workers submit-params... -- runner-args...
    local kind=$1; shift
    local pre_workers=$1; shift
    local params=()
    while [ "$1" != "--" ]; do params+=(--param "$1"); shift; done
    shift
    local runner_args=("$@")

    echo "== $kind: submit, kill -9 mid-batch, resume =="
    # Throttled worker pool before the kill so the job is provably still
    # mid-flight when SIGKILL lands; the resume runs at full width — the
    # artifacts must not depend on worker count.
    start_daemon "$pre_workers"
    local id
    id=$("$CLIENT" --socket "$SOCK" submit --kind "$kind" "${params[@]}")
    wait_for_checkpoint "$id"

    kill -9 "$DPID"
    wait "$DPID" 2>/dev/null || true
    DPID=""

    start_daemon 2
    "$CLIENT" --socket "$SOCK" wait "$id" --quiet \
        --verdicts-out "$WORK/$kind.svc.verdicts" \
        --cover-out "$WORK/$kind.svc.cover.json" 2>"$WORK/$kind.wait.log" \
        || { echo "FAIL: resumed $kind job did not pass" >&2;
             cat "$WORK/$kind.wait.log" "$LOG" >&2; exit 1; }

    local resumed
    resumed=$(status_field "$id" resumed)
    [ "${resumed:-0}" -ge 1 ] \
        || { echo "FAIL: job $id does not report a resume" >&2; exit 1; }

    "$CLIENT" --socket "$SOCK" shutdown >/dev/null
    wait "$DPID" 2>/dev/null || true
    DPID=""

    echo "== $kind: uninterrupted batch-CLI reference =="
    "$RUNNER" "${runner_args[@]}" --quiet \
        --verdicts-out "$WORK/$kind.cli.verdicts" \
        >"$WORK/$kind.cli.log" 2>&1 \
        || { echo "FAIL: reference CLI run failed" >&2;
             cat "$WORK/$kind.cli.log" >&2; exit 1; }

    cmp "$WORK/$kind.svc.verdicts" "$WORK/$kind.cli.verdicts" \
        || { echo "FAIL: $kind verdicts differ after kill -9 resume" >&2;
             exit 1; }
    echo "OK: $kind verdicts byte-identical after kill -9 resume"
}

# Closure: 5 batches x 10 scenarios, checkpoint per batch. target=101
# keeps the loop from stopping on the coverage target so the kill window
# is wide; saturation may still stop it early on both sides identically.
kill_resume_one closure 2 \
    seed=11 batches=5 batch-size=10 target=101 -- \
    --campaign closure --seed 11 --batches 5 --batch-size 10 --target 101 \
    --jobs 2 --cover-out "$WORK/closure.cli.cover.json"
cmp "$WORK/closure.svc.cover.json" "$WORK/closure.cli.cover.json" \
    || { echo "FAIL: closure cover.json differs after kill -9 resume" >&2;
         exit 1; }
echo "OK: closure cover.json byte-identical after kill -9 resume"

# Diff: 32 seeds, checkpoint per completed scenario, single worker before
# the kill so the batch cannot race past the kill window.
kill_resume_one diff 1 \
    seed=3 seeds=32 -- \
    --campaign diff --seed 3 --seeds 32 --jobs 2

echo "service smoke: all checks passed"
