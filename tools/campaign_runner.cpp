// campaign_runner — batch simulation campaigns from the command line.
//
//   campaign_runner --campaign faults   [--jobs N] [--timeout-ms T]
//                   [--retries R] [--out results.jsonl] [--frames F]
//   campaign_runner --campaign simb
//   campaign_runner --campaign workload
//   campaign_runner --campaign seeds    [--seeds N] [--frames F]
//   campaign_runner --campaign closure  [--cover-out cover.json] [--seed S]
//                   [--batches N] [--batch-size N] [--target P] [--no-bias]
//   campaign_runner --campaign diff     [--seed S] [--seeds N]
//                   [--inject NAME] [--repro-out DIR] [--expect-genuine]
//   campaign_runner --replay FILE.repro.json
//
// Every job is an isolated simulation (own Scheduler/Testbench) fanned out
// over the campaign worker pool; results stream into a JSONL file (one
// atomic line per job) and are rolled up into the printed aggregate. The
// `faults` campaign reprints the Table III detection matrix from the job
// records — byte-for-byte the same verdicts as `bench_bug_detection`.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include <fstream>

#include "campaign/campaigns.hpp"
#include "campaign/closure.hpp"
#include "campaign/pool.hpp"
#include "campaign/runner.hpp"
#include "campaign/sink.hpp"
#include "diff/repro.hpp"
#include "diff/shrink.hpp"
#include "scen/stream_harness.hpp"
#include "sys/address_map.hpp"
#include "sys/system.hpp"
#include "video/synth.hpp"

using namespace autovision;
using namespace autovision::campaign;

namespace {

struct Options {
    std::string campaign;
    unsigned jobs = 0;  // 0 = hardware concurrency
    unsigned timeout_ms = 0;
    unsigned retries = 1;
    std::string out;
    std::string verdicts_out;
    unsigned frames = 2;
    unsigned seeds = 8;
    bool quiet = false;
    bool trace = false;
    std::string trace_out;  // directory for per-job Perfetto traces
    // closure campaign
    std::string cover_out;
    unsigned long long seed = 1;
    unsigned batches = 6;
    unsigned batch_size = 12;
    double target = 95.0;
    bool bias = true;
    // diff campaign
    std::string inject = "none";
    std::string repro_out;
    bool expect_genuine = false;
    std::string replay;
    // checkpointing
    std::string ckpt_out;       ///< write a snapshot here
    std::string ckpt_in;        ///< warm-start from this snapshot
    unsigned long long ckpt_at = 0;  ///< standalone mode: run to this cycle
    bool no_warm_start = false;      ///< closure: force cold boots
};

void usage(const char* argv0) {
    std::printf(
        "usage: %s --campaign <name> [options]\n"
        "\n"
        "campaigns:\n"
        "  faults     fault catalogue under VM + ReSim + 2-state ablation"
        " (Table III)\n"
        "  simb       SimB length sweep + FIFO/clock/bus corner matrix"
        " (Section IV-B)\n"
        "  workload   frame-count x geometry grid of clean full-system runs\n"
        "  seeds      one clean full-system run per synthetic-scene seed\n"
        "  closure    coverage-closure loop: constrained-random scenario\n"
        "             batches, merged functional coverage, bins-unhit bias\n"
        "  diff       differential VM-vs-ReSim oracle: one constrained-\n"
        "             random scenario per seed run through both methods,\n"
        "             divergences classified, genuine ones shrunk\n"
        "\n"
        "options:\n"
        "  --jobs N        worker threads (default 0 = hardware"
        " concurrency)\n"
        "  --timeout-ms T  per-attempt wall-clock budget (default 0 ="
        " no watchdog)\n"
        "  --retries R     extra attempts for timed-out/errored jobs"
        " (default 1)\n"
        "  --out FILE      JSONL results sink (one atomic line per job)\n"
        "  --verdicts-out F  deterministic per-job verdict lines, submission\n"
        "                  order (byte-comparable across runs and against a\n"
        "                  resumed campaign-service run of the same batch)\n"
        "  --frames F      frames per run where applicable (default 2)\n"
        "  --seeds N       seed count for the seeds campaign (default 8)\n"
        "  --trace         record structured simulation events; obs.*\n"
        "                  metrics (swap latency, X-window, ...) land in\n"
        "                  the JSONL records and the printed aggregate\n"
        "  --trace-out DIR write a Chrome-trace/Perfetto JSON per job to\n"
        "                  DIR (implies --trace; DIR must exist)\n"
        "  --quiet         suppress per-job progress lines\n"
        "\n"
        "closure options:\n"
        "  --cover-out F   write the merged coverage JSON to F\n"
        "  --seed S        campaign seed (default 1)\n"
        "  --batches N     batch budget (default 6)\n"
        "  --batch-size N  scenarios per batch (default 12)\n"
        "  --target P      stop at P%% goal-bin coverage (default 95)\n"
        "  --no-bias       pure-random control arm (no coverage feedback)\n"
        "\n"
        "diff options (--seed seeds the batch, --seeds counts jobs):\n"
        "  --inject NAME   injected design fault: none, vm-no-sig-init,\n"
        "                  isolation-missing, wrong-module-map\n"
        "  --repro-out DIR write shrunk minimal reproducers\n"
        "                  (<job>.repro.json + <job>.simb) to DIR\n"
        "  --expect-genuine exit nonzero unless the batch flags at least\n"
        "                  one genuine divergence (fault-injection runs)\n"
        "  --replay FILE   re-run a .repro.json reproducer standalone and\n"
        "                  report whether the divergence reproduces\n"
        "\n"
        "checkpoint options:\n"
        "  --ckpt-at N     standalone mode: drive one full system to cycle\n"
        "                  N (absolute), print the snapshot digest, exit.\n"
        "                  Deterministic: two invocations reaching the same\n"
        "                  cycle print the same digest, whether they got\n"
        "                  there cold or via --ckpt-in\n"
        "  --ckpt-out FILE write a snapshot to FILE: the cycle-N state in\n"
        "                  standalone mode, the stream-testbench boot\n"
        "                  snapshot in the closure campaign\n"
        "  --ckpt-in FILE  warm-start from FILE: restore before continuing\n"
        "                  in standalone mode, fork every closure stream\n"
        "                  job from it in the closure campaign\n"
        "  --no-warm-start closure: always boot stream jobs cold\n",
        argv0);
}

constexpr const char* kKnownCampaigns[] = {"faults",  "simb",    "workload",
                                           "seeds",   "closure", "diff"};

/// Deterministic verdict lines, submission order. Returns false (with a
/// message) when the file cannot be written.
bool write_verdicts(const std::string& path,
                    const std::vector<JobRecord>& records) {
    std::ofstream os(path, std::ios::out | std::ios::trunc);
    if (!os) {
        std::fprintf(stderr, "cannot open %s\n", path.c_str());
        return false;
    }
    for (const JobRecord& rec : records) os << to_verdict_line(rec) << '\n';
    std::printf("verdicts: %s (%zu lines)\n", path.c_str(), records.size());
    return os.good();
}

bool parse_unsigned(const char* s, unsigned& out) {
    char* end = nullptr;
    const unsigned long v = std::strtoul(s, &end, 10);
    if (end == s || *end != '\0') return false;
    out = static_cast<unsigned>(v);
    return true;
}

/// Table III from the faults-campaign records (same shape and verdict
/// strings as bench_bug_detection).
void print_fault_table(const std::vector<JobRecord>& records) {
    std::map<std::string, const JobRecord*> by_name;
    for (const JobRecord& r : records) by_name[r.name] = &r;

    std::printf("\n==== Table III: detected bugs per simulation method"
                " ====\n");
    std::printf("%-12s | %-10s | %-10s | %-22s | %s\n", "bug", "VM", "ReSim",
                "ReSim w/o X (2-state)", "description");
    std::printf("-------------+------------+------------+------------------"
                "------+------------\n");
    unsigned vm_static = 0, vm_false = 0, resim_sw = 0, resim_dpr = 0,
             mismatches = 0;
    for (const sys::FaultInfo& fi : sys::kFaultCatalog) {
        const auto* f = by_name[std::string("fault.") + fi.id];
        const auto* nx = by_name[std::string("nox.") + fi.id];
        if (f == nullptr || nx == nullptr) continue;
        const bool vm_det = f->report.metrics.at("vm_detected") != 0.0;
        const bool rs_det = f->report.metrics.at("resim_detected") != 0.0;
        const bool nx_det = nx->report.metrics.at("nox_detected") != 0.0;
        std::printf("%-12s | %-10s | %-10s | %-22s | %s\n", fi.id,
                    vm_det ? "DETECTED" : "passed",
                    rs_det ? "DETECTED" : "passed",
                    nx_det ? "DETECTED" : "passed", fi.description);
        if (!f->passed()) {
            ++mismatches;
            std::printf("    !! expectation mismatch: %s\n",
                        f->report.verdict.c_str());
        }
        const std::string id = fi.id;
        if (vm_det) {
            if (fi.expected == sys::ExpectedDetection::kVmFalseAlarm) {
                ++vm_false;
            } else {
                ++vm_static;
            }
        }
        if (rs_det) {
            if (id.find("dpr") != std::string::npos) {
                ++resim_dpr;
            } else {
                ++resim_sw;
            }
        }
    }
    std::printf("\n==== Section V-A counts ====\n");
    std::printf("  VM-detected real bugs (static design):     %u  (paper: 3)\n",
                vm_static);
    std::printf("  VM false alarms (simulation artefact):     %u  (paper: 1,"
                " bug.hw.2)\n", vm_false);
    std::printf("  ReSim-detected software/static bugs:        %u\n",
                resim_sw);
    std::printf("  ReSim-detected DPR bugs:                    %u  (paper:"
                " 6)\n", resim_dpr);
    std::printf("  expectation mismatches:                     %u\n",
                mismatches);
}

/// Standalone reproducer replay: re-run the differential pair a
/// .repro.json bundle records and report whether the genuine divergence
/// reproduces. Exit 0 = the replay matches the bundle's expectation.
int run_replay(const std::string& path) {
    diff::ReproBundle bundle;
    std::string err;
    if (!diff::load_repro_file(path, &bundle, &err)) {
        std::fprintf(stderr, "cannot load %s: %s\n", path.c_str(),
                     err.c_str());
        return 2;
    }
    std::printf("replay %s: '%s', %zu sessions, inject=%s, %zu recorded"
                " genuine divergence(s)\n",
                path.c_str(), bundle.scenario.name.c_str(),
                bundle.scenario.sessions.size(),
                diff::to_string(bundle.inject), bundle.genuine.size());

    diff::DiffOptions dopt;
    dopt.inject = bundle.inject;
    // normalize() is a no-op on writer-produced bundles but keeps
    // hand-edited reproducers inside the generator's invariants.
    const diff::DiffOutcome out =
        diff::run_diff(diff::normalize(bundle.scenario), dopt);

    for (const diff::Divergence& d : out.report.divergences) {
        std::printf("  %-8s %-15s %-6s session %2d  %s\n",
                    d.genuine ? "GENUINE" : "expected",
                    diff::to_string(d.kind), diff::to_string(d.side),
                    d.session, d.detail.c_str());
    }
    const bool want = !bundle.genuine.empty();
    const bool got = out.report.genuine() != 0;
    std::printf("replay: %u genuine, %u expected — %s\n",
                out.report.genuine(), out.report.expected(),
                want == got ? (want ? "divergence REPRODUCED"
                                    : "clean, as recorded")
                            : (want ? "divergence did NOT reproduce"
                                    : "unexpected divergence"));
    return want == got ? 0 : 1;
}

[[nodiscard]] std::uint64_t blob_digest(const std::string& blob) {
    std::uint64_t h = 1469598103934665603ull;  // FNV-1a
    for (const char c : blob) {
        h = (h ^ static_cast<unsigned char>(c)) * 1099511628211ull;
    }
    return h;
}

/// Standalone checkpoint mode (--ckpt-at): drive one full system — cold
/// from reset, or restored from --ckpt-in — to an absolute cycle, print
/// the state digest, and optionally save the reached state to --ckpt-out.
/// The digest depends only on (config, cycle), not on how the run got
/// there, which is exactly the property the CI diverge-check exercises.
int run_ckpt_mode(const Options& opt) {
    sys::SystemConfig cfg = small_system_config();
    cfg.seed = opt.seed;
    sys::OpticalFlowSystem system(cfg);

    if (!opt.ckpt_in.empty()) {
        std::ifstream is(opt.ckpt_in, std::ios::binary);
        if (!is) {
            std::fprintf(stderr, "cannot open %s\n", opt.ckpt_in.c_str());
            return 2;
        }
        std::string err;
        if (!system.restore(is, &err)) {
            std::fprintf(stderr, "restore failed: %s\n", err.c_str());
            return 2;
        }
        std::printf("restored %s at t=%llu\n", opt.ckpt_in.c_str(),
                    static_cast<unsigned long long>(system.sch.now()));
    } else {
        // Cold boot: reset settles, then the camera delivers frame 0 (the
        // same prefix the Testbench runs).
        system.sch.run_until(8 * cfg.clk_period);
        video::SyntheticScene scene(
            video::SceneConfig::standard(cfg.width, cfg.height, 1));
        system.video_in.send_frame(scene.frame(0), sys::kFrameBuf);
    }

    const rtlsim::Time target = opt.ckpt_at * cfg.clk_period;
    if (system.sch.now() > target) {
        std::fprintf(stderr,
                     "snapshot is already past cycle %llu (t=%llu)\n",
                     opt.ckpt_at,
                     static_cast<unsigned long long>(system.sch.now()));
        return 2;
    }
    constexpr rtlsim::Time kQuantum = 32;
    while (system.sch.now() < target && !system.sch.stop_requested()) {
        system.sch.run_until(system.sch.now() +
                             kQuantum * cfg.clk_period);
    }

    std::ostringstream blob;
    if (!system.save(blob)) {
        std::fprintf(stderr, "save failed (not at a quiescent point)\n");
        return 2;
    }
    std::printf("cycle %llu: t=%llu, %zu-byte snapshot, digest"
                " %016llx\n",
                opt.ckpt_at,
                static_cast<unsigned long long>(system.sch.now()),
                blob.str().size(),
                static_cast<unsigned long long>(blob_digest(blob.str())));
    if (!opt.ckpt_out.empty()) {
        std::ofstream os(opt.ckpt_out, std::ios::binary | std::ios::trunc);
        if (!os || !(os << blob.str())) {
            std::fprintf(stderr, "cannot write %s\n", opt.ckpt_out.c_str());
            return 2;
        }
        std::printf("snapshot: %s\n", opt.ckpt_out.c_str());
    }
    return 0;
}

}  // namespace

int main(int argc, char** argv) {
    Options opt;
    for (int i = 1; i < argc; ++i) {
        const std::string a = argv[i];
        const auto next = [&]() -> const char* {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "%s needs a value\n", a.c_str());
                std::exit(2);
            }
            return argv[++i];
        };
        bool ok = true;
        if (a == "--campaign") {
            opt.campaign = next();
        } else if (a == "--jobs") {
            ok = parse_unsigned(next(), opt.jobs);
        } else if (a == "--timeout-ms") {
            ok = parse_unsigned(next(), opt.timeout_ms);
        } else if (a == "--retries") {
            ok = parse_unsigned(next(), opt.retries);
        } else if (a == "--out") {
            opt.out = next();
        } else if (a == "--verdicts-out") {
            opt.verdicts_out = next();
        } else if (a == "--frames") {
            ok = parse_unsigned(next(), opt.frames);
        } else if (a == "--seeds") {
            ok = parse_unsigned(next(), opt.seeds);
        } else if (a == "--cover-out") {
            opt.cover_out = next();
        } else if (a == "--seed") {
            char* end = nullptr;
            const char* v = next();
            opt.seed = std::strtoull(v, &end, 0);
            ok = end != v && *end == '\0';
        } else if (a == "--batches") {
            ok = parse_unsigned(next(), opt.batches);
        } else if (a == "--batch-size") {
            ok = parse_unsigned(next(), opt.batch_size);
        } else if (a == "--target") {
            char* end = nullptr;
            const char* v = next();
            opt.target = std::strtod(v, &end);
            ok = end != v && *end == '\0';
        } else if (a == "--no-bias") {
            opt.bias = false;
        } else if (a == "--inject") {
            opt.inject = next();
        } else if (a == "--repro-out") {
            opt.repro_out = next();
        } else if (a == "--expect-genuine") {
            opt.expect_genuine = true;
        } else if (a == "--replay") {
            opt.replay = next();
        } else if (a == "--ckpt-out") {
            opt.ckpt_out = next();
        } else if (a == "--ckpt-in") {
            opt.ckpt_in = next();
        } else if (a == "--ckpt-at") {
            char* end = nullptr;
            const char* v = next();
            opt.ckpt_at = std::strtoull(v, &end, 0);
            ok = end != v && *end == '\0' && opt.ckpt_at != 0;
        } else if (a == "--no-warm-start") {
            opt.no_warm_start = true;
        } else if (a == "--trace") {
            opt.trace = true;
        } else if (a == "--trace-out") {
            opt.trace_out = next();
            opt.trace = true;
        } else if (a == "--quiet") {
            opt.quiet = true;
        } else if (a == "--help" || a == "-h") {
            usage(argv[0]);
            return 0;
        } else {
            std::fprintf(stderr, "unknown option: %s\n", a.c_str());
            usage(argv[0]);
            return 2;
        }
        if (!ok) {
            std::fprintf(stderr, "bad value for %s\n", a.c_str());
            return 2;
        }
    }

    if (!opt.replay.empty()) return run_replay(opt.replay);
    if (opt.ckpt_at != 0) return run_ckpt_mode(opt);

    if (opt.campaign == "closure") {
        ClosureConfig cc;
        cc.seed = opt.seed;
        cc.batch_size = opt.batch_size;
        cc.max_batches = opt.batches;
        cc.target_percent = opt.target;
        cc.bias = opt.bias;
        cc.warm_start = !opt.no_warm_start;
        if (!opt.ckpt_in.empty()) {
            std::ifstream is(opt.ckpt_in, std::ios::binary);
            std::ostringstream buf;
            if (!is || !(buf << is.rdbuf())) {
                std::fprintf(stderr, "cannot read %s\n", opt.ckpt_in.c_str());
                return 2;
            }
            cc.boot_blob = buf.str();
        }
        if (!opt.ckpt_out.empty()) {
            const std::string boot = scen::stream_boot_snapshot();
            std::ofstream os(opt.ckpt_out,
                             std::ios::binary | std::ios::trunc);
            if (!os || !(os << boot)) {
                std::fprintf(stderr, "cannot write %s\n",
                             opt.ckpt_out.c_str());
                return 2;
            }
            std::printf("boot snapshot: %s (%zu bytes)\n",
                        opt.ckpt_out.c_str(), boot.size());
        }

        CampaignConfig rc;
        rc.jobs = opt.jobs;
        rc.timeout = std::chrono::milliseconds{opt.timeout_ms};
        rc.retries = opt.retries;
        // Note: not rc.jsonl_path — run_closure spins up one runner (and
        // thus one truncating sink) per batch; records are written once,
        // below, after the loop completes.
        if (!opt.quiet) {
            rc.on_record = [](const JobRecord& rec) {
                std::printf("  %-7s %-22s %8.1f ms  %s\n",
                            to_string(rec.status), rec.name.c_str(),
                            static_cast<double>(rec.wall.count()) / 1e6,
                            rec.report.verdict.c_str());
                std::fflush(stdout);
            };
        }

        std::printf("campaign 'closure': seed 0x%llx, %u batches x %u"
                    " scenarios, target %.1f%%%s\n",
                    opt.seed, opt.batches, opt.batch_size, opt.target,
                    opt.bias ? "" : " (bias off: pure random)");
        const ClosureResult res = run_closure(cc, rc);

        std::printf("\n==== closure ====\n");
        for (const BatchSummary& b : res.batches) {
            std::printf("  batch %u: +%zu new bins, %zu goal bins hit"
                        " (%.1f%%)\n",
                        b.index, b.new_bins, b.goal_hit, b.percent);
        }
        std::printf("  %s after %u scenarios: %.1f%% of %zu goal bins\n",
                    res.reached_target ? "target reached"
                    : res.saturated    ? "saturated"
                                       : "batch budget exhausted",
                    res.scenarios_run, res.merged.percent(),
                    res.merged.goal_bins());
        std::ostringstream text;
        res.merged.write_text(text);
        std::printf("%s", text.str().c_str());

        if (!opt.cover_out.empty()) {
            std::ofstream os(opt.cover_out);
            if (!os) {
                std::fprintf(stderr, "cannot open %s\n",
                             opt.cover_out.c_str());
                return 2;
            }
            res.merged.write_json(os);
            std::printf("coverage: %s\n", opt.cover_out.c_str());
        }
        if (!opt.out.empty()) {
            std::ofstream os(opt.out, std::ios::out | std::ios::trunc);
            if (!os) {
                std::fprintf(stderr, "cannot open %s\n", opt.out.c_str());
                return 2;
            }
            for (const JobRecord& rec : res.records) {
                os << to_jsonl(rec) << '\n';
            }
            std::printf("results: %s (%zu JSONL records)\n", opt.out.c_str(),
                        res.records.size());
        }
        if (!opt.verdicts_out.empty() &&
            !write_verdicts(opt.verdicts_out, res.records)) {
            return 2;
        }
        unsigned failed = 0;
        for (const JobRecord& r : res.records) {
            if (!r.passed()) ++failed;
        }
        if (failed != 0) {
            std::printf("!! %u scenario jobs failed\n", failed);
        }
        return failed == 0 ? 0 : 1;
    }

    std::vector<SimJob> jobs;
    sys::SystemConfig base = small_system_config();
    base.trace_events = opt.trace;
    base.trace_path = opt.trace_out;  // factories append "/<job>.json"
    if (opt.campaign == "faults") {
        jobs = fault_catalog_jobs(base, opt.frames);
        auto nox = resim_no_x_jobs(base, opt.frames);
        jobs.insert(jobs.end(), std::make_move_iterator(nox.begin()),
                    std::make_move_iterator(nox.end()));
    } else if (opt.campaign == "simb") {
        jobs = simb_sweep_jobs({4u, 100u, 1024u, 4096u, 32768u, 129u * 1024u},
                               opt.trace);
        auto corners = simb_corner_jobs(opt.trace);
        jobs.insert(jobs.end(), std::make_move_iterator(corners.begin()),
                    std::make_move_iterator(corners.end()));
    } else if (opt.campaign == "workload") {
        jobs = workload_grid_jobs({{32, 24, 1},
                                   {32, 24, 2},
                                   {48, 32, 1},
                                   {48, 32, 2},
                                   {64, 48, 1}},
                                  base);
    } else if (opt.campaign == "seeds") {
        jobs = seed_sweep_jobs(base, /*first_seed=*/1, opt.seeds,
                               opt.frames);
    } else if (opt.campaign == "diff") {
        DiffCampaignConfig dc;
        dc.seed = opt.seed;
        dc.count = opt.seeds;
        bool known = false;
        dc.inject = diff::fault_from_string(opt.inject, &known);
        if (!known) {
            std::fprintf(stderr, "unknown --inject fault: %s\n",
                         opt.inject.c_str());
            return 2;
        }
        dc.repro_dir = opt.repro_out;
        jobs = diff_batch_jobs(dc);
    } else {
        // An unknown (or missing) campaign name must fail loudly with the
        // valid names, never fall through to an empty batch that "passes".
        if (opt.campaign.empty()) {
            std::fprintf(stderr, "missing --campaign\n");
        } else {
            std::fprintf(stderr, "unknown campaign: '%s'\n",
                         opt.campaign.c_str());
        }
        std::fprintf(stderr, "valid campaigns:");
        for (const char* name : kKnownCampaigns) {
            std::fprintf(stderr, " %s", name);
        }
        std::fprintf(stderr, "\n");
        return 2;
    }
    if (jobs.empty()) {
        std::fprintf(stderr,
                     "campaign '%s' produced no jobs (check --seeds/--frames"
                     " values)\n",
                     opt.campaign.c_str());
        return 2;
    }

    CampaignConfig cfg;
    cfg.jobs = opt.jobs;
    cfg.timeout = std::chrono::milliseconds{opt.timeout_ms};
    cfg.retries = opt.retries;
    cfg.jsonl_path = opt.out;
    const std::size_t total = jobs.size();
    std::size_t done = 0;
    if (!opt.quiet) {
        cfg.on_record = [&](const JobRecord& rec) {
            ++done;
            std::printf("[%2zu/%zu] %-7s %-22s %8.1f ms  (attempt %u)  %s\n",
                        done, total, to_string(rec.status), rec.name.c_str(),
                        static_cast<double>(rec.wall.count()) / 1e6,
                        rec.attempts, rec.report.verdict.c_str());
            std::fflush(stdout);
        };
    }

    CampaignRunner runner(cfg);
    std::printf("campaign '%s': %zu jobs on %u workers%s\n",
                opt.campaign.c_str(), total,
                resolve_workers(opt.jobs),
                opt.timeout_ms != 0 ? (" (watchdog " +
                                       std::to_string(opt.timeout_ms) +
                                       " ms, retries " +
                                       std::to_string(opt.retries) + ")")
                                          .c_str()
                                    : "");
    const CampaignResult result = runner.run(jobs);

    if (opt.campaign == "faults") print_fault_table(result.records);

    bool expect_genuine_failed = false;
    if (opt.campaign == "diff") {
        double genuine = 0.0, expected = 0.0;
        unsigned diverged = 0, shrunk = 0;
        for (const JobRecord& r : result.records) {
            const auto& m = r.report.metrics;
            if (const auto it = m.find("genuine"); it != m.end()) {
                genuine += it->second;
                if (it->second > 0.0) ++diverged;
            }
            if (const auto it = m.find("expected"); it != m.end()) {
                expected += it->second;
            }
            if (m.count("shrunk_words") != 0) ++shrunk;
        }
        std::printf("\n==== diff oracle ====\n");
        std::printf("  seed 0x%llx, %zu scenarios, inject=%s\n", opt.seed,
                    result.records.size(), opt.inject.c_str());
        std::printf("  genuine divergences: %.0f across %u scenario(s)"
                    " (%u shrunk)\n", genuine, diverged, shrunk);
        std::printf("  expected-by-construction divergences: %.0f\n",
                    expected);
        if (!opt.repro_out.empty() && shrunk != 0) {
            std::printf("  reproducers: %s/\n", opt.repro_out.c_str());
        }
        if (opt.expect_genuine && genuine == 0.0) {
            std::printf("!! --expect-genuine: the batch flagged no genuine"
                        " divergence\n");
            expect_genuine_failed = true;
        }
    }

    std::printf("\n%s", result.summary.table().c_str());
    if (!opt.out.empty()) {
        std::printf("results: %s (%zu JSONL records)\n", opt.out.c_str(),
                    result.records.size());
    }
    if (!opt.verdicts_out.empty() &&
        !write_verdicts(opt.verdicts_out, result.records)) {
        return 2;
    }
    return result.summary.all_passed() && !expect_genuine_failed ? 0 : 1;
}
