#!/usr/bin/env python3
"""Run the kernel benchmark suite and emit a single merged JSON report.

Runs ``bench_kernel``, ``bench_frame_sim`` and ``bench_obs_overhead`` (all
Google Benchmark binaries) with ``--benchmark_format=json`` and merges their
results into one document — the format committed as ``bench/baseline.json`` and produced by
CI for ``tools/bench_compare.py`` to gate on.

Usage:
    tools/bench_report.py [--build-dir build] [--out report.json]
                          [--min-time 0.1] [--label LABEL]

Refreshing the committed baseline after an intentional perf change:
    tools/bench_report.py --build-dir build --out bench/baseline.json
"""

import argparse
import json
import subprocess
import sys
from pathlib import Path

BENCH_BINARIES = ["bench_kernel", "bench_frame_sim", "bench_obs_overhead",
                  "bench_ckpt", "bench_iss"]


def run_benchmark(binary: Path, min_time: float) -> dict:
    cmd = [
        str(binary),
        "--benchmark_format=json",
        f"--benchmark_min_time={min_time}",
    ]
    proc = subprocess.run(cmd, capture_output=True, text=True)
    if proc.returncode != 0:
        sys.stderr.write(proc.stderr)
        raise SystemExit(f"benchmark failed: {' '.join(cmd)}")
    return json.loads(proc.stdout)


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--build-dir", default="build")
    ap.add_argument("--out", default="-", help="output path ('-' = stdout)")
    ap.add_argument("--min-time", type=float, default=0.1,
                    help="per-benchmark minimum measurement time (s)")
    ap.add_argument("--label", default="",
                    help="free-form label recorded in the report")
    args = ap.parse_args()

    bench_dir = Path(args.build_dir) / "bench"
    report = {"label": args.label, "context": {}, "benchmarks": {}}
    for name in BENCH_BINARIES:
        binary = bench_dir / name
        if not binary.exists():
            raise SystemExit(f"missing benchmark binary: {binary} "
                             f"(build the '{name}' target first)")
        doc = run_benchmark(binary, args.min_time)
        ctx = doc.get("context", {})
        report["context"].setdefault("host_name", ctx.get("host_name"))
        report["context"].setdefault("num_cpus", ctx.get("num_cpus"))
        report["context"].setdefault("mhz_per_cpu", ctx.get("mhz_per_cpu"))
        report["context"].setdefault("library_build_type",
                                     ctx.get("library_build_type"))
        for b in doc.get("benchmarks", []):
            if b.get("run_type") == "aggregate":
                continue
            report["benchmarks"][b["name"]] = {
                "binary": name,
                "real_time": b["real_time"],
                "cpu_time": b["cpu_time"],
                "time_unit": b["time_unit"],
            }

    text = json.dumps(report, indent=2, sort_keys=False) + "\n"
    if args.out == "-":
        sys.stdout.write(text)
    else:
        Path(args.out).write_text(text)
        print(f"wrote {len(report['benchmarks'])} benchmark entries "
              f"to {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
