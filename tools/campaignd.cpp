// campaignd: the campaign service daemon CLI.
//
//   campaignd --socket /tmp/campaignd.sock --state /tmp/campaignd.state \
//             [--shards N] [--executors N] [--jobs N] [--ckpt-interval N] \
//             [--timeout MS] [--retries R] [--max-jobs N] \
//             [--max-per-client N] [--max-queued N] [--quiet]
//
// Runs in the foreground (a supervisor or the CI smoke backgrounds it) and
// serves the wire protocol on the socket until a client sends kShutdown or
// the process receives SIGINT/SIGTERM. Jobs in flight at a graceful stop
// checkpoint out and resume at the next start; a SIGKILL'd daemon recovers
// from the journal in --state.
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "svc/daemon.hpp"

namespace {

autovision::svc::Daemon* g_daemon = nullptr;

void on_signal(int) {
    if (g_daemon != nullptr) g_daemon->signal_stop();
}

int usage(const char* argv0) {
    std::fprintf(
        stderr,
        "usage: %s --socket PATH --state DIR [--shards N] [--executors N]\n"
        "          [--jobs N] [--ckpt-interval N] [--timeout MS]\n"
        "          [--retries R] [--max-jobs N] [--max-per-client N]\n"
        "          [--max-queued N] [--quiet]\n",
        argv0);
    return 2;
}

}  // namespace

int main(int argc, char** argv) {
    using autovision::svc::Daemon;
    using autovision::svc::DaemonConfig;

    DaemonConfig cfg;
    for (int i = 1; i < argc; ++i) {
        const std::string a = argv[i];
        const auto val = [&]() -> const char* {
            return ++i < argc ? argv[i] : nullptr;
        };
        const char* v = nullptr;
        if (a == "--socket" && (v = val())) {
            cfg.socket_path = v;
        } else if (a == "--state" && (v = val())) {
            cfg.state_dir = v;
        } else if (a == "--shards" && (v = val())) {
            cfg.shards = static_cast<unsigned>(std::strtoul(v, nullptr, 0));
        } else if (a == "--executors" && (v = val())) {
            cfg.executors =
                static_cast<unsigned>(std::strtoul(v, nullptr, 0));
        } else if (a == "--jobs" && (v = val())) {
            cfg.exec.job_workers =
                static_cast<unsigned>(std::strtoul(v, nullptr, 0));
        } else if (a == "--ckpt-interval" && (v = val())) {
            cfg.exec.ckpt_interval =
                static_cast<unsigned>(std::strtoul(v, nullptr, 0));
        } else if (a == "--timeout" && (v = val())) {
            cfg.exec.timeout =
                std::chrono::milliseconds{std::strtol(v, nullptr, 0)};
        } else if (a == "--retries" && (v = val())) {
            cfg.exec.retries =
                static_cast<unsigned>(std::strtoul(v, nullptr, 0));
        } else if (a == "--max-jobs" && (v = val())) {
            cfg.admission.max_jobs = std::strtoul(v, nullptr, 0);
        } else if (a == "--max-per-client" && (v = val())) {
            cfg.admission.max_per_client = std::strtoul(v, nullptr, 0);
        } else if (a == "--max-queued" && (v = val())) {
            cfg.admission.max_queued_per_class = std::strtoul(v, nullptr, 0);
        } else if (a == "--quiet") {
            cfg.quiet = true;
        } else {
            return usage(argv[0]);
        }
    }
    if (cfg.socket_path.empty() || cfg.state_dir.empty()) {
        return usage(argv[0]);
    }

    // A client vanishing mid-write must surface as a write error, not kill
    // the daemon.
    std::signal(SIGPIPE, SIG_IGN);

    Daemon daemon(cfg);
    g_daemon = &daemon;
    std::signal(SIGINT, on_signal);
    std::signal(SIGTERM, on_signal);

    std::string err;
    if (!daemon.start(&err)) {
        std::fprintf(stderr, "campaignd: start failed: %s\n", err.c_str());
        return 1;
    }
    daemon.run();
    g_daemon = nullptr;
    return 0;
}
