#!/usr/bin/env python3
"""Gate a coverage JSON report against a committed baseline.

Fails (exit 1) when the current run's goal-bin hit percentage drops below
the baseline's, or when a goal bin the baseline hit is now unhit. Shape
changes (new groups/bins) are reported but never fail the gate — growing
the model is supposed to be easy; regressing against it is not.

Usage: cover_gate.py CURRENT.json BASELINE.json [--tolerance PCT]
"""

import argparse
import json
import sys


def load(path):
    with open(path, "r", encoding="utf-8") as fh:
        return json.load(fh)


def goal_hits(report):
    """{ 'group/bin': hits } over non-ignored bins."""
    out = {}
    for group in report.get("groups", []):
        for b in group.get("bins", []):
            if not b.get("ignore", False):
                out[f"{group['name']}/{b['name']}"] = b.get("hits", 0)
    return out


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("current")
    ap.add_argument("baseline")
    ap.add_argument(
        "--tolerance",
        type=float,
        default=0.0,
        help="allowed percent drop before the gate fails (default 0)",
    )
    args = ap.parse_args()

    cur = load(args.current)
    base = load(args.baseline)

    cur_pct = float(cur.get("percent", 0.0))
    base_pct = float(base.get("percent", 0.0))
    print(
        f"coverage gate: current {cur_pct:.2f}% "
        f"({cur.get('goal_hit')}/{cur.get('goal_bins')} goal bins), "
        f"baseline {base_pct:.2f}% "
        f"({base.get('goal_hit')}/{base.get('goal_bins')})"
    )

    failed = False
    if cur_pct + args.tolerance < base_pct:
        print(
            f"FAIL: bin-hit percentage dropped {base_pct - cur_pct:.2f} "
            f"points below the committed baseline",
            file=sys.stderr,
        )
        failed = True

    cur_bins = goal_hits(cur)
    base_bins = goal_hits(base)
    lost = sorted(
        name
        for name, hits in base_bins.items()
        if hits > 0 and cur_bins.get(name, 0) == 0 and name in cur_bins
    )
    if lost:
        print(
            f"FAIL: {len(lost)} goal bin(s) hit by the baseline are now "
            f"unhit:",
            file=sys.stderr,
        )
        for name in lost:
            print(f"  {name}", file=sys.stderr)
        failed = True

    new_bins = sorted(set(cur_bins) - set(base_bins))
    if new_bins:
        print(
            f"note: {len(new_bins)} goal bin(s) not in the baseline "
            f"(model grew; consider refreshing bench/cover_baseline.json)"
        )

    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
