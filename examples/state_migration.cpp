// Preempting and resuming a hardware task: state save/restore through the
// configuration port.
//
// The AutoVision schedule always lets an engine finish before swapping;
// the ReSim companion work (FPGA'12) extends verification to designs that
// *preempt* a module mid-job: capture its flip-flop state via readback
// (GCAPTURE), reconfigure the region for another task, and later restore
// the state with a GRESTORE-bearing bitstream so the job resumes exactly
// where it stopped.
//
// This example preempts the Census engine halfway through a frame, lets
// the Matching Engine use the region, resumes the CIE and shows the final
// feature image is bit-exact against an uninterrupted run.
#include <cstdio>

#include "bus/memory.hpp"
#include "bus/plb.hpp"
#include "engines/census_engine.hpp"
#include "engines/matching_engine.hpp"
#include "kernel/kernel.hpp"
#include "recon/rr_boundary.hpp"
#include "resim/icap_artifact.hpp"
#include "resim/portal.hpp"
#include "resim/simb.hpp"
#include "video/census.hpp"
#include "video/synth.hpp"

using namespace autovision;
using namespace rtlsim;

namespace {

constexpr Time kClk = 10 * NS;
constexpr std::uint32_t kIn = 0x1'0000;
constexpr std::uint32_t kOut = 0x2'0000;

}  // namespace

int main() {
    Scheduler sch;
    Clock clk(sch, "clk", kClk);
    ResetGen rst(sch, "rst", 3 * kClk);
    Memory mem;
    Plb plb(sch, "plb", clk.out, rst.out, Plb::Config{1, 16, 100000});
    plb.attach_slave(mem);
    Signal<Logic> done_line(sch, "done", Logic::L0);
    EngineRegs cie_regs(sch, "cie_regs", clk.out, 0x60);
    EngineRegs me_regs(sch, "me_regs", clk.out, 0x68);
    CensusEngine cie(sch, "cie", clk.out, rst.out, cie_regs);
    MatchingEngine me(sch, "me", clk.out, rst.out, me_regs);
    RrBoundary rr(sch, "rr", plb.master(0), done_line);
    rr.add_module(cie);
    rr.add_module(me);
    resim::ExtendedPortal portal(sch, "portal");
    resim::IcapArtifact icap(sch, "icap", portal);
    portal.map_module(1, 1, rr, 0);
    portal.map_module(1, 2, rr, 1);
    portal.initial_configuration(1, 1);

    const unsigned w = 64;
    const unsigned h = 48;
    video::SyntheticScene scene(video::SceneConfig::standard(w, h, 13));
    const video::Frame in = scene.frame(0);
    mem.load_bytes(kIn, in.pixels());

    auto run = [&](unsigned cycles) { sch.run_until(sch.now() + cycles * kClk); };
    auto feed = [&](const std::vector<std::uint32_t>& ws) {
        for (std::uint32_t word : ws) icap.icap_write(Word{word});
    };

    // Start the CIE on the frame.
    cie_regs.dcr_write(0x62, Word{kIn});
    cie_regs.dcr_write(0x63, Word{kOut});
    cie_regs.dcr_write(0x65, Word{(w << 16) | h});
    run(5);
    cie_regs.dcr_write(0x60, Word{1});
    run(800);
    std::printf("[t=%5.1f us] CIE mid-frame (busy=%d, %llu datapath cycles"
                " so far)\n",
                to_us(sch.now()), cie.busy(),
                static_cast<unsigned long long>(cie.busy_cycles()));

    // Preempt: capture (retrying until the DMA is quiescent), swap to ME.
    resim::SimB cap;
    cap.rr_id = 1;
    cap.module_id = 1;
    while (portal.captures() == 0) {
        feed(cap.build_capture());
        run(1);
    }
    std::printf("[t=%5.1f us] GCAPTURE: CIE state saved (%s)\n",
                to_us(sch.now()),
                portal.has_saved_state(1, 1) ? "stored in the portal" : "?");

    resim::SimB to_me;
    to_me.rr_id = 1;
    to_me.module_id = 2;
    feed(to_me.build());
    std::printf("[t=%5.1f us] region reconfigured: resident = %s\n",
                to_us(sch.now()), me.rm_active() ? "ME" : "?");
    run(500);  // the ME could do other work here

    // Resume: configuration with GRESTORE.
    resim::SimB back;
    back.rr_id = 1;
    back.module_id = 1;
    back.restore_state = true;
    feed(back.build());
    std::printf("[t=%5.1f us] GRESTORE: CIE back, busy=%d — job resumes\n",
                to_us(sch.now()), cie.busy());

    unsigned guard = 0;
    while (!cie_regs.done() && ++guard < 2000) run(64);
    std::printf("[t=%5.1f us] CIE frame complete\n", to_us(sch.now()));

    // Verify bit-exactness against the golden model.
    const video::Frame want = video::census_transform(in);
    std::size_t mismatches = 0;
    for (unsigned i = 0; i < want.size(); ++i) {
        if (mem.peek_u8(kOut + i) != want.pixels()[i]) ++mismatches;
    }
    std::printf("\nfeature image after preempt/resume: %zu mismatching"
                " pixels (expected 0)\n",
                mismatches);
    std::printf("portal: %llu captures, %llu restores, %llu"
                " reconfigurations\n",
                static_cast<unsigned long long>(portal.captures()),
                static_cast<unsigned long long>(portal.restores()),
                static_cast<unsigned long long>(portal.reconfigurations()));
    return mismatches == 0 && cie_regs.done() ? 0 : 1;
}
