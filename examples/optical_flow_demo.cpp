// The full AutoVision Optical Flow Demonstrator, end to end.
//
// Runs the complete system — PowerPC firmware, PLB, DCR, interrupt
// controller, both engines swapping through one reconfigurable region twice
// per frame via SimB transfers — on a synthetic traffic scene, and renders
// the results: for every processed frame it writes the input, the census
// feature image and a colour overlay with the measured motion vectors to
// ./optical_flow_out/*.ppm|pgm. It finishes with a ground-truth accuracy
// summary for the moving objects.
#include <cstdio>
#include <filesystem>

#include "sys/address_map.hpp"
#include "sys/testbench.hpp"
#include "video/flow.hpp"

using namespace autovision;
using namespace autovision::sys;

int main() {
    SystemConfig cfg;
    cfg.width = 128;
    cfg.height = 96;
    cfg.step = 4;
    cfg.margin = 8;
    cfg.search = 3;
    cfg.simb_payload_words = 100;

    constexpr unsigned kFrames = 4;
    Testbench tb(cfg, /*scene_seed=*/42);
    std::printf("simulating %u frames of %ux%u video"
                " (2 reconfigurations per frame)...\n",
                kFrames, cfg.width, cfg.height);
    const RunResult r = tb.run(kFrames);
    std::printf("run: %s — %.3f simulated ms in %.2f wall seconds\n",
                r.verdict().c_str(), rtlsim::to_ms(r.sim_time),
                static_cast<double>(r.wall_time.count()) / 1e9);
    std::printf("reconfigurations performed: %u (SimB-driven)\n",
                tb.sys.mailbox(kMbDprCount));

    const std::filesystem::path out = "optical_flow_out";
    std::filesystem::create_directories(out);

    video::MatchConfig mc;
    mc.step = cfg.step;
    mc.margin = cfg.margin;
    mc.search = static_cast<int>(cfg.search);

    unsigned gt_total = 0;
    unsigned gt_correct = 0;
    for (unsigned f = 0; f < r.frames_completed; ++f) {
        const video::Frame input = tb.scene.frame(f);
        video::write_pgm(input,
                         (out / ("frame" + std::to_string(f) + "_in.pgm"))
                             .string());

        // The census image the engine wrote for this frame.
        const std::uint32_t caddr = OpticalFlowSystem::census_addr_for_frame(f);
        video::Frame census(cfg.width, cfg.height);
        for (unsigned i = 0; i < census.size(); ++i) {
            census.pixels()[i] = tb.sys.mem.peek_u8(caddr + i);
        }
        video::write_pgm(census,
                         (out / ("frame" + std::to_string(f) + "_census.pgm"))
                             .string());

        // Decode the motion field the ME wrote (last frame only survives in
        // memory; recompute per frame from the golden model for the others
        // — they were checked bit-exact by the scoreboard during the run).
        video::MotionField field;
        if (f + 1 == r.frames_completed) {
            field.cfg = mc;
            field.frame_w = cfg.width;
            field.frame_h = cfg.height;
            const unsigned gw = field.grid_w();
            const unsigned gh = field.grid_h();
            for (unsigned gy = 0; gy < gh; ++gy) {
                for (unsigned gx = 0; gx < gw; ++gx) {
                    const std::uint32_t w =
                        tb.sys.mem.peek_u32(kFieldBuf + 4 * (gy * gw + gx));
                    field.vectors.push_back(video::decode_motion_word(
                        w, mc.margin + gx * mc.step, mc.margin + gy * mc.step));
                }
            }
        } else {
            const video::Frame cprev =
                f == 0 ? video::Frame(cfg.width, cfg.height, 0)
                       : video::census_transform(tb.scene.frame(f - 1));
            field = video::match_census(cprev, video::census_transform(input),
                                        mc);
        }

        video::Frame rr2;
        video::Frame gg;
        video::Frame bb;
        video::make_overlay(input, field, /*min_mag=*/2, rr2, gg, bb);
        video::write_ppm(rr2, gg, bb,
                         (out / ("frame" + std::to_string(f) + "_flow.ppm"))
                             .string());

        // Ground-truth scoring: grid points inside a moving object (away
        // from its boundary) should recover the object velocity.
        if (f > 0) {
            for (const video::MotionVector& v : field.vectors) {
                int dx = 0;
                int dy = 0;
                bool on_obj = tb.scene.ground_truth(f - 1, v.x, v.y, dx, dy);
                // Only score strict-interior points (all 4 neighbours on
                // the same object).
                int d2x;
                int d2y;
                on_obj = on_obj &&
                         tb.scene.ground_truth(f - 1, v.x - 4, v.y, d2x, d2y) &&
                         tb.scene.ground_truth(f - 1, v.x + 4, v.y, d2x, d2y) &&
                         tb.scene.ground_truth(f - 1, v.x, v.y - 4, d2x, d2y) &&
                         tb.scene.ground_truth(f - 1, v.x, v.y + 4, d2x, d2y);
                if (!on_obj || (dx == 0 && dy == 0)) continue;
                ++gt_total;
                if (v.dx == dx && v.dy == dy) ++gt_correct;
            }
        }
    }

    if (gt_total > 0) {
        std::printf("ground truth: %u/%u interior object vectors exact"
                    " (%.1f %%)\n",
                    gt_correct, gt_total, 100.0 * gt_correct / gt_total);
    }
    std::printf("wrote %u frames of output to %s/\n", r.frames_completed,
                out.string().c_str());
    std::printf("displayed frames captured by the VideoOut VIP: %zu\n",
                tb.displayed.size());
    return r.clean() ? 0 : 1;
}
