// autovision_sim — command-line driver for the full demonstrator.
//
// The "ship it" entry point: run the integrated Optical Flow Demonstrator
// with either simulation method, any geometry, optional fault injection and
// optional VCD dumping, and get the run verdict + statistics.
//
//   autovision_sim [options]
//     --method vm|resim        simulation method          (default resim)
//     --frames N               video frames to process    (default 3)
//     --width W --height H     frame geometry             (default 64x48)
//     --search R               match search radius        (default 3)
//     --simb N                 SimB payload words         (default 100)
//     --clk-div N              configuration clock divider (default 4)
//     --fault bug.xxx.y        inject a catalogued fault  (default none)
//     --vcd FILE               dump key waveforms
//     --list-faults            print the fault catalogue and exit
#include <cstdio>
#include <cstring>
#include <string>

#include "sys/address_map.hpp"
#include "sys/detection.hpp"
#include "sys/testbench.hpp"

using namespace autovision;
using namespace autovision::sys;

namespace {

Fault fault_by_id(const std::string& id) {
    for (const FaultInfo& fi : kFaultCatalog) {
        if (id == fi.id) return fi.fault;
    }
    return Fault::kNone;
}

int usage(const char* argv0) {
    std::printf("usage: %s [--method vm|resim] [--frames N] [--width W]"
                " [--height H]\n    [--search R] [--simb N] [--clk-div N]"
                " [--fault bug.xxx.y] [--vcd FILE]\n    [--list-faults]\n",
                argv0);
    return 2;
}

}  // namespace

int main(int argc, char** argv) {
    SystemConfig cfg;
    unsigned frames = 3;
    std::string fault_id;

    for (int i = 1; i < argc; ++i) {
        const std::string a = argv[i];
        auto next = [&]() -> const char* {
            return (i + 1 < argc) ? argv[++i] : nullptr;
        };
        if (a == "--list-faults") {
            for (const FaultInfo& fi : kFaultCatalog) {
                std::printf("%-12s %s\n", fi.id, fi.description);
            }
            return 0;
        }
        const char* v = nullptr;
        if (a == "--method" && (v = next())) {
            cfg.method = std::strcmp(v, "vm") == 0
                             ? FirmwareConfig::Method::kVm
                             : FirmwareConfig::Method::kResim;
        } else if (a == "--frames" && (v = next())) {
            frames = static_cast<unsigned>(std::stoul(v));
        } else if (a == "--width" && (v = next())) {
            cfg.width = static_cast<unsigned>(std::stoul(v));
        } else if (a == "--height" && (v = next())) {
            cfg.height = static_cast<unsigned>(std::stoul(v));
        } else if (a == "--search" && (v = next())) {
            cfg.search = static_cast<unsigned>(std::stoul(v));
        } else if (a == "--simb" && (v = next())) {
            cfg.simb_payload_words = static_cast<std::uint32_t>(std::stoul(v));
        } else if (a == "--clk-div" && (v = next())) {
            cfg.icap_clk_div = static_cast<unsigned>(std::stoul(v));
        } else if (a == "--fault" && (v = next())) {
            fault_id = v;
        } else if (a == "--vcd" && (v = next())) {
            cfg.vcd_path = v;
        } else {
            return usage(argv[0]);
        }
    }

    if (!fault_id.empty()) {
        const Fault f = fault_by_id(fault_id);
        if (f == Fault::kNone) {
            std::printf("unknown fault '%s' (try --list-faults)\n",
                        fault_id.c_str());
            return 2;
        }
        cfg = config_for_fault(cfg, f);
    }

    std::printf("method=%s  %ux%u  frames=%u  search=%u  simb=%u words "
                " clk-div=%u  fault=%s\n",
                cfg.method == FirmwareConfig::Method::kVm ? "vm" : "resim",
                cfg.width, cfg.height, frames, cfg.search,
                cfg.simb_payload_words, cfg.icap_clk_div,
                fault_id.empty() ? "none" : fault_id.c_str());

    Testbench tb(cfg);
    const RunResult r = tb.run(frames);

    std::printf("\nverdict: %s\n", r.verdict().c_str());
    std::printf("frames: %u/%u  simulated: %.3f ms  wall: %.2f s\n",
                r.frames_completed, r.frames_requested,
                rtlsim::to_ms(r.sim_time),
                static_cast<double>(r.wall_time.count()) / 1e9);
    std::printf("stages (sim ms): CIE %.3f  ME %.3f  DPR %.3f  CPU %.3f\n",
                rtlsim::to_ms(r.stages.cie_sim), rtlsim::to_ms(r.stages.me_sim),
                rtlsim::to_ms(r.stages.dpr_sim),
                rtlsim::to_ms(r.stages.cpu_sim));
    std::printf("CPU: %llu instructions, %llu interrupts;"
                " reconfigurations: %u\n",
                static_cast<unsigned long long>(tb.sys.cpu.instructions()),
                static_cast<unsigned long long>(tb.sys.cpu.interrupts_taken()),
                tb.sys.mailbox(kMbDprCount));
    std::printf("kernel: %llu delta cycles, %llu signal updates;"
                " PLB utilisation %.1f %%\n",
                static_cast<unsigned long long>(r.stats.delta_cycles),
                static_cast<unsigned long long>(r.stats.signal_updates),
                100.0 * tb.sys.plb.utilisation());
    if (!r.diagnostics.empty()) {
        std::printf("first diagnostics:\n");
        for (std::size_t i = 0; i < r.diagnostics.size() && i < 5; ++i) {
            std::printf("  [%.3f ms] %s: %s\n",
                        rtlsim::to_ms(r.diagnostics[i].time),
                        r.diagnostics[i].source.c_str(),
                        r.diagnostics[i].message.c_str());
        }
    }
    if (!cfg.vcd_path.empty()) {
        std::printf("waveforms written to %s\n", cfg.vcd_path.c_str());
    }
    return r.clean() ? 0 : 1;
}
