// Adapting to driving conditions: three engines time-multiplexed through
// one region.
//
// The AutoVision project's motivating scenario: the driver-assistance
// system swaps video engines as conditions change — optical flow (census +
// matching) on the open road, edge detection in the tunnel. This example
// scripts such a scenario: the "condition detector" (testbench C++,
// standing in for the application logic) requests the appropriate engine
// per phase, every swap travels through a SimB like a real bitstream, and
// each engine processes frames while resident.
#include <cstdio>

#include "bus/memory.hpp"
#include "bus/plb.hpp"
#include "engines/census_engine.hpp"
#include "engines/edge_engine.hpp"
#include "engines/matching_engine.hpp"
#include "kernel/kernel.hpp"
#include "recon/rr_boundary.hpp"
#include "resim/icap_artifact.hpp"
#include "resim/portal.hpp"
#include "resim/simb.hpp"
#include "video/census.hpp"
#include "video/flow.hpp"
#include "video/sobel.hpp"
#include "video/synth.hpp"

using namespace autovision;
using namespace rtlsim;

namespace {
constexpr Time kClk = 10 * NS;
constexpr std::uint32_t kIn = 0x1'0000;
constexpr std::uint32_t kOutA = 0x2'0000;
constexpr std::uint32_t kOutB = 0x3'0000;
constexpr std::uint32_t kField = 0x4'0000;
}  // namespace

int main() {
    Scheduler sch;
    Clock clk(sch, "clk", kClk);
    ResetGen rst(sch, "rst", 3 * kClk);
    Memory mem;
    Plb plb(sch, "plb", clk.out, rst.out, Plb::Config{1, 16, 100000});
    plb.attach_slave(mem);
    Signal<Logic> done_line(sch, "done", Logic::L0);
    EngineRegs cie_regs(sch, "cie_regs", clk.out, 0x60);
    EngineRegs me_regs(sch, "me_regs", clk.out, 0x68);
    EngineRegs edge_regs(sch, "edge_regs", clk.out, 0x78);
    CensusEngine cie(sch, "cie", clk.out, rst.out, cie_regs);
    MatchingEngine me(sch, "me", clk.out, rst.out, me_regs);
    EdgeEngine edge(sch, "edge", clk.out, rst.out, edge_regs);
    RrBoundary rr(sch, "rr", plb.master(0), done_line);
    rr.add_module(cie);
    rr.add_module(me);
    rr.add_module(edge);
    resim::ExtendedPortal portal(sch, "portal");
    resim::IcapArtifact icap(sch, "icap", portal);
    portal.map_module(1, 1, rr, 0);
    portal.map_module(1, 2, rr, 1);
    portal.map_module(1, 3, rr, 2);
    portal.initial_configuration(1, 1);

    const unsigned w = 64;
    const unsigned h = 48;
    video::SyntheticScene scene(video::SceneConfig::standard(w, h, 33));

    auto run = [&](unsigned cycles) { sch.run_until(sch.now() + cycles * kClk); };
    auto swap_to = [&](std::uint8_t module, const char* name) {
        resim::SimB b;
        b.rr_id = 1;
        b.module_id = module;
        b.payload_words = 64;
        for (std::uint32_t word : b.build()) icap.icap_write(Word{word});
        std::printf("[t=%7.1f us] >>> reconfigured region for %s\n",
                    to_us(sch.now()), name);
    };
    auto run_engine = [&](EngineRegs& regs, std::uint32_t base,
                          std::uint32_t src, std::uint32_t dst,
                          std::uint32_t src2 = 0, std::uint32_t param = 0) {
        regs.dcr_write(base + EngineRegs::kSrc, Word{src});
        regs.dcr_write(base + EngineRegs::kDst, Word{dst});
        if (src2 != 0) regs.dcr_write(base + EngineRegs::kSrc2, Word{src2});
        if (param != 0) regs.dcr_write(base + EngineRegs::kParam, Word{param});
        regs.dcr_write(base + EngineRegs::kDims, Word{(w << 16) | h});
        run(5);
        regs.dcr_write(base + EngineRegs::kCtrl, Word{1});
        unsigned guard = 0;
        while (!regs.done() && ++guard < 5000) run(64);
        regs.dcr_write(base + EngineRegs::kStatus, Word{2});  // clear done
        return guard < 5000;
    };

    run(10);
    std::printf("phase 1: open road — optical flow (CIE + ME per frame)\n");
    mem.load_bytes(kIn, scene.frame(0).pixels());
    bool ok = run_engine(cie_regs, 0x60, kIn, kOutA);
    std::printf("[t=%7.1f us] CIE frame 0 done (%s)\n", to_us(sch.now()),
                ok ? "ok" : "TIMEOUT");
    swap_to(2, "Matching Engine");
    mem.load_bytes(kIn, scene.frame(1).pixels());
    // (census of frame 1 would normally come from the CIE; reuse buffer A
    // as prev and compute cur into B with another CIE pass after swap-back)
    const std::uint32_t param = 2u | (4u << 8) | (8u << 16);
    ok = run_engine(me_regs, 0x68, kOutA, kField, kOutA, param) && ok;
    std::printf("[t=%7.1f us] ME matched against previous census (%s)\n",
                to_us(sch.now()), ok ? "ok" : "TIMEOUT");

    std::printf("\nphase 2: entering the tunnel — edge detection\n");
    swap_to(3, "Edge Detection Engine");
    for (unsigned f = 2; f < 4; ++f) {
        mem.load_bytes(kIn, scene.frame(f).pixels());
        ok = run_engine(edge_regs, 0x78, kIn, kOutB) && ok;
        const video::Frame want = video::sobel_transform(scene.frame(f));
        std::size_t mm = 0;
        for (unsigned i = 0; i < want.size(); ++i) {
            if (mem.peek_u8(kOutB + i) != want.pixels()[i]) ++mm;
        }
        std::printf("[t=%7.1f us] edge frame %u done, %zu mismatches vs"
                    " golden model\n",
                    to_us(sch.now()), f, mm);
        ok = ok && mm == 0;
    }

    std::printf("\nphase 3: leaving the tunnel — back to optical flow\n");
    swap_to(1, "Census Image Engine");
    mem.load_bytes(kIn, scene.frame(4).pixels());
    ok = run_engine(cie_regs, 0x60, kIn, kOutA) && ok;
    const video::Frame want =
        video::census_transform(scene.frame(4));
    std::size_t mm = 0;
    for (unsigned i = 0; i < want.size(); ++i) {
        if (mem.peek_u8(kOutA + i) != want.pixels()[i]) ++mm;
    }
    std::printf("[t=%7.1f us] CIE frame 4 done, %zu mismatches\n",
                to_us(sch.now()), mm);
    ok = ok && mm == 0;

    std::printf("\n%llu reconfigurations, %zu checker diagnostics, data %s\n",
                static_cast<unsigned long long>(portal.reconfigurations()),
                sch.diagnostics().size(), ok ? "bit-exact" : "CORRUPTED");
    return ok && sch.diagnostics().empty() ? 0 : 1;
}
