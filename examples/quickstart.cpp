// Quickstart: simulating dynamic partial reconfiguration with ReSim.
//
// Builds the smallest meaningful DRS: one reconfigurable region hosting two
// video engines, a reconfiguration controller fetching simulation-only
// bitstreams (SimBs) from memory, and the ReSim artifacts (ICAP artifact +
// Extended Portal) that swap the modules when the bitstream completes.
// There is no CPU here — the "driver" is plain C++ poking the controller's
// DCR registers — so every step of the reconfiguration lifecycle is visible.
//
// Build & run:  cmake -B build -G Ninja && cmake --build build &&
//               ./build/examples/quickstart
#include <cstdio>

#include "bus/memory.hpp"
#include "bus/plb.hpp"
#include "engines/census_engine.hpp"
#include "engines/matching_engine.hpp"
#include "kernel/kernel.hpp"
#include "recon/icap_ctrl.hpp"
#include "recon/isolation.hpp"
#include "recon/rr_boundary.hpp"
#include "resim/icap_artifact.hpp"
#include "resim/portal.hpp"
#include "resim/simb.hpp"

using namespace autovision;
using namespace rtlsim;

int main() {
    // --- 1. the simulation kernel: one scheduler, one clock, one reset ---
    Scheduler sch;
    Clock clk(sch, "clk", 10 * NS);  // 100 MHz
    ResetGen rst(sch, "rst", 30 * NS);

    // --- 2. the static design: bus, memory, reconfiguration controller ---
    Memory mem;
    Plb plb(sch, "plb", clk.out, rst.out, Plb::Config{2, 16, 100000});
    plb.attach_slave(mem);

    // --- 3. the reconfigurable region with two swappable engines -----------
    Signal<Logic> done_line(sch, "done_line", Logic::L0);
    EngineRegs cie_regs(sch, "cie_regs", clk.out, 0x60);
    EngineRegs me_regs(sch, "me_regs", clk.out, 0x68);
    CensusEngine cie(sch, "cie", clk.out, rst.out, cie_regs);
    MatchingEngine me(sch, "me", clk.out, rst.out, me_regs);
    RrBoundary rr(sch, "rr", plb.master(1), done_line);
    rr.add_module(cie);  // slot 0
    rr.add_module(me);   // slot 1

    // Isolation gates the region's outputs while it reconfigures; without
    // it the injected X would escape onto the bus (see isolation_demo).
    Isolation iso(sch, "iso", 0x58);
    rr.set_isolation_signal(iso.isolate);

    // --- 4. the ReSim simulation-only layer ---------------------------------
    resim::ExtendedPortal portal(sch, "portal");
    resim::IcapArtifact icap(sch, "icap", portal);
    portal.map_module(/*rr_id=*/1, /*module_id=*/1, rr, 0);  // CIE
    portal.map_module(/*rr_id=*/1, /*module_id=*/2, rr, 1);  // ME
    portal.initial_configuration(1, 1);  // power-on: CIE resident

    IcapCtrl ctrl(sch, "icapctrl", clk.out, rst.out, plb.master(0), icap,
                  IcapCtrl::Config{});

    // --- 5. stage a SimB that swaps the ME into region 1 --------------------
    resim::SimB simb;
    simb.rr_id = 1;
    simb.module_id = 2;
    simb.payload_words = 16;
    const auto words = simb.build();
    mem.load_words(0x4000, words);

    std::printf("staged SimB (%zu words):\n%s\n", words.size(),
                resim::SimB::describe(words).c_str());

    // --- 6. drive the reconfiguration like a software driver would ----------
    sch.run_until(100 * NS);
    std::printf("[%6.2f us] resident module: %s\n", to_us(sch.now()),
                cie.rm_active() ? "CIE" : me.rm_active() ? "ME" : "none");

    iso.dcr_write(0x58, Word{1});        // isolate the region first
    ctrl.dcr_write(0x52, Word{0x4000});  // bitstream address
    ctrl.dcr_write(0x53, Word{static_cast<std::uint32_t>(words.size() * 4)});
    ctrl.dcr_write(0x50, Word{1});       // start the transfer
    std::printf("[%6.2f us] bitstream transfer started\n", to_us(sch.now()));

    sch.run_until(sch.now() + 50 * NS);  // the controller latches the start
    while (ctrl.busy()) sch.run_until(sch.now() + 100 * NS);
    iso.dcr_write(0x58, Word{0});        // release isolation afterwards
    sch.run_until(sch.now() + 50 * NS);
    std::printf("[%6.2f us] transfer complete: %llu words through the ICAP,"
                " %llu reconfiguration(s)\n",
                to_us(sch.now()),
                static_cast<unsigned long long>(ctrl.words_to_icap()),
                static_cast<unsigned long long>(portal.reconfigurations()));
    std::printf("[%6.2f us] resident module: %s\n", to_us(sch.now()),
                cie.rm_active() ? "CIE" : me.rm_active() ? "ME" : "none");

    // --- 7. inspect the diagnostics (a clean run has none) ------------------
    std::printf("\ncheckers reported %zu diagnostic(s)\n",
                sch.diagnostics().size());
    for (const Diag& d : sch.diagnostics()) {
        std::printf("  %s: %s\n", d.source.c_str(), d.message.c_str());
    }
    return sch.diagnostics().empty() && me.rm_active() ? 0 : 1;
}
