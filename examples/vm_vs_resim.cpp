// Virtual Multiplexing vs ReSim on the paper's signature bug.
//
// bug.dpr.6b: the firmware starts the bitstream transfer and then waits a
// *fixed delay* before resetting and starting the newly configured engine —
// a delay tuned for the original, faster configuration clock. On the
// modified design (slower configuration clock) the delay is too short: the
// start pulse fires while the region is still being configured and is
// physically lost.
//
// Under Virtual Multiplexing the swap is zero-delay (a signature-register
// write), so the buggy timing is invisible and the simulation passes.
// Under ReSim the swap happens only after the *last SimB word* reaches the
// ICAP, the race is real, and the system visibly hangs. This example runs
// both simulations of the same buggy design and prints the evidence.
#include <cstdio>

#include "sys/address_map.hpp"
#include "sys/detection.hpp"

using namespace autovision;
using namespace autovision::sys;

namespace {

void show(const char* method, const RunResult& r, const Testbench& tb) {
    std::printf("--- %s ---\n", method);
    std::printf("  verdict:           %s\n", r.verdict().c_str());
    std::printf("  frames completed:  %u/%u\n", r.frames_completed,
                r.frames_requested);
    std::printf("  CIE/ME jobs:       %u / %u\n", tb.sys.mailbox(kMbCieCount),
                tb.sys.mailbox(kMbMeCount));
    std::printf("  reconfigurations:  %u started\n",
                tb.sys.mailbox(kMbDprCount));
    for (const auto& d : r.diagnostics) {
        std::printf("  diag @ %.3f ms: %s: %s\n", rtlsim::to_ms(d.time),
                    d.source.c_str(), d.message.c_str());
    }
    std::printf("\n");
}

}  // namespace

int main() {
    SystemConfig base;
    base.width = 64;
    base.height = 48;
    base.search = 2;
    base.simb_payload_words = 100;
    base.icap_clk_div = 4;  // the modified (slow) configuration clock

    const SystemConfig buggy = config_for_fault(base, Fault::kDpr6bShortWait);

    std::printf("design under test: engine reset delayed by a fixed loop of"
                " %u iterations,\nconfiguration clock divider %u (the"
                " modified, slower scheme)\n\n",
                buggy.delay_loops, buggy.icap_clk_div);

    SystemConfig vm_cfg = buggy;
    vm_cfg.method = FirmwareConfig::Method::kVm;
    Testbench vm_tb(vm_cfg);
    const RunResult vm_r = vm_tb.run(2);
    show("Virtual Multiplexing (zero-delay swap)", vm_r, vm_tb);

    SystemConfig rs_cfg = buggy;
    rs_cfg.method = FirmwareConfig::Method::kResim;
    Testbench rs_tb(rs_cfg);
    const RunResult rs_r = rs_tb.run(2);
    show("ReSim (bitstream-timed swap)", rs_r, rs_tb);

    std::printf("conclusion: the identical buggy design %s under VM and %s"
                " under ReSim —\nonly the bitstream-accurate timing exposes"
                " bug.dpr.6b, matching Table III.\n",
                vm_r.clean() ? "PASSES" : "fails",
                rs_r.clean() ? "passes" : "FAILS");

    // The paper's shipped fix: enlarge the dummy loop.
    SystemConfig fixed = rs_cfg;
    fixed.delay_loops = 6000;
    Testbench fx_tb(fixed);
    const RunResult fx_r = fx_tb.run(2);
    std::printf("after the paper's fix (longer dummy loops): ReSim run is"
                " %s\n",
                fx_r.clean() ? "clean" : fx_r.verdict().c_str());
    return (vm_r.clean() && !rs_r.clean() && fx_r.clean()) ? 0 : 1;
}
