// Error injection and the isolation module.
//
// While a region is being reconfigured its outputs are garbage; ReSim
// models this by injecting X on every boundary output for the duration of
// the SimB payload. The demonstrator's Isolation module clamps the boundary
// while the software holds it enabled. This example shows all three sides:
//   1. the correct driver sequence (isolate -> reconfigure -> release):
//      nothing escapes;
//   2. the buggy driver (bug.dpr.1, isolation never enabled): X reaches the
//      PLB and the interrupt controller, and every checker lights up;
//   3. ReSim's documented extension point: a custom error source replacing
//      the default X injector (here: a stuck-at spurious bus requester).
#include <cstdio>

#include "sys/address_map.hpp"
#include "sys/detection.hpp"

using namespace autovision;
using namespace autovision::sys;

namespace {

void print_diags(const RunResult& r, std::size_t limit = 6) {
    if (r.diagnostics.empty()) {
        std::printf("  (no checker diagnostics)\n");
        return;
    }
    for (std::size_t i = 0; i < r.diagnostics.size() && i < limit; ++i) {
        std::printf("  diag @ %.3f ms: %s: %s\n",
                    rtlsim::to_ms(r.diagnostics[i].time),
                    r.diagnostics[i].source.c_str(),
                    r.diagnostics[i].message.c_str());
    }
    if (r.diagnostics.size() > limit) {
        std::printf("  ... and %zu more\n", r.diagnostics.size() - limit);
    }
}

/// A design-specific error source, as Section IV-B allows: instead of X,
/// the dying region emits a spurious bus request to a bogus address.
struct SpuriousRequester final : ErrorInjector {
    void inject(RrOutputs& o) override {
        o = RrOutputs::idle();
        o.req = rtlsim::Logic::L1;
        o.rnw = rtlsim::Logic::L1;
        o.addr = rtlsim::Word{0xEE00'0000};
        o.nbeats = rtlsim::LVec<16>{1};
    }
    const char* name() const override { return "spurious-requester"; }
};

}  // namespace

int main() {
    SystemConfig base;
    base.width = 64;
    base.height = 48;
    base.search = 2;
    base.simb_payload_words = 400;  // a long payload: a wide error window

    std::printf("=== 1. correct driver: isolation held during every"
                " reconfiguration ===\n");
    Testbench ok_tb(base);
    const RunResult ok = ok_tb.run(2);
    std::printf("  verdict: %s; isolation register written %llu times\n",
                ok.verdict().c_str(),
                static_cast<unsigned long long>(ok_tb.sys.iso.writes()));
    print_diags(ok);

    std::printf("\n=== 2. bug.dpr.1: the driver never enables isolation"
                " ===\n");
    SystemConfig buggy = config_for_fault(base, Fault::kDpr1NoIsolation);
    Testbench bad_tb(buggy);
    const RunResult bad = bad_tb.run(2);
    std::printf("  verdict: %s; isolation register written %llu times\n",
                bad.verdict().c_str(),
                static_cast<unsigned long long>(bad_tb.sys.iso.writes()));
    print_diags(bad);

    std::printf("\n=== 3. custom error source (OOP override of the"
                " injector) ===\n");
    Testbench cust_tb(buggy);
    cust_tb.sys.rr.set_error_injector(std::make_unique<SpuriousRequester>());
    const RunResult cust = cust_tb.run(2);
    std::printf("  injector: %s\n  verdict: %s\n",
                cust_tb.sys.rr.error_injector().name(),
                cust.verdict().c_str());
    print_diags(cust);

    std::printf("\nsummary: isolation on -> clean; isolation off -> %zu"
                " diagnostics with the default X source and %zu with the"
                " custom source.\n",
                bad.diagnostics.size(), cust.diagnostics.size());
    return (ok.clean() && !bad.clean() && !cust.clean()) ? 0 : 1;
}
