#include "virtual_mux.hpp"

namespace autovision::vm {

VirtualMux::VirtualMux(rtlsim::Scheduler& sch, const std::string& name,
                       RrBoundary& boundary, std::uint32_t dcr_base)
    : Module(sch, name), rr_(boundary), base_(dcr_base) {}

void VirtualMux::map_module(std::uint32_t signature, unsigned slot) {
    slots_[signature] = slot;
}

void VirtualMux::dcr_write(std::uint32_t, rtlsim::Word w) {
    if (w.has_unknown()) {
        report("X written to engine_signature");
        return;
    }
    const auto sig = static_cast<std::uint32_t>(w.to_u64());
    initialised_ = true;
    signature_ = sig;
    const auto it = slots_.find(sig);
    if (it == slots_.end()) {
        report("engine_signature selects unmapped module " +
               std::to_string(sig));
        rr_.select(-1);
        return;
    }
    // Zero-delay swap: the defining (in)accuracy of Virtual Multiplexing.
    rr_.select(static_cast<int>(it->second));
    ++swaps_;
}

}  // namespace autovision::vm
