// Virtual Multiplexing — the traditional DPR simulation baseline.
//
// Both engines are instantiated in parallel inside an Engine_Wrapper; a
// simulation-only multiplexer selects the active one. The selector is the
// `engine_signature` register, written by (hacked) software over the DCR
// bus. Consequences the paper measures:
//   * module swap is zero-delay and software-triggered — the IcapCTRL and
//     the bitstream datapath are never exercised;
//   * no erroneous outputs are generated during a "reconfiguration", so the
//     isolation machinery is never tested;
//   * the signature register exists only in simulation; forgetting to
//     initialise it produces the false-alarm bug.hw.2.
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "kernel/kernel.hpp"
#include "recon/rr_boundary.hpp"

namespace autovision::vm {

class VirtualMux final : public rtlsim::Module, public DcrSlaveIf {
public:
    /// `dcr_base`: address of the engine_signature register. The register
    /// powers up *uninitialised* (no module selected, region outputs X)
    /// unless software writes it — exactly the bug.hw.2 hazard.
    VirtualMux(rtlsim::Scheduler& sch, const std::string& name,
               RrBoundary& boundary, std::uint32_t dcr_base);

    /// Bind a signature value to a boundary slot (signature 1 = CIE,
    /// 2 = ME in the demonstrator).
    void map_module(std::uint32_t signature, unsigned slot);

    [[nodiscard]] std::uint64_t swaps() const { return swaps_; }
    [[nodiscard]] bool initialised() const { return initialised_; }

    // --- DcrSlaveIf -------------------------------------------------------
    [[nodiscard]] bool dcr_claims(std::uint32_t regno) const override {
        return regno == base_;
    }
    [[nodiscard]] rtlsim::Word dcr_read(std::uint32_t) override {
        return initialised_ ? rtlsim::Word{signature_}
                            : rtlsim::Word::all_x();
    }
    void dcr_write(std::uint32_t, rtlsim::Word w) override;
    [[nodiscard]] std::string dcr_name() const override { return full_name(); }

    // --- checkpoint ------------------------------------------------------
    /// The signature register + bookkeeping; the slot map is topology.
    void ckpt_save(rtlsim::SnapWriter& w) const {
        w.u32(signature_);
        w.bool8(initialised_);
        w.u64(swaps_);
    }
    [[nodiscard]] bool ckpt_restore(rtlsim::SnapReader& r) {
        signature_ = r.u32();
        initialised_ = r.bool8();
        swaps_ = r.u64();
        return r.ok_so_far();
    }

private:
    RrBoundary& rr_;
    std::uint32_t base_;
    std::map<std::uint32_t, unsigned> slots_;
    std::uint32_t signature_ = 0;
    bool initialised_ = false;
    std::uint64_t swaps_ = 0;
};

}  // namespace autovision::vm
