#include "trace.hpp"

#include <cctype>

namespace rtlsim {

// Out-of-line thunk used by Scheduler::advance to avoid including trace.hpp
// from scheduler.cpp.
void tracer_sample_thunk(Tracer* t, Time now) { t->sample(now); }
void tracer_header_thunk(Tracer* t) { t->write_header(); }

std::string Tracer::make_id(std::size_t n) {
    // VCD identifiers use printable ASCII 33..126 as base-94 digits.
    std::string id;
    do {
        id.push_back(static_cast<char>(33 + n % 94));
        n /= 94;
    } while (n != 0);
    return id;
}

void Tracer::add(SignalBase& s) {
    entries_.push_back(Entry{&s, make_id(entries_.size()), {}});
}

void Tracer::write_header() {
    if (header_written_) return;
    header_written_ = true;

    os_ << "$timescale 1ps $end\n";
    os_ << "$scope module top $end\n";
    for (const Entry& e : entries_) {
        // VCD identifiers may not contain whitespace; flatten the
        // hierarchical name's dots to underscores for wide compatibility.
        std::string nm = e.sig->name();
        for (char& c : nm) {
            if (c == '.' || std::isspace(static_cast<unsigned char>(c)) != 0)
                c = '_';
        }
        // Multi-bit signals need an explicit bit range: several viewers
        // (and the VCD spec's reference syntax) treat a rangeless $var as
        // one bit regardless of the declared width.
        os_ << "$var wire " << e.sig->trace_width() << ' ' << e.id << ' '
            << nm;
        if (const unsigned w = e.sig->trace_width(); w > 1) {
            os_ << " [" << (w - 1) << ":0]";
        }
        os_ << " $end\n";
    }
    os_ << "$upscope $end\n$enddefinitions $end\n";
    os_ << "#0\n$dumpvars\n";
    for (Entry& e : entries_) {
        e.last.clear();
        emit(e);
    }
    os_ << "$end\n";
    time_open_ = true;
    last_time_ = 0;
}

void Tracer::emit(Entry& e) {
    std::string v = e.sig->trace_value();
    if (v == e.last) return;
    e.last = v;
    if (e.sig->trace_width() == 1) {
        os_ << v << e.id << '\n';
    } else {
        os_ << 'b' << v << ' ' << e.id << '\n';
    }
}

void Tracer::sample(Time t) {
    if (!header_written_) write_header();
    // Group all changes for this timestamp under one '#' record.
    bool stamped = (time_open_ && t == last_time_);
    for (Entry& e : entries_) {
        std::string v = e.sig->trace_value();
        if (v == e.last) continue;
        if (!stamped) {
            os_ << '#' << t << '\n';
            stamped = true;
            time_open_ = true;
            last_time_ = t;
        }
        e.last = std::move(v);
        if (e.sig->trace_width() == 1) {
            os_ << e.last << e.id << '\n';
        } else {
            os_ << 'b' << e.last << ' ' << e.id << '\n';
        }
    }
}

void Tracer::finish() { os_.flush(); }

}  // namespace rtlsim
