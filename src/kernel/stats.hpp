// rtlsim: simulation statistics counters.
#pragma once

#include <cstdint>

namespace rtlsim {

/// Aggregate activity counters maintained by the scheduler. "signal_updates"
/// counts committed value changes and is the kernel's measure of signal
/// switching activity — the quantity the paper invokes to explain why the
/// CIE (more toggling) simulates slower than the ME despite less simulated
/// time (Table II).
struct SimStats {
    std::uint64_t timed_events = 0;      ///< scheduled wall-of-time events run
    std::uint64_t delta_cycles = 0;      ///< eval/update rounds executed
    std::uint64_t proc_invocations = 0;  ///< process callbacks run
    std::uint64_t signal_updates = 0;    ///< committed signal value changes
    std::uint64_t time_steps = 0;        ///< distinct simulated timestamps

    void reset() { *this = SimStats{}; }

    bool operator==(const SimStats&) const = default;

    SimStats operator-(const SimStats& o) const {
        SimStats r;
        r.timed_events = timed_events - o.timed_events;
        r.delta_cycles = delta_cycles - o.delta_cycles;
        r.proc_invocations = proc_invocations - o.proc_invocations;
        r.signal_updates = signal_updates - o.signal_updates;
        r.time_steps = time_steps - o.time_steps;
        return r;
    }

    SimStats& operator+=(const SimStats& o) {
        timed_events += o.timed_events;
        delta_cycles += o.delta_cycles;
        proc_invocations += o.proc_invocations;
        signal_updates += o.signal_updates;
        time_steps += o.time_steps;
        return *this;
    }

    SimStats operator+(const SimStats& o) const {
        SimStats r = *this;
        r += o;
        return r;
    }
};

}  // namespace rtlsim
