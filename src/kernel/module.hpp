// rtlsim: hierarchical module base class.
#pragma once

#include <functional>
#include <initializer_list>
#include <memory>
#include <string>
#include <vector>

#include "scheduler.hpp"
#include "signal.hpp"

namespace rtlsim {

/// One entry of a static sensitivity list.
struct Sens {
    SignalBase* sig;
    Edge edge = Edge::Any;
};

[[nodiscard]] inline Sens posedge(SignalBase& s) { return {&s, Edge::Pos}; }
[[nodiscard]] inline Sens negedge(SignalBase& s) { return {&s, Edge::Neg}; }
[[nodiscard]] inline Sens anyedge(SignalBase& s) { return {&s, Edge::Any}; }

/// Base class for hardware modules. A module owns its processes and gives
/// them hierarchical names; signals are owned by whoever declares them
/// (usually the module itself or the enclosing testbench).
class Module {
public:
    Module(Scheduler& sch, std::string name, const Module* parent = nullptr)
        : sch_(sch),
          name_(parent != nullptr ? parent->full_name() + "." + name
                                  : std::move(name)) {}

    virtual ~Module() = default;

    Module(const Module&) = delete;
    Module& operator=(const Module&) = delete;

    [[nodiscard]] const std::string& full_name() const noexcept { return name_; }
    [[nodiscard]] Scheduler& scheduler() const noexcept { return sch_; }

    /// Assign every process of this module to one event lane (see
    /// DESIGN.md §13). Call after construction (so all processes exist)
    /// and before simulation starts. Modules whose processes couple
    /// through anything but committed signal reads must share a lane.
    void set_lane(std::uint16_t lane) {
        for (auto& p : procs_) sch_.set_process_lane(*p, lane);
    }

protected:
    /// Create a clocked process: runs on each triggering edge, never at
    /// elaboration (registers must not capture before the first real edge).
    Process& sync_proc(const std::string& n, std::function<void()> fn,
                       std::initializer_list<Sens> sens) {
        return make_proc(n, std::move(fn), sens, /*run_at_init=*/false);
    }

    /// Create a combinational process: runs whenever any input changes and
    /// once at elaboration so outputs have defined initial values.
    Process& comb_proc(const std::string& n, std::function<void()> fn,
                       std::initializer_list<Sens> sens) {
        return make_proc(n, std::move(fn), sens, /*run_at_init=*/true);
    }

    /// Emit a checker diagnostic attributed to this module.
    void report(const std::string& message) const {
        sch_.report(name_, message);
    }

    Scheduler& sch_;

private:
    Process& make_proc(const std::string& n, std::function<void()> fn,
                       std::initializer_list<Sens> sens, bool run_at_init) {
        procs_.push_back(
            std::make_unique<Process>(sch_, name_ + "." + n, std::move(fn)));
        Process& p = *procs_.back();
        for (const Sens& s : sens) s.sig->add_listener(p, s.edge);
        if (run_at_init) p.notify();
        return p;
    }

    std::string name_;
    std::vector<std::unique_ptr<Process>> procs_;
};

}  // namespace rtlsim
