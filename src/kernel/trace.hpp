// rtlsim: VCD waveform tracing.
#pragma once

#include <ostream>
#include <string>
#include <vector>

#include "scheduler.hpp"

namespace rtlsim {

/// Writes a Value Change Dump of registered signals. Sampling happens after
/// each timestep's deltas settle, so every timestamp appears at most once.
class Tracer {
public:
    /// The stream must outlive the tracer. Timescale is 1 ps to match Time.
    explicit Tracer(std::ostream& os) : os_(os) {}

    Tracer(const Tracer&) = delete;
    Tracer& operator=(const Tracer&) = delete;

    /// Register a signal; must be called before the header is written.
    void add(SignalBase& s);

    /// Emit the VCD header and initial values. Called automatically by the
    /// first sample if not done explicitly.
    void write_header();

    /// Record changes at time t (called by the scheduler).
    void sample(Time t);

    /// Flush dangling state; safe to call more than once.
    void finish();

private:
    struct Entry {
        SignalBase* sig;
        std::string id;      // VCD short identifier
        std::string last;    // last emitted value string
    };

    static std::string make_id(std::size_t n);
    void emit(Entry& e);

    std::ostream& os_;
    std::vector<Entry> entries_;
    bool header_written_ = false;
    bool time_open_ = false;
    Time last_time_ = 0;
};

}  // namespace rtlsim
