// rtlsim: simulated time.
#pragma once

#include <cstdint>

namespace rtlsim {

/// Simulated time in picoseconds. 64 bits covers ~213 days of simulated time.
using Time = std::uint64_t;

inline constexpr Time PS = 1;
inline constexpr Time NS = 1000 * PS;
inline constexpr Time US = 1000 * NS;
inline constexpr Time MS = 1000 * US;

/// Convert picoseconds to (floating) milliseconds for reporting.
[[nodiscard]] constexpr double to_ms(Time t) noexcept {
    return static_cast<double>(t) / static_cast<double>(MS);
}

/// Convert picoseconds to (floating) microseconds for reporting.
[[nodiscard]] constexpr double to_us(Time t) noexcept {
    return static_cast<double>(t) / static_cast<double>(US);
}

}  // namespace rtlsim
