// rtlsim: fixed-width 4-state logic vectors (up to 64 bits).
//
// Storage follows the classic two-plane encoding: for each bit,
//   (val=0, unk=0) -> 0     (val=1, unk=0) -> 1
//   (val=0, unk=1) -> Z     (val=1, unk=1) -> X
// Arithmetic is conservative, as in Verilog: if any input bit is unknown the
// whole result is X. Bitwise operators propagate unknowns per bit with
// 0-dominance for AND and 1-dominance for OR.
#pragma once

#include <cstdint>
#include <ostream>
#include <string>

#include "logic.hpp"

namespace rtlsim {

template <unsigned N>
class LVec {
    static_assert(N >= 1 && N <= 64, "LVec supports widths of 1..64 bits");

public:
    static constexpr unsigned width = N;
    static constexpr std::uint64_t mask =
        (N == 64) ? ~std::uint64_t{0} : ((std::uint64_t{1} << N) - 1);

    /// Default: all bits X, matching an uninitialised hardware register.
    constexpr LVec() noexcept : val_(mask), unk_(mask) {}

    /// Construct from a defined integer value (truncated to N bits).
    constexpr LVec(std::uint64_t v) noexcept : val_(v & mask), unk_(0) {}

    /// All bits X.
    [[nodiscard]] static constexpr LVec all_x() noexcept { return LVec{}; }

    /// All bits Z.
    [[nodiscard]] static constexpr LVec all_z() noexcept {
        return from_planes(0, mask);
    }

    /// All bits zero.
    [[nodiscard]] static constexpr LVec zero() noexcept { return LVec{0}; }

    /// Construct from explicit value/unknown planes.
    [[nodiscard]] static constexpr LVec from_planes(std::uint64_t val,
                                                    std::uint64_t unk) noexcept {
        LVec r{0};
        r.val_ = val & mask;
        r.unk_ = unk & mask;
        return r;
    }

    [[nodiscard]] constexpr std::uint64_t val_plane() const noexcept { return val_; }
    [[nodiscard]] constexpr std::uint64_t unk_plane() const noexcept { return unk_; }

    /// True when every bit is a defined 0 or 1.
    [[nodiscard]] constexpr bool is_fully_defined() const noexcept {
        return unk_ == 0;
    }

    /// True when any bit is X or Z.
    [[nodiscard]] constexpr bool has_unknown() const noexcept { return unk_ != 0; }

    /// Defined integer value. Only meaningful when is_fully_defined();
    /// unknown bits read as 0 so callers must check first.
    [[nodiscard]] constexpr std::uint64_t to_u64() const noexcept {
        return val_ & ~unk_;
    }

    /// Single-bit access.
    [[nodiscard]] constexpr Logic bit(unsigned i) const noexcept {
        const bool v = (val_ >> i) & 1u;
        const bool u = (unk_ >> i) & 1u;
        if (!u) return v ? Logic::L1 : Logic::L0;
        return v ? Logic::X : Logic::Z;
    }

    constexpr void set_bit(unsigned i, Logic b) noexcept {
        const std::uint64_t m = std::uint64_t{1} << i;
        switch (b) {
            case Logic::L0: val_ &= ~m; unk_ &= ~m; break;
            case Logic::L1: val_ |= m;  unk_ &= ~m; break;
            case Logic::X:  val_ |= m;  unk_ |= m;  break;
            case Logic::Z:  val_ &= ~m; unk_ |= m;  break;
        }
    }

    // --- bitwise operators with per-bit X propagation ------------------

    [[nodiscard]] friend constexpr LVec operator&(LVec a, LVec b) noexcept {
        // A result bit is 0 when either input is a defined 0; unknown when
        // not forced to 0 and either input is unknown.
        const std::uint64_t a0 = ~a.val_ & ~a.unk_;
        const std::uint64_t b0 = ~b.val_ & ~b.unk_;
        const std::uint64_t forced0 = a0 | b0;
        const std::uint64_t unk = (a.unk_ | b.unk_) & ~forced0;
        const std::uint64_t val = (a.val_ & b.val_ & ~forced0) | unk;
        return from_planes(val, unk);
    }

    [[nodiscard]] friend constexpr LVec operator|(LVec a, LVec b) noexcept {
        const std::uint64_t a1 = a.val_ & ~a.unk_;
        const std::uint64_t b1 = b.val_ & ~b.unk_;
        const std::uint64_t forced1 = a1 | b1;
        const std::uint64_t unk = (a.unk_ | b.unk_) & ~forced1;
        const std::uint64_t val = forced1 | unk;
        return from_planes(val, unk);
    }

    [[nodiscard]] friend constexpr LVec operator^(LVec a, LVec b) noexcept {
        const std::uint64_t unk = a.unk_ | b.unk_;
        const std::uint64_t val = ((a.val_ ^ b.val_) & ~unk) | unk;
        return from_planes(val, unk);
    }

    [[nodiscard]] constexpr LVec operator~() const noexcept {
        // Defined bits invert; X stays X; Z becomes X.
        return from_planes((~val_ & ~unk_) | unk_, unk_);
    }

    // --- arithmetic: whole-result-X on any unknown input ----------------

    [[nodiscard]] friend constexpr LVec operator+(LVec a, LVec b) noexcept {
        if (a.has_unknown() || b.has_unknown()) return all_x();
        return LVec{a.val_ + b.val_};
    }

    [[nodiscard]] friend constexpr LVec operator-(LVec a, LVec b) noexcept {
        if (a.has_unknown() || b.has_unknown()) return all_x();
        return LVec{a.val_ - b.val_};
    }

    [[nodiscard]] friend constexpr LVec operator*(LVec a, LVec b) noexcept {
        if (a.has_unknown() || b.has_unknown()) return all_x();
        return LVec{a.val_ * b.val_};
    }

    [[nodiscard]] constexpr LVec operator<<(unsigned s) const noexcept {
        if (s >= N) return zero();
        return from_planes(val_ << s, unk_ << s);
    }

    [[nodiscard]] constexpr LVec operator>>(unsigned s) const noexcept {
        if (s >= N) return zero();
        return from_planes(val_ >> s, unk_ >> s);
    }

    // --- comparison ------------------------------------------------------

    /// Exact 4-state identity (like Verilog ===): X compares equal to X.
    [[nodiscard]] friend constexpr bool operator==(LVec a, LVec b) noexcept {
        return a.val_ == b.val_ && a.unk_ == b.unk_;
    }

    /// Logical equality (like Verilog ==): X if any participating bit is
    /// unknown, else 0/1.
    [[nodiscard]] friend constexpr Logic logic_eq(LVec a, LVec b) noexcept {
        if (a.has_unknown() || b.has_unknown()) return Logic::X;
        return to_logic(a.val_ == b.val_);
    }

    /// Reduction OR across all bits.
    [[nodiscard]] constexpr Logic reduce_or() const noexcept {
        if (val_ & ~unk_) return Logic::L1;  // any defined 1 dominates
        if (unk_) return Logic::X;
        return Logic::L0;
    }

    /// Reduction AND across all bits.
    [[nodiscard]] constexpr Logic reduce_and() const noexcept {
        if ((~val_ & ~unk_) & mask) return Logic::L0;  // any defined 0
        if (unk_) return Logic::X;
        return Logic::L1;
    }

    /// Binary string, MSB first, e.g. "10xz".
    [[nodiscard]] std::string to_string() const {
        std::string s(N, '0');
        for (unsigned i = 0; i < N; ++i) s[N - 1 - i] = to_char(bit(i));
        return s;
    }

private:
    std::uint64_t val_;
    std::uint64_t unk_;
};

template <unsigned N>
inline std::ostream& operator<<(std::ostream& os, const LVec<N>& v) {
    return os << v.to_string();
}

using Word = LVec<32>;   ///< the PLB / DCR data width used throughout
using Byte = LVec<8>;

}  // namespace rtlsim
