// rtlsim: intrusive timed events and the calendar-queue time wheel.
//
// The scheduler's hot path is "pop the earliest timestep, fire its events".
// A std::map time wheel pays a red-black-tree rebalance plus a heap-allocated
// closure vector for every clock edge — millions of times per simulated
// frame. The structures here exploit what an RTL workload actually looks
// like: almost every event is one clock half-period in the future.
//
//   * TimedEvent is an intrusive, reusable node. Recurring sources (clocks)
//     embed one and reschedule it from fire() without ever allocating.
//   * CalendarQueue keys events into a ring of flat buckets covering the
//     near future; the rare far-future event (watchdogs, one-shot resets)
//     goes to a sorted overflow map and migrates into the ring as the
//     window advances.
//
// Ordering contract (identical to the old std::map wheel, and pinned by the
// kernel-invariance tests): events fire in ascending time; events with the
// same timestamp fire in the order they were scheduled, regardless of which
// side of the ring/overflow boundary they landed on.
#pragma once

#include <array>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <map>
#include <utility>

#include "sim_time.hpp"

namespace rtlsim {

class CalendarQueue;
class Scheduler;
struct EventTestAccess;  // white-box driver for the differential queue test

/// An intrusive schedulable event. Derive, implement fire(), and hand the
/// node to Scheduler::schedule_event(). The node must outlive its pending
/// schedule; it may be rescheduled from inside its own fire() (the scheduler
/// clears `pending` before firing), which is how clocks tick allocation-free.
class TimedEvent {
public:
    TimedEvent() = default;
    virtual ~TimedEvent() = default;

    TimedEvent(const TimedEvent&) = delete;
    TimedEvent& operator=(const TimedEvent&) = delete;

    /// True while the event sits in the time wheel awaiting its timestamp.
    [[nodiscard]] bool pending() const noexcept { return pending_; }
    /// Timestamp of the pending (or last) schedule.
    [[nodiscard]] Time time() const noexcept { return time_; }

protected:
    /// Called by the scheduler when simulated time reaches time().
    virtual void fire() = 0;

private:
    friend class CalendarQueue;
    friend class Scheduler;
    friend struct EventTestAccess;

    TimedEvent* next_ = nullptr;  ///< intrusive link (bucket / fire / free list)
    Time time_ = 0;
    bool pending_ = false;
};

/// Calendar-queue time wheel: a power-of-two ring of FIFO buckets, each
/// covering `1 << bucket_shift` picoseconds of the near future, plus a
/// sorted overflow map for events beyond the ring's horizon. push/pop are
/// O(1) for the clock-period-spaced events that dominate RTL simulation.
///
/// The ring window is anchored at `floor_bucket_`, a monotone lower bound
/// on every pending timestamp (advanced by pops and by the caller-supplied
/// `now` on push — never by lookahead, so peeking can never strand a
/// subsequent schedule-at-now behind the scan position). Two invariants
/// hold between operations:
///   1. every ring event's bucket lies in [floor_bucket_, floor_bucket_ +
///      kBuckets), so a forward scan of at most kBuckets slots finds the
///      earliest one without aliasing;
///   2. every overflow timestamp is strictly later than every ring
///      timestamp (push migrates equal-or-earlier overflow entries into
///      the ring first), so the global minimum is in the ring whenever the
///      ring is non-empty.
class CalendarQueue {
public:
    /// Default bucket width 2^12 ps = 4.096 ns: a 100 MHz clock's 5 ns
    /// half-period lands successive edges in successive buckets, so the
    /// scan in pop_step() touches one, occasionally two, buckets.
    explicit CalendarQueue(unsigned bucket_shift = 12) noexcept
        : shift_(bucket_shift) {}

    [[nodiscard]] bool empty() const noexcept { return count_ == 0; }
    [[nodiscard]] std::size_t size() const noexcept { return count_; }

    /// Enqueue `ev` at ev->time_, which must be >= `now` (the caller's
    /// current simulated time, itself <= every pending timestamp).
    /// FIFO per timestamp.
    void push(TimedEvent* ev, Time now) {
        assert(ev->time_ >= now);
        const std::uint64_t now_bucket = bucket_of(now);
        if (now_bucket > floor_bucket_) floor_bucket_ = now_bucket;
        ++count_;
        const Time t = ev->time_;
        if (bucket_of(t) >= floor_bucket_ + kBuckets) {
            overflow_.emplace(t, ev);  // multimap keeps same-key FIFO order
            return;
        }
        // Same-timestamp FIFO across the boundary (and invariant 2): any
        // equal-or-earlier event parked in the overflow enters the ring
        // first. All overflow events with time <= t fit the window when
        // t does, since bucketing is monotone.
        while (!overflow_.empty() && overflow_.begin()->first <= t) {
            migrate_front();
        }
        append(ev);
    }

    /// Drain every pending event without firing it (checkpoint restore
    /// discards the pre-restore timeline): clears the pending flags and
    /// intrusive links so the nodes can be rescheduled, empties the
    /// overflow, and rewinds the window anchor for the restored clock.
    void clear() noexcept {
        for (Bucket& bk : ring_) {
            for (TimedEvent* e = bk.head; e != nullptr;) {
                TimedEvent* next = e->next_;
                e->next_ = nullptr;
                e->pending_ = false;
                e = next;
            }
            bk.head = nullptr;
            bk.tail = nullptr;
        }
        for (auto& [t, e] : overflow_) {
            e->next_ = nullptr;
            e->pending_ = false;
        }
        overflow_.clear();
        count_ = 0;
        floor_bucket_ = 0;
    }

    /// Unlink one pending event wherever it sits (ring bucket or overflow)
    /// without firing it. O(bucket occupancy) — a cancelled event is always
    /// near-future (a sleep wake), so its bucket chain is short. The caller
    /// owns the pending flag; precondition: `ev` was pushed and has not
    /// fired.
    void cancel(TimedEvent* ev) {
        Bucket& bk = ring_[bucket_of(ev->time_) & kMask];
        TimedEvent* prev = nullptr;
        for (TimedEvent* e = bk.head; e != nullptr; prev = e, e = e->next_) {
            if (e != ev) continue;
            if (prev != nullptr) {
                prev->next_ = e->next_;
            } else {
                bk.head = e->next_;
            }
            if (bk.tail == e) bk.tail = prev;
            --count_;
            return;
        }
        for (auto it = overflow_.lower_bound(ev->time_);
             it != overflow_.end() && it->first == ev->time_; ++it) {
            if (it->second == ev) {
                overflow_.erase(it);
                --count_;
                return;
            }
        }
        assert(false && "cancel: event not pending in the wheel");
    }

    /// Earliest pending timestamp; false when the queue is empty.
    [[nodiscard]] bool peek_next(Time& t) const {
        if (count_ == 0) return false;
        if (ring_count() == 0) {
            t = overflow_.begin()->first;
            return true;
        }
        t = min_time_in(first_bucket());
        return true;
    }

    /// Unlink and return the FIFO chain (linked via TimedEvent::next_) of
    /// every event at the earliest timestamp, which is written to `t`.
    /// Events pushed while the chain fires land in a fresh timestep.
    [[nodiscard]] TimedEvent* pop_step(Time& t) {
        if (count_ == 0) return nullptr;
        if (ring_count() == 0) return pop_overflow_step(t);

        Bucket& bk = first_bucket();
        const Time tmin = min_time_in(bk);
        floor_bucket_ = bucket_of(tmin);
        // Split the bucket: events at tmin leave (order preserved), the
        // rest — later residues sharing the bucket — stay.
        TimedEvent* out_head = nullptr;
        TimedEvent** out_link = &out_head;
        bk.tail = nullptr;
        TimedEvent** keep_link = &bk.head;
        for (TimedEvent* e = bk.head; e != nullptr;) {
            TimedEvent* next = e->next_;
            e->next_ = nullptr;
            if (e->time_ == tmin) {
                *out_link = e;
                out_link = &e->next_;
                --count_;
            } else {
                *keep_link = e;
                keep_link = &e->next_;
                bk.tail = e;
            }
            e = next;
        }
        *keep_link = nullptr;
        t = tmin;
        return out_head;
    }

private:
    static constexpr std::size_t kLogBuckets = 8;
    static constexpr std::size_t kBuckets = std::size_t{1} << kLogBuckets;
    static constexpr std::size_t kMask = kBuckets - 1;

    struct Bucket {
        TimedEvent* head = nullptr;
        TimedEvent* tail = nullptr;
    };

    [[nodiscard]] std::uint64_t bucket_of(Time t) const noexcept {
        return t >> shift_;
    }

    [[nodiscard]] std::size_t ring_count() const noexcept {
        return count_ - overflow_.size();
    }

    void append(TimedEvent* ev) {
        Bucket& bk = ring_[bucket_of(ev->time_) & kMask];
        if (bk.tail != nullptr) {
            bk.tail->next_ = ev;
        } else {
            bk.head = ev;
        }
        bk.tail = ev;
    }

    void migrate_front() {
        auto it = overflow_.begin();
        append(it->second);
        overflow_.erase(it);
    }

    /// First non-empty ring bucket at or after the floor (invariant 1
    /// bounds the scan). Precondition: ring_count() > 0.
    [[nodiscard]] const Bucket& first_bucket() const {
        std::uint64_t b = floor_bucket_;
        while (ring_[b & kMask].head == nullptr) ++b;
        return ring_[b & kMask];
    }
    [[nodiscard]] Bucket& first_bucket() {
        return const_cast<Bucket&>(std::as_const(*this).first_bucket());
    }

    /// A bucket spans `1 << shift_` ps and may hold several distinct
    /// timestamps; the step's time is the minimum over its (short) chain.
    [[nodiscard]] static Time min_time_in(const Bucket& bk) noexcept {
        Time tmin = bk.head->time_;
        for (TimedEvent* e = bk.head->next_; e != nullptr; e = e->next_) {
            if (e->time_ < tmin) tmin = e->time_;
        }
        return tmin;
    }

    /// Far-future jump: the ring is empty, so the whole earliest timestep
    /// lives at the front of the (time-sorted, same-key FIFO) overflow map.
    [[nodiscard]] TimedEvent* pop_overflow_step(Time& t) {
        const Time tmin = overflow_.begin()->first;
        floor_bucket_ = bucket_of(tmin);
        TimedEvent* head = nullptr;
        TimedEvent** link = &head;
        auto it = overflow_.begin();
        while (it != overflow_.end() && it->first == tmin) {
            *link = it->second;
            link = &it->second->next_;
            it = overflow_.erase(it);
            --count_;
        }
        *link = nullptr;
        t = tmin;
        return head;
    }

    unsigned shift_;
    std::uint64_t floor_bucket_ = 0;
    std::size_t count_ = 0;
    std::array<Bucket, kBuckets> ring_{};
    std::multimap<Time, TimedEvent*> overflow_;
};

}  // namespace rtlsim
