#include "lane_pool.hpp"

namespace rtlsim {

namespace {

inline void cpu_relax() noexcept {
#if defined(__x86_64__) || defined(__i386__)
    __builtin_ia32_pause();
#elif defined(__aarch64__)
    asm volatile("yield" ::: "memory");
#endif
}

}  // namespace

LanePool::LanePool(unsigned workers) {
    // Spinning only pays when a worker can watch the epoch advance from
    // another core; on one core it just burns the quantum the producer
    // needs.
    spin_ = std::thread::hardware_concurrency() > 1 ? 4096 : 0;
    threads_.reserve(workers);
    for (unsigned i = 0; i < workers; ++i) {
        threads_.emplace_back([this] { worker_main(); });
    }
}

LanePool::~LanePool() {
    {
        std::lock_guard<std::mutex> lk(m_);
        quit_.store(true);
    }
    cv_.notify_all();
    for (std::thread& t : threads_) t.join();
}

void LanePool::claim_loop() {
    const unsigned n = njobs_.load(std::memory_order_acquire);
    while (true) {
        const unsigned i = next_.fetch_add(1, std::memory_order_relaxed);
        if (i >= n) return;
        (*job_)(i);
        if (done_.fetch_add(1, std::memory_order_acq_rel) + 1 == n) {
            // Serialize with the waiter so the notify cannot slip between
            // its predicate check and its wait.
            std::lock_guard<std::mutex> lk(m_);
            cv_done_.notify_all();
        }
    }
}

void LanePool::run(unsigned njobs, const std::function<void(unsigned)>& job) {
    if (njobs == 0) return;
    if (threads_.empty()) {
        for (unsigned i = 0; i < njobs; ++i) job(i);
        return;
    }
    {
        std::lock_guard<std::mutex> lk(m_);
        job_ = &job;
        next_.store(0, std::memory_order_relaxed);
        done_.store(0, std::memory_order_relaxed);
        njobs_.store(njobs, std::memory_order_release);
        epoch_.fetch_add(1, std::memory_order_release);
    }
    cv_.notify_all();
    claim_loop();
    std::unique_lock<std::mutex> lk(m_);
    cv_done_.wait(lk, [&] {
        return done_.load(std::memory_order_acquire) == njobs;
    });
}

void LanePool::worker_main() {
    std::uint64_t seen = 0;
    while (true) {
        bool fresh = false;
        for (unsigned i = 0; i < spin_; ++i) {
            if (quit_.load(std::memory_order_relaxed)) return;
            if (epoch_.load(std::memory_order_acquire) != seen) {
                fresh = true;
                break;
            }
            cpu_relax();
        }
        if (!fresh) {
            std::unique_lock<std::mutex> lk(m_);
            cv_.wait(lk, [&] {
                return quit_.load(std::memory_order_relaxed) ||
                       epoch_.load(std::memory_order_acquire) != seen;
            });
            if (quit_.load(std::memory_order_relaxed)) return;
        }
        seen = epoch_.load(std::memory_order_acquire);
        claim_loop();
    }
}

}  // namespace rtlsim
