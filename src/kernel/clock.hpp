// rtlsim: clock and reset generators built on intrusive timed events.
//
// These are the highest-frequency event sources in any simulation — a clock
// schedules one event per half-period for the whole run. Each generator
// embeds a reusable TimedEvent node and reschedules it from fire(), so a
// billion clock edges allocate exactly nothing (the old implementation
// built a fresh std::function closure per edge).
#pragma once

#include <string>

#include "module.hpp"

namespace rtlsim {

/// Free-running clock generator producing a Logic square wave. Toggling is
/// allocation-free: one intrusive event node is reused for every edge.
class Clock final : public Module {
public:
    Signal<Logic> out;

    Clock(Scheduler& sch, std::string name, Time period, Time start = 0)
        : Module(sch, std::move(name)),
          out(sch, full_name() + ".out", Logic::L0),
          toggle_(*this),
          half_(period / 2),
          origin_(start) {
        sch.schedule_event(start + half_, toggle_);
    }

    [[nodiscard]] Time period() const noexcept { return 2 * half_; }

    // --- gating -----------------------------------------------------------
    // A consumer that knows nothing else in the design needs the wave (the
    // ISS sleep path, where the CPU is the only active master) may park the
    // generator and re-start it later. The phase is preserved: edges after
    // resume() land exactly where the free-running wave would have put
    // them, so anything clocked by `out` sees the same edge timestamps as
    // an ungated run — only the skipped edges (and their host cost) vanish.

    /// Request the wave to stop. Takes effect after the next *completed*
    /// falling edge: the output parks at a committed 0, so the eventual
    /// resume rise is a real value change (a same-value rewrite would not
    /// notify listeners).
    void suspend() {
        if (!suspended_) suspend_pending_ = true;
    }

    /// Restart a parked wave: the next toggle is scheduled on the original
    /// rising-edge phase grid, strictly after `now`. Cancels a suspend that
    /// has not parked yet. Sequential contexts only (schedules an event).
    void resume() {
        suspend_pending_ = false;
        if (!suspended_) return;
        suspended_ = false;
        sch_.schedule_event(next_rise_after(sch_.now()), toggle_);
    }

    [[nodiscard]] bool suspended() const noexcept { return suspended_; }

    /// First rising-edge phase point strictly after `t` (rises sit at
    /// origin + (2k+1)·half).
    [[nodiscard]] Time next_rise_after(Time t) const noexcept {
        if (t < origin_ + half_) return origin_ + half_;
        const Time k = (t - origin_ - half_) / (2 * half_) + 1;
        return origin_ + half_ + k * 2 * half_;
    }

    // --- checkpoint ------------------------------------------------------
    /// The embedded toggle event is perpetually pending (free-running) or
    /// parked (gated); its next absolute firing time plus the gating flags
    /// are the whole clock state (the wave's phase is in the `out` signal,
    /// saved with every other signal).
    void ckpt_save(SnapWriter& w) const {
        w.u64(toggle_.time());
        w.bool8(toggle_.pending());
        w.u64(origin_);
        w.bool8(suspend_pending_);
        w.bool8(suspended_);
    }
    /// Re-enter the toggle into the (drained) wheel at the saved time; a
    /// parked clock stays parked until its gating consumer resumes it.
    bool ckpt_restore(SnapReader& r) {
        const Time t = r.u64();
        const bool pending = r.bool8();
        origin_ = r.u64();
        suspend_pending_ = r.bool8();
        suspended_ = r.bool8();
        if (!r.ok_so_far()) return false;
        if (pending) sch_.schedule_event(t, toggle_);
        return true;
    }

private:
    struct ToggleEvent final : TimedEvent {
        explicit ToggleEvent(Clock& c) : clk(c) {}
        void fire() override {
            const bool rising = !is1(clk.out.read());
            if (!rising && clk.suspend_pending_) {
                // Complete the falling edge, then park low: no reschedule.
                clk.out.write(Logic::L0);
                clk.suspend_pending_ = false;
                clk.suspended_ = true;
                return;
            }
            clk.out.write(rising ? Logic::L1 : Logic::L0);
            clk.sch_.schedule_event(clk.sch_.now() + clk.half_, *this);
        }
        Clock& clk;
    };

    ToggleEvent toggle_;
    Time half_;
    Time origin_;
    bool suspend_pending_ = false;
    bool suspended_ = false;
};

/// Active-high reset generator: asserted from time 0, released at `hold`.
class ResetGen final : public Module {
public:
    Signal<Logic> out;

    ResetGen(Scheduler& sch, std::string name, Time hold)
        : Module(sch, std::move(name)),
          out(sch, full_name() + ".out", Logic::L1),
          release_(*this) {
        sch.schedule_event(hold, release_);
    }

    // --- checkpoint ------------------------------------------------------
    /// Pending only before the release fires; afterwards the generator is
    /// inert and restore leaves it out of the wheel.
    void ckpt_save(SnapWriter& w) const {
        w.u64(release_.time());
        w.bool8(release_.pending());
    }
    bool ckpt_restore(SnapReader& r) {
        const Time t = r.u64();
        const bool pending = r.bool8();
        if (!r.ok_so_far()) return false;
        if (pending) sch_.schedule_event(t, release_);
        return true;
    }

private:
    struct ReleaseEvent final : TimedEvent {
        explicit ReleaseEvent(ResetGen& r) : rst(r) {}
        void fire() override { rst.out.write(Logic::L0); }
        ResetGen& rst;
    };

    ReleaseEvent release_;
};

}  // namespace rtlsim
