// rtlsim: clock and reset generators built on intrusive timed events.
//
// These are the highest-frequency event sources in any simulation — a clock
// schedules one event per half-period for the whole run. Each generator
// embeds a reusable TimedEvent node and reschedules it from fire(), so a
// billion clock edges allocate exactly nothing (the old implementation
// built a fresh std::function closure per edge).
#pragma once

#include <string>

#include "module.hpp"

namespace rtlsim {

/// Free-running clock generator producing a Logic square wave. Toggling is
/// allocation-free: one intrusive event node is reused for every edge.
class Clock final : public Module {
public:
    Signal<Logic> out;

    Clock(Scheduler& sch, std::string name, Time period, Time start = 0)
        : Module(sch, std::move(name)),
          out(sch, full_name() + ".out", Logic::L0),
          toggle_(*this),
          half_(period / 2) {
        sch.schedule_event(start + half_, toggle_);
    }

    [[nodiscard]] Time period() const noexcept { return 2 * half_; }

    // --- checkpoint ------------------------------------------------------
    /// The embedded toggle event is perpetually pending; its next absolute
    /// firing time is the whole clock state (the wave's phase is in the
    /// `out` signal, saved with every other signal).
    void ckpt_save(SnapWriter& w) const {
        w.u64(toggle_.time());
        w.bool8(toggle_.pending());
    }
    /// Re-enter the toggle into the (drained) wheel at the saved time.
    bool ckpt_restore(SnapReader& r) {
        const Time t = r.u64();
        const bool pending = r.bool8();
        if (!r.ok_so_far()) return false;
        if (pending) sch_.schedule_event(t, toggle_);
        return true;
    }

private:
    struct ToggleEvent final : TimedEvent {
        explicit ToggleEvent(Clock& c) : clk(c) {}
        void fire() override {
            clk.out.write(is1(clk.out.read()) ? Logic::L0 : Logic::L1);
            clk.sch_.schedule_event(clk.sch_.now() + clk.half_, *this);
        }
        Clock& clk;
    };

    ToggleEvent toggle_;
    Time half_;
};

/// Active-high reset generator: asserted from time 0, released at `hold`.
class ResetGen final : public Module {
public:
    Signal<Logic> out;

    ResetGen(Scheduler& sch, std::string name, Time hold)
        : Module(sch, std::move(name)),
          out(sch, full_name() + ".out", Logic::L1),
          release_(*this) {
        sch.schedule_event(hold, release_);
    }

    // --- checkpoint ------------------------------------------------------
    /// Pending only before the release fires; afterwards the generator is
    /// inert and restore leaves it out of the wheel.
    void ckpt_save(SnapWriter& w) const {
        w.u64(release_.time());
        w.bool8(release_.pending());
    }
    bool ckpt_restore(SnapReader& r) {
        const Time t = r.u64();
        const bool pending = r.bool8();
        if (!r.ok_so_far()) return false;
        if (pending) sch_.schedule_event(t, release_);
        return true;
    }

private:
    struct ReleaseEvent final : TimedEvent {
        explicit ReleaseEvent(ResetGen& r) : rst(r) {}
        void fire() override { rst.out.write(Logic::L0); }
        ResetGen& rst;
    };

    ReleaseEvent release_;
};

}  // namespace rtlsim
