// rtlsim: 4-state scalar logic value.
//
// The kernel models signals with Verilog-style 4-state semantics because the
// whole point of ReSim-style verification is observing unknown (X) values
// escape a region undergoing reconfiguration. Two-state simulation cannot
// detect isolation bugs (see DESIGN.md section 5).
#pragma once

#include <cstdint>
#include <ostream>

namespace rtlsim {

/// A single 4-state logic value: 0, 1, X (unknown) or Z (high impedance).
enum class Logic : std::uint8_t {
    L0 = 0,  ///< driven low
    L1 = 1,  ///< driven high
    X  = 2,  ///< unknown / conflicting
    Z  = 3,  ///< undriven
};

/// True when the value is a defined 0 or 1.
[[nodiscard]] constexpr bool is01(Logic v) noexcept {
    return v == Logic::L0 || v == Logic::L1;
}

/// True when the value is unknown or undriven.
[[nodiscard]] constexpr bool is_unknown(Logic v) noexcept { return !is01(v); }

/// Convert a bool to a defined logic level.
[[nodiscard]] constexpr Logic to_logic(bool b) noexcept {
    return b ? Logic::L1 : Logic::L0;
}

/// True iff the value is a defined 1. X and Z are not truthy.
[[nodiscard]] constexpr bool is1(Logic v) noexcept { return v == Logic::L1; }
/// True iff the value is a defined 0.
[[nodiscard]] constexpr bool is0(Logic v) noexcept { return v == Logic::L0; }

/// Verilog AND: 0 dominates, otherwise unknowns poison the result.
[[nodiscard]] constexpr Logic operator&(Logic a, Logic b) noexcept {
    if (a == Logic::L0 || b == Logic::L0) return Logic::L0;
    if (a == Logic::L1 && b == Logic::L1) return Logic::L1;
    return Logic::X;
}

/// Verilog OR: 1 dominates, otherwise unknowns poison the result.
[[nodiscard]] constexpr Logic operator|(Logic a, Logic b) noexcept {
    if (a == Logic::L1 || b == Logic::L1) return Logic::L1;
    if (a == Logic::L0 && b == Logic::L0) return Logic::L0;
    return Logic::X;
}

/// Verilog XOR: any unknown operand yields X.
[[nodiscard]] constexpr Logic operator^(Logic a, Logic b) noexcept {
    if (is01(a) && is01(b)) return to_logic(a != b);
    return Logic::X;
}

/// Verilog NOT: unknown inputs stay unknown (Z inverts to X).
[[nodiscard]] constexpr Logic operator~(Logic a) noexcept {
    switch (a) {
        case Logic::L0: return Logic::L1;
        case Logic::L1: return Logic::L0;
        default: return Logic::X;
    }
}

/// Wired resolution of two drivers on the same net (tri-state buses).
[[nodiscard]] constexpr Logic resolve(Logic a, Logic b) noexcept {
    if (a == Logic::Z) return b;
    if (b == Logic::Z) return a;
    if (a == b) return a;
    return Logic::X;
}

/// Printable character: '0', '1', 'x' or 'z'.
[[nodiscard]] constexpr char to_char(Logic v) noexcept {
    switch (v) {
        case Logic::L0: return '0';
        case Logic::L1: return '1';
        case Logic::X: return 'x';
        default: return 'z';
    }
}

/// Parse '0'/'1'/'x'/'X'/'z'/'Z'; anything else becomes X.
[[nodiscard]] constexpr Logic logic_from_char(char c) noexcept {
    switch (c) {
        case '0': return Logic::L0;
        case '1': return Logic::L1;
        case 'z':
        case 'Z': return Logic::Z;
        default: return Logic::X;
    }
}

inline std::ostream& operator<<(std::ostream& os, Logic v) {
    return os << to_char(v);
}

}  // namespace rtlsim
