// rtlsim: a small work-stealing pool for parallel evaluate phases.
//
// One simulation's evaluate phase fans the runnable processes of a delta
// out over event *lanes* (see scheduler.hpp). The pool holds `workers`
// persistent threads; a run() call publishes `njobs` lane jobs and the
// calling thread participates, so `workers = lanes - 1` keeps every core
// busy without oversubscribing. Idle participants steal the next
// unclaimed lane index from a shared counter, which load-balances uneven
// lane sizes at the granularity that matters here (a lane's whole delta
// queue, a few hundred nanoseconds of work).
//
// Deltas are short, so the fork/join cost decides whether lanes win.
// Workers therefore spin briefly on the epoch counter before parking on a
// condition variable: during dense activity (every clock edge) the wake
// path is two atomic round-trips, and the condvar is only paid when the
// simulation goes quiet. On a single-core host spinning is pure loss, so
// the spin budget collapses to zero there.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace rtlsim {

class LanePool {
public:
    explicit LanePool(unsigned workers);
    ~LanePool();

    LanePool(const LanePool&) = delete;
    LanePool& operator=(const LanePool&) = delete;

    [[nodiscard]] unsigned workers() const noexcept {
        return static_cast<unsigned>(threads_.size());
    }

    /// Run job(i) for every i in [0, njobs); the calling thread
    /// participates and the call returns only when all jobs finished.
    /// All memory effects of the jobs happen-before the return.
    void run(unsigned njobs, const std::function<void(unsigned)>& job);

private:
    void worker_main();
    void claim_loop();

    std::vector<std::thread> threads_;
    std::mutex m_;
    std::condition_variable cv_;       ///< workers wait for a new epoch
    std::condition_variable cv_done_;  ///< run() waits for completion
    std::atomic<std::uint64_t> epoch_{0};
    std::atomic<bool> quit_{false};
    std::atomic<unsigned> next_{0};
    std::atomic<unsigned> done_{0};
    std::atomic<unsigned> njobs_{0};
    const std::function<void(unsigned)>* job_ = nullptr;
    unsigned spin_ = 0;
};

}  // namespace rtlsim
