// rtlsim: umbrella header for the simulation kernel.
#pragma once

#include "clock.hpp"      // IWYU pragma: export
#include "event.hpp"      // IWYU pragma: export
#include "logic.hpp"      // IWYU pragma: export
#include "lvec.hpp"       // IWYU pragma: export
#include "module.hpp"     // IWYU pragma: export
#include "scheduler.hpp"  // IWYU pragma: export
#include "signal.hpp"     // IWYU pragma: export
#include "sim_time.hpp"   // IWYU pragma: export
#include "stats.hpp"      // IWYU pragma: export
#include "trace.hpp"      // IWYU pragma: export
