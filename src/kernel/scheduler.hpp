// rtlsim: event-driven simulation scheduler with delta cycles.
//
// The kernel implements the classic two-phase (evaluate/update) discrete
// event semantics of HDL simulators:
//   * processes read the *current* value of signals and write *pending*
//     values (non-blocking assignment semantics);
//   * after the evaluate phase, pending values are committed and value
//     changes notify sensitive processes, which run in the next delta;
//   * when no more deltas are pending, simulated time advances to the next
//     scheduled event (e.g. a clock toggle).
//
// This matches ModelSim's observable behaviour closely enough that the
// ReSim artifacts (X injection, bitstream-timed module swaps) behave as in
// the paper.
//
// Hot-path design (see DESIGN.md "Kernel event path" and §13): timed events
// live in a calendar-queue time wheel (event.hpp) as intrusive nodes; the
// closure convenience API pools its nodes on a free list; the evaluate and
// update delta queues are double-buffered so no allocation happens at a
// steady state; signal values live in a struct-of-arrays store
// (signal_store.hpp) and commit through a dense packed-reference dirty
// list with no virtual dispatch; and the profiling branch is hoisted out
// of the per-process loop.
//
// Event lanes (DESIGN.md §13): processes carry a lane id, and when the
// scheduler is configured with more than one lane the evaluate phase of a
// sufficiently wide delta runs the per-lane queues concurrently on a
// LanePool. Only the evaluate phase is parallel — commits, fan-out and
// time advance stay on the calling thread — and every per-lane side effect
// (signal updates, diagnostics, stop requests, stat counts) is buffered in
// a per-lane context and merged in ascending lane order, so observable
// results are independent of worker timing. lanes=1 is exactly the
// sequential path.
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "event.hpp"
#include "signal_store.hpp"
#include "sim_time.hpp"
#include "snapshot.hpp"
#include "stats.hpp"

namespace rtlsim {

class LanePool;
class Process;
class Scheduler;
class SignalBase;
class Tracer;

/// One diagnostic emitted by a checker/monitor during simulation. The
/// fault-detection harness decides "bug detected" by inspecting these.
struct Diag {
    Time time = 0;
    std::string source;
    std::string message;
};

namespace detail {

/// Per-lane evaluate context: the lane's delta queue plus buffers for
/// every side effect a process body may produce. Merged into the
/// scheduler's global state in ascending lane order after the lanes join,
/// which makes the merged order independent of worker timing.
struct LaneCtx {
    Scheduler* sch = nullptr;
    std::vector<Process*> queue;
    std::vector<std::uint32_t> updates;
    std::vector<Diag> diags;
    std::uint64_t dropped_diags = 0;
    std::vector<std::string> stops;
    std::uint64_t invocations = 0;
};

}  // namespace detail

/// Which transitions of a signal trigger a sensitive process.
enum class Edge : std::uint8_t {
    Any,  ///< any committed value change
    Pos,  ///< transition to a defined 1 (Logic signals only)
    Neg,  ///< transition to a defined 0 (Logic signals only)
};

/// A static-sensitivity process: a callback re-run whenever one of the
/// signals it is sensitive to changes (filtered by edge). Equivalent to a
/// SystemC SC_METHOD / a Verilog always block with a static sensitivity list.
class Process {
public:
    Process(Scheduler& sch, std::string name, std::function<void()> fn);

    Process(const Process&) = delete;
    Process& operator=(const Process&) = delete;

    /// Queue this process to run in the next evaluate phase (idempotent
    /// within a delta). Elaboration/sequential contexts only — a process
    /// body must never call this from a parallel evaluate phase.
    void notify();

    [[nodiscard]] const std::string& name() const noexcept { return name_; }
    [[nodiscard]] std::uint64_t invocations() const noexcept { return invocations_; }

    /// Dense registration index (assigned at construction; stable for the
    /// scheduler's lifetime). Indexes the scheduler's flat scheduled-flag
    /// array.
    [[nodiscard]] std::uint32_t index() const noexcept { return index_; }

    /// Event lane this process evaluates on (see Scheduler lanes).
    [[nodiscard]] std::uint16_t lane() const noexcept { return lane_; }

    /// Accumulated wall-clock self time; only meaningful when the scheduler
    /// has profiling enabled. Used by the overhead experiment (E3).
    [[nodiscard]] std::chrono::nanoseconds self_time() const noexcept {
        return self_time_;
    }

private:
    friend class Scheduler;

    /// Hot path: no profiling branch — the scheduler selects between this
    /// and run_profiled() once per delta, not once per invocation.
    void run() {
        ++invocations_;
        fn_();
    }

    void run_profiled();

    Scheduler& sch_;
    std::string name_;
    std::function<void()> fn_;
    std::uint32_t index_ = 0;
    std::uint16_t lane_ = 0;
    std::uint64_t invocations_ = 0;
    std::chrono::nanoseconds self_time_{0};
};

/// Base class for all signals: owns the sensitivity fan-out, the packed
/// reference into the scheduler's struct-of-arrays value store, and the
/// pending-update bookkeeping. Typed accessors live in Signal<T>.
class SignalBase {
public:
    SignalBase(Scheduler& sch, std::string name);
    virtual ~SignalBase();

    SignalBase(const SignalBase&) = delete;
    SignalBase& operator=(const SignalBase&) = delete;

    [[nodiscard]] const std::string& name() const noexcept { return name_; }

    /// Register a process to be notified on changes of this signal. The
    /// process's flat index is cached in the listener entry so fan-out
    /// touches the scheduled-flag array without chasing the Process object.
    void add_listener(Process& p, Edge e) {
        listeners_.push_back({&p, p.index(), e});
    }

    /// Packed (kind, slot) reference into the scheduler's SignalStore.
    [[nodiscard]] std::uint32_t store_ref() const noexcept { return ref_; }

    // --- tracing interface (VCD) ---------------------------------------
    /// Bit width for the VCD $var declaration.
    [[nodiscard]] virtual unsigned trace_width() const = 0;
    /// Current value as a binary string, MSB first ('0','1','x','z').
    [[nodiscard]] virtual std::string trace_value() const = 0;

    // --- checkpoint interface (see src/ckpt/) ---------------------------
    /// Serialize the committed value. Checkpoints are taken at quiescent
    /// points (no pending updates), so the pending value equals it.
    virtual void snap_save(SnapWriter& w) const = 0;
    /// Restore the value with init() semantics: current and pending value
    /// are both set, no listeners are notified.
    virtual bool snap_restore(SnapReader& r) = 0;
    /// Identity hash recorded next to each signal's value in a snapshot
    /// (FNV over name + width). Name and width are fixed after
    /// elaboration, so the hash is computed once and cached.
    [[nodiscard]] std::uint64_t snap_id() const;

protected:
    friend class Scheduler;

    /// Fan out a committed change to sensitive processes.
    void notify_listeners(bool rising, bool falling);

    /// Ask the scheduler to commit this signal's pending value at the end
    /// of the current delta (idempotent within a delta).
    void request_update();

    void set_store_ref(std::uint32_t r) noexcept { ref_ = r; }

    Scheduler& sch_;

private:
    struct Listener {
        Process* proc;
        std::uint32_t idx;  ///< cached proc->index()
        Edge edge;
    };
    std::string name_;
    std::vector<Listener> listeners_;
    std::uint32_t ref_ = SignalStore::kInvalidRef;
    bool update_requested_ = false;
    mutable std::uint64_t snap_id_ = 0;  ///< 0 = not yet computed
};

/// The simulation kernel: calendar-queue time wheel + delta queues +
/// struct-of-arrays signal store + diagnostics.
class Scheduler {
public:
    Scheduler();
    ~Scheduler();

    Scheduler(const Scheduler&) = delete;
    Scheduler& operator=(const Scheduler&) = delete;

    [[nodiscard]] Time now() const noexcept { return now_; }

    /// Schedule a callback at an absolute simulated time (must be >= now).
    /// The closure is wrapped in a pool-recycled event node; recurring
    /// sources should prefer schedule_event() with a reusable node.
    void schedule_at(Time t, std::function<void()> fn);

    /// Schedule a callback after a relative delay.
    void schedule_in(Time delay, std::function<void()> fn) {
        schedule_at(now_ + delay, std::move(fn));
    }

    /// Schedule an intrusive event node at an absolute time (must be >= now
    /// and the node must not already be pending). Allocation-free; the node
    /// may reschedule itself from fire().
    void schedule_event(Time t, TimedEvent& ev) {
        assert(t >= now_ && "cannot schedule events in the past");
        assert(!ev.pending_ && "event is already scheduled");
        ev.time_ = t;
        ev.pending_ = true;
        ev.next_ = nullptr;
        queue_.push(&ev, now_);
    }

    /// Remove a pending intrusive event from the wheel without firing it;
    /// a no-op when the node is not pending (it already fired or was never
    /// scheduled). Sequential contexts only, like schedule_event(). Used by
    /// event sources that must retarget a wake (the ISS sleep path) —
    /// cancelling instead of letting a stale node fire keeps the kernel's
    /// event counts, and therefore checkpoint bytes, deterministic.
    void cancel_event(TimedEvent& ev) {
        if (!ev.pending_) return;
        queue_.cancel(&ev);
        ev.pending_ = false;
        ev.next_ = nullptr;
    }

    /// Run until the given absolute time (inclusive) or until out of events.
    void run_until(Time t);

    /// Run one timestep (all deltas at the next event time).
    /// Returns false when no events remain or a stop was requested.
    bool advance();

    /// Run until no events remain or a stop is requested.
    void run();

    /// Request the simulation to stop at the end of the current timestep;
    /// used by watchdogs and fatal checkers ($finish equivalent). Callable
    /// from process bodies on any lane: during a parallel evaluate phase
    /// the request is buffered per lane and applied in ascending lane
    /// order, so the recorded reason is lane-count deterministic.
    void request_stop(const std::string& reason);

    [[nodiscard]] bool stop_requested() const noexcept { return stop_requested_; }
    [[nodiscard]] const std::string& stop_reason() const noexcept { return stop_reason_; }

    // --- event lanes ------------------------------------------------------
    /// Partition evaluation into `n` event lanes (n >= 1; 1 = sequential,
    /// the default). Call once after construction, before processes are
    /// assigned lanes. Creates a LanePool with n-1 worker threads for
    /// n > 1.
    void configure_lanes(unsigned n);

    [[nodiscard]] unsigned lane_count() const noexcept { return lane_count_; }

    /// Assign a process to an event lane (clamped modulo lane_count()).
    /// Processes sharing state through anything but committed signal reads
    /// must share a lane; see DESIGN.md §13 for the partitioning rules.
    void set_process_lane(Process& p, std::uint16_t lane) {
        p.lane_ = static_cast<std::uint16_t>(lane % lane_count_);
    }

    /// The struct-of-arrays value store backing every Signal<T>.
    [[nodiscard]] SignalStore& signal_store() noexcept { return store_; }
    [[nodiscard]] const SignalStore& signal_store() const noexcept {
        return store_;
    }

    // --- diagnostics -----------------------------------------------------
    /// Record a checker/monitor finding. Simulation continues; fatal
    /// conditions should also call request_stop(). Lane-safe: reports from
    /// a parallel evaluate phase are buffered per lane and merged in
    /// ascending lane order.
    void report(std::string source, std::string message);

    [[nodiscard]] const std::vector<Diag>& diagnostics() const noexcept {
        return diags_;
    }

    /// Diagnostics beyond the storage bound are counted, not stored.
    static constexpr std::size_t kMaxDiags = 4096;
    [[nodiscard]] std::uint64_t dropped_diagnostics() const noexcept {
        return dropped_diags_;
    }

    /// True when any diagnostic from a source containing `needle` exists.
    [[nodiscard]] bool has_diag_from(const std::string& needle) const;

    // --- profiling ---------------------------------------------------------
    /// Enable per-process wall-clock accounting (costs one steady_clock pair
    /// per invocation; off by default).
    void set_profiling(bool on) noexcept { profiling_ = on; }
    [[nodiscard]] bool profiling() const noexcept { return profiling_; }

    /// All processes ever registered, for profiling reports.
    [[nodiscard]] const std::vector<Process*>& processes() const noexcept {
        return procs_;
    }

    /// Attach a VCD tracer; writes the header (with current signal values at
    /// time 0) immediately, then samples after every timestep.
    void set_tracer(Tracer* t);

    // --- checkpoint (orchestrated by src/ckpt/) --------------------------
    /// True when the kernel is at a checkpointable quiescent point: no
    /// runnable process, no pending signal update, no in-flight
    /// schedule_at() closure (closures cannot be serialized; the recurring
    /// event sources — clocks, resets — re-enter the wheel on restore),
    /// and no buffered per-lane side effects (always true outside
    /// settle()). Lane state is deliberately *not* part of a snapshot:
    /// the lane partition is elaboration-time configuration, so snapshot
    /// bytes are identical at every lane count.
    [[nodiscard]] bool ckpt_quiescent() const;

    /// Serialize the kernel core: sim time, stop state, stats, diagnostics.
    void ckpt_save(SnapWriter& w) const;
    /// Restore the kernel core into a freshly elaborated scheduler: drains
    /// the event wheel (elaboration-time schedules), discards any pending
    /// deltas, then restores time/stats/diagnostics. Event sources must
    /// re-schedule themselves afterwards (Clock/ResetGen::ckpt_restore).
    [[nodiscard]] bool ckpt_restore(SnapReader& r);

    /// Serialize every registered signal (elaboration order), each tagged
    /// with a name+width identity hash so a mismatched design is rejected.
    void ckpt_save_signals(SnapWriter& w) const;
    /// Restore all signal values; false on count/identity mismatch.
    [[nodiscard]] bool ckpt_restore_signals(SnapReader& r);

    /// Drop any queued deltas without running them (restore must not burn
    /// counted delta cycles settling elaboration-time writes).
    void ckpt_quiesce();

    /// Signals in elaboration order (checkpoint + debugging aid).
    [[nodiscard]] const std::vector<SignalBase*>& signals() const noexcept {
        return signals_;
    }

    SimStats stats;

private:
    friend class Process;
    friend class SignalBase;

    /// A pooled closure event backing the schedule_at() convenience API.
    struct FnEvent final : TimedEvent {
        explicit FnEvent(Scheduler& s) : sch(s) {}
        void fire() override;
        Scheduler& sch;
        std::function<void()> fn;
    };

    using LaneCtx = detail::LaneCtx;

    /// Deltas narrower than this run inline even with lanes configured:
    /// a one- or two-process ripple never amortizes a fork/join.
    static constexpr std::size_t kMinParallelDelta = 4;

    void notify_process(Process* p, std::uint32_t idx) {
        std::uint8_t& f = sched_flags_[idx];
        if (f == 0) {
            f = 1;
            runnable_.push_back(p);
        }
    }
    void register_process(Process* p) {
        p->index_ = static_cast<std::uint32_t>(procs_.size());
        procs_.push_back(p);
        sched_flags_.push_back(0);
    }
    void register_signal(SignalBase* s) { signals_.push_back(s); }
    void unregister_signal(SignalBase* s);
    /// Route a dirty-signal reference to the current lane buffer (parallel
    /// evaluate) or the global dirty list (sequential contexts).
    void request_update_ref(std::uint32_t ref);
    /// Commit one dirty signal from the store and fan out the change.
    /// Returns true when the committed value changed.
    bool commit_and_notify(std::uint32_t ref);
    /// Drain the time wheel and rebuild the closure-event free list.
    void ckpt_clear_events();
    void recycle(FnEvent* ev) noexcept {
        ev->next_ = fn_free_;
        fn_free_ = ev;
    }

    /// Run delta cycles until no process is runnable and no update pending.
    void settle();
    /// Evaluate one delta's runnable set across lanes (parallel when wide
    /// enough), then merge per-lane effects in ascending lane order.
    void run_delta_lanes();
    void run_lane(LaneCtx& lane);

    Time now_ = 0;
    bool stop_requested_ = false;
    std::string stop_reason_;
    bool profiling_ = false;

    CalendarQueue queue_;
    FnEvent* fn_free_ = nullptr;  ///< free list threaded through next_
    std::vector<std::unique_ptr<FnEvent>> fn_pool_;

    SignalStore store_;

    // Delta queues, double-buffered: settle() swaps the live queue with the
    // matching scratch buffer so both retain capacity across deltas.
    std::vector<Process*> runnable_;
    std::vector<Process*> run_scratch_;
    std::vector<std::uint32_t> updates_;
    std::vector<std::uint32_t> upd_scratch_;

    /// Flat scheduled flags indexed by Process::index(): the fan-out hot
    /// loop tests/sets one dense byte instead of touching each Process.
    std::vector<std::uint8_t> sched_flags_;

    unsigned lane_count_ = 1;
    std::vector<LaneCtx> lanes_;
    std::vector<LaneCtx*> active_lanes_;
    std::unique_ptr<LanePool> pool_;
    std::function<void(unsigned)> lane_runner_;

    std::vector<Process*> procs_;
    std::vector<SignalBase*> signals_;
    std::vector<Diag> diags_;
    std::uint64_t dropped_diags_ = 0;
    Tracer* tracer_ = nullptr;
};

}  // namespace rtlsim
