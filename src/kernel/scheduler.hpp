// rtlsim: event-driven simulation scheduler with delta cycles.
//
// The kernel implements the classic two-phase (evaluate/update) discrete
// event semantics of HDL simulators:
//   * processes read the *current* value of signals and write *pending*
//     values (non-blocking assignment semantics);
//   * after the evaluate phase, pending values are committed and value
//     changes notify sensitive processes, which run in the next delta;
//   * when no more deltas are pending, simulated time advances to the next
//     scheduled event (e.g. a clock toggle).
//
// This matches ModelSim's observable behaviour closely enough that the
// ReSim artifacts (X injection, bitstream-timed module swaps) behave as in
// the paper.
//
// Hot-path design (see DESIGN.md "Kernel event path"): timed events live in
// a calendar-queue time wheel (event.hpp) as intrusive nodes; the closure
// convenience API pools its nodes on a free list; the evaluate/update delta
// queues are double-buffered so no allocation happens at a steady state;
// and the profiling branch is hoisted out of the per-process loop.
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "event.hpp"
#include "sim_time.hpp"
#include "snapshot.hpp"
#include "stats.hpp"

namespace rtlsim {

class Scheduler;
class SignalBase;
class Tracer;

/// Which transitions of a signal trigger a sensitive process.
enum class Edge : std::uint8_t {
    Any,  ///< any committed value change
    Pos,  ///< transition to a defined 1 (Logic signals only)
    Neg,  ///< transition to a defined 0 (Logic signals only)
};

/// A static-sensitivity process: a callback re-run whenever one of the
/// signals it is sensitive to changes (filtered by edge). Equivalent to a
/// SystemC SC_METHOD / a Verilog always block with a static sensitivity list.
class Process {
public:
    Process(Scheduler& sch, std::string name, std::function<void()> fn);

    Process(const Process&) = delete;
    Process& operator=(const Process&) = delete;

    /// Queue this process to run in the next evaluate phase (idempotent
    /// within a delta).
    void notify();

    [[nodiscard]] const std::string& name() const noexcept { return name_; }
    [[nodiscard]] std::uint64_t invocations() const noexcept { return invocations_; }

    /// Accumulated wall-clock self time; only meaningful when the scheduler
    /// has profiling enabled. Used by the overhead experiment (E3).
    [[nodiscard]] std::chrono::nanoseconds self_time() const noexcept {
        return self_time_;
    }

private:
    friend class Scheduler;

    /// Hot path: no profiling branch — the scheduler selects between this
    /// and run_profiled() once per delta, not once per invocation.
    void run() {
        ++invocations_;
        fn_();
    }

    void run_profiled();

    Scheduler& sch_;
    std::string name_;
    std::function<void()> fn_;
    bool scheduled_ = false;
    std::uint64_t invocations_ = 0;
    std::chrono::nanoseconds self_time_{0};
};

/// One diagnostic emitted by a checker/monitor during simulation. The
/// fault-detection harness decides "bug detected" by inspecting these.
struct Diag {
    Time time = 0;
    std::string source;
    std::string message;
};

/// Base class for all signals: owns the sensitivity fan-out and the pending
/// update hook. Concrete storage lives in Signal<T>.
class SignalBase {
public:
    SignalBase(Scheduler& sch, std::string name);
    virtual ~SignalBase();

    SignalBase(const SignalBase&) = delete;
    SignalBase& operator=(const SignalBase&) = delete;

    [[nodiscard]] const std::string& name() const noexcept { return name_; }

    /// Register a process to be notified on changes of this signal.
    void add_listener(Process& p, Edge e) { listeners_.push_back({&p, e}); }

    // --- tracing interface (VCD) ---------------------------------------
    /// Bit width for the VCD $var declaration.
    [[nodiscard]] virtual unsigned trace_width() const = 0;
    /// Current value as a binary string, MSB first ('0','1','x','z').
    [[nodiscard]] virtual std::string trace_value() const = 0;

    // --- checkpoint interface (see src/ckpt/) ---------------------------
    /// Serialize the committed value. Checkpoints are taken at quiescent
    /// points (no pending updates), so the pending value equals it.
    virtual void snap_save(SnapWriter& w) const = 0;
    /// Restore the value with init() semantics: current and pending value
    /// are both set, no listeners are notified.
    virtual bool snap_restore(SnapReader& r) = 0;
    /// Identity hash recorded next to each signal's value in a snapshot
    /// (FNV over name + width). Name and width are fixed after
    /// elaboration, so the hash is computed once and cached.
    [[nodiscard]] std::uint64_t snap_id() const;

protected:
    friend class Scheduler;

    /// Commit the pending value; returns true when the value changed.
    virtual bool apply_update() = 0;

    /// Fan out a committed change to sensitive processes.
    void notify_listeners(bool rising, bool falling);

    /// Ask the scheduler to call apply_update() at the end of this delta.
    void request_update();

    Scheduler& sch_;

private:
    struct Listener {
        Process* proc;
        Edge edge;
    };
    std::string name_;
    std::vector<Listener> listeners_;
    bool update_requested_ = false;
    mutable std::uint64_t snap_id_ = 0;  ///< 0 = not yet computed
};

/// The simulation kernel: calendar-queue time wheel + delta queues +
/// diagnostics.
class Scheduler {
public:
    Scheduler() = default;

    Scheduler(const Scheduler&) = delete;
    Scheduler& operator=(const Scheduler&) = delete;

    [[nodiscard]] Time now() const noexcept { return now_; }

    /// Schedule a callback at an absolute simulated time (must be >= now).
    /// The closure is wrapped in a pool-recycled event node; recurring
    /// sources should prefer schedule_event() with a reusable node.
    void schedule_at(Time t, std::function<void()> fn);

    /// Schedule a callback after a relative delay.
    void schedule_in(Time delay, std::function<void()> fn) {
        schedule_at(now_ + delay, std::move(fn));
    }

    /// Schedule an intrusive event node at an absolute time (must be >= now
    /// and the node must not already be pending). Allocation-free; the node
    /// may reschedule itself from fire().
    void schedule_event(Time t, TimedEvent& ev) {
        assert(t >= now_ && "cannot schedule events in the past");
        assert(!ev.pending_ && "event is already scheduled");
        ev.time_ = t;
        ev.pending_ = true;
        ev.next_ = nullptr;
        queue_.push(&ev, now_);
    }

    /// Run until the given absolute time (inclusive) or until out of events.
    void run_until(Time t);

    /// Run one timestep (all deltas at the next event time).
    /// Returns false when no events remain or a stop was requested.
    bool advance();

    /// Run until no events remain or a stop is requested.
    void run();

    /// Request the simulation to stop at the end of the current timestep;
    /// used by watchdogs and fatal checkers ($finish equivalent).
    void request_stop(const std::string& reason);

    [[nodiscard]] bool stop_requested() const noexcept { return stop_requested_; }
    [[nodiscard]] const std::string& stop_reason() const noexcept { return stop_reason_; }

    // --- diagnostics -----------------------------------------------------
    /// Record a checker/monitor finding. Simulation continues; fatal
    /// conditions should also call request_stop().
    void report(std::string source, std::string message);

    [[nodiscard]] const std::vector<Diag>& diagnostics() const noexcept {
        return diags_;
    }

    /// Diagnostics beyond the storage bound are counted, not stored.
    static constexpr std::size_t kMaxDiags = 4096;
    [[nodiscard]] std::uint64_t dropped_diagnostics() const noexcept {
        return dropped_diags_;
    }

    /// True when any diagnostic from a source containing `needle` exists.
    [[nodiscard]] bool has_diag_from(const std::string& needle) const;

    // --- profiling ---------------------------------------------------------
    /// Enable per-process wall-clock accounting (costs one steady_clock pair
    /// per invocation; off by default).
    void set_profiling(bool on) noexcept { profiling_ = on; }
    [[nodiscard]] bool profiling() const noexcept { return profiling_; }

    /// All processes ever registered, for profiling reports.
    [[nodiscard]] const std::vector<Process*>& processes() const noexcept {
        return procs_;
    }

    /// Attach a VCD tracer; writes the header (with current signal values at
    /// time 0) immediately, then samples after every timestep.
    void set_tracer(Tracer* t);

    // --- checkpoint (orchestrated by src/ckpt/) --------------------------
    /// True when the kernel is at a checkpointable quiescent point: no
    /// runnable process, no pending signal update, and no in-flight
    /// schedule_at() closure (closures cannot be serialized; the recurring
    /// event sources — clocks, resets — re-enter the wheel on restore).
    [[nodiscard]] bool ckpt_quiescent() const;

    /// Serialize the kernel core: sim time, stop state, stats, diagnostics.
    void ckpt_save(SnapWriter& w) const;
    /// Restore the kernel core into a freshly elaborated scheduler: drains
    /// the event wheel (elaboration-time schedules), discards any pending
    /// deltas, then restores time/stats/diagnostics. Event sources must
    /// re-schedule themselves afterwards (Clock/ResetGen::ckpt_restore).
    [[nodiscard]] bool ckpt_restore(SnapReader& r);

    /// Serialize every registered signal (elaboration order), each tagged
    /// with a name+width identity hash so a mismatched design is rejected.
    void ckpt_save_signals(SnapWriter& w) const;
    /// Restore all signal values; false on count/identity mismatch.
    [[nodiscard]] bool ckpt_restore_signals(SnapReader& r);

    /// Drop any queued deltas without running them (restore must not burn
    /// counted delta cycles settling elaboration-time writes).
    void ckpt_quiesce();

    /// Signals in elaboration order (checkpoint + debugging aid).
    [[nodiscard]] const std::vector<SignalBase*>& signals() const noexcept {
        return signals_;
    }

    SimStats stats;

private:
    friend class Process;
    friend class SignalBase;

    /// A pooled closure event backing the schedule_at() convenience API.
    struct FnEvent final : TimedEvent {
        explicit FnEvent(Scheduler& s) : sch(s) {}
        void fire() override;
        Scheduler& sch;
        std::function<void()> fn;
    };

    void make_runnable(Process* p) { runnable_.push_back(p); }
    void register_process(Process* p) { procs_.push_back(p); }
    void request_update(SignalBase* s) { updates_.push_back(s); }
    void register_signal(SignalBase* s) { signals_.push_back(s); }
    void unregister_signal(SignalBase* s);
    /// Drain the time wheel and rebuild the closure-event free list.
    void ckpt_clear_events();
    void recycle(FnEvent* ev) noexcept {
        ev->next_ = fn_free_;
        fn_free_ = ev;
    }

    /// Run delta cycles until no process is runnable and no update pending.
    void settle();

    Time now_ = 0;
    bool stop_requested_ = false;
    std::string stop_reason_;
    bool profiling_ = false;

    CalendarQueue queue_;
    FnEvent* fn_free_ = nullptr;  ///< free list threaded through next_
    std::vector<std::unique_ptr<FnEvent>> fn_pool_;

    // Delta queues, double-buffered: settle() swaps the live queue with the
    // matching scratch buffer so both retain capacity across deltas.
    std::vector<Process*> runnable_;
    std::vector<Process*> run_scratch_;
    std::vector<SignalBase*> updates_;
    std::vector<SignalBase*> upd_scratch_;

    std::vector<Process*> procs_;
    std::vector<SignalBase*> signals_;
    std::vector<Diag> diags_;
    std::uint64_t dropped_diags_ = 0;
    Tracer* tracer_ = nullptr;
};

}  // namespace rtlsim
