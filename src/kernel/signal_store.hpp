// rtlsim: struct-of-arrays backing store for signal values.
//
// Signal<T> objects do not hold their values inline. Each signal owns a
// *slot* in one of three typed pools kept by its scheduler, and the pools
// store current and pending values in flat, contiguous arrays:
//
//   kLogic : one byte per signal           (Logic scalars)
//   kVec   : two u64 planes per signal     (LVec<N>, N <= 64: val/unk)
//   kWord  : one u64 per signal            (integral and enum payloads)
//
// The split buys two things on the kernel's hottest paths (bm_signal_commit,
// bm_clock_fanout):
//   * the update phase walks a dense dirty list of packed (kind, slot)
//     references and commits straight from `next` to `cur` arrays with a
//     two-bit switch — no virtual apply_update() call, no pointer chase
//     into scattered Signal<T> objects;
//   * values of signals allocated together (one module's ports) share
//     cache lines, so clock fan-out touches a handful of lines instead of
//     one per signal object.
//
// Slots are allocated at elaboration and never reused; a destroyed signal
// (teardown, or the rare dynamically re-created module) only clears its
// owner back-pointer so a stale dirty-list entry commits into dead storage
// harmlessly. The arrays are value storage only — names, listeners and the
// checkpoint identity stay on SignalBase.
#pragma once

#include <cstdint>
#include <vector>

namespace rtlsim {

class SignalBase;

class SignalStore {
public:
    enum Kind : std::uint32_t { kLogic = 0, kVec = 1, kWord = 2 };

    /// Packed reference: kind in the top two bits, slot below. One u32 per
    /// dirty-list entry keeps the update queue dense.
    static constexpr std::uint32_t kKindShift = 30;
    static constexpr std::uint32_t kSlotMask = (1u << kKindShift) - 1;
    static constexpr std::uint32_t kInvalidRef = ~std::uint32_t{0};

    [[nodiscard]] static constexpr std::uint32_t make_ref(
        Kind k, std::uint32_t slot) noexcept {
        return (static_cast<std::uint32_t>(k) << kKindShift) | slot;
    }
    [[nodiscard]] static constexpr Kind kind_of(std::uint32_t ref) noexcept {
        return static_cast<Kind>(ref >> kKindShift);
    }
    [[nodiscard]] static constexpr std::uint32_t slot_of(
        std::uint32_t ref) noexcept {
        return ref & kSlotMask;
    }

    [[nodiscard]] std::uint32_t alloc_logic(std::uint8_t init,
                                            SignalBase* owner) {
        const auto slot = static_cast<std::uint32_t>(logic_cur.size());
        logic_cur.push_back(init);
        logic_next.push_back(init);
        logic_owner.push_back(owner);
        return make_ref(kLogic, slot);
    }

    [[nodiscard]] std::uint32_t alloc_vec(std::uint64_t val, std::uint64_t unk,
                                          SignalBase* owner) {
        const auto slot = static_cast<std::uint32_t>(vec_cur_val.size());
        vec_cur_val.push_back(val);
        vec_cur_unk.push_back(unk);
        vec_next_val.push_back(val);
        vec_next_unk.push_back(unk);
        vec_owner.push_back(owner);
        return make_ref(kVec, slot);
    }

    [[nodiscard]] std::uint32_t alloc_word(std::uint64_t init,
                                           SignalBase* owner) {
        const auto slot = static_cast<std::uint32_t>(word_cur.size());
        word_cur.push_back(init);
        word_next.push_back(init);
        word_owner.push_back(owner);
        return make_ref(kWord, slot);
    }

    /// Detach a dying signal from its slot; the storage itself stays.
    void release(std::uint32_t ref) noexcept {
        if (ref == kInvalidRef) return;
        const std::uint32_t slot = slot_of(ref);
        switch (kind_of(ref)) {
            case kLogic: logic_owner[slot] = nullptr; break;
            case kVec: vec_owner[slot] = nullptr; break;
            case kWord: word_owner[slot] = nullptr; break;
        }
    }

    [[nodiscard]] SignalBase* owner_of(std::uint32_t ref) const noexcept {
        const std::uint32_t slot = slot_of(ref);
        switch (kind_of(ref)) {
            case kLogic: return logic_owner[slot];
            case kVec: return vec_owner[slot];
            case kWord: return word_owner[slot];
        }
        return nullptr;
    }

    // Pools. Public by design: Signal<T>'s read/write accessors and the
    // scheduler's commit loop are the hot paths this layout exists for.
    std::vector<std::uint8_t> logic_cur;
    std::vector<std::uint8_t> logic_next;
    std::vector<std::uint64_t> vec_cur_val;
    std::vector<std::uint64_t> vec_cur_unk;
    std::vector<std::uint64_t> vec_next_val;
    std::vector<std::uint64_t> vec_next_unk;
    std::vector<std::uint64_t> word_cur;
    std::vector<std::uint64_t> word_next;
    std::vector<SignalBase*> logic_owner;
    std::vector<SignalBase*> vec_owner;
    std::vector<SignalBase*> word_owner;
};

}  // namespace rtlsim
