// rtlsim: byte-deterministic snapshot primitives.
//
// SnapWriter/SnapReader serialize kernel and module state into a flat
// big-endian byte image — the same wire idiom as the ReSim state images
// (recon/state.hpp), but at kernel level so the scheduler, signals and
// clock generators can checkpoint themselves without depending on any
// design-side library. Checkpoint orchestration (manifest, sections,
// config hashing) lives above, in src/ckpt/.
//
// Determinism contract: every write is a fixed-width big-endian field or a
// length-prefixed run, no padding, no host-order leaks — two identical
// simulator states serialize to identical bytes on any host.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace rtlsim {

class SnapWriter {
public:
    void u8(std::uint8_t v) { buf_.push_back(v); }
    void u16(std::uint16_t v) {
        u8(static_cast<std::uint8_t>(v >> 8));
        u8(static_cast<std::uint8_t>(v));
    }
    void u32(std::uint32_t v) {
        u16(static_cast<std::uint16_t>(v >> 16));
        u16(static_cast<std::uint16_t>(v));
    }
    void u64(std::uint64_t v) {
        u32(static_cast<std::uint32_t>(v >> 32));
        u32(static_cast<std::uint32_t>(v));
    }
    void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }
    void i32(std::int32_t v) { u32(static_cast<std::uint32_t>(v)); }
    void bool8(bool b) { u8(b ? 1 : 0); }
    void str(std::string_view s) {
        u32(static_cast<std::uint32_t>(s.size()));
        buf_.insert(buf_.end(), s.begin(), s.end());
    }
    void bytes(std::span<const std::uint8_t> s) {
        u32(static_cast<std::uint32_t>(s.size()));
        buf_.insert(buf_.end(), s.begin(), s.end());
    }
    void words(std::span<const std::uint32_t> s) {
        u32(static_cast<std::uint32_t>(s.size()));
        for (std::uint32_t w : s) u32(w);
    }

    [[nodiscard]] std::size_t size() const noexcept { return buf_.size(); }
    [[nodiscard]] const std::vector<std::uint8_t>& buffer() const noexcept {
        return buf_;
    }
    [[nodiscard]] std::vector<std::uint8_t> take() { return std::move(buf_); }

private:
    std::vector<std::uint8_t> buf_;
};

class SnapReader {
public:
    explicit SnapReader(std::span<const std::uint8_t> s) : s_(s) {}

    std::uint8_t u8() {
        if (pos_ >= s_.size()) {
            ok_ = false;
            return 0;
        }
        return s_[pos_++];
    }
    std::uint16_t u16() {
        std::uint16_t v = static_cast<std::uint16_t>(u8()) << 8;
        return static_cast<std::uint16_t>(v | u8());
    }
    std::uint32_t u32() {
        std::uint32_t v = static_cast<std::uint32_t>(u16()) << 16;
        return v | u16();
    }
    std::uint64_t u64() {
        std::uint64_t v = static_cast<std::uint64_t>(u32()) << 32;
        return v | u32();
    }
    std::int64_t i64() { return static_cast<std::int64_t>(u64()); }
    std::int32_t i32() { return static_cast<std::int32_t>(u32()); }
    bool bool8() { return u8() != 0; }
    std::string str() {
        const std::uint32_t n = u32();
        std::string out;
        if (pos_ + n > s_.size()) {
            ok_ = false;
            return out;
        }
        out.assign(reinterpret_cast<const char*>(s_.data()) +
                       static_cast<std::ptrdiff_t>(pos_),
                   n);
        pos_ += n;
        return out;
    }
    std::vector<std::uint8_t> bytes() {
        const std::uint32_t n = u32();
        std::vector<std::uint8_t> out;
        if (pos_ + n > s_.size()) {
            ok_ = false;
            return out;
        }
        out.assign(s_.begin() + static_cast<std::ptrdiff_t>(pos_),
                   s_.begin() + static_cast<std::ptrdiff_t>(pos_ + n));
        pos_ += n;
        return out;
    }
    std::vector<std::uint32_t> words() {
        const std::uint32_t n = u32();
        std::vector<std::uint32_t> out;
        if (pos_ + std::size_t{n} * 4 > s_.size()) {
            ok_ = false;
            return out;
        }
        out.reserve(n);
        for (std::uint32_t i = 0; i < n; ++i) out.push_back(u32());
        return out;
    }

    [[nodiscard]] std::size_t remaining() const noexcept {
        return ok_ ? s_.size() - pos_ : 0;
    }
    /// False when any read overran the image.
    [[nodiscard]] bool ok() const noexcept { return ok_ && pos_ == s_.size(); }
    [[nodiscard]] bool ok_so_far() const noexcept { return ok_; }

private:
    std::span<const std::uint8_t> s_;
    std::size_t pos_ = 0;
    bool ok_ = true;
};

/// Run-length encode `count` u64 values produced by `at(i)` (memories are
/// mostly uniform: an 8 MiB zero-filled 4-state image collapses to a few
/// bytes). Format: u64 count, then (u64 run length, u64 value) pairs.
template <typename At>
void snap_rle_u64(SnapWriter& w, std::size_t count, At at) {
    w.u64(count);
    std::size_t i = 0;
    while (i < count) {
        const std::uint64_t v = at(i);
        std::size_t run = 1;
        while (i + run < count && at(i + run) == v) ++run;
        w.u64(run);
        w.u64(v);
        i += run;
    }
}

/// Run-aware decode: delivers each (start, run, value) group once via
/// `set_run(i, run, v)`; false on malformed input. Bulk targets (memories)
/// use this to fill a whole run in one operation instead of paying a call
/// per word — restore cost then scales with the number of runs, not the
/// number of words.
template <typename SetRun>
[[nodiscard]] bool snap_unrle_u64_runs(SnapReader& r, std::size_t count,
                                       SetRun set_run) {
    if (r.u64() != count) return false;
    std::size_t i = 0;
    while (i < count && r.ok_so_far()) {
        const std::uint64_t run = r.u64();
        const std::uint64_t v = r.u64();
        if (run == 0 || i + run > count) return false;
        set_run(i, run, v);
        i += run;
    }
    return i == count && r.ok_so_far();
}

/// Decode exactly `count` values, delivering each via `set(i, v)`; false on
/// malformed input.
template <typename Set>
[[nodiscard]] bool snap_unrle_u64(SnapReader& r, std::size_t count, Set set) {
    return snap_unrle_u64_runs(
        r, count, [&set](std::size_t i, std::uint64_t run, std::uint64_t v) {
            for (std::uint64_t k = 0; k < run; ++k) set(i + k, v);
        });
}

/// FNV-1a 64 over a byte/string range — the identity hash used for
/// per-signal names and the checkpoint config hash.
[[nodiscard]] constexpr std::uint64_t snap_hash64(
    std::string_view s, std::uint64_t h = 0xCBF2'9CE4'8422'2325ull) noexcept {
    for (char c : s) {
        h ^= static_cast<std::uint8_t>(c);
        h *= 0x0000'0100'0000'01B3ull;
    }
    return h;
}

/// Fold a 64-bit value into an FNV-1a hash (big-endian byte order, so the
/// result matches hashing the serialized field).
[[nodiscard]] constexpr std::uint64_t snap_hash64_u64(
    std::uint64_t v, std::uint64_t h) noexcept {
    for (int i = 7; i >= 0; --i) {
        h ^= static_cast<std::uint8_t>(v >> (8 * i));
        h *= 0x0000'0100'0000'01B3ull;
    }
    return h;
}

}  // namespace rtlsim
