// Deterministic seed derivation (SplitMix64).
//
// The repo-wide convention for turning one canonical 64-bit seed into the
// many independent sub-seeds a run needs (scene texture, SimB filler,
// error-injector state, per-scenario draws): derive_seed(seed, tag) with a
// distinct tag per consumer. SplitMix64 is the standard seeding PRNG —
// every 64-bit input maps to a well-mixed output, so correlated inputs
// (seed, seed+1, ...) produce uncorrelated streams.
#pragma once

#include <cstdint>

namespace rtlsim {

/// One SplitMix64 output for state `x` (stateless form).
[[nodiscard]] constexpr std::uint64_t splitmix64(std::uint64_t x) {
    x += 0x9E37'79B9'7F4A'7C15ull;
    x = (x ^ (x >> 30)) * 0xBF58'476D'1CE4'E5B9ull;
    x = (x ^ (x >> 27)) * 0x94D0'49BB'1331'11EBull;
    return x ^ (x >> 31);
}

/// Domain-separated sub-seed: same (seed, tag) always yields the same
/// value; distinct tags yield independent streams.
[[nodiscard]] constexpr std::uint64_t derive_seed(std::uint64_t seed,
                                                  std::uint64_t tag) {
    return splitmix64(seed ^ splitmix64(tag));
}

[[nodiscard]] constexpr std::uint32_t derive_seed32(std::uint64_t seed,
                                                    std::uint64_t tag) {
    return static_cast<std::uint32_t>(derive_seed(seed, tag) >> 32);
}

}  // namespace rtlsim
