// rtlsim: typed signals with non-blocking update semantics.
//
// Signal<T> is a thin typed view over one slot of the scheduler's
// struct-of-arrays SignalStore (signal_store.hpp): read()/write() index the
// flat current/pending arrays, and the scheduler's update phase commits
// dirty slots directly from the store with no virtual dispatch.
#pragma once

#include <bitset>
#include <concepts>
#include <string>
#include <type_traits>

#include "logic.hpp"
#include "lvec.hpp"
#include "scheduler.hpp"

namespace rtlsim {

namespace detail {

template <typename T>
struct IsLVec : std::false_type {};
template <unsigned N>
struct IsLVec<LVec<N>> : std::true_type {};

template <typename T>
struct SignalTraits {
    static_assert(std::is_integral_v<T> || std::is_enum_v<T>,
                  "Signal<T> supports Logic, LVec<N>, integral and enum types");
    static constexpr unsigned width = 8 * sizeof(T);
    static std::string to_trace(const T& v) {
        return std::bitset<width>(static_cast<unsigned long long>(v)).to_string();
    }
    static constexpr bool is_logic = false;
    static T initial() { return T{}; }
};

template <>
struct SignalTraits<Logic> {
    static constexpr unsigned width = 1;
    static std::string to_trace(Logic v) { return std::string(1, to_char(v)); }
    static constexpr bool is_logic = true;
    static Logic initial() { return Logic::X; }
};

template <unsigned N>
struct SignalTraits<LVec<N>> {
    static constexpr unsigned width = N;
    static std::string to_trace(const LVec<N>& v) { return v.to_string(); }
    static constexpr bool is_logic = false;
    static LVec<N> initial() { return LVec<N>::all_x(); }
};

}  // namespace detail

/// A signal (net/register output) carrying a value of type T.
///
/// Reads always return the value committed in the last update phase. Writes
/// store a pending value committed at the end of the current delta, so all
/// processes in one delta observe a consistent snapshot — the standard HDL
/// non-blocking assignment model that makes clocked pipelines race-free.
///
/// Values live out-of-line in the scheduler's SignalStore: Logic as one
/// byte, LVec<N> as two u64 planes, integral/enum payloads as one u64.
/// read() therefore returns by value (reassembled from the pools), which
/// every call site already treats it as.
template <typename T>
class Signal final : public SignalBase {
public:
    using Traits = detail::SignalTraits<T>;

    /// Signals start out X (for 4-state types) like uninitialised hardware.
    Signal(Scheduler& sch, std::string name)
        : Signal(sch, std::move(name), Traits::initial()) {}

    Signal(Scheduler& sch, std::string name, const T& init)
        : SignalBase(sch, std::move(name)) {
        SignalStore& st = store();
        if constexpr (Traits::is_logic) {
            set_store_ref(st.alloc_logic(static_cast<std::uint8_t>(init), this));
        } else if constexpr (kIsVec) {
            set_store_ref(
                st.alloc_vec(init.val_plane(), init.unk_plane(), this));
        } else {
            set_store_ref(st.alloc_word(static_cast<std::uint64_t>(init), this));
        }
    }

    [[nodiscard]] T read() const noexcept {
        const SignalStore& st = store();
        const std::uint32_t s = slot();
        if constexpr (Traits::is_logic) {
            return static_cast<Logic>(st.logic_cur[s]);
        } else if constexpr (kIsVec) {
            return T::from_planes(st.vec_cur_val[s], st.vec_cur_unk[s]);
        } else {
            return static_cast<T>(st.word_cur[s]);
        }
    }

    /// Schedule `v` to become the visible value at the end of this delta.
    void write(const T& v) {
        SignalStore& st = store();
        const std::uint32_t s = slot();
        if constexpr (Traits::is_logic) {
            const auto nv = static_cast<std::uint8_t>(v);
            st.logic_next[s] = nv;
            if (nv != st.logic_cur[s]) request_update();
        } else if constexpr (kIsVec) {
            const std::uint64_t val = v.val_plane();
            const std::uint64_t unk = v.unk_plane();
            st.vec_next_val[s] = val;
            st.vec_next_unk[s] = unk;
            if (val != st.vec_cur_val[s] || unk != st.vec_cur_unk[s]) {
                request_update();
            }
        } else {
            const auto nv = static_cast<std::uint64_t>(v);
            st.word_next[s] = nv;
            if (nv != st.word_cur[s]) request_update();
        }
    }

    /// Immediate assignment: sets both current and pending value without
    /// notifying listeners. Only for pre-simulation initialisation.
    void init(const T& v) {
        SignalStore& st = store();
        const std::uint32_t s = slot();
        if constexpr (Traits::is_logic) {
            const auto nv = static_cast<std::uint8_t>(v);
            st.logic_cur[s] = nv;
            st.logic_next[s] = nv;
        } else if constexpr (kIsVec) {
            st.vec_cur_val[s] = v.val_plane();
            st.vec_cur_unk[s] = v.unk_plane();
            st.vec_next_val[s] = v.val_plane();
            st.vec_next_unk[s] = v.unk_plane();
        } else {
            const auto nv = static_cast<std::uint64_t>(v);
            st.word_cur[s] = nv;
            st.word_next[s] = nv;
        }
    }

    // --- tracing ---------------------------------------------------------
    [[nodiscard]] unsigned trace_width() const override { return Traits::width; }
    [[nodiscard]] std::string trace_value() const override {
        return Traits::to_trace(read());
    }

    // --- checkpoint ------------------------------------------------------
    void snap_save(SnapWriter& w) const override {
        const T cur = read();
        if constexpr (Traits::is_logic) {
            w.u8(static_cast<std::uint8_t>(cur));
        } else if constexpr (kIsVec) {
            w.u64(cur.val_plane());
            w.u64(cur.unk_plane());
        } else {
            w.u64(static_cast<std::uint64_t>(cur));
        }
    }

    bool snap_restore(SnapReader& r) override {
        if constexpr (Traits::is_logic) {
            init(static_cast<Logic>(r.u8()));
        } else if constexpr (kIsVec) {
            const std::uint64_t val = r.u64();
            const std::uint64_t unk = r.u64();
            init(T::from_planes(val, unk));
        } else {
            init(static_cast<T>(r.u64()));
        }
        return r.ok_so_far();
    }

private:
    static constexpr bool kIsVec = detail::IsLVec<T>::value;

    [[nodiscard]] SignalStore& store() const noexcept {
        return sch_.signal_store();
    }
    [[nodiscard]] std::uint32_t slot() const noexcept {
        return SignalStore::slot_of(store_ref());
    }
};

}  // namespace rtlsim
