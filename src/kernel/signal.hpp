// rtlsim: typed signals with non-blocking update semantics.
#pragma once

#include <bitset>
#include <concepts>
#include <string>
#include <type_traits>

#include "logic.hpp"
#include "lvec.hpp"
#include "scheduler.hpp"

namespace rtlsim {

namespace detail {

template <typename T>
struct IsLVec : std::false_type {};
template <unsigned N>
struct IsLVec<LVec<N>> : std::true_type {};

template <typename T>
struct SignalTraits {
    static_assert(std::is_integral_v<T> || std::is_enum_v<T>,
                  "Signal<T> supports Logic, LVec<N>, integral and enum types");
    static constexpr unsigned width = 8 * sizeof(T);
    static std::string to_trace(const T& v) {
        return std::bitset<width>(static_cast<unsigned long long>(v)).to_string();
    }
    static constexpr bool is_logic = false;
    static T initial() { return T{}; }
};

template <>
struct SignalTraits<Logic> {
    static constexpr unsigned width = 1;
    static std::string to_trace(Logic v) { return std::string(1, to_char(v)); }
    static constexpr bool is_logic = true;
    static Logic initial() { return Logic::X; }
};

template <unsigned N>
struct SignalTraits<LVec<N>> {
    static constexpr unsigned width = N;
    static std::string to_trace(const LVec<N>& v) { return v.to_string(); }
    static constexpr bool is_logic = false;
    static LVec<N> initial() { return LVec<N>::all_x(); }
};

}  // namespace detail

/// A signal (net/register output) carrying a value of type T.
///
/// Reads always return the value committed in the last update phase. Writes
/// store a pending value committed at the end of the current delta, so all
/// processes in one delta observe a consistent snapshot — the standard HDL
/// non-blocking assignment model that makes clocked pipelines race-free.
template <typename T>
class Signal final : public SignalBase {
public:
    using Traits = detail::SignalTraits<T>;

    /// Signals start out X (for 4-state types) like uninitialised hardware.
    Signal(Scheduler& sch, std::string name)
        : SignalBase(sch, std::move(name)),
          cur_(Traits::initial()),
          next_(Traits::initial()) {}

    Signal(Scheduler& sch, std::string name, const T& init)
        : SignalBase(sch, std::move(name)), cur_(init), next_(init) {}

    [[nodiscard]] const T& read() const noexcept { return cur_; }

    /// Schedule `v` to become the visible value at the end of this delta.
    void write(const T& v) {
        next_ = v;
        if (!(next_ == cur_)) request_update();
    }

    /// Immediate assignment: sets both current and pending value without
    /// notifying listeners. Only for pre-simulation initialisation.
    void init(const T& v) {
        cur_ = v;
        next_ = v;
    }

    // --- tracing ---------------------------------------------------------
    [[nodiscard]] unsigned trace_width() const override { return Traits::width; }
    [[nodiscard]] std::string trace_value() const override {
        return Traits::to_trace(cur_);
    }

    // --- checkpoint ------------------------------------------------------
    void snap_save(SnapWriter& w) const override {
        if constexpr (Traits::is_logic) {
            w.u8(static_cast<std::uint8_t>(cur_));
        } else if constexpr (detail::IsLVec<T>::value) {
            w.u64(cur_.val_plane());
            w.u64(cur_.unk_plane());
        } else {
            w.u64(static_cast<std::uint64_t>(cur_));
        }
    }

    bool snap_restore(SnapReader& r) override {
        if constexpr (Traits::is_logic) {
            init(static_cast<Logic>(r.u8()));
        } else if constexpr (detail::IsLVec<T>::value) {
            const std::uint64_t val = r.u64();
            const std::uint64_t unk = r.u64();
            init(T::from_planes(val, unk));
        } else {
            init(static_cast<T>(r.u64()));
        }
        return r.ok_so_far();
    }

protected:
    bool apply_update() override {
        if (next_ == cur_) return false;
        bool rising = false;
        bool falling = false;
        if constexpr (Traits::is_logic) {
            rising = (next_ == Logic::L1) && (cur_ != Logic::L1);
            falling = (next_ == Logic::L0) && (cur_ != Logic::L0);
        }
        cur_ = next_;
        notify_listeners(rising, falling);
        return true;
    }

private:
    T cur_;
    T next_;
};

}  // namespace rtlsim
