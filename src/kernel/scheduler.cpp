#include "scheduler.hpp"

#include <cassert>
#include <utility>

namespace rtlsim {

// ---------------------------------------------------------------- Process

Process::Process(Scheduler& sch, std::string name, std::function<void()> fn)
    : sch_(sch), name_(std::move(name)), fn_(std::move(fn)) {
    sch_.register_process(this);
}

void Process::notify() {
    if (!scheduled_) {
        scheduled_ = true;
        sch_.make_runnable(this);
    }
}

void Process::run() {
    ++invocations_;
    if (sch_.profiling()) {
        const auto t0 = std::chrono::steady_clock::now();
        fn_();
        self_time_ += std::chrono::steady_clock::now() - t0;
    } else {
        fn_();
    }
}

// -------------------------------------------------------------- SignalBase

SignalBase::SignalBase(Scheduler& sch, std::string name)
    : sch_(sch), name_(std::move(name)) {}

void SignalBase::notify_listeners(bool rising, bool falling) {
    for (const Listener& l : listeners_) {
        switch (l.edge) {
            case Edge::Any: l.proc->notify(); break;
            case Edge::Pos:
                if (rising) l.proc->notify();
                break;
            case Edge::Neg:
                if (falling) l.proc->notify();
                break;
        }
    }
}

void SignalBase::request_update() {
    if (!update_requested_) {
        update_requested_ = true;
        sch_.request_update(this);
    }
}

// --------------------------------------------------------------- Scheduler

void Scheduler::schedule_at(Time t, std::function<void()> fn) {
    assert(t >= now_ && "cannot schedule events in the past");
    timed_[t].push_back(std::move(fn));
}

void Scheduler::make_runnable(Process* p) { runnable_.push_back(p); }

void Scheduler::settle() {
    while (!runnable_.empty() || !updates_.empty()) {
        ++stats.delta_cycles;

        // Evaluate phase: run every process queued in the previous delta.
        std::vector<Process*> run;
        run.swap(runnable_);
        for (Process* p : run) {
            p->scheduled_ = false;
            ++stats.proc_invocations;
            p->run();
        }

        // Update phase: commit pending signal values; changes queue their
        // listeners into runnable_ for the next delta.
        std::vector<SignalBase*> ups;
        ups.swap(updates_);
        for (SignalBase* s : ups) {
            s->update_requested_ = false;
            if (s->apply_update()) ++stats.signal_updates;
        }
    }
}

bool Scheduler::advance() {
    if (stop_requested_ || timed_.empty()) return false;

    const auto it = timed_.begin();
    now_ = it->first;
    ++stats.time_steps;
    std::vector<std::function<void()>> evs = std::move(it->second);
    timed_.erase(it);

    for (auto& e : evs) {
        ++stats.timed_events;
        e();
    }
    settle();
    // Tracing happens after all deltas settle so each timestamp appears once.
    if (tracer_ != nullptr) {
        // Tracer::sample is declared in trace.hpp; call through a thunk to
        // avoid a header dependency cycle.
        extern void tracer_sample_thunk(Tracer*, Time);
        tracer_sample_thunk(tracer_, now_);
    }
    return true;
}

void Scheduler::run_until(Time t) {
    while (!timed_.empty() && !stop_requested_ && timed_.begin()->first <= t) {
        advance();
    }
    if (!stop_requested_) now_ = t;
}

void Scheduler::run() {
    while (advance()) {
    }
}

void Scheduler::request_stop(const std::string& reason) {
    if (!stop_requested_) {
        stop_requested_ = true;
        stop_reason_ = reason;
    }
}

void Scheduler::set_tracer(Tracer* t) {
    tracer_ = t;
    if (t != nullptr) {
        extern void tracer_header_thunk(Tracer*);
        tracer_header_thunk(t);
    }
}

void Scheduler::report(std::string source, std::string message) {
    // Bound storage so a pathological run (or a hot benchmark loop) cannot
    // grow the log without limit; the count of dropped entries is kept.
    if (diags_.size() >= kMaxDiags) {
        ++dropped_diags_;
        return;
    }
    diags_.push_back(Diag{now_, std::move(source), std::move(message)});
}

bool Scheduler::has_diag_from(const std::string& needle) const {
    for (const Diag& d : diags_) {
        if (d.source.find(needle) != std::string::npos) return true;
    }
    return false;
}

}  // namespace rtlsim
