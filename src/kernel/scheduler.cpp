#include "scheduler.hpp"

#include <cassert>
#include <utility>

#include "lane_pool.hpp"
#include "logic.hpp"

namespace rtlsim {

namespace {

/// The lane context the executing thread is currently evaluating for, or
/// nullptr in every sequential context (timed events, lanes=1 settle,
/// testbench code between quanta). Thread-local rather than a Scheduler
/// member so concurrent schedulers on campaign worker threads cannot see
/// each other's contexts; the owning scheduler is checked before routing.
thread_local detail::LaneCtx* tls_lane_ctx = nullptr;

}  // namespace

// ---------------------------------------------------------------- Process

Process::Process(Scheduler& sch, std::string name, std::function<void()> fn)
    : sch_(sch), name_(std::move(name)), fn_(std::move(fn)) {
    sch_.register_process(this);
}

void Process::notify() {
    assert(tls_lane_ctx == nullptr &&
           "notify() is not callable from a parallel evaluate phase");
    sch_.notify_process(this, index_);
}

void Process::run_profiled() {
    ++invocations_;
    const auto t0 = std::chrono::steady_clock::now();
    fn_();
    self_time_ += std::chrono::steady_clock::now() - t0;
}

// -------------------------------------------------------------- SignalBase

SignalBase::SignalBase(Scheduler& sch, std::string name)
    : sch_(sch), name_(std::move(name)) {
    sch_.register_signal(this);
}

SignalBase::~SignalBase() {
    sch_.signal_store().release(ref_);
    sch_.unregister_signal(this);
}

void SignalBase::notify_listeners(bool rising, bool falling) {
    for (const Listener& l : listeners_) {
        switch (l.edge) {
            case Edge::Any: sch_.notify_process(l.proc, l.idx); break;
            case Edge::Pos:
                if (rising) sch_.notify_process(l.proc, l.idx);
                break;
            case Edge::Neg:
                if (falling) sch_.notify_process(l.proc, l.idx);
                break;
        }
    }
}

void SignalBase::request_update() {
    if (!update_requested_) {
        update_requested_ = true;
        sch_.request_update_ref(ref_);
    }
}

// --------------------------------------------------------------- Scheduler

Scheduler::Scheduler() {
    configure_lanes(1);
}

Scheduler::~Scheduler() = default;

void Scheduler::configure_lanes(unsigned n) {
    if (n == 0) n = 1;
    lane_count_ = n;
    lanes_.clear();
    lanes_.resize(n);
    for (LaneCtx& lane : lanes_) lane.sch = this;
    active_lanes_.clear();
    active_lanes_.reserve(n);
    pool_.reset();
    if (n > 1) {
        pool_ = std::make_unique<LanePool>(n - 1);
        lane_runner_ = [this](unsigned i) { run_lane(*active_lanes_[i]); };
    } else {
        lane_runner_ = nullptr;
    }
    // Re-clamp lane ids of already-registered processes so a late
    // reconfiguration cannot leave a process pointing past the lane array.
    for (Process* p : procs_) {
        p->lane_ = static_cast<std::uint16_t>(p->lane_ % n);
    }
}

void Scheduler::FnEvent::fire() {
    // Detach the closure and recycle the node *before* invoking it, so the
    // callback can schedule_at() again and immediately reuse this slot —
    // a self-rescheduling closure then runs allocation-free at steady state.
    std::function<void()> f = std::move(fn);
    fn = nullptr;
    sch.recycle(this);
    f();
}

void Scheduler::schedule_at(Time t, std::function<void()> fn) {
    assert(t >= now_ && "cannot schedule events in the past");
    assert(tls_lane_ctx == nullptr &&
           "schedule_at() is not callable from a parallel evaluate phase");
    FnEvent* ev = fn_free_;
    if (ev != nullptr) {
        fn_free_ = static_cast<FnEvent*>(ev->next_);
    } else {
        fn_pool_.push_back(std::make_unique<FnEvent>(*this));
        ev = fn_pool_.back().get();
    }
    ev->fn = std::move(fn);
    ev->time_ = t;
    ev->pending_ = true;
    ev->next_ = nullptr;
    queue_.push(ev, now_);
}

void Scheduler::request_update_ref(std::uint32_t ref) {
    if (LaneCtx* c = tls_lane_ctx; c != nullptr && c->sch == this) {
        c->updates.push_back(ref);
    } else {
        updates_.push_back(ref);
    }
}

bool Scheduler::commit_and_notify(std::uint32_t ref) {
    const std::uint32_t slot = SignalStore::slot_of(ref);
    switch (SignalStore::kind_of(ref)) {
        case SignalStore::kLogic: {
            SignalBase* s = store_.logic_owner[slot];
            if (s != nullptr) s->update_requested_ = false;
            const std::uint8_t cur = store_.logic_cur[slot];
            const std::uint8_t nxt = store_.logic_next[slot];
            if (nxt == cur) return false;
            store_.logic_cur[slot] = nxt;
            if (s != nullptr) {
                constexpr auto k1 = static_cast<std::uint8_t>(Logic::L1);
                constexpr auto k0 = static_cast<std::uint8_t>(Logic::L0);
                s->notify_listeners(nxt == k1, nxt == k0);
            }
            return true;
        }
        case SignalStore::kVec: {
            SignalBase* s = store_.vec_owner[slot];
            if (s != nullptr) s->update_requested_ = false;
            const std::uint64_t nval = store_.vec_next_val[slot];
            const std::uint64_t nunk = store_.vec_next_unk[slot];
            if (nval == store_.vec_cur_val[slot] &&
                nunk == store_.vec_cur_unk[slot]) {
                return false;
            }
            store_.vec_cur_val[slot] = nval;
            store_.vec_cur_unk[slot] = nunk;
            if (s != nullptr) s->notify_listeners(false, false);
            return true;
        }
        case SignalStore::kWord: {
            SignalBase* s = store_.word_owner[slot];
            if (s != nullptr) s->update_requested_ = false;
            const std::uint64_t nxt = store_.word_next[slot];
            if (nxt == store_.word_cur[slot]) return false;
            store_.word_cur[slot] = nxt;
            if (s != nullptr) s->notify_listeners(false, false);
            return true;
        }
    }
    return false;
}

void Scheduler::run_lane(LaneCtx& lane) {
    LaneCtx* const prev = tls_lane_ctx;
    tls_lane_ctx = &lane;
    if (profiling_) {
        for (Process* p : lane.queue) {
            sched_flags_[p->index_] = 0;
            ++lane.invocations;
            p->run_profiled();
        }
    } else {
        for (Process* p : lane.queue) {
            sched_flags_[p->index_] = 0;
            ++lane.invocations;
            p->run();
        }
    }
    tls_lane_ctx = prev;
}

void Scheduler::run_delta_lanes() {
    // Partition this delta's runnable set into per-lane queues; relative
    // order within a lane matches the sequential order.
    std::size_t active = 0;
    for (Process* p : run_scratch_) {
        LaneCtx& lane = lanes_[p->lane_];
        if (lane.queue.empty()) ++active;
        lane.queue.push_back(p);
    }

    if (active >= 2 && run_scratch_.size() >= kMinParallelDelta) {
        active_lanes_.clear();
        for (LaneCtx& lane : lanes_) {
            if (!lane.queue.empty()) active_lanes_.push_back(&lane);
        }
        pool_->run(static_cast<unsigned>(active_lanes_.size()), lane_runner_);
    } else {
        // Narrow delta: the fork/join would cost more than it hides.
        for (LaneCtx& lane : lanes_) {
            if (!lane.queue.empty()) run_lane(lane);
        }
    }

    // Merge per-lane effects in ascending lane order — the canonical order
    // that makes results independent of worker timing.
    for (LaneCtx& lane : lanes_) {
        if (lane.queue.empty()) continue;
        lane.queue.clear();
        stats.proc_invocations += lane.invocations;
        lane.invocations = 0;
        updates_.insert(updates_.end(), lane.updates.begin(),
                        lane.updates.end());
        lane.updates.clear();
        for (Diag& d : lane.diags) {
            if (diags_.size() >= kMaxDiags) {
                ++dropped_diags_;
            } else {
                diags_.push_back(std::move(d));
            }
        }
        lane.diags.clear();
        dropped_diags_ += lane.dropped_diags;
        lane.dropped_diags = 0;
        for (std::string& reason : lane.stops) {
            request_stop(reason);  // first (lowest-lane, in-order) wins
        }
        lane.stops.clear();
    }
}

void Scheduler::settle() {
    while (!runnable_.empty() || !updates_.empty()) {
        ++stats.delta_cycles;

        // Evaluate phase: run every process queued in the previous delta.
        // The profiling branch is taken once per delta, not per process.
        run_scratch_.swap(runnable_);
        if (lane_count_ > 1) {
            run_delta_lanes();
        } else if (profiling_) {
            for (Process* p : run_scratch_) {
                sched_flags_[p->index_] = 0;
                ++stats.proc_invocations;
                p->run_profiled();
            }
        } else {
            for (Process* p : run_scratch_) {
                sched_flags_[p->index_] = 0;
                ++stats.proc_invocations;
                p->run();
            }
        }
        run_scratch_.clear();

        // Update phase: commit pending values straight from the
        // struct-of-arrays store (no virtual dispatch); changes queue their
        // listeners into runnable_ for the next delta.
        upd_scratch_.swap(updates_);
        for (const std::uint32_t ref : upd_scratch_) {
            if (commit_and_notify(ref)) ++stats.signal_updates;
        }
        upd_scratch_.clear();
    }
}

bool Scheduler::advance() {
    if (stop_requested_) return false;
    TimedEvent* ev = queue_.pop_step(now_);
    if (ev == nullptr) return false;
    ++stats.time_steps;

    // Fire the chain popped for this timestep. Events scheduled while it
    // runs — including at the current time — land in the queue for a later
    // advance(), exactly as with the old per-timestamp vectors.
    while (ev != nullptr) {
        TimedEvent* next = ev->next_;
        ev->next_ = nullptr;
        ev->pending_ = false;
        ++stats.timed_events;
        ev->fire();
        ev = next;
    }
    settle();
    // Tracing happens after all deltas settle so each timestamp appears once.
    if (tracer_ != nullptr) {
        // Tracer::sample is declared in trace.hpp; call through a thunk to
        // avoid a header dependency cycle.
        extern void tracer_sample_thunk(Tracer*, Time);
        tracer_sample_thunk(tracer_, now_);
    }
    return true;
}

void Scheduler::run_until(Time t) {
    Time next = 0;
    while (!stop_requested_ && queue_.peek_next(next) && next <= t) {
        advance();
    }
    if (!stop_requested_) now_ = t;
}

void Scheduler::run() {
    while (advance()) {
    }
}

void Scheduler::request_stop(const std::string& reason) {
    if (LaneCtx* c = tls_lane_ctx; c != nullptr && c->sch == this) {
        c->stops.push_back(reason);
        return;
    }
    if (!stop_requested_) {
        stop_requested_ = true;
        stop_reason_ = reason;
    }
}

void Scheduler::set_tracer(Tracer* t) {
    tracer_ = t;
    if (t != nullptr) {
        extern void tracer_header_thunk(Tracer*);
        tracer_header_thunk(t);
    }
}

void Scheduler::report(std::string source, std::string message) {
    if (LaneCtx* c = tls_lane_ctx; c != nullptr && c->sch == this) {
        // Bounded like the global log; per-lane drops fold in at the merge.
        if (diags_.size() + c->diags.size() >= kMaxDiags) {
            ++c->dropped_diags;
            return;
        }
        c->diags.push_back(Diag{now_, std::move(source), std::move(message)});
        return;
    }
    // Bound storage so a pathological run (or a hot benchmark loop) cannot
    // grow the log without limit; the count of dropped entries is kept.
    if (diags_.size() >= kMaxDiags) {
        ++dropped_diags_;
        return;
    }
    diags_.push_back(Diag{now_, std::move(source), std::move(message)});
}

void Scheduler::unregister_signal(SignalBase* s) {
    // Teardown path (and the rare dynamically re-created module): signals
    // die in reverse construction order, so scanning from the back is O(1)
    // in practice.
    for (auto it = signals_.rbegin(); it != signals_.rend(); ++it) {
        if (*it == s) {
            signals_.erase(std::next(it).base());
            return;
        }
    }
}

// ------------------------------------------------------------- checkpoint

bool Scheduler::ckpt_quiescent() const {
    if (!runnable_.empty() || !updates_.empty()) return false;
    // Per-lane buffers are only ever non-empty inside settle(); checked
    // for completeness since a snapshot must capture *all* pending work.
    for (const LaneCtx& lane : lanes_) {
        if (!lane.queue.empty() || !lane.updates.empty() ||
            !lane.diags.empty() || !lane.stops.empty()) {
            return false;
        }
    }
    // Every pooled closure node must be on the free list: a pending
    // schedule_at() closure cannot be serialized.
    std::size_t free_count = 0;
    for (const TimedEvent* e = fn_free_; e != nullptr; e = e->next_) {
        ++free_count;
    }
    return free_count == fn_pool_.size();
}

void Scheduler::ckpt_save(SnapWriter& w) const {
    w.u64(now_);
    w.bool8(stop_requested_);
    w.str(stop_reason_);
    w.u64(stats.timed_events);
    w.u64(stats.delta_cycles);
    w.u64(stats.proc_invocations);
    w.u64(stats.signal_updates);
    w.u64(stats.time_steps);
    w.u64(dropped_diags_);
    w.u32(static_cast<std::uint32_t>(diags_.size()));
    for (const Diag& d : diags_) {
        w.u64(d.time);
        w.str(d.source);
        w.str(d.message);
    }
}

bool Scheduler::ckpt_restore(SnapReader& r) {
    ckpt_clear_events();
    ckpt_quiesce();
    now_ = r.u64();
    stop_requested_ = r.bool8();
    stop_reason_ = r.str();
    stats.timed_events = r.u64();
    stats.delta_cycles = r.u64();
    stats.proc_invocations = r.u64();
    stats.signal_updates = r.u64();
    stats.time_steps = r.u64();
    dropped_diags_ = r.u64();
    const std::uint32_t n = r.u32();
    diags_.clear();
    for (std::uint32_t i = 0; i < n && r.ok_so_far(); ++i) {
        Diag d;
        d.time = r.u64();
        d.source = r.str();
        d.message = r.str();
        diags_.push_back(std::move(d));
    }
    return r.ok_so_far();
}

void Scheduler::ckpt_clear_events() {
    queue_.clear();
    // Every closure node returns to the free list (any that were pending
    // belonged to the discarded pre-restore timeline).
    fn_free_ = nullptr;
    for (auto& ev : fn_pool_) {
        ev->fn = nullptr;
        ev->pending_ = false;
        ev->next_ = fn_free_;
        fn_free_ = ev.get();
    }
}

void Scheduler::ckpt_quiesce() {
    for (Process* p : runnable_) sched_flags_[p->index_] = 0;
    runnable_.clear();
    for (const std::uint32_t ref : updates_) {
        if (SignalBase* s = store_.owner_of(ref)) s->update_requested_ = false;
    }
    updates_.clear();
}

std::uint64_t SignalBase::snap_id() const {
    if (snap_id_ == 0) {
        snap_id_ = snap_hash64_u64(trace_width(), snap_hash64(name_));
    }
    return snap_id_;
}

void Scheduler::ckpt_save_signals(SnapWriter& w) const {
    w.u32(static_cast<std::uint32_t>(signals_.size()));
    for (const SignalBase* s : signals_) {
        w.u64(s->snap_id());
        s->snap_save(w);
    }
}

bool Scheduler::ckpt_restore_signals(SnapReader& r) {
    const std::uint32_t n = r.u32();
    if (n != signals_.size()) return false;
    for (SignalBase* s : signals_) {
        if (r.u64() != s->snap_id()) return false;
        if (!s->snap_restore(r)) return false;
    }
    return r.ok_so_far();
}

bool Scheduler::has_diag_from(const std::string& needle) const {
    for (const Diag& d : diags_) {
        if (d.source.find(needle) != std::string::npos) return true;
    }
    return false;
}

}  // namespace rtlsim
