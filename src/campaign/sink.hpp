// campaign: JSONL result sink.
//
// One JSON object per line, one line per completed job. Writes are atomic
// per record — the full line is formatted into a buffer first, then written
// and flushed under a single mutex-guarded call — so a campaign killed
// mid-flight leaves a parseable prefix of the results file, and concurrent
// workers can never interleave fragments of two records.
#pragma once

#include <fstream>
#include <mutex>
#include <string>
#include <string_view>

#include "job.hpp"

namespace autovision::campaign {

/// JSON string escaping (quotes, backslash, control characters).
[[nodiscard]] std::string json_escape(std::string_view s);

/// One JobRecord as a single-line JSON object (no trailing newline).
[[nodiscard]] std::string to_jsonl(const JobRecord& rec);

/// Deterministic one-line digest of a record: submission index, name,
/// status, verdict and the report's named metrics — only fields that are
/// byte-reproducible across runs (wall time and attempt counts are
/// excluded). A batch-CLI campaign and a killed-and-resumed service run of
/// the same campaign produce identical verdict lines; the CI service smoke
/// compares the two files with cmp.
[[nodiscard]] std::string to_verdict_line(const JobRecord& rec);

class JsonlSink {
public:
    /// Opens (truncates) `path`. Check `ok()` before relying on output.
    explicit JsonlSink(const std::string& path);

    [[nodiscard]] bool ok() const { return os_.good(); }
    [[nodiscard]] const std::string& path() const noexcept { return path_; }

    /// Thread-safe: format outside the lock, write + flush inside it.
    void write(const JobRecord& rec);

private:
    std::string path_;
    std::mutex mu_;
    std::ofstream os_;
};

}  // namespace autovision::campaign
