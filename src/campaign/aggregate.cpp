#include "aggregate.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace autovision::campaign {

std::chrono::nanoseconds CampaignSummary::percentile(
    std::vector<std::chrono::nanoseconds> sorted_walls, double p) {
    if (sorted_walls.empty()) return std::chrono::nanoseconds{0};
    std::sort(sorted_walls.begin(), sorted_walls.end());
    // Nearest-rank: smallest value with at least p of the mass at or below.
    const double n = static_cast<double>(sorted_walls.size());
    std::size_t rank =
        static_cast<std::size_t>(std::ceil(p / 100.0 * n));
    if (rank == 0) rank = 1;
    if (rank > sorted_walls.size()) rank = sorted_walls.size();
    return sorted_walls[rank - 1];
}

CampaignSummary CampaignSummary::from(const std::vector<JobRecord>& records) {
    CampaignSummary s;
    s.total = records.size();
    std::vector<std::chrono::nanoseconds> walls;
    walls.reserve(records.size());
    for (const JobRecord& r : records) {
        switch (r.status) {
            case JobStatus::kPass: ++s.passed; break;
            case JobStatus::kFail: ++s.failed; break;
            case JobStatus::kTimeout: ++s.timed_out; break;
            case JobStatus::kError: ++s.errored; break;
        }
        if (r.attempts > 1) ++s.retried;
        walls.push_back(r.wall);
        s.wall_total += r.wall;
        s.wall_max = std::max(s.wall_max, r.wall);
        s.stats += r.report.stats;
        s.sim_time += r.report.sim_time;
    }
    s.wall_p50 = percentile(walls, 50.0);
    s.wall_p95 = percentile(walls, 95.0);
    return s;
}

std::string CampaignSummary::table() const {
    const auto ms = [](std::chrono::nanoseconds ns) {
        return static_cast<double>(ns.count()) / 1e6;
    };
    char buf[512];
    std::string out;
    std::snprintf(buf, sizeof buf,
                  "jobs: %zu  pass: %zu  fail: %zu  timeout: %zu  error: %zu"
                  "  (retried: %zu)\n",
                  total, passed, failed, timed_out, errored, retried);
    out += buf;
    std::snprintf(buf, sizeof buf,
                  "wall/job: p50 %.1f ms  p95 %.1f ms  max %.1f ms"
                  "  total %.1f ms\n",
                  ms(wall_p50), ms(wall_p95), ms(wall_max), ms(wall_total));
    out += buf;
    std::snprintf(buf, sizeof buf,
                  "kernel: %llu signal updates, %llu delta cycles, "
                  "%llu proc invocations over %.3f sim-ms\n",
                  static_cast<unsigned long long>(stats.signal_updates),
                  static_cast<unsigned long long>(stats.delta_cycles),
                  static_cast<unsigned long long>(stats.proc_invocations),
                  rtlsim::to_ms(sim_time));
    out += buf;
    return out;
}

}  // namespace autovision::campaign
