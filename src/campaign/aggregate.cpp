#include "aggregate.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace autovision::campaign {

namespace {

[[nodiscard]] bool ends_with(const std::string& s, const char* suffix) {
    const std::size_t n = std::char_traits<char>::length(suffix);
    return s.size() >= n && s.compare(s.size() - n, n, suffix) == 0;
}

}  // namespace

std::chrono::nanoseconds CampaignSummary::percentile(
    std::vector<std::chrono::nanoseconds> sorted_walls, double p) {
    if (sorted_walls.empty()) return std::chrono::nanoseconds{0};
    std::sort(sorted_walls.begin(), sorted_walls.end());
    // Nearest-rank: smallest value with at least p of the mass at or below.
    const double n = static_cast<double>(sorted_walls.size());
    std::size_t rank =
        static_cast<std::size_t>(std::ceil(p / 100.0 * n));
    if (rank == 0) rank = 1;
    if (rank > sorted_walls.size()) rank = sorted_walls.size();
    return sorted_walls[rank - 1];
}

CampaignSummary CampaignSummary::from(const std::vector<JobRecord>& records) {
    CampaignSummary s;
    s.total = records.size();
    std::vector<std::chrono::nanoseconds> walls;
    walls.reserve(records.size());
    std::map<std::string, std::size_t> mean_counts;
    for (const JobRecord& r : records) {
        switch (r.status) {
            case JobStatus::kPass: ++s.passed; break;
            case JobStatus::kFail: ++s.failed; break;
            case JobStatus::kTimeout: ++s.timed_out; break;
            case JobStatus::kError: ++s.errored; break;
        }
        if (r.attempts > 1) ++s.retried;
        walls.push_back(r.wall);
        s.wall_total += r.wall;
        s.wall_max = std::max(s.wall_max, r.wall);
        s.stats += r.report.stats;
        s.sim_time += r.report.sim_time;
        for (const auto& [key, value] : r.report.metrics) {
            if (ends_with(key, "_max")) {
                auto [it, fresh] = s.metrics.try_emplace(key, value);
                if (!fresh) it->second = std::max(it->second, value);
            } else if (ends_with(key, "_mean")) {
                // Sum now, divide by the per-key job count at the end.
                s.metrics[key] += value;
                ++mean_counts[key];
            } else {
                s.metrics[key] += value;
            }
        }
    }
    for (const auto& [key, n] : mean_counts) {
        s.metrics[key] /= static_cast<double>(n);
    }
    s.wall_p50 = percentile(walls, 50.0);
    s.wall_p95 = percentile(walls, 95.0);
    return s;
}

std::string CampaignSummary::table() const {
    const auto ms = [](std::chrono::nanoseconds ns) {
        return static_cast<double>(ns.count()) / 1e6;
    };
    char buf[512];
    std::string out;
    std::snprintf(buf, sizeof buf,
                  "jobs: %zu  pass: %zu  fail: %zu  timeout: %zu  error: %zu"
                  "  (retried: %zu)\n",
                  total, passed, failed, timed_out, errored, retried);
    out += buf;
    std::snprintf(buf, sizeof buf,
                  "wall/job: p50 %.1f ms  p95 %.1f ms  max %.1f ms"
                  "  total %.1f ms\n",
                  ms(wall_p50), ms(wall_p95), ms(wall_max), ms(wall_total));
    out += buf;
    std::snprintf(buf, sizeof buf,
                  "kernel: %llu signal updates, %llu delta cycles, "
                  "%llu proc invocations over %.3f sim-ms\n",
                  static_cast<unsigned long long>(stats.signal_updates),
                  static_cast<unsigned long long>(stats.delta_cycles),
                  static_cast<unsigned long long>(stats.proc_invocations),
                  rtlsim::to_ms(sim_time));
    out += buf;
    if (metrics.count("obs.events") != 0) {
        const auto metric = [this](const char* key) {
            const auto it = metrics.find(key);
            return it == metrics.end() ? 0.0 : it->second;
        };
        std::snprintf(buf, sizeof buf,
                      "obs: %.0f events, %.0f swaps, swap latency mean "
                      "%.1f cyc, x-window mean %.1f cyc, %.0f irqs\n",
                      metric("obs.events"), metric("obs.swaps"),
                      metric("obs.swap_latency_cycles_mean"),
                      metric("obs.x_window_cycles_mean"), metric("obs.irqs"));
        out += buf;
    }
    return out;
}

}  // namespace autovision::campaign
