#include "campaigns.hpp"

#include <memory>
#include <string>

#include "bus/memory.hpp"
#include "bus/plb.hpp"
#include "diff/classify.hpp"
#include "diff/repro.hpp"
#include "diff/shrink.hpp"
#include "engines/census_engine.hpp"
#include "engines/matching_engine.hpp"
#include "kernel/kernel.hpp"
#include "recon/icap_ctrl.hpp"
#include "recon/rr_boundary.hpp"
#include "resim/icap_artifact.hpp"
#include "resim/portal.hpp"
#include "resim/simb.hpp"

namespace autovision::campaign {

namespace {

using rtlsim::Time;

/// A do-nothing error source: a 2-state simulator's view of DPR, unable to
/// express erroneous outputs while the bitstream is being written.
struct NoErrorInjector final : ErrorInjector {
    void inject(RrOutputs& o) override { o = RrOutputs::idle(); }
    const char* name() const override { return "no-x (2-state ablation)"; }
};

JobReport report_from_run(const sys::RunResult& r) {
    JobReport rep;
    rep.pass = r.clean();
    rep.verdict = r.verdict();
    rep.stats = r.stats;
    rep.stages = r.stages;
    rep.sim_time = r.sim_time;
    if (r.traced) r.metrics.to_metric_map(rep.metrics);
    return rep;
}

/// Per-job copy of the base config: jobs tracing to a shared directory get
/// distinct output files (trace_path is treated as a directory here).
sys::SystemConfig job_config(const sys::SystemConfig& base,
                             const std::string& job_name) {
    sys::SystemConfig cfg = base;
    if (!cfg.trace_path.empty()) {
        cfg.trace_path += "/" + job_name + ".json";
    }
    return cfg;
}

/// Expected plain-ReSim detection per the catalogue.
bool expected_resim_detected(const sys::FaultInfo& fi) {
    return fi.expected != sys::ExpectedDetection::kVmFalseAlarm;
}

// ---------------------------------------------------------------------------
// Minimal DPR testbench for the SimB campaigns (no CPU: the job drives the
// IcapCTRL DCR registers directly). One instance per job, never shared.
// ---------------------------------------------------------------------------

constexpr Time kClk = 10 * rtlsim::NS;

struct DprTb {
    rtlsim::Scheduler sch;
    rtlsim::Clock clk{sch, "clk", kClk};
    rtlsim::ResetGen rst{sch, "rst", 3 * kClk};
    Memory mem{Memory::Config{0, 64u << 20, 4}};
    Plb plb;
    rtlsim::Signal<rtlsim::Logic> done_line{sch, "done_line",
                                            rtlsim::Logic::L0};
    EngineRegs cie_regs{sch, "cie_regs", clk.out, 0x60};
    EngineRegs me_regs{sch, "me_regs", clk.out, 0x68};
    CensusEngine cie{sch, "cie", clk.out, rst.out, cie_regs};
    MatchingEngine me{sch, "me", clk.out, rst.out, me_regs};
    RrBoundary rr{sch, "rr", plb.master(1), done_line};
    resim::ExtendedPortal portal{sch, "portal"};
    resim::IcapArtifact icap{sch, "icap", portal};
    IcapCtrl ctrl;

    std::unique_ptr<obs::EventRecorder> rec;

    explicit DprTb(IcapCtrl::Config cfg, unsigned bus_max_burst = 16,
                   bool trace = false)
        : plb(sch, "plb", clk.out, rst.out,
              Plb::Config{2, bus_max_burst, 1u << 30}),
          ctrl(sch, "icapctrl", clk.out, rst.out, plb.master(0), icap, cfg) {
        plb.attach_slave(mem);
        rr.add_module(cie);
        rr.add_module(me);
        portal.map_module(1, 1, rr, 0);
        portal.map_module(1, 2, rr, 1);
        portal.initial_configuration(1, 1);
        if (trace) {
            rec = std::make_unique<obs::EventRecorder>();
            rec->set_enabled(true);
            icap.set_observer(rec.get());
            portal.set_observer(rec.get());
            rr.set_observer(rec.get());
        }
    }

    /// Fold recorded events into the job's metric map (no-op untraced).
    void fold_metrics(std::map<std::string, double>& out) const {
        if (!rec) return;
        obs::Metrics m = obs::Metrics::from_events(rec->snapshot(), kClk);
        m.events_dropped = rec->dropped();
        m.to_metric_map(out);
    }

    /// One full reconfiguration to the ME; returns simulated duration, or 0
    /// on failure (no swap / cancelled).
    Time reconfigure(std::uint32_t payload_words, const JobContext& ctx) {
        resim::SimB b;
        b.rr_id = 1;
        b.module_id = 2;
        b.payload_words = payload_words;
        const auto words = b.build();
        mem.load_words(0x100000, words);
        sch.run_until(sch.now() + 10 * kClk);
        const Time t0 = sch.now();
        ctrl.dcr_write(0x52, rtlsim::Word{0x100000});
        ctrl.dcr_write(
            0x53, rtlsim::Word{static_cast<std::uint32_t>(words.size() * 4)});
        ctrl.dcr_write(0x50, rtlsim::Word{1});
        const std::uint64_t swaps0 = portal.reconfigurations();
        // Generous budget: fetch + drain.
        const Time budget =
            (static_cast<Time>(words.size()) * (ctrl.config().clk_div + 4) +
             10000) * kClk;
        while (sch.now() - t0 < budget && !ctx.cancelled()) {
            sch.run_until(sch.now() + 256 * kClk);
            if (!ctrl.busy() && portal.reconfigurations() > swaps0) break;
        }
        if (portal.reconfigurations() == swaps0) return 0;
        return sch.now() - t0;
    }
};

}  // namespace

sys::SystemConfig small_system_config() {
    sys::SystemConfig cfg;
    cfg.width = 32;
    cfg.height = 24;
    cfg.step = 4;
    cfg.margin = 8;
    cfg.search = 2;
    cfg.simb_payload_words = 100;
    return cfg;
}

std::vector<SimJob> fault_catalog_jobs(const sys::SystemConfig& base,
                                       unsigned frames) {
    std::vector<SimJob> jobs;
    jobs.reserve(sys::kFaultCatalog.size());
    for (const sys::FaultInfo& fi : sys::kFaultCatalog) {
        SimJob job;
        job.name = std::string("fault.") + fi.id;
        job.params = {{"fault", fi.id},
                      {"frames", std::to_string(frames)},
                      {"description", fi.description}};
        job.body = [base, fault = fi.fault,
                    frames](const JobContext& ctx) -> JobReport {
            // Two runs share this job; a single trace file would collide.
            sys::SystemConfig cfg = base;
            cfg.trace_path.clear();
            const sys::DetectionOutcome o =
                sys::run_detection(cfg, fault, frames, ctx.cancel_flag());
            JobReport rep;
            rep.pass = o.matches_expectation();
            rep.verdict = o.row();
            rep.stats = o.vm.stats + o.resim.stats;
            rep.stages = o.vm.stages;
            rep.stages += o.resim.stages;
            rep.sim_time = o.vm.sim_time + o.resim.sim_time;
            rep.metrics = {{"vm_detected", o.vm_detected() ? 1.0 : 0.0},
                           {"resim_detected", o.resim_detected() ? 1.0 : 0.0}};
            if (o.vm.traced || o.resim.traced) {
                obs::Metrics m = o.vm.metrics;
                m += o.resim.metrics;
                m.to_metric_map(rep.metrics);
            }
            return rep;
        };
        jobs.push_back(std::move(job));
    }
    return jobs;
}

std::vector<SimJob> resim_no_x_jobs(const sys::SystemConfig& base,
                                    unsigned frames) {
    std::vector<SimJob> jobs;
    jobs.reserve(sys::kFaultCatalog.size());
    for (const sys::FaultInfo& fi : sys::kFaultCatalog) {
        SimJob job;
        job.name = std::string("nox.") + fi.id;
        job.params = {{"fault", fi.id},
                      {"frames", std::to_string(frames)},
                      {"ablation", "no-x"}};
        // Without X propagation only bug.dpr.1 (isolation) escapes; every
        // other ReSim detection survives the 2-state downgrade.
        const bool expect_detected =
            expected_resim_detected(fi) &&
            fi.fault != sys::Fault::kDpr1NoIsolation;
        job.body = [base, name = job.name, fault = fi.fault, frames,
                    expect_detected](const JobContext& ctx) -> JobReport {
            sys::SystemConfig cfg =
                sys::config_for_fault(job_config(base, name), fault);
            cfg.method = sys::FirmwareConfig::Method::kResim;
            sys::Testbench tb(cfg);
            tb.sys.rr.set_error_injector(std::make_unique<NoErrorInjector>());
            tb.set_cancel_flag(ctx.cancel_flag());
            const sys::RunResult r = tb.run(frames);
            JobReport rep = report_from_run(r);
            const bool detected = !r.clean();
            rep.pass = detected == expect_detected;
            rep.metrics["nox_detected"] = detected ? 1.0 : 0.0;
            rep.metrics["expect_detected"] = expect_detected ? 1.0 : 0.0;
            return rep;
        };
        jobs.push_back(std::move(job));
    }
    return jobs;
}

std::vector<SimJob> simb_sweep_jobs(const std::vector<std::uint32_t>& payloads,
                                    bool trace) {
    std::vector<SimJob> jobs;
    jobs.reserve(payloads.size());
    for (const std::uint32_t payload : payloads) {
        SimJob job;
        job.name = "simb.p" + std::to_string(payload);
        job.params = {{"payload_words", std::to_string(payload)}};
        job.body = [payload, trace](const JobContext& ctx) -> JobReport {
            IcapCtrl::Config cfg;
            cfg.clk_div = 1;
            cfg.fifo_depth = 32;
            DprTb tb(cfg, 16, trace);
            const Time dpr = tb.reconfigure(payload, ctx);
            JobReport rep;
            rep.pass = dpr != 0;
            rep.verdict = rep.pass ? "clean" : "[no module swap]";
            rep.stats = tb.sch.stats;
            rep.stages.dpr_sim = dpr;
            rep.sim_time = tb.sch.now();
            rep.metrics = {
                {"payload_words", static_cast<double>(payload)},
                {"total_words", static_cast<double>(
                                    resim::SimB::length_for_payload(payload))},
                {"dpr_ms", rtlsim::to_ms(dpr)},
                {"swap", rep.pass ? 1.0 : 0.0}};
            tb.fold_metrics(rep.metrics);
            return rep;
        };
        jobs.push_back(std::move(job));
    }
    return jobs;
}

std::vector<SimJob> simb_corner_jobs(bool trace) {
    struct Corner {
        unsigned fifo;
        unsigned div;
        bool p2p;
        unsigned bus_max;  // 0 = unbounded point-to-point link
        bool expect_swap;
        const char* note;
    };
    // Expectations match the Section IV-B narrative: backpressure holds on
    // the shared bus; the p2p slow-drain corner overflows the FIFO and the
    // bug.dpr.4 corner truncates the transfer — neither may swap.
    static constexpr Corner kCorners[] = {
        {32, 1, false, 16, true, "shared, balanced (reference)"},
        {32, 4, false, 16, true,
         "shared, slow config clock (backpressure holds)"},
        {8, 1, false, 16, true,
         "shared, shallow FIFO (burst-sized backpressure)"},
        {8, 8, false, 16, true, "shared, shallow + very slow drain"},
        {32, 1, true, 0, true, "original design: p2p IP on its dedicated link"},
        {8, 4, true, 0, false, "p2p link but slow drain: FIFO overflow corner"},
        {32, 1, true, 16, false,
         "bug.dpr.4: p2p IP on the shared bus (truncates)"},
    };

    std::vector<SimJob> jobs;
    unsigned index = 0;
    for (const Corner& c : kCorners) {
        SimJob job;
        job.name = "simb.corner." + std::to_string(index++);
        job.params = {{"fifo", std::to_string(c.fifo)},
                      {"clk_div", std::to_string(c.div)},
                      {"ip_mode", c.p2p ? "p2p" : "shared"},
                      {"bus", c.bus_max == 0 ? "dedicated" : "shared 16-beat"},
                      {"note", c.note}};
        job.body = [c, trace](const JobContext& ctx) -> JobReport {
            IcapCtrl::Config cfg;
            cfg.fifo_depth = c.fifo;
            cfg.clk_div = c.div;
            cfg.p2p_mode = c.p2p;
            cfg.burst_words = std::min(16u, c.fifo);
            DprTb tb(cfg, c.bus_max, trace);
            const Time dpr = tb.reconfigure(1024, ctx);
            const bool swap = dpr != 0;
            JobReport rep;
            rep.pass = swap == c.expect_swap;
            rep.verdict = rep.pass
                              ? "clean"
                              : (swap ? "[unexpected module swap]"
                                      : "[expected swap did not happen]");
            rep.stats = tb.sch.stats;
            rep.stages.dpr_sim = dpr;
            rep.sim_time = tb.sch.now();
            rep.metrics = {
                {"swap", swap ? 1.0 : 0.0},
                {"expect_swap", c.expect_swap ? 1.0 : 0.0},
                {"overflows", static_cast<double>(tb.ctrl.fifo_overflows())},
                {"dpr_ms", rtlsim::to_ms(dpr)}};
            tb.fold_metrics(rep.metrics);
            return rep;
        };
        jobs.push_back(std::move(job));
    }
    return jobs;
}

std::vector<SimJob> workload_grid_jobs(const std::vector<WorkloadCell>& grid,
                                       const sys::SystemConfig& base) {
    std::vector<SimJob> jobs;
    jobs.reserve(grid.size());
    for (const WorkloadCell& cell : grid) {
        SimJob job;
        job.name = "workload." + std::to_string(cell.width) + "x" +
                   std::to_string(cell.height) + ".f" +
                   std::to_string(cell.frames);
        job.params = {{"width", std::to_string(cell.width)},
                      {"height", std::to_string(cell.height)},
                      {"frames", std::to_string(cell.frames)}};
        job.body = [base, name = job.name,
                    cell](const JobContext& ctx) -> JobReport {
            sys::SystemConfig cfg = job_config(base, name);
            cfg.width = cell.width;
            cfg.height = cell.height;
            sys::Testbench tb(cfg);
            tb.set_cancel_flag(ctx.cancel_flag());
            return report_from_run(tb.run(cell.frames));
        };
        jobs.push_back(std::move(job));
    }
    return jobs;
}

std::vector<SimJob> seed_sweep_jobs(const sys::SystemConfig& base,
                                    std::uint32_t first_seed,
                                    std::uint32_t num_seeds, unsigned frames) {
    std::vector<SimJob> jobs;
    jobs.reserve(num_seeds);
    for (std::uint32_t s = 0; s < num_seeds; ++s) {
        const std::uint32_t seed = first_seed + s;
        SimJob job;
        job.name = "seed." + std::to_string(seed);
        job.params = {{"seed", std::to_string(seed)},
                      {"frames", std::to_string(frames)}};
        job.body = [base, name = job.name, seed,
                    frames](const JobContext& ctx) -> JobReport {
            sys::SystemConfig cfg = job_config(base, name);
            cfg.seed = seed;  // canonical seed; scene derives from it
            sys::Testbench tb(cfg, /*scene_seed=*/seed);
            tb.set_cancel_flag(ctx.cancel_flag());
            return report_from_run(tb.run(frames));
        };
        jobs.push_back(std::move(job));
    }
    return jobs;
}

std::vector<SimJob> diff_batch_jobs(const DiffCampaignConfig& cfg) {
    // Seed-domain separation for the diff campaign's scenario stream.
    constexpr std::uint64_t kTagDiff = 0x4449'4646'0000ull;  // "DIFF"

    scen::ScenarioConstraints cons;
    cons.w_stream = 1;  // the oracle drives SimB streams only
    cons.w_system = 0;
    cons.w_fault = 0;
    cons.min_sessions = cfg.min_sessions;
    cons.max_sessions = cfg.max_sessions;

    std::vector<SimJob> jobs;
    jobs.reserve(cfg.count);
    for (unsigned i = 0; i < cfg.count; ++i) {
        const std::uint64_t seed = rtlsim::derive_seed(cfg.seed, kTagDiff + i);
        const std::string name = "diff.s" + std::to_string(i);
        SimJob job;
        job.name = name;
        char seed_hex[24];
        std::snprintf(seed_hex, sizeof seed_hex, "0x%016llx",
                      static_cast<unsigned long long>(seed));
        job.params = {{"scenario_seed", seed_hex},
                      {"inject", diff::to_string(cfg.inject)}};
        job.body = [cfg, cons, seed, name](const JobContext& ctx) {
            JobReport rep;
            // One boot-snapshot cache per job: the initial differential run
            // fills it, the shrinker's replays fork from it.
            diff::BootCache boot;
            diff::DiffOptions dopt;
            dopt.inject = cfg.inject;
            dopt.cancel = ctx.cancel_flag();
            dopt.boot = &boot;
            const scen::Scenario sc = scen::generate(cons, seed);
            const diff::DiffOutcome out = diff::run_diff(sc, dopt);
            rep.stats = out.vm.stats;
            rep.stats += out.resim.stats;
            rep.sim_time = out.vm.sim_time + out.resim.sim_time;
            rep.metrics["sessions"] = static_cast<double>(sc.sessions.size());
            rep.metrics["orig_words"] =
                static_cast<double>(diff::simb_word_count(sc));
            rep.metrics["genuine"] = out.report.genuine();
            rep.metrics["expected"] = out.report.expected();
            rep.metrics["genuine_vm"] = out.report.genuine_on(diff::Side::kVm);
            rep.metrics["genuine_resim"] =
                out.report.genuine_on(diff::Side::kResim);
            if (out.report.cancelled) {
                rep.pass = false;
                rep.verdict = "cancelled";
                return rep;
            }
            if (out.report.genuine() == 0) {
                // An injected fault some scenarios cannot express (e.g. no
                // payload window for X to escape from) is not a job
                // failure; the batch-level >=1-genuine expectation is the
                // runner's --expect-genuine check.
                rep.pass = true;
                rep.verdict = cfg.inject == diff::DiffFault::kNone
                                  ? "clean"
                                  : "injected fault not expressed by this "
                                    "scenario";
                return rep;
            }
            // Genuine divergence: delta-debug it down to a minimal
            // reproducer before reporting.
            diff::ShrinkOptions sopt;
            sopt.diff = dopt;
            const diff::ShrinkResult shr = diff::shrink(sc, sopt);
            rep.metrics["shrink_runs"] = shr.runs;
            rep.metrics["shrunk_words"] =
                static_cast<double>(shr.minimal_words);
            if (shr.original_words > 0) {
                rep.metrics["shrink_ratio"] =
                    static_cast<double>(shr.minimal_words) /
                    static_cast<double>(shr.original_words);
            }
            rep.verdict = out.report.first_genuine();
            bool wrote = true;
            if (!cfg.repro_dir.empty() && shr.diverged) {
                diff::ReproBundle b = diff::make_bundle(
                    shr.minimal, shr.outcome.report, cfg.inject,
                    shr.original_words, shr.minimal_words);
                b.scenario.name = name;
                std::string err;
                wrote = diff::write_repro_files(b, cfg.repro_dir, name, &err);
                if (!wrote) rep.verdict = "repro write failed: " + err;
            }
            // Clean design: a genuine divergence is the finding (fail).
            // Injected fault: flagging + shrinking it is the pass.
            rep.pass = cfg.inject != diff::DiffFault::kNone && shr.diverged &&
                       wrote;
            return rep;
        };
        jobs.push_back(std::move(job));
    }
    return jobs;
}

}  // namespace autovision::campaign
