// campaign: the simulation-job abstraction.
//
// A SimJob is one isolated simulation run: a name, a parameter set (for the
// result record), and a body that — on a worker thread — builds its own
// Testbench/Scheduler, runs it, and reports back. Nothing simulation-side
// is shared between jobs; the only cross-thread object a body ever touches
// is its JobContext cancellation flag, which the campaign watchdog sets
// when the job overruns its wall-clock budget.
#pragma once

#include <atomic>
#include <chrono>
#include <cstddef>
#include <functional>
#include <map>
#include <string>

#include "cover/coverage.hpp"
#include "kernel/stats.hpp"
#include "sys/testbench.hpp"

namespace autovision::campaign {

/// Per-attempt context handed to a job body. Bodies should poll
/// `cancelled()` (or wire `cancel_flag()` into `Testbench::set_cancel_flag`)
/// so a hung simulation can be reaped cooperatively by the watchdog.
class JobContext {
public:
    [[nodiscard]] bool cancelled() const noexcept {
        return cancel_.load(std::memory_order_relaxed);
    }
    [[nodiscard]] const std::atomic<bool>* cancel_flag() const noexcept {
        return &cancel_;
    }
    void request_cancel() noexcept {
        cancel_.store(true, std::memory_order_relaxed);
    }
    void reset() noexcept { cancel_.store(false, std::memory_order_relaxed); }

private:
    std::atomic<bool> cancel_{false};
};

/// What a job body reports back: a pass/fail verdict plus the kernel and
/// stage counters of the run(s) it performed, and free-form named metrics
/// for campaign-specific quantities (detection bits, DPR delay, ...).
struct JobReport {
    bool pass = false;
    std::string verdict = "clean";
    rtlsim::SimStats stats;            ///< summed over the job's runs
    sys::StageTimes stages;            ///< summed stage attribution
    rtlsim::Time sim_time = 0;         ///< total simulated time
    std::map<std::string, double> metrics;
    /// Per-job coverage shard (empty unless the job fills a model). The
    /// closure loop merges shards with Coverage::operator+= — an order-
    /// independent merge, so worker completion order cannot change totals.
    cover::Coverage coverage;
};

/// One unit of campaign work. The body is factory + runner in one: invoked
/// on a worker thread, it must construct every simulation object it needs
/// (isolation invariant: one Scheduler + memory per job).
struct SimJob {
    std::string name;
    std::map<std::string, std::string> params;
    std::function<JobReport(const JobContext&)> body;
};

/// Final classification of a job after all attempts.
enum class JobStatus {
    kPass,     ///< body completed in budget, report.pass
    kFail,     ///< body completed in budget, !report.pass (not retried:
               ///< verdicts are deterministic, a failure is a finding)
    kTimeout,  ///< every attempt overran the wall-clock budget
    kError,    ///< every attempt threw
};

[[nodiscard]] constexpr const char* to_string(JobStatus s) {
    switch (s) {
        case JobStatus::kPass: return "pass";
        case JobStatus::kFail: return "fail";
        case JobStatus::kTimeout: return "timeout";
        case JobStatus::kError: return "error";
    }
    return "?";
}

/// The result record for one job: classification, attempt count, wall
/// clock of the final attempt, and the body's report. This is what the
/// JSONL sink serialises and the aggregate summarises.
struct JobRecord {
    std::size_t index = 0;  ///< submission order
    std::string name;
    std::map<std::string, std::string> params;
    JobStatus status = JobStatus::kError;
    JobReport report;
    unsigned attempts = 0;
    std::chrono::nanoseconds wall{0};
    std::string error;  ///< exception text / timeout note

    [[nodiscard]] bool passed() const noexcept {
        return status == JobStatus::kPass;
    }
};

}  // namespace autovision::campaign
