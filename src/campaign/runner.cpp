#include "runner.hpp"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <map>
#include <memory>
#include <mutex>
#include <thread>

#include "pool.hpp"
#include "sink.hpp"

namespace autovision::campaign {

namespace {

using SteadyClock = std::chrono::steady_clock;

/// The watchdog's view of in-flight attempts: context -> attempt start.
struct ActiveSet {
    std::mutex mu;
    std::condition_variable cv;  ///< wakes the watchdog on insert/stop
    std::map<JobContext*, SteadyClock::time_point> attempts;
    bool stop = false;
};

/// Poll the in-flight set and cancel attempts that overran the budget.
void watchdog_loop(ActiveSet& active, std::chrono::milliseconds timeout) {
    // Poll fast enough that short budgets (tests use a few ms) are enforced
    // promptly, without busy-waiting for long-running campaigns.
    const auto poll = std::clamp<std::chrono::milliseconds>(
        timeout / 4, std::chrono::milliseconds{1},
        std::chrono::milliseconds{50});
    std::unique_lock lk(active.mu);
    while (!active.stop) {
        active.cv.wait_for(lk, poll, [&] { return active.stop; });
        if (active.stop) return;
        const auto now = SteadyClock::now();
        for (auto& [ctx, start] : active.attempts) {
            if (now - start >= timeout) ctx->request_cancel();
        }
    }
}

}  // namespace

CampaignResult CampaignRunner::run(const std::vector<SimJob>& jobs) {
    CampaignResult result;
    result.records.resize(jobs.size());
    if (jobs.empty()) {
        result.summary = CampaignSummary::from(result.records);
        return result;
    }

    std::unique_ptr<JsonlSink> sink;
    if (!cfg_.jsonl_path.empty()) {
        sink = std::make_unique<JsonlSink>(cfg_.jsonl_path);
    }

    const bool timed = cfg_.timeout.count() > 0;
    ActiveSet active;
    std::thread watchdog;
    if (timed) {
        watchdog = std::thread(watchdog_loop, std::ref(active), cfg_.timeout);
    }

    std::mutex record_mu;  // serialises the on_record callback

    {
        const unsigned workers =
            std::min<unsigned>(resolve_workers(cfg_.jobs),
                               static_cast<unsigned>(jobs.size()));
        WorkerPool pool(workers, cfg_.queue_capacity);
        for (std::size_t i = 0; i < jobs.size(); ++i) {
            pool.submit([&, i] {
                const SimJob& job = jobs[i];
                JobRecord rec;
                rec.index = i;
                rec.name = job.name;
                rec.params = job.params;

                JobContext ctx;
                const unsigned max_attempts = 1 + cfg_.retries;
                for (unsigned attempt = 1; attempt <= max_attempts;
                     ++attempt) {
                    ctx.reset();
                    const auto start = SteadyClock::now();
                    if (timed) {
                        const std::lock_guard lk(active.mu);
                        active.attempts.emplace(&ctx, start);
                        active.cv.notify_one();
                    }
                    JobReport rep;
                    std::string error;
                    bool threw = false;
                    try {
                        rep = job.body(ctx);
                    } catch (const std::exception& e) {
                        threw = true;
                        error = e.what();
                    } catch (...) {
                        threw = true;
                        error = "unknown exception";
                    }
                    if (timed) {
                        const std::lock_guard lk(active.mu);
                        active.attempts.erase(&ctx);
                    }
                    const auto wall = SteadyClock::now() - start;

                    rec.attempts = attempt;
                    rec.wall =
                        std::chrono::duration_cast<std::chrono::nanoseconds>(
                            wall);
                    if (threw) {
                        rec.status = JobStatus::kError;
                        rec.error = error;
                    } else if (ctx.cancelled() ||
                               (timed && wall >= cfg_.timeout)) {
                        rec.status = JobStatus::kTimeout;
                        rec.report = std::move(rep);
                        rec.error = "wall-clock budget (" +
                                    std::to_string(cfg_.timeout.count()) +
                                    " ms) exhausted";
                    } else {
                        rec.status = rep.pass ? JobStatus::kPass
                                              : JobStatus::kFail;
                        rec.report = std::move(rep);
                        rec.error.clear();
                        break;  // completed in budget: verdict is final
                    }
                    // kTimeout / kError: retry unless attempts exhausted.
                }

                if (sink) sink->write(rec);
                if (cfg_.on_record) {
                    const std::lock_guard lk(record_mu);
                    cfg_.on_record(rec);
                }
                result.records[i] = std::move(rec);
            });
        }
        pool.drain();
    }

    if (timed) {
        {
            const std::lock_guard lk(active.mu);
            active.stop = true;
        }
        active.cv.notify_all();
        watchdog.join();
    }

    result.summary = CampaignSummary::from(result.records);
    return result;
}

}  // namespace autovision::campaign
