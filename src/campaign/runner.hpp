// campaign: the batch runner.
//
// Feeds SimJobs through a bounded queue into a worker pool, supervises each
// attempt with a wall-clock watchdog, retries flaky/hung runs a bounded
// number of times, and captures every completed job into a thread-safe
// JSONL sink plus an in-memory aggregate.
//
// Timeout semantics: the watchdog thread polls the set of in-flight
// attempts; when one overruns the budget it sets the attempt's JobContext
// cancel flag. Bodies that wire the flag into `Testbench::set_cancel_flag`
// (all built-in campaigns do) abandon the simulation at the next quantum.
// Either way the attempt is classified a timeout when it finishes over
// budget, and is retried up to `retries` extra times before being recorded
// as a permanent failure. Deterministic fail verdicts (body completed in
// budget, report.pass == false) are findings, not flakiness, and are never
// retried.
#pragma once

#include <chrono>
#include <cstddef>
#include <functional>
#include <string>
#include <vector>

#include "aggregate.hpp"
#include "job.hpp"

namespace autovision::campaign {

struct CampaignConfig {
    /// Worker threads; 0 = hardware concurrency (see resolve_workers).
    unsigned jobs = 0;
    /// Per-attempt wall-clock budget; 0 disables the watchdog.
    std::chrono::milliseconds timeout{0};
    /// Extra attempts after a timed-out or errored run.
    unsigned retries = 1;
    /// JSONL results path; empty = no file sink.
    std::string jsonl_path;
    /// Bounded submission queue depth.
    std::size_t queue_capacity = 64;
    /// Optional progress callback, invoked serially (under a lock) as each
    /// job completes — completion order, not submission order.
    std::function<void(const JobRecord&)> on_record;
};

struct CampaignResult {
    std::vector<JobRecord> records;  ///< submission order
    CampaignSummary summary;
};

class CampaignRunner {
public:
    explicit CampaignRunner(CampaignConfig cfg) : cfg_(std::move(cfg)) {}

    [[nodiscard]] const CampaignConfig& config() const noexcept {
        return cfg_;
    }

    /// Run every job to completion and return all records + the aggregate.
    [[nodiscard]] CampaignResult run(const std::vector<SimJob>& jobs);

private:
    CampaignConfig cfg_;
};

}  // namespace autovision::campaign
