#include "closure.hpp"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <utility>

#include "ckpt/checkpoint.hpp"
#include "rrm/rrm_harness.hpp"
#include "scen/stream_harness.hpp"
#include "sink.hpp"
#include "sys/detection.hpp"

namespace autovision::campaign {

namespace {

JobReport run_stream_job(const scen::Scenario& s, const JobContext& ctx,
                         const std::string* boot) {
    const scen::StreamResult r =
        scen::run_stream_scenario(s, ctx.cancel_flag(), boot);
    JobReport rep;
    rep.coverage = cover::make_model();
    cover::observe_events(rep.coverage, r.events, r.clk_period);
    rep.stats = r.stats;
    rep.sim_time = r.sim_time;
    rep.stages.dpr_sim = r.sim_time;
    // A stream scenario passes when exactly the expected sessions swapped:
    // corrupted sessions must NOT activate a half-configured module.
    const unsigned expected = s.expected_swaps();
    rep.pass = r.swaps == expected;
    rep.verdict = rep.pass ? "clean"
                           : "[swaps " + std::to_string(r.swaps) +
                                 " != expected " + std::to_string(expected) +
                                 "]";
    rep.metrics = {{"swaps", static_cast<double>(r.swaps)},
                   {"expected_swaps", static_cast<double>(expected)},
                   {"aborts", static_cast<double>(r.aborts)},
                   {"truncations", static_cast<double>(r.truncations)},
                   {"captures", static_cast<double>(r.captures)},
                   {"restores", static_cast<double>(r.restores)},
                   {"diagnostics", static_cast<double>(r.diagnostics)}};
    return rep;
}

JobReport run_system_job(const scen::Scenario& s, const JobContext& ctx) {
    sys::Testbench tb(s.config);
    tb.set_cancel_flag(ctx.cancel_flag());
    const sys::RunResult r = tb.run(s.frames);
    JobReport rep;
    rep.pass = r.clean();
    rep.verdict = r.verdict();
    rep.stats = r.stats;
    rep.stages = r.stages;
    rep.sim_time = r.sim_time;
    rep.coverage = cover::make_model();
    if (tb.recorder() != nullptr) {
        cover::observe_events(rep.coverage, tb.recorder()->snapshot(),
                              s.config.clk_period);
    }
    if (r.traced) r.metrics.to_metric_map(rep.metrics);
    return rep;
}

JobReport run_regions_job(const scen::Scenario& s) {
    // The harness is self-bounding (cfg.max_cycles bailout), so the job
    // runs to completion rather than polling the cancel flag.
    const rrm::RrmResult r = rrm::run_rrm_scenario(s.rrm);
    JobReport rep;
    rep.coverage = cover::make_model();
    cover::observe_events(rep.coverage, r.events, r.clk_period);
    cover::observe_rrm(rep.coverage, s.rrm, r);
    rep.stats = r.stats;
    rep.sim_time = r.sim_time;
    rep.stages.dpr_sim = r.sim_time;

    std::uint64_t jobs = 0, timeouts = 0;
    for (const std::uint32_t j : r.jobs_done) jobs += j;
    for (const std::uint32_t t : r.timeouts) timeouts += t;
    const std::uint64_t expected_jobs =
        std::uint64_t{s.rrm.regions} * s.rrm.jobs_per_region;

    // A dropped isolation clamp must be *detected* (boundary diagnostics);
    // clean and overlap scenarios must drain their whole job mix without a
    // complaint. The FAR misdirection is judged by its signature instead:
    // the victim submits every session yet its boundary never swaps (they
    // all land on the co-region). Whether the stomped co-region then times
    // out or leaks X from its unisolated boundary depends on plan timing
    // across policies and region counts — that collateral is the
    // corruption's legitimate physics, not a harness failure, so it does
    // not gate the job (the 2-region round-robin shape, where the fallout
    // happens to be silent, is pinned by the RrmHarnessRun unit test).
    if (s.rrm.corrupt == rrm::RegionCorrupt::kDropIsolation) {
        rep.pass = r.completed && r.diagnostics > 0;
        rep.verdict = rep.pass ? "clean"
                               : "[isolation leak undetected after " +
                                     std::to_string(jobs) + " jobs]";
    } else if (s.rrm.corrupt == rrm::RegionCorrupt::kWrongRegionFar) {
        std::uint32_t victim_swaps = 0;
        for (const obs::Event& e : r.events) {
            if (e.kind == obs::EventKind::kSwap &&
                e.region == s.rrm.victim) {
                ++victim_swaps;
            }
        }
        rep.pass = r.completed && victim_swaps == 0 &&
                   r.sessions[s.rrm.victim] == s.rrm.jobs_per_region;
        rep.verdict = rep.pass
                          ? "clean"
                          : "[misdirection signature broken: victim swaps " +
                                std::to_string(victim_swaps) + ", sessions " +
                                std::to_string(r.sessions[s.rrm.victim]) +
                                "/" + std::to_string(s.rrm.jobs_per_region) +
                                (r.completed ? "]" : ", manager hung]");
    } else {
        rep.pass = r.completed && r.diagnostics == 0 &&
                   jobs == expected_jobs && timeouts == 0;
        rep.verdict =
            rep.pass ? "clean"
                     : "[jobs " + std::to_string(jobs) + "/" +
                           std::to_string(expected_jobs) + ", timeouts " +
                           std::to_string(timeouts) + ", diags " +
                           std::to_string(r.diagnostics) +
                           (r.completed ? "]" : ", manager hung]");
    }
    std::uint64_t max_wait = 0;
    for (const std::uint64_t w : r.arb_max_wait) {
        max_wait = std::max(max_wait, w);
    }
    rep.metrics = {{"swaps", static_cast<double>(r.swaps)},
                   {"jobs", static_cast<double>(jobs)},
                   {"timeouts", static_cast<double>(timeouts)},
                   {"arb_max_wait", static_cast<double>(max_wait)},
                   {"diagnostics", static_cast<double>(r.diagnostics)}};
    return rep;
}

JobReport run_fault_job(const scen::Scenario& s, const JobContext& ctx) {
    const sys::DetectionOutcome o =
        sys::run_detection(s.config, s.fault, s.frames, ctx.cancel_flag());
    JobReport rep;
    rep.pass = o.matches_expectation();
    rep.verdict = o.row();
    rep.stats = o.vm.stats + o.resim.stats;
    rep.stages = o.vm.stages;
    rep.stages += o.resim.stages;
    rep.sim_time = o.vm.sim_time + o.resim.sim_time;
    rep.coverage = cover::make_model();
    cover::observe_detection(rep.coverage, s.fault, cover::DetectMethod::kVm,
                             o.vm_detected());
    cover::observe_detection(rep.coverage, s.fault,
                             cover::DetectMethod::kResim, o.resim_detected());
    rep.metrics = {{"vm_detected", o.vm_detected() ? 1.0 : 0.0},
                   {"resim_detected", o.resim_detected() ? 1.0 : 0.0}};
    return rep;
}

}  // namespace

std::vector<SimJob> scenario_jobs(const std::vector<scen::Scenario>& batch,
                                  std::shared_ptr<const std::string> boot) {
    std::vector<SimJob> jobs;
    jobs.reserve(batch.size());
    for (const scen::Scenario& s : batch) {
        SimJob job;
        job.name = s.name;
        char seed_hex[24];
        std::snprintf(seed_hex, sizeof seed_hex, "0x%016llx",
                      static_cast<unsigned long long>(s.seed));
        job.params = {{"seed", seed_hex}};
        switch (s.kind) {
            case scen::Kind::kStream:
                job.params["kind"] = "stream";
                job.params["sessions"] = std::to_string(s.sessions.size());
                // The shared_ptr keeps the boot blob alive for the worker
                // pool's lifetime; jobs only ever read it.
                job.body = [s, boot](const JobContext& ctx) {
                    return run_stream_job(s, ctx,
                                          boot ? boot.get() : nullptr);
                };
                break;
            case scen::Kind::kSystem:
                job.params["kind"] = "system";
                job.params["geometry"] = std::to_string(s.config.width) +
                                         "x" +
                                         std::to_string(s.config.height);
                job.body = [s](const JobContext& ctx) {
                    return run_system_job(s, ctx);
                };
                break;
            case scen::Kind::kFault:
                job.params["kind"] = "fault";
                job.params["fault"] = sys::fault_info(s.fault).id;
                job.body = [s](const JobContext& ctx) {
                    return run_fault_job(s, ctx);
                };
                break;
            case scen::Kind::kRegions:
                job.params["kind"] = "regions";
                job.params["regions"] = std::to_string(s.rrm.regions);
                job.params["policy"] = rrm::to_string(s.rrm.policy);
                job.body = [s](const JobContext&) {
                    return run_regions_job(s);
                };
                break;
        }
        jobs.push_back(std::move(job));
    }
    return jobs;
}

std::uint64_t closure_config_hash(const ClosureConfig& cc) {
    std::uint64_t h = rtlsim::snap_hash64("campaign.closure.v1");
    h = rtlsim::snap_hash64_u64(cc.seed, h);
    h = rtlsim::snap_hash64_u64(cc.batch_size, h);
    h = rtlsim::snap_hash64_u64(cc.max_batches, h);
    h = rtlsim::snap_hash64_u64(
        static_cast<std::uint64_t>(cc.target_percent * 1024.0), h);
    h = rtlsim::snap_hash64_u64(cc.saturation_batches, h);
    h = rtlsim::snap_hash64_u64(cc.bias ? 1 : 0, h);
    return h;
}

ClosureLoop::ClosureLoop(ClosureConfig cc) : cc_(std::move(cc)) {
    merged_ = cover::make_model();
    current_ = cc_.base;
    // One boot snapshot amortized over every kStream job of the campaign:
    // the stream testbench's elaborate+reset prefix is scenario-independent,
    // so each job forks from the blob instead of re-simulating it.
    if (cc_.warm_start) {
        boot_ = std::make_shared<const std::string>(
            cc_.boot_blob.empty() ? scen::stream_boot_snapshot()
                                  : cc_.boot_blob);
    }
}

bool ClosureLoop::done() const noexcept {
    return reached_target_ || saturated_ || next_batch_ >= cc_.max_batches;
}

BatchSummary ClosureLoop::run_batch(const CampaignConfig& rc) {
    const unsigned b = next_batch_;
    const std::vector<scen::Scenario> batch =
        scen::generate_batch(current_, cc_.seed, b, cc_.batch_size);
    CampaignRunner runner(rc);
    CampaignResult cres = runner.run(scenario_jobs(batch, boot_));

    for (JobRecord& rec : cres.records) {
        if (rec.report.coverage.same_shape(merged_)) {
            merged_ += rec.report.coverage;
        }
        // Verdict lines are numbered by campaign-wide submission order so
        // a resumed campaign continues the sequence seamlessly.
        rec.index += scenarios_run_;
        verdicts_.push_back(to_verdict_line(rec));
        records_.push_back(std::move(rec));
    }
    scenarios_run_ += static_cast<unsigned>(batch.size());
    next_batch_ = b + 1;

    const std::size_t hit = merged_.goal_hit();
    const BatchSummary summary{b, hit - prev_hit_, hit, merged_.percent()};
    batches_.push_back(summary);

    if (merged_.percent() >= cc_.target_percent) {
        reached_target_ = true;
    } else {
        stale_ = hit == prev_hit_ ? stale_ + 1 : 0;
        if (stale_ >= cc_.saturation_batches) saturated_ = true;
    }
    prev_hit_ = hit;
    if (!done() && cc_.bias) current_ = scen::bias_towards(cc_.base, merged_);
    return summary;
}

ClosureResult ClosureLoop::result() const {
    ClosureResult res;
    res.merged = merged_;
    res.batches = batches_;
    res.records = records_;
    res.reached_target = reached_target_;
    res.saturated = saturated_;
    res.scenarios_run = scenarios_run_;
    return res;
}

bool ClosureLoop::save(std::ostream& os) const {
    ckpt::Manifest m;
    m.config_hash = closure_config_hash(cc_);
    m.sim_time = next_batch_;
    ckpt::Saver saver(m);

    rtlsim::SnapWriter& st = saver.section("closure.state");
    st.u32(next_batch_);
    st.u32(scenarios_run_);
    st.u64(prev_hit_);
    st.u32(stale_);
    st.bool8(reached_target_);
    st.bool8(saturated_);

    merged_.save_hits(saver.section("closure.cover"));

    rtlsim::SnapWriter& bs = saver.section("closure.batches");
    bs.u32(static_cast<std::uint32_t>(batches_.size()));
    for (const BatchSummary& b : batches_) {
        bs.u32(b.index);
        bs.u64(b.new_bins);
        bs.u64(b.goal_hit);
        // percent is re-derivable but stored bit-exact so a resumed
        // summary print matches the uninterrupted one.
        std::uint64_t bits = 0;
        static_assert(sizeof bits == sizeof b.percent);
        std::memcpy(&bits, &b.percent, sizeof bits);
        bs.u64(bits);
    }

    rtlsim::SnapWriter& vs = saver.section("closure.verdicts");
    vs.u32(static_cast<std::uint32_t>(verdicts_.size()));
    for (const std::string& v : verdicts_) vs.str(v);

    return saver.write_to(os);
}

bool ClosureLoop::restore(std::istream& is, std::string* err) {
    const auto fail = [&](const std::string& why) {
        if (err != nullptr) *err = why;
        return false;
    };
    ckpt::Loader loader;
    if (!loader.load(is, closure_config_hash(cc_))) {
        return fail(loader.error());
    }

    rtlsim::SnapReader st = loader.reader("closure.state");
    next_batch_ = st.u32();
    scenarios_run_ = st.u32();
    prev_hit_ = st.u64();
    stale_ = st.u32();
    reached_target_ = st.bool8();
    saturated_ = st.bool8();
    if (!st.ok()) return fail("closure.state: malformed");

    merged_ = cover::make_model();
    rtlsim::SnapReader cv = loader.reader("closure.cover");
    if (!merged_.restore_hits(cv) || !cv.ok()) {
        return fail("closure.cover: shape mismatch");
    }

    batches_.clear();
    rtlsim::SnapReader bs = loader.reader("closure.batches");
    const std::uint32_t nb = bs.u32();
    for (std::uint32_t i = 0; i < nb && bs.ok_so_far(); ++i) {
        BatchSummary b;
        b.index = bs.u32();
        b.new_bins = bs.u64();
        b.goal_hit = bs.u64();
        const std::uint64_t bits = bs.u64();
        std::memcpy(&b.percent, &bits, sizeof b.percent);
        batches_.push_back(b);
    }
    if (!bs.ok() || batches_.size() != nb) {
        return fail("closure.batches: malformed");
    }

    verdicts_.clear();
    rtlsim::SnapReader vs = loader.reader("closure.verdicts");
    const std::uint32_t nv = vs.u32();
    for (std::uint32_t i = 0; i < nv && vs.ok_so_far(); ++i) {
        verdicts_.push_back(vs.str());
    }
    if (!vs.ok() || verdicts_.size() != nv) {
        return fail("closure.verdicts: malformed");
    }

    records_.clear();
    // The bias weights are a pure function of (base, merged coverage):
    // recompute instead of serializing the whole constraint table.
    current_ = (cc_.bias && next_batch_ > 0)
                   ? scen::bias_towards(cc_.base, merged_)
                   : cc_.base;
    return true;
}

ClosureResult run_closure(const ClosureConfig& cc, const CampaignConfig& rc) {
    ClosureLoop loop(cc);
    while (!loop.done()) loop.run_batch(rc);
    return loop.result();
}

}  // namespace autovision::campaign
