#include "closure.hpp"

#include <cstdio>
#include <memory>
#include <string>
#include <utility>

#include "scen/stream_harness.hpp"
#include "sys/detection.hpp"

namespace autovision::campaign {

namespace {

JobReport run_stream_job(const scen::Scenario& s, const JobContext& ctx,
                         const std::string* boot) {
    const scen::StreamResult r =
        scen::run_stream_scenario(s, ctx.cancel_flag(), boot);
    JobReport rep;
    rep.coverage = cover::make_model();
    cover::observe_events(rep.coverage, r.events, r.clk_period);
    rep.stats = r.stats;
    rep.sim_time = r.sim_time;
    rep.stages.dpr_sim = r.sim_time;
    // A stream scenario passes when exactly the expected sessions swapped:
    // corrupted sessions must NOT activate a half-configured module.
    const unsigned expected = s.expected_swaps();
    rep.pass = r.swaps == expected;
    rep.verdict = rep.pass ? "clean"
                           : "[swaps " + std::to_string(r.swaps) +
                                 " != expected " + std::to_string(expected) +
                                 "]";
    rep.metrics = {{"swaps", static_cast<double>(r.swaps)},
                   {"expected_swaps", static_cast<double>(expected)},
                   {"aborts", static_cast<double>(r.aborts)},
                   {"truncations", static_cast<double>(r.truncations)},
                   {"captures", static_cast<double>(r.captures)},
                   {"restores", static_cast<double>(r.restores)},
                   {"diagnostics", static_cast<double>(r.diagnostics)}};
    return rep;
}

JobReport run_system_job(const scen::Scenario& s, const JobContext& ctx) {
    sys::Testbench tb(s.config);
    tb.set_cancel_flag(ctx.cancel_flag());
    const sys::RunResult r = tb.run(s.frames);
    JobReport rep;
    rep.pass = r.clean();
    rep.verdict = r.verdict();
    rep.stats = r.stats;
    rep.stages = r.stages;
    rep.sim_time = r.sim_time;
    rep.coverage = cover::make_model();
    if (tb.recorder() != nullptr) {
        cover::observe_events(rep.coverage, tb.recorder()->snapshot(),
                              s.config.clk_period);
    }
    if (r.traced) r.metrics.to_metric_map(rep.metrics);
    return rep;
}

JobReport run_fault_job(const scen::Scenario& s, const JobContext& ctx) {
    const sys::DetectionOutcome o =
        sys::run_detection(s.config, s.fault, s.frames, ctx.cancel_flag());
    JobReport rep;
    rep.pass = o.matches_expectation();
    rep.verdict = o.row();
    rep.stats = o.vm.stats + o.resim.stats;
    rep.stages = o.vm.stages;
    rep.stages += o.resim.stages;
    rep.sim_time = o.vm.sim_time + o.resim.sim_time;
    rep.coverage = cover::make_model();
    cover::observe_detection(rep.coverage, s.fault, cover::DetectMethod::kVm,
                             o.vm_detected());
    cover::observe_detection(rep.coverage, s.fault,
                             cover::DetectMethod::kResim, o.resim_detected());
    rep.metrics = {{"vm_detected", o.vm_detected() ? 1.0 : 0.0},
                   {"resim_detected", o.resim_detected() ? 1.0 : 0.0}};
    return rep;
}

}  // namespace

std::vector<SimJob> scenario_jobs(const std::vector<scen::Scenario>& batch,
                                  std::shared_ptr<const std::string> boot) {
    std::vector<SimJob> jobs;
    jobs.reserve(batch.size());
    for (const scen::Scenario& s : batch) {
        SimJob job;
        job.name = s.name;
        char seed_hex[24];
        std::snprintf(seed_hex, sizeof seed_hex, "0x%016llx",
                      static_cast<unsigned long long>(s.seed));
        job.params = {{"seed", seed_hex}};
        switch (s.kind) {
            case scen::Kind::kStream:
                job.params["kind"] = "stream";
                job.params["sessions"] = std::to_string(s.sessions.size());
                // The shared_ptr keeps the boot blob alive for the worker
                // pool's lifetime; jobs only ever read it.
                job.body = [s, boot](const JobContext& ctx) {
                    return run_stream_job(s, ctx,
                                          boot ? boot.get() : nullptr);
                };
                break;
            case scen::Kind::kSystem:
                job.params["kind"] = "system";
                job.params["geometry"] = std::to_string(s.config.width) +
                                         "x" +
                                         std::to_string(s.config.height);
                job.body = [s](const JobContext& ctx) {
                    return run_system_job(s, ctx);
                };
                break;
            case scen::Kind::kFault:
                job.params["kind"] = "fault";
                job.params["fault"] = sys::fault_info(s.fault).id;
                job.body = [s](const JobContext& ctx) {
                    return run_fault_job(s, ctx);
                };
                break;
        }
        jobs.push_back(std::move(job));
    }
    return jobs;
}

ClosureResult run_closure(const ClosureConfig& cc, const CampaignConfig& rc) {
    ClosureResult res;
    res.merged = cover::make_model();

    // One boot snapshot amortized over every kStream job of the campaign:
    // the stream testbench's elaborate+reset prefix is scenario-independent,
    // so each job forks from the blob instead of re-simulating it.
    std::shared_ptr<const std::string> boot;
    if (cc.warm_start) {
        boot = std::make_shared<const std::string>(
            cc.boot_blob.empty() ? scen::stream_boot_snapshot()
                                 : cc.boot_blob);
    }

    scen::ScenarioConstraints current = cc.base;
    std::size_t prev_hit = 0;
    unsigned stale = 0;

    for (unsigned b = 0; b < cc.max_batches; ++b) {
        const std::vector<scen::Scenario> batch =
            scen::generate_batch(current, cc.seed, b, cc.batch_size);
        CampaignRunner runner(rc);
        CampaignResult cres = runner.run(scenario_jobs(batch, boot));

        for (JobRecord& rec : cres.records) {
            if (rec.report.coverage.same_shape(res.merged)) {
                res.merged += rec.report.coverage;
            }
            res.records.push_back(std::move(rec));
        }
        res.scenarios_run += static_cast<unsigned>(batch.size());

        const std::size_t hit = res.merged.goal_hit();
        res.batches.push_back(BatchSummary{b, hit - prev_hit, hit,
                                           res.merged.percent()});

        if (res.merged.percent() >= cc.target_percent) {
            res.reached_target = true;
            break;
        }
        stale = hit == prev_hit ? stale + 1 : 0;
        prev_hit = hit;
        if (stale >= cc.saturation_batches) {
            res.saturated = true;
            break;
        }
        if (cc.bias) current = scen::bias_towards(cc.base, res.merged);
    }
    return res;
}

}  // namespace autovision::campaign
