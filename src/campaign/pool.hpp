// campaign: bounded work queue and worker pool.
//
// The one concurrency primitive shared by every batch driver in the repo.
// A simulation job is CPU-bound and fully isolated (each owns its
// Scheduler/Testbench), so the pool is a plain bounded MPMC queue drained
// by N threads — no work stealing, no futures. `resolve_workers` is the
// single definition of the "0 = hardware concurrency" convention used by
// the campaign runner, `run_catalog` and the CLI alike.
//
// Header-only and dependency-free (std only) so low-level code such as
// `sys::detection` can use the pool without a link-time cycle against the
// higher-level campaign library (which links against `sys`).
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <optional>
#include <thread>
#include <vector>

namespace autovision::campaign {

/// The repo-wide worker-count convention: 0 means "one worker per hardware
/// thread" (at least one); any other value is taken literally.
[[nodiscard]] inline unsigned resolve_workers(unsigned requested) {
    if (requested != 0) return requested;
    const unsigned hw = std::thread::hardware_concurrency();
    return hw != 0 ? hw : 1u;
}

/// Bounded FIFO queue, multi-producer / multi-consumer. `push` blocks while
/// the queue is full (backpressure: a campaign generator cannot race ahead
/// of the workers by more than `capacity` jobs); `pop` blocks while it is
/// empty. `close` wakes everyone: pending items are still drained, then
/// `pop` returns nullopt and `push` returns false.
template <typename T>
class BoundedQueue {
public:
    explicit BoundedQueue(std::size_t capacity)
        : capacity_(capacity != 0 ? capacity : 1) {}

    [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }

    [[nodiscard]] std::size_t size() const {
        std::lock_guard lk(mu_);
        return items_.size();
    }

    /// Blocking push; returns false iff the queue was closed.
    bool push(T item) {
        std::unique_lock lk(mu_);
        not_full_.wait(lk,
                       [&] { return closed_ || items_.size() < capacity_; });
        if (closed_) return false;
        items_.push_back(std::move(item));
        not_empty_.notify_one();
        return true;
    }

    /// Blocking pop; returns nullopt once the queue is closed and drained.
    std::optional<T> pop() {
        std::unique_lock lk(mu_);
        not_empty_.wait(lk, [&] { return closed_ || !items_.empty(); });
        if (items_.empty()) return std::nullopt;
        T item = std::move(items_.front());
        items_.pop_front();
        not_full_.notify_one();
        return item;
    }

    void close() {
        std::lock_guard lk(mu_);
        closed_ = true;
        not_empty_.notify_all();
        not_full_.notify_all();
    }

private:
    const std::size_t capacity_;
    mutable std::mutex mu_;
    std::condition_variable not_empty_;
    std::condition_variable not_full_;
    std::deque<T> items_;
    bool closed_ = false;
};

/// Fixed-size pool of worker threads draining a bounded task queue.
/// Submission blocks when the queue is full; `drain()` closes the queue and
/// joins the workers (every submitted task still runs).
class WorkerPool {
public:
    explicit WorkerPool(unsigned workers, std::size_t queue_capacity = 64)
        : queue_(queue_capacity) {
        const unsigned n = resolve_workers(workers);
        threads_.reserve(n);
        for (unsigned i = 0; i < n; ++i) {
            threads_.emplace_back([this] {
                while (auto task = queue_.pop()) (*task)();
            });
        }
    }

    WorkerPool(const WorkerPool&) = delete;
    WorkerPool& operator=(const WorkerPool&) = delete;

    ~WorkerPool() { drain(); }

    [[nodiscard]] unsigned workers() const noexcept {
        return static_cast<unsigned>(threads_.size());
    }

    /// Enqueue a task; blocks while the queue is full. Returns false iff
    /// the pool was already drained.
    bool submit(std::function<void()> task) {
        return queue_.push(std::move(task));
    }

    /// Close the queue and join the workers. Idempotent.
    void drain() {
        queue_.close();
        for (auto& t : threads_) {
            if (t.joinable()) t.join();
        }
    }

private:
    BoundedQueue<std::function<void()>> queue_;
    std::vector<std::thread> threads_;
};

}  // namespace autovision::campaign
