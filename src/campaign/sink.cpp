#include "sink.hpp"

#include <cstdio>

namespace autovision::campaign {

namespace {

/// Doubles in JSON: plain printf %g is locale-independent enough for our
/// metric values (no exotic values are produced by the campaigns).
void append_number(std::string& out, double v) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.6g", v);
    out += buf;
}

void append_kv(std::string& out, std::string_view key, std::string_view val,
               bool quote) {
    out += '"';
    out += key;
    out += "\":";
    if (quote) out += '"';
    out += val;
    if (quote) out += '"';
}

double ms(std::chrono::nanoseconds ns) {
    return static_cast<double>(ns.count()) / 1e6;
}

}  // namespace

std::string json_escape(std::string_view s) {
    std::string out;
    out.reserve(s.size());
    for (const char c : s) {
        switch (c) {
            case '"': out += "\\\""; break;
            case '\\': out += "\\\\"; break;
            case '\n': out += "\\n"; break;
            case '\r': out += "\\r"; break;
            case '\t': out += "\\t"; break;
            default:
                if (static_cast<unsigned char>(c) < 0x20) {
                    char buf[8];
                    std::snprintf(buf, sizeof buf, "\\u%04x",
                                  static_cast<unsigned>(
                                      static_cast<unsigned char>(c)));
                    out += buf;
                } else {
                    out += c;
                }
        }
    }
    return out;
}

std::string to_jsonl(const JobRecord& rec) {
    const JobReport& rep = rec.report;
    std::string out;
    out.reserve(512);
    out += '{';
    append_kv(out, "name", json_escape(rec.name), true);
    out += ',';
    append_kv(out, "status", to_string(rec.status), true);
    out += ',';
    append_kv(out, "pass", rec.passed() ? "true" : "false", false);
    out += ',';
    append_kv(out, "attempts", std::to_string(rec.attempts), false);
    out += ',';
    out += "\"wall_ms\":";
    append_number(out, ms(rec.wall));
    out += ',';
    append_kv(out, "verdict", json_escape(rep.verdict), true);
    if (!rec.error.empty()) {
        out += ',';
        append_kv(out, "error", json_escape(rec.error), true);
    }

    out += ",\"params\":{";
    bool first = true;
    for (const auto& [k, v] : rec.params) {
        if (!first) out += ',';
        first = false;
        append_kv(out, json_escape(k), json_escape(v), true);
    }
    out += '}';

    out += ",\"sim_ms\":";
    append_number(out, rtlsim::to_ms(rep.sim_time));
    out += ",\"stats\":{";
    append_kv(out, "timed_events", std::to_string(rep.stats.timed_events),
              false);
    out += ',';
    append_kv(out, "delta_cycles", std::to_string(rep.stats.delta_cycles),
              false);
    out += ',';
    append_kv(out, "proc_invocations",
              std::to_string(rep.stats.proc_invocations), false);
    out += ',';
    append_kv(out, "signal_updates", std::to_string(rep.stats.signal_updates),
              false);
    out += ',';
    append_kv(out, "time_steps", std::to_string(rep.stats.time_steps), false);
    out += '}';

    out += ",\"stages\":{";
    const auto stage = [&](const char* key, rtlsim::Time sim,
                           std::chrono::nanoseconds wall, bool last) {
        out += '"';
        out += key;
        out += "\":{\"sim_ms\":";
        append_number(out, rtlsim::to_ms(sim));
        out += ",\"wall_ms\":";
        append_number(out, ms(wall));
        out += '}';
        if (!last) out += ',';
    };
    stage("cie", rep.stages.cie_sim, rep.stages.cie_wall, false);
    stage("me", rep.stages.me_sim, rep.stages.me_wall, false);
    stage("dpr", rep.stages.dpr_sim, rep.stages.dpr_wall, false);
    stage("cpu", rep.stages.cpu_sim, rep.stages.cpu_wall, true);
    out += '}';

    if (!rep.metrics.empty()) {
        out += ",\"metrics\":{";
        first = true;
        for (const auto& [k, v] : rep.metrics) {
            if (!first) out += ',';
            first = false;
            out += '"';
            out += json_escape(k);
            out += "\":";
            append_number(out, v);
        }
        out += '}';
    }
    out += '}';
    return out;
}

std::string to_verdict_line(const JobRecord& rec) {
    std::string out;
    out.reserve(160);
    out += '{';
    append_kv(out, "index", std::to_string(rec.index), false);
    out += ',';
    append_kv(out, "name", json_escape(rec.name), true);
    out += ',';
    append_kv(out, "status", to_string(rec.status), true);
    out += ',';
    append_kv(out, "verdict", json_escape(rec.report.verdict), true);
    if (!rec.report.metrics.empty()) {
        out += ",\"metrics\":{";
        bool first = true;
        for (const auto& [k, v] : rec.report.metrics) {
            if (!first) out += ',';
            first = false;
            out += '"';
            out += json_escape(k);
            out += "\":";
            append_number(out, v);
        }
        out += '}';
    }
    out += '}';
    return out;
}

JsonlSink::JsonlSink(const std::string& path)
    : path_(path), os_(path, std::ios::out | std::ios::trunc) {}

void JsonlSink::write(const JobRecord& rec) {
    std::string line = to_jsonl(rec);
    line += '\n';
    const std::lock_guard lk(mu_);
    os_.write(line.data(), static_cast<std::streamsize>(line.size()));
    os_.flush();
}

}  // namespace autovision::campaign
