// campaign: the coverage-closure loop.
//
// Generate a batch of constrained-random scenarios -> run them on the
// campaign worker pool -> merge the per-job coverage shards -> re-weight
// the generator toward the bins that are still open -> repeat, until the
// coverage target is reached, the loop saturates (no new bins for N
// consecutive batches), or the batch budget runs out.
//
// The feedback edge is scen::bias_towards; switching it off (`bias =
// false`) turns the loop into the equal-budget pure-random control arm the
// biased run is benchmarked against (the strictly-more-bins closure test).
// Per-scenario seeds depend only on (seed, batch, index), so the two arms
// draw from identical seed streams and differ only in the weight tables.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "cover/model.hpp"
#include "runner.hpp"
#include "scen/scenario.hpp"

namespace autovision::campaign {

struct ClosureConfig {
    scen::ScenarioConstraints base;  ///< batch-0 weight table
    std::uint64_t seed = 1;          ///< campaign seed (everything derives)
    unsigned batch_size = 16;
    unsigned max_batches = 8;
    double target_percent = 95.0;    ///< stop when merged coverage reaches it
    unsigned saturation_batches = 2; ///< stop after N batches with no new bins
    bool bias = true;                ///< false: pure-random control arm
    /// Take one stream-testbench boot snapshot up front and fork every
    /// kStream job from it instead of re-simulating the elaborate+reset
    /// prefix per job. Behaviour-neutral (the restored state is bit-exact,
    /// pinned by the ckpt invariance suite); off = always boot cold.
    bool warm_start = true;
    /// Externally supplied boot snapshot (campaign_runner --ckpt-in).
    /// Empty: warm_start generates one internally. A stale blob is
    /// rejected per job and falls back to a cold boot.
    std::string boot_blob;
};

struct BatchSummary {
    unsigned index = 0;
    std::size_t new_bins = 0;   ///< goal bins first hit by this batch
    std::size_t goal_hit = 0;   ///< cumulative after the batch
    double percent = 0.0;
};

struct ClosureResult {
    cover::Coverage merged;     ///< the model, merged over every job shard
    std::vector<BatchSummary> batches;
    std::vector<JobRecord> records;  ///< all job records, batch order
    bool reached_target = false;
    bool saturated = false;
    unsigned scenarios_run = 0;
};

/// One SimJob per scenario; each job runs its scenario in isolation and
/// returns a coverage shard in JobReport::coverage. `boot` (optional) is a
/// shared stream-testbench boot snapshot; kStream jobs restore from it
/// instead of re-simulating the boot prefix (see ClosureConfig::warm_start).
[[nodiscard]] std::vector<SimJob> scenario_jobs(
    const std::vector<scen::Scenario>& batch,
    std::shared_ptr<const std::string> boot = nullptr);

/// The closure loop, one batch at a time — the stepping form run_closure()
/// wraps and the campaign service resumes across process restarts.
///
/// Everything a batch contributes is deterministic given (config, batch
/// index): scenario seeds depend only on (seed, batch, index), the coverage
/// merge is order-independent, and the bias weights are a pure function of
/// (base constraints, merged coverage). The loop's resumable state is
/// therefore just the merged counters plus a few scalars; save() emits it
/// as a ckpt-section blob and restore() rebuilds the loop mid-campaign,
/// after which the remaining batches produce cover/verdict output
/// byte-identical to an uninterrupted run (pinned by SvcClosureLoop tests
/// and the CI service smoke).
class ClosureLoop {
public:
    explicit ClosureLoop(ClosureConfig cc);

    /// True once the target/saturation/budget stop has been reached.
    [[nodiscard]] bool done() const noexcept;
    /// Generate + run the next batch on a pool configured by `rc`.
    /// Precondition: !done().
    BatchSummary run_batch(const CampaignConfig& rc);

    [[nodiscard]] const cover::Coverage& merged() const noexcept {
        return merged_;
    }
    [[nodiscard]] const std::vector<BatchSummary>& batches() const noexcept {
        return batches_;
    }
    /// Deterministic per-job verdict lines (to_verdict_line) over every
    /// completed batch — including batches completed before a restore,
    /// whose full JobRecords no longer exist.
    [[nodiscard]] const std::vector<std::string>& verdicts() const noexcept {
        return verdicts_;
    }
    [[nodiscard]] unsigned next_batch() const noexcept { return next_batch_; }
    [[nodiscard]] unsigned scenarios_run() const noexcept {
        return scenarios_run_;
    }

    /// Assemble a ClosureResult. `records` holds only the batches run in
    /// this process; after a restore the earlier batches are represented by
    /// verdicts() alone.
    [[nodiscard]] ClosureResult result() const;

    /// Serialize the resumable state (ckpt::Saver blob; manifest pins a
    /// hash of the closure config so a blob cannot resume a different
    /// campaign). Call between batches only.
    [[nodiscard]] bool save(std::ostream& os) const;
    /// Rebuild mid-campaign state from a save() blob. False (with *err set)
    /// on a malformed blob or a config mismatch; the loop is then unusable.
    [[nodiscard]] bool restore(std::istream& is, std::string* err);

private:
    ClosureConfig cc_;
    std::shared_ptr<const std::string> boot_;
    scen::ScenarioConstraints current_;
    cover::Coverage merged_;
    std::vector<BatchSummary> batches_;
    std::vector<JobRecord> records_;
    std::vector<std::string> verdicts_;
    unsigned next_batch_ = 0;
    unsigned scenarios_run_ = 0;
    std::size_t prev_hit_ = 0;
    unsigned stale_ = 0;
    bool reached_target_ = false;
    bool saturated_ = false;
};

/// Identity hash of the parameters that shape a closure campaign; a saved
/// loop blob only restores into a loop built from an identical config.
[[nodiscard]] std::uint64_t closure_config_hash(const ClosureConfig& cc);

/// Run the closure loop to completion. `rc` configures the per-batch
/// worker pool.
[[nodiscard]] ClosureResult run_closure(const ClosureConfig& cc,
                                        const CampaignConfig& rc);

}  // namespace autovision::campaign
