// campaign: the coverage-closure loop.
//
// Generate a batch of constrained-random scenarios -> run them on the
// campaign worker pool -> merge the per-job coverage shards -> re-weight
// the generator toward the bins that are still open -> repeat, until the
// coverage target is reached, the loop saturates (no new bins for N
// consecutive batches), or the batch budget runs out.
//
// The feedback edge is scen::bias_towards; switching it off (`bias =
// false`) turns the loop into the equal-budget pure-random control arm the
// biased run is benchmarked against (the strictly-more-bins closure test).
// Per-scenario seeds depend only on (seed, batch, index), so the two arms
// draw from identical seed streams and differ only in the weight tables.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "cover/model.hpp"
#include "runner.hpp"
#include "scen/scenario.hpp"

namespace autovision::campaign {

struct ClosureConfig {
    scen::ScenarioConstraints base;  ///< batch-0 weight table
    std::uint64_t seed = 1;          ///< campaign seed (everything derives)
    unsigned batch_size = 16;
    unsigned max_batches = 8;
    double target_percent = 95.0;    ///< stop when merged coverage reaches it
    unsigned saturation_batches = 2; ///< stop after N batches with no new bins
    bool bias = true;                ///< false: pure-random control arm
    /// Take one stream-testbench boot snapshot up front and fork every
    /// kStream job from it instead of re-simulating the elaborate+reset
    /// prefix per job. Behaviour-neutral (the restored state is bit-exact,
    /// pinned by the ckpt invariance suite); off = always boot cold.
    bool warm_start = true;
    /// Externally supplied boot snapshot (campaign_runner --ckpt-in).
    /// Empty: warm_start generates one internally. A stale blob is
    /// rejected per job and falls back to a cold boot.
    std::string boot_blob;
};

struct BatchSummary {
    unsigned index = 0;
    std::size_t new_bins = 0;   ///< goal bins first hit by this batch
    std::size_t goal_hit = 0;   ///< cumulative after the batch
    double percent = 0.0;
};

struct ClosureResult {
    cover::Coverage merged;     ///< the model, merged over every job shard
    std::vector<BatchSummary> batches;
    std::vector<JobRecord> records;  ///< all job records, batch order
    bool reached_target = false;
    bool saturated = false;
    unsigned scenarios_run = 0;
};

/// One SimJob per scenario; each job runs its scenario in isolation and
/// returns a coverage shard in JobReport::coverage. `boot` (optional) is a
/// shared stream-testbench boot snapshot; kStream jobs restore from it
/// instead of re-simulating the boot prefix (see ClosureConfig::warm_start).
[[nodiscard]] std::vector<SimJob> scenario_jobs(
    const std::vector<scen::Scenario>& batch,
    std::shared_ptr<const std::string> boot = nullptr);

/// Run the closure loop. `rc` configures the per-batch worker pool.
[[nodiscard]] ClosureResult run_closure(const ClosureConfig& cc,
                                        const CampaignConfig& rc);

}  // namespace autovision::campaign
