// campaign: in-memory aggregate over a campaign's job records.
//
// The cross-job rollup the CLI and benches print: status counts, wall-time
// percentiles (nearest-rank over final attempts), and the summed kernel
// counters — the latter relying on SimStats::operator+= rather than
// hand-rolled field sums.
#pragma once

#include <chrono>
#include <cstddef>
#include <map>
#include <string>
#include <vector>

#include "job.hpp"

namespace autovision::campaign {

struct CampaignSummary {
    std::size_t total = 0;
    std::size_t passed = 0;
    std::size_t failed = 0;
    std::size_t timed_out = 0;
    std::size_t errored = 0;
    std::size_t retried = 0;  ///< jobs needing more than one attempt

    std::chrono::nanoseconds wall_p50{0};
    std::chrono::nanoseconds wall_p95{0};
    std::chrono::nanoseconds wall_max{0};
    std::chrono::nanoseconds wall_total{0};  ///< summed per-job wall time

    rtlsim::SimStats stats;        ///< summed kernel counters
    rtlsim::Time sim_time = 0;     ///< summed simulated time

    /// Cross-job rollup of the reports' named metrics. Keys ending "_max"
    /// take the maximum, keys ending "_mean" the across-job mean of the
    /// per-job means; everything else (counters) is summed.
    std::map<std::string, double> metrics;

    [[nodiscard]] bool all_passed() const noexcept { return passed == total; }

    /// Nearest-rank percentile over the records' final-attempt wall times.
    [[nodiscard]] static std::chrono::nanoseconds percentile(
        std::vector<std::chrono::nanoseconds> sorted_walls, double p);

    [[nodiscard]] static CampaignSummary from(
        const std::vector<JobRecord>& records);

    /// Multi-line human-readable rollup.
    [[nodiscard]] std::string table() const;
};

}  // namespace autovision::campaign
