// campaign: the built-in campaigns — the paper's evaluation expressed as
// job batches.
//
//   * faults    — the Table III fault catalogue: one job per catalogued
//                 bug, each running the system under VM and under ReSim
//                 and checking the detections against the expectation.
//   * nox       — the DESIGN.md 2-state ablation: ReSim with X injection
//                 disabled; bug.dpr.1 (isolation) must escape.
//   * simb      — the Section IV-B SimB length sweep plus the FIFO /
//                 configuration-clock / bus corner matrix.
//   * workload  — a frame-count x geometry grid of clean full-system runs.
//   * seeds     — one clean full-system run per synthetic-scene seed.
//
// Every job body builds its own Testbench/Scheduler on the worker thread
// (job isolation) and honours the JobContext cancel flag.
#pragma once

#include <cstdint>
#include <vector>

#include <string>

#include "diff/diff.hpp"
#include "job.hpp"
#include "sys/detection.hpp"

namespace autovision::campaign {

/// The small paper-scale geometry the quick campaigns default to (identical
/// to the detection harness configuration used by tests and benches).
[[nodiscard]] sys::SystemConfig small_system_config();

/// One job per catalogued fault: VM + ReSim detection vs expectation.
/// Metrics: vm_detected, resim_detected.
[[nodiscard]] std::vector<SimJob> fault_catalog_jobs(
    const sys::SystemConfig& base, unsigned frames = 2);

/// One job per catalogued fault, ReSim only, with the error injector
/// replaced by a 2-state no-op. Expected: detections track plain ReSim
/// except bug.dpr.1, which escapes without X propagation.
/// Metrics: nox_detected.
[[nodiscard]] std::vector<SimJob> resim_no_x_jobs(
    const sys::SystemConfig& base, unsigned frames = 2);

/// SimB payload-length sweep on the minimal DPR testbench (no CPU): the
/// reconfiguration delay must scale with bitstream length and the swap must
/// complete. Metrics: payload_words, total_words, dpr_ms, swap; with
/// `trace`, the obs.* registry (words per SimB, swap latency, ...) as well.
[[nodiscard]] std::vector<SimJob> simb_sweep_jobs(
    const std::vector<std::uint32_t>& payloads, bool trace = false);

/// FIFO depth x configuration clock x bus-attachment corner matrix on the
/// minimal DPR testbench. Pass = the swap outcome matches the corner's
/// expectation (the overflow and bug.dpr.4 corners must NOT swap).
/// Metrics: swap, expect_swap, overflows, dpr_ms (+ obs.* with `trace`).
[[nodiscard]] std::vector<SimJob> simb_corner_jobs(bool trace = false);

/// Full-system clean-run grid: every (geometry, frame count) cell must
/// complete with a clean verdict. `base` supplies everything but the
/// geometry (method, tracing, clock, ...).
struct WorkloadCell {
    unsigned width;
    unsigned height;
    unsigned frames;
};
[[nodiscard]] std::vector<SimJob> workload_grid_jobs(
    const std::vector<WorkloadCell>& grid,
    const sys::SystemConfig& base = small_system_config());

/// Full-system clean run per synthetic-scene seed.
[[nodiscard]] std::vector<SimJob> seed_sweep_jobs(
    const sys::SystemConfig& base, std::uint32_t first_seed,
    std::uint32_t num_seeds, unsigned frames = 1);

/// Differential VM-vs-ReSim oracle batch: one job per seed, each generating
/// a constrained-random stream scenario, running it through both simulation
/// methods (src/diff) and classifying the divergences. Jobs with a genuine
/// divergence shrink it to a minimal reproducer; with `repro_dir` set the
/// reproducer is dumped as <job>.repro.json + <job>.simb.
///
/// Pass semantics: with no injected fault a job passes iff zero genuine
/// divergences survive masking (a genuine one on the clean design is the
/// finding, hence a fail). With an injected fault, a flagged divergence
/// must also shrink (and the reproducer write succeed, when requested) to
/// pass; a scenario that cannot express the fault passes vacuously — the
/// batch-level >=1-genuine expectation is the runner's --expect-genuine.
/// Metrics: sessions, orig_words, genuine, expected, genuine_vm,
/// genuine_resim; plus shrink_runs, shrunk_words, shrink_ratio on
/// divergence.
struct DiffCampaignConfig {
    std::uint64_t seed = 1;
    unsigned count = 20;
    diff::DiffFault inject = diff::DiffFault::kNone;
    std::string repro_dir;  ///< empty: don't write reproducer files
    unsigned min_sessions = 1;
    unsigned max_sessions = 3;
};
[[nodiscard]] std::vector<SimJob> diff_batch_jobs(
    const DiffCampaignConfig& cfg);

}  // namespace autovision::campaign
