// cover: the AutoVision coverage model.
//
// The covergroup/bin taxonomy over the reconfiguration state space the
// paper argues only ReSim exercises (documented in DESIGN.md section 9):
//
//   * simb.seq   — SimB packet-sequence outcomes per configuration session
//                  (Table I orderings plus the malformed variants the ICAP
//                  artifact detects: type-2 without header, truncation, X);
//   * xwin.len   — error-injection (X) window length buckets, in cycles;
//   * xwin.cross — X-window x concurrent bus traffic (DCR reads/writes,
//                  interrupts raised while the window is open);
//   * swap.trans — module-swap transition cross (CIE->ME, ME->CIE, repeated
//                  configuration of the resident engine);
//   * fault.det  — fault x method x detection-outcome cross over the full
//                  kFaultCatalog; cells contradicting the catalogue
//                  expectation are ignore bins (tracked, not goals);
//   * irq.lat    — IRQ-raise-to-service latency buckets, in cycles;
//   * rrm.cross  — region x engine x policy cross over the time-shared
//                  virtualization pool (regions 2+ fold into the r2p axis
//                  slot, matching the obs per-region rollup);
//   * rrm.arb    — ICAP-arbitration outcomes: grant mode x contention, plus
//                  the Virtual Multiplexing swap path;
//   * sw.iss     — syscall-layer outcomes from the ISS (v3): one goal bin
//                  per host-IO service (exit/putchar/clock/yield) plus the
//                  surprise bins — a trap at ISR depth (bug.sw.5's symptom)
//                  and an unknown call number (ENOSYS) — which are tracked
//                  but excluded from the goal.
//
// `make_model()` builds the fixed shape; the observers fill it from an obs
// event stream (one simulation run), from a detection outcome, or from a
// multi-region harness run (observe_rrm). Every consumer of the model —
// jobs, the closure loop, the CI gate — must build the same shape, so
// merges stay well-defined; bump kModelVersion when the taxonomy changes
// and re-baseline the CI gate.
#pragma once

#include <vector>

#include "coverage.hpp"
#include "kernel/sim_time.hpp"
#include "obs/event.hpp"
#include "rrm/rrm_harness.hpp"
#include "sys/faults.hpp"

namespace autovision::cover {

// v3: sw.iss group (syscall layer) + fault.det grown to the 14-entry
// catalogue (bug.sw.3/4/5).
inline constexpr int kModelVersion = 3;

/// The fixed covergroup/bin skeleton (all hits zero).
[[nodiscard]] Coverage make_model();

/// Fold one run's chronological event stream into the model. `clk_period`
/// (ps) converts time spans to cycles; 0 falls back to raw picoseconds.
void observe_events(Coverage& cov, const std::vector<obs::Event>& events,
                    rtlsim::Time clk_period);

/// Which simulation method produced a detection verdict.
enum class DetectMethod { kVm, kResim };

/// Fold one fault-run verdict into the fault.det cross.
void observe_detection(Coverage& cov, sys::Fault fault, DetectMethod method,
                       bool detected);

/// Fold one multi-region harness run into the rrm.* groups. The region x
/// engine pairs come from the result's region-tagged kRegionJob events;
/// the policy and arbitration axes come from the config the run executed.
void observe_rrm(Coverage& cov, const rrm::RrmConfig& cfg,
                 const rrm::RrmResult& result);

}  // namespace autovision::cover
