#include "model.hpp"

namespace autovision::cover {

namespace {

// Module ids in the SimB FAR address space (address_map.hpp: kModuleCie/Me).
constexpr std::uint32_t kModCie = 1;
constexpr std::uint32_t kModMe = 2;

const char* fault_bin_suffix(DetectMethod m, bool detected) {
    if (m == DetectMethod::kVm) {
        return detected ? ".vm.detected" : ".vm.passed";
    }
    return detected ? ".resim.detected" : ".resim.passed";
}

/// Is (method, detected) the outcome the catalogue expects for this fault?
bool expected_outcome(const sys::FaultInfo& fi, DetectMethod m,
                      bool detected) {
    switch (fi.expected) {
        case sys::ExpectedDetection::kBoth:
            return detected;
        case sys::ExpectedDetection::kResimOnly:
            return m == DetectMethod::kVm ? !detected : detected;
        case sys::ExpectedDetection::kVmFalseAlarm:
            return m == DetectMethod::kVm ? detected : !detected;
    }
    return false;
}

const char* xwin_len_bin(double cycles) {
    if (cycles <= 16.0) return "le16";
    if (cycles <= 128.0) return "17_128";
    if (cycles <= 1024.0) return "129_1k";
    if (cycles <= 8192.0) return "1k_8k";
    return "gt8k";
}

const char* payload_len_bin(std::uint32_t words) {
    if (words <= 8) return "payload_short";
    if (words <= 1024) return "payload_medium";
    return "payload_long";
}

const char* irq_lat_bin(double cycles) {
    if (cycles <= 8.0) return "le8";
    if (cycles <= 32.0) return "9_32";
    if (cycles <= 128.0) return "33_128";
    if (cycles <= 512.0) return "129_512";
    return "gt512";
}

// The rrm.cross axes. Region indices 2+ share one slot ("r2p"): the pool
// is capped at obs::kMaxRegions and the high regions are configured
// identically, so splitting them would only add bins that duplicate r2's
// reachability.
constexpr const char* kRegionAxis[] = {"r0", "r1", "r2p"};

const char* region_axis_bin(std::uint32_t region) {
    return kRegionAxis[region >= 2 ? 2 : region];
}

const char* engine_axis_bin(rrm::EngineKind k) {
    switch (k) {
        case rrm::EngineKind::kCensus: return "census";
        case rrm::EngineKind::kMatching: return "matching";
        case rrm::EngineKind::kSobel: return "sobel";
        case rrm::EngineKind::kFlow: return "flow";
        default: return nullptr;
    }
}

const char* policy_axis_bin(rrm::Policy p) {
    switch (p) {
        case rrm::Policy::kRoundRobin: return "rr";
        case rrm::Policy::kDeadline: return "deadline";
        case rrm::Policy::kDemand: return "demand";
    }
    return "rr";
}

}  // namespace

Coverage make_model() {
    Coverage cov;

    Covergroup& seq = cov.add_group("simb.seq");
    seq.add_bin("canonical");
    seq.add_bin("type1_header");
    seq.add_bin("type2_header");
    seq.add_bin("zero_payload");
    seq.add_bin("fdri_before_far");
    seq.add_bin("capture");
    seq.add_bin("restore");
    seq.add_bin("header_only");
    seq.add_bin("multi_session");
    seq.add_bin("payload_short");
    seq.add_bin("payload_medium");
    seq.add_bin("payload_long");
    seq.add_bin("malformed.type2_no_header");
    seq.add_bin("malformed.truncated");
    seq.add_bin("malformed.x_on_icap");
    seq.add_bin("abort");

    Covergroup& xlen = cov.add_group("xwin.len");
    xlen.add_bin("le16");
    xlen.add_bin("17_128");
    xlen.add_bin("129_1k");
    xlen.add_bin("1k_8k");
    xlen.add_bin("gt8k");

    Covergroup& xcross = cov.add_group("xwin.cross");
    xcross.add_bin("quiet");
    xcross.add_bin("dcr_read");
    xcross.add_bin("dcr_write");
    xcross.add_bin("irq");

    Covergroup& trans = cov.add_group("swap.trans");
    trans.add_bin("first_cie");
    trans.add_bin("first_me");
    trans.add_bin("cie_to_me");
    trans.add_bin("me_to_cie");
    trans.add_bin("cie_to_cie");
    trans.add_bin("me_to_me");

    Covergroup& det = cov.add_group("fault.det");
    for (const sys::FaultInfo& fi : sys::kFaultCatalog) {
        for (const DetectMethod m : {DetectMethod::kVm, DetectMethod::kResim}) {
            for (const bool detected : {true, false}) {
                det.add_bin(std::string(fi.id) +
                                fault_bin_suffix(m, detected),
                            /*ignore=*/!expected_outcome(fi, m, detected));
            }
        }
    }

    // The two fastest buckets are below the ISS's minimum ISR round-trip
    // (vector fetch + DCR status read alone exceed 32 cycles): they are
    // surprise bins — tracked, excluded from the goal, and a hit means the
    // interrupt path took a shortcut that needs investigating.
    Covergroup& irq = cov.add_group("irq.lat");
    irq.add_bin("le8", /*ignore=*/true);
    irq.add_bin("9_32", /*ignore=*/true);
    irq.add_bin("33_128");
    irq.add_bin("129_512");
    irq.add_bin("gt512");

    // Region x engine x policy over the virtualization pool. Every cell is
    // reachable: the harness's job mix rotates the engine library with a
    // per-region phase, so jobs_per_region = 4 visits all four engines in
    // any region, and the policy axis is a per-scenario knob.
    Covergroup& rrm = cov.add_group("rrm.cross");
    for (const char* r : kRegionAxis) {
        for (const rrm::EngineKind e :
             {rrm::EngineKind::kCensus, rrm::EngineKind::kMatching,
              rrm::EngineKind::kSobel, rrm::EngineKind::kFlow}) {
            for (const rrm::Policy p :
                 {rrm::Policy::kRoundRobin, rrm::Policy::kDeadline,
                  rrm::Policy::kDemand}) {
                rrm.add_bin(std::string(r) + "." + engine_axis_bin(e) + "." +
                            policy_axis_bin(p));
            }
        }
    }

    Covergroup& arb = cov.add_group("rrm.arb");
    arb.add_bin("fair.uncontended");
    arb.add_bin("fair.contended");
    arb.add_bin("priority.uncontended");
    arb.add_bin("priority.contended");
    arb.add_bin("vm_swap");

    // Syscall layer (v3). One goal bin per host-IO service; a trap at ISR
    // depth and an unknown call number are surprise bins — reachable only
    // through the catalogued software bugs (bug.sw.5) or firmware
    // corruption, so they are tracked but never part of the goal.
    Covergroup& sw = cov.add_group("sw.iss");
    sw.add_bin("syscall.exit");
    sw.add_bin("syscall.putchar");
    sw.add_bin("syscall.clock");
    sw.add_bin("syscall.yield");
    sw.add_bin("syscall.in_isr", /*ignore=*/true);
    sw.add_bin("syscall.unknown", /*ignore=*/true);

    return cov;
}

void observe_events(Coverage& cov, const std::vector<obs::Event>& events,
                    rtlsim::Time clk_period) {
    using obs::EventKind;
    Covergroup* seq = cov.find("simb.seq");
    Covergroup* xlen = cov.find("xwin.len");
    Covergroup* xcross = cov.find("xwin.cross");
    Covergroup* trans = cov.find("swap.trans");
    Covergroup* irq = cov.find("irq.lat");
    Covergroup* sw = cov.find("sw.iss");
    if (seq == nullptr || xlen == nullptr || xcross == nullptr ||
        trans == nullptr || irq == nullptr || sw == nullptr) {
        return;  // not the AutoVision model shape
    }

    const double period =
        clk_period == 0 ? 1.0 : static_cast<double>(clk_period);
    const auto cycles = [period](rtlsim::Time span) {
        return static_cast<double>(span) / period;
    };

    // Per-session parser mirror (sessions never nest: the stream is the
    // single ICAP artifact's chronological view).
    bool session_open = false;
    bool far_seen = false;
    bool payload_done = false;
    bool malformed_in_session = false;
    bool capture_in_session = false;
    bool restore_in_session = false;
    bool header_in_session = false;
    std::uint64_t desyncs = 0;

    // X-window interval + what overlapped it.
    bool xw_open = false;
    rtlsim::Time xw_start = 0;
    bool xw_dcr_read = false;
    bool xw_dcr_write = false;
    bool xw_irq = false;

    // Swap transition tracking (module ids from the FAR address space).
    std::uint32_t prev_module = 0;  // 0 = no swap seen yet

    bool irq_open = false;
    rtlsim::Time irq_start = 0;

    for (const obs::Event& e : events) {
        switch (e.kind) {
            case EventKind::kSync:
                session_open = true;
                far_seen = false;
                payload_done = false;
                malformed_in_session = false;
                capture_in_session = false;
                restore_in_session = false;
                header_in_session = false;
                break;

            case EventKind::kDesync:
                if (session_open) {
                    if (payload_done && far_seen && !malformed_in_session) {
                        seq->hit("canonical");
                    }
                    if (!header_in_session && !capture_in_session &&
                        !restore_in_session) {
                        seq->hit("header_only");
                    }
                }
                session_open = false;
                ++desyncs;
                if (desyncs == 2) seq->hit("multi_session");
                break;

            case EventKind::kFarWrite:
                far_seen = true;
                break;

            case EventKind::kFdriHeader:
                header_in_session = true;
                if (!far_seen) seq->hit("fdri_before_far");
                if (e.a == 0) seq->hit("zero_payload");
                seq->hit(e.b != 0 ? "type2_header" : "type1_header");
                break;

            case EventKind::kPayloadEnd:
                payload_done = true;
                seq->hit(payload_len_bin(e.a));
                break;

            case EventKind::kMalformed:
                malformed_in_session = true;
                switch (static_cast<obs::MalformedCode>(e.a)) {
                    case obs::MalformedCode::kType2WithoutFdriHeader:
                        seq->hit("malformed.type2_no_header");
                        break;
                    case obs::MalformedCode::kTruncatedPayload:
                        seq->hit("malformed.truncated");
                        break;
                    case obs::MalformedCode::kXOnIcap:
                        seq->hit("malformed.x_on_icap");
                        break;
                    case obs::MalformedCode::kOther:
                        break;
                }
                break;

            case EventKind::kCapture:
                capture_in_session = true;
                seq->hit("capture");
                break;

            case EventKind::kRestore:
                restore_in_session = true;
                seq->hit("restore");
                break;

            case EventKind::kAbort:
                malformed_in_session = true;
                seq->hit("abort");
                break;

            case EventKind::kSwap: {
                const std::uint32_t mod = static_cast<std::uint32_t>(e.b);
                if (prev_module == 0) {
                    if (mod == kModCie) trans->hit("first_cie");
                    if (mod == kModMe) trans->hit("first_me");
                } else if (prev_module == kModCie && mod == kModMe) {
                    trans->hit("cie_to_me");
                } else if (prev_module == kModMe && mod == kModCie) {
                    trans->hit("me_to_cie");
                } else if (prev_module == kModCie && mod == kModCie) {
                    trans->hit("cie_to_cie");
                } else if (prev_module == kModMe && mod == kModMe) {
                    trans->hit("me_to_me");
                }
                if (mod == kModCie || mod == kModMe) prev_module = mod;
                break;
            }

            case EventKind::kXWindowBegin:
                xw_open = true;
                xw_start = e.time;
                xw_dcr_read = false;
                xw_dcr_write = false;
                xw_irq = false;
                break;

            case EventKind::kXWindowEnd:
                if (xw_open) {
                    xw_open = false;
                    xlen->hit(xwin_len_bin(cycles(e.time - xw_start)));
                    if (!xw_dcr_read && !xw_dcr_write && !xw_irq) {
                        xcross->hit("quiet");
                    }
                    if (xw_dcr_read) xcross->hit("dcr_read");
                    if (xw_dcr_write) xcross->hit("dcr_write");
                    if (xw_irq) xcross->hit("irq");
                }
                break;

            case EventKind::kDcrRead:
                if (xw_open) xw_dcr_read = true;
                break;

            case EventKind::kDcrWrite:
                if (xw_open) xw_dcr_write = true;
                break;

            case EventKind::kIrqRaise:
                if (xw_open) xw_irq = true;
                if (!irq_open) {
                    irq_open = true;
                    irq_start = e.time;
                }
                break;

            case EventKind::kIrqAck:
                if (irq_open) {
                    irq_open = false;
                    irq->hit(irq_lat_bin(cycles(e.time - irq_start)));
                }
                break;

            case EventKind::kSyscall:
                switch (e.a) {
                    case 0: sw->hit("syscall.exit"); break;
                    case 1: sw->hit("syscall.putchar"); break;
                    case 2: sw->hit("syscall.clock"); break;
                    case 3: sw->hit("syscall.yield"); break;
                    default: sw->hit("syscall.unknown"); break;
                }
                if (e.region != 0) sw->hit("syscall.in_isr");
                break;

            default:
                break;
        }
    }
}

void observe_detection(Coverage& cov, sys::Fault fault, DetectMethod method,
                       bool detected) {
    Covergroup* det = cov.find("fault.det");
    if (det == nullptr) return;
    const sys::FaultInfo& fi = sys::fault_info(fault);
    det->hit(std::string(fi.id) + fault_bin_suffix(method, detected));
}

void observe_rrm(Coverage& cov, const rrm::RrmConfig& cfg,
                 const rrm::RrmResult& result) {
    Covergroup* cross = cov.find("rrm.cross");
    Covergroup* arb = cov.find("rrm.arb");
    if (cross == nullptr || arb == nullptr) return;

    const char* policy = policy_axis_bin(cfg.policy);
    for (const obs::Event& e : result.events) {
        if (e.kind != obs::EventKind::kRegionJob) continue;
        const char* engine =
            engine_axis_bin(static_cast<rrm::EngineKind>(e.a));
        if (engine == nullptr) continue;
        cross->hit(std::string(region_axis_bin(e.region)) + "." + engine +
                   "." + policy);
    }

    if (cfg.vm_mode) {
        // Virtual Multiplexing bypasses the ICAP entirely — the swap path
        // itself is the interesting outcome.
        std::uint64_t sessions = 0;
        for (const std::uint32_t s : result.sessions) sessions += s;
        if (sessions > 0) arb->hit("vm_swap");
        return;
    }
    bool contended = false;
    for (const std::uint64_t w : result.arb_max_wait) {
        contended = contended || w > 0;
    }
    const bool fair = cfg.grant == rrm::IcapArbiter::Grant::kFair;
    arb->hit(std::string(fair ? "fair" : "priority") +
             (contended ? ".contended" : ".uncontended"));
}

}  // namespace autovision::cover
