// cover: functional-coverage machinery.
//
// SystemVerilog-style covergroups reduced to what a closure loop actually
// needs: named groups of named bins with hit counters, a deterministic
// merge, and report exporters. The shape of a coverage object (group order,
// bin order, names, ignore flags) is fixed at construction by the model
// (model.hpp); merging requires identical shapes and is a plain elementwise
// addition — commutative and associative by construction, so a campaign can
// merge per-job shards in any order (worker completion order included) and
// always land on the same totals. A unit test pins that property.
//
// Bins carry an `ignore` flag for combinations that are tracked but
// excluded from the percent denominator — e.g. a fault x method x outcome
// cell that contradicts the catalogue expectation. Hitting an ignored bin
// is a finding, not progress.
#pragma once

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

#include "kernel/snapshot.hpp"

namespace autovision::cover {

struct Bin {
    std::string name;
    std::uint64_t hits = 0;
    bool ignore = false;  ///< excluded from the goal denominator
};

/// One covergroup: an ordered, fixed set of bins.
class Covergroup {
public:
    explicit Covergroup(std::string name) : name_(std::move(name)) {}

    [[nodiscard]] const std::string& name() const noexcept { return name_; }
    [[nodiscard]] const std::vector<Bin>& bins() const noexcept {
        return bins_;
    }

    /// Append a bin; returns its index. Shapes are built once, up front.
    std::size_t add_bin(std::string name, bool ignore = false);

    void hit(std::size_t index, std::uint64_t n = 1);
    /// Name-addressed hit; returns false (and records nothing) when the bin
    /// does not exist — observers may be newer than the model they fill.
    bool hit(std::string_view bin_name, std::uint64_t n = 1);

    [[nodiscard]] const Bin* find(std::string_view bin_name) const;
    [[nodiscard]] std::uint64_t hits(std::string_view bin_name) const;

    /// Goal bins are the non-ignored ones.
    [[nodiscard]] std::size_t goal_bins() const noexcept;
    [[nodiscard]] std::size_t goal_hit() const noexcept;

    /// Elementwise hit addition. Throws std::invalid_argument when the
    /// shapes (name, bin names/order/ignore flags) differ.
    Covergroup& operator+=(const Covergroup& o);
    [[nodiscard]] bool same_shape(const Covergroup& o) const noexcept;
    [[nodiscard]] bool operator==(const Covergroup& o) const noexcept;

    /// Serialize only the hit counters (bin count + one u64 per bin); the
    /// shape itself is pinned by the model builder, not the blob.
    void save_hits(rtlsim::SnapWriter& w) const;
    /// Overwrite this group's counters from a save_hits() image; false when
    /// the serialized bin count does not match this group's shape.
    [[nodiscard]] bool restore_hits(rtlsim::SnapReader& r);

private:
    std::string name_;
    std::vector<Bin> bins_;
};

/// A full coverage model instance: ordered covergroups.
class Coverage {
public:
    Covergroup& add_group(std::string name);

    [[nodiscard]] const std::vector<Covergroup>& groups() const noexcept {
        return groups_;
    }
    [[nodiscard]] Covergroup* find(std::string_view group_name);
    [[nodiscard]] const Covergroup* find(std::string_view group_name) const;

    [[nodiscard]] std::size_t goal_bins() const noexcept;
    [[nodiscard]] std::size_t goal_hit() const noexcept;
    /// Percent of goal bins hit (100 when the model is empty).
    [[nodiscard]] double percent() const noexcept;

    /// "group/bin" names of every unhit goal bin, in model order.
    [[nodiscard]] std::vector<std::string> unhit() const;
    /// Convenience: hits of "group/bin" (0 when absent).
    [[nodiscard]] std::uint64_t hits(std::string_view group,
                                     std::string_view bin) const;

    /// Deterministic merge (see header comment). Throws on shape mismatch.
    Coverage& operator+=(const Coverage& o);
    [[nodiscard]] bool same_shape(const Coverage& o) const noexcept;
    [[nodiscard]] bool operator==(const Coverage& o) const noexcept;

    /// Stable JSON report: {"goal_bins":..,"goal_hit":..,"percent":..,
    /// "groups":[{"name":..,"bins":[{"name":..,"hits":..,"ignore":..}]}]}.
    /// Key order and bin order are model order, so identical coverage
    /// serialises byte-identically (the determinism tests compare strings).
    void write_json(std::ostream& os) const;
    /// Human-readable table (one line per group + unhit bin list).
    void write_text(std::ostream& os) const;

    /// Counters-only serialization for resumable campaigns: u32 group
    /// count, then each group's save_hits image. Restore requires a model
    /// of identical shape (restore into a fresh make_model() instance) and
    /// overwrites its counters; false on any shape mismatch.
    void save_hits(rtlsim::SnapWriter& w) const;
    [[nodiscard]] bool restore_hits(rtlsim::SnapReader& r);

private:
    std::vector<Covergroup> groups_;
};

}  // namespace autovision::cover
