#include "coverage.hpp"

#include <ostream>
#include <stdexcept>

namespace autovision::cover {

// ---------------------------------------------------------------------------
// Covergroup
// ---------------------------------------------------------------------------

std::size_t Covergroup::add_bin(std::string name, bool ignore) {
    Bin b;
    b.name = std::move(name);
    b.ignore = ignore;
    bins_.push_back(std::move(b));
    return bins_.size() - 1;
}

void Covergroup::hit(std::size_t index, std::uint64_t n) {
    bins_.at(index).hits += n;
}

bool Covergroup::hit(std::string_view bin_name, std::uint64_t n) {
    for (Bin& b : bins_) {
        if (b.name == bin_name) {
            b.hits += n;
            return true;
        }
    }
    return false;
}

const Bin* Covergroup::find(std::string_view bin_name) const {
    for (const Bin& b : bins_) {
        if (b.name == bin_name) return &b;
    }
    return nullptr;
}

std::uint64_t Covergroup::hits(std::string_view bin_name) const {
    const Bin* b = find(bin_name);
    return b != nullptr ? b->hits : 0;
}

std::size_t Covergroup::goal_bins() const noexcept {
    std::size_t n = 0;
    for (const Bin& b : bins_) {
        if (!b.ignore) ++n;
    }
    return n;
}

std::size_t Covergroup::goal_hit() const noexcept {
    std::size_t n = 0;
    for (const Bin& b : bins_) {
        if (!b.ignore && b.hits != 0) ++n;
    }
    return n;
}

bool Covergroup::same_shape(const Covergroup& o) const noexcept {
    if (name_ != o.name_ || bins_.size() != o.bins_.size()) return false;
    for (std::size_t i = 0; i < bins_.size(); ++i) {
        if (bins_[i].name != o.bins_[i].name ||
            bins_[i].ignore != o.bins_[i].ignore) {
            return false;
        }
    }
    return true;
}

Covergroup& Covergroup::operator+=(const Covergroup& o) {
    if (!same_shape(o)) {
        throw std::invalid_argument("coverage merge: covergroup '" + name_ +
                                    "' shape mismatch");
    }
    for (std::size_t i = 0; i < bins_.size(); ++i) {
        bins_[i].hits += o.bins_[i].hits;
    }
    return *this;
}

void Covergroup::save_hits(rtlsim::SnapWriter& w) const {
    w.u32(static_cast<std::uint32_t>(bins_.size()));
    for (const Bin& b : bins_) w.u64(b.hits);
}

bool Covergroup::restore_hits(rtlsim::SnapReader& r) {
    if (r.u32() != bins_.size()) return false;
    for (Bin& b : bins_) b.hits = r.u64();
    return r.ok_so_far();
}

bool Covergroup::operator==(const Covergroup& o) const noexcept {
    if (!same_shape(o)) return false;
    for (std::size_t i = 0; i < bins_.size(); ++i) {
        if (bins_[i].hits != o.bins_[i].hits) return false;
    }
    return true;
}

// ---------------------------------------------------------------------------
// Coverage
// ---------------------------------------------------------------------------

Covergroup& Coverage::add_group(std::string name) {
    groups_.emplace_back(std::move(name));
    return groups_.back();
}

Covergroup* Coverage::find(std::string_view group_name) {
    for (Covergroup& g : groups_) {
        if (g.name() == group_name) return &g;
    }
    return nullptr;
}

const Covergroup* Coverage::find(std::string_view group_name) const {
    for (const Covergroup& g : groups_) {
        if (g.name() == group_name) return &g;
    }
    return nullptr;
}

std::size_t Coverage::goal_bins() const noexcept {
    std::size_t n = 0;
    for (const Covergroup& g : groups_) n += g.goal_bins();
    return n;
}

std::size_t Coverage::goal_hit() const noexcept {
    std::size_t n = 0;
    for (const Covergroup& g : groups_) n += g.goal_hit();
    return n;
}

double Coverage::percent() const noexcept {
    const std::size_t goal = goal_bins();
    if (goal == 0) return 100.0;
    return 100.0 * static_cast<double>(goal_hit()) /
           static_cast<double>(goal);
}

std::vector<std::string> Coverage::unhit() const {
    std::vector<std::string> out;
    for (const Covergroup& g : groups_) {
        for (const Bin& b : g.bins()) {
            if (!b.ignore && b.hits == 0) out.push_back(g.name() + "/" + b.name);
        }
    }
    return out;
}

std::uint64_t Coverage::hits(std::string_view group,
                             std::string_view bin) const {
    const Covergroup* g = find(group);
    return g != nullptr ? g->hits(bin) : 0;
}

bool Coverage::same_shape(const Coverage& o) const noexcept {
    if (groups_.size() != o.groups_.size()) return false;
    for (std::size_t i = 0; i < groups_.size(); ++i) {
        if (!groups_[i].same_shape(o.groups_[i])) return false;
    }
    return true;
}

Coverage& Coverage::operator+=(const Coverage& o) {
    if (!same_shape(o)) {
        throw std::invalid_argument("coverage merge: model shape mismatch");
    }
    for (std::size_t i = 0; i < groups_.size(); ++i) {
        groups_[i] += o.groups_[i];
    }
    return *this;
}

bool Coverage::operator==(const Coverage& o) const noexcept {
    if (groups_.size() != o.groups_.size()) return false;
    for (std::size_t i = 0; i < groups_.size(); ++i) {
        if (!(groups_[i] == o.groups_[i])) return false;
    }
    return true;
}

void Coverage::save_hits(rtlsim::SnapWriter& w) const {
    w.u32(static_cast<std::uint32_t>(groups_.size()));
    for (const Covergroup& g : groups_) g.save_hits(w);
}

bool Coverage::restore_hits(rtlsim::SnapReader& r) {
    if (r.u32() != groups_.size()) return false;
    for (Covergroup& g : groups_) {
        if (!g.restore_hits(r)) return false;
    }
    return true;
}

namespace {

void json_string(std::ostream& os, const std::string& s) {
    os << '"';
    for (const char c : s) {
        switch (c) {
            case '"': os << "\\\""; break;
            case '\\': os << "\\\\"; break;
            case '\n': os << "\\n"; break;
            default: os << c; break;
        }
    }
    os << '"';
}

}  // namespace

void Coverage::write_json(std::ostream& os) const {
    os << "{\"goal_bins\":" << goal_bins() << ",\"goal_hit\":" << goal_hit()
       << ",\"percent\":" << percent() << ",\"groups\":[";
    bool first_g = true;
    for (const Covergroup& g : groups_) {
        if (!first_g) os << ',';
        first_g = false;
        os << "{\"name\":";
        json_string(os, g.name());
        os << ",\"bins\":[";
        bool first_b = true;
        for (const Bin& b : g.bins()) {
            if (!first_b) os << ',';
            first_b = false;
            os << "{\"name\":";
            json_string(os, b.name);
            os << ",\"hits\":" << b.hits;
            if (b.ignore) os << ",\"ignore\":true";
            os << '}';
        }
        os << "]}";
    }
    os << "]}";
}

void Coverage::write_text(std::ostream& os) const {
    os << "functional coverage: " << goal_hit() << "/" << goal_bins()
       << " goal bins (" << percent() << "%)\n";
    for (const Covergroup& g : groups_) {
        os << "  " << g.name() << ": " << g.goal_hit() << "/"
           << g.goal_bins() << "\n";
        for (const Bin& b : g.bins()) {
            if (!b.ignore && b.hits == 0) {
                os << "    UNHIT " << b.name << "\n";
            } else if (b.ignore && b.hits != 0) {
                os << "    !! unexpected bin hit: " << b.name << " ("
                   << b.hits << ")\n";
            }
        }
    }
}

}  // namespace autovision::cover
