// Fault catalogue — the injectable bugs of the case study (Table III and
// the Section V-A counts).
//
// Each fault reproduces one of the paper's reported bugs (or a
// representative of its class). The detection harness enables one fault at
// a time, runs the full system under Virtual Multiplexing and under
// ReSim-based simulation, and classifies the outcome; Table III's
// "Comments" column becomes the `expected` field here.
#pragma once

#include <array>
#include <cstdint>
#include <string>

namespace autovision::sys {

enum class Fault {
    kNone,
    // Static-design bugs (weeks 4-9 of Figure 5; found by both methods).
    kHw1SrcWordAddr,     ///< driver programs the CIE source as a word address
    kHw2NoSigInit,       ///< engine_signature never initialised (VM-only artefact)
    kHw3LevelIntc,       ///< INTC configured for level capture; done pulses lost
    kSw1PollWrongBit,    ///< DPR driver polls ICAP busy instead of done
    kSw2NoIntcAck,       ///< ISR never acknowledges the INTC (interrupt storm)
    // ISS-layer software bugs (the decode-cache / syscall bug classes).
    kSw3StaleCodePatch,  ///< ISR patches the draw loop in place (self-mod code)
    kSw4EeStuckOff,      ///< firmware never sets MSR[EE]; no interrupt ever taken
    kSw5SyscallInIsr,    ///< `sc` inside the ISR clobbers SRR0/SRR1
    // DPR bugs (weeks 10-11; only ReSim exercises the machinery).
    kDpr1NoIsolation,    ///< driver never enables isolation during DPR
    kDpr2RegsInsideRr,   ///< engine DCR registers left inside the RR
    kDpr3WrongSimbAddr,  ///< bitstream pointer names the wrong SimB
    kDpr4P2pIcap,        ///< point-to-point IcapCTRL on the shared PLB
    kDpr5SizeInWords,    ///< driver writes a word count to the byte-count IP
    kDpr6bShortWait,     ///< fixed reset delay tuned for the old config clock
    kCount,
};

/// Which simulation method is expected to flag the fault.
enum class ExpectedDetection {
    kBoth,        ///< static bug: visible under either method
    kResimOnly,   ///< requires the bitstream/isolation machinery
    kVmFalseAlarm,  ///< artefact of the VM testbench itself; N/A under ReSim
};

struct FaultInfo {
    Fault fault;
    const char* id;           ///< paper-style identifier
    const char* description;
    ExpectedDetection expected;
};

inline constexpr std::array<FaultInfo, 14> kFaultCatalog{{
    {Fault::kHw1SrcWordAddr, "bug.hw.1",
     "CIE source address programmed as a word index (byte/word mismatch)",
     ExpectedDetection::kBoth},
    {Fault::kHw2NoSigInit, "bug.hw.2",
     "engine_signature register not initialised at start-up",
     ExpectedDetection::kVmFalseAlarm},
    {Fault::kHw3LevelIntc, "bug.hw.3",
     "INTC misconfigured for level capture; one-cycle done pulses lost",
     ExpectedDetection::kBoth},
    {Fault::kSw1PollWrongBit, "bug.sw.1",
     "DPR driver polls the ICAP busy bit instead of the done bit",
     ExpectedDetection::kResimOnly},
    {Fault::kSw2NoIntcAck, "bug.sw.2",
     "ISR fails to acknowledge the interrupt controller",
     ExpectedDetection::kBoth},
    {Fault::kSw3StaleCodePatch, "bug.sw.3",
     "ISR patches the draw loop in place; stale threshold corrupts frames",
     ExpectedDetection::kBoth},
    {Fault::kSw4EeStuckOff, "bug.sw.4",
     "firmware never sets MSR[EE]; interrupt-driven flow stalls",
     ExpectedDetection::kBoth},
    {Fault::kSw5SyscallInIsr, "bug.sw.5",
     "`sc` inside the ISR clobbers SRR0/SRR1; rfi returns into the ISR",
     ExpectedDetection::kBoth},
    {Fault::kDpr1NoIsolation, "bug.dpr.1",
     "isolation never enabled; X escapes the region during DPR",
     ExpectedDetection::kResimOnly},
    {Fault::kDpr2RegsInsideRr, "bug.dpr.2",
     "engine DCR registers left inside the RR; daisy chain breaks",
     ExpectedDetection::kResimOnly},
    {Fault::kDpr3WrongSimbAddr, "bug.dpr.3",
     "bitstream pointer names the wrong SimB",
     ExpectedDetection::kResimOnly},
    {Fault::kDpr4P2pIcap, "bug.dpr.4",
     "IcapCTRL in point-to-point mode on the shared PLB",
     ExpectedDetection::kResimOnly},
    {Fault::kDpr5SizeInWords, "bug.dpr.5",
     "driver computes the bitstream size in words for the byte-count IP",
     ExpectedDetection::kResimOnly},
    {Fault::kDpr6bShortWait, "bug.dpr.6b",
     "engine reset delay tuned for the faster original configuration clock",
     ExpectedDetection::kResimOnly},
}};

// --- catalogue completeness, checked at compile time -----------------------
// The array literal above must stay in sync with the Fault enum by hand;
// these static_asserts turn a forgotten or duplicated entry into a compile
// error instead of a silently un-tested fault.
namespace detail {

constexpr bool cstr_eq(const char* a, const char* b) {
    for (; *a != '\0' && *b != '\0'; ++a, ++b) {
        if (*a != *b) return false;
    }
    return *a == *b;
}

/// Every injectable Fault enumerator (all but kNone/kCount) appears in the
/// catalogue exactly once, and kNone never does.
constexpr bool catalog_covers_every_fault_once() {
    for (int f = static_cast<int>(Fault::kNone) + 1;
         f < static_cast<int>(Fault::kCount); ++f) {
        int seen = 0;
        for (const FaultInfo& fi : kFaultCatalog) {
            if (fi.fault == static_cast<Fault>(f)) ++seen;
        }
        if (seen != 1) return false;
    }
    for (const FaultInfo& fi : kFaultCatalog) {
        if (fi.fault == Fault::kNone) return false;
    }
    return true;
}

/// Paper-style id strings are pairwise distinct (they key campaign job
/// names, coverage bins and the Table III rows).
constexpr bool catalog_ids_unique() {
    for (std::size_t i = 0; i < kFaultCatalog.size(); ++i) {
        for (std::size_t j = i + 1; j < kFaultCatalog.size(); ++j) {
            if (cstr_eq(kFaultCatalog[i].id, kFaultCatalog[j].id)) {
                return false;
            }
        }
    }
    return true;
}

}  // namespace detail

static_assert(kFaultCatalog.size() ==
                  static_cast<std::size_t>(Fault::kCount) - 1,
              "kFaultCatalog must list every injectable Fault enumerator");
static_assert(detail::catalog_covers_every_fault_once(),
              "kFaultCatalog must cover each Fault exactly once (no "
              "duplicates, no kNone entry)");
static_assert(detail::catalog_ids_unique(),
              "kFaultCatalog id strings must be unique");

[[nodiscard]] inline const FaultInfo& fault_info(Fault f) {
    for (const FaultInfo& fi : kFaultCatalog) {
        if (fi.fault == f) return fi;
    }
    static constexpr FaultInfo kNone{Fault::kNone, "none", "no fault",
                                     ExpectedDetection::kBoth};
    return kNone;
}

}  // namespace autovision::sys
