// System address map of the Optical Flow Demonstrator model.
#pragma once

#include <cstdint>

namespace autovision::sys {

// ---- main memory (PLB) ------------------------------------------------
inline constexpr std::uint32_t kVecBase = 0x0000'0000;    ///< exception vectors
inline constexpr std::uint32_t kFwBase = 0x0000'1000;     ///< firmware text
inline constexpr std::uint32_t kMailbox = 0x0000'8000;    ///< SW/TB mailbox
inline constexpr std::uint32_t kFrameBuf = 0x0001'0000;   ///< camera frame
inline constexpr std::uint32_t kCensusA = 0x0002'0000;    ///< census buffer A
inline constexpr std::uint32_t kCensusB = 0x0003'0000;    ///< census buffer B
inline constexpr std::uint32_t kFieldBuf = 0x0004'0000;   ///< motion field
inline constexpr std::uint32_t kOutBuf = 0x0005'0000;     ///< drawn output
// SimB staging areas: 2 MiB apart so even real-bitstream-length SimBs
// (129K words = 516 KiB) fit without overlapping.
inline constexpr std::uint32_t kSimbCie = 0x0010'0000;    ///< CIE bitstream
inline constexpr std::uint32_t kSimbMe = 0x0030'0000;     ///< ME bitstream
// Virtualization pool (SystemConfig::regions >= 2): shared source frames
// and per-job destination blocks for the managed regions' workload.
inline constexpr std::uint32_t kRegionSrcCur = 0x0050'0000;
inline constexpr std::uint32_t kRegionSrcPrev = 0x0051'0000;
inline constexpr std::uint32_t kRegionDstBase = 0x0060'0000;
inline constexpr std::uint32_t kRegionDstStride = 0x0001'0000;  ///< per job
/// Pool job geometry: small fixed frames so the managed regions' workload
/// drains well inside a two-frame pipeline run at any jobs_per_region.
/// Shared by the autonomous enqueue path and the pool-driver firmware.
inline constexpr unsigned kRegionJobW = 16;
inline constexpr unsigned kRegionJobH = 12;

// ---- mailbox offsets (word each) ---------------------------------------
inline constexpr std::uint32_t kMbFramesDone = 0;   ///< frames fully drawn
inline constexpr std::uint32_t kMbCieCount = 4;     ///< CIE jobs completed
inline constexpr std::uint32_t kMbMeCount = 8;      ///< ME jobs completed
inline constexpr std::uint32_t kMbDprCount = 12;    ///< reconfigurations started
inline constexpr std::uint32_t kMbFatal = 16;       ///< SW-detected error code

// ---- DCR map -------------------------------------------------------------
inline constexpr std::uint32_t kDcrIntc = 0x40;
inline constexpr std::uint32_t kDcrIcap = 0x50;
inline constexpr std::uint32_t kDcrIso = 0x58;
inline constexpr std::uint32_t kDcrCie = 0x60;
inline constexpr std::uint32_t kDcrMe = 0x68;
inline constexpr std::uint32_t kDcrSig = 0x70;  ///< engine_signature (VM only)
/// Software-scheduled pool bridge (rrm::PoolBridge), on the LEGACY chain so
/// the CPU's mtdcr/mfdcr reach it. Attached only when
/// SystemConfig::rrm_software is set; seven word registers (CMD, STATUS,
/// SRC, SRC2, DST, DIMS, PARAM).
inline constexpr std::uint32_t kDcrPool = 0x80;
// Region-indexed DCR blocks of the virtualization pool, on the dedicated
// management chain (the pool's RegionManager must not contend with the
// CPU's mtdcr/mfdcr on the legacy chain). Region r >= 1 owns
// [kDcrRegionBase + r*kDcrRegionStride, +kDcrRegionStride): isolation at
// +0, EngineRegs at +8, engine_signature (VM) at +16.
inline constexpr std::uint32_t kDcrRegionBase = 0x100;
inline constexpr std::uint32_t kDcrRegionStride = 0x20;
inline constexpr std::uint32_t kDcrRegionIso = 0;
inline constexpr std::uint32_t kDcrRegionRegs = 8;
inline constexpr std::uint32_t kDcrRegionSig = 16;

// ---- interrupt lines ------------------------------------------------------
inline constexpr unsigned kIrqEngine = 0;   ///< engine done (from the RR)
inline constexpr unsigned kIrqIcap = 1;     ///< bitstream transfer complete
inline constexpr unsigned kIrqVideoIn = 2;  ///< camera frame landed
/// Pool region r >= 1 raises its done line on INTC line kIrqRegion0 + r - 1.
inline constexpr unsigned kIrqRegion0 = 3;

// ---- PLB master indices ----------------------------------------------------
inline constexpr unsigned kMasterCpu = 0;
inline constexpr unsigned kMasterIcap = 1;
inline constexpr unsigned kMasterRr = 2;
inline constexpr unsigned kMasterVideoIn = 3;
inline constexpr unsigned kMasterVideoOut = 4;
inline constexpr unsigned kNumMasters = 5;
/// Pool region r >= 1 gets its own boundary master at kMasterRegion0 + r - 1.
inline constexpr unsigned kMasterRegion0 = kNumMasters;

// ---- SimB module ids --------------------------------------------------------
inline constexpr std::uint8_t kRrId = 0x01;
inline constexpr std::uint8_t kModuleCie = 0x01;
inline constexpr std::uint8_t kModuleMe = 0x02;

/// Threshold on |dx|+|dy| above which the firmware draws a motion marker.
inline constexpr unsigned kDrawThreshold = 2;

}  // namespace autovision::sys
