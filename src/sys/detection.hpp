// Fault-detection harness — the experiment behind Table III and the
// bugs-detected series of Figure 5.
//
// For each catalogued fault the harness builds the faulty system twice —
// once simulated with Virtual Multiplexing, once with ReSim — runs the same
// frame workload, and classifies each run: a simulation "detects" the bug
// when the run is not clean (checker diagnostics, data corruption, watchdog
// timeout or incomplete frames). The expected outcome per fault comes from
// the catalogue (= the paper's "Comments" column).
//
// Runs are independent simulations, so the harness fans them out across
// the campaign worker pool (each Testbench owns its scheduler and memory;
// `threads` follows the campaign convention: 0 = hardware concurrency).
#pragma once

#include <atomic>
#include <string>
#include <vector>

#include "faults.hpp"
#include "testbench.hpp"

namespace autovision::sys {

struct DetectionOutcome {
    Fault fault = Fault::kNone;
    RunResult vm;
    RunResult resim;

    [[nodiscard]] bool vm_detected() const { return !vm.clean(); }
    [[nodiscard]] bool resim_detected() const { return !resim.clean(); }

    /// True when the observed detections match the catalogue expectation.
    [[nodiscard]] bool matches_expectation() const;

    /// One table row: id | VM verdict | ReSim verdict | expectation.
    [[nodiscard]] std::string row() const;
};

/// Apply the fault's method-independent knobs (wait mode, delay tuning) on
/// top of a base configuration.
[[nodiscard]] SystemConfig config_for_fault(SystemConfig base, Fault f);

/// Run one fault under both methods. `cancel`, when non-null, is polled by
/// both runs (cooperative abort for batch supervisors).
[[nodiscard]] DetectionOutcome run_detection(
    const SystemConfig& base, Fault f, unsigned frames = 2,
    const std::atomic<bool>* cancel = nullptr);

/// Run the whole catalogue, fanning faults across `threads` workers
/// (0 = hardware concurrency).
[[nodiscard]] std::vector<DetectionOutcome> run_catalog(
    const SystemConfig& base, unsigned frames = 2, unsigned threads = 0);

}  // namespace autovision::sys
