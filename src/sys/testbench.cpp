#include "testbench.hpp"

#include "address_map.hpp"
#include "obs/export.hpp"

namespace autovision::sys {

namespace {

video::MatchConfig match_config(const SystemConfig& cfg) {
    video::MatchConfig mc;
    mc.step = cfg.step;
    mc.margin = cfg.margin;
    mc.search = static_cast<int>(cfg.search);
    mc.patch = 1;
    return mc;
}

video::SceneConfig scene_config(const SystemConfig& cfg, std::uint32_t seed) {
    // Zero means "no override": derive from the canonical run seed. The
    // default run seed maps to scene seed 1, the historical default.
    if (seed == 0) {
        seed = cfg.seed == 1
                   ? 1u
                   : rtlsim::derive_seed32(cfg.seed, kSeedTagScene);
    }
    return video::SceneConfig::standard(cfg.width, cfg.height, seed);
}

}  // namespace

std::string RunResult::verdict() const {
    if (clean()) return "clean";
    std::string v;
    if (watchdog_timeout) v += "[watchdog timeout] ";
    if (frames_completed < frames_requested) {
        v += "[only " + std::to_string(frames_completed) + "/" +
             std::to_string(frames_requested) + " frames] ";
    }
    if (data_corruption()) {
        v += "[data corruption: " + std::to_string(census_mismatches) +
             " census / " + std::to_string(field_mismatches) + " field / " +
             std::to_string(output_mismatches) + " output] ";
    }
    if (!diagnostics.empty()) {
        v += "[" + std::to_string(diagnostics.size()) +
             " checker diagnostics, first: " + diagnostics.front().source +
             ": " + diagnostics.front().message + "]";
    }
    return v;
}

Testbench::Testbench(SystemConfig cfg, std::uint32_t scene_seed)
    : sys(cfg),
      scene(scene_config(cfg, scene_seed)),
      scoreboard(match_config(cfg), cfg.width, cfg.height, kDrawThreshold) {
    if (!cfg.vcd_path.empty()) {
        vcd_file_ = std::make_unique<std::ofstream>(cfg.vcd_path);
        tracer_ = std::make_unique<rtlsim::Tracer>(*vcd_file_);
        tracer_->add(sys.clk.out);
        tracer_->add(sys.rst.out);
        tracer_->add(sys.rr_done);
        tracer_->add(sys.rr.stream_tap);
        tracer_->add(sys.plb.master(kMasterRr).req);
        tracer_->add(sys.plb.master(kMasterRr).addr);
        tracer_->add(sys.icapctrl.done_irq);
        tracer_->add(sys.intc.irq);
        tracer_->add(sys.iso.isolate);
        tracer_->add(sys.video_in.frame_irq);
        sys.sch.set_tracer(tracer_.get());
    }
    if (cfg.trace_events) {
        recorder_ = std::make_unique<obs::EventRecorder>(cfg.trace_capacity);
        recorder_->set_enabled(true);
        sys.attach_observer(recorder_.get());
    }
}

void Testbench::send_frame(unsigned index) {
    if (recorder_) {
        recorder_->record(sys.sch.now(), obs::EventKind::kFrameStart,
                          obs::Source::kTestbench, index);
    }
    sys.video_in.send_frame(scene.frame(index), kFrameBuf);
    ++frames_sent_;
}

RunResult Testbench::run(unsigned frames, std::uint64_t watchdog_cycles) {
    using Clock = std::chrono::steady_clock;
    const SystemConfig& cfg = sys.config();
    RunResult res;
    res.frames_requested = frames;

    if (watchdog_cycles == 0) {
        // Generous budget: engines are ~cycle/pixel and ~cycle/candidate;
        // the CPU adds drawing and ISR overhead on top.
        const std::uint64_t px = std::uint64_t{cfg.width} * cfg.height;
        const unsigned span = 2 * cfg.search + 1;
        watchdog_cycles = 200000 + px * (30 + span * span);
    }

    // Hard cap: runaway failure modes (e.g. an interrupt storm) keep the
    // mailbox counters moving, so the progress watchdog alone cannot bound
    // the run.
    const std::uint64_t max_total_cycles =
        (std::uint64_t{frames} + 8) * watchdog_cycles;

    const rtlsim::SimStats stats0 = sys.sch.stats;
    const rtlsim::Time t0 = sys.sch.now();

    // Reset settles first; then the camera delivers the first frame.
    sys.sch.run_until(8 * cfg.clk_period);
    send_frame(0);

    std::uint64_t last_progress_sum = ~std::uint64_t{0};
    std::uint64_t idle_cycles = 0;
    unsigned frames_checked = 0;
    unsigned cie_seen = 0;
    unsigned me_seen = 0;

    constexpr unsigned kQuantum = 32;  // cycles per attribution slice
    auto wall_prev = Clock::now();
    const auto wall_start = wall_prev;
    // Out-of-range sentinel: the first attribution slice always records a
    // kStageEnter event.
    obs::Stage cur_stage = static_cast<obs::Stage>(~0u);

    std::uint64_t total_cycles = 0;
    while (!sys.sch.stop_requested()) {
        if (cancel_ != nullptr &&
            cancel_->load(std::memory_order_relaxed)) {
            res.watchdog_timeout = true;
            sys.sch.report("watchdog", "run cancelled by batch supervisor");
            break;
        }
        sys.sch.run_until(sys.sch.now() + kQuantum * cfg.clk_period);
        total_cycles += kQuantum;
        if (total_cycles > max_total_cycles) {
            res.watchdog_timeout = true;
            sys.sch.report("watchdog", "hard run budget exhausted");
            break;
        }

        // ---- stage attribution (Table II) -----------------------------
        const auto wall_now = Clock::now();
        const auto dwall = std::chrono::duration_cast<std::chrono::nanoseconds>(
            wall_now - wall_prev);
        wall_prev = wall_now;
        const rtlsim::Time dsim = kQuantum * cfg.clk_period;
        obs::Stage stage = obs::Stage::kCpu;
        if (sys.icapctrl.busy()) {
            res.stages.dpr_sim += dsim;
            res.stages.dpr_wall += dwall;
            stage = obs::Stage::kDpr;
        } else if (sys.cie.busy()) {
            res.stages.cie_sim += dsim;
            res.stages.cie_wall += dwall;
            stage = obs::Stage::kCie;
        } else if (sys.me.busy()) {
            res.stages.me_sim += dsim;
            res.stages.me_wall += dwall;
            stage = obs::Stage::kMe;
        } else {
            res.stages.cpu_sim += dsim;
            res.stages.cpu_wall += dwall;
        }
        if (recorder_ && stage != cur_stage) {
            cur_stage = stage;
            recorder_->record(sys.sch.now(), obs::EventKind::kStageEnter,
                              obs::Source::kTestbench,
                              static_cast<std::uint32_t>(stage));
        }

        // ---- scoreboard hooks ------------------------------------------
        const std::uint32_t cie_count = sys.mailbox(kMbCieCount);
        const std::uint32_t me_count = sys.mailbox(kMbMeCount);
        const std::uint32_t frames_done = sys.mailbox(kMbFramesDone);

        if (cie_count > cie_seen) {
            // A census image is complete: check it, then let the camera
            // overwrite the consumed input frame with the next one.
            scoreboard.expect_frame(scene.frame(cie_seen));
            res.census_mismatches += scoreboard.check_census(
                sys.mem,
                OpticalFlowSystem::census_addr_for_frame(cie_seen));
            ++cie_seen;
            if (frames_sent_ < frames) send_frame(frames_sent_);
        }
        if (me_count > me_seen) {
            res.field_mismatches += scoreboard.check_field(sys.mem, kFieldBuf);
            ++me_seen;
        }
        if (frames_done > frames_checked) {
            if (recorder_) {
                recorder_->record(sys.sch.now(), obs::EventKind::kFrameDone,
                                  obs::Source::kTestbench, frames_checked);
            }
            res.output_mismatches += scoreboard.check_output_mem(
                sys.mem, kOutBuf, frames_checked);
            // Exercise the display path as well: the VIP fetch is checked
            // when it completes (a few hundred cycles later).
            if (!sys.video_out.busy()) {
                sys.video_out.fetch_frame(
                    kOutBuf, cfg.width, cfg.height, [this](video::Frame f) {
                        displayed.push_back(std::move(f));
                    });
            }
            ++frames_checked;
        }
        if (frames_checked >= frames && !sys.video_out.busy()) break;

        // ---- watchdog ----------------------------------------------------
        const std::uint64_t progress_sum =
            std::uint64_t{cie_count} + me_count + frames_done +
            sys.mailbox(kMbDprCount);
        if (progress_sum == last_progress_sum) {
            idle_cycles += kQuantum;
            if (idle_cycles >= watchdog_cycles) {
                res.watchdog_timeout = true;
                sys.sch.report("watchdog",
                               "no pipeline progress in " +
                                   std::to_string(watchdog_cycles) +
                                   " cycles");
                break;
            }
        } else {
            idle_cycles = 0;
            last_progress_sum = progress_sum;
        }
    }

    res.frames_completed = frames_checked;
    res.diagnostics = sys.sch.diagnostics();
    res.stats = sys.sch.stats - stats0;
    res.sim_time = sys.sch.now() - t0;
    res.wall_time = std::chrono::duration_cast<std::chrono::nanoseconds>(
        Clock::now() - wall_start);
    if (recorder_) {
        const std::vector<obs::Event> events = recorder_->snapshot();
        res.metrics = obs::Metrics::from_events(events, cfg.clk_period);
        res.metrics.events_dropped = recorder_->dropped();
        res.traced = true;
        if (!cfg.trace_path.empty()) {
            std::ofstream os(cfg.trace_path);
            if (os) {
                obs::write_chrome_trace(os, events);
            } else {
                sys.sch.report("testbench", "cannot open trace output '" +
                                                cfg.trace_path + "'");
            }
        }
    }
    return res;
}

}  // namespace autovision::sys
