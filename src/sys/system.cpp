#include "system.hpp"

#include <cstdlib>
#include <istream>
#include <ostream>

#include "address_map.hpp"
#include "ckpt/checkpoint.hpp"
#include "resim/injectors.hpp"

namespace autovision::sys {

namespace {

IcapCtrl::Config icap_config(const SystemConfig& cfg) {
    IcapCtrl::Config ic;
    ic.dcr_base = kDcrIcap;
    ic.size_in_bytes = true;  // the modified (shared-bus) IP counts bytes
    ic.p2p_mode = (cfg.fault == Fault::kDpr4P2pIcap);
    ic.burst_words = 16;
    ic.fifo_depth = cfg.icap_fifo_depth;
    ic.clk_div = cfg.icap_clk_div;
    return ic;
}

SystemConfig normalize(SystemConfig cfg) {
    if (cfg.regions < 1) cfg.regions = 1;
    if (cfg.regions > obs::kMaxRegions) {
        cfg.regions = obs::kMaxRegions;
    }
    if (cfg.rrm_jobs_per_region == 0) cfg.rrm_jobs_per_region = 1;
    if (cfg.regions == 1) cfg.rrm_software = false;
    return cfg;
}

FirmwareConfig firmware_config(const SystemConfig& cfg,
                               std::uint32_t simb_cie_words,
                               std::uint32_t simb_me_words) {
    FirmwareConfig fw;
    fw.method = cfg.method;
    fw.wait = cfg.wait;
    fw.delay_loops = cfg.delay_loops;
    fw.width = cfg.width;
    fw.height = cfg.height;
    fw.step = cfg.step;
    fw.margin = cfg.margin;
    fw.search = cfg.search;
    fw.simb_cie_words = simb_cie_words;
    fw.simb_me_words = simb_me_words;
    fw.fault = cfg.fault;
    fw.host_io = cfg.host_io;
    fw.exit_after_frames = cfg.exit_after_frames;
    if (cfg.rrm_software && cfg.regions > 1) {
        fw.pool_regions = cfg.regions - 1;
        fw.pool_jobs_per_region = cfg.rrm_jobs_per_region;
    }
    return fw;
}

}  // namespace

unsigned SystemConfig::resolve_lanes(unsigned cfg_lanes) {
    if (cfg_lanes != 0) return cfg_lanes;
    if (const char* env = std::getenv("AUTOVISION_LANES")) {
        char* end = nullptr;
        const unsigned long v = std::strtoul(env, &end, 10);
        if (end != env && *end == '\0' && v >= 1 && v <= 16) {
            return static_cast<unsigned>(v);
        }
    }
    return 1;
}

OpticalFlowSystem::OpticalFlowSystem(SystemConfig cfg)
    : cfg_(normalize(cfg)),
      clk(sch, "clk", cfg_.clk_period),
      rst(sch, "rst", 4 * cfg_.clk_period),
      mem(Memory::Config{0, 8u << 20, 4}),
      plb(sch, "plb", clk.out, rst.out,
          Plb::Config{kNumMasters + (cfg_.regions - 1), /*max_burst=*/16,
                      /*grant_timeout=*/50000}),
      dcr(sch, "dcr", clk.out, rst.out),
      intc(sch, "intc", clk.out, rst.out, kDcrIntc),
      iso(sch, "iso", kDcrIso),
      cie_regs(sch, "cie_regs", clk.out, kDcrCie),
      me_regs(sch, "me_regs", clk.out, kDcrMe),
      cie(sch, "cie", clk.out, rst.out, cie_regs),
      me(sch, "me", clk.out, rst.out, me_regs),
      rr_done(sch, "rr_done", rtlsim::Logic::L0),
      rr(sch, "rr", plb.master(kMasterRr), rr_done),
      icapctrl(sch, "icapctrl", clk.out, rst.out, plb.master(kMasterIcap),
               icap_router, icap_config(cfg)),
      video_in(sch, "video_in", clk.out, plb.master(kMasterVideoIn)),
      video_out(sch, "video_out", clk.out, plb.master(kMasterVideoOut)),
      firmware(),
      cpu(sch, "cpu", clk.out, rst.out, plb.master(kMasterCpu), dcr, mem,
          intc.irq, isa::PpcCpu::Config{kFwBase, 5}) {
    sch.set_profiling(cfg.profiling);

    // --- event lanes (DESIGN.md §13) ---------------------------------------
    // The CPU/DCR/ICAP/portal/region/engine cluster couples through direct
    // method calls and stays on lane 0. The PLB (with the passive memory
    // slave it alone writes) and the two video VIPs couple to the rest of
    // the system only through committed signal reads of their master-port
    // bundles, so each can evaluate on its own lane; the bus-transaction
    // boundary is the conservative synchronization point, re-joined at the
    // end of every delta.
    const unsigned nlanes = SystemConfig::resolve_lanes(cfg.lanes);
    sch.configure_lanes(nlanes);
    if (nlanes > 1) {
        plb.set_lane(1);
        video_in.set_lane(nlanes >= 3 ? 2 : 1);
        video_out.set_lane(nlanes >= 4 ? 3 : (nlanes >= 3 ? 2 : 1));
    }

    // --- bus topology -----------------------------------------------------
    plb.attach_slave(mem);

    // --- reconfigurable region --------------------------------------------
    rr.add_module(cie);  // slot 0 = module id 1
    rr.add_module(me);   // slot 1 = module id 2
    rr.set_isolation_signal(iso.isolate);
    switch (cfg.injection) {
        case SystemConfig::Injection::kX:
            break;  // the default ErrorInjector already drives X
        case SystemConfig::Injection::kHoldLast:
            rr.set_error_injector(
                std::make_unique<resim::HoldLastInjector>());
            break;
        case SystemConfig::Injection::kZeros:
            rr.set_error_injector(std::make_unique<resim::ZeroInjector>());
            break;
        case SystemConfig::Injection::kGarbage:
            rr.set_error_injector(std::make_unique<resim::GarbageInjector>(
                rtlsim::derive_seed32(cfg.seed, kSeedTagInjector)));
            break;
    }

    // --- interrupt fabric ----------------------------------------------------
    intc.attach(rr_done);               // line 0: engine done (through RR)
    intc.attach(icapctrl.done_irq);     // line 1: bitstream transfer done
    intc.attach(video_in.frame_irq);    // line 2: camera frame landed

    // --- DCR daisy chain (ring order models physical placement) -----------
    dcr.attach(icapctrl);
    dcr.attach(iso);
    dcr.attach(intc);
    dcr.attach(cie_regs);
    dcr.attach(me_regs);

    // --- method-specific simulation-only layer ------------------------------
    if (is_resim()) {
        portal = std::make_unique<resim::ExtendedPortal>(sch, "portal");
        icap_artifact =
            std::make_unique<resim::IcapArtifact>(sch, "icap", *portal);
        portal->map_module(kRrId, kModuleCie, rr, 0);
        portal->map_module(kRrId, kModuleMe, rr, 1);
        // Power-on full configuration loads the CIE.
        portal->initial_configuration(kRrId, kModuleCie);
    } else {
        rr.set_unselected_policy(RrBoundary::UnselectedPolicy::kIdle);
        vmux = std::make_unique<vm::VirtualMux>(sch, "vmux", rr, kDcrSig);
        vmux->map_module(1, 0);  // signature 1 = CIE
        vmux->map_module(2, 1);  // signature 2 = ME
        dcr.attach(*vmux);
        // The region stays unselected until software initialises the
        // signature register (or fails to — bug.hw.2).
    }

    // Point the IcapCTRL at the right sink. Under VM the controller is
    // instantiated but unused in simulation (its words go to a null sink).
    icap_router.set_target(icap_artifact ? static_cast<IcapPortIf*>(
                                               icap_artifact.get())
                                         : &null_icap);

    // --- virtualization pool (regions >= 2) ---------------------------------
    if (cfg_.regions > 1) {
        dcr_mgmt = std::make_unique<DcrChain>(sch, "dcr_mgmt", clk.out,
                                              rst.out);
        if (is_resim()) {
            // One physical ICAP: every configuration word now funnels
            // through the arbiter — manager sessions by grant, the CPU's
            // IcapCTRL stream via the SYNC-sniffing passthrough port.
            icap_arbiter = std::make_unique<rrm::IcapArbiter>(
                sch, "icap_arb", clk.out, rst.out, *icap_artifact,
                cfg_.regions, cfg_.rrm_grant);
            icap_router.set_target(&icap_arbiter->external_port());
        }
        rrm::RegionManager::Config mc;
        mc.policy = cfg_.rrm_policy;
        mc.vm_mode = !is_resim();
        mc.payload_words = cfg_.rrm_payload_words;
        mc.simb_seed = rtlsim::derive_seed(cfg_.seed, kSeedTagRegionSimb);
        mc.software = cfg_.rrm_software;
        region_manager = std::make_unique<rrm::RegionManager>(
            sch, "rrm", clk.out, rst.out, *dcr_mgmt, icap_arbiter.get(), mc);

        for (unsigned r = 1; r < cfg_.regions; ++r) {
            const std::uint32_t base = kDcrRegionBase + r * kDcrRegionStride;
            rrm::RegionLayout lay;
            lay.plb_master = kMasterRegion0 + (r - 1);
            lay.region = static_cast<std::uint8_t>(r);
            lay.iso_dcr = base + kDcrRegionIso;
            lay.regs_dcr = base + kDcrRegionRegs;
            lay.sig_dcr = base + kDcrRegionSig;
            lay.vm_mode = !is_resim();
            region_blocks.push_back(std::make_unique<rrm::RegionBlock>(
                sch, "region" + std::to_string(r), clk.out, rst.out, plb,
                lay));
            rrm::RegionBlock& blk = *region_blocks.back();
            blk.attach_dcr(*dcr_mgmt);
            if (is_resim()) blk.map_portal(*portal);
            intc.attach(blk.done_line);  // line kIrqRegion0 + r - 1
            region_manager->add_region(blk.ports());
        }

        // Shared pool source frames and the deterministic per-region job
        // mix; the pool starts autonomously once reset deasserts and runs
        // alongside the firmware-driven pipeline.
        for (unsigned i = 0; i < kRegionJobW * kRegionJobH; ++i) {
            mem.poke_u8(kRegionSrcCur + i,
                        static_cast<std::uint8_t>(rtlsim::derive_seed(
                            cfg_.seed, kSeedTagRegionCur + i)));
            mem.poke_u8(kRegionSrcPrev + i,
                        static_cast<std::uint8_t>(rtlsim::derive_seed(
                            cfg_.seed, kSeedTagRegionPrev + i)));
        }
        if (cfg_.rrm_software) {
            // Software-scheduled pool: the workload arrives at run time
            // through the DCR bridge; the firmware's pool driver decides
            // the engine order (see build_firmware). The bridge joins the
            // LEGACY chain — only under this flag, so the default ring
            // length (and with it every pinned DCR latency) is unchanged.
            pool_bridge =
                std::make_unique<rrm::PoolBridge>(*region_manager, kDcrPool);
            dcr.attach(*pool_bridge);
        } else {
            for (unsigned r = 1; r < cfg_.regions; ++r) {
                for (unsigned j = 0; j < cfg_.rrm_jobs_per_region; ++j) {
                    const rrm::EngineInfo& info =
                        rrm::engine_library()[(r + j) % rrm::kNumEngines];
                    rrm::RegionJob job;
                    job.engine = info.kind;
                    job.src = kRegionSrcCur;
                    job.src2 = info.needs_src2 ? kRegionSrcPrev : 0;
                    job.dst = kRegionDstBase +
                              ((r - 1) * cfg_.rrm_jobs_per_region + j) *
                                  kRegionDstStride;
                    job.width = static_cast<std::uint16_t>(kRegionJobW);
                    job.height = static_cast<std::uint16_t>(kRegionJobH);
                    job.param = info.kind == rrm::EngineKind::kMatching
                                    ? (1u | (2u << 8) | (2u << 16))
                                    : 0u;
                    job.deadline = rtlsim::derive_seed32(
                                       cfg_.seed, kSeedTagRegionDeadline +
                                                      r * 16 + j) %
                                   16u;
                    region_manager->enqueue(r - 1, job);
                }
            }
        }
        region_manager->start();
    }

    // --- bug.dpr.2 placement ------------------------------------------------
    if (cfg.fault == Fault::kDpr2RegsInsideRr && is_resim()) {
        // Registers inside the region exist only while their module is
        // resident; an absent/being-overwritten module breaks the ring.
        cie_regs.corrupted_hook = [this] { return !cie.rm_active(); };
        me_regs.corrupted_hook = [this] { return !me.rm_active(); };
    }

    // --- stage bitstreams ---------------------------------------------------
    // Filler seeds derive from the canonical run seed; the default seed
    // reproduces the historical Table I constants (the kernel-invariance
    // goldens pin the resulting bus traffic bit-for-bit).
    resim::SimB scie;
    scie.rr_id = kRrId;
    scie.module_id = kModuleCie;
    scie.payload_words = cfg.simb_payload_words;
    if (cfg.seed != 1) {
        scie.seed = rtlsim::derive_seed32(cfg.seed, kSeedTagSimbCie);
    }
    const auto cie_ws = scie.build();
    resim::SimB sme = scie;
    sme.module_id = kModuleMe;
    sme.seed = cfg.seed != 1 ? rtlsim::derive_seed32(cfg.seed, kSeedTagSimbMe)
                             : 0xF464'9889;
    const auto me_ws = sme.build();
    simb_cie_words = static_cast<std::uint32_t>(cie_ws.size());
    simb_me_words = static_cast<std::uint32_t>(me_ws.size());
    mem.load_words(kSimbCie, cie_ws);
    mem.load_words(kSimbMe, me_ws);

    // --- firmware -------------------------------------------------------------
    firmware =
        build_firmware(firmware_config(cfg, simb_cie_words, simb_me_words));
    mem.load_words(firmware.origin, firmware.words);
    cpu.set_pc(firmware.entry());
}

std::uint64_t OpticalFlowSystem::config_hash(const SystemConfig& cfg) {
    using rtlsim::snap_hash64;
    using rtlsim::snap_hash64_u64;
    // Domain string first so the hash can never collide with a raw field
    // sequence; bump the suffix when the field list changes.
    std::uint64_t h = snap_hash64("autovision.sysconfig.v1");
    h = snap_hash64_u64(static_cast<std::uint64_t>(cfg.method), h);
    h = snap_hash64_u64(static_cast<std::uint64_t>(cfg.wait), h);
    h = snap_hash64_u64(cfg.delay_loops, h);
    h = snap_hash64_u64(static_cast<std::uint64_t>(cfg.fault), h);
    h = snap_hash64_u64(cfg.seed, h);
    h = snap_hash64_u64(cfg.width, h);
    h = snap_hash64_u64(cfg.height, h);
    h = snap_hash64_u64(cfg.step, h);
    h = snap_hash64_u64(cfg.margin, h);
    h = snap_hash64_u64(cfg.search, h);
    h = snap_hash64_u64(cfg.simb_payload_words, h);
    h = snap_hash64_u64(static_cast<std::uint64_t>(cfg.injection), h);
    h = snap_hash64_u64(cfg.icap_clk_div, h);
    h = snap_hash64_u64(cfg.icap_fifo_depth, h);
    h = snap_hash64_u64(cfg.clk_period, h);
    h = snap_hash64_u64(cfg.trace_events ? 1 : 0, h);
    h = snap_hash64_u64(cfg.trace_capacity, h);
    // profiling, lanes, vcd_path and trace_path are deliberately excluded:
    // they do not change simulation state (lanes is bit-exact by the
    // kernel-invariance contract, so snapshots interchange freely between
    // lane counts).
    //
    // The virtualization-pool fields fold in only when a pool exists, so
    // every single-region configuration hashes exactly as it did before
    // the pool was introduced (checkpoint compatibility contract).
    if (cfg.regions > 1) {
        h = snap_hash64("autovision.sysconfig.pool.v1", h);
        h = snap_hash64_u64(cfg.regions, h);
        h = snap_hash64_u64(static_cast<std::uint64_t>(cfg.rrm_policy), h);
        h = snap_hash64_u64(static_cast<std::uint64_t>(cfg.rrm_grant), h);
        h = snap_hash64_u64(cfg.rrm_jobs_per_region, h);
        h = snap_hash64_u64(cfg.rrm_payload_words, h);
        // The software-scheduling flag folds in only when set, under its
        // own domain tag, so every pre-existing pool configuration hashes
        // exactly as before (same checkpoint compatibility contract).
        if (cfg.rrm_software) {
            h = snap_hash64("autovision.sysconfig.swpool.v1", h);
        }
    }
    // Same gated-fold contract for the host-IO knobs: every configuration
    // that leaves them at the defaults hashes exactly as before.
    if (cfg.host_io || cfg.exit_after_frames != 0) {
        h = snap_hash64("autovision.sysconfig.hostio.v1", h);
        h = snap_hash64_u64(cfg.host_io ? 1 : 0, h);
        h = snap_hash64_u64(cfg.exit_after_frames, h);
    }
    return h;
}

std::vector<rrm::RegionSnapshot> OpticalFlowSystem::region_snapshots() const {
    std::vector<rrm::RegionSnapshot> out;
    out.reserve(region_blocks.size());
    for (unsigned i = 0; i < region_blocks.size(); ++i) {
        const rrm::RegionBlock& blk = *region_blocks[i];
        rrm::RegionSnapshot s;
        s.index = blk.layout.region;
        s.resident = region_manager->started() ? region_manager->resident(i)
                                               : rrm::EngineKind::kNone;
        s.busy = blk.regs.busy();
        s.isolated = rtlsim::is1(blk.iso.isolate.read());
        s.swaps = region_manager->started()
                      ? region_manager->sessions_submitted(i)
                      : 0;
        s.jobs = region_manager->started() ? region_manager->jobs_done(i) : 0;
        out.push_back(s);
    }
    return out;
}

bool OpticalFlowSystem::save(std::ostream& os) const {
    if (!sch.ckpt_quiescent()) return false;
    ckpt::Saver saver(
        ckpt::Manifest{ckpt::kFormatVersion, config_hash(), sch.now()});
    // Section order mirrors member elaboration order; restore replays it.
    sch.ckpt_save(saver.section("kernel"));
    clk.ckpt_save(saver.section("clock"));
    rst.ckpt_save(saver.section("reset"));
    mem.ckpt_save(saver.section("memory"));
    plb.ckpt_save(saver.section("plb"));
    dcr.ckpt_save(saver.section("dcr"));
    intc.ckpt_save(saver.section("intc"));
    iso.ckpt_save(saver.section("iso"));
    cie_regs.ckpt_save(saver.section("cie_regs"));
    me_regs.ckpt_save(saver.section("me_regs"));
    cie.ckpt_save(saver.section("cie"));
    me.ckpt_save(saver.section("me"));
    rr.ckpt_save(saver.section("rr"));
    if (portal) portal->ckpt_save(saver.section("portal"));
    if (icap_artifact) icap_artifact->ckpt_save(saver.section("icap"));
    if (vmux) vmux->ckpt_save(saver.section("vmux"));
    // Virtualization pool (regions >= 2 only): absent sections keep the
    // single-region blob byte-identical to the pre-pool format.
    if (dcr_mgmt) dcr_mgmt->ckpt_save(saver.section("dcr_mgmt"));
    for (std::size_t i = 0; i < region_blocks.size(); ++i) {
        region_blocks[i]->ckpt_save(
            saver.section("region" + std::to_string(i + 1)));
    }
    if (region_manager) {
        const auto snaps = region_snapshots();
        rrm::save_region_section(saver.section("rrm"), snaps);
        if (icap_arbiter) icap_arbiter->ckpt_save(saver.section("rrm_arb"));
        region_manager->ckpt_save(saver.section("rrm_mgr"));
        if (pool_bridge) {
            pool_bridge->ckpt_save(saver.section("pool_bridge"));
        }
    }
    icapctrl.ckpt_save(saver.section("icapctrl"));
    video_in.ckpt_save(saver.section("video_in"));
    video_out.ckpt_save(saver.section("video_out"));
    cpu.ckpt_save(saver.section("cpu"));
    // Signals last: every module has finalized its side of the state.
    sch.ckpt_save_signals(saver.section("signals"));
    return saver.write_to(os);
}

bool OpticalFlowSystem::restore(std::istream& is, std::string* error) {
    const auto fail = [error](const std::string& m) {
        if (error != nullptr) *error = m;
        return false;
    };
    ckpt::Loader loader;
    if (!loader.load(is, config_hash())) return fail(loader.error());

    const auto section = [&](const char* name, auto&& target) {
        rtlsim::SnapReader r = loader.reader(name);
        return target.ckpt_restore(r);
    };
    // Kernel first (clears the event queue and quiesces), then the event
    // sources re-schedule themselves, then modules, then signal values.
    {
        rtlsim::SnapReader r = loader.reader("kernel");
        if (!sch.ckpt_restore(r)) return fail("kernel section corrupt");
    }
    if (!section("clock", clk)) return fail("clock section corrupt");
    if (!section("reset", rst)) return fail("reset section corrupt");
    if (!section("memory", mem)) return fail("memory section corrupt");
    if (!section("plb", plb)) return fail("plb section corrupt");
    if (!section("dcr", dcr)) return fail("dcr section corrupt");
    if (!section("intc", intc)) return fail("intc section corrupt");
    if (!section("iso", iso)) return fail("iso section corrupt");
    if (!section("cie_regs", cie_regs)) return fail("cie_regs section corrupt");
    if (!section("me_regs", me_regs)) return fail("me_regs section corrupt");
    if (!section("cie", cie)) return fail("cie section corrupt");
    if (!section("me", me)) return fail("me section corrupt");
    if (!section("rr", rr)) return fail("rr section corrupt");
    if (portal && !section("portal", *portal)) {
        return fail("portal section corrupt");
    }
    if (icap_artifact && !section("icap", *icap_artifact)) {
        return fail("icap section corrupt");
    }
    if (vmux && !section("vmux", *vmux)) return fail("vmux section corrupt");
    if (dcr_mgmt && !section("dcr_mgmt", *dcr_mgmt)) {
        return fail("dcr_mgmt section corrupt");
    }
    for (std::size_t i = 0; i < region_blocks.size(); ++i) {
        const std::string name = "region" + std::to_string(i + 1);
        if (!section(name.c_str(), *region_blocks[i])) {
            return fail(name + " section corrupt");
        }
    }
    std::vector<rrm::RegionSnapshot> pool_summary;
    if (region_manager) {
        rtlsim::SnapReader r = loader.reader("rrm");
        if (!rrm::load_region_section(r, pool_summary)) {
            return fail("rrm section corrupt");
        }
        if (icap_arbiter && !section("rrm_arb", *icap_arbiter)) {
            return fail("rrm_arb section corrupt");
        }
        if (!section("rrm_mgr", *region_manager)) {
            return fail("rrm_mgr section corrupt");
        }
        if (pool_bridge && !section("pool_bridge", *pool_bridge)) {
            return fail("pool_bridge section corrupt");
        }
    }
    if (!section("icapctrl", icapctrl)) return fail("icapctrl section corrupt");
    if (!section("video_in", video_in)) return fail("video_in section corrupt");
    if (!section("video_out", video_out)) {
        return fail("video_out section corrupt");
    }
    if (!section("cpu", cpu)) return fail("cpu section corrupt");
    {
        rtlsim::SnapReader r = loader.reader("signals");
        if (!sch.ckpt_restore_signals(r)) {
            return fail("signal registry mismatch");
        }
    }
    // The decodable "rrm" summary must agree with the restored full state —
    // keeps the region-array format honest against drift.
    if (region_manager && pool_summary != region_snapshots()) {
        return fail("rrm summary/state mismatch");
    }
    return true;
}

void OpticalFlowSystem::attach_observer(obs::EventRecorder* rec) {
    dcr.set_observer(rec);
    intc.set_observer(rec);
    iso.set_observer(rec);
    rr.set_observer(rec);
    if (portal) portal->set_observer(rec);
    if (icap_artifact) icap_artifact->set_observer(rec);
    if (dcr_mgmt) dcr_mgmt->set_observer(rec);
    for (auto& blk : region_blocks) blk->set_observer(rec);
    if (icap_arbiter) icap_arbiter->set_observer(rec);
    if (region_manager) region_manager->set_observer(rec);
    cpu.set_observer(rec);
}

}  // namespace autovision::sys
