#include "firmware.hpp"

#include <sstream>

#include "address_map.hpp"
#include "rrm/engine_library.hpp"

namespace autovision::sys {

namespace {

/// Emit a two-instruction 32-bit constant load into `reg`.
std::string load32(const std::string& reg, const std::string& expr) {
    return "  lis " + reg + ", hi(" + expr + ")\n" +
           "  ori " + reg + ", " + reg + ", lo(" + expr + ")\n";
}

}  // namespace

std::string build_firmware_source(const FirmwareConfig& cfg) {
    const bool vm = cfg.method == FirmwareConfig::Method::kVm;
    const Fault f = cfg.fault;
    std::ostringstream s;

    // ------------------------------------------------------------ equates
    s << "# Optical Flow Demonstrator firmware — generated\n";
    s << ".equ MAILBOX, 0x" << std::hex << kMailbox << std::dec << "\n";
    s << ".equ FRAME_BUF, 0x" << std::hex << kFrameBuf << "\n";
    s << ".equ CENSUS_A, 0x" << kCensusA << "\n";
    s << ".equ CENSUS_B, 0x" << kCensusB << "\n";
    s << ".equ FIELD_BUF, 0x" << kFieldBuf << "\n";
    s << ".equ OUT_BUF, 0x" << kOutBuf << "\n";
    s << ".equ SIMB_CIE, 0x" << kSimbCie << "\n";
    s << ".equ SIMB_ME, 0x" << kSimbMe << std::dec << "\n";
    // Mailbox counters (testbench-visible).
    s << ".equ MB_FRAMES_DONE, 0\n.equ MB_CIE_COUNT, 4\n"
         ".equ MB_ME_COUNT, 8\n.equ MB_DPR_COUNT, 12\n.equ MB_FATAL, 16\n";
    // Firmware state variables.
    s << ".equ VAR_CUR_ENGINE, 32\n.equ VAR_CEN_CUR, 36\n"
         ".equ VAR_CEN_PREV, 40\n.equ VAR_BUSY, 44\n.equ VAR_DPR_BUSY, 48\n"
         ".equ VAR_FRAME_READY, 52\n.equ VAR_FIELD_READY, 56\n"
         ".equ VAR_DPR_TARGET, 60\n";
    // ISR register save area (reachable from r0 with a 16-bit offset).
    s << ".equ SAVE, 0x0F00\n";
    // DCR register numbers.
    s << ".equ INTC_ISR, 0x" << std::hex << (kDcrIntc + 0)
      << "\n.equ INTC_IER, 0x" << (kDcrIntc + 1) << "\n.equ INTC_IAR, 0x"
      << (kDcrIntc + 2) << "\n.equ INTC_CTRL, 0x" << (kDcrIntc + 3) << "\n";
    s << ".equ ICAP_CTRL, 0x" << (kDcrIcap + 0) << "\n.equ ICAP_STATUS, 0x"
      << (kDcrIcap + 1) << "\n.equ ICAP_ADDR, 0x" << (kDcrIcap + 2)
      << "\n.equ ICAP_SIZE, 0x" << (kDcrIcap + 3) << "\n";
    s << ".equ ISO_CTRL, 0x" << kDcrIso << "\n";
    s << ".equ CIE_CTRL, 0x" << (kDcrCie + 0) << "\n.equ CIE_STATUS, 0x"
      << (kDcrCie + 1) << "\n.equ CIE_SRC, 0x" << (kDcrCie + 2)
      << "\n.equ CIE_DST, 0x" << (kDcrCie + 3) << "\n.equ CIE_DIMS, 0x"
      << (kDcrCie + 5) << "\n";
    s << ".equ ME_CTRL, 0x" << (kDcrMe + 0) << "\n.equ ME_STATUS, 0x"
      << (kDcrMe + 1) << "\n.equ ME_SRC, 0x" << (kDcrMe + 2)
      << "\n.equ ME_DST, 0x" << (kDcrMe + 3) << "\n.equ ME_SRC2, 0x"
      << (kDcrMe + 4) << "\n.equ ME_DIMS, 0x" << (kDcrMe + 5)
      << "\n.equ ME_PARAM, 0x" << (kDcrMe + 6) << "\n";
    s << ".equ SIG_REG, 0x" << kDcrSig << std::dec << "\n";
    // Geometry.
    const unsigned gw =
        (cfg.width < 2 * cfg.margin)
            ? 0
            : (cfg.width - 2 * cfg.margin + cfg.step - 1) / cfg.step;
    const unsigned gh =
        (cfg.height < 2 * cfg.margin)
            ? 0
            : (cfg.height - 2 * cfg.margin + cfg.step - 1) / cfg.step;
    s << ".equ WIDTH, " << cfg.width << "\n.equ HEIGHT, " << cfg.height
      << "\n.equ GW, " << gw << "\n.equ GH, " << gh << "\n.equ STEP, "
      << cfg.step << "\n.equ MARGIN, " << cfg.margin << "\n";
    s << ".equ DIMS_VALUE, WIDTH * 65536 + HEIGHT\n";
    s << ".equ PARAM_VALUE, " << cfg.search << " + " << cfg.step
      << " * 256 + " << cfg.margin << " * 65536\n";
    s << ".equ DRAW_THRESH, " << kDrawThreshold << "\n";
    // Bitstream sizes as programmed by the driver. The modern IP counts
    // bytes; bug.dpr.5 is the stale word-count calculation.
    const bool size_words = (f == Fault::kDpr5SizeInWords);
    s << ".equ SIMB_CIE_SIZE, " << cfg.simb_cie_words * (size_words ? 1 : 4)
      << "\n.equ SIMB_ME_SIZE, " << cfg.simb_me_words * (size_words ? 1 : 4)
      << "\n";
    s << ".equ DELAY_LOOPS, " << cfg.delay_loops << "\n";
    const unsigned npool = cfg.pool_regions;
    if (npool > 0) {
        // Software-scheduled pool driver: the PoolBridge DCR window plus
        // the generated job table (engine order decided here, at firmware
        // generation time — the manager only executes the protocol).
        s << ".equ POOL_CMD, 0x" << std::hex << (kDcrPool + 0)
          << "\n.equ POOL_STATUS, 0x" << (kDcrPool + 1)
          << "\n.equ POOL_SRC, 0x" << (kDcrPool + 2)
          << "\n.equ POOL_SRC2, 0x" << (kDcrPool + 3)
          << "\n.equ POOL_DST, 0x" << (kDcrPool + 4)
          << "\n.equ POOL_DIMS, 0x" << (kDcrPool + 5)
          << "\n.equ POOL_PARAM, 0x" << (kDcrPool + 6) << "\n"
          << ".equ POOL_SRC_CUR, 0x" << kRegionSrcCur
          << "\n.equ POOL_SRC_PREV, 0x" << kRegionSrcPrev << std::dec
          << "\n";
        s << ".equ POOL_N, " << npool << "\n.equ POOL_JOBS, "
          << cfg.pool_jobs_per_region << "\n";
        s << ".equ POOL_DIMS_VALUE, "
          << ((kRegionJobW << 16) | kRegionJobH) << "\n";
        // Per-region push cursors (word each), after the VAR_* block.
        s << ".equ VAR_POOL_CUR, 64\n";
    }
    if (f == Fault::kSw3StaleCodePatch) {
        // The word the ISR stores over the draw loop's marker instruction:
        // `li r22, 1` (addi r22, r0, 1) replacing `li r22, 255`. A correct
        // simulator must see the patched code on the very next draw pass
        // (decode-cache invalidation), where the dim marker corrupts the
        // drawn output.
        s << ".equ PATCH_WORD, 0x3AC00001\n";
    }

    // --------------------------------------------------- shared fragments
    const std::string start_cie_block = [&] {
        std::ostringstream b;
        // Swap census buffers, program the CIE, reset + start it.
        b << "  lwz r6, VAR_CEN_CUR(r5)\n"
             "  lwz r7, VAR_CEN_PREV(r5)\n"
             "  stw r6, VAR_CEN_PREV(r5)\n"
             "  stw r7, VAR_CEN_CUR(r5)\n";
        if (f == Fault::kHw1SrcWordAddr) {
            // Byte/word mismatch: the driver programs a word index.
            b << load32("r6", "FRAME_BUF") << "  srwi r6, r6, 2\n";
        } else {
            b << load32("r6", "FRAME_BUF");
        }
        b << "  mtdcr CIE_SRC, r6\n"
             "  lwz r6, VAR_CEN_CUR(r5)\n"
             "  mtdcr CIE_DST, r6\n"
          << load32("r6", "DIMS_VALUE")
          << "  mtdcr CIE_DIMS, r6\n"
             "  li r6, 2\n  mtdcr CIE_CTRL, r6\n"
             "  li r6, 1\n  mtdcr CIE_CTRL, r6\n"
             "  li r6, 1\n  stw r6, VAR_BUSY(r5)\n"
             "  li r6, 0\n  stw r6, VAR_FRAME_READY(r5)\n";
        return b.str();
    }();

    const std::string start_me_block = [&] {
        std::ostringstream b;
        b << "  lwz r6, VAR_CEN_CUR(r5)\n  mtdcr ME_SRC, r6\n"
             "  lwz r6, VAR_CEN_PREV(r5)\n  mtdcr ME_SRC2, r6\n"
          << load32("r6", "FIELD_BUF")
          << "  mtdcr ME_DST, r6\n"
          << load32("r6", "DIMS_VALUE")
          << "  mtdcr ME_DIMS, r6\n"
          << load32("r6", "PARAM_VALUE")
          << "  mtdcr ME_PARAM, r6\n"
             "  li r6, 2\n  mtdcr ME_CTRL, r6\n"
             "  li r6, 1\n  mtdcr ME_CTRL, r6\n"
             "  li r6, 1\n  stw r6, VAR_BUSY(r5)\n";
        return b.str();
    }();

    // Post-transfer actions (shared by the IRQ handler and the inline
    // poll/delay paths): drop isolation, record the newly configured
    // module, start it (ME) or start a pending frame (CIE).
    auto post_dpr_block = [&](const std::string& tag, bool via_icap = true) {
        std::ostringstream b;
        if (via_icap) {
            b << "  li r7, 2\n  mtdcr ICAP_STATUS, r7\n";  // W1C done
            if (f != Fault::kDpr1NoIsolation) {
                b << "  li r7, 0\n  mtdcr ISO_CTRL, r7\n";
            }
        }
        b << "  li r7, 0\n  stw r7, VAR_DPR_BUSY(r5)\n"
             "  lwz r7, VAR_DPR_TARGET(r5)\n"
             "  stw r7, VAR_CUR_ENGINE(r5)\n"
             "  cmpwi r7, 2\n"
             "  bne post_cfg_cie_" << tag << "\n"
          << start_me_block
          << "  b post_done_" << tag << "\n"
          << "post_cfg_cie_" << tag << ":\n"
             "  lwz r7, VAR_FRAME_READY(r5)\n"
             "  cmpwi r7, 0\n"
             "  beq post_done_" << tag << "\n"
          << start_cie_block
          << "post_done_" << tag << ":\n";
        return b.str();
    };

    // DPR initiation towards module `target` (1 = CIE, 2 = ME).
    auto start_dpr_block = [&](int target, const std::string& tag) {
        std::ostringstream b;
        b << "  lwz r7, MB_DPR_COUNT(r5)\n  addi r7, r7, 1\n"
             "  stw r7, MB_DPR_COUNT(r5)\n";
        b << "  li r7, " << target << "\n  stw r7, VAR_DPR_TARGET(r5)\n";
        if (vm) {
            // The VM "hack": swap instantly via the simulation-only
            // signature register, then run the post-configuration actions
            // immediately (zero-delay reconfiguration).
            b << "  li r7, " << target << "\n  mtdcr SIG_REG, r7\n";
            b << post_dpr_block(tag, /*via_icap=*/false);
            return b.str();
        }
        b << "  li r7, 1\n  stw r7, VAR_DPR_BUSY(r5)\n";
        if (f != Fault::kDpr1NoIsolation) {
            b << "  li r7, 1\n  mtdcr ISO_CTRL, r7\n";
        }
        // Bitstream address: bug.dpr.3 stages the *other* module's SimB.
        const bool wrong = (f == Fault::kDpr3WrongSimbAddr);
        const std::string addr =
            (target == 2) == !wrong ? "SIMB_ME" : "SIMB_CIE";
        const std::string size =
            (target == 2) == !wrong ? "SIMB_ME_SIZE" : "SIMB_CIE_SIZE";
        b << load32("r7", addr) << "  mtdcr ICAP_ADDR, r7\n"
          << load32("r7", size) << "  mtdcr ICAP_SIZE, r7\n"
          << "  li r7, 1\n  mtdcr ICAP_CTRL, r7\n";

        switch (cfg.wait) {
            case FirmwareConfig::Wait::kIrq:
                // Completion handled by the IcapCTRL interrupt.
                break;
            case FirmwareConfig::Wait::kPollDone: {
                // Poll the status register. bug.sw.1 polls the *busy* bit
                // and proceeds as soon as the transfer has merely begun.
                const bool wrongbit = (f == Fault::kSw1PollWrongBit);
                b << "poll_" << tag << ":\n"
                  << "  mfdcr r7, ICAP_STATUS\n"
                  << "  andi. r7, r7, " << (wrongbit ? 1 : 2) << "\n"
                  << "  beq poll_" << tag << "\n"
                  << post_dpr_block(tag);
                break;
            }
            case FirmwareConfig::Wait::kDelay:
                // The original driver style: a fixed delay loop. With the
                // modified (slower) configuration clock the loop is too
                // short — bug.dpr.6b.
                b << load32("r7", "DELAY_LOOPS") << "  mtctr r7\n"
                  << "delay_" << tag << ":\n"
                  << "  bdnz delay_" << tag << "\n"
                  << post_dpr_block(tag);
                break;
        }
        return b.str();
    };

    // The software pool schedule, decided here at generation time: engines
    // rotate per region in *pairs*, so every second job targets the engine
    // already resident and is pushed as a demand-paging hit
    // (reconfigure = 0) — the schedule exercises both plan-gate paths.
    struct PoolJob {
        std::uint32_t cmd, dst, param;
    };
    const auto pool_job = [&](unsigned r, unsigned j) {  // r is 1-based
        const auto lib = static_cast<unsigned>(rrm::kNumEngines);
        const unsigned engine = (r - 1 + (j >> 1)) % lib + 1;
        const unsigned prev =
            j == 0 ? 0 : (r - 1 + ((j - 1) >> 1)) % lib + 1;
        PoolJob out;
        out.cmd = (r - 1) | (engine << 4) | (engine != prev ? 0x100u : 0u);
        out.dst = kRegionDstBase +
                  ((r - 1) * cfg.pool_jobs_per_region + j) * kRegionDstStride;
        out.param =
            engine == static_cast<unsigned>(rrm::EngineKind::kMatching)
                ? (1u | (2u << 8) | (2u << 16))
                : 0u;
        return out;
    };

    // ---------------------------------------------------------------- ISR
    s << "\n.org 0x500\nisr:\n";
    // Save r3-r12, LR, CR through the r0-based window.
    for (int r = 3; r <= 12; ++r) {
        s << "  stw r" << r << ", SAVE + " << 4 * (r - 3) << "(r0)\n";
    }
    s << "  mflr r3\n  stw r3, SAVE + 40(r0)\n"
         "  mfcr r3\n  stw r3, SAVE + 44(r0)\n";
    s << load32("r5", "MAILBOX");
    s << "  mfdcr r3, INTC_ISR\n"
         "  andi. r4, r3, 1\n"
         "  bne handle_engine\n"
         "  andi. r4, r3, 2\n"
         "  bne handle_icap\n"
         "  andi. r4, r3, 4\n"
         "  bne handle_video\n";
    if (npool > 0) {
        // Pool region r's done line latches INTC bit 8 << (r - 1).
        s << "  andi. r4, r3, " << (((1u << npool) - 1u) << 3) << "\n"
             "  bne handle_region\n";
    }
    // Spurious/corrupted cause: record and ack everything we saw.
    s << "  li r4, 1\n  stw r4, MB_FATAL(r5)\n"
         "  mr r4, r3\n  b isr_ack\n";

    s << "isr_ack:\n";
    if (f == Fault::kSw5SyscallInIsr) {
        // A "scheduling hint" syscall inside the handler. The sc clobbers
        // SRR0/SRR1 (the interrupt's own return state), so the rfi below
        // returns *here* with EE still 0 — the handler tail loops forever.
        s << "  li r0, 3\n  sc\n";
    }
    if (f != Fault::kSw2NoIntcAck) {
        s << "  mtdcr INTC_IAR, r4\n";
    }
    s << "isr_exit:\n"
         "  lwz r3, SAVE + 44(r0)\n  mtcr r3\n"
         "  lwz r3, SAVE + 40(r0)\n  mtlr r3\n";
    for (int r = 12; r >= 3; --r) {
        s << "  lwz r" << r << ", SAVE + " << 4 * (r - 3) << "(r0)\n";
    }
    s << "  rfi\n";

    // Engine-done handler: CIE completion launches DPR to the ME;
    // ME completion publishes the field and launches DPR back to the CIE.
    s << "\nhandle_engine:\n"
         "  li r4, 1\n"
         "  li r7, 0\n  stw r7, VAR_BUSY(r5)\n"
         "  lwz r6, VAR_CUR_ENGINE(r5)\n"
         "  cmpwi r6, 2\n"
         "  beq engine_me_done\n"
         // --- CIE done ---
         "  lwz r7, MB_CIE_COUNT(r5)\n  addi r7, r7, 1\n"
         "  stw r7, MB_CIE_COUNT(r5)\n"
         "  li r7, 2\n  mtdcr CIE_STATUS, r7\n"
      << start_dpr_block(2, "tome")
      << "  b isr_ack\n"
         "engine_me_done:\n"
         "  lwz r7, MB_ME_COUNT(r5)\n  addi r7, r7, 1\n"
         "  stw r7, MB_ME_COUNT(r5)\n"
         "  li r7, 2\n  mtdcr ME_STATUS, r7\n"
         "  li r7, 1\n  stw r7, VAR_FIELD_READY(r5)\n";
    if (f == Fault::kSw3StaleCodePatch) {
        // "Specialize" the draw loop in place from interrupt context — a
        // store into the code the interrupted main loop is about to run.
        s << load32("r6", "draw_mark") << load32("r7", "PATCH_WORD")
          << "  stw r7, 0(r6)\n";
    }
    s << start_dpr_block(1, "tocie")
      << "  b isr_ack\n";

    // IcapCTRL-done handler: only the IRQ-wait ReSim driver takes this
    // interrupt; every other variant masks the line, so the handler shrinks
    // to a stub (keeping unreachable ICAP/ISO driver code out of, e.g., the
    // hacked VM software).
    s << "\nhandle_icap:\n"
         "  li r4, 2\n";
    if (!vm && cfg.wait == FirmwareConfig::Wait::kIrq) {
        s << post_dpr_block("irq");
    }
    s << "  b isr_ack\n";

    // Camera-frame handler.
    s << "\nhandle_video:\n"
         "  li r4, 4\n"
         "  lwz r6, VAR_CUR_ENGINE(r5)\n"
         "  cmpwi r6, 1\n"
         "  bne video_defer\n"
         "  lwz r6, VAR_BUSY(r5)\n"
         "  cmpwi r6, 0\n"
         "  bne video_defer\n"
         "  lwz r6, VAR_DPR_BUSY(r5)\n"
         "  cmpwi r6, 0\n"
         "  bne video_defer\n"
      << start_cie_block
      << "  b isr_ack\n"
         "video_defer:\n"
         "  li r6, 1\n  stw r6, VAR_FRAME_READY(r5)\n"
         "  b isr_ack\n";

    // Pool-region-done handler: find the lowest pending region line, ack
    // exactly that line, and push the region's next job (if any is left in
    // the generated schedule) through the PoolBridge. One line per ISR
    // entry — the other latched bits re-raise the interrupt.
    if (npool > 0) {
        s << "\nhandle_region:\n"
             "  li r6, 0\n"   // manager region index
             "  li r8, 8\n"   // INTC mask of region line 0
             "region_scan:\n"
             "  and. r9, r3, r8\n"
             "  bne region_found\n"
             "  slwi r8, r8, 1\n"
             "  addi r6, r6, 1\n"
             "  cmpwi r6, POOL_N\n"
             "  blt region_scan\n"
             "  li r4, 1\n  stw r4, MB_FATAL(r5)\n"
             "  mr r4, r3\n  b isr_ack\n"
             "region_found:\n"
             "  mr r4, r8\n"
             "  slwi r9, r6, 2\n"
             "  addi r9, r9, VAR_POOL_CUR\n"
             "  add r9, r9, r5\n"
             "  lwz r10, 0(r9)\n"       // push cursor of this region
             "  cmpwi r10, POOL_JOBS\n"
             "  bge region_ack_only\n"  // schedule drained
             "  mulli r11, r6, POOL_JOBS\n"
             "  add r11, r11, r10\n"
             "  mulli r11, r11, 12\n"   // 3 words per table entry
          << load32("r12", "pool_table")
          << "  add r11, r11, r12\n"
             "  lwz r7, 4(r11)\n  mtdcr POOL_DST, r7\n"
             "  lwz r7, 8(r11)\n  mtdcr POOL_PARAM, r7\n"
             "  lwz r7, 0(r11)\n  mtdcr POOL_CMD, r7\n"
             "  addi r10, r10, 1\n"
             "  stw r10, 0(r9)\n"
             "region_ack_only:\n"
             "  b isr_ack\n";
    }

    // --------------------------------------------------------------- main
    s << "\n.org 0x1000\n_start:\n";
    s << load32("r30", "MAILBOX") << "  mr r5, r30\n";
    s << "  li r6, 1\n  stw r6, VAR_CUR_ENGINE(r5)\n"
      // start_cie swaps the buffers before programming, so frame 0 lands
      // in CENSUS_A (the testbench convention) when cur starts as B.
      << load32("r6", "CENSUS_B") << "  stw r6, VAR_CEN_CUR(r5)\n"
      << load32("r6", "CENSUS_A") << "  stw r6, VAR_CEN_PREV(r5)\n"
      << "  li r6, 0\n"
         "  stw r6, VAR_BUSY(r5)\n"
         "  stw r6, VAR_DPR_BUSY(r5)\n"
         "  stw r6, VAR_FRAME_READY(r5)\n"
         "  stw r6, VAR_FIELD_READY(r5)\n"
         "  stw r6, MB_FRAMES_DONE(r5)\n"
         "  stw r6, MB_CIE_COUNT(r5)\n"
         "  stw r6, MB_ME_COUNT(r5)\n"
         "  stw r6, MB_DPR_COUNT(r5)\n"
         "  stw r6, MB_FATAL(r5)\n";
    // INTC setup: edge capture unless bug.hw.3; the icap line is only
    // enabled in IRQ wait mode; the pool driver also unmasks the region
    // done lines (bit 8 << (r - 1) for pool region r).
    unsigned ier =
        (cfg.wait == FirmwareConfig::Wait::kIrq && !vm) ? 0b111u : 0b101u;
    if (npool > 0) ier |= ((1u << npool) - 1u) << 3;
    s << "  li r6, " << ier << "\n  mtdcr INTC_IER, r6\n";
    s << "  li r6, " << (f == Fault::kHw3LevelIntc ? 0 : 1)
      << "\n  mtdcr INTC_CTRL, r6\n";
    if (vm && f != Fault::kHw2NoSigInit) {
        // Initialise the signature register so the CIE is resident —
        // omitting this is exactly bug.hw.2.
        s << "  li r6, 1\n  mtdcr SIG_REG, r6\n";
    }
    s << load32("r29", "FIELD_BUF") << load32("r28", "OUT_BUF");
    if (npool > 0) {
        // Pool bring-up: program the invariant staging registers once,
        // seed job 0 of every region (always a reconfiguration) and set
        // the push cursors; the ISR pushes the rest on region-done IRQs.
        s << load32("r6", "POOL_SRC_CUR") << "  mtdcr POOL_SRC, r6\n"
          << load32("r6", "POOL_SRC_PREV") << "  mtdcr POOL_SRC2, r6\n"
          << load32("r6", "POOL_DIMS_VALUE") << "  mtdcr POOL_DIMS, r6\n";
        for (unsigned r = 1; r <= npool; ++r) {
            const PoolJob j0 = pool_job(r, 0);
            s << load32("r6", std::to_string(j0.dst))
              << "  mtdcr POOL_DST, r6\n"
              << load32("r6", std::to_string(j0.param))
              << "  mtdcr POOL_PARAM, r6\n"
              << load32("r6", std::to_string(j0.cmd))
              << "  mtdcr POOL_CMD, r6\n"
              << "  li r6, 1\n  stw r6, VAR_POOL_CUR + " << 4 * (r - 1)
              << "(r5)\n";
        }
    }
    if (f != Fault::kSw4EeStuckOff) {
        // Omitting this single instruction is bug.sw.4: every handler stays
        // dead and the interrupt-driven pipeline never moves.
        s << "  wrteei 1\n";
    }

    // Pipelined main loop: draws the motion markers of the previous frame
    // while the engines (driven by the ISRs) process the next one.
    s << "main_loop:\n"
         "  lwz r14, VAR_FIELD_READY(r30)\n"
         "  cmpwi r14, 0\n"
         "  beq main_loop\n"
         "  li r14, 0\n  stw r14, VAR_FIELD_READY(r30)\n"
         "  li r15, 0\n"           // gy
         "draw_y:\n"
         "  li r16, 0\n"           // gx
         "draw_x:\n"
         "  mulli r17, r15, GW\n"
         "  add r17, r17, r16\n"
         "  slwi r17, r17, 2\n"
         "  add r17, r17, r29\n"
         "  lwz r18, 0(r17)\n"     // motion word
         "  srwi r19, r18, 24\n"
         "  addi r19, r19, -128\n"
         "  srawi r20, r19, 31\n"
         "  xor r19, r19, r20\n"
         "  subf r19, r20, r19\n"  // |dx|
         "  srwi r21, r18, 16\n"
         "  andi. r21, r21, 0xFF\n"
         "  addi r21, r21, -128\n"
         "  srawi r20, r21, 31\n"
         "  xor r21, r21, r20\n"
         "  subf r21, r20, r21\n"  // |dy|
         "  add r19, r19, r21\n"
         "  li r22, 0\n"
         "  cmpwi r19, DRAW_THRESH\n"
         "  blt draw_store\n"
         "draw_mark:\n"
         "  li r22, 255\n"
         "draw_store:\n"
         "  mulli r23, r15, STEP\n"
         "  addi r23, r23, MARGIN\n"
         "  mulli r23, r23, WIDTH\n"
         "  mulli r24, r16, STEP\n"
         "  add r23, r23, r24\n"
         "  addi r23, r23, MARGIN\n"
         "  add r23, r23, r28\n"
         "  stb r22, 0(r23)\n"
         "  addi r16, r16, 1\n"
         "  cmpwi r16, GW\n"
         "  blt draw_x\n"
         "  addi r15, r15, 1\n"
         "  cmpwi r15, GH\n"
         "  blt draw_y\n"
         "  lwz r14, MB_FRAMES_DONE(r30)\n"
         "  addi r14, r14, 1\n"
         "  stw r14, MB_FRAMES_DONE(r30)\n";
    if (cfg.host_io) {
        // Progress tick per drawn frame through the syscall layer: sample
        // the simulated clock, yield the scheduling quantum hint, then
        // putchar('.'). Exercises every non-exit host-IO service (the
        // sw.iss covergroup's goal bins). r0 survives the ISR — handlers
        // only save/restore r3-r12.
        s << "  li r0, 2\n  sc\n"             // clock -> r3 (scratch)
             "  li r0, 3\n  sc\n"             // yield
             "  li r0, 1\n  li r3, 46\n  sc\n";
    }
    if (cfg.exit_after_frames > 0) {
        s << "  cmpwi r14, " << cfg.exit_after_frames << "\n"
             "  blt main_loop\n"
             "  li r0, 0\n  li r3, 0\n  sc\n";  // exit(0); the CPU halts
    }
    s << "  b main_loop\n";

    if (npool > 0) {
        // The generated schedule: 3 words per job — PoolBridge CMD
        // (region | engine << 4 | reconfigure << 8), DST, PARAM.
        s << "\npool_table:\n";
        for (unsigned r = 1; r <= npool; ++r) {
            for (unsigned j = 0; j < cfg.pool_jobs_per_region; ++j) {
                const PoolJob pj = pool_job(r, j);
                s << "  .word " << pj.cmd << ", " << pj.dst << ", "
                  << pj.param << "\n";
            }
        }
    }

    return s.str();
}

isa::Program build_firmware(const FirmwareConfig& cfg) {
    return isa::assemble(build_firmware_source(cfg));
}

}  // namespace autovision::sys
