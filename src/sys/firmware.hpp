// Firmware builder for the Optical Flow Demonstrator.
//
// Generates the embedded software — drivers, interrupt service routines and
// the pipelined main loop of Figure 2 — as PowerPC assembly, parameterised
// by the simulation method (Virtual Multiplexing vs ReSim), the DPR wait
// strategy, the video geometry and the injected fault. The generated source
// is assembled into genuine machine code executed by the ISS.
//
// Method differences follow the paper exactly:
//   * ReSim firmware drives the real reconfiguration machinery: isolate,
//     program IcapCTRL with the staged SimB, start the transfer, and
//     (depending on Wait) take the completion interrupt, poll the done bit,
//     or spin a fixed delay before bringing the new engine up.
//   * VM firmware is the "hacked" variant: the reconfiguration driver is
//     replaced by a write to the simulation-only engine_signature register
//     (zero-delay swap); the IcapCTRL driver never runs.
#pragma once

#include <cstdint>
#include <string>

#include "faults.hpp"
#include "isa/assembler.hpp"

namespace autovision::sys {

struct FirmwareConfig {
    enum class Method { kVm, kResim };
    enum class Wait {
        kIrq,       ///< take the IcapCTRL completion interrupt (reference)
        kPollDone,  ///< poll STATUS.done (bug.sw.1 polls the wrong bit)
        kDelay,     ///< spin a fixed loop (the original driver; bug.dpr.6b
                    ///< when the loop is tuned for the old config clock)
    };

    Method method = Method::kResim;
    Wait wait = Wait::kIrq;
    std::uint32_t delay_loops = 4000;  ///< iterations for Wait::kDelay

    unsigned width = 64;
    unsigned height = 48;
    unsigned step = 4;
    unsigned margin = 8;
    unsigned search = 3;

    std::uint32_t simb_cie_words = 0;  ///< staged SimB lengths (total words)
    std::uint32_t simb_me_words = 0;

    Fault fault = Fault::kNone;

    /// Host-IO opt-in: emit a putchar progress tick (`sc`) per drawn frame.
    /// Off by default so the classic firmware text stays byte-identical.
    bool host_io = false;
    /// When non-zero the main loop calls exit(0) through the syscall layer
    /// after this many frames instead of looping forever.
    std::uint32_t exit_after_frames = 0;

    /// Software-scheduled virtualization pool driver (SystemConfig::
    /// rrm_software). When pool_regions > 0 the firmware carries a
    /// generated per-region job table, seeds one job per region at boot and
    /// pushes the next from the region-done ISR through the rrm::PoolBridge
    /// DCR window — the engine schedule is decided entirely in software.
    /// Zero (the default) keeps the classic firmware text byte-identical.
    unsigned pool_regions = 0;
    unsigned pool_jobs_per_region = 0;
};

/// Generate the assembly source (useful for inspection/tests).
[[nodiscard]] std::string build_firmware_source(const FirmwareConfig& cfg);

/// Assemble it.
[[nodiscard]] isa::Program build_firmware(const FirmwareConfig& cfg);

}  // namespace autovision::sys
