// The integrated Optical Flow Demonstrator.
//
// Instantiates the full Figure 1 architecture: PowerPC ISS + firmware, PLB
// (CPU, IcapCTRL, one boundary master per reconfigurable region, video
// in/out VIPs), main memory, DCR daisy chain (IcapCTRL, isolation, INTC,
// engine registers, engine_signature), interrupt controller, the engine
// library hosted across the reconfigurable regions, and — depending on the
// simulation method — either the ReSim artifacts (ICAP artifact + Extended
// Portal) or the Virtual Multiplexing signature registers.
//
// The default configuration models the paper's demonstrator exactly: one
// region, two engines (CIE / ME), firmware-driven swaps. With
// SystemConfig::regions >= 2 the system additionally elaborates the
// time-shared virtualization pool (src/rrm): regions 1..N-1 each host the
// full engine library behind their own boundary, an autonomous
// RegionManager executes a policy plan over them on a dedicated management
// DCR chain, and an ICAP arbiter serializes their partial bitstreams with
// the CPU's IcapCTRL traffic onto the one configuration port.
#pragma once

#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "address_map.hpp"
#include "bus/dcr.hpp"
#include "bus/intc.hpp"
#include "bus/memory.hpp"
#include "bus/plb.hpp"
#include "engines/census_engine.hpp"
#include "engines/matching_engine.hpp"
#include "firmware.hpp"
#include "isa/cpu.hpp"
#include "kernel/clock.hpp"  // allocation-free Clock/ResetGen event sources
#include "kernel/kernel.hpp"
#include "kernel/prng.hpp"
#include "recon/icap_ctrl.hpp"
#include "recon/isolation.hpp"
#include "recon/rr_boundary.hpp"
#include "resim/icap_artifact.hpp"
#include "resim/portal.hpp"
#include "resim/simb.hpp"
#include "rrm/icap_arbiter.hpp"
#include "rrm/policy.hpp"
#include "rrm/pool_bridge.hpp"
#include "rrm/region_block.hpp"
#include "rrm/region_manager.hpp"
#include "rrm/rrm_section.hpp"
#include "vip/video_vip.hpp"
#include "vm/virtual_mux.hpp"

namespace autovision::sys {

/// Domain-separation tags for rtlsim::derive_seed over SystemConfig::seed
/// (one per RNG-using component of a run).
inline constexpr std::uint64_t kSeedTagScene = 0x5343'454E'45ull;
inline constexpr std::uint64_t kSeedTagSimbCie = 0x5349'4D42'0001ull;
inline constexpr std::uint64_t kSeedTagSimbMe = 0x5349'4D42'0002ull;
inline constexpr std::uint64_t kSeedTagInjector = 0x494E'4A45'4354ull;
// Virtualization-pool consumers (regions >= 2 only).
inline constexpr std::uint64_t kSeedTagRegionCur = 0x5247'4E00'0001ull;
inline constexpr std::uint64_t kSeedTagRegionPrev = 0x5247'4E00'0002ull;
inline constexpr std::uint64_t kSeedTagRegionSimb = 0x5247'4E00'0003ull;
inline constexpr std::uint64_t kSeedTagRegionDeadline = 0x5247'4E00'0004ull;

struct SystemConfig {
    FirmwareConfig::Method method = FirmwareConfig::Method::kResim;
    FirmwareConfig::Wait wait = FirmwareConfig::Wait::kIrq;
    std::uint32_t delay_loops = 6000;
    Fault fault = Fault::kNone;

    /// Canonical run seed. Every RNG-using component of a run — the
    /// synthetic scene textures, the SimB filler payloads, seeded error
    /// injectors, the constrained-random scenario layer — derives its
    /// sub-seed from this one value (rtlsim::derive_seed with a per-consumer
    /// tag), so a run is reproducible from the single number. Seed 1 (the
    /// default) reproduces the historical constants the kernel-invariance
    /// goldens were captured with.
    std::uint64_t seed = 1;

    unsigned width = 64;
    unsigned height = 48;
    unsigned step = 4;
    unsigned margin = 8;
    unsigned search = 3;

    /// FDRI payload length of the staged SimBs. The paper used 4K-word
    /// SimBs for AutoVision and notes ~100 words as the fast-debug choice.
    std::uint32_t simb_payload_words = 100;

    /// Boundary error source during reconfiguration (Section IV-B lets the
    /// default X source be overridden). kGarbage draws its stream from
    /// derive_seed(seed, kSeedTagInjector), so a run stays reproducible
    /// from the one canonical seed.
    enum class Injection { kX, kHoldLast, kZeros, kGarbage };
    Injection injection = Injection::kX;

    unsigned icap_clk_div = 4;    ///< modified (slow) configuration clock
    unsigned icap_fifo_depth = 32;
    rtlsim::Time clk_period = 10 * rtlsim::NS;  ///< 100 MHz system clock
    bool profiling = false;       ///< per-process wall-clock accounting

    /// Event lanes for the parallel evaluate phase (DESIGN.md §13).
    /// 0 = auto: honor the AUTOVISION_LANES environment variable, else
    /// run sequentially. An explicit value (1, 2, 4, ...) is used as-is;
    /// lanes=1 is exactly the sequential kernel path. Results are
    /// bit-exact at every lane count (pinned by the kernel-invariance
    /// suite), so this knob — like profiling — is excluded from the
    /// checkpoint config hash.
    unsigned lanes = 0;

    /// Apply the lanes auto rule: explicit values pass through, 0 reads
    /// AUTOVISION_LANES (clamped to [1, 16]), absent/invalid means 1.
    [[nodiscard]] static unsigned resolve_lanes(unsigned cfg_lanes);

    /// When non-empty, the testbench dumps a VCD of the system's key
    /// signals (clock, region boundary, interrupt lines, stream tap) to
    /// this path for waveform inspection.
    std::string vcd_path;

    /// Structured event tracing (src/obs). When enabled the testbench owns
    /// an EventRecorder, attaches it to every emitting module, and derives
    /// the obs metrics at the end of the run.
    bool trace_events = false;
    std::size_t trace_capacity = 1u << 16;
    /// When non-empty (and trace_events set), the testbench writes a
    /// Chrome-trace / Perfetto JSON of the recorded events to this path.
    std::string trace_path;

    /// Total reconfigurable regions. 1 (the default) is the paper's
    /// demonstrator and is byte-identical to the pre-pool model; >= 2
    /// additionally elaborates the time-shared virtualization pool
    /// (regions 1..N-1, each hosting the full engine library under the
    /// RegionManager). Capped at obs::kMaxRegions.
    unsigned regions = 1;
    rrm::Policy rrm_policy = rrm::Policy::kRoundRobin;
    rrm::IcapArbiter::Grant rrm_grant = rrm::IcapArbiter::Grant::kFair;
    unsigned rrm_jobs_per_region = 2;
    std::uint32_t rrm_payload_words = 16;  ///< pool SimB payload length
    /// Software-scheduled pool (regions >= 2 only): instead of the
    /// autonomous policy plan, the *firmware* decides which engine each
    /// managed region runs next and pushes jobs at run time through the
    /// rrm::PoolBridge DCR window (kDcrPool on the legacy chain). The
    /// RegionManager still executes the full per-swap protocol — only the
    /// scheduling decision moves into the embedded software. Ignored when
    /// regions == 1. Default off keeps every existing configuration (ring
    /// length, firmware text, config hash) byte-identical.
    bool rrm_software = false;

    /// Host-IO syscall layer opt-in (FirmwareConfig::host_io): the firmware
    /// emits a putchar progress tick per drawn frame; when exit_after_frames
    /// is non-zero it exit(0)s through the syscall layer after that many
    /// frames instead of looping forever. Off by default so the classic
    /// firmware text (and config hash) stays byte-identical.
    bool host_io = false;
    std::uint32_t exit_after_frames = 0;
};

class OpticalFlowSystem {
public:
    explicit OpticalFlowSystem(SystemConfig cfg);

    [[nodiscard]] const SystemConfig& config() const { return cfg_; }

    // --- mailbox access ---------------------------------------------------
    [[nodiscard]] std::uint32_t mailbox(std::uint32_t offset) const {
        return mem.peek_u32(kMailbox + offset);
    }

    /// Census buffer used for frame `n` (double-buffered, A first).
    [[nodiscard]] static std::uint32_t census_addr_for_frame(unsigned n) {
        return (n % 2 == 0) ? kCensusA : kCensusB;
    }

    [[nodiscard]] bool is_resim() const {
        return cfg_.method == FirmwareConfig::Method::kResim;
    }

    /// Attach (or detach, with nullptr) a structured event recorder to
    /// every emitting module: DCR chain, INTC, isolation, region boundary,
    /// and — under ReSim — the portal and ICAP artifact.
    void attach_observer(obs::EventRecorder* rec);

    // --- checkpoint -------------------------------------------------------
    /// Identity hash over every semantically relevant SystemConfig field
    /// (output paths excluded); a snapshot only restores into a system
    /// built from an identical configuration.
    [[nodiscard]] static std::uint64_t config_hash(const SystemConfig& cfg);
    [[nodiscard]] std::uint64_t config_hash() const {
        return config_hash(cfg_);
    }

    /// Serialize the complete simulator state (kernel, signals, every
    /// module) into a versioned checkpoint blob. Only legal at a quiescent
    /// point (between run_until quanta); returns false otherwise.
    [[nodiscard]] bool save(std::ostream& os) const;

    /// Restore from a blob into this freshly constructed system. The
    /// manifest's config hash must match this system's configuration.
    /// On failure the system state is indeterminate — discard it.
    [[nodiscard]] bool restore(std::istream& is,
                               std::string* error = nullptr);

    // Construction order matters: members are wired top to bottom.
    SystemConfig cfg_;
    rtlsim::Scheduler sch;
    rtlsim::Clock clk;
    rtlsim::ResetGen rst;
    Memory mem;
    Plb plb;
    DcrChain dcr;
    Intc intc;
    Isolation iso;
    EngineRegs cie_regs;
    EngineRegs me_regs;
    CensusEngine cie;
    MatchingEngine me;
    rtlsim::Signal<rtlsim::Logic> rr_done;
    RrBoundary rr;

    // ReSim artifacts (null under Virtual Multiplexing).
    std::unique_ptr<resim::ExtendedPortal> portal;
    std::unique_ptr<resim::IcapArtifact> icap_artifact;
    // VM artefact (null under ReSim).
    std::unique_ptr<vm::VirtualMux> vmux;
    NullIcap null_icap;

    // Virtualization pool (all null/empty when cfg.regions == 1). The pool
    // lives on its own management DCR chain: the CPU's mtdcr/mfdcr issue
    // unguarded transactions on the legacy chain, so an autonomous second
    // initiator there would collide with them.
    std::unique_ptr<DcrChain> dcr_mgmt;
    std::vector<std::unique_ptr<rrm::RegionBlock>> region_blocks;
    std::unique_ptr<rrm::IcapArbiter> icap_arbiter;  ///< ReSim only
    std::unique_ptr<rrm::RegionManager> region_manager;
    /// CPU-facing DCR window for software-scheduled pools; non-null only
    /// when cfg.rrm_software is set (and regions >= 2).
    std::unique_ptr<rrm::PoolBridge> pool_bridge;

    /// Pool region r (1-based global id) — valid for 1 <= r < cfg.regions.
    [[nodiscard]] rrm::RegionBlock& pool_region(unsigned r) {
        return *region_blocks[r - 1];
    }
    /// Versioned region-array summary of the managed pool (checkpoint
    /// "rrm" section; empty when regions == 1).
    [[nodiscard]] std::vector<rrm::RegionSnapshot> region_snapshots() const;

    /// Stable ICAP sink handed to the IcapCTRL at construction; routed to
    /// the ICAP artifact (ReSim) or the null sink (VM) once those exist.
    class IcapRouter final : public IcapPortIf {
    public:
        void icap_write(rtlsim::Word w) override {
            if (target_ != nullptr) target_->icap_write(w);
        }
        void set_target(IcapPortIf* t) { target_ = t; }

    private:
        IcapPortIf* target_ = nullptr;
    };
    IcapRouter icap_router;

    IcapCtrl icapctrl;
    vip::VideoInVip video_in;
    vip::VideoOutVip video_out;
    isa::Program firmware;
    isa::PpcCpu cpu;

    std::uint32_t simb_cie_words = 0;
    std::uint32_t simb_me_words = 0;
};

}  // namespace autovision::sys
