#include "detection.hpp"

#include <algorithm>
#include <sstream>

#include "campaign/pool.hpp"

namespace autovision::sys {

SystemConfig config_for_fault(SystemConfig base, Fault f) {
    base.fault = f;
    switch (f) {
        case Fault::kSw1PollWrongBit:
            // The bug lives in the polling driver variant.
            base.wait = FirmwareConfig::Wait::kPollDone;
            break;
        case Fault::kDpr6bShortWait:
            // The original delay-based driver, with the loop count tuned
            // for the old fast configuration clock. The system's clock
            // divider (default 4) makes the real transfer far longer.
            base.wait = FirmwareConfig::Wait::kDelay;
            base.delay_loops = 50;
            break;
        default:
            break;
    }
    return base;
}

bool DetectionOutcome::matches_expectation() const {
    switch (fault_info(fault).expected) {
        case ExpectedDetection::kBoth:
            return vm_detected() && resim_detected();
        case ExpectedDetection::kResimOnly:
            return !vm_detected() && resim_detected();
        case ExpectedDetection::kVmFalseAlarm:
            return vm_detected() && !resim_detected();
    }
    return false;
}

std::string DetectionOutcome::row() const {
    const FaultInfo& fi = fault_info(fault);
    std::ostringstream os;
    os << fi.id << " | VM: "
       << (vm_detected() ? "DETECTED" : "passed   ")
       << " | ReSim: " << (resim_detected() ? "DETECTED" : "passed   ")
       << " | expected: ";
    switch (fi.expected) {
        case ExpectedDetection::kBoth: os << "both detect"; break;
        case ExpectedDetection::kResimOnly: os << "ReSim only"; break;
        case ExpectedDetection::kVmFalseAlarm: os << "VM false alarm"; break;
    }
    os << (matches_expectation() ? " [ok]" : " [MISMATCH]");
    return os.str();
}

DetectionOutcome run_detection(const SystemConfig& base, Fault f,
                               unsigned frames,
                               const std::atomic<bool>* cancel) {
    DetectionOutcome out;
    out.fault = f;

    SystemConfig vm_cfg = config_for_fault(base, f);
    vm_cfg.method = FirmwareConfig::Method::kVm;
    Testbench vm_tb(vm_cfg);
    vm_tb.set_cancel_flag(cancel);
    out.vm = vm_tb.run(frames);

    SystemConfig rs_cfg = config_for_fault(base, f);
    rs_cfg.method = FirmwareConfig::Method::kResim;
    Testbench rs_tb(rs_cfg);
    rs_tb.set_cancel_flag(cancel);
    out.resim = rs_tb.run(frames);
    return out;
}

std::vector<DetectionOutcome> run_catalog(const SystemConfig& base,
                                          unsigned frames, unsigned threads) {
    std::vector<Fault> faults;
    for (const FaultInfo& fi : kFaultCatalog) faults.push_back(fi.fault);
    std::vector<DetectionOutcome> out(faults.size());

    const unsigned workers =
        std::min<unsigned>(campaign::resolve_workers(threads),
                           static_cast<unsigned>(faults.size()));

    if (workers <= 1) {
        for (std::size_t i = 0; i < faults.size(); ++i) {
            out[i] = run_detection(base, faults[i], frames);
        }
        return out;
    }

    // Each simulation is fully independent (own scheduler, memory,
    // firmware), so the catalogue is just a batch on the campaign pool.
    campaign::WorkerPool pool(workers, faults.size());
    for (std::size_t i = 0; i < faults.size(); ++i) {
        pool.submit([&, i] { out[i] = run_detection(base, faults[i], frames); });
    }
    pool.drain();
    return out;
}

}  // namespace autovision::sys
