// Full-system testbench for the Optical Flow Demonstrator.
//
// Owns the system, the synthetic video scene, the scoreboard and the
// watchdog; drives the video VIPs (frame pacing follows the firmware's
// consumption, modelling the camera's double-buffered feed) and checks
// every pipeline product (census image, motion field, drawn output) as the
// firmware reports progress through the mailbox.
//
// The run loop advances simulation in small quanta and attributes both
// simulated time and host wall-clock time to the active execution stage
// (CIE / ME / DPR / CPU+ISR) — the measurement behind the Table II
// reproduction.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/recorder.hpp"
#include "system.hpp"
#include "vip/scoreboard.hpp"
#include "video/synth.hpp"

namespace autovision::sys {

/// Per-stage time attribution (Table II rows).
struct StageTimes {
    rtlsim::Time cie_sim = 0;
    rtlsim::Time me_sim = 0;
    rtlsim::Time dpr_sim = 0;
    rtlsim::Time cpu_sim = 0;  ///< "PowerPC interrupt handler + drawing"
    std::chrono::nanoseconds cie_wall{0};
    std::chrono::nanoseconds me_wall{0};
    std::chrono::nanoseconds dpr_wall{0};
    std::chrono::nanoseconds cpu_wall{0};

    [[nodiscard]] rtlsim::Time total_sim() const {
        return cie_sim + me_sim + dpr_sim + cpu_sim;
    }
    [[nodiscard]] std::chrono::nanoseconds total_wall() const {
        return cie_wall + me_wall + dpr_wall + cpu_wall;
    }

    StageTimes& operator+=(const StageTimes& o) {
        cie_sim += o.cie_sim;
        me_sim += o.me_sim;
        dpr_sim += o.dpr_sim;
        cpu_sim += o.cpu_sim;
        cie_wall += o.cie_wall;
        me_wall += o.me_wall;
        dpr_wall += o.dpr_wall;
        cpu_wall += o.cpu_wall;
        return *this;
    }
};

struct RunResult {
    unsigned frames_completed = 0;
    unsigned frames_requested = 0;
    std::size_t census_mismatches = 0;
    std::size_t field_mismatches = 0;
    std::size_t output_mismatches = 0;
    bool watchdog_timeout = false;
    std::vector<rtlsim::Diag> diagnostics;
    rtlsim::SimStats stats;
    rtlsim::Time sim_time = 0;
    std::chrono::nanoseconds wall_time{0};
    StageTimes stages;
    /// Structured-event metrics (valid when `traced`; see SystemConfig
    /// trace_events).
    bool traced = false;
    obs::Metrics metrics;

    [[nodiscard]] bool data_corruption() const {
        return census_mismatches + field_mismatches + output_mismatches > 0;
    }
    /// A clean run: all frames completed, bit-exact data, no checker
    /// diagnostics, no watchdog. Any deviation is a "bug detected".
    [[nodiscard]] bool clean() const {
        return frames_completed == frames_requested && !watchdog_timeout &&
               !data_corruption() && diagnostics.empty();
    }
    /// Short human-readable failure summary ("clean" when none).
    [[nodiscard]] std::string verdict() const;
};

class Testbench {
public:
    /// `scene_seed` = 0 (the default) derives the scene texture seed from
    /// the canonical SystemConfig::seed; a non-zero value overrides it
    /// (legacy call sites and scene-sweep campaigns).
    explicit Testbench(SystemConfig cfg, std::uint32_t scene_seed = 0);

    /// Process `frames` video frames end to end. `watchdog_cycles` = 0
    /// derives a budget from the frame geometry.
    RunResult run(unsigned frames, std::uint64_t watchdog_cycles = 0);

    /// Cooperative cancellation for batch drivers: when the flag is set
    /// (e.g. by a campaign watchdog on another thread), the run loop aborts
    /// at the next quantum and the result reports a watchdog timeout.
    void set_cancel_flag(const std::atomic<bool>* cancel) { cancel_ = cancel; }

    OpticalFlowSystem sys;
    video::SyntheticScene scene;
    vip::Scoreboard scoreboard;

    /// Output frames fetched by the VideoOut VIP (for the examples).
    std::vector<video::Frame> displayed;

    /// The structured event recorder (null unless trace_events was set).
    [[nodiscard]] obs::EventRecorder* recorder() { return recorder_.get(); }

private:
    void send_frame(unsigned index);

    unsigned frames_sent_ = 0;
    const std::atomic<bool>* cancel_ = nullptr;
    // VCD dumping (active when SystemConfig::vcd_path is set).
    std::unique_ptr<std::ofstream> vcd_file_;
    std::unique_ptr<rtlsim::Tracer> tracer_;
    // Structured event tracing (active when SystemConfig::trace_events).
    std::unique_ptr<obs::EventRecorder> recorder_;
};

}  // namespace autovision::sys
