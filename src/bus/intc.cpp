#include "intc.hpp"

#include <cassert>

namespace autovision {

using rtlsim::is1;
using rtlsim::is_unknown;

Intc::Intc(Scheduler& sch, const std::string& name, Signal<Logic>& clk,
           Signal<Logic>& rst, std::uint32_t dcr_base)
    : Module(sch, name),
      irq(sch, full_name() + ".irq", Logic::L0),
      clk_(clk),
      rst_(rst),
      base_(dcr_base) {
    prev_.fill(Logic::L0);
    sync_proc("capture", [this] { on_clock(); }, {rtlsim::posedge(clk_)});
}

unsigned Intc::attach(Signal<Logic>& line) {
    assert(lines_.size() < kMaxLines);
    lines_.push_back(&line);
    return static_cast<unsigned>(lines_.size() - 1);
}

void Intc::on_clock() {
    if (is1(rst_.read())) {
        isr_ = LVec<kMaxLines>{0};
        prev_.fill(Logic::L0);
        irq.write(Logic::L0);
        irq_prev_ = false;
        return;
    }

    for (unsigned i = 0; i < lines_.size(); ++i) {
        const Logic cur = lines_[i]->read();
        if (is_unknown(cur)) {
            // Corruption (typically an unisolated RR driving the done line)
            // poisons the status bit; report the first few occurrences.
            isr_.set_bit(i, Logic::X);
            if (x_reports_ < 5) {
                ++x_reports_;
                report("X on interrupt input " + std::to_string(i));
            }
        } else if (edge_capture_) {
            if (is1(cur) && !is1(prev_[i])) isr_.set_bit(i, Logic::L1);
        } else {
            // Level capture: status mirrors the (possibly one-cycle) input.
            // This is the misconfiguration of bug.hw.3 — pulses are lost
            // unless the CPU happens to sample during the pulse.
            isr_.set_bit(i, cur);
        }
        prev_[i] = cur;
    }

    const Logic level = (isr_ & ier_).reduce_or();
    irq.write(level);
    const bool asserted = is1(level);
    if (obs_ != nullptr && asserted && !irq_prev_) {
        obs_->record(sch_.now(), obs::EventKind::kIrqRaise,
                     obs::Source::kIntc,
                     static_cast<std::uint32_t>(isr_.val_plane()));
    }
    irq_prev_ = asserted;
}

bool Intc::dcr_claims(std::uint32_t regno) const {
    return regno >= base_ && regno < base_ + 4;
}

Word Intc::dcr_read(std::uint32_t regno) {
    switch (regno - base_) {
        case kIsr: return Word::from_planes(isr_.val_plane(), isr_.unk_plane());
        case kIer: return Word::from_planes(ier_.val_plane(), ier_.unk_plane());
        case kCtrl: return Word{edge_capture_ ? 1u : 0u};
        default: return Word{0};
    }
}

void Intc::dcr_write(std::uint32_t regno, Word w) {
    switch (regno - base_) {
        case kIsr:
            // Testbench hook: software-settable status bits (as on XPS INTC).
            isr_ = isr_ | LVec<kMaxLines>::from_planes(w.val_plane(),
                                                       w.unk_plane());
            break;
        case kIer:
            ier_ = LVec<kMaxLines>::from_planes(w.val_plane(), w.unk_plane());
            break;
        case kIar:
            if (w.is_fully_defined()) {
                // Clear acknowledged bits, including poisoned ones.
                const auto ack = static_cast<std::uint8_t>(w.to_u64());
                isr_ = LVec<kMaxLines>::from_planes(
                    isr_.val_plane() & ~ack, isr_.unk_plane() & ~ack);
                if (obs_ != nullptr && ack != 0) {
                    obs_->record(sch_.now(), obs::EventKind::kIrqAck,
                                 obs::Source::kIntc, ack);
                }
            }
            break;
        case kCtrl:
            if (w.is_fully_defined()) edge_capture_ = (w.to_u64() & 1u) != 0;
            break;
        default: break;
    }
}

}  // namespace autovision
