#include "dcr.hpp"

#include <cassert>

namespace autovision {

using rtlsim::is1;

DcrChain::DcrChain(Scheduler& sch, const std::string& name, Signal<Logic>& clk,
                   Signal<Logic>& rst)
    : Module(sch, name), clk_(clk), rst_(rst) {
    sync_proc("ring", [this] { on_clock(); }, {rtlsim::posedge(clk_)});
}

void DcrChain::start_read(std::uint32_t regno, std::function<void(Word)> done) {
    assert(!busy_ && "DCR transaction already in flight");
    busy_ = true;
    is_read_ = true;
    claimed_ = false;
    corrupted_ = false;
    regno_ = regno;
    data_ = Word::all_x();  // reads return X unless a node supplies data
    pos_ = 0;
    rd_done_ = std::move(done);
}

void DcrChain::start_write(std::uint32_t regno, Word data,
                           std::function<void()> done) {
    assert(!busy_ && "DCR transaction already in flight");
    busy_ = true;
    is_read_ = false;
    claimed_ = false;
    corrupted_ = false;
    regno_ = regno;
    data_ = data;
    pos_ = 0;
    wr_done_ = std::move(done);
}

void DcrChain::ckpt_save(rtlsim::SnapWriter& w) const {
    w.bool8(busy_);
    w.bool8(is_read_);
    w.bool8(claimed_);
    w.bool8(corrupted_);
    w.bool8(corruption_reported_);
    w.u32(regno_);
    w.u64((static_cast<std::uint64_t>(data_.val_plane()) << 32) |
          data_.unk_plane());
    w.u64(pos_);
}

bool DcrChain::ckpt_restore(rtlsim::SnapReader& r) {
    busy_ = r.bool8();
    is_read_ = r.bool8();
    claimed_ = r.bool8();
    corrupted_ = r.bool8();
    corruption_reported_ = r.bool8();
    regno_ = r.u32();
    const std::uint64_t planes = r.u64();
    data_ = Word::from_planes(planes >> 32, planes & 0xFFFF'FFFFull);
    pos_ = r.u64();
    return r.ok_so_far() && pos_ <= nodes_.size();
}

void DcrChain::on_clock() {
    if (is1(rst_.read())) {
        busy_ = false;
        pos_ = 0;
        return;
    }
    if (!busy_) return;

    if (pos_ < nodes_.size()) {
        DcrSlaveIf* n = nodes_[pos_];
        if (n->dcr_corrupted()) {
            // The node's flip-flops are mid-reconfiguration: the token is
            // destroyed for the rest of the ring. Report once per event so
            // the log points at the broken daisy chain directly.
            corrupted_ = true;
            data_ = Word::all_x();
            if (!corruption_reported_) {
                corruption_reported_ = true;
                report("DCR daisy chain broken at node '" + n->dcr_name() +
                       "' (registers inside a reconfiguring region)");
            }
        } else if (!corrupted_ && !claimed_ && n->dcr_claims(regno_)) {
            claimed_ = true;
            if (is_read_) {
                data_ = n->dcr_read(regno_);
            } else {
                n->dcr_write(regno_, data_);
            }
        }
        ++pos_;
        return;
    }

    // Token returned to the master.
    if (!claimed_ && !corrupted_) {
        report("DCR " + std::string(is_read_ ? "read" : "write") +
               " of unclaimed register 0x" + std::to_string(regno_));
    }
    busy_ = false;
    corruption_reported_ = false;
    if (obs_ != nullptr) {
        obs_->record(sch_.now(),
                     is_read_ ? obs::EventKind::kDcrRead
                              : obs::EventKind::kDcrWrite,
                     obs::Source::kDcr, regno_,
                     data_.is_fully_defined() ? data_.to_u64() : ~0ull);
    }
    if (is_read_) {
        if (rd_done_) {
            auto f = std::move(rd_done_);
            rd_done_ = {};
            f(data_);
        }
    } else if (wr_done_) {
        auto f = std::move(wr_done_);
        wr_done_ = {};
        f();
    }
}

}  // namespace autovision
