// Device Control Register (DCR) bus model.
//
// The DCR bus of the PowerPC/CoreConnect architecture is a daisy chain: the
// command/data token passes through every slave in ring order, one node per
// cycle. This topology is load-bearing for the case study: if a slave's DCR
// registers sit *inside* the reconfigurable region, the X values injected
// during reconfiguration corrupt the token at that node and everything
// downstream — the paper's motivation for moving the engines' DCR registers
// out of the RR, and our detection mechanism for bug.dpr.2.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "kernel/kernel.hpp"
#include "obs/recorder.hpp"

namespace autovision {

using rtlsim::Logic;
using rtlsim::Module;
using rtlsim::Scheduler;
using rtlsim::Signal;
using rtlsim::Word;

/// A slave node on the DCR ring.
class DcrSlaveIf {
public:
    virtual ~DcrSlaveIf() = default;

    /// True when this node decodes the 10-bit DCR register number.
    [[nodiscard]] virtual bool dcr_claims(std::uint32_t regno) const = 0;
    [[nodiscard]] virtual Word dcr_read(std::uint32_t regno) = 0;
    virtual void dcr_write(std::uint32_t regno, Word w) = 0;
    [[nodiscard]] virtual std::string dcr_name() const = 0;

    /// True while the node's flip-flops are being overwritten by a partial
    /// reconfiguration (i.e. the node was left inside the RR). A corrupted
    /// node turns the passing token to X.
    [[nodiscard]] virtual bool dcr_corrupted() const { return false; }
};

/// The ring master (the CPU's DCR interface) plus the chain itself.
///
/// mfdcr/mtdcr on a real PPC405 stall the pipeline until the token returns;
/// the ISS calls start_read/start_write and spins on busy().
class DcrChain final : public Module {
public:
    DcrChain(Scheduler& sch, const std::string& name, Signal<Logic>& clk,
             Signal<Logic>& rst);

    /// Nodes are traversed in attach order.
    void attach(DcrSlaveIf& node) { nodes_.push_back(&node); }

    /// Issue a read of DCR register `regno`. `done(data)` fires when the
    /// token returns; data is all-X when the chain was corrupted or nobody
    /// claimed the register.
    void start_read(std::uint32_t regno, std::function<void(Word)> done);

    /// Issue a write. `done` fires when the token returns.
    void start_write(std::uint32_t regno, Word data,
                     std::function<void()> done = {});

    [[nodiscard]] bool busy() const { return busy_; }

    /// Transaction latency in cycles (ring length + issue/retire).
    [[nodiscard]] unsigned latency() const {
        return static_cast<unsigned>(nodes_.size()) + 2;
    }

    /// Attach (or detach, with nullptr) the structured event recorder.
    void set_observer(obs::EventRecorder* rec) { obs_ = rec; }

    // --- checkpoint ------------------------------------------------------
    /// Ring token state. The issuer's completion closure is re-armed by the
    /// CPU (or harness) via ckpt_rearm_* after its own state is restored.
    void ckpt_save(rtlsim::SnapWriter& w) const;
    [[nodiscard]] bool ckpt_restore(rtlsim::SnapReader& r);
    /// Restore-time closure re-install; unlike start_read/start_write these
    /// do not touch the token state (the transaction is already in flight).
    void ckpt_rearm_read(std::function<void(Word)> done) {
        rd_done_ = std::move(done);
    }
    void ckpt_rearm_write(std::function<void()> done) {
        wr_done_ = std::move(done);
    }

private:
    void on_clock();

    obs::EventRecorder* obs_ = nullptr;

    Signal<Logic>& clk_;
    Signal<Logic>& rst_;
    std::vector<DcrSlaveIf*> nodes_;

    bool busy_ = false;
    bool is_read_ = false;
    bool claimed_ = false;
    bool corrupted_ = false;
    bool corruption_reported_ = false;
    std::uint32_t regno_ = 0;
    Word data_{0};
    std::size_t pos_ = 0;
    std::function<void(Word)> rd_done_;
    std::function<void()> wr_done_;
};

}  // namespace autovision
