#include "plb.hpp"

#include <algorithm>

namespace autovision {

using rtlsim::is0;
using rtlsim::is1;
using rtlsim::is_unknown;

// ----------------------------------------------------------- PlbMasterPort

PlbMasterPort::PlbMasterPort(Scheduler& sch, const std::string& prefix)
    : req(sch, prefix + ".req", Logic::L0),
      rnw(sch, prefix + ".rnw", Logic::L1),
      addr(sch, prefix + ".addr", Word{0}),
      nbeats(sch, prefix + ".nbeats", LVec<16>{1}),
      wdata(sch, prefix + ".wdata", Word{0}),
      grant(sch, prefix + ".grant", Logic::L0),
      rd_ack(sch, prefix + ".rd_ack", Logic::L0),
      rdata(sch, prefix + ".rdata", Word{0}),
      wr_ack(sch, prefix + ".wr_ack", Logic::L0),
      done(sch, prefix + ".done", Logic::L0),
      err(sch, prefix + ".err", Logic::L0) {}

void PlbMasterPort::idle() {
    req.write(Logic::L0);
    rnw.write(Logic::L1);
    addr.write(Word{0});
    nbeats.write(LVec<16>{1});
    wdata.write(Word{0});
}

void PlbMasterPort::drive_x() {
    req.write(Logic::X);
    rnw.write(Logic::X);
    addr.write(Word::all_x());
    nbeats.write(LVec<16>::all_x());
    wdata.write(Word::all_x());
}

// --------------------------------------------------------------------- Plb

Plb::Plb(Scheduler& sch, const std::string& name, Signal<Logic>& clk,
         Signal<Logic>& rst, Config cfg)
    : Module(sch, name), cfg_(cfg), clk_(clk), rst_(rst) {
    ports_.reserve(cfg_.num_masters);
    for (unsigned i = 0; i < cfg_.num_masters; ++i) {
        ports_.push_back(std::make_unique<PlbMasterPort>(
            sch, full_name() + ".m" + std::to_string(i)));
    }
    starve_.assign(cfg_.num_masters, 0);
    x_reports_.assign(cfg_.num_masters, 0);
    mcounters_.assign(cfg_.num_masters, MasterCounters{});
    sync_proc("fsm", [this] { on_clock(); }, {rtlsim::posedge(clk_)});
}

PlbSlaveIf* Plb::decode(std::uint32_t addr) const {
    for (PlbSlaveIf* s : slaves_) {
        if (s->claims(addr)) return s;
    }
    return nullptr;
}

void Plb::clear_pulses() {
    for (auto& p : ports_) {
        p->grant.write(Logic::L0);
        p->rd_ack.write(Logic::L0);
        p->wr_ack.write(Logic::L0);
        p->done.write(Logic::L0);
        p->err.write(Logic::L0);
    }
}

void Plb::check_master_signals(unsigned m) {
    PlbMasterPort& p = *ports_[m];
    if (is_unknown(p.req.read()) && x_reports_[m] < 5) {
        ++x_reports_[m];
        report("protocol: X/Z on req of master " + std::to_string(m) +
               " — unisolated reconfiguration traffic?");
    }
}

void Plb::arbitrate() {
    // Round-robin scan starting after the last granted master.
    const unsigned n = num_masters();
    for (unsigned k = 1; k <= n; ++k) {
        const unsigned m = (last_granted_ + k) % n;
        PlbMasterPort& p = *ports_[m];
        if (!is1(p.req.read())) continue;

        // Validate the address phase before granting.
        if (p.addr.read().has_unknown() || is_unknown(p.rnw.read()) ||
            p.nbeats.read().has_unknown()) {
            if (x_reports_[m] < 5) {
                ++x_reports_[m];
                report("protocol: X in address phase of master " +
                       std::to_string(m));
            }
            continue;
        }

        const auto addr32 = static_cast<std::uint32_t>(p.addr.read().to_u64());
        unsigned beats = static_cast<unsigned>(p.nbeats.read().to_u64());
        if (beats == 0) beats = 1;

        PlbSlaveIf* s = decode(addr32);
        if (s == nullptr) {
            ++counters_.decode_errors;
            report("decode error: no slave claims address 0x" +
                   [addr32] {
                       char buf[16];
                       std::snprintf(buf, sizeof buf, "%08x", addr32);
                       return std::string(buf);
                   }());
            p.err.write(Logic::L1);
            last_granted_ = m;
            state_ = St::Cooldown;
            return;
        }

        if (cfg_.max_burst != 0 && beats > cfg_.max_burst) {
            ++counters_.truncations;
            report("protocol: burst of " + std::to_string(beats) +
                   " beats exceeds bus maximum of " +
                   std::to_string(cfg_.max_burst) + "; truncated");
            beats = cfg_.max_burst;
        }

        ++counters_.transactions;
        ++mcounters_[m].transactions;
        owner_ = m;
        last_granted_ = m;
        slave_ = s;
        cursor_ = addr32;
        beats_left_ = beats;
        starve_[m] = 0;
        p.grant.write(Logic::L1);
        if (is1(p.rnw.read())) {
            wait_left_ = s->read_latency();
            state_ = wait_left_ == 0 ? St::ReadBurst : St::ReadWait;
        } else {
            // One dead cycle after grant lets the master's first data word
            // settle before the bus consumes it.
            state_ = St::WriteGap;
        }
        return;
    }
}

void Plb::on_clock() {
    if (is1(rst_.read())) {
        clear_pulses();
        state_ = St::Idle;
        std::fill(starve_.begin(), starve_.end(), 0u);
        return;
    }

    clear_pulses();
    ++counters_.total_cycles;
    if (state_ != St::Idle) ++counters_.busy_cycles;

    // Starvation accounting and X sniffing run every cycle.
    for (unsigned m = 0; m < num_masters(); ++m) {
        check_master_signals(m);
        if (is1(ports_[m]->req.read()) &&
            !(state_ != St::Idle && m == owner_)) {
            ++mcounters_[m].grant_wait_cycles;
            if (++starve_[m] == cfg_.grant_timeout) {
                report("starvation: master " + std::to_string(m) +
                       " waited " + std::to_string(cfg_.grant_timeout) +
                       " cycles for grant");
                starve_[m] = 0;
            }
        } else if (state_ != St::Idle && m == owner_) {
            starve_[m] = 0;
        }
    }

    // Mid-burst abandonment: the owner dropped req while others are waiting.
    if (state_ != St::Idle && state_ != St::Cooldown) {
        PlbMasterPort& p = *ports_[owner_];
        if (is0(p.req.read())) {
            bool contended = false;
            for (unsigned m = 0; m < num_masters(); ++m) {
                if (m != owner_ && is1(ports_[m]->req.read())) contended = true;
            }
            if (contended) {
                ++counters_.aborts;
                report("protocol: master " + std::to_string(owner_) +
                       " released req mid-burst; transaction aborted");
                state_ = St::Idle;
            }
            // With no contention the grant stays parked (point-to-point
            // tolerance) and the burst continues.
        }
    }

    switch (state_) {
        case St::Idle:
            arbitrate();
            break;

        case St::ReadWait:
            if (--wait_left_ == 0) state_ = St::ReadBurst;
            break;

        case St::ReadBurst: {
            PlbMasterPort& p = *ports_[owner_];
            p.rdata.write(slave_->plb_read(cursor_));
            p.rd_ack.write(Logic::L1);
            ++counters_.read_beats;
            ++mcounters_[owner_].read_beats;
            cursor_ += 4;
            if (--beats_left_ == 0) {
                p.done.write(Logic::L1);
                state_ = St::Cooldown;
            }
            break;
        }

        case St::WriteBeat: {
            PlbMasterPort& p = *ports_[owner_];
            const Word w = p.wdata.read();
            if (w.has_unknown() && x_reports_[owner_] < 5) {
                ++x_reports_[owner_];
                report("protocol: X in write data of master " +
                       std::to_string(owner_));
            }
            slave_->plb_write(cursor_, w);
            p.wr_ack.write(Logic::L1);
            ++counters_.write_beats;
            ++mcounters_[owner_].write_beats;
            cursor_ += 4;
            if (--beats_left_ == 0) {
                p.done.write(Logic::L1);
                state_ = St::Cooldown;
            } else {
                state_ = St::WriteGap;
            }
            break;
        }

        case St::WriteGap:
            state_ = St::WriteBeat;
            break;

        case St::Cooldown:
            state_ = St::Idle;
            break;
    }
}

void Plb::ckpt_save(rtlsim::SnapWriter& w) const {
    w.u8(static_cast<std::uint8_t>(state_));
    w.u32(owner_);
    w.u32(last_granted_);
    w.u32(cursor_);
    w.u32(beats_left_);
    w.u32(wait_left_);
    w.u64(counters_.transactions);
    w.u64(counters_.read_beats);
    w.u64(counters_.write_beats);
    w.u64(counters_.truncations);
    w.u64(counters_.aborts);
    w.u64(counters_.decode_errors);
    w.u64(counters_.busy_cycles);
    w.u64(counters_.total_cycles);
    for (const MasterCounters& mc : mcounters_) {
        w.u64(mc.transactions);
        w.u64(mc.read_beats);
        w.u64(mc.write_beats);
        w.u64(mc.grant_wait_cycles);
    }
    for (unsigned s : starve_) w.u32(s);
    for (unsigned x : x_reports_) w.u32(x);
}

bool Plb::ckpt_restore(rtlsim::SnapReader& r) {
    state_ = static_cast<St>(r.u8());
    owner_ = r.u32();
    last_granted_ = r.u32();
    cursor_ = r.u32();
    beats_left_ = r.u32();
    wait_left_ = r.u32();
    counters_.transactions = r.u64();
    counters_.read_beats = r.u64();
    counters_.write_beats = r.u64();
    counters_.truncations = r.u64();
    counters_.aborts = r.u64();
    counters_.decode_errors = r.u64();
    counters_.busy_cycles = r.u64();
    counters_.total_cycles = r.u64();
    for (MasterCounters& mc : mcounters_) {
        mc.transactions = r.u64();
        mc.read_beats = r.u64();
        mc.write_beats = r.u64();
        mc.grant_wait_cycles = r.u64();
    }
    for (unsigned& s : starve_) s = r.u32();
    for (unsigned& x : x_reports_) x = r.u32();
    if (owner_ >= num_masters()) return false;
    slave_ = nullptr;
    if (state_ == St::ReadWait || state_ == St::ReadBurst ||
        state_ == St::WriteBeat || state_ == St::WriteGap) {
        slave_ = decode(cursor_);
        if (slave_ == nullptr) return false;
    }
    return r.ok_so_far();
}

// --------------------------------------------------------------- DmaMaster

DmaMaster::DmaMaster(PlbMasterPort& port, unsigned burst_limit)
    : port_(port), burst_limit_(burst_limit) {}

void DmaMaster::start_read(std::uint32_t addr, std::uint32_t nwords,
                           std::function<void(std::uint32_t, Word)> sink,
                           std::function<void()> on_done) {
    addr_ = addr;
    remaining_ = nwords;
    total_ = nwords;
    idx_ = 0;
    reading_ = true;
    sink_ = std::move(sink);
    on_done_ = std::move(on_done);
    if (nwords == 0) {
        state_ = St::Idle;
        if (on_done_) on_done_();
        return;
    }
    begin_burst();
}

void DmaMaster::start_write(std::uint32_t addr, std::uint32_t nwords,
                            std::function<Word(std::uint32_t)> src,
                            std::function<void()> on_done) {
    addr_ = addr;
    remaining_ = nwords;
    total_ = nwords;
    idx_ = 0;
    reading_ = false;
    src_ = std::move(src);
    on_done_ = std::move(on_done);
    if (nwords == 0) {
        state_ = St::Idle;
        if (on_done_) on_done_();
        return;
    }
    begin_burst();
}

void DmaMaster::begin_burst() {
    failed_ = false;
    burst_beats_ = (burst_limit_ == 0)
                       ? remaining_
                       : std::min<std::uint32_t>(burst_limit_, remaining_);
    port_.addr.write(Word{addr_});
    port_.nbeats.write(LVec<16>{burst_beats_});
    port_.rnw.write(reading_ ? Logic::L1 : Logic::L0);
    if (!reading_) port_.wdata.write(src_(idx_));
    port_.req.write(Logic::L1);
    state_ = St::Req;
}

void DmaMaster::reset() {
    state_ = St::Idle;
    port_.idle();
    sink_ = {};
    src_ = {};
    on_done_ = {};
}

void DmaMaster::ckpt_save(rtlsim::SnapWriter& w) const {
    w.u8(static_cast<std::uint8_t>(state_));
    w.bool8(reading_);
    w.bool8(failed_);
    w.u32(addr_);
    w.u32(remaining_);
    w.u32(total_);
    w.u32(idx_);
    w.u32(burst_beats_);
}

bool DmaMaster::ckpt_restore(rtlsim::SnapReader& r) {
    state_ = static_cast<St>(r.u8());
    reading_ = r.bool8();
    failed_ = r.bool8();
    addr_ = r.u32();
    remaining_ = r.u32();
    total_ = r.u32();
    idx_ = r.u32();
    burst_beats_ = r.u32();
    return r.ok_so_far();
}

void DmaMaster::step() {
    switch (state_) {
        case St::Idle:
            break;

        case St::Req:
            if (is1(port_.err.read())) {
                // Address decode error: abandon the transfer so the bus is
                // not re-requested forever. The error stays visible through
                // failed() and the bus checker's diagnostic.
                failed_ = true;
                state_ = St::Idle;
                port_.idle();
                if (on_done_) {
                    auto f = std::move(on_done_);
                    on_done_ = {};
                    f();
                }
                break;
            }
            if (is1(port_.grant.read())) state_ = St::Xfer;
            break;

        case St::Xfer: {
            if (reading_ && is1(port_.rd_ack.read())) {
                if (sink_) sink_(idx_, port_.rdata.read());
                ++idx_;
            }
            if (!reading_ && is1(port_.wr_ack.read())) {
                ++idx_;
                if (src_ && idx_ < total_) port_.wdata.write(src_(idx_));
            }
            if (is1(port_.done.read())) {
                // The burst the bus completed may have been truncated; the
                // master cannot see that (it is exactly how bug.dpr.4
                // silently under-transfers), so it advances by what it asked
                // for, saturating to avoid wrap.
                const std::uint32_t advanced =
                    std::min<std::uint32_t>(burst_beats_, remaining_);
                remaining_ -= advanced;
                addr_ += 4 * advanced;
                port_.req.write(Logic::L0);
                if (remaining_ > 0) {
                    state_ = St::Gap;
                } else {
                    state_ = St::Idle;
                    port_.idle();
                    if (on_done_) {
                        auto f = std::move(on_done_);
                        on_done_ = {};
                        f();
                    }
                }
            }
            break;
        }

        case St::Gap:
            begin_burst();
            break;
    }
}

}  // namespace autovision
