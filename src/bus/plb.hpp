// Processor Local Bus (PLB) model.
//
// A cycle-accurate, multi-master, burst-capable system bus modelled on the
// IBM CoreConnect PLB used by the AutoVision demonstrator. The model keeps
// the properties the case study's bugs depend on:
//   * arbitration among several masters (CPU, IcapCTRL, video engines, VIPs);
//   * a maximum burst length in shared mode (exceeding it is the mechanism
//     behind bug.dpr.4 — an IP configured for a point-to-point link issues
//     one huge burst, which a shared bus cannot honour);
//   * 4-state data/address paths, so X injected by a region undergoing
//     reconfiguration is observable on the bus (isolation bugs);
//   * an embedded protocol checker that reports X on control/address lines,
//     over-length bursts, decode misses, mid-burst request drops and grant
//     starvation to the scheduler's diagnostics.
//
// Master protocol (see DmaMaster for a canonical implementation):
//   1. Drive addr/rnw/nbeats and assert req; hold them stable until grant.
//   2. Keep req asserted for the whole burst; deasserting early aborts the
//      remainder if another master is waiting.
//   3. Reads: one beat per cycle after the slave's read latency; rdata is
//      valid in each rd_ack cycle. Writes: the bus consumes wdata in each
//      wr_ack cycle; a one-cycle gap follows each beat so the master can
//      present the next word race-free (one word per two cycles).
//   4. done pulses with the final beat; deassert req for at least one cycle
//      before issuing a new transaction.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "kernel/kernel.hpp"

namespace autovision {

using rtlsim::Edge;
using rtlsim::Logic;
using rtlsim::LVec;
using rtlsim::Module;
using rtlsim::Scheduler;
using rtlsim::Signal;
using rtlsim::Word;

/// Signal bundle between one master and the bus.
struct PlbMasterPort {
    // Driven by the master.
    Signal<Logic> req;
    Signal<Logic> rnw;           ///< 1 = read, 0 = write
    Signal<Word> addr;           ///< byte address of the first beat
    Signal<LVec<16>> nbeats;     ///< burst length in 32-bit words (>=1)
    Signal<Word> wdata;

    // Driven by the bus.
    Signal<Logic> grant;   ///< one-cycle pulse: transaction accepted
    Signal<Logic> rd_ack;  ///< rdata valid this cycle
    Signal<Word> rdata;
    Signal<Logic> wr_ack;  ///< wdata consumed this cycle
    Signal<Logic> done;    ///< one-cycle pulse with the final beat
    Signal<Logic> err;     ///< one-cycle pulse: address decode error

    PlbMasterPort(Scheduler& sch, const std::string& prefix);

    /// Drive all master-owned outputs to benign idle levels.
    void idle();

    /// Drive all master-owned outputs to X (what a region undergoing
    /// reconfiguration looks like without isolation).
    void drive_x();
};

/// Functional slave interface. The bus FSM provides the cycle accuracy
/// (arbitration, latency, beat pacing); slaves only supply/accept data.
class PlbSlaveIf {
public:
    virtual ~PlbSlaveIf() = default;

    /// True when this slave decodes the given byte address.
    [[nodiscard]] virtual bool claims(std::uint32_t addr) const = 0;

    /// Wait states before the first read beat of a burst.
    [[nodiscard]] virtual unsigned read_latency() const { return 4; }

    [[nodiscard]] virtual Word plb_read(std::uint32_t addr) = 0;
    virtual void plb_write(std::uint32_t addr, Word w) = 0;

    [[nodiscard]] virtual std::string plb_name() const = 0;
};

/// The bus: arbiter + datapath + protocol checker.
class Plb final : public Module {
public:
    struct Config {
        unsigned num_masters = 1;
        /// Maximum beats per burst the bus honours. 0 = unlimited
        /// (point-to-point link). Over-length bursts on a bounded bus are
        /// truncated and reported — the bug.dpr.4 mechanism.
        unsigned max_burst = 16;
        /// Cycles a master may wait for grant before the checker reports
        /// starvation (a hung system symptom).
        unsigned grant_timeout = 50000;
    };

    struct Counters {
        std::uint64_t transactions = 0;
        std::uint64_t read_beats = 0;
        std::uint64_t write_beats = 0;
        std::uint64_t truncations = 0;
        std::uint64_t aborts = 0;
        std::uint64_t decode_errors = 0;
        std::uint64_t busy_cycles = 0;   ///< cycles with a transaction open
        std::uint64_t total_cycles = 0;  ///< cycles out of reset
    };

    /// Per-master accounting, for bandwidth/utilisation reporting.
    struct MasterCounters {
        std::uint64_t transactions = 0;
        std::uint64_t read_beats = 0;
        std::uint64_t write_beats = 0;
        std::uint64_t grant_wait_cycles = 0;  ///< req asserted, not owner
    };

    Plb(Scheduler& sch, const std::string& name, Signal<Logic>& clk,
        Signal<Logic>& rst, Config cfg);

    [[nodiscard]] PlbMasterPort& master(unsigned i) { return *ports_[i]; }
    [[nodiscard]] unsigned num_masters() const {
        return static_cast<unsigned>(ports_.size());
    }

    /// Slaves are probed in attach order; the first claimant wins.
    void attach_slave(PlbSlaveIf& s) { slaves_.push_back(&s); }

    [[nodiscard]] const Counters& counters() const { return counters_; }
    [[nodiscard]] const MasterCounters& master_counters(unsigned i) const {
        return mcounters_[i];
    }
    /// Fraction of out-of-reset cycles with a transaction in progress.
    [[nodiscard]] double utilisation() const {
        return counters_.total_cycles == 0
                   ? 0.0
                   : static_cast<double>(counters_.busy_cycles) /
                         static_cast<double>(counters_.total_cycles);
    }
    [[nodiscard]] const Config& config() const { return cfg_; }

    // --- checkpoint ------------------------------------------------------
    /// Arbiter/datapath FSM + counters. The decoded slave pointer is not
    /// serialized; restore re-derives it from the burst cursor (a burst
    /// never crosses a slave's decode window).
    void ckpt_save(rtlsim::SnapWriter& w) const;
    [[nodiscard]] bool ckpt_restore(rtlsim::SnapReader& r);

private:
    enum class St { Idle, ReadWait, ReadBurst, WriteBeat, WriteGap, Cooldown };

    void on_clock();
    void arbitrate();
    void clear_pulses();
    PlbSlaveIf* decode(std::uint32_t addr) const;
    void check_master_signals(unsigned m);

    Config cfg_;
    Signal<Logic>& clk_;
    Signal<Logic>& rst_;
    std::vector<std::unique_ptr<PlbMasterPort>> ports_;
    std::vector<PlbSlaveIf*> slaves_;
    Counters counters_;
    std::vector<MasterCounters> mcounters_;

    St state_ = St::Idle;
    unsigned owner_ = 0;
    unsigned last_granted_ = 0;  // round-robin pointer
    PlbSlaveIf* slave_ = nullptr;
    std::uint32_t cursor_ = 0;
    unsigned beats_left_ = 0;
    unsigned wait_left_ = 0;
    std::vector<unsigned> starve_;      // grant-wait cycles per master
    std::vector<unsigned> x_reports_;   // X diagnostics emitted per master
};

/// Reusable DMA master FSM implementing the port protocol correctly
/// (burst splitting, request holding, inter-burst gaps). Engines, the
/// IcapCTRL, the video VIPs and the CPU's load/store unit all build on it.
class DmaMaster {
public:
    /// `burst_limit` caps the beats the master asks for per burst; 0 means
    /// "issue everything as one burst" (only correct on a point-to-point
    /// link — see bug.dpr.4).
    DmaMaster(PlbMasterPort& port, unsigned burst_limit);

    /// Begin a read of `nwords` 32-bit words from byte address `addr`.
    /// `sink(i, w)` receives word i; `on_done` fires after the final word.
    void start_read(std::uint32_t addr, std::uint32_t nwords,
                    std::function<void(std::uint32_t, Word)> sink,
                    std::function<void()> on_done = {});

    /// Begin a write of `nwords` words; `src(i)` supplies word i.
    void start_write(std::uint32_t addr, std::uint32_t nwords,
                     std::function<Word(std::uint32_t)> src,
                     std::function<void()> on_done = {});

    /// Advance one cycle; call from the owning module's posedge process.
    void step();

    /// Abort any transfer and idle the port.
    void reset();

    [[nodiscard]] bool busy() const { return state_ != St::Idle; }
    [[nodiscard]] std::uint32_t words_done() const { return idx_; }
    [[nodiscard]] std::uint32_t words_total() const { return total_; }
    /// True when the last transfer ended with a bus error (decode miss).
    [[nodiscard]] bool failed() const { return failed_; }

    // --- checkpoint ------------------------------------------------------
    /// POD transfer state only; the data closures cannot be serialized and
    /// are re-installed by the owning module via ckpt_rearm() after its own
    /// descriptor state is restored.
    void ckpt_save(rtlsim::SnapWriter& w) const;
    [[nodiscard]] bool ckpt_restore(rtlsim::SnapReader& r);
    /// Re-install the completion closures without touching the transfer
    /// state or driving the port (the port signals are restored wholesale
    /// by the scheduler's signal registry).
    void ckpt_rearm(std::function<void(std::uint32_t, Word)> sink,
                    std::function<Word(std::uint32_t)> src,
                    std::function<void()> on_done) {
        sink_ = std::move(sink);
        src_ = std::move(src);
        on_done_ = std::move(on_done);
    }

private:
    enum class St { Idle, Req, Xfer, Gap };

    void begin_burst();

    PlbMasterPort& port_;
    unsigned burst_limit_;
    St state_ = St::Idle;
    bool reading_ = true;
    bool failed_ = false;
    std::uint32_t addr_ = 0;
    std::uint32_t remaining_ = 0;
    std::uint32_t total_ = 0;
    std::uint32_t idx_ = 0;
    unsigned burst_beats_ = 0;
    std::function<void(std::uint32_t, Word)> sink_;
    std::function<Word(std::uint32_t)> src_;
    std::function<void()> on_done_;
};

}  // namespace autovision
