#include "memory.hpp"

#include <cassert>

namespace autovision {

Memory::Memory() : Memory(Config{}) {}

Memory::Memory(Config cfg) : cfg_(cfg) {
    assert(cfg_.size_bytes % 4 == 0);
    words_.assign(cfg_.size_bytes / 4, Word{0});
    page_dirty_.assign((words_.size() + kPageWords - 1) / kPageWords, 0);
    page_gen_.assign(page_dirty_.size(), 0);
}

bool Memory::claims(std::uint32_t addr) const {
    return addr >= cfg_.base && addr - cfg_.base < cfg_.size_bytes;
}

std::size_t Memory::index(std::uint32_t addr) const {
    assert(claims(addr) && "memory access out of range");
    return (addr - cfg_.base) / 4;
}

Word Memory::plb_read(std::uint32_t addr) { return words_[index(addr)]; }

void Memory::plb_write(std::uint32_t addr, Word w) {
    const std::size_t i = index(addr);
    on_write(i, addr);
    words_[i] = w;
}

Word Memory::peek(std::uint32_t addr) const { return words_[index(addr)]; }

void Memory::poke(std::uint32_t addr, Word w) {
    const std::size_t i = index(addr);
    on_write(i, addr);
    words_[i] = w;
}

std::uint32_t Memory::peek_u32(std::uint32_t addr, bool* ok) const {
    const Word w = words_[index(addr)];
    if (ok != nullptr) *ok = w.is_fully_defined();
    return static_cast<std::uint32_t>(w.to_u64());
}

void Memory::poke_u32(std::uint32_t addr, std::uint32_t v) {
    const std::size_t i = index(addr);
    on_write(i, addr);
    words_[i] = Word{v};
}

std::uint8_t Memory::peek_u8(std::uint32_t addr, bool* ok) const {
    const Word w = words_[index(addr & ~3u)];
    const unsigned lane = addr & 3u;        // 0 = most significant (BE)
    const unsigned shift = (3u - lane) * 8;
    const Word b = (w >> shift) & Word{0xFF};
    if (ok != nullptr) *ok = b.is_fully_defined();
    return static_cast<std::uint8_t>(b.to_u64());
}

void Memory::poke_u8(std::uint32_t addr, std::uint8_t v) {
    const std::size_t i = index(addr & ~3u);
    on_write(i, addr);
    Word& w = words_[i];
    const unsigned shift = (3u - (addr & 3u)) * 8;
    const Word mask = Word{0xFFu} << shift;
    w = (w & ~mask) | (Word{v} << shift);
}

std::uint16_t Memory::peek_u16(std::uint32_t addr, bool* ok) const {
    assert((addr & 1u) == 0 && "halfword access must be aligned");
    const Word w = words_[index(addr & ~3u)];
    const unsigned shift = (addr & 2u) ? 0 : 16;  // BE halfword lanes
    const Word h = (w >> shift) & Word{0xFFFF};
    if (ok != nullptr) *ok = h.is_fully_defined();
    return static_cast<std::uint16_t>(h.to_u64());
}

void Memory::poke_u16(std::uint32_t addr, std::uint16_t v) {
    assert((addr & 1u) == 0 && "halfword access must be aligned");
    const std::size_t i = index(addr & ~3u);
    on_write(i, addr);
    Word& w = words_[i];
    const unsigned shift = (addr & 2u) ? 0 : 16;
    const Word mask = Word{0xFFFFu} << shift;
    w = (w & ~mask) | (Word{v} << shift);
}

void Memory::load_words(std::uint32_t addr,
                        std::span<const std::uint32_t> ws) {
    for (std::uint32_t v : ws) {
        poke_u32(addr, v);
        addr += 4;
    }
}

void Memory::load_bytes(std::uint32_t addr, std::span<const std::uint8_t> bs) {
    for (std::uint8_t b : bs) poke_u8(addr++, b);
}

bool Memory::range_has_unknown(std::uint32_t addr,
                               std::uint32_t len_bytes) const {
    for (std::uint32_t a = addr & ~3u; a < addr + len_bytes; a += 4) {
        if (words_[index(a)].has_unknown()) return true;
    }
    return false;
}

}  // namespace autovision
