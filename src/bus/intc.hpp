// Interrupt controller (DCR slave).
//
// Modelled on the Xilinx XPS INTC programming model, reduced to what the
// demonstrator's ISR-driven processing flow needs: a latching status
// register, an enable mask, write-one-to-acknowledge, and a per-controller
// edge/level capture mode. The capture mode is the handle for bug.hw.3:
// engines pulse their done lines for a single cycle, which *edge* capture
// latches but *level* capture loses whenever the CPU is stalled on the bus.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "dcr.hpp"
#include "kernel/kernel.hpp"

namespace autovision {

using rtlsim::LVec;

class Intc final : public Module, public DcrSlaveIf {
public:
    static constexpr unsigned kMaxLines = 8;

    /// DCR register offsets from `base`.
    enum Reg : std::uint32_t {
        kIsr = 0,   ///< interrupt status (read); write = set bits (test hook)
        kIer = 1,   ///< interrupt enable mask
        kIar = 2,   ///< write 1s to acknowledge/clear status bits
        kCtrl = 3,  ///< bit0: 1 = edge capture (correct), 0 = level capture
    };

    Intc(Scheduler& sch, const std::string& name, Signal<Logic>& clk,
         Signal<Logic>& rst, std::uint32_t dcr_base);

    /// Connect the next interrupt input; returns the line index.
    unsigned attach(Signal<Logic>& line);

    /// Level-sensitive interrupt request to the CPU: 1 while any enabled
    /// status bit is set; X if corruption reached the controller.
    Signal<Logic> irq;

    // --- DcrSlaveIf ------------------------------------------------------
    [[nodiscard]] bool dcr_claims(std::uint32_t regno) const override;
    [[nodiscard]] Word dcr_read(std::uint32_t regno) override;
    void dcr_write(std::uint32_t regno, Word w) override;
    [[nodiscard]] std::string dcr_name() const override { return full_name(); }

    /// Attach (or detach, with nullptr) the structured event recorder.
    void set_observer(obs::EventRecorder* rec) { obs_ = rec; }

    // --- checkpoint ------------------------------------------------------
    void ckpt_save(rtlsim::SnapWriter& w) const {
        w.bool8(irq_prev_);
        for (Logic l : prev_) w.u8(static_cast<std::uint8_t>(l));
        w.u64(isr_.val_plane());
        w.u64(isr_.unk_plane());
        w.u64(ier_.val_plane());
        w.u64(ier_.unk_plane());
        w.bool8(edge_capture_);
        w.u32(x_reports_);
    }
    [[nodiscard]] bool ckpt_restore(rtlsim::SnapReader& r) {
        irq_prev_ = r.bool8();
        for (Logic& l : prev_) l = static_cast<Logic>(r.u8());
        const std::uint64_t iv = r.u64();
        const std::uint64_t iu = r.u64();
        isr_ = LVec<kMaxLines>::from_planes(iv, iu);
        const std::uint64_t ev = r.u64();
        const std::uint64_t eu = r.u64();
        ier_ = LVec<kMaxLines>::from_planes(ev, eu);
        edge_capture_ = r.bool8();
        x_reports_ = r.u32();
        return r.ok_so_far();
    }

private:
    void on_clock();

    obs::EventRecorder* obs_ = nullptr;
    bool irq_prev_ = false;
    Signal<Logic>& clk_;
    Signal<Logic>& rst_;
    std::uint32_t base_;
    std::vector<Signal<Logic>*> lines_;
    std::array<Logic, kMaxLines> prev_{};

    LVec<kMaxLines> isr_{0};
    LVec<kMaxLines> ier_{0};
    bool edge_capture_ = true;
    unsigned x_reports_ = 0;
};

}  // namespace autovision
