// Main memory model (DDR controller + SDRAM behind a PLB slave port).
//
// Word-organised, big-endian byte lanes (PowerPC convention). Data is stored
// as 4-state Words so corruption injected on the bus (X during an unisolated
// reconfiguration) is preserved and later observable by scoreboards and by
// the CPU. A backdoor interface gives testbench components (firmware loader,
// video VIPs, scoreboards) zero-time access, mirroring how HDL testbenches
// preload memory models.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "kernel/kernel.hpp"
#include "plb.hpp"

namespace autovision {

class Memory final : public PlbSlaveIf {
public:
    struct Config {
        std::uint32_t base = 0x0000'0000;
        std::uint32_t size_bytes = 8u << 20;  ///< 8 MiB default
        unsigned read_latency = 4;            ///< wait states, first beat
    };

    Memory();
    explicit Memory(Config cfg);

    // --- PLB slave interface -------------------------------------------
    [[nodiscard]] bool claims(std::uint32_t addr) const override;
    [[nodiscard]] unsigned read_latency() const override {
        return cfg_.read_latency;
    }
    [[nodiscard]] Word plb_read(std::uint32_t addr) override;
    void plb_write(std::uint32_t addr, Word w) override;
    [[nodiscard]] std::string plb_name() const override { return "memory"; }

    // --- backdoor (zero simulated time) ---------------------------------
    /// Word access; addr is a byte address, word-aligned.
    [[nodiscard]] Word peek(std::uint32_t addr) const;
    void poke(std::uint32_t addr, Word w);

    /// Defined-value helpers; peek_u32 reports unknown bits to the caller
    /// via `ok` so the ISS can trap fetches of corrupted memory.
    [[nodiscard]] std::uint32_t peek_u32(std::uint32_t addr,
                                         bool* ok = nullptr) const;
    void poke_u32(std::uint32_t addr, std::uint32_t v);

    /// Byte access with big-endian lane selection.
    [[nodiscard]] std::uint8_t peek_u8(std::uint32_t addr,
                                       bool* ok = nullptr) const;
    void poke_u8(std::uint32_t addr, std::uint8_t v);

    [[nodiscard]] std::uint16_t peek_u16(std::uint32_t addr,
                                         bool* ok = nullptr) const;
    void poke_u16(std::uint32_t addr, std::uint16_t v);

    /// Bulk loads used by the firmware loader and bitstream staging.
    void load_words(std::uint32_t addr, std::span<const std::uint32_t> ws);
    void load_bytes(std::uint32_t addr, std::span<const std::uint8_t> bs);

    /// True when any word in [addr, addr+len_bytes) has unknown bits.
    [[nodiscard]] bool range_has_unknown(std::uint32_t addr,
                                         std::uint32_t len_bytes) const;

    [[nodiscard]] std::uint32_t base() const { return cfg_.base; }
    [[nodiscard]] std::uint32_t size_bytes() const { return cfg_.size_bytes; }

private:
    [[nodiscard]] std::size_t index(std::uint32_t addr) const;

    Config cfg_;
    std::vector<Word> words_;
};

}  // namespace autovision
