// Main memory model (DDR controller + SDRAM behind a PLB slave port).
//
// Word-organised, big-endian byte lanes (PowerPC convention). Data is stored
// as 4-state Words so corruption injected on the bus (X during an unisolated
// reconfiguration) is preserved and later observable by scoreboards and by
// the CPU. A backdoor interface gives testbench components (firmware loader,
// video VIPs, scoreboards) zero-time access, mirroring how HDL testbenches
// preload memory models.
#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <span>
#include <string>
#include <vector>

#include "kernel/kernel.hpp"
#include "plb.hpp"

namespace autovision {

class Memory final : public PlbSlaveIf {
public:
    struct Config {
        std::uint32_t base = 0x0000'0000;
        std::uint32_t size_bytes = 8u << 20;  ///< 8 MiB default
        unsigned read_latency = 4;            ///< wait states, first beat
    };

    Memory();
    explicit Memory(Config cfg);

    // --- PLB slave interface -------------------------------------------
    [[nodiscard]] bool claims(std::uint32_t addr) const override;
    [[nodiscard]] unsigned read_latency() const override {
        return cfg_.read_latency;
    }
    [[nodiscard]] Word plb_read(std::uint32_t addr) override;
    void plb_write(std::uint32_t addr, Word w) override;
    [[nodiscard]] std::string plb_name() const override { return "memory"; }

    // --- backdoor (zero simulated time) ---------------------------------
    /// Word access; addr is a byte address, word-aligned.
    [[nodiscard]] Word peek(std::uint32_t addr) const;
    void poke(std::uint32_t addr, Word w);

    /// Defined-value helpers; peek_u32 reports unknown bits to the caller
    /// via `ok` so the ISS can trap fetches of corrupted memory.
    [[nodiscard]] std::uint32_t peek_u32(std::uint32_t addr,
                                         bool* ok = nullptr) const;
    void poke_u32(std::uint32_t addr, std::uint32_t v);

    /// Byte access with big-endian lane selection.
    [[nodiscard]] std::uint8_t peek_u8(std::uint32_t addr,
                                       bool* ok = nullptr) const;
    void poke_u8(std::uint32_t addr, std::uint8_t v);

    [[nodiscard]] std::uint16_t peek_u16(std::uint32_t addr,
                                         bool* ok = nullptr) const;
    void poke_u16(std::uint32_t addr, std::uint16_t v);

    /// Bulk loads used by the firmware loader and bitstream staging.
    void load_words(std::uint32_t addr, std::span<const std::uint32_t> ws);
    void load_bytes(std::uint32_t addr, std::span<const std::uint8_t> bs);

    /// True when any word in [addr, addr+len_bytes) has unknown bits.
    [[nodiscard]] bool range_has_unknown(std::uint32_t addr,
                                         std::uint32_t len_bytes) const;

    [[nodiscard]] std::uint32_t base() const { return cfg_.base; }
    [[nodiscard]] std::uint32_t size_bytes() const { return cfg_.size_bytes; }

    // --- write tracking (ISS decode cache) -------------------------------
    /// Pages are kPageWords words (4 KiB). The generation counter of a page
    /// bumps on every front-door or backdoor write into it; the ISS decode
    /// cache snapshots the generation at block-decode time and re-decodes
    /// when it moved (store-to-code detection without per-word shadow
    /// state). Checkpoint restore deliberately does NOT bump generations —
    /// the CPU flushes its cache wholesale on restore instead, so the
    /// counters (and the optional observer) stay out of the snapshot bytes.
    static constexpr std::size_t kPageWords = 1024;  ///< 4 KiB pages
    [[nodiscard]] std::size_t page_of(std::uint32_t addr) const {
        return index(addr) / kPageWords;
    }
    [[nodiscard]] std::uint32_t page_gen(std::size_t page) const {
        return page_gen_[page];
    }
    /// Immediate notification per written word (byte address); used by the
    /// sleeping ISS to wake on a DMA store into code it pre-executed. At
    /// most one observer; null clears. Not serialized — harness-side state.
    void set_write_observer(std::function<void(std::uint32_t)> obs) {
        write_obs_ = std::move(obs);
    }

    // --- checkpoint ------------------------------------------------------
    /// RLE over the 4-state image: each word's (val<<32 | unk) planes form
    /// one u64 run value, so the zero-dominated image stays tiny.
    void ckpt_save(rtlsim::SnapWriter& w) const {
        rtlsim::snap_rle_u64(w, words_.size(), [this](std::size_t i) {
            return (static_cast<std::uint64_t>(words_[i].val_plane()) << 32) |
                   words_[i].unk_plane();
        });
    }
    /// Restore cost scales with the *touched* footprint, not the memory
    /// size: a page whose dirty bit is clear still holds the init value
    /// Word{0} everywhere (the bit is set on every write), so an all-zero
    /// run only needs to re-fill the dirty pages it covers. An 8 MiB
    /// image whose firmware + frame buffers span a few dozen pages
    /// restores in microseconds instead of a 2M-word sweep.
    [[nodiscard]] bool ckpt_restore(rtlsim::SnapReader& r) {
        return rtlsim::snap_unrle_u64_runs(
            r, words_.size(),
            [this](std::size_t i, std::uint64_t run, std::uint64_t v) {
                const std::size_t p0 = i / kPageWords;
                const std::size_t p1 = (i + run - 1) / kPageWords;
                if (v != 0) {
                    std::fill_n(
                        words_.begin() + static_cast<std::ptrdiff_t>(i), run,
                        Word::from_planes(v >> 32, v & 0xFFFF'FFFFull));
                    for (std::size_t p = p0; p <= p1; ++p) page_dirty_[p] = 1;
                    return;
                }
                for (std::size_t p = p0; p <= p1; ++p) {
                    if (page_dirty_[p] == 0) continue;  // already all zero
                    const std::size_t lo = std::max(i, p * kPageWords);
                    const std::size_t hi = std::min(
                        {i + run, (p + 1) * kPageWords, words_.size()});
                    std::fill(words_.begin() + static_cast<std::ptrdiff_t>(lo),
                              words_.begin() + static_cast<std::ptrdiff_t>(hi),
                              Word{0});
                    // Fully zeroed pages are back to the init image; a
                    // partially covered page stays conservatively dirty.
                    if (lo == p * kPageWords &&
                        hi == std::min((p + 1) * kPageWords, words_.size())) {
                        page_dirty_[p] = 0;
                    }
                }
            });
    }

private:
    [[nodiscard]] std::size_t index(std::uint32_t addr) const;

    /// Every mutating path funnels here: dirty bit, generation bump, and
    /// the optional write observer. `i` is the word index, `addr` the byte
    /// address as presented by the writer.
    void on_write(std::size_t i, std::uint32_t addr) {
        page_dirty_[i / kPageWords] = 1;
        ++page_gen_[i / kPageWords];
        if (write_obs_) write_obs_(addr);
    }

    Config cfg_;
    std::vector<Word> words_;
    /// One byte per page; nonzero = some word in the page has been written
    /// since construction (its content may differ from the init Word{0}).
    std::vector<std::uint8_t> page_dirty_;
    /// Monotone per-page write counter (see the write-tracking section).
    std::vector<std::uint32_t> page_gen_;
    std::function<void(std::uint32_t)> write_obs_;
};

}  // namespace autovision
