#include "census.hpp"

namespace autovision::video {

std::uint8_t census_signature(const Frame& f, unsigned x, unsigned y) {
    const std::uint8_t c = f.at(x, y);
    std::uint8_t sig = 0;
    for (int i = 0; i < 8; ++i) {
        const std::uint8_t n = f.at_clamped(static_cast<int>(x) + kCensusOffsets[i][0],
                                            static_cast<int>(y) + kCensusOffsets[i][1]);
        sig = static_cast<std::uint8_t>(sig << 1);
        if (n > c) sig |= 1;
    }
    return sig;
}

Frame census_transform(const Frame& f) {
    Frame out(f.width(), f.height());
    for (unsigned y = 0; y < f.height(); ++y) {
        for (unsigned x = 0; x < f.width(); ++x) {
            out.at(x, y) = census_signature(f, x, y);
        }
    }
    return out;
}

}  // namespace autovision::video
