#include "frame.hpp"

#include <algorithm>
#include <fstream>
#include <stdexcept>

namespace autovision::video {

std::uint8_t Frame::at_clamped(int x, int y) const {
    const int cx = std::clamp(x, 0, static_cast<int>(w_) - 1);
    const int cy = std::clamp(y, 0, static_cast<int>(h_) - 1);
    return at(static_cast<unsigned>(cx), static_cast<unsigned>(cy));
}

std::size_t Frame::count_mismatches(const Frame& o) const {
    if (w_ != o.w_ || h_ != o.h_) return size() + o.size();
    std::size_t n = 0;
    for (std::size_t i = 0; i < pix_.size(); ++i) {
        if (pix_[i] != o.pix_[i]) ++n;
    }
    return n;
}

void write_pgm(const Frame& f, const std::string& path) {
    std::ofstream os(path, std::ios::binary);
    if (!os) throw std::runtime_error("cannot open for write: " + path);
    os << "P5\n" << f.width() << ' ' << f.height() << "\n255\n";
    os.write(reinterpret_cast<const char*>(f.pixels().data()),
             static_cast<std::streamsize>(f.size()));
    if (!os) throw std::runtime_error("write failed: " + path);
}

namespace {
int next_token(std::istream& is) {
    // Skip whitespace and '#' comments, then parse an integer.
    char c;
    while (is.get(c)) {
        if (c == '#') {
            while (is.get(c) && c != '\n') {
            }
        } else if (!std::isspace(static_cast<unsigned char>(c))) {
            is.unget();
            int v;
            is >> v;
            return v;
        }
    }
    throw std::runtime_error("unexpected end of PGM header");
}
}  // namespace

Frame read_pgm(const std::string& path) {
    std::ifstream is(path, std::ios::binary);
    if (!is) throw std::runtime_error("cannot open for read: " + path);
    char m0;
    char m1;
    is.get(m0);
    is.get(m1);
    if (m0 != 'P' || m1 != '5') throw std::runtime_error("not a P5 PGM");
    const int w = next_token(is);
    const int h = next_token(is);
    const int maxv = next_token(is);
    if (w <= 0 || h <= 0 || maxv != 255) {
        throw std::runtime_error("unsupported PGM geometry");
    }
    is.get();  // single whitespace after maxval
    Frame f(static_cast<unsigned>(w), static_cast<unsigned>(h));
    is.read(reinterpret_cast<char*>(f.pixels().data()),
            static_cast<std::streamsize>(f.size()));
    if (!is) throw std::runtime_error("truncated PGM payload: " + path);
    return f;
}

void write_ppm(const Frame& r, const Frame& g, const Frame& b,
               const std::string& path) {
    if (r.width() != g.width() || g.width() != b.width() ||
        r.height() != g.height() || g.height() != b.height()) {
        throw std::runtime_error("PPM planes must have equal geometry");
    }
    std::ofstream os(path, std::ios::binary);
    if (!os) throw std::runtime_error("cannot open for write: " + path);
    os << "P6\n" << r.width() << ' ' << r.height() << "\n255\n";
    for (std::size_t i = 0; i < r.size(); ++i) {
        os.put(static_cast<char>(r.pixels()[i]));
        os.put(static_cast<char>(g.pixels()[i]));
        os.put(static_cast<char>(b.pixels()[i]));
    }
    if (!os) throw std::runtime_error("write failed: " + path);
}

}  // namespace autovision::video
