// Video frames and portable image I/O.
//
// Frames are 8-bit grayscale, row-major. The demonstrator's memory layout
// packs 4 pixels per 32-bit word, big-endian (pixel (0,0) in the most
// significant byte), matching the PowerPC byte order used everywhere else.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace autovision::video {

class Frame {
public:
    Frame() = default;
    Frame(unsigned width, unsigned height, std::uint8_t fill = 0)
        : w_(width), h_(height), pix_(std::size_t{width} * height, fill) {}

    [[nodiscard]] unsigned width() const noexcept { return w_; }
    [[nodiscard]] unsigned height() const noexcept { return h_; }
    [[nodiscard]] std::size_t size() const noexcept { return pix_.size(); }
    [[nodiscard]] bool empty() const noexcept { return pix_.empty(); }

    [[nodiscard]] std::uint8_t at(unsigned x, unsigned y) const {
        return pix_[std::size_t{y} * w_ + x];
    }
    std::uint8_t& at(unsigned x, unsigned y) {
        return pix_[std::size_t{y} * w_ + x];
    }

    /// Clamped access: coordinates outside the frame read the nearest edge
    /// pixel (the border policy of the census engine).
    [[nodiscard]] std::uint8_t at_clamped(int x, int y) const;

    [[nodiscard]] std::span<const std::uint8_t> pixels() const noexcept {
        return pix_;
    }
    [[nodiscard]] std::span<std::uint8_t> pixels() noexcept { return pix_; }

    [[nodiscard]] bool operator==(const Frame& o) const = default;

    /// Number of differing pixels vs another frame of the same geometry.
    [[nodiscard]] std::size_t count_mismatches(const Frame& o) const;

    /// Size of the frame in 32-bit memory words (4 pixels per word).
    [[nodiscard]] std::uint32_t words() const {
        return static_cast<std::uint32_t>((size() + 3) / 4);
    }

private:
    unsigned w_ = 0;
    unsigned h_ = 0;
    std::vector<std::uint8_t> pix_;
};

/// Write a binary PGM (P5). Throws std::runtime_error on I/O failure.
void write_pgm(const Frame& f, const std::string& path);

/// Read a binary PGM (P5). Throws std::runtime_error on parse failure.
[[nodiscard]] Frame read_pgm(const std::string& path);

/// Write a binary PPM (P6) from three equal-size planes (used by the
/// examples to render motion overlays in colour).
void write_ppm(const Frame& r, const Frame& g, const Frame& b,
               const std::string& path);

}  // namespace autovision::video
