// Block-matching optical flow over census images — golden reference model
// for the Matching Engine.
//
// For each point of a regular grid, the matcher searches a +/-R window in
// the *previous* frame's census image for the displacement that minimises
// the Hamming distance over a small patch of census signatures. The result
// is the motion vector of that grid point between the two frames.
//
// The RTL Matching Engine implements the identical algorithm (same scan
// order, same tie-break) so the scoreboard can require bit-exact motion
// words in memory.
#pragma once

#include <cstdint>
#include <vector>

#include "frame.hpp"

namespace autovision::video {

struct MatchConfig {
    unsigned step = 4;    ///< grid pitch in pixels
    unsigned margin = 8;  ///< border to skip (must cover search + patch)
    int search = 4;       ///< search window radius, pixels
    int patch = 1;        ///< patch radius (1 => 3x3 signatures)

    [[nodiscard]] bool operator==(const MatchConfig&) const = default;
};

struct MotionVector {
    unsigned x = 0;  ///< grid point, pixel coordinates
    unsigned y = 0;
    int dx = 0;      ///< displacement previous -> current
    int dy = 0;
    unsigned cost = 0;  ///< winning Hamming cost

    [[nodiscard]] bool operator==(const MotionVector&) const = default;
};

/// Memory encoding used by the Matching Engine: one 32-bit word per grid
/// point, row-major over the grid.
///   [31:24] dx + 128   [23:16] dy + 128   [15:0] cost
[[nodiscard]] std::uint32_t encode_motion_word(const MotionVector& v);
[[nodiscard]] MotionVector decode_motion_word(std::uint32_t w, unsigned x,
                                              unsigned y);

struct MotionField {
    MatchConfig cfg;
    unsigned frame_w = 0;
    unsigned frame_h = 0;
    std::vector<MotionVector> vectors;  ///< row-major over the grid

    [[nodiscard]] unsigned grid_w() const;
    [[nodiscard]] unsigned grid_h() const;
    [[nodiscard]] const MotionVector& at(unsigned gx, unsigned gy) const {
        return vectors[std::size_t{gy} * grid_w() + gx];
    }
};

/// Grid geometry helper shared by the reference model, the RTL engine and
/// the scoreboard: the number of grid points along an axis of length `dim`.
[[nodiscard]] unsigned grid_points(unsigned dim, const MatchConfig& cfg);

/// Hamming cost of displacement (dx, dy) at grid point (x, y).
[[nodiscard]] unsigned match_cost(const Frame& prev_census,
                                  const Frame& cur_census, unsigned x,
                                  unsigned y, int dx, int dy,
                                  const MatchConfig& cfg);

/// Full-field match. `num_threads` > 1 splits grid rows across worker
/// threads; results are identical regardless of thread count (each grid
/// point is independent).
[[nodiscard]] MotionField match_census(const Frame& prev_census,
                                       const Frame& cur_census,
                                       const MatchConfig& cfg,
                                       unsigned num_threads = 1);

/// Render a colour overlay: the input frame in grayscale with motion
/// vectors above `min_mag` drawn as bright traces. Returns R/G/B planes
/// suitable for write_ppm.
void make_overlay(const Frame& base, const MotionField& field,
                  unsigned min_mag, Frame& r, Frame& g, Frame& b);

/// Temporal-difference motion energy: the per-pixel absolute difference
/// between the current and previous frame (saturates at 255 trivially —
/// |a - b| of two bytes never exceeds it). The cheapest of the library's
/// motion cues; the Flow Engine implements the identical transform.
[[nodiscard]] std::uint8_t flow_energy(std::uint8_t cur, std::uint8_t prev);

/// Whole-frame motion-energy image. Frames must share geometry.
[[nodiscard]] Frame flow_energy_transform(const Frame& cur, const Frame& prev);

}  // namespace autovision::video
