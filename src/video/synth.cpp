#include "synth.hpp"

namespace autovision::video {

namespace {

/// Deterministic 32-bit LCG (Numerical Recipes constants); portable across
/// platforms unlike std::rand.
class Lcg {
public:
    explicit Lcg(std::uint32_t seed) : s_(seed) {}
    std::uint32_t next() {
        s_ = s_ * 1664525u + 1013904223u;
        return s_;
    }
    std::uint8_t byte() { return static_cast<std::uint8_t>(next() >> 24); }

private:
    std::uint32_t s_;
};

}  // namespace

SceneConfig SceneConfig::standard(unsigned width, unsigned height,
                                  std::uint32_t seed) {
    SceneConfig cfg;
    cfg.width = width;
    cfg.height = height;
    cfg.seed = seed;
    const int w = static_cast<int>(width);
    const int h = static_cast<int>(height);
    // A fast "car" crossing left-to-right and a slower one drifting down.
    cfg.objects.push_back(MovingObject{w / 8, h / 3, width / 4, height / 4,
                                       /*vx=*/2, /*vy=*/0, 210});
    cfg.objects.push_back(MovingObject{w / 2, h / 8, width / 5, height / 5,
                                       /*vx=*/-1, /*vy=*/1, 120});
    return cfg;
}

SyntheticScene::SyntheticScene(SceneConfig cfg) : cfg_(std::move(cfg)) {
    // Textured background: low-amplitude noise over a horizontal gradient so
    // the census transform has structure everywhere (a flat background would
    // make matching degenerate).
    background_ = Frame(cfg_.width, cfg_.height);
    Lcg rng(cfg_.seed);
    for (unsigned y = 0; y < cfg_.height; ++y) {
        for (unsigned x = 0; x < cfg_.width; ++x) {
            const auto grad =
                static_cast<std::uint8_t>(40 + (x * 80) / cfg_.width);
            background_.at(x, y) =
                static_cast<std::uint8_t>(grad + rng.byte() % 32);
        }
    }
    // Per-object texture, distinct seed per object.
    for (std::size_t i = 0; i < cfg_.objects.size(); ++i) {
        const MovingObject& o = cfg_.objects[i];
        Frame tex(o.w, o.h);
        Lcg trng(cfg_.seed * 7919u + static_cast<std::uint32_t>(i) + 1);
        for (unsigned y = 0; y < o.h; ++y) {
            for (unsigned x = 0; x < o.w; ++x) {
                tex.at(x, y) = static_cast<std::uint8_t>(
                    o.base_luma / 2 + trng.byte() % (o.base_luma / 2 + 1));
            }
        }
        textures_.push_back(std::move(tex));
    }
}

Frame SyntheticScene::frame(unsigned t) const {
    Frame f = background_;
    for (std::size_t i = 0; i < cfg_.objects.size(); ++i) {
        const MovingObject& o = cfg_.objects[i];
        const int ox = o.x0 + o.vx * static_cast<int>(t);
        const int oy = o.y0 + o.vy * static_cast<int>(t);
        for (unsigned ty = 0; ty < o.h; ++ty) {
            for (unsigned tx = 0; tx < o.w; ++tx) {
                const int px = ox + static_cast<int>(tx);
                const int py = oy + static_cast<int>(ty);
                if (px < 0 || py < 0 ||
                    px >= static_cast<int>(cfg_.width) ||
                    py >= static_cast<int>(cfg_.height)) {
                    continue;
                }
                f.at(static_cast<unsigned>(px), static_cast<unsigned>(py)) =
                    textures_[i].at(tx, ty);
            }
        }
    }
    return f;
}

bool SyntheticScene::ground_truth(unsigned t, unsigned x, unsigned y, int& dx,
                                  int& dy) const {
    // Topmost (last-drawn) object wins, matching frame() paint order.
    for (std::size_t i = cfg_.objects.size(); i-- > 0;) {
        const MovingObject& o = cfg_.objects[i];
        const int ox = o.x0 + o.vx * static_cast<int>(t);
        const int oy = o.y0 + o.vy * static_cast<int>(t);
        const int lx = static_cast<int>(x) - ox;
        const int ly = static_cast<int>(y) - oy;
        if (lx >= 0 && ly >= 0 && lx < static_cast<int>(o.w) &&
            ly < static_cast<int>(o.h)) {
            dx = o.vx;
            dy = o.vy;
            return true;
        }
    }
    dx = 0;
    dy = 0;
    return false;
}

}  // namespace autovision::video
