#include "sobel.hpp"

#include <cstdlib>

namespace autovision::video {

std::uint8_t sobel_magnitude(const Frame& f, unsigned x, unsigned y) {
    const int xi = static_cast<int>(x);
    const int yi = static_cast<int>(y);
    auto p = [&](int dx, int dy) {
        return static_cast<int>(f.at_clamped(xi + dx, yi + dy));
    };
    const int gx = (p(1, -1) + 2 * p(1, 0) + p(1, 1)) -
                   (p(-1, -1) + 2 * p(-1, 0) + p(-1, 1));
    const int gy = (p(-1, 1) + 2 * p(0, 1) + p(1, 1)) -
                   (p(-1, -1) + 2 * p(0, -1) + p(1, -1));
    const int mag = std::abs(gx) + std::abs(gy);
    return static_cast<std::uint8_t>(mag > 255 ? 255 : mag);
}

Frame sobel_transform(const Frame& f) {
    Frame out(f.width(), f.height());
    for (unsigned y = 0; y < f.height(); ++y) {
        for (unsigned x = 0; x < f.width(); ++x) {
            out.at(x, y) = sobel_magnitude(f, x, y);
        }
    }
    return out;
}

}  // namespace autovision::video
