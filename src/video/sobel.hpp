// Sobel edge magnitude — golden reference model for the Edge Detection
// Engine (the AutoVision project swapped detection engines as driving
// conditions changed; the edge engine is the canonical "tunnel mode"
// companion to the optical-flow pair).
#pragma once

#include "frame.hpp"

namespace autovision::video {

/// |Gx| + |Gy| of the 3x3 Sobel operator at (x, y), edge-clamped and
/// saturated to 255. Integer-exact so the RTL engine can match bit-for-bit.
[[nodiscard]] std::uint8_t sobel_magnitude(const Frame& f, unsigned x,
                                           unsigned y);

/// Full-frame edge image; output geometry equals input geometry.
[[nodiscard]] Frame sobel_transform(const Frame& f);

}  // namespace autovision::video
