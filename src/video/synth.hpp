// Synthetic traffic-scene generator.
//
// The paper's testbench streamed recorded road videos from disk; those are
// unavailable, so we generate deterministic scenes with *known ground-truth
// motion*: textured rectangles ("vehicles") translating at constant pixel
// velocities over a textured background. Ground truth lets the scoreboard
// validate motion vectors exactly, which recorded video never could.
#pragma once

#include <cstdint>
#include <vector>

#include "frame.hpp"

namespace autovision::video {

/// One moving object: an axis-aligned textured rectangle.
struct MovingObject {
    int x0 = 0;       ///< top-left at frame 0
    int y0 = 0;
    unsigned w = 16;
    unsigned h = 12;
    int vx = 2;       ///< pixels per frame
    int vy = 0;
    std::uint8_t base_luma = 200;
};

struct SceneConfig {
    unsigned width = 64;
    unsigned height = 48;
    std::uint32_t seed = 1;   ///< texture seed (deterministic LCG)
    std::vector<MovingObject> objects;

    /// A ready-made two-vehicle scene scaled to the frame size.
    static SceneConfig standard(unsigned width, unsigned height,
                                std::uint32_t seed = 1);
};

/// Deterministic scene: frame(t) renders all objects displaced by t*velocity.
class SyntheticScene {
public:
    explicit SyntheticScene(SceneConfig cfg);

    [[nodiscard]] Frame frame(unsigned t) const;

    /// Ground-truth displacement of the pixel at (x, y) between frames t and
    /// t+1: the velocity of the topmost object covering it, or (0,0) for
    /// background. Returns false when the pixel is background.
    [[nodiscard]] bool ground_truth(unsigned t, unsigned x, unsigned y,
                                    int& dx, int& dy) const;

    [[nodiscard]] const SceneConfig& config() const { return cfg_; }

private:
    SceneConfig cfg_;
    Frame background_;
    std::vector<Frame> textures_;  ///< one per object
};

}  // namespace autovision::video
