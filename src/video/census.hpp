// Census transform — golden reference model for the Census Image Engine.
//
// Each pixel is replaced by an 8-bit signature: one bit per 3x3 neighbour
// (clockwise from top-left), set when the neighbour's luma is strictly
// greater than the centre. The transform is illumination-invariant, which is
// why the AutoVision optical flow pipeline matches census signatures rather
// than raw luma. The RTL Census Image Engine must be bit-exact against this
// model; the scoreboard compares the feature image it writes to memory with
// census_transform() of the same input.
#pragma once

#include "frame.hpp"

namespace autovision::video {

/// Neighbour offsets in signature bit order (bit 7 first = top-left,
/// clockwise).
inline constexpr int kCensusOffsets[8][2] = {
    {-1, -1}, {0, -1}, {1, -1}, {1, 0},
    {1, 1},   {0, 1},  {-1, 1}, {-1, 0},
};

/// Signature of the 3x3 neighbourhood centred at (x, y), edge-clamped.
[[nodiscard]] std::uint8_t census_signature(const Frame& f, unsigned x,
                                            unsigned y);

/// Full-frame census transform; output geometry equals input geometry.
[[nodiscard]] Frame census_transform(const Frame& f);

}  // namespace autovision::video
