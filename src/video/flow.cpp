#include "flow.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <thread>

namespace autovision::video {

std::uint32_t encode_motion_word(const MotionVector& v) {
    const auto bx = static_cast<std::uint32_t>(v.dx + 128) & 0xFFu;
    const auto by = static_cast<std::uint32_t>(v.dy + 128) & 0xFFu;
    return (bx << 24) | (by << 16) | (v.cost & 0xFFFFu);
}

MotionVector decode_motion_word(std::uint32_t w, unsigned x, unsigned y) {
    MotionVector v;
    v.x = x;
    v.y = y;
    v.dx = static_cast<int>((w >> 24) & 0xFFu) - 128;
    v.dy = static_cast<int>((w >> 16) & 0xFFu) - 128;
    v.cost = w & 0xFFFFu;
    return v;
}

unsigned grid_points(unsigned dim, const MatchConfig& cfg) {
    if (dim < 2 * cfg.margin) return 0;
    return (dim - 2 * cfg.margin + cfg.step - 1) / cfg.step;
}

unsigned MotionField::grid_w() const { return grid_points(frame_w, cfg); }
unsigned MotionField::grid_h() const { return grid_points(frame_h, cfg); }

unsigned match_cost(const Frame& prev_census, const Frame& cur_census,
                    unsigned x, unsigned y, int dx, int dy,
                    const MatchConfig& cfg) {
    unsigned cost = 0;
    for (int oy = -cfg.patch; oy <= cfg.patch; ++oy) {
        for (int ox = -cfg.patch; ox <= cfg.patch; ++ox) {
            const std::uint8_t cur = cur_census.at_clamped(
                static_cast<int>(x) + ox, static_cast<int>(y) + oy);
            const std::uint8_t prv = prev_census.at_clamped(
                static_cast<int>(x) - dx + ox, static_cast<int>(y) - dy + oy);
            cost += static_cast<unsigned>(
                std::popcount(static_cast<unsigned>(cur ^ prv)));
        }
    }
    return cost;
}

namespace {

MotionVector match_point(const Frame& prev_census, const Frame& cur_census,
                         unsigned x, unsigned y, const MatchConfig& cfg) {
    MotionVector best{x, y, 0, 0, ~0u};
    // Fixed scan order with strict improvement gives a deterministic
    // tie-break (first candidate in scan order wins) that the RTL engine
    // replicates exactly.
    for (int dy = -cfg.search; dy <= cfg.search; ++dy) {
        for (int dx = -cfg.search; dx <= cfg.search; ++dx) {
            const unsigned c =
                match_cost(prev_census, cur_census, x, y, dx, dy, cfg);
            if (c < best.cost) {
                best.dx = dx;
                best.dy = dy;
                best.cost = c;
            }
        }
    }
    return best;
}

}  // namespace

MotionField match_census(const Frame& prev_census, const Frame& cur_census,
                         const MatchConfig& cfg, unsigned num_threads) {
    MotionField field;
    field.cfg = cfg;
    field.frame_w = cur_census.width();
    field.frame_h = cur_census.height();
    const unsigned gw = field.grid_w();
    const unsigned gh = field.grid_h();
    field.vectors.resize(std::size_t{gw} * gh);

    auto do_rows = [&](unsigned row0, unsigned row1) {
        for (unsigned gy = row0; gy < row1; ++gy) {
            const unsigned y = cfg.margin + gy * cfg.step;
            for (unsigned gx = 0; gx < gw; ++gx) {
                const unsigned x = cfg.margin + gx * cfg.step;
                field.vectors[std::size_t{gy} * gw + gx] =
                    match_point(prev_census, cur_census, x, y, cfg);
            }
        }
    };

    const unsigned workers =
        std::max(1u, std::min(num_threads, gh == 0 ? 1u : gh));
    if (workers == 1 || gh < 2) {
        do_rows(0, gh);
        return field;
    }

    // Static row partition: grid points are independent, so the result is
    // identical for any worker count.
    std::vector<std::thread> pool;
    pool.reserve(workers);
    const unsigned chunk = (gh + workers - 1) / workers;
    for (unsigned w = 0; w < workers; ++w) {
        const unsigned r0 = w * chunk;
        const unsigned r1 = std::min(gh, r0 + chunk);
        if (r0 >= r1) break;
        pool.emplace_back(do_rows, r0, r1);
    }
    for (auto& t : pool) t.join();
    return field;
}

namespace {

void draw_line(Frame& plane, int x0, int y0, int x1, int y1,
               std::uint8_t value) {
    // Bresenham; endpoints clamped inside the frame.
    const int w = static_cast<int>(plane.width());
    const int h = static_cast<int>(plane.height());
    int dx = std::abs(x1 - x0);
    int dy = -std::abs(y1 - y0);
    int sx = x0 < x1 ? 1 : -1;
    int sy = y0 < y1 ? 1 : -1;
    int err = dx + dy;
    while (true) {
        if (x0 >= 0 && y0 >= 0 && x0 < w && y0 < h) {
            plane.at(static_cast<unsigned>(x0), static_cast<unsigned>(y0)) =
                value;
        }
        if (x0 == x1 && y0 == y1) break;
        const int e2 = 2 * err;
        if (e2 >= dy) {
            err += dy;
            x0 += sx;
        }
        if (e2 <= dx) {
            err += dx;
            y0 += sy;
        }
    }
}

}  // namespace

std::uint8_t flow_energy(std::uint8_t cur, std::uint8_t prev) {
    const int d = static_cast<int>(cur) - static_cast<int>(prev);
    return static_cast<std::uint8_t>(d < 0 ? -d : d);
}

Frame flow_energy_transform(const Frame& cur, const Frame& prev) {
    Frame out(cur.width(), cur.height());
    for (unsigned y = 0; y < cur.height(); ++y) {
        for (unsigned x = 0; x < cur.width(); ++x) {
            out.at(x, y) = flow_energy(cur.at(x, y), prev.at(x, y));
        }
    }
    return out;
}

void make_overlay(const Frame& base, const MotionField& field,
                  unsigned min_mag, Frame& r, Frame& g, Frame& b) {
    r = base;
    g = base;
    b = base;
    for (const MotionVector& v : field.vectors) {
        const unsigned mag =
            static_cast<unsigned>(std::abs(v.dx) + std::abs(v.dy));
        if (mag < min_mag) continue;
        const int x0 = static_cast<int>(v.x);
        const int y0 = static_cast<int>(v.y);
        // Draw the vector scaled 3x so short motions stay visible.
        draw_line(r, x0, y0, x0 + 3 * v.dx, y0 + 3 * v.dy, 255);
        draw_line(g, x0, y0, x0 + 3 * v.dx, y0 + 3 * v.dy, 32);
        draw_line(b, x0, y0, x0 + 3 * v.dx, y0 + 3 * v.dy, 32);
    }
}

}  // namespace autovision::video
