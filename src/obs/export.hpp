// obs: event-stream exporters.
//
// Two formats, both text, both stream-friendly:
//   * write_chrome_trace — Chrome trace / Perfetto JSON ("traceEvents"
//     array). Instant events for lifecycle points, duration events for the
//     intervals worth eyeballing: the SYNC..DESYNC configuration session,
//     the error-injection (X) window, IRQ-raise-to-acknowledge, and the
//     testbench's Table II stage attribution. Load the file at
//     https://ui.perfetto.dev or chrome://tracing.
//   * write_events_jsonl — one JSON object per event per line, the same
//     shape as the campaign result sink, for ad-hoc jq/pandas analysis.
#pragma once

#include <ostream>
#include <vector>

#include "event.hpp"

namespace autovision::obs {

/// Chrome-trace JSON. `events` must be chronological (recorder snapshot).
void write_chrome_trace(std::ostream& os, const std::vector<Event>& events);

/// One JSON object per line: {"t_ps":..,"kind":"..","src":"..","a":..,"b":..}
void write_events_jsonl(std::ostream& os, const std::vector<Event>& events);

}  // namespace autovision::obs
