// obs: metrics registry derived from the structured event stream.
//
// One pass over a recorder snapshot yields the per-run quantities the paper
// reasons about but never shows in one place: words per SimB, the length of
// each error-injection (X) window, SYNC-to-swap latency, and IRQ-to-service
// time. The registry rides alongside rtlsim::SimStats in RunResult and is
// folded into the campaign aggregate / JSONL sink via to_metric_map().
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "event.hpp"

namespace autovision::obs {

/// Streaming histogram summary: count / sum / min / max (no buckets — the
/// campaigns aggregate across jobs, so the moments are what survive).
struct Hist {
    std::uint64_t count = 0;
    double sum = 0.0;
    double min = 0.0;
    double max = 0.0;

    void add(double v) noexcept {
        if (count == 0) {
            min = v;
            max = v;
        } else {
            if (v < min) min = v;
            if (v > max) max = v;
        }
        ++count;
        sum += v;
    }

    [[nodiscard]] double mean() const noexcept {
        return count == 0 ? 0.0 : sum / static_cast<double>(count);
    }

    Hist& operator+=(const Hist& o) noexcept {
        if (o.count == 0) return *this;
        if (count == 0) {
            *this = o;
            return *this;
        }
        count += o.count;
        sum += o.sum;
        if (o.min < min) min = o.min;
        if (o.max > max) max = o.max;
        return *this;
    }
};

/// Per-reconfigurable-region slice of the rollup: region-tagged events
/// (swaps, isolation toggles, X windows, arbiter grants) fold into the slot
/// matching their Event::region, so a multi-region run reports each
/// region's reconfiguration traffic separately.
struct RegionMetrics {
    std::uint64_t swaps = 0;
    std::uint64_t isolations = 0;   ///< isolation-on edges
    std::uint64_t arb_grants = 0;   ///< ICAP arbiter sessions granted
    std::uint64_t jobs = 0;         ///< manager jobs completed
    Hist x_window_cycles;

    [[nodiscard]] bool any() const noexcept {
        return swaps != 0 || isolations != 0 || arb_grants != 0 ||
               jobs != 0 || x_window_cycles.count != 0;
    }

    RegionMetrics& operator+=(const RegionMetrics& o) noexcept {
        swaps += o.swaps;
        isolations += o.isolations;
        arb_grants += o.arb_grants;
        jobs += o.jobs;
        x_window_cycles += o.x_window_cycles;
        return *this;
    }
};

struct Metrics {
    // Histograms (all durations in system-clock cycles).
    Hist simb_words;       ///< FDRI payload words per completed transfer
    Hist x_window_cycles;  ///< error-injection window length
    Hist swap_latency_cycles;   ///< SYNC word to module swap
    Hist irq_to_service_cycles; ///< INTC irq raise to first acknowledge

    /// Per-region rollup, indexed by Event::region (clamped to the last
    /// slot). Region 0 is the classic single-RR demonstrator region.
    std::array<RegionMetrics, kMaxRegions> per_region{};

    // Counters.
    std::uint64_t syncs = 0;
    std::uint64_t desyncs = 0;
    std::uint64_t swaps = 0;
    std::uint64_t aborts = 0;
    std::uint64_t malformed = 0;
    std::uint64_t dcr_ops = 0;
    std::uint64_t irqs = 0;
    std::uint64_t frames = 0;
    std::uint64_t events = 0;          ///< events the pass consumed
    std::uint64_t events_dropped = 0;  ///< ring overwrites (set by caller)

    [[nodiscard]] bool any() const noexcept { return events != 0; }

    Metrics& operator+=(const Metrics& o) noexcept;

    /// Flatten into the campaign's name->double metric map ("obs." prefix).
    void to_metric_map(std::map<std::string, double>& out) const;

    /// Single pass over chronologically ordered events. `clk_period` (ps)
    /// converts simulated-time spans to cycles; 0 falls back to raw ps.
    [[nodiscard]] static Metrics from_events(const std::vector<Event>& events,
                                             rtlsim::Time clk_period);
};

}  // namespace autovision::obs
