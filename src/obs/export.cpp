#include "export.hpp"

#include <cinttypes>
#include <cstdio>
#include <string>

namespace autovision::obs {

namespace {

/// Chrome-trace timestamps are microseconds; Time is picoseconds. Six
/// decimals preserve exact ps resolution.
void append_ts(std::string& out, rtlsim::Time t) {
    char buf[48];
    std::snprintf(buf, sizeof buf, "%" PRIu64 ".%06" PRIu64, t / 1000000,
                  t % 1000000);
    out += buf;
}

// Instant-event tracks: one tid per Source, in enum order, 1-based.
constexpr int tid_of(Source s) { return static_cast<int>(s) + 1; }

// Duration tracks sit above the instant tracks.
constexpr int kTidSession = static_cast<int>(Source::kCount) + 1;
constexpr int kTidXWindow = kTidSession + 1;
constexpr int kTidIrq = kTidSession + 2;
constexpr int kTidStage = kTidSession + 3;

void meta_thread(std::string& out, int tid, const char* name) {
    out += R"({"name":"thread_name","ph":"M","pid":1,"tid":)";
    out += std::to_string(tid);
    out += R"(,"args":{"name":")";
    out += name;
    out += "\"}},\n";
}

void instant(std::string& out, const Event& e) {
    char buf[64];
    out += R"({"name":")";
    out += to_string(e.kind);
    out += R"(","ph":"i","s":"t","pid":1,"tid":)";
    out += std::to_string(tid_of(e.src));
    out += R"(,"ts":)";
    append_ts(out, e.time);
    std::snprintf(buf, sizeof buf, R"(,"args":{"a":%u,"b":%llu}},)", e.a,
                  static_cast<unsigned long long>(e.b));
    out += buf;
    out += '\n';
}

void complete(std::string& out, const char* name, int tid, rtlsim::Time begin,
              rtlsim::Time end) {
    out += R"({"name":")";
    out += name;
    out += R"(","ph":"X","pid":1,"tid":)";
    out += std::to_string(tid);
    out += R"(,"ts":)";
    append_ts(out, begin);
    out += R"(,"dur":)";
    append_ts(out, end >= begin ? end - begin : 0);
    out += "},\n";
}

}  // namespace

void write_chrome_trace(std::ostream& os, const std::vector<Event>& events) {
    std::string out;
    out.reserve(events.size() * 96 + 1024);
    out += "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[\n";

    out += R"({"name":"process_name","ph":"M","pid":1,)"
           R"("args":{"name":"rtlsim"}},)";
    out += '\n';
    for (int s = 0; s < static_cast<int>(Source::kCount); ++s) {
        meta_thread(out, s + 1, to_string(static_cast<Source>(s)));
    }
    meta_thread(out, kTidSession, "dpr-session");
    meta_thread(out, kTidXWindow, "x-window");
    meta_thread(out, kTidIrq, "irq");
    meta_thread(out, kTidStage, "stage");

    // Open intervals, closed as their end events stream past.
    bool session_open = false;
    rtlsim::Time session_start = 0;
    bool xw_open = false;
    rtlsim::Time xw_start = 0;
    bool irq_open = false;
    rtlsim::Time irq_start = 0;
    bool stage_open = false;
    rtlsim::Time stage_start = 0;
    Stage stage = Stage::kCpu;
    rtlsim::Time last = 0;

    for (const Event& e : events) {
        last = e.time;
        instant(out, e);
        switch (e.kind) {
            case EventKind::kSync:
                if (session_open) {
                    // A SYNC inside an open session: the previous transfer
                    // was truncated (see IcapArtifact) — close it visibly.
                    complete(out, "reconfiguration (truncated)", kTidSession,
                             session_start, e.time);
                }
                session_open = true;
                session_start = e.time;
                break;
            case EventKind::kDesync:
                if (session_open) {
                    session_open = false;
                    complete(out, "reconfiguration", kTidSession,
                             session_start, e.time);
                }
                break;
            case EventKind::kXWindowBegin:
                xw_open = true;
                xw_start = e.time;
                break;
            case EventKind::kXWindowEnd:
                if (xw_open) {
                    xw_open = false;
                    complete(out, "x-window", kTidXWindow, xw_start, e.time);
                }
                break;
            case EventKind::kIrqRaise:
                if (!irq_open) {
                    irq_open = true;
                    irq_start = e.time;
                }
                break;
            case EventKind::kIrqAck:
                if (irq_open) {
                    irq_open = false;
                    complete(out, "irq", kTidIrq, irq_start, e.time);
                }
                break;
            case EventKind::kStageEnter:
                if (stage_open) {
                    complete(out, to_string(stage), kTidStage, stage_start,
                             e.time);
                }
                stage_open = true;
                stage_start = e.time;
                stage = static_cast<Stage>(e.a);
                break;
            default:
                break;
        }
    }
    // Close dangling intervals at the last observed timestamp.
    if (session_open) {
        complete(out, "reconfiguration (open)", kTidSession, session_start,
                 last);
    }
    if (xw_open) complete(out, "x-window (open)", kTidXWindow, xw_start, last);
    if (irq_open) complete(out, "irq (open)", kTidIrq, irq_start, last);
    if (stage_open) complete(out, to_string(stage), kTidStage, stage_start, last);

    // Every record ends "...,\n"; strict JSON parsers (tests, jq) reject the
    // trailing comma before ']', so strip it from the final record.
    if (out.size() >= 2 && out[out.size() - 2] == ',') {
        out.erase(out.size() - 2, 1);
    }
    out += "]}\n";
    os << out;
}

void write_events_jsonl(std::ostream& os, const std::vector<Event>& events) {
    std::string out;
    char buf[64];
    for (const Event& e : events) {
        out.clear();
        out += R"({"t_ps":)";
        out += std::to_string(e.time);
        out += R"(,"kind":")";
        out += to_string(e.kind);
        out += R"(","src":")";
        out += to_string(e.src);
        std::snprintf(buf, sizeof buf, R"(","a":%u,"b":%llu})", e.a,
                      static_cast<unsigned long long>(e.b));
        out += buf;
        out += '\n';
        os << out;
    }
}

}  // namespace autovision::obs
