// obs: structured simulation-event taxonomy.
//
// The paper's central claim is that ReSim makes the reconfiguration process
// itself observable in simulation. This header names the things worth
// observing: the SimB lifecycle the ICAP artifact parses (SYNC, FDRI
// payload, DESYNC), the Extended Portal's module swaps and state transfers,
// the region boundary's error-injection window and isolation, the DCR/INTC
// traffic the driver generates, and the testbench's stage boundaries.
//
// An Event is a fixed-size POD: recording one is a few stores into a
// preallocated ring (recorder.hpp) — cheap enough to leave compiled into
// every hot path behind a single enabled check.
#pragma once

#include <cstdint>

#include "kernel/sim_time.hpp"

namespace autovision::obs {

enum class EventKind : std::uint8_t {
    // --- ICAP artifact: SimB parsing lifecycle --------------------------
    kSync,          ///< SYNC word opened a configuration session
    kDesync,        ///< CMD DESYNC closed the session; a = SimBs completed
    kFarWrite,      ///< FAR written; a = RR id, b = module id
    kCmdWrite,      ///< CMD written; a = command value
    kFdriHeader,    ///< FDRI header parsed; a = payload words announced,
                    ///< b = 1 for a type-2 (long-form) header
    kPayloadBegin,  ///< first FDRI payload word (error injection starts)
    kPayloadEnd,    ///< last FDRI payload word; a = payload words written
    kMalformed,     ///< malformed stream reported; a = MalformedCode

    // --- Extended Portal -------------------------------------------------
    kSwap,          ///< module swapped in; a = RR id, b = module id
    kCapture,       ///< GCAPTURE state snapshot; a/b = RR/module id
    kRestore,       ///< GRESTORE state reinstated; a/b = RR/module id
    kAbort,         ///< reconfiguration aborted (truncated payload)

    // --- RR boundary / isolation ----------------------------------------
    kXWindowBegin,  ///< region outputs start injecting errors
    kXWindowEnd,    ///< region outputs stop injecting errors
    kSelect,        ///< boundary selection changed; a = slot (int cast)
    kIsolationOn,   ///< isolation clamp asserted by software
    kIsolationOff,  ///< isolation clamp released

    // --- DCR bus / interrupt controller ----------------------------------
    kDcrRead,       ///< DCR read retired; a = regno, b = data (~0 when X)
    kDcrWrite,      ///< DCR write retired; a = regno, b = data (~0 when X)
    kIrqRaise,      ///< INTC irq output rose; a = pending status bits
    kIrqAck,        ///< INTC IAR write; a = acknowledged bits

    // --- testbench stage boundaries --------------------------------------
    kStageEnter,    ///< attribution stage changed; a = Stage
    kFrameStart,    ///< camera delivered frame a to the input VIP
    kFrameDone,     ///< firmware reported frame a complete

    // --- ICAP arbiter / region manager (multi-region virtualization) ------
    kArbGrant,      ///< arbiter granted the ICAP to a region; a = queue depth
    kArbRelease,    ///< session drained, grant released; a = words forwarded
    kRegionJob,     ///< region manager completed a job; a = engine kind

    // --- CPU / syscall layer ----------------------------------------------
    kSyscall,       ///< firmware trap retired; a = call number, b = arg/
                    ///< result, region = 1 when raised from an ISR

    kCount,
};

/// Who emitted the event (one Perfetto track per source).
enum class Source : std::uint8_t {
    kIcap,
    kPortal,
    kRrBoundary,
    kIsolation,
    kDcr,
    kIntc,
    kTestbench,
    kArbiter,
    kManager,
    kCpu,  ///< appended (track numbering is serialized in traces)
    kCount,
};

/// Table II stage attribution, reused for kStageEnter payloads.
enum class Stage : std::uint32_t { kCpu, kCie, kMe, kDpr };

/// Codes carried by kMalformed events (the artifact also reports the full
/// text through the diagnostics; the code keeps the event fixed-size).
enum class MalformedCode : std::uint32_t {
    kOther,
    kType2WithoutFdriHeader,
    kTruncatedPayload,
    kXOnIcap,
};

/// Highest region index the per-region metric rollup tracks (region ids
/// above it still record, they just fold into the last rollup slot).
inline constexpr unsigned kMaxRegions = 4;

struct Event {
    rtlsim::Time time = 0;            ///< simulated time (ps)
    EventKind kind = EventKind::kCount;
    Source src = Source::kCount;
    std::uint8_t region = 0;          ///< reconfigurable-region index (0-based)
    std::uint32_t a = 0;              ///< kind-specific payload (see enum docs)
    std::uint64_t b = 0;              ///< kind-specific payload
};

[[nodiscard]] constexpr const char* to_string(EventKind k) {
    switch (k) {
        case EventKind::kSync: return "sync";
        case EventKind::kDesync: return "desync";
        case EventKind::kFarWrite: return "far-write";
        case EventKind::kCmdWrite: return "cmd-write";
        case EventKind::kFdriHeader: return "fdri-header";
        case EventKind::kPayloadBegin: return "payload-begin";
        case EventKind::kPayloadEnd: return "payload-end";
        case EventKind::kMalformed: return "malformed";
        case EventKind::kSwap: return "swap";
        case EventKind::kCapture: return "capture";
        case EventKind::kRestore: return "restore";
        case EventKind::kAbort: return "abort";
        case EventKind::kXWindowBegin: return "x-window-begin";
        case EventKind::kXWindowEnd: return "x-window-end";
        case EventKind::kSelect: return "select";
        case EventKind::kIsolationOn: return "isolation-on";
        case EventKind::kIsolationOff: return "isolation-off";
        case EventKind::kDcrRead: return "dcr-read";
        case EventKind::kDcrWrite: return "dcr-write";
        case EventKind::kIrqRaise: return "irq-raise";
        case EventKind::kIrqAck: return "irq-ack";
        case EventKind::kStageEnter: return "stage-enter";
        case EventKind::kFrameStart: return "frame-start";
        case EventKind::kFrameDone: return "frame-done";
        case EventKind::kArbGrant: return "arb-grant";
        case EventKind::kArbRelease: return "arb-release";
        case EventKind::kRegionJob: return "region-job";
        case EventKind::kSyscall: return "syscall";
        case EventKind::kCount: break;
    }
    return "?";
}

[[nodiscard]] constexpr const char* to_string(Source s) {
    switch (s) {
        case Source::kIcap: return "icap";
        case Source::kPortal: return "portal";
        case Source::kRrBoundary: return "rr";
        case Source::kIsolation: return "iso";
        case Source::kDcr: return "dcr";
        case Source::kIntc: return "intc";
        case Source::kTestbench: return "tb";
        case Source::kArbiter: return "arb";
        case Source::kManager: return "rrm";
        case Source::kCpu: return "cpu";
        case Source::kCount: break;
    }
    return "?";
}

[[nodiscard]] constexpr const char* to_string(Stage s) {
    switch (s) {
        case Stage::kCpu: return "cpu";
        case Stage::kCie: return "cie";
        case Stage::kMe: return "me";
        case Stage::kDpr: return "dpr";
    }
    return "?";
}

}  // namespace autovision::obs
