#include "metrics.hpp"

namespace autovision::obs {

Metrics& Metrics::operator+=(const Metrics& o) noexcept {
    simb_words += o.simb_words;
    x_window_cycles += o.x_window_cycles;
    swap_latency_cycles += o.swap_latency_cycles;
    irq_to_service_cycles += o.irq_to_service_cycles;
    for (std::size_t r = 0; r < per_region.size(); ++r) {
        per_region[r] += o.per_region[r];
    }
    syncs += o.syncs;
    desyncs += o.desyncs;
    swaps += o.swaps;
    aborts += o.aborts;
    malformed += o.malformed;
    dcr_ops += o.dcr_ops;
    irqs += o.irqs;
    frames += o.frames;
    events += o.events;
    events_dropped += o.events_dropped;
    return *this;
}

void Metrics::to_metric_map(std::map<std::string, double>& out) const {
    const auto hist = [&out](const char* name, const Hist& h) {
        if (h.count == 0) return;
        out[std::string("obs.") + name + "_mean"] = h.mean();
        out[std::string("obs.") + name + "_max"] = h.max;
    };
    hist("simb_words", simb_words);
    hist("x_window_cycles", x_window_cycles);
    hist("swap_latency_cycles", swap_latency_cycles);
    hist("irq_to_service_cycles", irq_to_service_cycles);
    out["obs.syncs"] = static_cast<double>(syncs);
    out["obs.desyncs"] = static_cast<double>(desyncs);
    out["obs.swaps"] = static_cast<double>(swaps);
    if (aborts != 0) out["obs.aborts"] = static_cast<double>(aborts);
    if (malformed != 0) out["obs.malformed"] = static_cast<double>(malformed);
    out["obs.dcr_ops"] = static_cast<double>(dcr_ops);
    out["obs.irqs"] = static_cast<double>(irqs);
    out["obs.events"] = static_cast<double>(events);
    // Per-region rollup: only regions that saw traffic emit keys, so a
    // single-region run's metric map is unchanged from before the rollup
    // existed (region 0's totals are already the global counters above).
    for (std::size_t r = 0; r < per_region.size(); ++r) {
        const RegionMetrics& rm = per_region[r];
        if (r == 0 || !rm.any()) continue;
        const std::string prefix = "obs.r" + std::to_string(r) + ".";
        out[prefix + "swaps"] = static_cast<double>(rm.swaps);
        out[prefix + "isolations"] = static_cast<double>(rm.isolations);
        if (rm.arb_grants != 0) {
            out[prefix + "arb_grants"] = static_cast<double>(rm.arb_grants);
        }
        if (rm.jobs != 0) {
            out[prefix + "jobs"] = static_cast<double>(rm.jobs);
        }
        if (rm.x_window_cycles.count != 0) {
            out[prefix + "x_window_cycles_mean"] = rm.x_window_cycles.mean();
        }
    }
    if (events_dropped != 0) {
        out["obs.events_dropped"] = static_cast<double>(events_dropped);
    }
}

Metrics Metrics::from_events(const std::vector<Event>& events,
                             rtlsim::Time clk_period) {
    Metrics m;
    const double period =
        clk_period == 0 ? 1.0 : static_cast<double>(clk_period);
    const auto cycles = [period](rtlsim::Time span) {
        return static_cast<double>(span) / period;
    };

    // Open intervals of the single-session artifacts. The stream is
    // chronological, so plain "last begin" state suffices; X windows are
    // tracked per region (regions open/close theirs independently).
    bool session_open = false;
    rtlsim::Time session_start = 0;
    bool xw_open[kMaxRegions] = {};
    rtlsim::Time xw_start[kMaxRegions] = {};
    bool irq_open = false;
    rtlsim::Time irq_start = 0;
    const auto rslot = [](const Event& e) {
        return std::min<std::size_t>(e.region, kMaxRegions - 1);
    };

    for (const Event& e : events) {
        ++m.events;
        switch (e.kind) {
            case EventKind::kSync:
                ++m.syncs;
                session_open = true;
                session_start = e.time;
                break;
            case EventKind::kDesync:
                ++m.desyncs;
                session_open = false;
                break;
            case EventKind::kPayloadEnd:
                m.simb_words.add(static_cast<double>(e.a));
                break;
            case EventKind::kSwap:
                ++m.swaps;
                ++m.per_region[rslot(e)].swaps;
                if (session_open) {
                    m.swap_latency_cycles.add(cycles(e.time - session_start));
                }
                break;
            case EventKind::kAbort:
                ++m.aborts;
                break;
            case EventKind::kMalformed:
                ++m.malformed;
                break;
            case EventKind::kXWindowBegin:
                xw_open[rslot(e)] = true;
                xw_start[rslot(e)] = e.time;
                break;
            case EventKind::kXWindowEnd:
                if (xw_open[rslot(e)]) {
                    xw_open[rslot(e)] = false;
                    const double len = cycles(e.time - xw_start[rslot(e)]);
                    m.x_window_cycles.add(len);
                    m.per_region[rslot(e)].x_window_cycles.add(len);
                }
                break;
            case EventKind::kDcrRead:
            case EventKind::kDcrWrite:
                ++m.dcr_ops;
                break;
            case EventKind::kIrqRaise:
                ++m.irqs;
                if (!irq_open) {
                    irq_open = true;
                    irq_start = e.time;
                }
                break;
            case EventKind::kIrqAck:
                if (irq_open) {
                    irq_open = false;
                    m.irq_to_service_cycles.add(cycles(e.time - irq_start));
                }
                break;
            case EventKind::kFrameDone:
                ++m.frames;
                break;
            case EventKind::kIsolationOn:
                ++m.per_region[rslot(e)].isolations;
                break;
            case EventKind::kArbGrant:
                ++m.per_region[rslot(e)].arb_grants;
                break;
            case EventKind::kRegionJob:
                ++m.per_region[rslot(e)].jobs;
                break;
            default:
                break;
        }
    }
    return m;
}

}  // namespace autovision::obs
