// obs: low-overhead structured event recorder.
//
// A preallocated ring buffer of fixed-size Event records. The hot-path
// contract mirrors the paper's ~0.3 % artifact-overhead budget:
//   * record() is a single branch when disabled — no allocation, no
//     formatting, no time lookup beyond what the caller already has;
//   * when enabled, recording is a handful of stores into preallocated
//     storage (the ring never grows);
//   * when the ring wraps, the oldest events are overwritten and counted
//     as dropped, so a runaway run cannot exhaust memory.
//
// Emitting modules hold a nullable `EventRecorder*` (null when the system
// was built without observability); the recorder's own enabled flag is the
// second, belt-and-braces gate so a testbench can pause recording without
// re-wiring every module.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "event.hpp"

namespace autovision::obs {

class EventRecorder {
public:
    static constexpr std::size_t kDefaultCapacity = 1u << 16;

    explicit EventRecorder(std::size_t capacity = kDefaultCapacity)
        : ring_(capacity) {}

    EventRecorder(const EventRecorder&) = delete;
    EventRecorder& operator=(const EventRecorder&) = delete;

    /// Enabling a zero-capacity recorder is a no-op (stays disabled).
    void set_enabled(bool on) noexcept { enabled_ = on && !ring_.empty(); }
    [[nodiscard]] bool enabled() const noexcept { return enabled_; }

    /// Hot path. Disabled: one predictable branch, nothing else.
    void record(rtlsim::Time t, EventKind k, Source s, std::uint32_t a = 0,
                std::uint64_t b = 0) noexcept {
        if (!enabled_) return;
        Event& e = ring_[static_cast<std::size_t>(total_ % ring_.size())];
        e.time = t;
        e.kind = k;
        e.src = s;
        e.a = a;
        e.b = b;
        ++total_;
    }

    /// Events ever recorded, including those the ring has since overwritten.
    [[nodiscard]] std::uint64_t total() const noexcept { return total_; }
    /// Events currently held (<= capacity).
    [[nodiscard]] std::size_t size() const noexcept {
        return static_cast<std::size_t>(
            std::min<std::uint64_t>(total_, ring_.size()));
    }
    [[nodiscard]] std::uint64_t dropped() const noexcept {
        return total_ > ring_.size() ? total_ - ring_.size() : 0;
    }
    [[nodiscard]] std::size_t capacity() const noexcept { return ring_.size(); }

    void clear() noexcept { total_ = 0; }

    /// Surviving events in chronological order (oldest survivor first).
    [[nodiscard]] std::vector<Event> snapshot() const {
        std::vector<Event> out;
        const std::size_t n = size();
        out.reserve(n);
        const std::size_t start =
            static_cast<std::size_t>((total_ - n) % ring_.size());
        for (std::size_t i = 0; i < n; ++i) {
            out.push_back(ring_[(start + i) % ring_.size()]);
        }
        return out;
    }

private:
    std::vector<Event> ring_;
    std::uint64_t total_ = 0;
    bool enabled_ = false;
};

}  // namespace autovision::obs
