// obs: low-overhead structured event recorder.
//
// A preallocated ring buffer of fixed-size Event records. The hot-path
// contract mirrors the paper's ~0.3 % artifact-overhead budget:
//   * record() is a single branch when disabled — no allocation, no
//     formatting, no time lookup beyond what the caller already has;
//   * when enabled, recording is a handful of stores into preallocated
//     storage (the ring never grows);
//   * when the ring wraps, the oldest events are overwritten and counted
//     as dropped, so a runaway run cannot exhaust memory.
//
// Emitting modules hold a nullable `EventRecorder*` (null when the system
// was built without observability); the recorder's own enabled flag is the
// second, belt-and-braces gate so a testbench can pause recording without
// re-wiring every module.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "event.hpp"
#include "kernel/snapshot.hpp"

namespace autovision::obs {

class EventRecorder {
public:
    static constexpr std::size_t kDefaultCapacity = 1u << 16;

    explicit EventRecorder(std::size_t capacity = kDefaultCapacity)
        : ring_(capacity) {}

    EventRecorder(const EventRecorder&) = delete;
    EventRecorder& operator=(const EventRecorder&) = delete;

    /// Enabling a zero-capacity recorder is a no-op (stays disabled).
    void set_enabled(bool on) noexcept { enabled_ = on && !ring_.empty(); }
    [[nodiscard]] bool enabled() const noexcept { return enabled_; }

    /// Hot path. Disabled: one predictable branch, nothing else.
    void record(rtlsim::Time t, EventKind k, Source s, std::uint32_t a = 0,
                std::uint64_t b = 0, std::uint8_t region = 0) noexcept {
        if (!enabled_) return;
        Event& e = ring_[static_cast<std::size_t>(total_ % ring_.size())];
        e.time = t;
        e.kind = k;
        e.src = s;
        e.region = region;
        e.a = a;
        e.b = b;
        ++total_;
    }

    /// Events ever recorded, including those the ring has since overwritten.
    [[nodiscard]] std::uint64_t total() const noexcept { return total_; }
    /// Events currently held (<= capacity).
    [[nodiscard]] std::size_t size() const noexcept {
        return static_cast<std::size_t>(
            std::min<std::uint64_t>(total_, ring_.size()));
    }
    [[nodiscard]] std::uint64_t dropped() const noexcept {
        return total_ > ring_.size() ? total_ - ring_.size() : 0;
    }
    [[nodiscard]] std::size_t capacity() const noexcept { return ring_.size(); }

    void clear() noexcept { total_ = 0; }

    /// Surviving events in chronological order (oldest survivor first).
    [[nodiscard]] std::vector<Event> snapshot() const {
        std::vector<Event> out;
        const std::size_t n = size();
        out.reserve(n);
        const std::size_t start =
            static_cast<std::size_t>((total_ - n) % ring_.size());
        for (std::size_t i = 0; i < n; ++i) {
            out.push_back(ring_[(start + i) % ring_.size()]);
        }
        return out;
    }

    // --- checkpoint ------------------------------------------------------
    /// Surviving window + counters; capacity is construction configuration
    /// and must match. Overwritten (dropped) slots are not serialized —
    /// exports only ever read the surviving window, so a restored trace is
    /// byte-identical to the uninterrupted one.
    void ckpt_save(rtlsim::SnapWriter& w) const {
        w.u64(ring_.size());
        w.u64(total_);
        w.bool8(enabled_);
        const std::size_t n = size();
        w.u64(n);
        if (n == 0) return;
        const std::size_t start =
            static_cast<std::size_t>((total_ - n) % ring_.size());
        for (std::size_t i = 0; i < n; ++i) {
            const Event& e = ring_[(start + i) % ring_.size()];
            w.u64(e.time);
            w.u8(static_cast<std::uint8_t>(e.kind));
            w.u8(static_cast<std::uint8_t>(e.src));
            w.u8(e.region);
            w.u32(e.a);
            w.u64(e.b);
        }
    }
    [[nodiscard]] bool ckpt_restore(rtlsim::SnapReader& r) {
        if (r.u64() != ring_.size()) return false;
        total_ = r.u64();
        enabled_ = r.bool8() && !ring_.empty();
        const std::uint64_t n = r.u64();
        if (n > ring_.size() || n > total_) return false;
        std::fill(ring_.begin(), ring_.end(), Event{});
        for (std::uint64_t i = 0; i < n && r.ok_so_far(); ++i) {
            Event e;
            e.time = r.u64();
            const std::uint8_t k = r.u8();
            const std::uint8_t s = r.u8();
            if (k > static_cast<std::uint8_t>(EventKind::kCount) ||
                s > static_cast<std::uint8_t>(Source::kCount)) {
                return false;
            }
            e.kind = static_cast<EventKind>(k);
            e.src = static_cast<Source>(s);
            e.region = r.u8();
            e.a = r.u32();
            e.b = r.u64();
            ring_[static_cast<std::size_t>((total_ - n + i) % ring_.size())] =
                e;
        }
        return r.ok_so_far();
    }

private:
    std::vector<Event> ring_;
    std::uint64_t total_ = 0;
    bool enabled_ = false;
};

}  // namespace autovision::obs
