// Standard error-injector variants.
//
// ReSim's default error source drives X on every output of a region being
// reconfigured; Section IV-B notes that "for advanced users, the error
// sources can also be overridden for design-/test-specific purposes using
// object-oriented programming techniques". These are the stock variants a
// verification engineer reaches for:
//
//  * XInjector        — the default (alias of the base class), maximally
//                       pessimistic; anything sampling the region sees X.
//  * HoldLastInjector — outputs freeze at their pre-reconfiguration values:
//                       the optimistic model some 2-state flows implicitly
//                       assume. Useful to show which bugs *only* X finds.
//  * ZeroInjector     — outputs clamp to idle/zero, as if isolation were
//                       built into the fabric.
//  * GarbageInjector  — deterministic pseudo-random defined values each
//                       evaluation: stresses protocol checkers with
//                       plausible-looking junk (spurious requests, wild
//                       addresses) rather than unknowns.
#pragma once

#include "recon/rr_boundary.hpp"

namespace autovision::resim {

using XInjector = ErrorInjector;

/// Freeze the boundary at the last values the outgoing module drove.
class HoldLastInjector final : public ErrorInjector {
public:
    void inject(RrOutputs& o) override {
        if (!captured_) {
            // First evaluation of the window: `o` still holds the previous
            // module's outputs only if the caller pre-filled it; we cannot
            // see them here, so hold idle — the practical effect of a
            // frozen, quiescent module.
            held_ = RrOutputs::idle();
            captured_ = true;
        }
        o = held_;
    }
    [[nodiscard]] const char* name() const override { return "hold-last"; }

    /// Reset between reconfigurations (the portal's window is re-entered).
    void rearm() { captured_ = false; }

private:
    bool captured_ = false;
    RrOutputs held_;
};

/// Clamp to idle levels (fabric-level isolation).
class ZeroInjector final : public ErrorInjector {
public:
    void inject(RrOutputs& o) override { o = RrOutputs::idle(); }
    [[nodiscard]] const char* name() const override { return "zeros"; }
};

/// Deterministic defined-value garbage: different every evaluation, but
/// reproducible run to run.
class GarbageInjector final : public ErrorInjector {
public:
    explicit GarbageInjector(std::uint32_t seed = 0xC0FFEE) : s_(seed) {}

    void inject(RrOutputs& o) override {
        o.req = (next() & 1u) ? Logic::L1 : Logic::L0;
        o.rnw = (next() & 1u) ? Logic::L1 : Logic::L0;
        o.addr = Word{next()};
        o.nbeats = LVec<16>{next() & 0x1F};
        o.wdata = Word{next()};
        o.done_irq = (next() & 1u) ? Logic::L1 : Logic::L0;
    }
    [[nodiscard]] const char* name() const override { return "garbage"; }

private:
    std::uint32_t next() {
        s_ = s_ * 1664525u + 1013904223u;
        return s_ >> 8;
    }
    std::uint32_t s_;
};

}  // namespace autovision::resim
