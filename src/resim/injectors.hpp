// Standard error-injector variants.
//
// ReSim's default error source drives X on every output of a region being
// reconfigured; Section IV-B notes that "for advanced users, the error
// sources can also be overridden for design-/test-specific purposes using
// object-oriented programming techniques". These are the stock variants a
// verification engineer reaches for:
//
//  * XInjector        — the default (alias of the base class), maximally
//                       pessimistic; anything sampling the region sees X.
//  * HoldLastInjector — outputs freeze at their pre-reconfiguration values:
//                       the optimistic model some 2-state flows implicitly
//                       assume. Useful to show which bugs *only* X finds.
//  * ZeroInjector     — outputs clamp to idle/zero, as if isolation were
//                       built into the fabric.
//  * GarbageInjector  — deterministic pseudo-random defined values each
//                       evaluation: stresses protocol checkers with
//                       plausible-looking junk (spurious requests, wild
//                       addresses) rather than unknowns.
#pragma once

#include "recon/rr_boundary.hpp"

namespace autovision::resim {

using XInjector = ErrorInjector;

/// Freeze the boundary at the last values the outgoing module drove.
class HoldLastInjector final : public ErrorInjector {
public:
    void inject(RrOutputs& o) override {
        if (!captured_) {
            // First evaluation of the window: `o` still holds the previous
            // module's outputs only if the caller pre-filled it; we cannot
            // see them here, so hold idle — the practical effect of a
            // frozen, quiescent module.
            held_ = RrOutputs::idle();
            captured_ = true;
        }
        o = held_;
    }
    [[nodiscard]] const char* name() const override { return "hold-last"; }

    /// Reset between reconfigurations (the portal's window is re-entered).
    void rearm() { captured_ = false; }

    void ckpt_save(rtlsim::SnapWriter& w) const override {
        w.bool8(captured_);
        w.u8(static_cast<std::uint8_t>(held_.req));
        w.u8(static_cast<std::uint8_t>(held_.rnw));
        w.u64(held_.addr.val_plane());
        w.u64(held_.addr.unk_plane());
        w.u64(held_.nbeats.val_plane());
        w.u64(held_.nbeats.unk_plane());
        w.u64(held_.wdata.val_plane());
        w.u64(held_.wdata.unk_plane());
        w.u8(static_cast<std::uint8_t>(held_.done_irq));
    }
    [[nodiscard]] bool ckpt_restore(rtlsim::SnapReader& r) override {
        captured_ = r.bool8();
        held_.req = static_cast<Logic>(r.u8());
        held_.rnw = static_cast<Logic>(r.u8());
        // Locals pin the read order (argument evaluation order is not).
        const std::uint64_t av = r.u64(), au = r.u64();
        held_.addr = Word::from_planes(av, au);
        const std::uint64_t nv = r.u64(), nu = r.u64();
        held_.nbeats = LVec<16>::from_planes(nv, nu);
        const std::uint64_t wv = r.u64(), wu = r.u64();
        held_.wdata = Word::from_planes(wv, wu);
        held_.done_irq = static_cast<Logic>(r.u8());
        return r.ok_so_far();
    }

private:
    bool captured_ = false;
    RrOutputs held_;
};

/// Clamp to idle levels (fabric-level isolation).
class ZeroInjector final : public ErrorInjector {
public:
    void inject(RrOutputs& o) override { o = RrOutputs::idle(); }
    [[nodiscard]] const char* name() const override { return "zeros"; }
};

/// Deterministic defined-value garbage: different every evaluation, but
/// reproducible run to run.
class GarbageInjector final : public ErrorInjector {
public:
    explicit GarbageInjector(std::uint32_t seed = 0xC0FFEE) : s_(seed) {}

    void inject(RrOutputs& o) override {
        o.req = (next() & 1u) ? Logic::L1 : Logic::L0;
        o.rnw = (next() & 1u) ? Logic::L1 : Logic::L0;
        o.addr = Word{next()};
        o.nbeats = LVec<16>{next() & 0x1F};
        o.wdata = Word{next()};
        o.done_irq = (next() & 1u) ? Logic::L1 : Logic::L0;
    }
    [[nodiscard]] const char* name() const override { return "garbage"; }

    /// The LCG position is live PRNG state: snapshotting it keeps the
    /// restored run's garbage stream identical to the uninterrupted one.
    void ckpt_save(rtlsim::SnapWriter& w) const override { w.u32(s_); }
    [[nodiscard]] bool ckpt_restore(rtlsim::SnapReader& r) override {
        s_ = r.u32();
        return r.ok_so_far();
    }

private:
    std::uint32_t next() {
        s_ = s_ * 1664525u + 1013904223u;
        return s_ >> 8;
    }
    std::uint32_t s_;
};

}  // namespace autovision::resim
