// SimB — simulation-only bitstreams.
//
// A SimB substitutes for a real configuration bitstream: it carries the
// same framing a Xilinx bitstream uses (SYNC word, type-1/type-2 packets,
// FAR/CMD/FDRI register writes, DESYNC), but instead of bit-level
// configuration frames its FAR word names the *target reconfigurable
// region* and the *module id* to configure, and its FDRI payload is
// designer-length filler. Table I of the paper is reproduced verbatim by
// SimB::table1_example().
//
// Because the payload length is free, the designer can use a short SimB for
// fast debug turnaround, stress FIFO corner cases, or match the real
// bitstream length for maximum timing accuracy (129K words in AutoVision).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace autovision::resim {

// Framing constants (values follow the Xilinx configuration packet format).
inline constexpr std::uint32_t kSyncWord = 0xAA99'5566;
inline constexpr std::uint32_t kNopWord = 0x2000'0000;

/// Configuration register addresses carried in type-1 packet headers.
enum class CfgReg : std::uint32_t {
    kFar = 1,   ///< frame address register (RR id / module id in a SimB)
    kFdri = 2,  ///< frame data input (the payload)
    kCmd = 4,   ///< command register
};

enum class CfgCmd : std::uint32_t {
    kNull = 0,
    kWcfg = 1,       ///< write configuration
    kGrestore = 10,  ///< reinstate captured flip-flop state (state restore)
    kGcapture = 12,  ///< capture flip-flop state into the config memory
    kDesync = 13,    ///< end of configuration
};

/// Type-1 packet header: writes `count` words to `reg`.
[[nodiscard]] constexpr std::uint32_t type1_write(CfgReg reg,
                                                  std::uint32_t count) {
    return 0x3000'0000u | (static_cast<std::uint32_t>(reg) << 13) |
           (count & 0x7FF);
}

/// Type-2 packet header: long-form word count for the preceding register.
[[nodiscard]] constexpr std::uint32_t type2_write(std::uint32_t count) {
    return 0x5000'0000u | (count & 0x07FF'FFFF);
}

/// FAR encoding of a SimB: RR id in bits [31:24], module id in [23:16].
[[nodiscard]] constexpr std::uint32_t far_word(std::uint8_t rr_id,
                                               std::uint8_t module_id) {
    return (static_cast<std::uint32_t>(rr_id) << 24) |
           (static_cast<std::uint32_t>(module_id) << 16);
}

[[nodiscard]] constexpr std::uint8_t far_rr(std::uint32_t far) {
    return static_cast<std::uint8_t>(far >> 24);
}
[[nodiscard]] constexpr std::uint8_t far_module(std::uint32_t far) {
    return static_cast<std::uint8_t>(far >> 16);
}

/// Builder for SimBs.
struct SimB {
    std::uint8_t rr_id = 1;
    std::uint8_t module_id = 1;
    std::uint32_t payload_words = 4;
    std::uint32_t seed = 0x5650'EEA7;  ///< filler generator seed
    /// Append a GRESTORE after the payload: the newly configured module
    /// comes up with its previously captured state instead of the
    /// post-configuration initial state (state restoration, FPGA'12).
    bool restore_state = false;

    /// Full word stream: SYNC, NOP, FAR write, CMD WCFG, FDRI type-2
    /// payload, [CMD GRESTORE,] CMD DESYNC — the structure of Table I.
    [[nodiscard]] std::vector<std::uint32_t> build() const;

    /// A readback/capture SimB: SYNC, FAR, CMD GCAPTURE, CMD DESYNC. The
    /// named module's state is snapshotted by the simulation-only layer.
    [[nodiscard]] std::vector<std::uint32_t> build_capture() const;

    /// Total length in words for a given payload length (10 framing words
    /// plus the payload).
    [[nodiscard]] static std::uint32_t length_for_payload(
        std::uint32_t payload_words) {
        return 10 + payload_words;
    }

    /// The exact SimB of the paper's Table I (module 0x02 into RR 0x01,
    /// the four published filler words).
    [[nodiscard]] static std::vector<std::uint32_t> table1_example();

    /// Human-readable rendering of a SimB word stream in the style of
    /// Table I: one "word — explanation" line per row.
    [[nodiscard]] static std::string describe(
        const std::vector<std::uint32_t>& words);
};

}  // namespace autovision::resim
