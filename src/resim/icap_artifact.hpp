// ICAP artifact — ReSim's substitute for the FPGA's internal configuration
// access port.
//
// Sits behind the user design's IcapCTRL exactly where the hard ICAP
// primitive would, and parses the SimB stream the controller delivers:
// SYNC opens a configuration session, FAR stages the target region/module,
// the FDRI payload drives the error-injection window and triggers the swap
// on its final word, DESYNC closes the session. Anything malformed —
// payload truncated, DESYNC mid-payload, X data — is reported to the
// diagnostics, which is how bitstream-transfer bugs (bug.dpr.4/5) surface
// in simulation.
#pragma once

#include <chrono>
#include <cstdint>
#include <string>

#include "kernel/kernel.hpp"
#include "obs/recorder.hpp"
#include "portal.hpp"
#include "recon/icap_port.hpp"

namespace autovision::resim {

class IcapArtifact final : public rtlsim::Module, public IcapPortIf {
public:
    IcapArtifact(rtlsim::Scheduler& sch, const std::string& name,
                 ExtendedPortal& portal);

    void icap_write(rtlsim::Word w) override;

    /// Attach (or detach, with nullptr) the structured event recorder.
    void set_observer(obs::EventRecorder* rec) { obs_ = rec; }

    // --- statistics -------------------------------------------------------
    [[nodiscard]] std::uint64_t words_received() const { return words_; }
    [[nodiscard]] std::uint64_t simbs_completed() const { return simbs_; }
    /// Transfers abandoned mid-payload (SYNC observed before the FDRI
    /// payload completed — the bug.dpr.4/5 truncation signature).
    [[nodiscard]] std::uint64_t truncations() const { return truncations_; }
    [[nodiscard]] std::uint64_t ignored_before_sync() const {
        return ignored_;
    }
    /// True between SYNC and DESYNC (the DURING-reconfiguration phase).
    [[nodiscard]] bool in_session() const { return state_ != St::Desynced; }
    /// True while FDRI payload words are outstanding.
    [[nodiscard]] bool payload_pending() const { return payload_left_ > 0; }

    /// Accumulated wall-clock time spent parsing (including portal calls);
    /// only meaningful when the scheduler has profiling enabled. Feeds the
    /// simulation-overhead experiment (E3).
    [[nodiscard]] std::chrono::nanoseconds self_time() const {
        return self_time_;
    }

    // --- checkpoint ------------------------------------------------------
    /// Parser FSM + counters. `self_time_` is host wall clock, not
    /// simulation state, and is deliberately excluded.
    void ckpt_save(rtlsim::SnapWriter& w) const {
        w.u8(static_cast<std::uint8_t>(state_));
        w.u32(payload_left_);
        w.u32(payload_total_);
        w.bool8(fdri_type2_pending_);
        w.u64(words_);
        w.u64(simbs_);
        w.u64(ignored_);
        w.u64(truncations_);
        w.u32(x_reports_);
    }
    [[nodiscard]] bool ckpt_restore(rtlsim::SnapReader& r) {
        const std::uint8_t st = r.u8();
        if (st > static_cast<std::uint8_t>(St::Payload)) return false;
        state_ = static_cast<St>(st);
        payload_left_ = r.u32();
        payload_total_ = r.u32();
        fdri_type2_pending_ = r.bool8();
        words_ = r.u64();
        simbs_ = r.u64();
        ignored_ = r.u64();
        truncations_ = r.u64();
        x_reports_ = r.u32();
        return r.ok_so_far() && payload_left_ <= payload_total_;
    }

private:
    enum class St { Desynced, Synced, ExpectFar, ExpectCmd, Payload };

    void icap_write_body(rtlsim::Word w);
    void packet_header(std::uint32_t w);

    /// Event-recorder shorthand (no-op while unobserved).
    void note(obs::EventKind k, std::uint32_t a = 0, std::uint64_t b = 0) {
        if (obs_ != nullptr) {
            obs_->record(sch_.now(), k, obs::Source::kIcap, a, b);
        }
    }

    ExtendedPortal& portal_;
    obs::EventRecorder* obs_ = nullptr;
    St state_ = St::Desynced;
    std::uint32_t payload_left_ = 0;
    std::uint32_t payload_total_ = 0;
    bool fdri_type2_pending_ = false;
    std::uint64_t words_ = 0;
    std::uint64_t simbs_ = 0;
    std::uint64_t ignored_ = 0;
    std::uint64_t truncations_ = 0;
    unsigned x_reports_ = 0;
    std::chrono::nanoseconds self_time_{0};
};

}  // namespace autovision::resim
