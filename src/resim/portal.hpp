// Extended Portal — ReSim's substitute for the configuration memory of a
// reconfigurable region.
//
// The portal owns the mapping from (RR id, module id) in a SimB's FAR word
// to the module slots of an RrBoundary. The ICAP artifact calls into it as
// it parses the SimB stream:
//   * stage()  — FAR written: remember the target region/module;
//   * begin()  — first FDRI payload word: start the DURING-reconfiguration
//                phase (error injection on the region outputs);
//   * finish() — last FDRI payload word: stop injection and swap the new
//                module in, in its post-configuration initial state;
//   * desync() — CMD DESYNC: close the phase (bookkeeping/validation).
//
// The module swap deliberately happens only after *every* payload word has
// been written — the timing fidelity that exposed the paper's engine-reset
// bug (bug.dpr.6b).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "kernel/kernel.hpp"
#include "obs/recorder.hpp"
#include "recon/rr_boundary.hpp"

namespace autovision::resim {

class ExtendedPortal final : public rtlsim::Module {
public:
    ExtendedPortal(rtlsim::Scheduler& sch, const std::string& name);

    /// Bind module id `module_id` of region `rr_id` to slot `slot` of
    /// `boundary`. A region's ids live in the SimB address space; slots are
    /// RrBoundary indices.
    void map_module(std::uint8_t rr_id, std::uint8_t module_id,
                    RrBoundary& boundary, unsigned slot);

    /// Initial (full-bitstream) configuration: activate a module without a
    /// SimB, as the power-on full configuration would.
    void initial_configuration(std::uint8_t rr_id, std::uint8_t module_id);

    /// Ablation knob (DESIGN.md section 5). ReSim's fidelity hinges on NOT
    /// activating the new module until every SimB word is written
    /// (kAtPayloadEnd, the default). kAtFar swaps as soon as the FAR names
    /// the module — the zero-delay semantics of DCS/Virtual-Multiplexing —
    /// which masks timing bugs like bug.dpr.6b.
    enum class SwapTiming { kAtPayloadEnd, kAtFar };
    void set_swap_timing(SwapTiming t) { timing_ = t; }
    [[nodiscard]] SwapTiming swap_timing() const { return timing_; }

    // --- ICAP artifact callbacks ----------------------------------------
    void stage(std::uint8_t rr_id, std::uint8_t module_id);
    void begin();
    void finish();
    void desync();

    /// Abandon an in-flight transfer (truncated FDRI payload): close the
    /// error-injection window without swapping — the half-written module
    /// never activates, mirroring hardware where an aborted partial
    /// bitstream leaves the region on its previous configuration.
    void abort();

    /// CMD GCAPTURE: snapshot the staged module's architectural state, as
    /// configuration readback would. The module must be resident and
    /// quiescent (no bus transaction in flight) — violations are reported.
    void capture();

    /// CMD GRESTORE: reinstate the staged module's captured state (the
    /// module must have just been configured / be resident).
    void restore();

    /// Attach (or detach, with nullptr) the structured event recorder.
    void set_observer(obs::EventRecorder* rec) { obs_ = rec; }

    // --- statistics -------------------------------------------------------
    [[nodiscard]] std::uint64_t reconfigurations() const { return swaps_; }
    [[nodiscard]] std::uint64_t aborts() const { return aborts_; }
    [[nodiscard]] bool phase_open() const { return phase_open_; }
    [[nodiscard]] std::uint64_t captures() const { return captures_; }
    [[nodiscard]] std::uint64_t restores() const { return restores_; }
    [[nodiscard]] bool has_saved_state(std::uint8_t rr_id,
                                       std::uint8_t module_id) const {
        return states_.count({rr_id, module_id}) != 0;
    }

    // --- checkpoint ------------------------------------------------------
    /// Session cursor + captured state images. The module map is topology
    /// (rebuilt by elaboration) and is not serialized.
    void ckpt_save(rtlsim::SnapWriter& w) const {
        w.u32(static_cast<std::uint32_t>(states_.size()));
        for (const auto& [key, img] : states_) {
            w.u8(key.first);
            w.u8(key.second);
            w.bytes(img);
        }
        w.u64(captures_);
        w.u64(restores_);
        w.u8(static_cast<std::uint8_t>(timing_));
        w.bool8(staged_);
        w.bool8(phase_open_);
        w.u8(cur_rr_);
        w.u8(cur_module_);
        w.u64(swaps_);
        w.u64(aborts_);
    }
    [[nodiscard]] bool ckpt_restore(rtlsim::SnapReader& r) {
        states_.clear();
        const std::uint32_t n = r.u32();
        for (std::uint32_t i = 0; i < n && r.ok_so_far(); ++i) {
            const std::uint8_t rr = r.u8();
            const std::uint8_t mod = r.u8();
            states_[{rr, mod}] = r.bytes();
        }
        captures_ = r.u64();
        restores_ = r.u64();
        const std::uint8_t t = r.u8();
        if (t > static_cast<std::uint8_t>(SwapTiming::kAtFar)) return false;
        timing_ = static_cast<SwapTiming>(t);
        staged_ = r.bool8();
        phase_open_ = r.bool8();
        cur_rr_ = r.u8();
        cur_module_ = r.u8();
        swaps_ = r.u64();
        aborts_ = r.u64();
        return r.ok_so_far();
    }

private:
    struct Slot {
        RrBoundary* boundary = nullptr;
        unsigned slot = 0;
    };

    [[nodiscard]] Slot* find(std::uint8_t rr_id, std::uint8_t module_id);

    /// Event-recorder shorthand (no-op while unobserved). Events carry the
    /// staged region as their region tag — SimB RR ids are 1-based (the
    /// static region is id 0), so region index = rr id - 1.
    void note(obs::EventKind k, std::uint32_t a = 0, std::uint64_t b = 0) {
        if (obs_ != nullptr) {
            obs_->record(sch_.now(), k, obs::Source::kPortal, a, b,
                         cur_rr_ > 0 ? static_cast<std::uint8_t>(cur_rr_ - 1)
                                     : std::uint8_t{0});
        }
    }

    obs::EventRecorder* obs_ = nullptr;
    std::map<std::pair<std::uint8_t, std::uint8_t>, Slot> map_;
    std::map<std::pair<std::uint8_t, std::uint8_t>, std::vector<std::uint8_t>>
        states_;
    std::uint64_t captures_ = 0;
    std::uint64_t restores_ = 0;
    SwapTiming timing_ = SwapTiming::kAtPayloadEnd;
    bool staged_ = false;
    bool phase_open_ = false;
    std::uint8_t cur_rr_ = 0;
    std::uint8_t cur_module_ = 0;
    std::uint64_t swaps_ = 0;
    std::uint64_t aborts_ = 0;
};

}  // namespace autovision::resim
