#include "icap_artifact.hpp"

#include "simb.hpp"

namespace autovision::resim {

using rtlsim::Word;

IcapArtifact::IcapArtifact(rtlsim::Scheduler& sch, const std::string& name,
                           ExtendedPortal& portal)
    : Module(sch, name), portal_(portal) {}

void IcapArtifact::packet_header(std::uint32_t w) {
    // Packet type lives in bits [31:29]: 001 = type 1, 010 = type 2.
    const std::uint32_t type = w >> 29;

    if (type == 1) {
        const std::uint32_t opcode = (w >> 27) & 0x3;
        if (opcode == 0) return;  // NOP
        if (opcode != 2) {
            report("unsupported type-1 opcode (only writes are modelled)");
            return;
        }
        const auto reg = static_cast<CfgReg>((w >> 13) & 0x1F);
        const std::uint32_t count = w & 0x7FF;
        switch (reg) {
            case CfgReg::kFar:
                if (count != 1) report("FAR write with count != 1");
                state_ = St::ExpectFar;
                return;
            case CfgReg::kCmd:
                if (count != 1) report("CMD write with count != 1");
                state_ = St::ExpectCmd;
                return;
            case CfgReg::kFdri:
                if (count == 0) {
                    fdri_type2_pending_ = true;  // type-2 size follows
                } else {
                    note(obs::EventKind::kFdriHeader, count);
                    payload_left_ = count;
                    payload_total_ = count;
                    state_ = St::Payload;
                }
                return;
            default:
                report("write to unsupported configuration register");
                return;
        }
    }
    if (type == 2) {
        if (!fdri_type2_pending_) {
            report("type-2 packet without preceding FDRI header");
            note(obs::EventKind::kMalformed,
                 static_cast<std::uint32_t>(
                     obs::MalformedCode::kType2WithoutFdriHeader));
        }
        fdri_type2_pending_ = false;
        payload_left_ = w & 0x07FF'FFFF;
        payload_total_ = payload_left_;
        note(obs::EventKind::kFdriHeader, payload_left_, /*type2=*/1);
        if (payload_left_ == 0) {
            report("FDRI payload of zero words");
            return;
        }
        state_ = St::Payload;
        return;
    }
    report("unrecognised packet header");
}

void IcapArtifact::icap_write(Word w) {
    if (sch_.profiling()) {
        const auto t0 = std::chrono::steady_clock::now();
        icap_write_body(w);
        self_time_ += std::chrono::steady_clock::now() - t0;
        return;
    }
    icap_write_body(w);
}

void IcapArtifact::icap_write_body(Word w) {
    ++words_;
    if (w.has_unknown()) {
        if (x_reports_ < 5) {
            ++x_reports_;
            report("X written to ICAP (corrupted bitstream transfer)");
            note(obs::EventKind::kMalformed,
                 static_cast<std::uint32_t>(obs::MalformedCode::kXOnIcap));
        }
        return;
    }
    const auto v = static_cast<std::uint32_t>(w.to_u64());

    switch (state_) {
        case St::Desynced:
            if (v == kSyncWord) {
                note(obs::EventKind::kSync);
                state_ = St::Synced;
            } else {
                // Real ICAPs ignore pre-SYNC words; count them so a test
                // can detect a controller streaming from a wrong address.
                ++ignored_;
            }
            return;

        case St::Synced:
            packet_header(v);
            return;

        case St::ExpectFar:
            note(obs::EventKind::kFarWrite, far_rr(v), far_module(v));
            portal_.stage(far_rr(v), far_module(v));
            state_ = St::Synced;
            return;

        case St::ExpectCmd:
            note(obs::EventKind::kCmdWrite, v);
            switch (static_cast<CfgCmd>(v)) {
                case CfgCmd::kWcfg:
                case CfgCmd::kNull:
                    break;
                case CfgCmd::kGcapture:
                    portal_.capture();
                    break;
                case CfgCmd::kGrestore:
                    portal_.restore();
                    break;
                case CfgCmd::kDesync:
                    portal_.desync();
                    state_ = St::Desynced;
                    ++simbs_;
                    note(obs::EventKind::kDesync,
                         static_cast<std::uint32_t>(simbs_));
                    return;
                default:
                    report("unsupported CMD value");
                    break;
            }
            state_ = St::Synced;
            return;

        case St::Payload:
            // Truncation detection. A SYNC word can only appear here when
            // the previous transfer stopped short and a *new* SimB is
            // starting: the controller never interleaves, and the SimB
            // payload generator never emits the SYNC pattern. (An earlier
            // revision looked for a leftover payload count at CMD DESYNC,
            // but that branch was unreachable — in St::Payload the DESYNC
            // framing words themselves are consumed as payload, so the
            // count always reached zero first.)
            if (v == kSyncWord) {
                report("FDRI payload truncated: SYNC observed with " +
                       std::to_string(payload_left_) + " of " +
                       std::to_string(payload_total_) +
                       " payload words outstanding");
                note(obs::EventKind::kMalformed,
                     static_cast<std::uint32_t>(
                         obs::MalformedCode::kTruncatedPayload),
                     payload_left_);
                ++truncations_;
                payload_left_ = 0;
                portal_.abort();
                // The SYNC word re-synchronises the parser: the new
                // transfer proceeds normally.
                note(obs::EventKind::kSync);
                state_ = St::Synced;
                return;
            }
            if (payload_left_ == payload_total_) {
                note(obs::EventKind::kPayloadBegin, payload_total_);
                portal_.begin();
            }
            --payload_left_;
            if (payload_left_ == 0) {
                note(obs::EventKind::kPayloadEnd, payload_total_);
                portal_.finish();
                state_ = St::Synced;
            }
            return;
    }
}

}  // namespace autovision::resim
