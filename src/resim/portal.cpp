#include "portal.hpp"

namespace autovision::resim {

ExtendedPortal::ExtendedPortal(rtlsim::Scheduler& sch, const std::string& name)
    : Module(sch, name) {}

void ExtendedPortal::map_module(std::uint8_t rr_id, std::uint8_t module_id,
                                RrBoundary& boundary, unsigned slot) {
    map_[{rr_id, module_id}] = Slot{&boundary, slot};
}

ExtendedPortal::Slot* ExtendedPortal::find(std::uint8_t rr_id,
                                           std::uint8_t module_id) {
    const auto it = map_.find({rr_id, module_id});
    return it == map_.end() ? nullptr : &it->second;
}

void ExtendedPortal::initial_configuration(std::uint8_t rr_id,
                                           std::uint8_t module_id) {
    Slot* s = find(rr_id, module_id);
    if (s == nullptr) {
        report("initial configuration of unmapped module");
        return;
    }
    s->boundary->select(static_cast<int>(s->slot));
}

void ExtendedPortal::stage(std::uint8_t rr_id, std::uint8_t module_id) {
    cur_rr_ = rr_id;
    cur_module_ = module_id;
    staged_ = true;
    Slot* s = find(rr_id, module_id);
    if (s == nullptr) {
        char buf[64];
        std::snprintf(buf, sizeof buf,
                      "FAR names unmapped RR 0x%02x / module 0x%02x", rr_id,
                      module_id);
        report(buf);
        return;
    }
    if (timing_ == SwapTiming::kAtFar) {
        // Ablation: zero-delay swap at the FAR write, before any
        // configuration data has been transferred.
        s->boundary->select(static_cast<int>(s->slot));
    }
}

void ExtendedPortal::begin() {
    if (!staged_) {
        report("FDRI payload before a FAR write; no target staged");
        return;
    }
    Slot* s = find(cur_rr_, cur_module_);
    if (s == nullptr) return;  // already reported at stage()
    phase_open_ = true;
    s->boundary->set_reconfiguring(true);
}

void ExtendedPortal::finish() {
    Slot* s = staged_ ? find(cur_rr_, cur_module_) : nullptr;
    if (s == nullptr) return;
    // All payload words written: stop injecting errors and activate the new
    // module in its post-configuration state (unless the ablation already
    // swapped it at the FAR write).
    s->boundary->set_reconfiguring(false);
    if (timing_ == SwapTiming::kAtPayloadEnd) {
        s->boundary->select(static_cast<int>(s->slot));
    }
    ++swaps_;
    note(obs::EventKind::kSwap, cur_rr_, cur_module_);
}

void ExtendedPortal::abort() {
    // Truncated transfer: close the injection window but keep whatever
    // module was resident before the transfer started.
    if (staged_) {
        Slot* s = find(cur_rr_, cur_module_);
        if (s != nullptr) s->boundary->set_reconfiguring(false);
    }
    phase_open_ = false;
    staged_ = false;
    ++aborts_;
    note(obs::EventKind::kAbort, cur_rr_, cur_module_);
}

void ExtendedPortal::capture() {
    if (!staged_) {
        report("GCAPTURE before a FAR write; no target staged");
        return;
    }
    Slot* s = find(cur_rr_, cur_module_);
    if (s == nullptr) return;
    if (s->boundary->selected() != static_cast<int>(s->slot)) {
        report("GCAPTURE of a module that is not resident");
        return;
    }
    std::vector<std::uint8_t> st =
        s->boundary->module(s->slot).rm_save_state();
    if (st.empty()) {
        report("GCAPTURE failed: module not quiescent or stateless");
        return;
    }
    states_[{cur_rr_, cur_module_}] = std::move(st);
    ++captures_;
    note(obs::EventKind::kCapture, cur_rr_, cur_module_);
}

void ExtendedPortal::restore() {
    if (!staged_) {
        report("GRESTORE before a FAR write; no target staged");
        return;
    }
    Slot* s = find(cur_rr_, cur_module_);
    if (s == nullptr) return;
    if (s->boundary->selected() != static_cast<int>(s->slot)) {
        report("GRESTORE of a module that is not resident");
        return;
    }
    const auto it = states_.find({cur_rr_, cur_module_});
    if (it == states_.end()) {
        report("GRESTORE without a previously captured state");
        return;
    }
    if (!s->boundary->module(s->slot).rm_restore_state(it->second)) {
        report("GRESTORE rejected: state image does not match the module");
        return;
    }
    ++restores_;
    note(obs::EventKind::kRestore, cur_rr_, cur_module_);
}

void ExtendedPortal::desync() {
    if (phase_open_) {
        phase_open_ = false;
    }
    staged_ = false;
}

}  // namespace autovision::resim
