#include "simb.hpp"

#include <cstdio>

namespace autovision::resim {

std::vector<std::uint32_t> SimB::build() const {
    std::vector<std::uint32_t> w;
    w.reserve(length_for_payload(payload_words));
    w.push_back(kSyncWord);
    w.push_back(kNopWord);
    w.push_back(type1_write(CfgReg::kFar, 1));
    w.push_back(far_word(rr_id, module_id));
    w.push_back(type1_write(CfgReg::kCmd, 1));
    w.push_back(static_cast<std::uint32_t>(CfgCmd::kWcfg));
    w.push_back(type1_write(CfgReg::kFdri, 0));
    w.push_back(type2_write(payload_words));
    std::uint32_t s = seed;
    for (std::uint32_t i = 0; i < payload_words; ++i) {
        w.push_back(s);
        s = s * 1664525u + 1013904223u;  // deterministic filler
    }
    if (restore_state) {
        w.push_back(type1_write(CfgReg::kCmd, 1));
        w.push_back(static_cast<std::uint32_t>(CfgCmd::kGrestore));
    }
    w.push_back(type1_write(CfgReg::kCmd, 1));
    w.push_back(static_cast<std::uint32_t>(CfgCmd::kDesync));
    return w;
}

std::vector<std::uint32_t> SimB::build_capture() const {
    return {
        kSyncWord,
        type1_write(CfgReg::kFar, 1),
        far_word(rr_id, module_id),
        type1_write(CfgReg::kCmd, 1),
        static_cast<std::uint32_t>(CfgCmd::kGcapture),
        type1_write(CfgReg::kCmd, 1),
        static_cast<std::uint32_t>(CfgCmd::kDesync),
    };
}

std::vector<std::uint32_t> SimB::table1_example() {
    // Exactly the SimB listed in Table I of the paper.
    return {
        0xAA995566,                      // SYNC word
        0x20000000,                      // NOP
        0x30002001, 0x01020000,          // Type 1 write FAR; FA = 0x01020000
        0x30008001, 0x00000001,          // Type 1 write CMD; WCFG
        0x30004000, 0x50000004,          // Type 1/2 write FDRI; size = 4
        0x5650EEA7, 0xF4649889,          // random SimB words 0..3
        0xA9B759F9, 0x4E438C83,
        0x30008001, 0x0000000D,          // Type 1 write CMD; DESYNC
    };
}

std::string SimB::describe(const std::vector<std::uint32_t>& words) {
    std::string out;
    char line[128];
    enum class Next { None, Far, Cmd };
    Next next = Next::None;
    std::uint32_t payload_left = 0;
    std::uint32_t payload_idx = 0;
    bool fdri_pending = false;

    for (const std::uint32_t w : words) {
        const char* expl = "unknown word";
        char dyn[96];
        if (payload_left > 0) {
            std::snprintf(dyn, sizeof dyn, "random SimB word %u%s",
                          payload_idx,
                          payload_idx == 0 ? " (starts error injection)"
                          : payload_left == 1
                              ? " (ends error injection, triggers swap)"
                              : "");
            expl = dyn;
            ++payload_idx;
            --payload_left;
        } else if (next == Next::Far) {
            std::snprintf(dyn, sizeof dyn,
                          "FA: configure module id=0x%02x in RR id=0x%02x",
                          far_module(w), far_rr(w));
            expl = dyn;
            next = Next::None;
        } else if (next == Next::Cmd) {
            expl = (w == static_cast<std::uint32_t>(CfgCmd::kWcfg))
                       ? "CMD WCFG"
                       : (w == static_cast<std::uint32_t>(CfgCmd::kDesync))
                             ? "CMD DESYNC (end of reconfiguration)"
                             : "CMD (other)";
            next = Next::None;
        } else if (w == kSyncWord) {
            expl = "SYNC word (start of reconfiguration)";
        } else if ((w >> 29) == 1 && ((w >> 27) & 3) == 0) {
            expl = "NOP";
        } else if ((w >> 29) == 2) {
            payload_left = w & 0x07FF'FFFF;
            payload_idx = 0;
            // Mirror IcapArtifact::packet_header: a type-2 word is only
            // well-formed directly after a zero-count type-1 FDRI header.
            std::snprintf(dyn, sizeof dyn,
                          "Type 2 write FDRI, size=%u%s", payload_left,
                          fdri_pending
                              ? ""
                              : " (MALFORMED: no preceding FDRI header)");
            fdri_pending = false;
            expl = dyn;
        } else if ((w >> 29) == 1 && ((w >> 27) & 3) == 2) {
            const auto reg = static_cast<CfgReg>((w >> 13) & 0x1F);
            const std::uint32_t cnt = w & 0x7FF;
            switch (reg) {
                case CfgReg::kFar:
                    expl = "Type 1 write FAR";
                    next = Next::Far;
                    break;
                case CfgReg::kCmd:
                    expl = "Type 1 write CMD";
                    next = Next::Cmd;
                    break;
                case CfgReg::kFdri:
                    if (cnt == 0) {
                        expl = "Type 1 write FDRI (size follows)";
                        fdri_pending = true;
                    } else {
                        payload_left = cnt;
                        payload_idx = 0;
                        expl = "Type 1 write FDRI";
                    }
                    break;
                default:
                    expl = "Type 1 write (other register)";
                    break;
            }
        }
        std::snprintf(line, sizeof line, "0x%08X  %s\n", w, expl);
        out += line;
    }
    if (payload_left > 0) {
        std::snprintf(line, sizeof line,
                      "(truncated stream: %u payload words missing)\n",
                      payload_left);
        out += line;
    }
    return out;
}

}  // namespace autovision::resim
