#include "stream_harness.hpp"

#include <sstream>
#include <utility>

#include "bus/dcr.hpp"
#include "bus/memory.hpp"
#include "bus/plb.hpp"
#include "ckpt/checkpoint.hpp"
#include "engines/census_engine.hpp"
#include "engines/engine_regs.hpp"
#include "engines/matching_engine.hpp"
#include "kernel/clock.hpp"
#include "kernel/snapshot.hpp"
#include "obs/recorder.hpp"
#include "recon/rr_boundary.hpp"
#include "resim/icap_artifact.hpp"
#include "resim/portal.hpp"

namespace autovision::scen {

namespace {

using rtlsim::Time;

constexpr Time kClk = 10 * rtlsim::NS;

/// Config hash pinning the stream testbench's (fixed) elaboration. The
/// harness has no configuration knobs, so the hash is a version string:
/// bump the suffix whenever the testbench topology changes, and stale boot
/// snapshots are rejected instead of restored into the wrong netlist.
const std::uint64_t kStreamTbHash =
    rtlsim::snap_hash64("autovision.streamtb.v1");

/// The minimal DPR testbench run_stream_scenario plays scenarios on,
/// factored out so a boot snapshot (elaborate + reset settle) can be taken
/// once and restored per job instead of re-simulating the prefix.
struct StreamTb {
    rtlsim::Scheduler sch;
    rtlsim::Clock clk{sch, "clk", kClk};
    rtlsim::ResetGen rst{sch, "rst", 3 * kClk};
    Memory mem{Memory::Config{0, 1u << 20, 4}};
    Plb plb{sch, "plb", clk.out, rst.out, Plb::Config{2, 16, 1u << 30}};
    rtlsim::Signal<rtlsim::Logic> done_line{sch, "done_line",
                                            rtlsim::Logic::L0};
    DcrChain dcr{sch, "dcr", clk.out, rst.out};
    EngineRegs cie_regs{sch, "cie_regs", clk.out, 0x60};
    EngineRegs me_regs{sch, "me_regs", clk.out, 0x68};
    CensusEngine cie{sch, "cie", clk.out, rst.out, cie_regs};
    MatchingEngine me{sch, "me", clk.out, rst.out, me_regs};
    RrBoundary rr{sch, "rr", plb.master(1), done_line};
    resim::ExtendedPortal portal{sch, "portal"};
    resim::IcapArtifact icap{sch, "icap", portal};
    obs::EventRecorder rec;

    StreamTb() {
        plb.attach_slave(mem);
        dcr.attach(cie_regs);
        dcr.attach(me_regs);
        rr.add_module(cie);
        rr.add_module(me);
        portal.map_module(1, 1, rr, 0);
        portal.map_module(1, 2, rr, 1);
        portal.initial_configuration(1, 1);
        rec.set_enabled(true);
        icap.set_observer(&rec);
        portal.set_observer(&rec);
        rr.set_observer(&rec);
        dcr.set_observer(&rec);
    }

    void boot() { sch.run_until(8 * kClk); }  // reset settles

    /// Snapshot at a quiescent, bus-idle point (the boot snapshot). The
    /// harness never saves with a DCR token or DMA burst in flight, so no
    /// closure re-arming is needed on restore.
    [[nodiscard]] bool save(std::ostream& os) const {
        if (!sch.ckpt_quiescent() || dcr.busy()) return false;
        ckpt::Saver saver(
            ckpt::Manifest{ckpt::kFormatVersion, kStreamTbHash, sch.now()});
        sch.ckpt_save(saver.section("kernel"));
        clk.ckpt_save(saver.section("clock"));
        rst.ckpt_save(saver.section("reset"));
        mem.ckpt_save(saver.section("memory"));
        plb.ckpt_save(saver.section("plb"));
        dcr.ckpt_save(saver.section("dcr"));
        cie_regs.ckpt_save(saver.section("cie_regs"));
        me_regs.ckpt_save(saver.section("me_regs"));
        cie.ckpt_save(saver.section("cie"));
        me.ckpt_save(saver.section("me"));
        rr.ckpt_save(saver.section("rr"));
        portal.ckpt_save(saver.section("portal"));
        icap.ckpt_save(saver.section("icap"));
        rec.ckpt_save(saver.section("recorder"));
        sch.ckpt_save_signals(saver.section("signals"));
        return saver.write_to(os);
    }

    [[nodiscard]] bool restore(const std::string& blob) {
        std::istringstream is(blob);
        ckpt::Loader loader;
        if (!loader.load(is, kStreamTbHash)) return false;
        const auto section = [&](const char* name, auto&& target) {
            rtlsim::SnapReader r = loader.reader(name);
            return target.ckpt_restore(r);
        };
        {
            rtlsim::SnapReader r = loader.reader("kernel");
            if (!sch.ckpt_restore(r)) return false;
        }
        if (!section("clock", clk)) return false;
        if (!section("reset", rst)) return false;
        if (!section("memory", mem)) return false;
        if (!section("plb", plb)) return false;
        if (!section("dcr", dcr)) return false;
        if (!section("cie_regs", cie_regs)) return false;
        if (!section("me_regs", me_regs)) return false;
        if (!section("cie", cie)) return false;
        if (!section("me", me)) return false;
        if (!section("rr", rr)) return false;
        if (!section("portal", portal)) return false;
        if (!section("icap", icap)) return false;
        if (!section("recorder", rec)) return false;
        {
            rtlsim::SnapReader r = loader.reader("signals");
            if (!sch.ckpt_restore_signals(r)) return false;
        }
        return true;
    }
};

}  // namespace

std::string stream_boot_snapshot() {
    StreamTb tb;
    tb.boot();
    std::ostringstream os;
    if (!tb.save(os)) return {};
    return os.str();
}

StreamResult run_stream_scenario(const Scenario& scenario,
                                 const std::atomic<bool>* cancel,
                                 const std::string* boot) {
    StreamTb tb;
    // Warm start: skip the shared elaborate-and-reset prefix by restoring
    // the boot snapshot. A stale or corrupt blob falls back to the cold
    // path (correctness first, speed second).
    if (boot == nullptr || boot->empty() || !tb.restore(*boot)) {
        tb.boot();
    }

    for (const StreamSession& ss : scenario.sessions) {
        const std::vector<rtlsim::Word> words = ss.words();
        // One DCR transaction per session, launched once the payload window
        // is open — the traffic the xwin.cross bins observe.
        bool traffic_pending = ss.dcr != DcrTraffic::kNone;
        for (const rtlsim::Word& w : words) {
            if (cancel != nullptr &&
                cancel->load(std::memory_order_relaxed)) {
                break;
            }
            tb.icap.icap_write(w);
            if (traffic_pending && tb.icap.payload_pending() &&
                !tb.dcr.busy()) {
                traffic_pending = false;
                if (ss.dcr == DcrTraffic::kRead) {
                    tb.dcr.start_read(0x60 + EngineRegs::kStatus,
                                      [](rtlsim::Word) {});
                } else {
                    tb.dcr.start_write(0x60 + EngineRegs::kSrc,
                                       rtlsim::Word{0x1234});
                }
            }
            tb.sch.run_until(tb.sch.now() + ss.word_gap * kClk);
        }
        // Let any in-flight DCR token and boundary settle between sessions.
        tb.sch.run_until(tb.sch.now() + 16 * kClk);
        if (cancel != nullptr && cancel->load(std::memory_order_relaxed)) {
            break;
        }
    }

    StreamResult res;
    res.swaps = tb.portal.reconfigurations();
    res.aborts = tb.portal.aborts();
    res.truncations = tb.icap.truncations();
    res.captures = tb.portal.captures();
    res.restores = tb.portal.restores();
    res.diagnostics = tb.sch.diagnostics().size();
    res.diagnostic_text.reserve(res.diagnostics);
    for (const rtlsim::Diag& d : tb.sch.diagnostics()) {
        res.diagnostic_text.push_back(d.source + ": " + d.message);
    }
    res.events = tb.rec.snapshot();
    res.clk_period = kClk;
    res.sim_time = tb.sch.now();
    res.stats = tb.sch.stats;
    return res;
}

}  // namespace autovision::scen
