#include "stream_harness.hpp"

#include "bus/dcr.hpp"
#include "bus/memory.hpp"
#include "bus/plb.hpp"
#include "engines/census_engine.hpp"
#include "engines/engine_regs.hpp"
#include "engines/matching_engine.hpp"
#include "kernel/clock.hpp"
#include "obs/recorder.hpp"
#include "recon/rr_boundary.hpp"
#include "resim/icap_artifact.hpp"
#include "resim/portal.hpp"

namespace autovision::scen {

using rtlsim::Time;

StreamResult run_stream_scenario(const Scenario& scenario,
                                 const std::atomic<bool>* cancel) {
    constexpr Time kClk = 10 * rtlsim::NS;

    rtlsim::Scheduler sch;
    rtlsim::Clock clk{sch, "clk", kClk};
    rtlsim::ResetGen rst{sch, "rst", 3 * kClk};
    Memory mem{Memory::Config{0, 1u << 20, 4}};
    Plb plb{sch, "plb", clk.out, rst.out, Plb::Config{2, 16, 1u << 30}};
    rtlsim::Signal<rtlsim::Logic> done_line{sch, "done_line",
                                            rtlsim::Logic::L0};
    DcrChain dcr{sch, "dcr", clk.out, rst.out};
    EngineRegs cie_regs{sch, "cie_regs", clk.out, 0x60};
    EngineRegs me_regs{sch, "me_regs", clk.out, 0x68};
    CensusEngine cie{sch, "cie", clk.out, rst.out, cie_regs};
    MatchingEngine me{sch, "me", clk.out, rst.out, me_regs};
    RrBoundary rr{sch, "rr", plb.master(1), done_line};
    resim::ExtendedPortal portal{sch, "portal"};
    resim::IcapArtifact icap{sch, "icap", portal};

    plb.attach_slave(mem);
    dcr.attach(cie_regs);
    dcr.attach(me_regs);
    rr.add_module(cie);
    rr.add_module(me);
    portal.map_module(1, 1, rr, 0);
    portal.map_module(1, 2, rr, 1);
    portal.initial_configuration(1, 1);

    obs::EventRecorder rec;
    rec.set_enabled(true);
    icap.set_observer(&rec);
    portal.set_observer(&rec);
    rr.set_observer(&rec);
    dcr.set_observer(&rec);

    sch.run_until(8 * kClk);  // reset settles

    for (const StreamSession& ss : scenario.sessions) {
        const std::vector<rtlsim::Word> words = ss.words();
        // One DCR transaction per session, launched once the payload window
        // is open — the traffic the xwin.cross bins observe.
        bool traffic_pending = ss.dcr != DcrTraffic::kNone;
        for (const rtlsim::Word& w : words) {
            if (cancel != nullptr &&
                cancel->load(std::memory_order_relaxed)) {
                break;
            }
            icap.icap_write(w);
            if (traffic_pending && icap.payload_pending() && !dcr.busy()) {
                traffic_pending = false;
                if (ss.dcr == DcrTraffic::kRead) {
                    dcr.start_read(0x60 + EngineRegs::kStatus,
                                   [](rtlsim::Word) {});
                } else {
                    dcr.start_write(0x60 + EngineRegs::kSrc,
                                    rtlsim::Word{0x1234});
                }
            }
            sch.run_until(sch.now() + ss.word_gap * kClk);
        }
        // Let any in-flight DCR token and boundary settle between sessions.
        sch.run_until(sch.now() + 16 * kClk);
        if (cancel != nullptr && cancel->load(std::memory_order_relaxed)) {
            break;
        }
    }

    StreamResult res;
    res.swaps = portal.reconfigurations();
    res.aborts = portal.aborts();
    res.truncations = icap.truncations();
    res.captures = portal.captures();
    res.restores = portal.restores();
    res.diagnostics = sch.diagnostics().size();
    res.diagnostic_text.reserve(res.diagnostics);
    for (const rtlsim::Diag& d : sch.diagnostics()) {
        res.diagnostic_text.push_back(d.source + ": " + d.message);
    }
    res.events = rec.snapshot();
    res.clk_period = kClk;
    res.sim_time = sch.now();
    res.stats = sch.stats;
    return res;
}

}  // namespace autovision::scen
