// scen: the scenario-layer PRNG.
//
// A tiny SplitMix64-sequence generator with the draw primitives a
// constrained-random generator needs: bounded integers and weighted picks.
// Everything is a pure function of the construction seed, so a Scenario is
// reproducible from its 64-bit seed alone — across hosts, thread counts and
// standard-library versions (no <random> distributions, whose outputs are
// implementation-defined).
#pragma once

#include <cstdint>
#include <initializer_list>

#include "kernel/prng.hpp"

namespace autovision::scen {

class Rng {
public:
    explicit constexpr Rng(std::uint64_t seed) : state_(seed) {}

    /// Next raw 64-bit draw.
    constexpr std::uint64_t next() {
        state_ += 0x9E37'79B9'7F4A'7C15ull;
        std::uint64_t x = state_;
        x = (x ^ (x >> 30)) * 0xBF58'476D'1CE4'E5B9ull;
        x = (x ^ (x >> 27)) * 0x94D0'49BB'1331'11EBull;
        return x ^ (x >> 31);
    }

    /// Uniform draw in [0, n); n = 0 yields 0. Multiply-shift reduction —
    /// bias is negligible at these ranges and the result is deterministic.
    constexpr std::uint64_t below(std::uint64_t n) {
        if (n == 0) return 0;
        // 128-bit multiply-high via two 64x64->64 halves.
        const std::uint64_t x = next();
        const std::uint64_t xl = x & 0xFFFF'FFFFull, xh = x >> 32;
        const std::uint64_t nl = n & 0xFFFF'FFFFull, nh = n >> 32;
        const std::uint64_t mid = xh * nl + ((xl * nl) >> 32);
        return xh * nh + (mid >> 32) +
               ((xl * nh + (mid & 0xFFFF'FFFFull)) >> 32);
    }

    /// Uniform draw in [lo, hi] (inclusive); degenerate ranges return lo.
    constexpr std::uint32_t range(std::uint32_t lo, std::uint32_t hi) {
        if (hi <= lo) return lo;
        return lo + static_cast<std::uint32_t>(below(hi - lo + 1ull));
    }

    /// True with probability percent/100.
    constexpr bool chance(unsigned percent) {
        return below(100) < percent;
    }

    /// Weighted pick: index into `weights` with probability proportional to
    /// the weight. All-zero weights fall back to index 0.
    template <typename Container>
    constexpr std::size_t pick_weighted(const Container& weights) {
        std::uint64_t total = 0;
        for (const auto w : weights) total += w;
        if (total == 0) return 0;
        std::uint64_t draw = below(total);
        std::size_t i = 0;
        for (const auto w : weights) {
            if (draw < w) return i;
            draw -= w;
            ++i;
        }
        return 0;
    }

    std::size_t pick_weighted(std::initializer_list<unsigned> weights) {
        return pick_weighted<std::initializer_list<unsigned>>(weights);
    }

private:
    std::uint64_t state_;
};

}  // namespace autovision::scen
