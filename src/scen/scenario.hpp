// scen: seeded constrained-random scenarios.
//
// A Scenario is everything one coverage-closure job needs, generated from a
// single 64-bit seed under a ScenarioConstraints weight table:
//
//   * kStream — a sequence of SimB sessions (valid by construction, then
//     optionally mutated into one of the deliberate malformations the ICAP
//     artifact must survive) played word-by-word into a minimal DPR harness
//     (stream_harness.hpp);
//   * kSystem — a randomized full-system SystemConfig + frame count, run
//     through the ordinary Testbench with event tracing on;
//   * kFault — one fault-catalogue entry run through the VM-vs-ReSim
//     detection harness;
//   * kRegions — a randomized multi-region virtualization workload (region
//     count, policy, grant mode, job mix, optionally one labelled
//     cross-region corruption) run through the rrm harness.
//
// Valid by construction: the generator tracks the resident module, only
// captures the module that is actually resident, only restores state that a
// prior session captured, and bounds every payload to what the chosen
// header form can express. Corruptions are then applied as explicit,
// labelled mutations — so the expected outcome (swap or no swap) is known
// per session and testable.
//
// bias_towards() is the closure feedback edge: it returns a copy of a
// weight table with the knobs that feed still-unhit coverage bins boosted,
// which is how batch N+1 of a campaign steers toward the holes batch N
// left.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "cover/coverage.hpp"
#include "kernel/lvec.hpp"
#include "rrm/rrm_harness.hpp"
#include "sys/system.hpp"

namespace autovision::scen {

/// Deliberate stream mutations (kNone/kHeaderOnly are shapes, the rest are
/// corruptions of an otherwise valid session).
enum class Corrupt : std::uint8_t {
    kNone,        ///< clean session, swap expected
    kHeaderOnly,  ///< SYNC/NOP/DESYNC only — no FDRI, no swap
    kTruncate,    ///< payload cut short, recovery SYNC follows (abort path)
    kBitFlip,     ///< one payload bit flipped (opaque filler; still swaps)
    kReorder,     ///< FDRI header pair swapped (type-2 before its header)
    kDupSync,     ///< second SYNC word mid-framing (unrecognised header)
    kZeroPayload, ///< type-2 FDRI with a zero word count
    kStrayType2,  ///< type-2 count with no preceding type-1 FDRI header
    kSkipFar,     ///< FDRI payload with no FAR write (nothing staged)
    kXWord,       ///< one payload word driven to all-X
    kCount,
};

inline constexpr std::size_t kNumCorrupt =
    static_cast<std::size_t>(Corrupt::kCount);

[[nodiscard]] const char* to_string(Corrupt c);

/// Does a session with this mutation still complete its module swap?
[[nodiscard]] constexpr bool swap_expected(Corrupt c) {
    switch (c) {
        case Corrupt::kHeaderOnly:
        case Corrupt::kTruncate:
        case Corrupt::kZeroPayload:
        case Corrupt::kSkipFar:
            return false;
        default:
            return true;
    }
}

/// DCR-chain activity driven concurrently with the payload transfer (the
/// xwin.cross coverage dimension).
enum class DcrTraffic : std::uint8_t { kNone, kRead, kWrite };

/// One SimB session of a stream scenario.
struct StreamSession {
    std::uint8_t rr_id = 1;
    std::uint8_t module_id = 2;       ///< 1 = CIE, 2 = ME
    std::uint32_t payload_words = 4;
    std::uint64_t filler_seed = 0;    ///< payload filler generator seed
    bool type2_header = true;         ///< false: short-form type-1 FDRI
    bool capture_first = false;       ///< GCAPTURE SimB for the resident
                                      ///< module before this session
    std::uint8_t capture_module = 1;  ///< the module capture_first snapshots
    bool restore_state = false;       ///< GRESTORE after the payload
    Corrupt corrupt = Corrupt::kNone;
    std::uint32_t corrupt_pos = 0;    ///< payload index the mutation targets
    std::uint32_t corrupt_bit = 0;    ///< bit index (kBitFlip)
    unsigned word_gap = 1;            ///< idle cycles between ICAP words
    DcrTraffic dcr = DcrTraffic::kNone;

    /// The session's full (possibly mutated) word stream, ready to play
    /// into an ICAP artifact. Includes the capture SimB when capture_first.
    [[nodiscard]] std::vector<rtlsim::Word> words() const;
};

enum class Kind : std::uint8_t { kStream, kSystem, kFault, kRegions };

struct Scenario {
    Kind kind = Kind::kStream;
    std::uint64_t seed = 0;  ///< the single seed everything derived from
    std::string name;
    // kStream:
    std::vector<StreamSession> sessions;
    // kSystem:
    sys::SystemConfig config;
    unsigned frames = 2;
    // kFault:
    sys::Fault fault = sys::Fault::kNone;
    // kRegions:
    rrm::RrmConfig rrm;

    /// Swaps the sessions are expected to complete (stream scenarios).
    [[nodiscard]] unsigned expected_swaps() const;
};

/// The weight table a generator draws under. All weights are relative
/// within their own array/pair; zero removes the choice entirely.
struct ScenarioConstraints {
    // Scenario kind mix. w_regions defaults to zero: appending a
    // zero-weight element to the kind pick leaves the total weight — and
    // therefore the whole draw stream — unchanged, so every scenario
    // generated before the multi-region kind existed is still generated
    // bit-identically. The closure feedback edge (bias_towards) raises it
    // whenever rrm.* goal bins are open, which no other kind can close.
    unsigned w_stream = 8;
    unsigned w_system = 2;
    unsigned w_fault = 2;
    unsigned w_regions = 0;

    // System scenarios: host-IO syscall layer opt-in. When drawn, the
    // firmware ticks the syscall layer per frame and exits through it —
    // the only generator path that feeds the sw.iss covergroup.
    unsigned w_host_io = 1;
    unsigned w_no_host_io = 3;

    // Stream scenarios.
    unsigned min_sessions = 1;
    unsigned max_sessions = 3;
    /// Indexed by Corrupt; defaults heavily favour clean sessions.
    std::array<unsigned, kNumCorrupt> w_corrupt{12, 1, 1, 1, 1, 1, 1, 1, 1, 1};
    /// Payload-length buckets: short (2..8), medium (9..1024), long
    /// (1025..2047 words).
    std::array<unsigned, 3> w_payload{4, 3, 1};
    /// Word-gap buckets: 1, 2..8, 9..32 idle cycles per ICAP word.
    std::array<unsigned, 3> w_gap{3, 2, 1};
    unsigned w_type2_header = 3;
    unsigned w_type1_header = 1;
    unsigned w_capture = 1;
    unsigned w_skip_capture = 4;
    unsigned w_restore = 2;
    unsigned w_skip_restore = 3;
    /// DcrTraffic mix: none / read / write during the payload.
    std::array<unsigned, 3> w_dcr{3, 1, 1};
    /// Next session reconfigures the other module vs. the resident one.
    unsigned w_toggle_module = 3;
    unsigned w_repeat_module = 1;

    // Region scenarios.
    /// Pool size buckets: 2, 3, 4 regions.
    std::array<unsigned, 3> w_region_count{2, 2, 1};
    /// Indexed by rrm::Policy: round-robin, deadline, demand paging.
    std::array<unsigned, rrm::kNumPolicies> w_region_policy{1, 1, 1};
    /// ICAP arbitration: fair vs priority grants.
    std::array<unsigned, 2> w_region_grant{1, 1};
    /// Simulation method: Virtual Multiplexing vs ReSim. Corrupted
    /// scenarios always run ReSim (the corruption states live on the SimB
    /// datapath), so the VM weight only applies to clean ones.
    unsigned w_region_vm = 1;
    unsigned w_region_resim = 3;
    /// Indexed by rrm::RegionCorrupt; defaults favour clean workloads.
    std::array<unsigned, static_cast<std::size_t>(rrm::RegionCorrupt::kCount)>
        w_region_corrupt{9, 1, 1, 1};

    // Fault scenarios: weight per kFaultCatalog entry.
    std::array<unsigned, sys::kFaultCatalog.size()> w_fault_pick = [] {
        std::array<unsigned, sys::kFaultCatalog.size()> a{};
        a.fill(1);
        return a;
    }();
};

/// Generate one scenario from (constraints, seed). Pure function: the same
/// inputs always produce the same scenario.
[[nodiscard]] Scenario generate(const ScenarioConstraints& c,
                                std::uint64_t seed);

/// Generate a batch. Per-scenario seeds depend only on (campaign_seed,
/// batch, index) — NOT on the constraints — so two batches generated under
/// different weight tables draw from identical seed streams (the property
/// the biased-vs-random closure comparison relies on).
[[nodiscard]] std::vector<Scenario> generate_batch(
    const ScenarioConstraints& c, std::uint64_t campaign_seed,
    unsigned batch, unsigned count);

/// The closure feedback edge: boost every knob that feeds a still-unhit
/// goal bin of `cov` (and damp the clean-session weight when malformation
/// bins are open). Deterministic in (base, cov).
[[nodiscard]] ScenarioConstraints bias_towards(const ScenarioConstraints& base,
                                               const cover::Coverage& cov);

}  // namespace autovision::scen
