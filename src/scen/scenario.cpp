#include "scenario.hpp"

#include <algorithm>
#include <cstdio>

#include "resim/simb.hpp"
#include "rng.hpp"

namespace autovision::scen {

using resim::CfgCmd;
using resim::CfgReg;
using resim::far_word;
using resim::kNopWord;
using resim::kSyncWord;
using resim::type1_write;
using resim::type2_write;
using rtlsim::Word;

const char* to_string(Corrupt c) {
    switch (c) {
        case Corrupt::kNone: return "none";
        case Corrupt::kHeaderOnly: return "header_only";
        case Corrupt::kTruncate: return "truncate";
        case Corrupt::kBitFlip: return "bitflip";
        case Corrupt::kReorder: return "reorder";
        case Corrupt::kDupSync: return "dup_sync";
        case Corrupt::kZeroPayload: return "zero_payload";
        case Corrupt::kStrayType2: return "stray_type2";
        case Corrupt::kSkipFar: return "skip_far";
        case Corrupt::kXWord: return "x_word";
        case Corrupt::kCount: break;
    }
    return "?";
}

namespace {

void push_cmd(std::vector<std::uint32_t>& w, CfgCmd cmd) {
    w.push_back(type1_write(CfgReg::kCmd, 1));
    w.push_back(static_cast<std::uint32_t>(cmd));
}

/// Deterministic payload filler (the SimB LCG), never emitting the SYNC
/// pattern — a filler word that aliased SYNC would truncate the session.
std::uint32_t filler_step(std::uint32_t& s) {
    std::uint32_t v = s;
    s = s * 1664525u + 1013904223u;
    if (v == kSyncWord) v ^= 1u;
    return v;
}

}  // namespace

std::vector<Word> StreamSession::words() const {
    std::vector<std::uint32_t> w;
    w.reserve(resim::SimB::length_for_payload(payload_words) + 12);
    std::size_t x_index = ~std::size_t{0};  // position to drive all-X

    if (capture_first) {
        resim::SimB cap;
        cap.rr_id = rr_id;
        cap.module_id = capture_module;
        const auto cw = cap.build_capture();
        w.insert(w.end(), cw.begin(), cw.end());
    }

    if (corrupt == Corrupt::kHeaderOnly) {
        w.push_back(kSyncWord);
        w.push_back(kNopWord);
        push_cmd(w, CfgCmd::kDesync);
    } else {
        w.push_back(kSyncWord);
        w.push_back(kNopWord);
        if (corrupt == Corrupt::kDupSync) {
            // A stray SYNC inside an open session: the parser must report
            // an unrecognised header and carry on.
            w.push_back(kSyncWord);
        }
        if (corrupt != Corrupt::kSkipFar) {
            w.push_back(type1_write(CfgReg::kFar, 1));
            w.push_back(far_word(rr_id, module_id));
        }
        push_cmd(w, CfgCmd::kWcfg);

        // FDRI header — the mutation point for the header-shape corruptions.
        std::uint32_t filler_count = payload_words;
        if (corrupt == Corrupt::kZeroPayload) {
            w.push_back(type1_write(CfgReg::kFdri, 0));
            w.push_back(type2_write(0));
            filler_count = 0;
        } else if (!type2_header) {
            w.push_back(type1_write(CfgReg::kFdri, payload_words & 0x7FF));
        } else if (corrupt == Corrupt::kStrayType2) {
            w.push_back(type2_write(payload_words));
        } else if (corrupt == Corrupt::kReorder) {
            // Header pair swapped: the type-2 count arrives first (flagged
            // malformed), then the type-1 header is swallowed as payload —
            // emit one filler word fewer so the framing stays aligned.
            w.push_back(type2_write(payload_words));
            w.push_back(type1_write(CfgReg::kFdri, 0));
            filler_count = payload_words > 0 ? payload_words - 1 : 0;
        } else {
            w.push_back(type1_write(CfgReg::kFdri, 0));
            w.push_back(type2_write(payload_words));
        }

        const std::size_t payload_start = w.size();
        std::uint32_t s = static_cast<std::uint32_t>(
            rtlsim::splitmix64(filler_seed) >> 32);
        for (std::uint32_t i = 0; i < filler_count; ++i) {
            w.push_back(filler_step(s));
        }

        if (corrupt == Corrupt::kBitFlip && filler_count > 0) {
            const std::size_t pos =
                payload_start + std::min<std::uint32_t>(corrupt_pos,
                                                        filler_count - 1);
            w[pos] ^= 1u << (corrupt_bit & 31);
            if (w[pos] == kSyncWord) w[pos] ^= 2u;  // never alias SYNC
        }
        if (corrupt == Corrupt::kXWord && filler_count > 0) {
            x_index = payload_start +
                      std::min<std::uint32_t>(corrupt_pos, filler_count - 1);
        }

        if (corrupt == Corrupt::kTruncate) {
            // Cut mid-payload; the recovery SYNC is what the artifact keys
            // truncation detection on (abort, no swap), and the recovery
            // session closes cleanly.
            const std::uint32_t keep =
                std::clamp<std::uint32_t>(corrupt_pos, 1,
                                          filler_count > 0 ? filler_count - 1
                                                           : 0);
            w.resize(payload_start + keep);
            w.push_back(kSyncWord);
            w.push_back(kNopWord);
            push_cmd(w, CfgCmd::kDesync);
        } else {
            if (corrupt == Corrupt::kXWord) {
                // The X word is dropped by the artifact without decrementing
                // the payload count; one compensating filler word keeps the
                // trailer aligned.
                w.push_back(filler_step(s));
            }
            if (restore_state) push_cmd(w, CfgCmd::kGrestore);
            push_cmd(w, CfgCmd::kDesync);
        }
    }

    std::vector<Word> out;
    out.reserve(w.size());
    for (const std::uint32_t v : w) out.emplace_back(v);
    if (x_index < out.size()) out[x_index] = Word::all_x();
    return out;
}

unsigned Scenario::expected_swaps() const {
    unsigned n = 0;
    for (const StreamSession& s : sessions) {
        if (swap_expected(s.corrupt)) ++n;
    }
    return n;
}

namespace {

// Seed-derivation tags of the scenario layer.
constexpr std::uint64_t kTagKind = 0x5343'454E'0001ull;
constexpr std::uint64_t kTagSession = 0x5343'454E'0100ull;
constexpr std::uint64_t kTagBatch = 0x5343'454E'BA00ull;

StreamSession make_session(const ScenarioConstraints& c, Rng& rng,
                           std::uint64_t scenario_seed, unsigned index,
                           std::uint8_t& resident, bool captured[3]) {
    StreamSession ss;
    ss.filler_seed = rtlsim::derive_seed(scenario_seed, kTagSession + index);

    const std::uint8_t other = resident == 1 ? std::uint8_t{2} : std::uint8_t{1};
    ss.module_id =
        rng.pick_weighted({c.w_toggle_module, c.w_repeat_module}) == 0
            ? other
            : resident;

    ss.corrupt = static_cast<Corrupt>(rng.pick_weighted(c.w_corrupt));

    switch (rng.pick_weighted(c.w_payload)) {
        case 0: ss.payload_words = rng.range(2, 8); break;
        case 1: ss.payload_words = rng.range(9, 1024); break;
        default: ss.payload_words = rng.range(1025, 2047); break;
    }
    ss.type2_header =
        rng.pick_weighted({c.w_type2_header, c.w_type1_header}) == 0;

    switch (ss.corrupt) {
        case Corrupt::kHeaderOnly:
        case Corrupt::kZeroPayload:
            ss.payload_words = 0;
            ss.type2_header = true;
            break;
        case Corrupt::kReorder:
        case Corrupt::kStrayType2:
            ss.type2_header = true;
            ss.payload_words = std::max<std::uint32_t>(ss.payload_words, 2);
            break;
        case Corrupt::kTruncate:
            ss.payload_words = std::max<std::uint32_t>(ss.payload_words, 4);
            ss.corrupt_pos = rng.range(1, ss.payload_words - 1);
            break;
        case Corrupt::kBitFlip:
            ss.corrupt_pos = rng.range(0, ss.payload_words - 1);
            ss.corrupt_bit = rng.range(0, 31);
            break;
        case Corrupt::kXWord:
            ss.payload_words = std::max<std::uint32_t>(ss.payload_words, 2);
            ss.corrupt_pos = rng.range(0, ss.payload_words - 1);
            break;
        default:
            break;
    }

    if (rng.pick_weighted({c.w_capture, c.w_skip_capture}) == 0) {
        ss.capture_first = true;
        ss.capture_module = resident;
        captured[resident] = true;
    }
    if (ss.corrupt == Corrupt::kNone && captured[ss.module_id] &&
        rng.pick_weighted({c.w_restore, c.w_skip_restore}) == 0) {
        ss.restore_state = true;
    }

    switch (rng.pick_weighted(c.w_gap)) {
        case 0: ss.word_gap = 1; break;
        case 1: ss.word_gap = rng.range(2, 8); break;
        default: ss.word_gap = rng.range(9, 32); break;
    }
    ss.dcr = static_cast<DcrTraffic>(rng.pick_weighted(c.w_dcr));

    if (swap_expected(ss.corrupt)) resident = ss.module_id;
    return ss;
}

}  // namespace

Scenario generate(const ScenarioConstraints& c, std::uint64_t seed) {
    Scenario s;
    s.seed = seed;
    char buf[32];
    std::snprintf(buf, sizeof buf, "s%016llx",
                  static_cast<unsigned long long>(seed));
    s.name = buf;

    Rng rng(rtlsim::derive_seed(seed, kTagKind));
    // w_regions rides as a trailing element: at its default of zero the
    // total weight (and so the draw stream) is identical to the historical
    // three-kind pick.
    switch (rng.pick_weighted({c.w_stream, c.w_system, c.w_fault,
                               c.w_regions})) {
        case 0: {
            s.kind = Kind::kStream;
            const unsigned n = rng.range(c.min_sessions, c.max_sessions);
            std::uint8_t resident = 1;  // initial_configuration(1, 1)
            bool captured[3] = {false, false, false};
            s.sessions.reserve(n);
            for (unsigned i = 0; i < n; ++i) {
                s.sessions.push_back(
                    make_session(c, rng, seed, i, resident, captured));
            }
            break;
        }
        case 1: {
            s.kind = Kind::kSystem;
            struct Geo { unsigned w, h; };
            static constexpr Geo kMenu[] = {{32, 24}, {48, 32}, {64, 48}};
            const Geo g = kMenu[rng.below(3)];
            s.config.width = g.w;
            s.config.height = g.h;
            s.config.step = 4;
            s.config.margin = 8;
            s.config.search = 2;
            s.config.simb_payload_words = rng.range(50, 400);
            s.config.seed = seed;
            s.config.trace_events = true;
            s.frames = rng.range(1, 3);
            // Host-IO opt-in: the firmware ticks the syscall layer per
            // frame (clock/yield/putchar) and exits through it after the
            // run's frame budget — the sw.iss covergroup's feed.
            if (rng.pick_weighted({c.w_no_host_io, c.w_host_io}) == 1) {
                s.config.host_io = true;
                s.config.exit_after_frames = s.frames;
            }
            break;
        }
        case 2: {
            s.kind = Kind::kFault;
            s.fault = sys::kFaultCatalog[rng.pick_weighted(c.w_fault_pick)]
                          .fault;
            s.config.width = 32;
            s.config.height = 24;
            s.config.search = 2;
            s.config.seed = seed;
            s.frames = 2;
            break;
        }
        default: {
            s.kind = Kind::kRegions;
            s.rrm.regions =
                2 + static_cast<unsigned>(rng.pick_weighted(c.w_region_count));
            s.rrm.policy =
                static_cast<rrm::Policy>(rng.pick_weighted(c.w_region_policy));
            s.rrm.grant = rng.pick_weighted(c.w_region_grant) == 0
                              ? rrm::IcapArbiter::Grant::kFair
                              : rrm::IcapArbiter::Grant::kPriority;
            s.rrm.corrupt = static_cast<rrm::RegionCorrupt>(
                rng.pick_weighted(c.w_region_corrupt));
            // The method draw happens unconditionally so the stream shape
            // does not depend on the corruption pick; the corruption states
            // execute on the SimB datapath, so a corrupted scenario is
            // forced onto ReSim.
            const bool vm =
                rng.pick_weighted({c.w_region_vm, c.w_region_resim}) == 0;
            s.rrm.vm_mode = vm && s.rrm.corrupt == rrm::RegionCorrupt::kNone;
            s.rrm.victim = static_cast<unsigned>(rng.below(s.rrm.regions));
            // Up to four jobs per region: the harness's engine rotation
            // (r + j) % 4 only reaches all four library entries in a region
            // once j spans the library.
            s.rrm.jobs_per_region = rng.range(1, 4);
            switch (rng.pick_weighted(c.w_payload)) {
                case 0: s.rrm.payload_words = rng.range(8, 16); break;
                case 1: s.rrm.payload_words = rng.range(17, 64); break;
                default: s.rrm.payload_words = rng.range(65, 128); break;
            }
            switch (rng.pick_weighted(c.w_gap)) {
                case 0: s.rrm.word_gap = 1; break;
                case 1: s.rrm.word_gap = rng.range(2, 4); break;
                default: s.rrm.word_gap = rng.range(5, 8); break;
            }
            s.rrm.seed = seed;
            break;
        }
    }
    return s;
}

std::vector<Scenario> generate_batch(const ScenarioConstraints& c,
                                     std::uint64_t campaign_seed,
                                     unsigned batch, unsigned count) {
    const std::uint64_t base =
        rtlsim::derive_seed(campaign_seed, kTagBatch + batch);
    std::vector<Scenario> out;
    out.reserve(count);
    for (unsigned i = 0; i < count; ++i) {
        Scenario s = generate(c, rtlsim::derive_seed(base, i));
        char buf[48];
        std::snprintf(buf, sizeof buf, "b%u.i%u.%s", batch, i,
                      s.kind == Kind::kStream   ? "stream"
                      : s.kind == Kind::kSystem ? "system"
                      : s.kind == Kind::kFault  ? "fault"
                                                : "regions");
        s.name = buf;
        out.push_back(std::move(s));
    }
    return out;
}

ScenarioConstraints bias_towards(const ScenarioConstraints& base,
                                 const cover::Coverage& cov) {
    ScenarioConstraints c = base;

    const auto open = [&cov](const char* group, const char* bin) {
        const cover::Covergroup* g = cov.find(group);
        if (g == nullptr) return false;
        const cover::Bin* b = g->find(bin);
        return b != nullptr && !b->ignore && b->hits == 0;
    };
    const auto boost = [](unsigned& w) { w = std::max(w, 1u) * 8; };
    const auto cidx = [](Corrupt k) { return static_cast<std::size_t>(k); };

    bool malformed_open = false;
    const auto boost_corrupt = [&](Corrupt k) {
        boost(c.w_corrupt[cidx(k)]);
        malformed_open = true;
    };

    if (open("simb.seq", "malformed.truncated") || open("simb.seq", "abort")) {
        boost_corrupt(Corrupt::kTruncate);
    }
    if (open("simb.seq", "malformed.type2_no_header")) {
        boost_corrupt(Corrupt::kStrayType2);
        boost_corrupt(Corrupt::kReorder);
    }
    if (open("simb.seq", "malformed.x_on_icap")) {
        boost_corrupt(Corrupt::kXWord);
    }
    if (open("simb.seq", "zero_payload")) boost_corrupt(Corrupt::kZeroPayload);
    if (open("simb.seq", "fdri_before_far")) boost_corrupt(Corrupt::kSkipFar);
    if (open("simb.seq", "header_only")) boost_corrupt(Corrupt::kHeaderOnly);
    if (malformed_open) {
        c.w_corrupt[cidx(Corrupt::kNone)] =
            std::min(c.w_corrupt[cidx(Corrupt::kNone)], 2u);
    }

    if (open("simb.seq", "multi_session")) {
        c.min_sessions = std::max(c.min_sessions, 2u);
        c.max_sessions = std::max(c.max_sessions, c.min_sessions);
    }
    if (open("simb.seq", "type1_header")) boost(c.w_type1_header);
    if (open("simb.seq", "type2_header")) boost(c.w_type2_header);
    if (open("simb.seq", "capture")) boost(c.w_capture);
    if (open("simb.seq", "restore")) {
        boost(c.w_restore);
        boost(c.w_capture);  // restore needs a prior capture
    }
    if (open("simb.seq", "payload_short")) boost(c.w_payload[0]);
    if (open("simb.seq", "payload_medium")) boost(c.w_payload[1]);
    if (open("simb.seq", "payload_long")) boost(c.w_payload[2]);

    // X-window length = payload words x word gap; steer both factors.
    if (open("xwin.len", "le16")) {
        boost(c.w_gap[0]);
        boost(c.w_payload[0]);
    }
    if (open("xwin.len", "17_128")) {
        boost(c.w_gap[0]);
        boost(c.w_payload[1]);
    }
    if (open("xwin.len", "129_1k")) {
        boost(c.w_gap[1]);
        boost(c.w_payload[1]);
    }
    if (open("xwin.len", "1k_8k")) {
        boost(c.w_gap[2]);
        boost(c.w_payload[1]);
    }
    if (open("xwin.len", "gt8k")) {
        boost(c.w_gap[2]);
        boost(c.w_payload[2]);
    }

    if (open("xwin.cross", "quiet")) boost(c.w_dcr[0]);
    if (open("xwin.cross", "dcr_read")) boost(c.w_dcr[1]);
    if (open("xwin.cross", "dcr_write")) boost(c.w_dcr[2]);

    if (open("swap.trans", "cie_to_cie") || open("swap.trans", "me_to_me")) {
        boost(c.w_repeat_module);
    }
    if (open("swap.trans", "cie_to_me") || open("swap.trans", "me_to_cie")) {
        boost(c.w_toggle_module);
    }

    // Region pool: steer the axes of the rrm.cross / rrm.arb bins that are
    // still open. The region axis maps to pool size (bin r1 needs >= 2
    // regions, r2p needs >= 3), the bin-name suffix to the policy weights.
    const cover::Covergroup* rrm_cross = cov.find("rrm.cross");
    if (rrm_cross != nullptr) {
        for (const cover::Bin& b : rrm_cross->bins()) {
            if (b.ignore || b.hits != 0) continue;
            if (b.name.compare(0, 4, "r2p.") == 0) {
                boost(c.w_region_count[1]);
                boost(c.w_region_count[2]);
            } else if (b.name.compare(0, 3, "r1.") == 0) {
                boost(c.w_region_count[0]);
            }
            if (b.name.size() >= 3 &&
                b.name.compare(b.name.size() - 3, 3, ".rr") == 0) {
                boost(c.w_region_policy[0]);
            } else if (b.name.size() >= 9 &&
                       b.name.compare(b.name.size() - 9, 9, ".deadline") ==
                           0) {
                boost(c.w_region_policy[1]);
            } else if (b.name.size() >= 7 &&
                       b.name.compare(b.name.size() - 7, 7, ".demand") == 0) {
                boost(c.w_region_policy[2]);
            }
        }
    }
    if (open("rrm.arb", "fair.uncontended") ||
        open("rrm.arb", "fair.contended")) {
        boost(c.w_region_grant[0]);
    }
    if (open("rrm.arb", "priority.uncontended") ||
        open("rrm.arb", "priority.contended")) {
        boost(c.w_region_grant[1]);
    }
    if (open("rrm.arb", "vm_swap")) {
        boost(c.w_region_vm);
        // Only a clean scenario may run Virtual Multiplexing.
        boost(c.w_region_corrupt[0]);
    }

    // Syscall layer: only host-IO system scenarios feed sw.iss, so open
    // goal bins there raise both the kind weight and the opt-in weight.
    if (open("sw.iss", "syscall.exit") || open("sw.iss", "syscall.putchar") ||
        open("sw.iss", "syscall.clock") || open("sw.iss", "syscall.yield")) {
        boost(c.w_system);
        boost(c.w_host_io);
    }

    // Fault cross: steer toward catalogue entries with open goal cells.
    const cover::Covergroup* det = cov.find("fault.det");
    if (det != nullptr) {
        for (std::size_t i = 0; i < sys::kFaultCatalog.size(); ++i) {
            const std::string prefix =
                std::string(sys::kFaultCatalog[i].id) + ".";
            for (const cover::Bin& b : det->bins()) {
                if (!b.ignore && b.hits == 0 &&
                    b.name.compare(0, prefix.size(), prefix) == 0) {
                    boost(c.w_fault_pick[i]);
                    break;
                }
            }
        }
    }

    // Scenario-kind mix: weight each kind by how many goal bins it can
    // still close. A flat boost here starves the other kinds (a x8 on
    // w_fault swamps w_stream=8), so scale the base weight by the open-bin
    // count instead; a base weight of zero keeps a kind disabled.
    std::size_t stream_open = 0, system_open = 0, fault_open = 0;
    std::size_t regions_open = 0;
    for (const cover::Covergroup& g : cov.groups()) {
        for (const cover::Bin& b : g.bins()) {
            if (b.ignore || b.hits != 0) continue;
            if (g.name() == "fault.det") {
                ++fault_open;
            } else if (g.name().compare(0, 4, "rrm.") == 0) {
                // Only a multi-region scenario can reach the pool bins.
                ++regions_open;
            } else if (g.name() == "irq.lat" ||
                       (g.name() == "xwin.cross" && b.name == "irq")) {
                // Only the full system raises interrupts.
                ++system_open;
            } else {
                ++stream_open;
            }
        }
    }
    if (stream_open + system_open + fault_open + regions_open > 0) {
        c.w_stream = base.w_stream * static_cast<unsigned>(1 + stream_open);
        c.w_system = base.w_system * static_cast<unsigned>(1 + system_open);
        c.w_fault = base.w_fault * static_cast<unsigned>(1 + fault_open);
        // The rrm bins are closeable by no other kind, and the default base
        // weight is zero (kind disabled until the pool existed) — so open
        // rrm bins may enable the kind rather than scale a zero.
        c.w_regions =
            regions_open > 0
                ? std::max(base.w_regions, 2u) *
                      static_cast<unsigned>(1 + regions_open)
                : base.w_regions;
    }
    return c;
}

}  // namespace autovision::scen
