// scen: the stream-scenario harness.
//
// Plays a kStream scenario's SimB sessions word-by-word straight into an
// ICAP artifact sitting on a minimal DPR testbench (region boundary, both
// engines, portal, DCR chain — no CPU, no IcapCTRL: the harness *is* the
// controller, which is what lets a scenario pace the transfer with an
// arbitrary word gap and so sweep the error-injection window length).
// Every obs event of the run is captured, ready for the coverage model.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "kernel/kernel.hpp"
#include "obs/event.hpp"
#include "scenario.hpp"

namespace autovision::scen {

struct StreamResult {
    std::uint64_t swaps = 0;
    std::uint64_t aborts = 0;
    std::uint64_t truncations = 0;
    std::uint64_t captures = 0;
    std::uint64_t restores = 0;
    std::size_t diagnostics = 0;  ///< scheduler diagnostics (reports)
    std::vector<std::string> diagnostic_text;  ///< "source: message" lines
    std::vector<obs::Event> events;
    rtlsim::Time clk_period = 0;
    rtlsim::Time sim_time = 0;
    rtlsim::SimStats stats;
};

/// Run a kStream scenario to completion. `cancel` (optional) aborts the
/// playback cooperatively between words. `boot` (optional) warm-starts the
/// run from a stream_boot_snapshot() blob instead of re-simulating the
/// elaborate-and-reset prefix; an unusable blob falls back to a cold boot,
/// so the result is identical either way.
[[nodiscard]] StreamResult run_stream_scenario(
    const Scenario& scenario, const std::atomic<bool>* cancel = nullptr,
    const std::string* boot = nullptr);

/// Serialize the stream testbench's boot state (elaborate + reset settle)
/// into a checkpoint blob shareable across every kStream job of a
/// campaign — the scenario only enters after the boot prefix. Empty on
/// failure.
[[nodiscard]] std::string stream_boot_snapshot();

}  // namespace autovision::scen
