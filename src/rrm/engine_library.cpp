#include "engine_library.hpp"

#include "engines/census_engine.hpp"
#include "engines/edge_engine.hpp"
#include "engines/flow_engine.hpp"
#include "engines/matching_engine.hpp"

namespace autovision::rrm {

const std::array<EngineInfo, kNumEngines>& engine_library() {
    static const std::array<EngineInfo, kNumEngines> lib = {{
        {EngineKind::kCensus, "census", true, false},
        {EngineKind::kMatching, "matching", false, true},
        {EngineKind::kSobel, "sobel", true, false},
        {EngineKind::kFlow, "flow", true, true},
    }};
    return lib;
}

const EngineInfo* find_engine(EngineKind k) {
    const auto idx = static_cast<std::size_t>(k);
    if (idx == 0 || idx > kNumEngines) return nullptr;
    return &engine_library()[idx - 1];
}

const char* to_string(EngineKind k) {
    const EngineInfo* info = find_engine(k);
    return info == nullptr ? (k == EngineKind::kNone ? "none" : "?")
                           : info->id;
}

std::unique_ptr<EngineBase> make_engine(EngineKind k, rtlsim::Scheduler& sch,
                                        const std::string& name,
                                        rtlsim::Signal<rtlsim::Logic>& clk,
                                        rtlsim::Signal<rtlsim::Logic>& rst,
                                        EngineRegs& regs) {
    switch (k) {
        case EngineKind::kCensus:
            return std::make_unique<CensusEngine>(sch, name, clk, rst, regs);
        case EngineKind::kMatching:
            return std::make_unique<MatchingEngine>(sch, name, clk, rst, regs);
        case EngineKind::kSobel:
            return std::make_unique<EdgeEngine>(sch, name, clk, rst, regs);
        case EngineKind::kFlow:
            return std::make_unique<FlowEngine>(sch, name, clk, rst, regs);
        case EngineKind::kNone:
            break;
    }
    return nullptr;
}

}  // namespace autovision::rrm
