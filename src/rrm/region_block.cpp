#include "region_block.hpp"

namespace autovision::rrm {

RegionBlock::RegionBlock(rtlsim::Scheduler& sch, const std::string& prefix,
                         rtlsim::Signal<rtlsim::Logic>& clk,
                         rtlsim::Signal<rtlsim::Logic>& rst, Plb& plb,
                         const RegionLayout& lay)
    : layout(lay),
      iso(sch, prefix + ".iso", lay.iso_dcr),
      regs(sch, prefix + ".regs", clk, lay.regs_dcr),
      done_line(sch, prefix + ".done", rtlsim::Logic::L0),
      rr(sch, prefix + ".rr", plb.master(lay.plb_master), done_line) {
    // The whole library sits behind the boundary mux, slot = kind - 1.
    // All four share the region's one EngineRegs block: only the active
    // module reacts to the start/reset pulses.
    for (std::size_t i = 0; i < kNumEngines; ++i) {
        const EngineInfo& info = engine_library()[i];
        engines[i] = make_engine(info.kind, sch, prefix + "." + info.id, clk,
                                 rst, regs);
        rr.add_module(*engines[i]);
    }
    rr.set_isolation_signal(iso.isolate);
    rr.set_region(lay.region);
    iso.set_region(lay.region);
    if (lay.vm_mode) {
        // Virtual Multiplexing: the engine_signature register steers the
        // mux; a 2-state mux drives idle (not X) when mis-steered, and the
        // wrapper's reset selects slot 0 so the region boots configured.
        vmux = std::make_unique<vm::VirtualMux>(sch, prefix + ".vmux", rr,
                                                lay.sig_dcr);
        for (std::size_t i = 0; i < kNumEngines; ++i) {
            vmux->map_module(static_cast<std::uint32_t>(i + 1),
                             static_cast<unsigned>(i));
        }
        rr.set_unselected_policy(RrBoundary::UnselectedPolicy::kIdle);
        rr.select(0);
    }
}

void RegionBlock::attach_dcr(DcrChain& dcr) {
    dcr.attach(iso);
    dcr.attach(regs);
    if (vmux != nullptr) dcr.attach(*vmux);
}

void RegionBlock::map_portal(resim::ExtendedPortal& portal) {
    const auto rr_id = static_cast<std::uint8_t>(layout.region + 1);
    for (std::size_t k = 1; k <= kNumEngines; ++k) {
        portal.map_module(rr_id, static_cast<std::uint8_t>(k), rr,
                          static_cast<unsigned>(k - 1));
    }
    portal.initial_configuration(rr_id, 1);
}

RegionPorts RegionBlock::ports() {
    return RegionPorts{static_cast<std::uint8_t>(layout.region + 1), &rr,
                       &iso, layout.iso_dcr, layout.regs_dcr, &regs,
                       layout.sig_dcr};
}

void RegionBlock::set_observer(obs::EventRecorder* rec) {
    rr.set_observer(rec);
    iso.set_observer(rec);
}

void RegionBlock::ckpt_save(rtlsim::SnapWriter& w) const {
    iso.ckpt_save(w);
    regs.ckpt_save(w);
    rr.ckpt_save(w);
    for (std::size_t i = 0; i < kNumEngines; ++i) engines[i]->ckpt_save(w);
    if (vmux != nullptr) vmux->ckpt_save(w);
}

bool RegionBlock::ckpt_restore(rtlsim::SnapReader& r) {
    if (!iso.ckpt_restore(r)) return false;
    if (!regs.ckpt_restore(r)) return false;
    if (!rr.ckpt_restore(r)) return false;
    for (std::size_t i = 0; i < kNumEngines; ++i) {
        if (!engines[i]->ckpt_restore(r)) return false;
    }
    if (vmux != nullptr && !vmux->ckpt_restore(r)) return false;
    return true;
}

}  // namespace autovision::rrm
