// rrm: RegionBlock — the complete static-side bundle of one virtualized
// reconfigurable region.
//
// One block owns everything a region contributes to the netlist: the
// isolation module, the shared EngineRegs, the done line, the RrBoundary
// on its own PLB master port, the full four-entry engine library behind
// the boundary mux, and (in Virtual Multiplexing mode) the per-region
// engine_signature register. Both the standalone rrm harness and
// sys::OpticalFlowSystem instantiate regions through this bundle, so the
// region topology cannot drift between the two.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <string>

#include "bus/dcr.hpp"
#include "bus/plb.hpp"
#include "engine_library.hpp"
#include "kernel/kernel.hpp"
#include "recon/isolation.hpp"
#include "recon/rr_boundary.hpp"
#include "region_manager.hpp"
#include "resim/portal.hpp"
#include "vm/virtual_mux.hpp"

namespace autovision::rrm {

/// Where one region sits in the system: its PLB master port, its global
/// region index (events are tagged with it; SimB FARs use index + 1), and
/// its region-indexed DCR block.
struct RegionLayout {
    unsigned plb_master = 0;
    std::uint8_t region = 0;
    std::uint32_t iso_dcr = 0;
    std::uint32_t regs_dcr = 0;
    std::uint32_t sig_dcr = 0;   ///< engine_signature (VM mode only)
    bool vm_mode = false;
};

class RegionBlock {
public:
    RegionBlock(rtlsim::Scheduler& sch, const std::string& prefix,
                rtlsim::Signal<rtlsim::Logic>& clk,
                rtlsim::Signal<rtlsim::Logic>& rst, Plb& plb,
                const RegionLayout& layout);

    /// DCR ring order within the block: isolation, engine regs[, vmux].
    void attach_dcr(DcrChain& dcr);
    /// ReSim datapath: map all library modules (FAR region id = index + 1,
    /// slot = kind - 1) and load the initial full bitstream (census).
    void map_portal(resim::ExtendedPortal& portal);
    /// The manager-facing wiring of this block.
    [[nodiscard]] RegionPorts ports();
    void set_observer(obs::EventRecorder* rec);

    // --- checkpoint: one section per block ------------------------------
    void ckpt_save(rtlsim::SnapWriter& w) const;
    [[nodiscard]] bool ckpt_restore(rtlsim::SnapReader& r);

    RegionLayout layout;
    Isolation iso;
    EngineRegs regs;
    rtlsim::Signal<rtlsim::Logic> done_line;
    RrBoundary rr;
    std::array<std::unique_ptr<EngineBase>, kNumEngines> engines;
    std::unique_ptr<vm::VirtualMux> vmux;
};

}  // namespace autovision::rrm
