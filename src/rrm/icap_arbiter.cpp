#include "icap_arbiter.hpp"

#include <algorithm>

namespace autovision::rrm {

using rtlsim::is1;
using rtlsim::Logic;
using rtlsim::Word;

IcapArbiter::IcapArbiter(rtlsim::Scheduler& sch, const std::string& name,
                         rtlsim::Signal<Logic>& clk, rtlsim::Signal<Logic>& rst,
                         IcapPortIf& sink, unsigned num_regions, Grant grant)
    : Module(sch, name),
      rst_(rst),
      sink_(sink),
      grant_(grant),
      stats_(std::max(1u, num_regions)) {
    sync_proc("arbiter", [this] { on_clock(); }, {rtlsim::posedge(clk)});
}

void IcapArbiter::submit(unsigned region, std::vector<std::uint32_t> words,
                         unsigned word_gap, unsigned priority) {
    if (region >= stats_.size() || words.empty()) {
        report("arbiter submit rejected: bad region or empty session");
        return;
    }
    Session s;
    s.region = region;
    s.gap = std::max(1u, word_gap);
    s.priority = priority;
    s.submit_cycle = cycle_;
    s.words = std::move(words);
    queue_.push_back(std::move(s));
}

unsigned IcapArbiter::outstanding(unsigned region) const {
    unsigned n = active_ && active_session_.region == region ? 1u : 0u;
    for (const Session& s : queue_) {
        if (s.region == region) ++n;
    }
    return n;
}

bool IcapArbiter::busy() const {
    return active_ || !queue_.empty() || !ext_buf_.empty();
}

int IcapArbiter::pick_next() const {
    if (queue_.empty()) return -1;
    int best = -1;
    if (grant_ == Grant::kFair) {
        // Round-robin: the first queued session of the first region at or
        // after the rotation cursor that has one; sessions of one region
        // keep their submit order.
        const unsigned n = static_cast<unsigned>(stats_.size());
        for (unsigned off = 0; off < n && best < 0; ++off) {
            const unsigned r = (rotation_ + off) % n;
            for (std::size_t i = 0; i < queue_.size(); ++i) {
                if (queue_[i].region == r) {
                    best = static_cast<int>(i);
                    break;
                }
            }
        }
    } else {
        // Priority: smallest priority value, ties to lowest region index,
        // then submit order.
        for (std::size_t i = 0; i < queue_.size(); ++i) {
            if (best < 0) {
                best = static_cast<int>(i);
                continue;
            }
            const Session& b = queue_[static_cast<std::size_t>(best)];
            const Session& s = queue_[i];
            if (s.priority < b.priority ||
                (s.priority == b.priority && s.region < b.region)) {
                best = static_cast<int>(i);
            }
        }
    }
    return best;
}

void IcapArbiter::on_clock() {
    if (is1(rst_.read())) return;
    ++cycle_;

    if (!active_) {
        // Drain any externally buffered words first — the legacy datapath
        // was pre-empted by a manager session and resumes before new grants.
        if (!ext_buf_.empty()) {
            const std::uint64_t planes = ext_buf_.front();
            ext_buf_.pop_front();
            sink_.icap_write(Word::from_planes(
                static_cast<std::uint32_t>(planes >> 32),
                static_cast<std::uint32_t>(planes & 0xFFFF'FFFFull)));
            return;
        }
        if (ext_in_session_) return;  // external SimB open: no grants
        const int next = pick_next();
        if (next < 0) return;
        active_ = true;
        active_session_ = std::move(queue_[static_cast<std::size_t>(next)]);
        queue_.erase(queue_.begin() + next);
        gap_left_ = 0;
        const std::uint64_t wait = cycle_ - active_session_.submit_cycle;
        RegionStats& rs = stats_[active_session_.region];
        rs.wait_cycles += wait;
        rs.max_wait = std::max(rs.max_wait, wait);
        note(obs::EventKind::kArbGrant,
             static_cast<std::uint8_t>(active_session_.region),
             static_cast<std::uint32_t>(queue_.size() + 1), wait);
        return;
    }

    if (gap_left_ > 0) {
        --gap_left_;
        return;
    }
    Session& s = active_session_;
    sink_.icap_write(Word{s.words[s.next_word]});
    ++s.next_word;
    ++stats_[s.region].words;
    if (s.next_word == s.words.size()) {
        RegionStats& rs = stats_[s.region];
        ++rs.sessions;
        note(obs::EventKind::kArbRelease, static_cast<std::uint8_t>(s.region),
             s.next_word);
        rotation_ = (s.region + 1) % static_cast<unsigned>(stats_.size());
        active_ = false;
        active_session_ = Session{};
    } else {
        gap_left_ = s.gap - 1;
    }
}

void IcapArbiter::external_write(Word w) {
    // Session sniffer: SYNC opens, CMD DESYNC closes. Only well-formed
    // framing is tracked — a malformed external stream conservatively
    // holds the port (manager grants wait for the next DESYNC).
    const bool defined = w.is_fully_defined();
    const auto v = defined ? static_cast<std::uint32_t>(w.to_u64()) : 0u;
    if (!ext_in_session_) {
        if (defined && v == resim::kSyncWord) ext_in_session_ = true;
    } else if (defined && v == resim::type1_write(resim::CfgReg::kCmd, 1)) {
        ext_cmd_pending_ = true;
    } else if (ext_cmd_pending_) {
        ext_cmd_pending_ = false;
        if (defined &&
            v == static_cast<std::uint32_t>(resim::CfgCmd::kDesync)) {
            ext_in_session_ = false;
        }
    }

    if (active_) {
        ext_buf_.push_back(
            (static_cast<std::uint64_t>(w.val_plane()) << 32) |
            w.unk_plane());
        return;
    }
    sink_.icap_write(w);
}

void IcapArbiter::ckpt_save(rtlsim::SnapWriter& w) const {
    w.u8(static_cast<std::uint8_t>(grant_));
    w.u32(static_cast<std::uint32_t>(stats_.size()));
    for (const RegionStats& rs : stats_) {
        w.u64(rs.sessions);
        w.u64(rs.words);
        w.u64(rs.wait_cycles);
        w.u64(rs.max_wait);
    }
    const auto session = [&w](const Session& s) {
        w.u32(s.region);
        w.u32(s.gap);
        w.u32(s.priority);
        w.u64(s.submit_cycle);
        w.u32(s.next_word);
        w.u32(static_cast<std::uint32_t>(s.words.size()));
        for (std::uint32_t word : s.words) w.u32(word);
    };
    w.u32(static_cast<std::uint32_t>(queue_.size()));
    for (const Session& s : queue_) session(s);
    w.bool8(active_);
    if (active_) session(active_session_);
    w.u32(gap_left_);
    w.u32(rotation_);
    w.u64(cycle_);
    w.bool8(ext_in_session_);
    w.bool8(ext_cmd_pending_);
    w.u32(static_cast<std::uint32_t>(ext_buf_.size()));
    for (std::uint64_t planes : ext_buf_) w.u64(planes);
}

bool IcapArbiter::ckpt_restore(rtlsim::SnapReader& r) {
    const std::uint8_t g = r.u8();
    if (g > static_cast<std::uint8_t>(Grant::kPriority)) return false;
    grant_ = static_cast<Grant>(g);
    if (r.u32() != stats_.size()) return false;
    for (RegionStats& rs : stats_) {
        rs.sessions = r.u64();
        rs.words = r.u64();
        rs.wait_cycles = r.u64();
        rs.max_wait = r.u64();
    }
    const auto session = [this, &r](Session& s) {
        s.region = r.u32();
        s.gap = r.u32();
        s.priority = r.u32();
        s.submit_cycle = r.u64();
        s.next_word = r.u32();
        const std::uint32_t n = r.u32();
        s.words.clear();
        for (std::uint32_t i = 0; i < n && r.ok_so_far(); ++i) {
            s.words.push_back(r.u32());
        }
        return r.ok_so_far() && s.region < stats_.size() && s.gap >= 1 &&
               s.next_word <= s.words.size();
    };
    queue_.clear();
    const std::uint32_t nq = r.u32();
    for (std::uint32_t i = 0; i < nq && r.ok_so_far(); ++i) {
        Session s;
        if (!session(s)) return false;
        queue_.push_back(std::move(s));
    }
    active_ = r.bool8();
    active_session_ = Session{};
    if (active_ && !session(active_session_)) return false;
    gap_left_ = r.u32();
    rotation_ = r.u32();
    cycle_ = r.u64();
    ext_in_session_ = r.bool8();
    ext_cmd_pending_ = r.bool8();
    ext_buf_.clear();
    const std::uint32_t nb = r.u32();
    for (std::uint32_t i = 0; i < nb && r.ok_so_far(); ++i) {
        ext_buf_.push_back(r.u64());
    }
    return r.ok_so_far() && rotation_ < stats_.size();
}

}  // namespace autovision::rrm
