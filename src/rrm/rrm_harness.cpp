#include "rrm_harness.hpp"

#include <algorithm>
#include <sstream>
#include <utility>

#include "ckpt/checkpoint.hpp"
#include "kernel/prng.hpp"
#include "kernel/snapshot.hpp"

namespace autovision::rrm {

namespace {

using rtlsim::Logic;
using rtlsim::Time;

/// Harness-wide clamp: at least one region, at most the event schema's
/// region-tag capacity (obs::kMaxRegions).
RrmConfig clamp_config(RrmConfig cfg) {
    cfg.regions = std::clamp(cfg.regions, 1u,
                             static_cast<unsigned>(obs::kMaxRegions));
    if (cfg.jobs_per_region == 0) cfg.jobs_per_region = 1;
    if (cfg.word_gap == 0) cfg.word_gap = 1;
    if (cfg.victim >= cfg.regions) cfg.victim = 0;
    return cfg;
}

}  // namespace

std::uint64_t RrmConfig::config_hash() const {
    using rtlsim::snap_hash64;
    using rtlsim::snap_hash64_u64;
    // Domain string first (the sysconfig idiom); bump the suffix when the
    // field list or the harness topology changes.
    std::uint64_t h = snap_hash64("autovision.rrmtb.v1");
    h = snap_hash64_u64(regions, h);
    h = snap_hash64_u64(static_cast<std::uint64_t>(policy), h);
    h = snap_hash64_u64(static_cast<std::uint64_t>(grant), h);
    h = snap_hash64_u64(vm_mode ? 1 : 0, h);
    h = snap_hash64_u64(payload_words, h);
    h = snap_hash64_u64(word_gap, h);
    h = snap_hash64_u64(width, h);
    h = snap_hash64_u64(height, h);
    h = snap_hash64_u64(jobs_per_region, h);
    h = snap_hash64_u64(seed, h);
    h = snap_hash64_u64(static_cast<std::uint64_t>(corrupt), h);
    h = snap_hash64_u64(victim, h);
    h = snap_hash64_u64(watchdog_cycles, h);
    // max_cycles is deliberately excluded: it bounds how long the driver
    // runs, not how the state evolves, so snapshots interchange freely
    // between bailout settings.
    return h;
}

RrmHarness::RrmHarness(const RrmConfig& c)
    : cfg(clamp_config(c)),
      clk(sch, "clk", kClk),
      rst(sch, "rst", 3 * kClk),
      mem(Memory::Config{0, 1u << 20, 4}),
      plb(sch, "plb", clk.out, rst.out, Plb::Config{cfg.regions, 16, 1u << 30}),
      dcr(sch, "dcr", clk.out, rst.out),
      portal(sch, "portal"),
      icap(sch, "icap", portal),
      arbiter(sch, "arb", clk.out, rst.out, icap, cfg.regions, cfg.grant),
      manager(sch, "rrm", clk.out, rst.out, dcr, cfg.vm_mode ? nullptr : &arbiter,
              RegionManager::Config{cfg.policy, cfg.vm_mode, cfg.payload_words,
                                    cfg.word_gap, cfg.seed, cfg.corrupt,
                                    cfg.victim, cfg.watchdog_cycles}) {
    plb.attach_slave(mem);
    rec.set_enabled(true);

    regions_.reserve(cfg.regions);
    for (unsigned r = 0; r < cfg.regions; ++r) {
        const std::uint32_t base = kDcrBase + r * kDcrStride;
        RegionLayout lay;
        lay.plb_master = r;
        lay.region = static_cast<std::uint8_t>(r);
        lay.iso_dcr = base + kIsoOff;
        lay.regs_dcr = base + kRegsOff;
        lay.sig_dcr = base + kSigOff;
        lay.vm_mode = cfg.vm_mode;
        regions_.push_back(std::make_unique<RegionBlock>(
            sch, "r" + std::to_string(r), clk.out, rst.out, plb, lay));
    }

    for (unsigned r = 0; r < cfg.regions; ++r) {
        RegionBlock& reg = *regions_[r];
        // DCR ring order is part of the topology: iso, regs[, vmux] per
        // region, regions in index order.
        reg.attach_dcr(dcr);
        // ReSim datapath: region r answers SimB FAR region id r+1.
        if (!cfg.vm_mode) reg.map_portal(portal);
        manager.add_region(reg.ports());
        reg.set_observer(&rec);
    }

    icap.set_observer(&rec);
    portal.set_observer(&rec);
    dcr.set_observer(&rec);
    arbiter.set_observer(&rec);
    manager.set_observer(&rec);
}

void RrmHarness::boot() { sch.run_until(8 * kClk); }

void RrmHarness::start() {
    // Deterministic scene: two pseudo-random frames shared by every region
    // (cur for single-source engines, cur+prev for matching/flow).
    const std::uint32_t pixels = cfg.width * cfg.height;
    for (std::uint32_t i = 0; i < pixels; ++i) {
        mem.poke_u8(kCurFrame + i, static_cast<std::uint8_t>(
                                       rtlsim::derive_seed(cfg.seed,
                                                           0xF0C0'0000ull + i)));
        mem.poke_u8(kPrevFrame + i, static_cast<std::uint8_t>(
                                        rtlsim::derive_seed(
                                            cfg.seed, 0xF1C0'0000ull + i)));
    }

    // Job mix: engines rotate through the library with a per-region phase,
    // so three regions exercise disjoint engine sequences from one seed.
    for (unsigned r = 0; r < cfg.regions; ++r) {
        for (unsigned j = 0; j < cfg.jobs_per_region; ++j) {
            const EngineInfo& info =
                engine_library()[(r + j) % kNumEngines];
            RegionJob job;
            job.engine = info.kind;
            job.src = kCurFrame;
            job.src2 = info.needs_src2 ? kPrevFrame : 0;
            job.dst = kDstBase +
                      (r * cfg.jobs_per_region + j) * kDstStride;
            job.width = static_cast<std::uint16_t>(cfg.width);
            job.height = static_cast<std::uint16_t>(cfg.height);
            job.param = info.kind == EngineKind::kMatching
                            ? (1u | (2u << 8) | (2u << 16))
                            : 0u;
            job.deadline = rtlsim::derive_seed32(
                               cfg.seed, 0xDEAD'0000ull + r * 16 + j) %
                           16u;
            manager.enqueue(r, job);
        }
    }
    manager.start();
}

void RrmHarness::run_to_completion() {
    const Time limit = sch.now() + cfg.max_cycles * kClk;
    while (!manager.done() && sch.now() < limit) {
        sch.run_until(std::min(sch.now() + 64 * kClk, limit));
    }
    // Let the last DCR token and done-IRQ edges settle.
    sch.run_until(sch.now() + 16 * kClk);
}

RrmResult RrmHarness::collect() {
    RrmResult res;
    res.completed = manager.done();
    res.schedule = manager.signature();
    res.swaps = portal.reconfigurations();
    for (unsigned r = 0; r < cfg.regions; ++r) {
        res.jobs_done.push_back(manager.jobs_done(r));
        res.sessions.push_back(manager.sessions_submitted(r));
        res.timeouts.push_back(manager.timeouts(r));
        res.arb_sessions.push_back(arbiter.stats(r).sessions);
        res.arb_max_wait.push_back(arbiter.stats(r).max_wait);
    }
    res.diagnostics = sch.diagnostics().size();
    res.diagnostic_text.reserve(res.diagnostics);
    for (const rtlsim::Diag& d : sch.diagnostics()) {
        res.diagnostic_text.push_back(d.source + ": " + d.message);
    }
    res.events = rec.snapshot();
    res.metrics = obs::Metrics::from_events(res.events, kClk);
    res.clk_period = kClk;
    res.sim_time = sch.now();
    res.stats = sch.stats;
    return res;
}

std::vector<RegionSnapshot> RrmHarness::region_snapshots() const {
    std::vector<RegionSnapshot> out;
    out.reserve(regions_.size());
    for (unsigned r = 0; r < regions_.size(); ++r) {
        const RegionBlock& reg = *regions_[r];
        RegionSnapshot s;
        s.index = static_cast<std::uint8_t>(r);
        s.resident = manager.started() ? manager.resident(r)
                                       : EngineKind::kNone;
        s.busy = reg.regs.busy();
        s.isolated = rtlsim::is1(reg.iso.isolate.read());
        s.swaps = manager.started() ? manager.sessions_submitted(r) : 0;
        s.jobs = manager.started() ? manager.jobs_done(r) : 0;
        out.push_back(s);
    }
    return out;
}

bool RrmHarness::save(std::ostream& os) const {
    // Any delta-quiescent point works: the manager re-arms its in-flight
    // DCR completion on restore, and the engines re-arm their DMA bursts.
    if (!sch.ckpt_quiescent()) return false;
    ckpt::Saver saver(
        ckpt::Manifest{ckpt::kFormatVersion, cfg.config_hash(), sch.now()});
    sch.ckpt_save(saver.section("kernel"));
    clk.ckpt_save(saver.section("clock"));
    rst.ckpt_save(saver.section("reset"));
    mem.ckpt_save(saver.section("memory"));
    plb.ckpt_save(saver.section("plb"));
    dcr.ckpt_save(saver.section("dcr"));
    for (unsigned r = 0; r < regions_.size(); ++r) {
        regions_[r]->ckpt_save(
            saver.section("r" + std::to_string(r) + ".block"));
    }
    portal.ckpt_save(saver.section("portal"));
    icap.ckpt_save(saver.section("icap"));
    // The region-array trio: decodable summary + the full mutable state.
    save_region_section(saver.section("rrm"), region_snapshots());
    arbiter.ckpt_save(saver.section("rrm_arb"));
    manager.ckpt_save(saver.section("rrm_mgr"));
    rec.ckpt_save(saver.section("recorder"));
    sch.ckpt_save_signals(saver.section("signals"));
    return saver.write_to(os);
}

bool RrmHarness::restore(std::istream& is, std::string* error) {
    const auto fail = [error](const std::string& what) {
        if (error != nullptr) *error = what;
        return false;
    };
    ckpt::Loader loader;
    if (!loader.load(is, cfg.config_hash())) {
        return fail("manifest/config-hash mismatch");
    }
    const auto section = [&](const char* name, auto&& target) {
        rtlsim::SnapReader r = loader.reader(name);
        return target.ckpt_restore(r);
    };
    {
        rtlsim::SnapReader r = loader.reader("kernel");
        if (!sch.ckpt_restore(r)) return fail("kernel");
    }
    if (!section("clock", clk)) return fail("clock");
    if (!section("reset", rst)) return fail("reset");
    if (!section("memory", mem)) return fail("memory");
    if (!section("plb", plb)) return fail("plb");
    if (!section("dcr", dcr)) return fail("dcr");
    for (unsigned r = 0; r < regions_.size(); ++r) {
        const std::string name = "r" + std::to_string(r) + ".block";
        if (!section(name.c_str(), *regions_[r])) return fail(name);
    }
    if (!section("portal", portal)) return fail("portal");
    if (!section("icap", icap)) return fail("icap");
    std::vector<RegionSnapshot> summary;
    {
        rtlsim::SnapReader r = loader.reader("rrm");
        if (!load_region_section(r, summary)) return fail("rrm");
    }
    if (!section("rrm_arb", arbiter)) return fail("rrm_arb");
    if (!section("rrm_mgr", manager)) return fail("rrm_mgr");
    if (!section("recorder", rec)) return fail("recorder");
    {
        rtlsim::SnapReader r = loader.reader("signals");
        if (!sch.ckpt_restore_signals(r)) return fail("signals");
    }
    // The summary section must agree with the restored full state — this
    // keeps the decodable format honest against drift.
    if (summary != region_snapshots()) {
        return fail("rrm summary/state mismatch");
    }
    return true;
}

RrmResult run_rrm_scenario(const RrmConfig& cfg) {
    RrmHarness tb(cfg);
    tb.boot();
    tb.start();
    tb.run_to_completion();
    return tb.collect();
}

}  // namespace autovision::rrm
