#include "region_manager.hpp"

#include <algorithm>

#include "kernel/prng.hpp"

namespace autovision::rrm {

using rtlsim::is1;
using rtlsim::Logic;
using rtlsim::Word;

const char* to_string(RegionCorrupt c) {
    switch (c) {
        case RegionCorrupt::kNone: return "none";
        case RegionCorrupt::kWrongRegionFar: return "wrong-region-far";
        case RegionCorrupt::kDropIsolation: return "drop-isolation";
        case RegionCorrupt::kSimultaneousWindows: return "simultaneous-windows";
        case RegionCorrupt::kCount: break;
    }
    return "?";
}

RegionManager::RegionManager(rtlsim::Scheduler& sch, const std::string& name,
                             rtlsim::Signal<Logic>& clk,
                             rtlsim::Signal<Logic>& rst, DcrChain& dcr,
                             IcapArbiter* arb, Config cfg)
    : Module(sch, name), rst_(rst), dcr_(dcr), arb_(arb), cfg_(cfg) {
    if (arb_ == nullptr && !cfg_.vm_mode) {
        report("no ICAP arbiter: reconfigurations cannot be executed");
    }
    sync_proc("manager", [this] { on_clock(); }, {rtlsim::posedge(clk)});
}

void RegionManager::add_region(const RegionPorts& ports) {
    Region reg;
    reg.ports = ports;
    regions_.push_back(std::move(reg));
}

void RegionManager::enqueue(unsigned region, const RegionJob& job) {
    if (started_ || region >= regions_.size()) {
        report("job rejected: manager started or region out of range");
        return;
    }
    regions_[region].jobs.push_back(job);
}

unsigned RegionManager::push_software(unsigned region, const RegionJob& job,
                                      bool reconfigure) {
    if (!cfg_.software || !started_ || region >= regions_.size()) {
        report("software push rejected: not in software mode, not started, "
               "or region out of range");
        return 0;
    }
    const auto slot = static_cast<unsigned>(plan_.size());
    plan_.push_back({slot, region, job.engine, reconfigure});
    jobs_of_plan_.push_back(job);
    Region& reg = regions_[region];
    reg.jobs.push_back(job);
    reg.entries.push_back(slot);
    // A region that drained its entries parked in kDone; fresh work
    // re-opens it.
    if (reg.st == St::kDone) {
        reg.st = St::kIdle;
        reg.watchdog = 0;
    }
    return slot;
}

void RegionManager::start() {
    if (started_) return;
    started_ = true;
    if (cfg_.software) return;  // plan grows via push_software()

    // Workload in global arrival order: interleave per-region queues by
    // arrival position (jobs were enqueued region-locally; position in the
    // region queue is the arrival key, regions tie-broken by index).
    Workload w;
    w.regions = static_cast<unsigned>(std::max<std::size_t>(1, regions_.size()));
    std::size_t most = 0;
    for (const Region& reg : regions_) {
        most = std::max(most, reg.jobs.size());
    }
    for (std::size_t i = 0; i < most; ++i) {
        for (unsigned r = 0; r < regions_.size(); ++r) {
            if (i < regions_[r].jobs.size()) {
                const RegionJob& j = regions_[r].jobs[i];
                w.requests.push_back({r, j.engine, j.deadline});
            }
        }
    }
    plan_ = plan_schedule(cfg_.policy, w);

    // Map each plan entry back to the concrete job: first unconsumed job of
    // that region matching (engine, deadline) — requests were built 1:1
    // from jobs, and every policy is stable over identical keys.
    std::vector<std::vector<bool>> used(regions_.size());
    for (std::size_t r = 0; r < regions_.size(); ++r) {
        used[r].assign(regions_[r].jobs.size(), false);
    }
    jobs_of_plan_.clear();
    jobs_of_plan_.reserve(plan_.size());
    for (std::size_t p = 0; p < plan_.size(); ++p) {
        const PlannedSwap& s = plan_[p];
        Region& reg = regions_[s.region];
        std::size_t pick = reg.jobs.size();
        for (std::size_t j = 0; j < reg.jobs.size(); ++j) {
            if (used[s.region][j]) continue;
            if (reg.jobs[j].engine == s.engine) {
                pick = j;  // first unconsumed match (policies are stable)
                break;
            }
        }
        if (pick == reg.jobs.size()) {
            // Defensive: fall back to the first unconsumed job.
            for (std::size_t j = 0; j < reg.jobs.size(); ++j) {
                if (!used[s.region][j]) {
                    pick = j;
                    break;
                }
            }
        }
        used[s.region][pick] = true;
        reg.entries.push_back(static_cast<unsigned>(p));
        jobs_of_plan_.push_back(reg.jobs[pick]);
    }
}

bool RegionManager::done() const {
    if (!started_) return false;
    for (const Region& reg : regions_) {
        if (reg.st != St::kDone &&
            !(reg.st == St::kIdle && reg.entry == reg.entries.size())) {
            return false;
        }
    }
    return arb_ == nullptr || !arb_->busy();
}

void RegionManager::issue_dcr(unsigned r, std::uint32_t regno,
                              std::uint32_t value, St next) {
    if (dcr_.busy()) return;  // chain contention: retry next cycle
    Region& reg = regions_[r];
    reg.dcr_wait = true;
    dcr_owner_ = static_cast<int>(r);
    dcr_.start_write(regno, Word{value}, [this, r] {
        regions_[r].dcr_wait = false;
        dcr_owner_ = -1;
    });
    reg.st = next;
    reg.watchdog = 0;
}

void RegionManager::force_overlap(unsigned victim, bool on) {
    // kSimultaneousWindows: hold the co-region in an isolated X-window for
    // the whole of the victim's session. Isolation goes on before the
    // window opens and off after it closes, so the overlap is clean.
    const unsigned other =
        (victim + 1) % static_cast<unsigned>(regions_.size());
    if (other == victim) return;
    const RegionPorts& p = regions_[other].ports;
    if (p.iso == nullptr || p.boundary == nullptr) return;
    if (on) {
        p.iso->dcr_write(p.iso_dcr, Word{1});
        p.boundary->set_reconfiguring(true);
    } else {
        p.boundary->set_reconfiguring(false);
        // Restore rather than stomp: the co-region may have isolated itself
        // for its own pending session while the overlap was held.
        const St st = regions_[other].st;
        const bool self_isolated = st == St::kIsolate || st == St::kIsoWait ||
                                   st == St::kConfigure ||
                                   st == St::kCfgWait || st == St::kDeisolate;
        if (!self_isolated) p.iso->dcr_write(p.iso_dcr, Word{0});
    }
}

void RegionManager::finish_entry(unsigned r, bool completed) {
    Region& reg = regions_[r];
    if (completed) {
        ++reg.jobs_done;
        // Events carry the global region id (rr_id - 1), which equals the
        // manager-internal index in the standalone harness but not when the
        // manager drives a tail of a larger region pool (sys::System).
        note(obs::EventKind::kRegionJob,
             static_cast<std::uint8_t>(reg.ports.rr_id - 1),
             static_cast<std::uint32_t>(cur_swap(reg).engine));
    } else {
        ++reg.timeouts;
    }
    ++reg.entry;
    reg.prog_step = 0;
    reg.watchdog = 0;
    reg.st = reg.entry == reg.entries.size() ? St::kDone : St::kIdle;
}

void RegionManager::on_clock() {
    if (!started_ || is1(rst_.read())) return;
    for (unsigned r = 0; r < regions_.size(); ++r) {
        step_region(r);
    }
}

void RegionManager::step_region(unsigned r) {
    Region& reg = regions_[r];
    const bool victim =
        cfg_.corrupt != RegionCorrupt::kNone && cfg_.victim == r;

    switch (reg.st) {
        case St::kIdle: {
            if (reg.entry == reg.entries.size()) return;
            // Plan gate: open reconfigurations strictly in plan order.
            if (reg.entries[reg.entry] != global_next_) return;
            const PlannedSwap& s = cur_swap(reg);
            if (cfg_.vm_mode) {
                reg.st = St::kVmSwap;
            } else if (!s.reconfigure) {
                // Demand-paging hit: the engine is already resident.
                ++global_next_;
                reg.st = St::kProgram;
                reg.prog_step = 0;
            } else if (victim &&
                       cfg_.corrupt == RegionCorrupt::kDropIsolation) {
                reg.st = St::kConfigure;  // bug.dpr.1, multi-region form
            } else {
                reg.st = St::kIsolate;
            }
            reg.watchdog = 0;
            return;
        }

        case St::kIsolate:
            issue_dcr(r, reg.ports.iso_dcr, 1, St::kIsoWait);
            return;
        case St::kIsoWait:
            if (!reg.dcr_wait) reg.st = St::kConfigure;
            return;

        case St::kConfigure: {
            if (arb_ == nullptr) {
                finish_entry(r, false);
                return;
            }
            const PlannedSwap& s = cur_swap(reg);
            resim::SimB simb;
            simb.rr_id = reg.ports.rr_id;
            if (victim && cfg_.corrupt == RegionCorrupt::kWrongRegionFar) {
                // Mis-addressed FAR: the session lands on the next region.
                const unsigned other =
                    (r + 1) % static_cast<unsigned>(regions_.size());
                simb.rr_id = regions_[other].ports.rr_id;
            }
            simb.module_id = static_cast<std::uint8_t>(s.engine);
            simb.payload_words = cfg_.payload_words;
            simb.seed = rtlsim::derive_seed32(
                cfg_.simb_seed,
                0x5252'4D00u + (r << 8) + reg.entries[reg.entry]);
            const unsigned priority = cfg_.policy == Policy::kDeadline
                                          ? cur_job(reg).deadline
                                          : 0;
            arb_->submit(reg.ports.rr_id - 1u, simb.build(), cfg_.word_gap,
                         priority);
            ++reg.sessions;
            if (victim &&
                cfg_.corrupt == RegionCorrupt::kSimultaneousWindows) {
                force_overlap(r, true);
            }
            ++global_next_;
            reg.st = St::kCfgWait;
            reg.watchdog = 0;
            return;
        }

        case St::kCfgWait:
            if (arb_ != nullptr &&
                arb_->outstanding(reg.ports.rr_id - 1u) != 0) {
                if (++reg.watchdog > cfg_.watchdog_cycles) {
                    report("region " + std::to_string(r) +
                           ": configuration timed out");
                    finish_entry(r, false);
                }
                return;
            }
            if (victim &&
                cfg_.corrupt == RegionCorrupt::kSimultaneousWindows) {
                force_overlap(r, false);
            }
            reg.resident = cur_swap(reg).engine;
            reg.st = victim && cfg_.corrupt == RegionCorrupt::kDropIsolation
                         ? St::kProgram
                         : St::kDeisolate;
            reg.prog_step = 0;
            return;

        case St::kDeisolate:
            issue_dcr(r, reg.ports.iso_dcr, 0, St::kDeisoWait);
            return;
        case St::kDeisoWait:
            if (!reg.dcr_wait) {
                reg.st = St::kProgram;
                reg.prog_step = 0;
            }
            return;

        case St::kVmSwap:
            issue_dcr(r, reg.ports.sig_dcr,
                      static_cast<std::uint32_t>(cur_swap(reg).engine),
                      St::kVmSwapWait);
            return;
        case St::kVmSwapWait:
            if (!reg.dcr_wait) {
                reg.resident = cur_swap(reg).engine;
                ++global_next_;
                reg.st = St::kProgram;
                reg.prog_step = 0;
            }
            return;

        case St::kProgram: {
            const RegionJob& job = cur_job(reg);
            const std::uint32_t base = reg.ports.regs_dcr;
            switch (reg.prog_step) {
                case 0:
                    issue_dcr(r, base + EngineRegs::kSrc, job.src,
                              St::kProgWait);
                    return;
                case 1:
                    issue_dcr(r, base + EngineRegs::kSrc2, job.src2,
                              St::kProgWait);
                    return;
                case 2:
                    issue_dcr(r, base + EngineRegs::kDst, job.dst,
                              St::kProgWait);
                    return;
                case 3:
                    issue_dcr(r, base + EngineRegs::kDims,
                              (static_cast<std::uint32_t>(job.width) << 16) |
                                  job.height,
                              St::kProgWait);
                    return;
                case 4:
                    issue_dcr(r, base + EngineRegs::kParam, job.param,
                              St::kProgWait);
                    return;
                default:
                    issue_dcr(r, base + EngineRegs::kCtrl, 1, St::kProgWait);
                    return;
            }
        }
        case St::kProgWait:
            if (reg.dcr_wait) return;
            if (reg.prog_step < 5) {
                ++reg.prog_step;
                reg.st = St::kProgram;
            } else {
                reg.st = St::kRun;
                reg.watchdog = 0;
            }
            return;

        case St::kRun:
            if (reg.ports.regs != nullptr && reg.ports.regs->done()) {
                reg.st = St::kClearDone;
                return;
            }
            if (++reg.watchdog > cfg_.watchdog_cycles) {
                report("region " + std::to_string(r) + ": job on engine '" +
                       std::string(rrm::to_string(cur_swap(reg).engine)) +
                       "' timed out (start pulse lost?)");
                finish_entry(r, false);
            }
            return;

        case St::kClearDone:
            issue_dcr(r, reg.ports.regs_dcr + EngineRegs::kStatus, 2,
                      St::kClearWait);
            return;
        case St::kClearWait:
            if (!reg.dcr_wait) finish_entry(r, true);
            return;

        case St::kDone:
            return;
    }
}

void RegionManager::ckpt_save(rtlsim::SnapWriter& w) const {
    w.bool8(started_);
    w.u32(global_next_);
    w.i32(dcr_owner_);
    w.u32(static_cast<std::uint32_t>(plan_.size()));
    for (const PlannedSwap& s : plan_) {
        w.u32(s.slot);
        w.u32(s.region);
        w.u8(static_cast<std::uint8_t>(s.engine));
        w.bool8(s.reconfigure);
    }
    const auto job = [&w](const RegionJob& j) {
        w.u8(static_cast<std::uint8_t>(j.engine));
        w.u32(j.src);
        w.u32(j.src2);
        w.u32(j.dst);
        w.u32(j.width);
        w.u32(j.height);
        w.u32(j.param);
        w.u32(j.deadline);
    };
    for (const RegionJob& j : jobs_of_plan_) job(j);
    w.u32(static_cast<std::uint32_t>(regions_.size()));
    for (const Region& reg : regions_) {
        w.u32(static_cast<std::uint32_t>(reg.jobs.size()));
        for (const RegionJob& j : reg.jobs) job(j);
        w.u32(static_cast<std::uint32_t>(reg.entries.size()));
        for (unsigned e : reg.entries) w.u32(e);
        w.u8(static_cast<std::uint8_t>(reg.st));
        w.u32(reg.entry);
        w.u8(reg.prog_step);
        w.bool8(reg.dcr_wait);
        w.u64(reg.watchdog);
        w.u32(reg.jobs_done);
        w.u32(reg.sessions);
        w.u32(reg.timeouts);
        w.u8(static_cast<std::uint8_t>(reg.resident));
    }
}

bool RegionManager::ckpt_restore(rtlsim::SnapReader& r) {
    started_ = r.bool8();
    global_next_ = r.u32();
    dcr_owner_ = r.i32();
    const auto job = [&r](RegionJob& j) {
        j.engine = static_cast<EngineKind>(r.u8());
        j.src = r.u32();
        j.src2 = r.u32();
        j.dst = r.u32();
        j.width = static_cast<std::uint16_t>(r.u32());
        j.height = static_cast<std::uint16_t>(r.u32());
        j.param = r.u32();
        j.deadline = r.u32();
    };
    plan_.clear();
    jobs_of_plan_.clear();
    const std::uint32_t np = r.u32();
    for (std::uint32_t i = 0; i < np && r.ok_so_far(); ++i) {
        PlannedSwap s;
        s.slot = r.u32();
        s.region = r.u32();
        s.engine = static_cast<EngineKind>(r.u8());
        s.reconfigure = r.bool8();
        plan_.push_back(s);
    }
    for (std::uint32_t i = 0; i < np && r.ok_so_far(); ++i) {
        RegionJob j;
        job(j);
        jobs_of_plan_.push_back(j);
    }
    if (r.u32() != regions_.size()) return false;
    for (Region& reg : regions_) {
        reg.jobs.clear();
        const std::uint32_t nj = r.u32();
        for (std::uint32_t i = 0; i < nj && r.ok_so_far(); ++i) {
            RegionJob j;
            job(j);
            reg.jobs.push_back(j);
        }
        reg.entries.clear();
        const std::uint32_t ne = r.u32();
        for (std::uint32_t i = 0; i < ne && r.ok_so_far(); ++i) {
            reg.entries.push_back(r.u32());
        }
        const std::uint8_t st = r.u8();
        if (st > static_cast<std::uint8_t>(St::kDone)) return false;
        reg.st = static_cast<St>(st);
        reg.entry = r.u32();
        reg.prog_step = r.u8();
        reg.dcr_wait = r.bool8();
        reg.watchdog = r.u64();
        reg.jobs_done = r.u32();
        reg.sessions = r.u32();
        reg.timeouts = r.u32();
        reg.resident = static_cast<EngineKind>(r.u8());
        if (reg.entry > reg.entries.size()) return false;
    }
    if (!r.ok_so_far()) return false;
    // Re-arm the in-flight DCR write closure (the chain restored its own
    // token state; only the completion callback needs re-installing).
    if (dcr_owner_ >= 0 &&
        dcr_owner_ < static_cast<int>(regions_.size()) &&
        regions_[static_cast<std::size_t>(dcr_owner_)].dcr_wait) {
        const auto owner = static_cast<unsigned>(dcr_owner_);
        dcr_.ckpt_rearm_write([this, owner] {
            regions_[owner].dcr_wait = false;
            dcr_owner_ = -1;
        });
    }
    return true;
}

}  // namespace autovision::rrm
