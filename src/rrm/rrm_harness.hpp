// rrm: self-contained multi-region testbench.
//
// The virtualization analogue of scen's StreamTb: N regions, each with its
// own isolation module, boundary, shared EngineRegs block and the full
// four-entry engine library instantiated behind the boundary mux; one
// ExtendedPortal + ICAP artifact behind the ICAP arbiter; a RegionManager
// executing a policy plan over a per-region job mix. Tests, the scenario
// runner and the closure campaign all drive multi-region coverage through
// this harness, keeping sys::System's single-region golden path untouched.
#pragma once

#include <array>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "bus/dcr.hpp"
#include "bus/memory.hpp"
#include "bus/plb.hpp"
#include "engine_library.hpp"
#include "icap_arbiter.hpp"
#include "kernel/clock.hpp"
#include "kernel/kernel.hpp"
#include "obs/metrics.hpp"
#include "obs/recorder.hpp"
#include "policy.hpp"
#include "recon/isolation.hpp"
#include "recon/rr_boundary.hpp"
#include "region_block.hpp"
#include "region_manager.hpp"
#include "resim/icap_artifact.hpp"
#include "resim/portal.hpp"
#include "rrm_section.hpp"
#include "vm/virtual_mux.hpp"

namespace autovision::rrm {

struct RrmConfig {
    unsigned regions = 2;             ///< 1..kMaxRegionsSupported
    Policy policy = Policy::kRoundRobin;
    IcapArbiter::Grant grant = IcapArbiter::Grant::kFair;
    bool vm_mode = false;             ///< Virtual Multiplexing swaps
    std::uint32_t payload_words = 16; ///< SimB payload length
    unsigned word_gap = 1;            ///< ICAP pacing
    unsigned width = 16;              ///< frame geometry (multiple of 4)
    unsigned height = 12;
    unsigned jobs_per_region = 2;
    std::uint64_t seed = 1;           ///< frames, fillers, deadlines
    RegionCorrupt corrupt = RegionCorrupt::kNone;
    unsigned victim = 0;
    std::uint64_t watchdog_cycles = 20000;
    std::uint64_t max_cycles = 2'000'000;  ///< absolute run bailout

    /// Elaboration identity for checkpoints (domain-tagged field fold).
    [[nodiscard]] std::uint64_t config_hash() const;
};

struct RrmResult {
    bool completed = false;          ///< manager drained before max_cycles
    std::string schedule;            ///< schedule_signature of the plan
    std::uint64_t swaps = 0;         ///< portal reconfigurations (total)
    std::vector<std::uint32_t> jobs_done;      ///< per region
    std::vector<std::uint32_t> sessions;       ///< per region (submitted)
    std::vector<std::uint32_t> timeouts;       ///< per region
    std::vector<std::uint64_t> arb_sessions;   ///< per region (granted)
    std::vector<std::uint64_t> arb_max_wait;   ///< per region, cycles
    std::size_t diagnostics = 0;
    std::vector<std::string> diagnostic_text;
    std::vector<obs::Event> events;
    obs::Metrics metrics;
    rtlsim::Time clk_period = 0;
    rtlsim::Time sim_time = 0;
    rtlsim::SimStats stats;
};

/// The elaborated testbench, exposed so tests can checkpoint mid-run and
/// drive contention edge cases directly.
class RrmHarness {
public:
    static constexpr rtlsim::Time kClk = 10 * rtlsim::NS;
    /// Per-region DCR block: isolation, engine regs, engine signature.
    static constexpr std::uint32_t kDcrBase = 0x100;
    static constexpr std::uint32_t kDcrStride = 0x20;
    static constexpr std::uint32_t kIsoOff = 0;
    static constexpr std::uint32_t kRegsOff = 8;
    static constexpr std::uint32_t kSigOff = 16;
    /// Memory map: cur/prev source frames, per-job destination blocks.
    static constexpr std::uint32_t kCurFrame = 0x1000;
    static constexpr std::uint32_t kPrevFrame = 0x5000;
    static constexpr std::uint32_t kDstBase = 0x1'0000;
    static constexpr std::uint32_t kDstStride = 0x4000;

    explicit RrmHarness(const RrmConfig& cfg);

    /// Reset settle + initial full-bitstream configuration.
    void boot();
    /// Queue the config's deterministic job mix and start the manager.
    void start();
    /// Advance until the manager drains or cfg.max_cycles elapse.
    void run_to_completion();
    [[nodiscard]] RrmResult collect();

    [[nodiscard]] RegionBlock& region(unsigned r) { return *regions_[r]; }
    [[nodiscard]] unsigned num_regions() const {
        return static_cast<unsigned>(regions_.size());
    }
    [[nodiscard]] std::vector<RegionSnapshot> region_snapshots() const;

    // --- checkpoint ------------------------------------------------------
    /// Full-state snapshot including the versioned "rrm" region-array
    /// section; save refuses at non-quiescent points (DCR token mid-ring).
    [[nodiscard]] bool save(std::ostream& os) const;
    [[nodiscard]] bool restore(std::istream& is, std::string* error = nullptr);

    RrmConfig cfg;
    rtlsim::Scheduler sch;
    rtlsim::Clock clk;
    rtlsim::ResetGen rst;
    Memory mem;
    Plb plb;
    DcrChain dcr;
    resim::ExtendedPortal portal;
    resim::IcapArtifact icap;
    IcapArbiter arbiter;
    RegionManager manager;
    obs::EventRecorder rec;

private:
    std::vector<std::unique_ptr<RegionBlock>> regions_;
};

/// One-shot runner: elaborate, boot, execute the job mix, collect.
[[nodiscard]] RrmResult run_rrm_scenario(const RrmConfig& cfg);

}  // namespace autovision::rrm
