// rrm: RegionManager — autonomous management processor for a pool of
// time-shared reconfigurable regions.
//
// The manager owns the run-time side of region virtualization: it executes
// a policy plan (policy.hpp) over N regions, driving for each planned swap
// the full reconfiguration protocol the paper's firmware drives for one —
// isolate (DCR), stream the SimB (through the ICAP arbiter), de-isolate,
// program the engine's job registers (DCR), and wait for completion. Under
// Virtual Multiplexing mode it writes the per-region engine_signature
// register instead, reproducing the zero-delay swap semantics for the same
// plan.
//
// All region FSMs advance in strict region-index order on each clock and
// share one DCR chain (a region stalls while the chain is busy), so a run
// is bit-reproducible at any worker/lane count. Plan order is enforced at
// the ICAP: a region may only open its reconfiguration once every earlier
// plan entry has submitted its session, making the arbiter grant order
// equal the plan order.
//
// Labelled corruption knobs reproduce cross-region failure modes:
//   * kWrongRegionFar      — the victim's SimB FAR names the next region,
//                            so its swaps land in the co-region. The run
//                            still completes silently (jobs execute on
//                            whatever engine is resident); the misdirection
//                            is visible only in the region-tagged event
//                            stream, which is why observability must carry
//                            the region index;
//   * kDropIsolation       — the victim never isolates: its X-window leaks
//                            onto the shared PLB (multi-region bug.dpr.1);
//   * kSimultaneousWindows — the co-region is put into an (isolated)
//                            X-window for the whole of the victim's
//                            session, so two windows overlap cleanly.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "bus/dcr.hpp"
#include "engine_library.hpp"
#include "icap_arbiter.hpp"
#include "kernel/kernel.hpp"
#include "obs/recorder.hpp"
#include "policy.hpp"
#include "recon/isolation.hpp"
#include "recon/rr_boundary.hpp"

namespace autovision::rrm {

enum class RegionCorrupt : std::uint8_t {
    kNone,
    kWrongRegionFar,
    kDropIsolation,
    kSimultaneousWindows,
    kCount,
};

[[nodiscard]] const char* to_string(RegionCorrupt c);

/// One work item for a region: which engine, and the job-register values
/// the manager programs after the swap.
struct RegionJob {
    EngineKind engine = EngineKind::kNone;
    std::uint32_t src = 0;
    std::uint32_t src2 = 0;
    std::uint32_t dst = 0;
    std::uint16_t width = 0;
    std::uint16_t height = 0;
    std::uint32_t param = 0;
    unsigned deadline = 0;  ///< abstract urgency (kDeadline policy)
};

/// The static-side wiring of one region, handed in by the owner.
struct RegionPorts {
    std::uint8_t rr_id = 1;           ///< SimB FAR region id (index + 1)
    RrBoundary* boundary = nullptr;
    Isolation* iso = nullptr;
    std::uint32_t iso_dcr = 0;        ///< isolation control register
    std::uint32_t regs_dcr = 0;       ///< EngineRegs DCR base
    EngineRegs* regs = nullptr;       ///< engine-side status wire taps
    std::uint32_t sig_dcr = 0;        ///< engine_signature register (VM)
};

class RegionManager final : public rtlsim::Module {
public:
    struct Config {
        Policy policy = Policy::kRoundRobin;
        bool vm_mode = false;              ///< signature writes, no SimBs
        std::uint32_t payload_words = 16;  ///< SimB payload length
        unsigned word_gap = 1;             ///< ICAP pacing per word
        std::uint64_t simb_seed = 1;       ///< payload filler seed root
        RegionCorrupt corrupt = RegionCorrupt::kNone;
        unsigned victim = 0;               ///< region the corruption hits
        std::uint64_t watchdog_cycles = 100000;  ///< hang bailout
        /// Software-scheduled mode: no policy planner runs; the plan is
        /// grown at run time by push_software() (driven from firmware
        /// through the DCR pool bridge). The manager still executes the
        /// full per-swap protocol — only the scheduling decision moves
        /// into the embedded software.
        bool software = false;
    };

    /// `arb` may be nullptr only in VM mode (no bitstream datapath).
    RegionManager(rtlsim::Scheduler& sch, const std::string& name,
                  rtlsim::Signal<rtlsim::Logic>& clk,
                  rtlsim::Signal<rtlsim::Logic>& rst, DcrChain& dcr,
                  IcapArbiter* arb, Config cfg);

    /// Regions attach in index order (region i = i-th call).
    void add_region(const RegionPorts& ports);
    /// Queue a job (arrival order is the workload order).
    void enqueue(unsigned region, const RegionJob& job);
    /// Freeze the workload, run the policy planner, begin execution.
    /// In software mode (Config::software) the plan starts empty and no
    /// planner runs; jobs arrive later through push_software().
    void start();
    /// Software mode only: append one swap to the live plan. The entry is
    /// executed in push order (the plan gate serialises reconfigurations
    /// exactly as for a planned workload). `reconfigure` false is the
    /// demand-paging hit: the software asserts the engine is already
    /// resident and the swap is skipped. Returns the plan slot.
    unsigned push_software(unsigned region, const RegionJob& job,
                           bool reconfigure);

    [[nodiscard]] bool started() const { return started_; }
    /// All plan entries finished (completed or timed out) and the ICAP
    /// arbiter drained.
    [[nodiscard]] bool done() const;

    [[nodiscard]] const std::vector<PlannedSwap>& plan() const {
        return plan_;
    }
    /// The documented schedule rendering (policy distinctness pin).
    [[nodiscard]] std::string signature() const {
        return schedule_signature(plan_);
    }

    [[nodiscard]] unsigned num_regions() const {
        return static_cast<unsigned>(regions_.size());
    }
    [[nodiscard]] std::uint32_t jobs_done(unsigned region) const {
        return regions_[region].jobs_done;
    }
    [[nodiscard]] std::uint32_t sessions_submitted(unsigned region) const {
        return regions_[region].sessions;
    }
    [[nodiscard]] std::uint32_t timeouts(unsigned region) const {
        return regions_[region].timeouts;
    }
    /// Engine the plan last configured into the region (kNone before).
    [[nodiscard]] EngineKind resident(unsigned region) const {
        return regions_[region].resident;
    }
    [[nodiscard]] const Config& config() const { return cfg_; }

    /// Attach (or detach, with nullptr) the structured event recorder.
    void set_observer(obs::EventRecorder* rec) { obs_ = rec; }

    // --- checkpoint ------------------------------------------------------
    /// Plan + per-region FSM + workload. Re-arms the in-flight DCR write
    /// closure when one was open at save time.
    void ckpt_save(rtlsim::SnapWriter& w) const;
    [[nodiscard]] bool ckpt_restore(rtlsim::SnapReader& r);

private:
    enum class St : std::uint8_t {
        kIdle,        ///< waiting for the plan gate
        kIsolate,     ///< issue isolation-on DCR write
        kIsoWait,
        kConfigure,   ///< submit the SimB session to the arbiter
        kCfgWait,     ///< session draining through the ICAP
        kDeisolate,   ///< issue isolation-off DCR write
        kDeisoWait,
        kVmSwap,      ///< VM mode: write the engine signature
        kVmSwapWait,
        kProgram,     ///< job-register write sequence
        kProgWait,
        kRun,         ///< engine executing; poll the done wire
        kClearDone,   ///< write-1-to-clear the done status bit
        kClearWait,
        kDone,        ///< all entries of this region finished
    };

    struct Region {
        RegionPorts ports;
        std::vector<RegionJob> jobs;      ///< arrival order
        std::vector<unsigned> entries;    ///< my plan indices, in order
        St st = St::kIdle;
        std::uint32_t entry = 0;          ///< cursor into `entries`
        std::uint8_t prog_step = 0;
        bool dcr_wait = false;
        std::uint64_t watchdog = 0;
        std::uint32_t jobs_done = 0;
        std::uint32_t sessions = 0;
        std::uint32_t timeouts = 0;
        EngineKind resident = EngineKind::kNone;
    };

    void on_clock();
    void step_region(unsigned r);
    /// Current plan entry / job of region r (entry cursor valid).
    [[nodiscard]] const PlannedSwap& cur_swap(const Region& reg) const {
        return plan_[reg.entries[reg.entry]];
    }
    [[nodiscard]] const RegionJob& cur_job(const Region& reg) const {
        return jobs_of_plan_[reg.entries[reg.entry]];
    }
    void issue_dcr(unsigned r, std::uint32_t regno, std::uint32_t value,
                   St next);
    void finish_entry(unsigned r, bool completed);
    void force_overlap(unsigned victim, bool on);

    void note(obs::EventKind k, std::uint8_t region, std::uint32_t a = 0,
              std::uint64_t b = 0) {
        if (obs_ != nullptr) {
            obs_->record(sch_.now(), k, obs::Source::kManager, a, b, region);
        }
    }

    rtlsim::Signal<rtlsim::Logic>& rst_;
    DcrChain& dcr_;
    IcapArbiter* arb_;
    Config cfg_;
    obs::EventRecorder* obs_ = nullptr;

    std::vector<Region> regions_;
    std::vector<PlannedSwap> plan_;
    std::vector<RegionJob> jobs_of_plan_;  ///< job per plan entry
    bool started_ = false;
    std::uint32_t global_next_ = 0;  ///< plan gate: next entry to open
    int dcr_owner_ = -1;             ///< region whose DCR write is in flight
};

}  // namespace autovision::rrm
