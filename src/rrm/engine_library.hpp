// rrm: the engine library — the catalogue of partial modules a region can
// be configured with.
//
// The paper's demonstrator swaps two engines (CIE / ME); the virtualization
// layer generalizes that to a library the scheduler draws from, following
// the time-shared CV pipelines of Nguyen & Hoe and the virtualized-region
// pool of Huang et al. (PAPERS.md). Each entry wraps one of the src/video
// golden models as a real EngineBase RTL model, reuses the EngineRegs
// programming model unchanged, and carries the metadata the RegionManager
// needs to program a job (second source stream, streaming vs block shape).
//
// EngineKind values double as SimB module ids (FAR bits [23:16]), so the
// library is also the region-address-space catalogue: kCensus/kMatching
// keep the demonstrator's historical ids 1/2.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <string>

#include "engines/engine.hpp"

namespace autovision::rrm {

enum class EngineKind : std::uint8_t {
    kNone = 0,      ///< region unconfigured
    kCensus = 1,    ///< census transform (streaming, one source)
    kMatching = 2,  ///< block-matching optical flow (block, two sources)
    kSobel = 3,     ///< Sobel edge magnitude (streaming, one source)
    kFlow = 4,      ///< temporal-difference motion energy (streaming, two)
};

inline constexpr std::size_t kNumEngines = 4;

struct EngineInfo {
    EngineKind kind = EngineKind::kNone;
    const char* id = "";   ///< stable short name ("census", "sobel", ...)
    bool streaming = false;  ///< per-pixel stream_out activity (Table II)
    bool needs_src2 = false; ///< consumes the SRC2 (previous-frame) register
};

/// The full library, indexed 0..kNumEngines-1 (kind value - 1).
[[nodiscard]] const std::array<EngineInfo, kNumEngines>& engine_library();

/// Lookup by kind; nullptr for kNone / out-of-catalogue values.
[[nodiscard]] const EngineInfo* find_engine(EngineKind k);

[[nodiscard]] const char* to_string(EngineKind k);

/// Instantiate a library engine. All four share the EngineBase contract
/// (same pins, same EngineRegs programming model), so one factory covers
/// the library and regions can share a single EngineRegs block: an engine
/// that is not rm_active() ignores the start/reset pulses.
[[nodiscard]] std::unique_ptr<EngineBase> make_engine(
    EngineKind k, rtlsim::Scheduler& sch, const std::string& name,
    rtlsim::Signal<rtlsim::Logic>& clk, rtlsim::Signal<rtlsim::Logic>& rst,
    EngineRegs& regs);

}  // namespace autovision::rrm
