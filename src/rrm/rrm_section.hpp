// rrm: the versioned "rrm" checkpoint section — the per-region occupancy
// array multi-region checkpoints carry.
//
// The section is a decodable *summary* (tools/ckpt_inspect.py prints it);
// the full mutable state of the arbiter and manager travels in their own
// sections ("rrm_arb", "rrm_mgr") next to it. Single-region configurations
// write none of the three, so their checkpoints stay byte-identical to the
// pre-virtualization format.
//
// Layout (all big-endian, via SnapWriter):
//   u32 version (kRegionSectionVersion)
//   u32 region count
//   per region:
//     u8  region index
//     u8  resident engine kind (EngineKind; 0 = unconfigured)
//     u8  busy     (engine job in flight)
//     u8  isolated (isolation clamp asserted)
//     u64 swaps    (reconfiguration sessions submitted for the region)
//     u32 jobs     (jobs completed on the region)
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "engine_library.hpp"
#include "kernel/snapshot.hpp"

namespace autovision::rrm {

inline constexpr std::uint32_t kRegionSectionVersion = 1;

struct RegionSnapshot {
    std::uint8_t index = 0;
    EngineKind resident = EngineKind::kNone;
    bool busy = false;
    bool isolated = false;
    std::uint64_t swaps = 0;
    std::uint32_t jobs = 0;

    [[nodiscard]] bool operator==(const RegionSnapshot&) const = default;
};

inline void save_region_section(rtlsim::SnapWriter& w,
                                std::span<const RegionSnapshot> regions) {
    w.u32(kRegionSectionVersion);
    w.u32(static_cast<std::uint32_t>(regions.size()));
    for (const RegionSnapshot& r : regions) {
        w.u8(r.index);
        w.u8(static_cast<std::uint8_t>(r.resident));
        w.bool8(r.busy);
        w.bool8(r.isolated);
        w.u64(r.swaps);
        w.u32(r.jobs);
    }
}

/// Decode; returns false on version/shape mismatch. (The C++ side only
/// validates — restore rebuilds true state from rrm_arb/rrm_mgr — but the
/// decoder keeps the format honest under test.)
[[nodiscard]] inline bool load_region_section(
    rtlsim::SnapReader& r, std::vector<RegionSnapshot>& out) {
    if (r.u32() != kRegionSectionVersion) return false;
    const std::uint32_t n = r.u32();
    out.clear();
    for (std::uint32_t i = 0; i < n && r.ok_so_far(); ++i) {
        RegionSnapshot s;
        s.index = r.u8();
        s.resident = static_cast<EngineKind>(r.u8());
        s.busy = r.bool8();
        s.isolated = r.bool8();
        s.swaps = r.u64();
        s.jobs = r.u32();
        out.push_back(s);
    }
    return r.ok_so_far() && out.size() == n;
}

}  // namespace autovision::rrm
