// rrm: pluggable scheduling policies for time-shared regions.
//
// A policy turns a Workload — the set of engine requests the software stack
// queued against the region pool — into a deterministic, totally ordered
// swap schedule. Planning is a pure function so tests can assert the three
// documented policies produce *distinct* schedules from one seed and so the
// RegionManager can execute the plan without re-deciding anything at run
// time (the arbiter grant order equals the plan order).
//
//   * kRoundRobin — classic time-sharing: one request per region per turn,
//     regions visited in index order (Nguyen & Hoe style frame slicing);
//   * kDeadline  — earliest-deadline-first across the whole pool, ties
//     broken by (region, arrival) so the order stays total;
//   * kDemand    — demand paging: requests run in arrival order, and a
//     request whose engine is already resident in its region skips the
//     reconfiguration entirely (configure-on-first-request).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "engine_library.hpp"

namespace autovision::rrm {

enum class Policy : std::uint8_t { kRoundRobin, kDeadline, kDemand };

inline constexpr std::size_t kNumPolicies = 3;

[[nodiscard]] const char* to_string(Policy p);

/// One queued request: run `engine` on region `region` before `deadline`
/// (deadlines are abstract priorities — smaller is more urgent — only the
/// kDeadline policy reads them).
struct EngineRequest {
    unsigned region = 0;
    EngineKind engine = EngineKind::kNone;
    unsigned deadline = 0;

    [[nodiscard]] bool operator==(const EngineRequest&) const = default;
};

struct Workload {
    unsigned regions = 1;
    std::vector<EngineRequest> requests;
};

/// One entry of the executable schedule. `slot` is the global order index;
/// `reconfigure` is false when demand paging found the engine resident (the
/// manager then skips isolate/SimB/deisolate and goes straight to
/// programming).
struct PlannedSwap {
    unsigned slot = 0;
    unsigned region = 0;
    EngineKind engine = EngineKind::kNone;
    bool reconfigure = true;

    [[nodiscard]] bool operator==(const PlannedSwap&) const = default;
};

/// Plan a workload under a policy. Pure and total: same inputs, same plan;
/// every request appears exactly once.
[[nodiscard]] std::vector<PlannedSwap> plan_schedule(Policy p,
                                                     const Workload& w);

/// Compact, documented rendering of a plan — "r0.sobel! r1.census! r0.sobel"
/// — one token per slot, '!' marking an actual reconfiguration. Tests and
/// DESIGN.md section 14 pin policy distinctness on this string.
[[nodiscard]] std::string schedule_signature(
    const std::vector<PlannedSwap>& plan);

}  // namespace autovision::rrm
