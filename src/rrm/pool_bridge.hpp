// rrm: PoolBridge — the CPU-facing DCR window into the RegionManager's
// software-scheduled mode.
//
// With RegionManager::Config::software set, the policy planner never runs:
// the embedded firmware decides which engine each pool region runs next and
// pushes one job at a time through this bridge. The bridge sits on the
// *legacy* DCR chain (the one the CPU's mtdcr/mfdcr drive) — attached only
// when software scheduling is enabled, so the default ring length and
// transaction latency stay byte-identical for every existing configuration.
//
// Register map (word registers at kDcrPool + offset):
//   +0  CMD    (W) bits[3:0] manager region index, bits[7:4] EngineKind,
//               bit[8] reconfigure. Writing pushes the staged job.
//          (R) total CMD pushes accepted so far.
//   +1  STATUS (R) total jobs completed across all managed regions.
//   +2  SRC    (R/W) staged job source address
//   +3  SRC2   (R/W) staged second source (previous frame)
//   +4  DST    (R/W) staged destination address
//   +5  DIMS   (R/W) staged width<<16 | height
//   +6  PARAM  (R/W) staged engine parameter word
//
// The staging registers persist across pushes, so firmware programs the
// invariant fields (SRC/SRC2/DIMS) once and only rewrites DST/PARAM/CMD per
// job.
#pragma once

#include <string>

#include "bus/dcr.hpp"
#include "region_manager.hpp"

namespace autovision::rrm {

class PoolBridge final : public DcrSlaveIf {
public:
    enum Reg : std::uint32_t {
        kCmd = 0,
        kStatus = 1,
        kSrc = 2,
        kSrc2 = 3,
        kDst = 4,
        kDims = 5,
        kParam = 6,
        kNumRegs = 7,
    };

    PoolBridge(RegionManager& mgr, std::uint32_t dcr_base)
        : mgr_(mgr), base_(dcr_base) {}

    [[nodiscard]] bool dcr_claims(std::uint32_t regno) const override {
        return regno >= base_ && regno < base_ + kNumRegs;
    }

    [[nodiscard]] rtlsim::Word dcr_read(std::uint32_t regno) override {
        switch (regno - base_) {
            case kCmd: return rtlsim::Word{pushes_};
            case kStatus: {
                std::uint32_t total = 0;
                for (unsigned r = 0; r < mgr_.num_regions(); ++r) {
                    total += mgr_.jobs_done(r);
                }
                return rtlsim::Word{total};
            }
            case kSrc: return rtlsim::Word{src_};
            case kSrc2: return rtlsim::Word{src2_};
            case kDst: return rtlsim::Word{dst_};
            case kDims: return rtlsim::Word{dims_};
            case kParam: return rtlsim::Word{param_};
            default: return rtlsim::Word{0};
        }
    }

    void dcr_write(std::uint32_t regno, rtlsim::Word w) override {
        if (!w.is_fully_defined()) {
            ++x_writes_;  // X never reaches the manager
            return;
        }
        const auto v = static_cast<std::uint32_t>(w.to_u64());
        switch (regno - base_) {
            case kSrc: src_ = v; return;
            case kSrc2: src2_ = v; return;
            case kDst: dst_ = v; return;
            case kDims: dims_ = v; return;
            case kParam: param_ = v; return;
            case kCmd: {
                RegionJob job;
                job.engine = static_cast<EngineKind>((v >> 4) & 0xF);
                job.src = src_;
                job.src2 = src2_;
                job.dst = dst_;
                job.width = static_cast<std::uint16_t>(dims_ >> 16);
                job.height = static_cast<std::uint16_t>(dims_ & 0xFFFF);
                job.param = param_;
                mgr_.push_software(v & 0xF, job, (v & 0x100) != 0);
                ++pushes_;
                return;
            }
            default: return;
        }
    }

    [[nodiscard]] std::string dcr_name() const override {
        return "pool_bridge";
    }

    [[nodiscard]] std::uint32_t pushes() const { return pushes_; }
    [[nodiscard]] std::uint64_t x_writes() const { return x_writes_; }

    // --- checkpoint ------------------------------------------------------
    /// Staging registers + push counter, so a snapshot taken between a
    /// staging write and the CMD write replays the push faithfully.
    void ckpt_save(rtlsim::SnapWriter& w) const {
        w.u32(src_);
        w.u32(src2_);
        w.u32(dst_);
        w.u32(dims_);
        w.u32(param_);
        w.u32(pushes_);
        w.u64(x_writes_);
    }
    [[nodiscard]] bool ckpt_restore(rtlsim::SnapReader& r) {
        src_ = r.u32();
        src2_ = r.u32();
        dst_ = r.u32();
        dims_ = r.u32();
        param_ = r.u32();
        pushes_ = r.u32();
        x_writes_ = r.u64();
        return r.ok_so_far();
    }

private:
    RegionManager& mgr_;
    std::uint32_t base_;
    std::uint32_t src_ = 0;
    std::uint32_t src2_ = 0;
    std::uint32_t dst_ = 0;
    std::uint32_t dims_ = 0;
    std::uint32_t param_ = 0;
    std::uint32_t pushes_ = 0;
    std::uint64_t x_writes_ = 0;
};

}  // namespace autovision::rrm
