#include "policy.hpp"

#include <algorithm>

namespace autovision::rrm {

const char* to_string(Policy p) {
    switch (p) {
        case Policy::kRoundRobin: return "rr";
        case Policy::kDeadline: return "deadline";
        case Policy::kDemand: return "demand";
    }
    return "?";
}

namespace {

/// Stamp slots and demand-paging residency over an already-ordered request
/// list. Residency tracking is shared by all policies: a swap to the
/// already-resident engine is a no-op reconfiguration under demand paging
/// only — the time-sharing policies still reconfigure (the region was
/// handed to another tenant in between, conceptually).
std::vector<PlannedSwap> finalize(const std::vector<EngineRequest>& ordered,
                                  unsigned regions, bool demand_paged) {
    std::vector<EngineKind> resident(std::max(1u, regions),
                                     EngineKind::kNone);
    std::vector<PlannedSwap> plan;
    plan.reserve(ordered.size());
    for (const EngineRequest& req : ordered) {
        PlannedSwap s;
        s.slot = static_cast<unsigned>(plan.size());
        s.region = req.region;
        s.engine = req.engine;
        const unsigned r = std::min(req.region, regions - 1);
        s.reconfigure = !demand_paged || resident[r] != req.engine;
        resident[r] = req.engine;
        plan.push_back(s);
    }
    return plan;
}

}  // namespace

std::vector<PlannedSwap> plan_schedule(Policy p, const Workload& w) {
    if (w.requests.empty() || w.regions == 0) return {};

    std::vector<EngineRequest> ordered;
    ordered.reserve(w.requests.size());

    switch (p) {
        case Policy::kRoundRobin: {
            // One request per region per turn, regions in index order.
            // Per-region queues keep each region's own arrival order.
            std::vector<std::vector<EngineRequest>> queues(w.regions);
            for (const EngineRequest& req : w.requests) {
                queues[std::min(req.region, w.regions - 1)].push_back(req);
            }
            std::vector<std::size_t> next(w.regions, 0);
            while (ordered.size() < w.requests.size()) {
                for (unsigned r = 0; r < w.regions; ++r) {
                    if (next[r] < queues[r].size()) {
                        ordered.push_back(queues[r][next[r]++]);
                    }
                }
            }
            break;
        }
        case Policy::kDeadline: {
            // Earliest-deadline-first; stable ties on (region, arrival).
            std::vector<std::pair<EngineRequest, std::size_t>> keyed;
            keyed.reserve(w.requests.size());
            for (std::size_t i = 0; i < w.requests.size(); ++i) {
                keyed.emplace_back(w.requests[i], i);
            }
            std::sort(keyed.begin(), keyed.end(),
                      [](const auto& a, const auto& b) {
                          if (a.first.deadline != b.first.deadline) {
                              return a.first.deadline < b.first.deadline;
                          }
                          if (a.first.region != b.first.region) {
                              return a.first.region < b.first.region;
                          }
                          return a.second < b.second;
                      });
            for (const auto& [req, idx] : keyed) ordered.push_back(req);
            break;
        }
        case Policy::kDemand:
            ordered = w.requests;  // arrival order; paging handled below
            break;
    }

    return finalize(ordered, w.regions, p == Policy::kDemand);
}

std::string schedule_signature(const std::vector<PlannedSwap>& plan) {
    std::string sig;
    for (const PlannedSwap& s : plan) {
        if (!sig.empty()) sig += ' ';
        sig += 'r';
        sig += std::to_string(s.region);
        sig += '.';
        sig += to_string(s.engine);
        if (s.reconfigure) sig += '!';
    }
    return sig;
}

}  // namespace autovision::rrm
