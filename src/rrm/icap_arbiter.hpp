// rrm: ICAP arbiter — serializes partial-bitstream traffic from N regions
// onto the single configuration port.
//
// The FPGA has exactly one ICAP; a virtualized region pool therefore needs
// an arbiter in front of it. Sessions (whole SimBs) are the grant unit —
// a SimB interleaved with another stream is malformed by construction, so
// the arbiter never splits one. Two grant disciplines:
//
//   * kFair     — round-robin rotation over regions with queued sessions
//                 (no region starves; the fairness test pins this);
//   * kPriority — lowest priority value wins, ties to the lowest region
//                 index (deadline-driven schedules map urgency here).
//
// Granted words are paced onto the downstream IcapPortIf one word per
// `word_gap` clock cycles, mirroring the IcapCTRL transfer cadence. An
// external passthrough port lets the legacy CPU-driven IcapCTRL coexist:
// its words forward immediately while the arbiter is idle (a SYNC/DESYNC
// sniffer marks the external session so no manager grant interleaves), and
// are buffered until the active manager session drains otherwise.
#pragma once

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "kernel/kernel.hpp"
#include "obs/recorder.hpp"
#include "recon/icap_port.hpp"
#include "resim/simb.hpp"

namespace autovision::rrm {

class IcapArbiter final : public rtlsim::Module {
public:
    enum class Grant : std::uint8_t { kFair, kPriority };

    struct RegionStats {
        std::uint64_t sessions = 0;     ///< sessions granted and drained
        std::uint64_t words = 0;        ///< words forwarded to the ICAP
        std::uint64_t wait_cycles = 0;  ///< total submit-to-grant wait
        std::uint64_t max_wait = 0;     ///< worst single-session wait
    };

    IcapArbiter(rtlsim::Scheduler& sch, const std::string& name,
                rtlsim::Signal<rtlsim::Logic>& clk,
                rtlsim::Signal<rtlsim::Logic>& rst, IcapPortIf& sink,
                unsigned num_regions, Grant grant = Grant::kFair);

    /// Queue a whole SimB session for `region`. `word_gap` >= 1 is the
    /// pacing in clock cycles per word; `priority` matters only under
    /// kPriority grants (smaller = more urgent).
    void submit(unsigned region, std::vector<std::uint32_t> words,
                unsigned word_gap = 1, unsigned priority = 0);

    /// Sessions queued or draining for `region` (0 = region's traffic done).
    [[nodiscard]] unsigned outstanding(unsigned region) const;
    /// Any session queued or draining, or external words buffered.
    [[nodiscard]] bool busy() const;

    [[nodiscard]] Grant grant_policy() const { return grant_; }
    [[nodiscard]] unsigned num_regions() const {
        return static_cast<unsigned>(stats_.size());
    }
    [[nodiscard]] const RegionStats& stats(unsigned region) const {
        return stats_[region];
    }

    /// The passthrough port for the legacy IcapCTRL datapath.
    [[nodiscard]] IcapPortIf& external_port() { return ext_port_; }

    /// Attach (or detach, with nullptr) the structured event recorder.
    void set_observer(obs::EventRecorder* rec) { obs_ = rec; }

    // --- checkpoint ------------------------------------------------------
    void ckpt_save(rtlsim::SnapWriter& w) const;
    [[nodiscard]] bool ckpt_restore(rtlsim::SnapReader& r);

private:
    struct Session {
        std::uint32_t region = 0;
        std::uint32_t gap = 1;
        std::uint32_t priority = 0;
        std::uint64_t submit_cycle = 0;
        std::uint32_t next_word = 0;  ///< forwarding cursor
        std::vector<std::uint32_t> words;
    };

    /// The external IcapCTRL face of the arbiter.
    struct ExtPort final : public IcapPortIf {
        explicit ExtPort(IcapArbiter& a) : arb(a) {}
        void icap_write(rtlsim::Word w) override { arb.external_write(w); }
        IcapArbiter& arb;
    };

    void on_clock();
    void external_write(rtlsim::Word w);
    [[nodiscard]] int pick_next() const;  ///< queue index to grant, or -1

    void note(obs::EventKind k, std::uint8_t region, std::uint32_t a = 0,
              std::uint64_t b = 0) {
        if (obs_ != nullptr) {
            obs_->record(sch_.now(), k, obs::Source::kArbiter, a, b, region);
        }
    }

    rtlsim::Signal<rtlsim::Logic>& rst_;
    IcapPortIf& sink_;
    ExtPort ext_port_{*this};
    obs::EventRecorder* obs_ = nullptr;
    Grant grant_;

    std::deque<Session> queue_;      ///< pending sessions, submit order
    bool active_ = false;
    Session active_session_;
    std::uint32_t gap_left_ = 0;
    std::uint32_t rotation_ = 0;     ///< kFair cursor: next region to favour
    std::uint64_t cycle_ = 0;        ///< clock count (wait accounting)

    bool ext_in_session_ = false;    ///< SYNC seen, DESYNC not yet
    bool ext_cmd_pending_ = false;   ///< CMD header seen, value word next
    std::deque<std::uint64_t> ext_buf_;  ///< words held while a grant drains
                                         ///< (val<<32 | unk planes)
    std::vector<RegionStats> stats_;
};

}  // namespace autovision::rrm
