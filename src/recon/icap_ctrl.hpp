// IcapCTRL — the reconfiguration controller.
//
// A DCR-programmed DMA master that fetches a bitstream from main memory
// over the PLB and streams it into the ICAP port through a small FIFO at
// the configuration-clock rate. This is the block whose re-integration the
// case study verifies; its parameters encode the Table III bugs:
//
//   * `p2p_mode` — the original IP drove a dedicated NPI link and issued
//     the whole transfer as one burst. On a shared PLB with a bounded burst
//     length the transfer silently truncates (bug.dpr.4). The fixed IP
//     splits into bus-sized bursts with FIFO backpressure.
//   * `size_in_bytes` — the fixed IP counts the SIZE register in bytes; the
//     original counted words. A driver not updated for the change transfers
//     a quarter of the bitstream (bug.dpr.5).
//   * `clk_div` — the modified clocking scheme writes ICAP once every
//     `clk_div` bus cycles. Software that waits a fixed delay tuned for the
//     original faster configuration clock resets the engines before the
//     transfer completes (bug.dpr.6b).
#pragma once

#include <cstdint>
#include <deque>
#include <string>

#include "bus/dcr.hpp"
#include "bus/plb.hpp"
#include "icap_port.hpp"
#include "kernel/kernel.hpp"

namespace autovision {

class IcapCtrl final : public rtlsim::Module, public DcrSlaveIf {
public:
    /// DCR register offsets from `dcr_base`.
    enum Reg : std::uint32_t {
        kCtrl = 0,    ///< bit0: start (self-clearing), bit1: abort
        kStatus = 1,  ///< bit0: busy, bit1: done (W1C), bit2: error
        kAddr = 2,    ///< bitstream byte address in memory
        kSize = 3,    ///< transfer size (unit per `size_in_bytes`)
        kCount = 4,
    };

    struct Config {
        std::uint32_t dcr_base = 0x50;
        bool size_in_bytes = true;  ///< false = original word-count IP
        bool p2p_mode = false;      ///< true = original point-to-point IP
        unsigned burst_words = 16;  ///< per-burst beats in shared mode
        unsigned fifo_depth = 32;
        unsigned clk_div = 4;       ///< ICAP write every clk_div cycles
    };

    IcapCtrl(rtlsim::Scheduler& sch, const std::string& name,
             rtlsim::Signal<rtlsim::Logic>& clk,
             rtlsim::Signal<rtlsim::Logic>& rst, PlbMasterPort& port,
             IcapPortIf& icap, Config cfg);

    /// One-cycle pulse when the full transfer has reached the ICAP.
    rtlsim::Signal<rtlsim::Logic> done_irq;

    [[nodiscard]] bool busy() const { return busy_; }
    [[nodiscard]] std::uint64_t words_to_icap() const { return drained_; }
    [[nodiscard]] std::uint64_t fifo_overflows() const { return overflows_; }
    [[nodiscard]] const Config& config() const { return cfg_; }

    // --- DcrSlaveIf -------------------------------------------------------
    [[nodiscard]] bool dcr_claims(std::uint32_t regno) const override {
        return regno >= cfg_.dcr_base && regno < cfg_.dcr_base + kCount;
    }
    [[nodiscard]] rtlsim::Word dcr_read(std::uint32_t regno) override;
    void dcr_write(std::uint32_t regno, rtlsim::Word w) override;
    [[nodiscard]] std::string dcr_name() const override { return full_name(); }

    // --- checkpoint ------------------------------------------------------
    void ckpt_save(rtlsim::SnapWriter& w) const;
    [[nodiscard]] bool ckpt_restore(rtlsim::SnapReader& r);

private:
    void on_clock();
    void start_transfer();
    void maybe_issue_burst();
    void fifo_push(rtlsim::Word w);
    void finish_burst();

    Config cfg_;
    rtlsim::Signal<rtlsim::Logic>& rst_;
    DmaMaster dma_;
    IcapPortIf& icap_;

    std::uint32_t addr_reg_ = 0;
    std::uint32_t size_reg_ = 0;
    bool pend_start_ = false;
    bool pend_abort_ = false;

    bool busy_ = false;
    bool done_ = false;
    bool error_ = false;
    std::uint32_t total_words_ = 0;
    std::uint32_t fetch_addr_ = 0;
    std::uint32_t fetched_ = 0;
    std::uint32_t inflight_burst_ = 0;  ///< beats of the open DMA burst
    std::uint64_t drained_ = 0;
    std::uint32_t drained_this_xfer_ = 0;
    unsigned div_cnt_ = 0;
    std::deque<rtlsim::Word> fifo_;
    std::uint64_t overflows_ = 0;
    unsigned overflow_reports_ = 0;
};

}  // namespace autovision
