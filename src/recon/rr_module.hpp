// Interface of a reconfigurable (swappable) module.
//
// The Extended Portal (ReSim) and the Engine_Wrapper (Virtual Multiplexing)
// both manage a set of modules mapped to one reconfigurable region and
// connect exactly one of them at a time (a multi-region system elaborates
// one such manager per region). Activation corresponds to the end
// of bitstream configuration: the module comes up in its post-configuration
// initial state (all state reset), never with leftovers from its previous
// residency.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace autovision {

class RrModuleIf {
public:
    virtual ~RrModuleIf() = default;

    /// Swap in: connect to the region's boundary and reset to the
    /// post-configuration initial state.
    virtual void rm_activate() = 0;

    /// Swap out: disconnect from the boundary; the module must stop driving
    /// its pins.
    virtual void rm_deactivate() = 0;

    [[nodiscard]] virtual bool rm_active() const = 0;

    // --- state saving/restoration (GCAPTURE / GRESTORE) ------------------
    /// Serialize the module's architectural state, as a configuration
    /// readback would. Returns empty when the module cannot be captured
    /// (default: stateless; engines refuse while a bus transaction is in
    /// flight — the quiescence design rule).
    [[nodiscard]] virtual std::vector<std::uint8_t> rm_save_state() {
        return {};
    }

    /// Reinstate previously captured state; returns false when the image
    /// does not match the module (a verification failure, not a crash).
    [[nodiscard]] virtual bool rm_restore_state(
        std::span<const std::uint8_t> state) {
        (void)state;
        return false;
    }
};

}  // namespace autovision
