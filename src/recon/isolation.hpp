// Isolation module — gates the reconfigurable region's outputs while the
// region is being reconfigured.
//
// The software driver enables isolation (via DCR) before starting a
// bitstream transfer and releases it afterwards. With isolation enabled the
// boundary drives safe idle levels, so the X injected by the error injector
// never reaches the static region. Forgetting to enable it (bug.dpr.1) lets
// X escape onto the PLB and the interrupt lines — which only ReSim-style
// simulation can show, since Virtual Multiplexing never generates errors.
#pragma once

#include <string>

#include "bus/dcr.hpp"
#include "kernel/kernel.hpp"
#include "obs/recorder.hpp"

namespace autovision {

class Isolation final : public rtlsim::Module, public DcrSlaveIf {
public:
    /// DCR register 0 at `dcr_base`: bit0 = isolate.
    Isolation(rtlsim::Scheduler& sch, const std::string& name,
              std::uint32_t dcr_base)
        : Module(sch, name),
          isolate(sch, full_name() + ".isolate", rtlsim::Logic::L0),
          base_(dcr_base) {}

    rtlsim::Signal<rtlsim::Logic> isolate;

    [[nodiscard]] bool dcr_claims(std::uint32_t regno) const override {
        return regno == base_;
    }
    [[nodiscard]] rtlsim::Word dcr_read(std::uint32_t) override {
        return rtlsim::Word{rtlsim::is1(isolate.read()) ? 1u : 0u};
    }
    void dcr_write(std::uint32_t, rtlsim::Word w) override {
        if (!w.is_fully_defined()) {
            report("X written to isolation control");
            return;
        }
        const bool on = (w.to_u64() & 1u) != 0;
        if (obs_ != nullptr && on != rtlsim::is1(isolate.read())) {
            obs_->record(sch_.now(),
                         on ? obs::EventKind::kIsolationOn
                            : obs::EventKind::kIsolationOff,
                         obs::Source::kIsolation, 0, 0, region_);
        }
        isolate.write(on ? rtlsim::Logic::L1 : rtlsim::Logic::L0);
        ++writes_;
    }
    [[nodiscard]] std::string dcr_name() const override { return full_name(); }

    /// Number of software accesses — zero means the isolation driver was
    /// never exercised (what VM-based simulation cannot test).
    [[nodiscard]] std::uint64_t writes() const { return writes_; }

    /// Attach (or detach, with nullptr) the structured event recorder.
    void set_observer(obs::EventRecorder* rec) { obs_ = rec; }

    /// Region index stamped on recorded events (default 0 keeps
    /// single-region traces unchanged).
    void set_region(std::uint8_t r) { region_ = r; }

    // --- checkpoint ------------------------------------------------------
    /// Only the access counter; the isolate signal itself comes back
    /// through the scheduler's signal registry.
    void ckpt_save(rtlsim::SnapWriter& w) const { w.u64(writes_); }
    [[nodiscard]] bool ckpt_restore(rtlsim::SnapReader& r) {
        writes_ = r.u64();
        return r.ok_so_far();
    }

private:
    obs::EventRecorder* obs_ = nullptr;
    std::uint32_t base_;
    std::uint8_t region_ = 0;
    std::uint64_t writes_ = 0;
};

}  // namespace autovision
