#include "rr_boundary.hpp"

namespace autovision {

using rtlsim::Edge;
using rtlsim::is1;

RrBoundary::RrBoundary(rtlsim::Scheduler& sch, const std::string& name,
                       PlbMasterPort& bus_port,
                       rtlsim::Signal<Logic>& done_to_intc)
    : Module(sch, name),
      stream_tap(sch, full_name() + ".stream_tap", LVec<8>{0}),
      bus_(bus_port),
      done_out_(done_to_intc),
      sel_(sch, full_name() + ".sel", -1),
      recfg_(sch, full_name() + ".reconfiguring", Logic::L0),
      injector_(std::make_unique<ErrorInjector>()) {
    mux_ = &comb_proc("mux", [this] { forward(); },
                      {rtlsim::anyedge(sel_), rtlsim::anyedge(recfg_)});
    comb_proc("rsp", [this] { reverse(); },
              {rtlsim::anyedge(bus_.grant), rtlsim::anyedge(bus_.rd_ack),
               rtlsim::anyedge(bus_.rdata), rtlsim::anyedge(bus_.wr_ack),
               rtlsim::anyedge(bus_.done), rtlsim::anyedge(bus_.err)});
}

void RrBoundary::add_module(EngineBase& m) {
    mods_.push_back(&m);
    // The mux re-evaluates whenever the module's boundary outputs toggle.
    m.pins.req.add_listener(*mux_, Edge::Any);
    m.pins.rnw.add_listener(*mux_, Edge::Any);
    m.pins.addr.add_listener(*mux_, Edge::Any);
    m.pins.nbeats.add_listener(*mux_, Edge::Any);
    m.pins.wdata.add_listener(*mux_, Edge::Any);
    m.done_irq.add_listener(*mux_, Edge::Any);
    m.stream_out.add_listener(*mux_, Edge::Any);
}

void RrBoundary::select(int idx) {
    // Bookkeeping uses a plain member: back-to-back swaps may happen with
    // no delta cycle in between (e.g. consecutive DCR writes), so the
    // signal's committed value can lag the architectural selection.
    if (cur_slot_ >= 0 && cur_slot_ < static_cast<int>(mods_.size())) {
        mods_[static_cast<unsigned>(cur_slot_)]->rm_deactivate();
    }
    cur_slot_ = idx;
    if (idx >= 0 && idx < static_cast<int>(mods_.size())) {
        mods_[static_cast<unsigned>(idx)]->rm_activate();
    }
    sel_.write(idx);
    note(obs::EventKind::kSelect, static_cast<std::uint32_t>(idx));
}

void RrBoundary::set_reconfiguring(bool on) {
    if (on != recfg_flag_) {
        note(on ? obs::EventKind::kXWindowBegin : obs::EventKind::kXWindowEnd);
    }
    recfg_flag_ = on;
    recfg_.write(on ? Logic::L1 : Logic::L0);
}

void RrBoundary::forward() {
    RrOutputs o;
    LVec<8> tap{0};
    if (is1(recfg_.read())) {
        injector_->inject(o);
        tap = LVec<8>::all_x();
    } else {
        const int s = cur_slot_;
        if (s >= 0 && s < static_cast<int>(mods_.size())) {
            const EngineBase& e = *mods_[static_cast<unsigned>(s)];
            o.req = e.pins.req.read();
            o.rnw = e.pins.rnw.read();
            o.addr = e.pins.addr.read();
            o.nbeats = e.pins.nbeats.read();
            o.wdata = e.pins.wdata.read();
            o.done_irq = e.done_irq.read();
            tap = e.stream_out.read();
        } else {
            // No module selected: an unconfigured region floats (X) under
            // ReSim; a VM wrapper's mis-steered 2-state mux idles. The VM
            // false-alarm bug.hw.2 manifests here as a silent hang.
            o = (unsel_ == UnselectedPolicy::kAllX) ? RrOutputs::all_x()
                                                    : RrOutputs::idle();
        }
    }
    if (iso_ != nullptr && is1(iso_->read())) o = RrOutputs::idle();

    bus_.req.write(o.req);
    bus_.rnw.write(o.rnw);
    bus_.addr.write(o.addr);
    bus_.nbeats.write(o.nbeats);
    bus_.wdata.write(o.wdata);
    done_out_.write(o.done_irq);
    stream_tap.write(tap);
}

void RrBoundary::reverse() {
    for (EngineBase* m : mods_) {
        m->pins.grant.write(bus_.grant.read());
        m->pins.rd_ack.write(bus_.rd_ack.read());
        m->pins.rdata.write(bus_.rdata.read());
        m->pins.wr_ack.write(bus_.wr_ack.read());
        m->pins.done.write(bus_.done.read());
        m->pins.err.write(bus_.err.read());
    }
}

}  // namespace autovision
