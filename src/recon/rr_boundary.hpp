// Reconfigurable-region boundary: the multiplexer between the engines'
// pins and the static region, plus the error-injection and isolation hooks.
//
// Both simulation methods build on this block:
//   * Virtual Multiplexing drives `select` from the engine_signature
//     register and never asserts `reconfiguring` (zero-delay swap, no
//     errors, isolation untested);
//   * ReSim's Extended Portal drives `select`/`reconfiguring` from the SimB
//     stream parsed by the ICAP artifact, so swaps happen at bitstream
//     granularity and the region outputs X while configuration is in
//     flight.
//
// The forwarding process here is the "Engine_Wrapper multiplexer" whose
// simulation overhead the paper measures at 1.4% — it is named "mux" so the
// profiler can attribute time to it (experiment E3).
#pragma once

#include <memory>
#include <vector>

#include "bus/plb.hpp"
#include "engines/engine.hpp"
#include "kernel/kernel.hpp"
#include "obs/recorder.hpp"

namespace autovision {

using rtlsim::Logic;
using rtlsim::LVec;
using rtlsim::Word;

/// The master-to-static half of the region boundary.
struct RrOutputs {
    Logic req = Logic::L0;
    Logic rnw = Logic::L1;
    Word addr{0};
    LVec<16> nbeats{1};
    Word wdata{0};
    Logic done_irq = Logic::L0;

    /// All outputs unknown — what an unconfigured or mid-configuration
    /// region drives.
    static RrOutputs all_x() {
        RrOutputs o;
        o.req = Logic::X;
        o.rnw = Logic::X;
        o.addr = Word::all_x();
        o.nbeats = LVec<16>::all_x();
        o.wdata = Word::all_x();
        o.done_irq = Logic::X;
        return o;
    }

    /// Safe idle levels — what the isolation module clamps to.
    static RrOutputs idle() { return RrOutputs{}; }
};

/// Error source active while a region reconfigures. The default injects X
/// on every boundary output (the behaviour of ReSim and of DCS-style X
/// injection); override for design- or test-specific error models, e.g.
/// stuck-at garbage or last-value hold.
class ErrorInjector {
public:
    virtual ~ErrorInjector() = default;
    virtual void inject(RrOutputs& o) { o = RrOutputs::all_x(); }
    [[nodiscard]] virtual const char* name() const { return "inject-x"; }

    /// Checkpoint hooks: injectors carrying live state (a PRNG stream
    /// position, held output values) serialize it here so a restored run
    /// replays the identical error pattern; the stateless default writes
    /// nothing.
    virtual void ckpt_save(rtlsim::SnapWriter&) const {}
    [[nodiscard]] virtual bool ckpt_restore(rtlsim::SnapReader&) {
        return true;
    }
};

class RrBoundary final : public rtlsim::Module {
public:
    /// `bus_port` is the PLB master port owned by the bus for this region;
    /// `done_to_intc` is the interrupt line leaving the region.
    RrBoundary(rtlsim::Scheduler& sch, const std::string& name,
               PlbMasterPort& bus_port, rtlsim::Signal<Logic>& done_to_intc);

    /// Debug/monitor tap leaving the region: the active module's streaming
    /// datapath output, forwarded through the mux. Because the mux
    /// re-evaluates on every engine-IO toggle, a streaming engine (CIE)
    /// exercises it every pixel — the paper's "triggered whenever the
    /// engine IOs toggled" cost source.
    rtlsim::Signal<LVec<8>> stream_tap;

    /// Register a module; slot order defines module indices. Modules start
    /// deactivated — exactly one must be activated (by the portal's initial
    /// configuration or the wrapper's reset) before the region drives
    /// defined values.
    void add_module(EngineBase& m);

    [[nodiscard]] unsigned num_modules() const {
        return static_cast<unsigned>(mods_.size());
    }
    [[nodiscard]] EngineBase& module(unsigned i) { return *mods_[i]; }

    /// What the boundary drives when no module is selected. ReSim models an
    /// unconfigured region faithfully (X); a Virtual-Multiplexing wrapper
    /// has all modules instantiated and merely mis-steers a 2-state mux, so
    /// it drives idle levels — which is precisely why VM cannot produce the
    /// erroneous outputs a real reconfiguration produces.
    enum class UnselectedPolicy { kAllX, kIdle };
    void set_unselected_policy(UnselectedPolicy p) { unsel_ = p; }

    /// Swap: deactivate the current module and activate slot `idx`
    /// (post-configuration initial state). -1 leaves the region empty.
    void select(int idx);
    [[nodiscard]] int selected() const { return cur_slot_; }

    /// Error injection window (the DURING-reconfiguration phase).
    void set_reconfiguring(bool on);
    [[nodiscard]] bool reconfiguring() const { return recfg_flag_; }
    /// Stable address of the reconfiguring flag for EngineRegs corruption
    /// coupling (bug.dpr.2 placement).
    [[nodiscard]] const bool* reconfiguring_flag() const { return &recfg_flag_; }

    /// Replace the error source (ReSim's OOP override point).
    void set_error_injector(std::unique_ptr<ErrorInjector> inj) {
        injector_ = std::move(inj);
    }
    [[nodiscard]] const ErrorInjector& error_injector() const {
        return *injector_;
    }

    /// Isolation control input: when high, boundary outputs are clamped to
    /// safe idle levels regardless of region state. Not calling this models
    /// a design without an isolation module.
    void set_isolation_signal(rtlsim::Signal<Logic>& iso) {
        iso_ = &iso;
        iso.add_listener(*mux_, rtlsim::Edge::Any);
    }

    /// The forwarding ("mux") and reverse-broadcast processes, exposed for
    /// the overhead profiler.
    [[nodiscard]] const rtlsim::Process& mux_process() const { return *mux_; }

    /// Attach (or detach, with nullptr) the structured event recorder.
    void set_observer(obs::EventRecorder* rec) { obs_ = rec; }

    /// Region index stamped on recorded events (multi-region systems tag
    /// each boundary; the default 0 keeps single-region traces unchanged).
    void set_region(std::uint8_t r) { region_ = r; }
    [[nodiscard]] std::uint8_t region() const { return region_; }

    // --- checkpoint ------------------------------------------------------
    /// Slot bookkeeping + injection window + injector-private state. The
    /// mux trigger signal and stream tap come back through the scheduler's
    /// signal registry; engine residency is restored by the engines.
    void ckpt_save(rtlsim::SnapWriter& w) const {
        w.i32(cur_slot_);
        w.bool8(recfg_flag_);
        injector_->ckpt_save(w);
    }
    [[nodiscard]] bool ckpt_restore(rtlsim::SnapReader& r) {
        cur_slot_ = r.i32();
        recfg_flag_ = r.bool8();
        if (!injector_->ckpt_restore(r)) return false;
        return r.ok_so_far() &&
               cur_slot_ >= -1 && cur_slot_ < static_cast<int>(mods_.size());
    }

private:
    void forward();
    void reverse();

    /// Event-recorder shorthand (no-op while unobserved).
    void note(obs::EventKind k, std::uint32_t a = 0, std::uint64_t b = 0) {
        if (obs_ != nullptr) {
            obs_->record(sch_.now(), k, obs::Source::kRrBoundary, a, b,
                         region_);
        }
    }

    obs::EventRecorder* obs_ = nullptr;
    std::uint8_t region_ = 0;

    PlbMasterPort& bus_;
    rtlsim::Signal<Logic>& done_out_;
    std::vector<EngineBase*> mods_;
    rtlsim::Signal<int> sel_;  ///< mux trigger; bookkeeping uses cur_slot_
    int cur_slot_ = -1;
    rtlsim::Signal<Logic> recfg_;
    UnselectedPolicy unsel_ = UnselectedPolicy::kAllX;
    bool recfg_flag_ = false;
    const rtlsim::Signal<Logic>* iso_ = nullptr;
    std::unique_ptr<ErrorInjector> injector_;
    rtlsim::Process* mux_ = nullptr;
};

}  // namespace autovision
