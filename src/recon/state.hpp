// Module state serialization for save/restore through the configuration
// port (the ReSim companion work, Gong & Diessel FPGA'12: "Functionally
// Verifying State Saving and Restoration in Dynamically Reconfigurable
// Systems").
//
// A module's architectural state is captured into a flat byte image (what a
// configuration readback would return) and later written back. The format
// is module-private; the portal only stores and replays the bytes.
#pragma once

#include <cstdint>
#include <cstring>
#include <span>
#include <vector>

namespace autovision {

class StateWriter {
public:
    void u8(std::uint8_t v) { buf_.push_back(v); }
    void u32(std::uint32_t v) {
        buf_.push_back(static_cast<std::uint8_t>(v >> 24));
        buf_.push_back(static_cast<std::uint8_t>(v >> 16));
        buf_.push_back(static_cast<std::uint8_t>(v >> 8));
        buf_.push_back(static_cast<std::uint8_t>(v));
    }
    void i32(std::int32_t v) { u32(static_cast<std::uint32_t>(v)); }
    void bool8(bool b) { u8(b ? 1 : 0); }
    void bytes(std::span<const std::uint8_t> s) {
        u32(static_cast<std::uint32_t>(s.size()));
        buf_.insert(buf_.end(), s.begin(), s.end());
    }
    void words(std::span<const std::uint32_t> s) {
        u32(static_cast<std::uint32_t>(s.size()));
        for (std::uint32_t w : s) u32(w);
    }

    [[nodiscard]] std::vector<std::uint8_t> take() { return std::move(buf_); }

private:
    std::vector<std::uint8_t> buf_;
};

class StateReader {
public:
    explicit StateReader(std::span<const std::uint8_t> s) : s_(s) {}

    std::uint8_t u8() {
        if (pos_ >= s_.size()) {
            ok_ = false;
            return 0;
        }
        return s_[pos_++];
    }
    std::uint32_t u32() {
        std::uint32_t v = 0;
        for (int i = 0; i < 4; ++i) v = (v << 8) | u8();
        return v;
    }
    std::int32_t i32() { return static_cast<std::int32_t>(u32()); }
    bool bool8() { return u8() != 0; }
    std::vector<std::uint8_t> bytes() {
        const std::uint32_t n = u32();
        std::vector<std::uint8_t> out;
        if (pos_ + n > s_.size()) {
            ok_ = false;
            return out;
        }
        out.assign(s_.begin() + static_cast<std::ptrdiff_t>(pos_),
                   s_.begin() + static_cast<std::ptrdiff_t>(pos_ + n));
        pos_ += n;
        return out;
    }
    std::vector<std::uint32_t> words() {
        const std::uint32_t n = u32();
        std::vector<std::uint32_t> out;
        out.reserve(n);
        for (std::uint32_t i = 0; i < n && ok_; ++i) out.push_back(u32());
        return out;
    }

    /// False when any read overran the image (corrupt/mismatched state).
    [[nodiscard]] bool ok() const { return ok_ && pos_ == s_.size(); }
    [[nodiscard]] bool ok_so_far() const { return ok_; }

private:
    std::span<const std::uint8_t> s_;
    std::size_t pos_ = 0;
    bool ok_ = true;
};

}  // namespace autovision
