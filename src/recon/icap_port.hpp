// ICAP port interface.
//
// The reconfiguration controller streams (simulation-only) bitstream words
// into whatever implements this interface: ReSim's ICAP artifact in
// ReSim-based simulation, or a null sink in Virtual Multiplexing — where,
// as the paper notes, "the ICAPCTRL module is instantiated in the design
// but is not used in simulation".
#pragma once

#include <cstdint>

#include "kernel/lvec.hpp"

namespace autovision {

class IcapPortIf {
public:
    virtual ~IcapPortIf() = default;
    virtual void icap_write(rtlsim::Word w) = 0;
};

/// Swallows bitstream words (the VM configuration).
class NullIcap final : public IcapPortIf {
public:
    void icap_write(rtlsim::Word) override { ++words_; }
    [[nodiscard]] std::uint64_t words() const { return words_; }

private:
    std::uint64_t words_ = 0;
};

}  // namespace autovision
