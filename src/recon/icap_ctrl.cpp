#include "icap_ctrl.hpp"

#include <algorithm>

namespace autovision {

using rtlsim::Logic;
using rtlsim::Word;
using rtlsim::is1;

IcapCtrl::IcapCtrl(rtlsim::Scheduler& sch, const std::string& name,
                   rtlsim::Signal<Logic>& clk, rtlsim::Signal<Logic>& rst,
                   PlbMasterPort& port, IcapPortIf& icap, Config cfg)
    : Module(sch, name),
      done_irq(sch, full_name() + ".done_irq", Logic::L0),
      cfg_(cfg),
      rst_(rst),
      // In point-to-point mode the IP issues the whole transfer as a single
      // burst (limit 0); in shared mode bursts are issued manually with FIFO
      // backpressure, so the helper's own splitting is disabled too.
      dma_(port, 0),
      icap_(icap) {
    sync_proc("fsm", [this] { on_clock(); }, {rtlsim::posedge(clk)});
}

Word IcapCtrl::dcr_read(std::uint32_t regno) {
    switch (regno - cfg_.dcr_base) {
        case kStatus:
            return Word{(busy_ ? 1u : 0u) | (done_ ? 2u : 0u) |
                        (error_ ? 4u : 0u)};
        case kAddr: return Word{addr_reg_};
        case kSize: return Word{size_reg_};
        default: return Word{0};
    }
}

void IcapCtrl::dcr_write(std::uint32_t regno, Word w) {
    if (w.has_unknown()) {
        report("X written to register " +
               std::to_string(regno - cfg_.dcr_base));
        return;
    }
    const auto v = static_cast<std::uint32_t>(w.to_u64());
    switch (regno - cfg_.dcr_base) {
        case kCtrl:
            if (v & 1u) pend_start_ = true;
            if (v & 2u) pend_abort_ = true;
            break;
        case kStatus:
            if (v & 2u) done_ = false;  // W1C
            break;
        case kAddr: addr_reg_ = v; break;
        case kSize: size_reg_ = v; break;
        default: break;
    }
}

void IcapCtrl::start_transfer() {
    total_words_ = cfg_.size_in_bytes ? size_reg_ / 4 : size_reg_;
    fetch_addr_ = addr_reg_;
    fetched_ = 0;
    drained_this_xfer_ = 0;
    div_cnt_ = 0;
    fifo_.clear();
    busy_ = total_words_ != 0;
    error_ = false;
    if (total_words_ == 0) {
        report("started with zero transfer size");
        done_ = true;
    }
}

void IcapCtrl::maybe_issue_burst() {
    if (dma_.busy() || fetched_ >= total_words_) return;

    const std::uint32_t remaining = total_words_ - fetched_;
    std::uint32_t burst;
    if (cfg_.p2p_mode) {
        // Original IP habit: one burst for everything, no FIFO check —
        // correct on a dedicated link, silently truncated on a shared bus.
        burst = remaining;
    } else {
        burst = std::min<std::uint32_t>(cfg_.burst_words, remaining);
        if (fifo_.size() + burst > cfg_.fifo_depth) return;  // backpressure
    }

    inflight_burst_ = burst;
    dma_.start_read(
        fetch_addr_, burst, [this](std::uint32_t, Word w) { fifo_push(w); },
        [this] { finish_burst(); });
}

void IcapCtrl::fifo_push(Word w) {
    if (fifo_.size() >= cfg_.fifo_depth) {
        ++overflows_;
        if (overflow_reports_ < 5) {
            ++overflow_reports_;
            report("FIFO overflow: bitstream word dropped");
        }
        return;  // word lost — the SimB will arrive truncated
    }
    fifo_.push_back(w);
}

void IcapCtrl::finish_burst() {
    fetched_ += inflight_burst_;
    fetch_addr_ += 4 * inflight_burst_;
}

void IcapCtrl::ckpt_save(rtlsim::SnapWriter& w) const {
    dma_.ckpt_save(w);
    w.u32(addr_reg_);
    w.u32(size_reg_);
    w.bool8(pend_start_);
    w.bool8(pend_abort_);
    w.bool8(busy_);
    w.bool8(done_);
    w.bool8(error_);
    w.u32(total_words_);
    w.u32(fetch_addr_);
    w.u32(fetched_);
    w.u32(inflight_burst_);
    w.u64(drained_);
    w.u32(drained_this_xfer_);
    w.u32(div_cnt_);
    w.u32(static_cast<std::uint32_t>(fifo_.size()));
    for (const Word& f : fifo_) {
        w.u64((static_cast<std::uint64_t>(f.val_plane()) << 32) |
              f.unk_plane());
    }
    w.u64(overflows_);
    w.u32(overflow_reports_);
}

bool IcapCtrl::ckpt_restore(rtlsim::SnapReader& r) {
    if (!dma_.ckpt_restore(r)) return false;
    addr_reg_ = r.u32();
    size_reg_ = r.u32();
    pend_start_ = r.bool8();
    pend_abort_ = r.bool8();
    busy_ = r.bool8();
    done_ = r.bool8();
    error_ = r.bool8();
    total_words_ = r.u32();
    fetch_addr_ = r.u32();
    fetched_ = r.u32();
    inflight_burst_ = r.u32();
    drained_ = r.u64();
    drained_this_xfer_ = r.u32();
    div_cnt_ = r.u32();
    const std::uint32_t n = r.u32();
    fifo_.clear();
    for (std::uint32_t i = 0; i < n && r.ok_so_far(); ++i) {
        const std::uint64_t planes = r.u64();
        fifo_.push_back(Word::from_planes(planes >> 32,
                                          planes & 0xFFFF'FFFFull));
    }
    overflows_ = r.u64();
    overflow_reports_ = r.u32();
    // Re-arm the DMA data closures (identical to the cold-start lambdas).
    dma_.ckpt_rearm([this](std::uint32_t, Word w) { fifo_push(w); }, {},
                    [this] { finish_burst(); });
    return r.ok_so_far();
}

void IcapCtrl::on_clock() {
    if (is1(rst_.read())) {
        busy_ = false;
        done_ = false;
        error_ = false;
        fifo_.clear();
        dma_.reset();
        pend_start_ = false;
        pend_abort_ = false;
        done_irq.write(Logic::L0);
        return;
    }

    done_irq.write(Logic::L0);
    dma_.step();

    if (pend_abort_) {
        pend_abort_ = false;
        busy_ = false;
        fifo_.clear();
        dma_.reset();
    }
    if (pend_start_) {
        pend_start_ = false;
        if (busy_) {
            report("start while busy ignored");
        } else {
            start_transfer();
        }
    }
    if (!busy_) return;

    maybe_issue_burst();

    // Drain one word to the ICAP every clk_div cycles (the configuration
    // clock is slower than the bus clock in the modified design).
    if (++div_cnt_ >= cfg_.clk_div) {
        div_cnt_ = 0;
        if (!fifo_.empty()) {
            icap_.icap_write(fifo_.front());
            fifo_.pop_front();
            ++drained_;
            ++drained_this_xfer_;
            if (drained_this_xfer_ == total_words_) {
                busy_ = false;
                done_ = true;
                done_irq.write(Logic::L1);
            }
        }
    }

    if (dma_.failed()) {
        error_ = true;
        busy_ = false;
        report("bus error during bitstream fetch");
    }
}

}  // namespace autovision
