#include "syscall.hpp"

namespace autovision::isa {

void HostIo::ckpt_save(rtlsim::SnapWriter& w) const {
    w.str(out_);
    w.u64(dropped_);
    w.bool8(exited_);
    w.u32(exit_code_);
    for (auto c : calls_) w.u64(c);
    w.u64(unknown_calls_);
    w.u64(isr_calls_);
}

bool HostIo::ckpt_restore(rtlsim::SnapReader& r) {
    out_ = r.str();
    dropped_ = r.u64();
    exited_ = r.bool8();
    exit_code_ = r.u32();
    for (auto& c : calls_) c = r.u64();
    unknown_calls_ = r.u64();
    isr_calls_ = r.u64();
    return r.ok_so_far() && out_.size() <= kMaxOutBytes;
}

}  // namespace autovision::isa
