// PowerPC-subset instruction set simulator (ISS).
//
// Plays the role of the IBM PowerPC ISS the paper co-simulated with the RTL:
// the firmware (drivers + ISRs + pipelined main loop) executes as real
// machine code while the hardware runs cycle-accurately around it.
//
// Timing model, documented for the Table II reproduction:
//   * 1 instruction per bus clock when no memory operand (models cached
//     fetch on the PPC405's I-cache; the vendor ISS similarly decoupled
//     fetch from the bus);
//   * every data load/store is a single-beat PLB transaction through the
//     CPU's master port (word ops one transaction; sub-word stores are
//     read-modify-write, two transactions);
//   * mfdcr/mtdcr stall for the DCR ring latency;
//   * external interrupts are sampled between instructions; MSR[EE],
//     SRR0/SRR1 and rfi follow the 405 exception model with EVPR = 0.
//
// Verification hooks: fetching undefined (X) memory, an X level on the
// external interrupt pin, and DCR reads returning X are all reported to the
// scheduler's diagnostics — these are exactly the software-visible symptoms
// of the case study's isolation bugs.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <string>

#include "bus/dcr.hpp"
#include "bus/memory.hpp"
#include "bus/plb.hpp"
#include "kernel/kernel.hpp"

namespace autovision::isa {

using rtlsim::Logic;
using rtlsim::Module;
using rtlsim::Scheduler;
using rtlsim::Signal;

class PpcCpu final : public Module {
public:
    struct Config {
        std::uint32_t reset_pc = 0x0000'1000;
        /// Upper bound on reported X-related diagnostics (spam control).
        unsigned x_report_limit = 5;
    };

    PpcCpu(Scheduler& sch, const std::string& name, Signal<Logic>& clk,
           Signal<Logic>& rst, PlbMasterPort& port, DcrChain& dcr,
           Memory& imem, Signal<Logic>& ext_irq, Config cfg);

    // --- introspection (testbench/backdoor) ------------------------------
    [[nodiscard]] std::uint32_t gpr(unsigned i) const { return gpr_[i]; }
    void set_gpr(unsigned i, std::uint32_t v) { gpr_[i] = v; }
    [[nodiscard]] std::uint32_t pc() const { return pc_; }
    void set_pc(std::uint32_t pc) { pc_ = pc; }
    [[nodiscard]] std::uint32_t msr() const { return msr_; }
    [[nodiscard]] std::uint32_t lr() const { return lr_; }
    [[nodiscard]] std::uint32_t ctr() const { return ctr_; }
    [[nodiscard]] std::uint32_t cr0() const { return cr0_; }

    [[nodiscard]] std::uint64_t instructions() const { return icount_; }
    [[nodiscard]] std::uint64_t interrupts_taken() const { return irqs_; }

    /// True while the CPU spins on a branch-to-self with interrupts either
    /// disabled or not pending — the firmware's "done/idle" convention.
    [[nodiscard]] bool halted() const { return halted_; }

    /// Optional per-instruction trace hook (pc, raw instruction). Not part
    /// of the checkpoint image; consumers re-install it after restore.
    std::function<void(std::uint32_t, std::uint32_t)> trace;

    // --- checkpoint ------------------------------------------------------
    /// Architectural registers + the pending memory/DCR operation
    /// descriptors; an op that was mid-flight at save time resumes on the
    /// restored bus state with freshly re-armed completion closures.
    void ckpt_save(rtlsim::SnapWriter& w) const;
    [[nodiscard]] bool ckpt_restore(rtlsim::SnapReader& r);

private:
    void on_clock();
    void take_interrupt();
    void execute(std::uint32_t insn);
    void exec_op31(std::uint32_t insn);
    void set_cr0_signed(std::int32_t v);
    void illegal(std::uint32_t insn, const std::string& why);

    // Data-side memory operations (through the PLB).
    void load(std::uint32_t ea, unsigned bytes, std::uint32_t rt);
    void store(std::uint32_t ea, unsigned bytes, std::uint32_t value);
    // Completion handlers: operands live in the descriptors below so the
    // same code serves the cold path and a post-restore resumption.
    void finish_load(rtlsim::Word w);
    void rmw_merge(rtlsim::Word w);
    void issue_rmw_write();
    void finish_mfdcr(rtlsim::Word w);

    Config cfg_;
    Signal<Logic>& clk_;
    Signal<Logic>& rst_;
    DcrChain& dcr_;
    Memory& imem_;
    Signal<Logic>& ext_irq_;
    DmaMaster dma_;

    std::array<std::uint32_t, 32> gpr_{};
    std::uint32_t pc_ = 0;
    std::uint32_t msr_ = 0;
    std::uint32_t cr0_ = 0;
    std::uint32_t lr_ = 0;
    std::uint32_t ctr_ = 0;
    std::uint32_t xer_ = 0;
    std::uint32_t srr0_ = 0;
    std::uint32_t srr1_ = 0;

    bool in_reset_ = true;
    bool halted_ = false;
    bool fatal_ = false;
    bool mem_busy_ = false;   ///< PLB data op in flight
    bool dcr_busy_ = false;   ///< DCR ring op in flight
    std::uint64_t icount_ = 0;
    std::uint64_t irqs_ = 0;
    unsigned x_reports_ = 0;

    // Pending data-side operation descriptor. The DMA closures capture only
    // `this` and read their operands from here, which is what makes a
    // mid-operation checkpoint re-armable.
    struct MemOp {
        enum class Kind : std::uint8_t { None, Load, Store4, RmwRead, RmwWrite };
        Kind kind = Kind::None;
        std::uint32_t ea = 0;
        std::uint32_t bytes = 0;
        std::uint32_t rt = 0;     ///< load destination register
        std::uint32_t value = 0;  ///< store data / RMW merge accumulator
    } mem_;

    // Pending DCR-ring operation descriptor (same rationale).
    struct DcrOp {
        enum class Kind : std::uint8_t { None, Read, Write };
        Kind kind = Kind::None;
        std::uint32_t dcrn = 0;
        std::uint32_t rt = 0;
    } dcrop_;
};

}  // namespace autovision::isa
