// PowerPC-subset instruction set simulator (ISS).
//
// Plays the role of the IBM PowerPC ISS the paper co-simulated with the RTL:
// the firmware (drivers + ISRs + pipelined main loop) executes as real
// machine code while the hardware runs cycle-accurately around it.
//
// Timing model, documented for the Table II reproduction:
//   * 1 instruction per bus clock when no memory operand (models cached
//     fetch on the PPC405's I-cache; the vendor ISS similarly decoupled
//     fetch from the bus);
//   * every data load/store is a single-beat PLB transaction through the
//     CPU's master port (word ops one transaction; sub-word stores are
//     read-modify-write, two transactions);
//   * mfdcr/mtdcr stall for the DCR ring latency;
//   * external interrupts are sampled between instructions; MSR[EE],
//     SRR0/SRR1 and rfi follow the 405 exception model with EVPR = 0.
//
// Execution engines (Config::engine):
//   * kInterp — the retained reference interpreter: fetch + decode + execute
//     every instruction on every posedge. The oracle half of the lockstep
//     differential tests.
//   * kCached (default) — per-cycle execution out of the basic-block decode
//     cache (src/isa/decode.hpp): one micro-op per posedge, re-validated
//     against the owning memory page's write generation, falling back to
//     the interpreter for bus ops, traps, MSR writes and illegal words.
//     Cycle-, trace- and diagnostic-identical to kInterp by construction.
//
// On top of kCached, a harness whose only active master is the CPU may call
// enable_sleep(): when the CPU sees a long bus-free instruction sequence
// ahead it pre-executes up to a few thousand instructions on a scratch
// register file, parks the clock generator (phase-preserving gating), and
// schedules a single wake event — collapsing thousands of posedge events
// into two. Any registered wake signal edge or any memory write commits the
// elapsed prefix and resumes the clock, so interrupts and DMA stores into
// code observe per-cycle semantics. Not valid when other modules need the
// same clock: the system harness never enables it.
//
// Syscalls: the Power `sc` instruction traps to HostIo (src/isa/syscall.hpp)
// with the genuine SRR0/SRR1 clobber — which is exactly why `sc` inside an
// ISR is one of the catalogued software bugs.
//
// Verification hooks: fetching undefined (X) memory, an X level on the
// external interrupt pin, and DCR reads returning X are all reported to the
// scheduler's diagnostics — these are exactly the software-visible symptoms
// of the case study's isolation bugs.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <string>

#include "bus/dcr.hpp"
#include "bus/memory.hpp"
#include "bus/plb.hpp"
#include "decode.hpp"
#include "kernel/kernel.hpp"
#include "syscall.hpp"

namespace autovision::isa {

using rtlsim::Logic;
using rtlsim::Module;
using rtlsim::Scheduler;
using rtlsim::Signal;

class PpcCpu final : public Module {
public:
    struct Config {
        std::uint32_t reset_pc = 0x0000'1000;
        /// Upper bound on reported X-related diagnostics (spam control).
        unsigned x_report_limit = 5;
        /// Execution engine; kCached is the default and is cycle-identical
        /// to the interpreter (kInterp stays as the lockstep oracle).
        enum class Engine : std::uint8_t { kInterp, kCached };
        Engine engine = Engine::kCached;
    };

    PpcCpu(Scheduler& sch, const std::string& name, Signal<Logic>& clk,
           Signal<Logic>& rst, PlbMasterPort& port, DcrChain& dcr,
           Memory& imem, Signal<Logic>& ext_irq, Config cfg);

    // --- introspection (testbench/backdoor) ------------------------------
    // While a sleep window is open the architectural state lags simulated
    // time; call wake_now() first (harnesses that never enable sleep are
    // unaffected).
    [[nodiscard]] std::uint32_t gpr(unsigned i) const { return st_.gpr[i]; }
    void set_gpr(unsigned i, std::uint32_t v) { st_.gpr[i] = v; }
    [[nodiscard]] std::uint32_t pc() const { return st_.pc; }
    void set_pc(std::uint32_t pc) { st_.pc = pc; }
    [[nodiscard]] std::uint32_t msr() const { return st_.msr; }
    [[nodiscard]] std::uint32_t lr() const { return st_.lr; }
    [[nodiscard]] std::uint32_t ctr() const { return st_.ctr; }
    [[nodiscard]] std::uint32_t cr0() const { return st_.cr0; }

    /// Whole architectural register file as a comparable value (the
    /// lockstep differential tests diff this wholesale).
    [[nodiscard]] const ArchRegs& arch_state() const { return st_; }

    [[nodiscard]] std::uint64_t instructions() const { return icount_; }
    [[nodiscard]] std::uint64_t interrupts_taken() const { return irqs_; }

    /// True while the CPU spins on a branch-to-self with interrupts either
    /// disabled or not pending — the firmware's "done/idle" convention.
    [[nodiscard]] bool halted() const { return st_.halted; }

    /// Host-IO side of the syscall layer (console output, exit latch).
    [[nodiscard]] const HostIo& host_io() const { return host_; }

    /// Observability: every retired `sc` records an obs::EventKind::kSyscall
    /// (a = call number, b = result, region = 1 when at ISR depth). Both
    /// execution engines trap through the same interpreter path, so the
    /// event stream is engine-invariant. Null disables (the default).
    void set_observer(obs::EventRecorder* rec) { obs_ = rec; }

    /// Decode-cache statistics (bench/regression introspection).
    [[nodiscard]] const DecodeCache& decode_cache() const { return cache_; }

    /// Optional per-instruction trace hook (pc, raw instruction). Not part
    /// of the checkpoint image; consumers re-install it after restore.
    /// Installing a trace hook disables sleep windows (per-cycle only).
    std::function<void(std::uint32_t, std::uint32_t)> trace;

    // --- sleep (clock-gated batch execution; harness opt-in) -------------
    /// Allow sleep windows, parking `gclk` (which must generate this CPU's
    /// clk) during them. The reset and external-interrupt inputs are
    /// registered as wake signals automatically, and every write into
    /// `imem` wakes the CPU (store-to-code / DMA visibility). Requires the
    /// kCached engine and a single-lane scheduler; call once, before run.
    void enable_sleep(rtlsim::Clock& gclk);

    /// Register an additional wake signal (e.g. a DMA-done line a polled
    /// loop is watching). Any value change ends an open sleep window.
    void add_wake_signal(Signal<Logic>& sig);

    /// Commit an open sleep window up to the current simulated time and
    /// resume the clock; no-op when not sleeping. Call before reading
    /// architectural state mid-run from a sleep-enabled harness.
    void wake_now();

    [[nodiscard]] bool sleeping() const { return sleeping_; }
    [[nodiscard]] std::uint64_t sleep_windows() const {
        return sleep_windows_;
    }
    [[nodiscard]] std::uint64_t sleep_insns() const { return sleep_insns_; }

    // --- checkpoint ------------------------------------------------------
    /// Architectural registers + the pending memory/DCR operation
    /// descriptors; an op that was mid-flight at save time resumes on the
    /// restored bus state with freshly re-armed completion closures. The
    /// decode cache is never serialized — restore flushes it and redecodes
    /// from restored memory (memory must restore before the CPU when a
    /// sleep window is open, so the scratch replay decodes the saved code).
    void ckpt_save(rtlsim::SnapWriter& w) const;
    [[nodiscard]] bool ckpt_restore(rtlsim::SnapReader& r);

private:
    void on_clock();
    void take_interrupt();
    void execute(std::uint32_t insn);
    void exec_op31(std::uint32_t insn);
    void set_cr0(std::int32_t v);
    void illegal(std::uint32_t insn, const std::string& why);
    void do_syscall();

    bool step_cached();  ///< one micro-op via the decode cache; false -> fetch path
    bool maybe_sleep();  ///< try to open a sleep window at this posedge
    void commit_sleep(std::uint64_t elapsed);
    void wake_early();

    // Data-side memory operations (through the PLB).
    void load(std::uint32_t ea, unsigned bytes, std::uint32_t rt);
    void store(std::uint32_t ea, unsigned bytes, std::uint32_t value);
    // Completion handlers: operands live in the descriptors below so the
    // same code serves the cold path and a post-restore resumption.
    void finish_load(rtlsim::Word w);
    void rmw_merge(rtlsim::Word w);
    void issue_rmw_write();
    void finish_mfdcr(rtlsim::Word w);

    Config cfg_;
    Signal<Logic>& clk_;
    Signal<Logic>& rst_;
    DcrChain& dcr_;
    Memory& imem_;
    Signal<Logic>& ext_irq_;
    DmaMaster dma_;

    ArchRegs st_;  ///< architectural register file

    bool in_reset_ = true;
    bool fatal_ = false;
    bool mem_busy_ = false;   ///< PLB data op in flight
    bool dcr_busy_ = false;   ///< DCR ring op in flight
    std::uint64_t icount_ = 0;
    std::uint64_t irqs_ = 0;
    unsigned x_reports_ = 0;

    HostIo host_;
    std::uint32_t isr_depth_ = 0;  ///< take_interrupt/rfi nesting (syscall-in-ISR)
    obs::EventRecorder* obs_ = nullptr;

    // Decode cache + per-cycle cursor. The cursor is a pure accelerator:
    // it is valid only while it agrees with st_.pc and the block is fresh,
    // so dropping it (nullptr) is always safe.
    DecodeCache cache_;
    const DecodeCache::Block* cur_blk_ = nullptr;
    std::size_t cur_idx_ = 0;

    // Sleep state. A window pre-executed sleep_len_ instructions starting
    // at the posedge at sleep_start_; sleep_end_ holds the post-window
    // register file. An early wake replays the elapsed prefix from st_
    // (unchanged during the window) over the scan-time decode.
    struct WakeEvent final : rtlsim::TimedEvent {
        explicit WakeEvent(PpcCpu& c) : cpu(c) {}
        void fire() override { cpu.commit_sleep(cpu.sleep_len_); }
        PpcCpu& cpu;
    };

    static constexpr std::uint64_t kMinSleep = 16;    ///< not worth gating below
    static constexpr std::uint64_t kMaxSleep = 4096;  ///< scan budget per window

    rtlsim::Clock* gclk_ = nullptr;  ///< non-null once sleep is enabled
    bool sleeping_ = false;
    std::uint64_t sleep_len_ = 0;
    rtlsim::Time sleep_start_ = 0;
    ArchRegs sleep_end_;
    WakeEvent wake_ev_;
    unsigned wake_procs_ = 0;
    std::uint64_t sleep_windows_ = 0;
    std::uint64_t sleep_insns_ = 0;

    // Pending data-side operation descriptor. The DMA closures capture only
    // `this` and read their operands from here, which is what makes a
    // mid-operation checkpoint re-armable.
    struct MemOp {
        enum class Kind : std::uint8_t { None, Load, Store4, RmwRead, RmwWrite };
        Kind kind = Kind::None;
        std::uint32_t ea = 0;
        std::uint32_t bytes = 0;
        std::uint32_t rt = 0;     ///< load destination register
        std::uint32_t value = 0;  ///< store data / RMW merge accumulator
    } mem_;

    // Pending DCR-ring operation descriptor (same rationale).
    struct DcrOp {
        enum class Kind : std::uint8_t { None, Read, Write };
        Kind kind = Kind::None;
        std::uint32_t dcrn = 0;
        std::uint32_t rt = 0;
    } dcrop_;
};

}  // namespace autovision::isa
