// Predecoded basic-block cache and batch executor for the PPC ISS.
//
// The interpreter in cpu.cpp re-decodes every instruction on every clock
// edge; measured against the scenario firmware that is ~150 ns/insn, of
// which almost all is kernel/event overhead and decode-switch dispatch.
// This file splits the ISS into the layers a fast ISS needs:
//
//   * ArchRegs — the architectural register file as a plain value type,
//     so an instruction-set step can run on a scratch copy (the sleep
//     scan), be compared wholesale (the lockstep differential tests),
//     and be committed atomically.
//   * Uop/MicroOp — one decoded instruction, 16 bytes, with immediates,
//     rotate masks, and branch targets precomputed at decode time.
//   * DecodeCache — basic blocks keyed by start PC. A block is decoded
//     once and re-validated against the owning memory page's write
//     generation, so a store into code (self-modifying firmware, DMA, a
//     corrupting reconfiguration) forces a redecode instead of executing
//     stale micro-ops.
//   * exec_cached — the threaded-dispatch batch executor: runs micro-ops
//     on an ArchRegs until a budget, a non-deferrable instruction (bus
//     access, syscall, MSR write), a halt, or undecodable memory stops it.
//
// The per-cycle cached engine in cpu.cpp executes exactly one micro-op per
// posedge through the same semantics (exec_uop), which keeps it cycle-,
// trace-, and diagnostic-identical to the interpreter; the batch executor
// is what the clock-gated sleep path and the checkpoint replay use.
//
// Block boundaries: a block ends at any branch (included), at the first
// Uop::kFallback (included — the executor stops *before* it), at a 4 KiB
// page boundary (so one page generation covers the whole block), at an
// undecodable/X word (excluded), or at kMaxBlockLen micro-ops.
#pragma once

#include <array>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "bus/memory.hpp"
#include "ppc.hpp"

namespace autovision::isa {

/// Architectural register state as a plain comparable value.
struct ArchRegs {
    std::array<std::uint32_t, 32> gpr{};
    std::uint32_t pc = 0;
    std::uint32_t msr = 0;
    std::uint32_t cr0 = 0;
    std::uint32_t lr = 0;
    std::uint32_t ctr = 0;
    std::uint32_t xer = 0;
    std::uint32_t srr0 = 0;
    std::uint32_t srr1 = 0;
    bool halted = false;

    friend bool operator==(const ArchRegs&, const ArchRegs&) = default;
};

inline void set_cr0_signed(ArchRegs& st, std::uint32_t v) {
    const auto s = static_cast<std::int32_t>(v);
    st.cr0 = (s < 0) ? CR0_LT : (s > 0) ? CR0_GT : CR0_EQ;
}

/// Micro-op kinds. Everything the executor can retire without touching the
/// bus, the DCR ring, MSR[EE], or the host gets its own kind; the rest —
/// loads/stores, mfdcr/mtdcr, sc, rfi, mtmsr, wrteei, illegal encodings —
/// is kFallback and always runs through the full interpreter per-cycle.
enum class Uop : std::uint8_t {
    kAddi,      // d <- (a|0) + imm   (addi/addis, imm prescaled)
    kAddic,     // d <- gpr[a] + imm
    kMulli,     // d <- low32(gpr[a] * simm)
    kSubfic,    // d <- imm - gpr[a]
    kOrImm,     // d <- gpr[a] | imm  (ori/oris, imm prescaled)
    kXorImm,    // d <- gpr[a] ^ imm  (xori/xoris)
    kAndImmRc,  // d <- gpr[a] & imm, CR0 (andi./andis.)
    kCmpi,      // CR0 <- gpr[a] <=> simm (signed)
    kCmpli,     // CR0 <- gpr[a] <=> imm  (unsigned)
    kRlwinm,    // d <- rotl32(gpr[a], b) & imm (mask precomputed)
    kB,         // pc <- imm (target precomputed); link via flag
    kBHalt,     // unconditional branch-to-self, non-link: halt
    kBc,        // conditional; d=BO a=BI imm=target
    kBclr,      // d=BO a=BI; target = lr & ~3
    kBcctr,     // target = ctr & ~3
    kNop,       // isync, sync, encodings with no architectural effect
    kAdd,       // d <- gpr[a] + gpr[b]
    kSubf,      // d <- gpr[b] - gpr[a]
    kNeg,       // d <- -gpr[a]
    kMullw,     // d <- low32(gpr[a] * gpr[b])
    kDivw,      // d <- gpr[a] /s gpr[b]; zero/overflow divisor -> interp
    kDivwu,     // d <- gpr[a] /u gpr[b]; zero divisor -> interp
    kAnd,
    kOr,
    kXor,
    kNor,
    kAndc,
    kSlw,
    kSrw,
    kSraw,
    kSrawi,  // b = shift amount
    kCmp,
    kCmpl,
    kMfspr,  // imm = SPR number (known-valid at decode)
    kMtspr,
    kMfcr,
    kMtcrf,
    kMfmsr,
    kFallback,  // run the raw word through the interpreter
};

inline constexpr std::uint8_t kUopFlagRc = 1;    ///< record CR0
inline constexpr std::uint8_t kUopFlagLink = 2;  ///< branch updates LR

/// One decoded instruction. 16 bytes; `raw` keeps the original word for
/// trace hooks and for the kFallback interpreter path.
struct MicroOp {
    Uop kind = Uop::kFallback;
    std::uint8_t flags = 0;
    std::uint8_t d = 0;
    std::uint8_t a = 0;
    std::uint8_t b = 0;
    std::uint32_t imm = 0;
    std::uint32_t raw = 0;
};

/// True when this op ends the decode of a basic block (branches and
/// fallbacks are included as the block's final op).
[[nodiscard]] constexpr bool ends_block(Uop k) {
    switch (k) {
        case Uop::kB:
        case Uop::kBHalt:
        case Uop::kBc:
        case Uop::kBclr:
        case Uop::kBcctr:
        case Uop::kFallback: return true;
        default: return false;
    }
}

/// Decode one instruction word fetched from `pc` into a micro-op.
[[nodiscard]] MicroOp decode_one(std::uint32_t insn, std::uint32_t pc);

/// True when `op` cannot be retired by exec_uop on the given state and must
/// run through the full interpreter: kFallback always; divides whose result
/// the Power ISA leaves undefined (zero divisor, INT_MIN/-1) so the
/// interpreter's diagnostic report fires exactly once, per-cycle.
[[nodiscard]] inline bool needs_interp(const ArchRegs& st, const MicroOp& op) {
    if (op.kind == Uop::kFallback) return true;
    if (op.kind == Uop::kDivwu) return st.gpr[op.b] == 0;
    if (op.kind == Uop::kDivw) {
        return st.gpr[op.b] == 0 ||
               (st.gpr[op.a] == 0x8000'0000u && st.gpr[op.b] == 0xFFFF'FFFFu);
    }
    return false;
}

/// Retire one micro-op: advances st.pc by 4, then applies the op (branches
/// overwrite pc; a taken self-branch without link sets halted, matching the
/// interpreter's idle convention). Precondition: !needs_interp(st, op).
void exec_uop(ArchRegs& st, const MicroOp& op);

/// Basic-block cache keyed by physical start PC. Values are stable under
/// rehash (std::unordered_map nodes don't move), so the CPU may hold a
/// Block* cursor between cycles as long as it re-checks fresh().
class DecodeCache {
public:
    struct Block {
        std::uint32_t start_pc = 0;
        std::size_t page = 0;      ///< memory page holding the whole block
        std::uint32_t gen = 0;     ///< page write generation at decode time
        std::vector<MicroOp> ops;  ///< empty => start word undecodable
    };

    /// Blocks never cross a page boundary, so 64 is also bounded by the
    /// 1024-word page; it caps the worst-case decode burst.
    static constexpr std::size_t kMaxBlockLen = 64;

    explicit DecodeCache(Memory& mem) : mem_(mem) {}

    /// True while the block's decode still matches memory.
    [[nodiscard]] bool fresh(const Block& b) const {
        return mem_.page_gen(b.page) == b.gen;
    }

    /// Find (or decode) the block starting at `pc`. A stale block is
    /// redecoded in place. Returns nullptr when no instruction can be
    /// decoded at `pc` (bad address, misaligned, X word) — the caller's
    /// interpreter fetch path then produces the proper diagnostics.
    /// With assume_fresh the generation check is skipped: the checkpoint /
    /// early-wake replay paths must re-execute exactly the micro-ops the
    /// original scan used, even if the triggering event was a store into
    /// that very code page.
    [[nodiscard]] const Block* lookup(std::uint32_t pc,
                                      bool assume_fresh = false);

    /// Drop every block (checkpoint restore, reset).
    void flush() {
        blocks_.clear();
        ++flushes_;
    }

    [[nodiscard]] std::uint64_t decodes() const { return decodes_; }
    [[nodiscard]] std::uint64_t stale_redecodes() const {
        return stale_redecodes_;
    }
    [[nodiscard]] std::uint64_t flushes() const { return flushes_; }
    [[nodiscard]] std::size_t blocks() const { return blocks_.size(); }

private:
    void decode_block(Block& b, std::uint32_t pc);

    Memory& mem_;
    std::unordered_map<std::uint32_t, Block> blocks_;
    std::uint64_t decodes_ = 0;
    std::uint64_t stale_redecodes_ = 0;
    std::uint64_t flushes_ = 0;
};

/// Why the batch executor returned.
enum class ExecStop : std::uint8_t {
    kBudget,      ///< executed `budget` micro-ops
    kTerminator,  ///< stopped *before* an op that needs the interpreter
    kHalted,      ///< retired a halting self-branch (included in count)
    kNoBlock,     ///< st.pc has no decodable instruction
};

struct ExecResult {
    ExecStop stop = ExecStop::kBudget;
    std::uint64_t executed = 0;
};

/// Run micro-ops on `st`, following branches across blocks, until one of
/// the ExecStop conditions. Deterministic: re-running from the same state
/// over unchanged (or assume_fresh-pinned) decode retires the same ops.
[[nodiscard]] ExecResult exec_cached(ArchRegs& st, DecodeCache& cache,
                                     std::uint64_t budget,
                                     bool assume_fresh = false);

}  // namespace autovision::isa
