// PowerPC-subset ISA definitions shared by the assembler and the ISS.
//
// The subset models a PowerPC 405 class embedded core: 32-bit fixed-point
// unit, CR0, LR/CTR/XER, SRR0/SRR1, MSR[EE], external-interrupt exception at
// 0x500, rfi, and the DCR access instructions (mfdcr/mtdcr) that the
// demonstrator's drivers use to program the engines and the IcapCTRL.
// Encodings follow the real Power ISA so the assembler output is genuine
// machine code.
#pragma once

#include <cstdint>

namespace autovision::isa {

// Primary opcodes (bits 0..5, i.e. insn >> 26).
enum PrimaryOp : std::uint32_t {
    OP_MULLI = 7,
    OP_SUBFIC = 8,
    OP_CMPLI = 10,
    OP_CMPI = 11,
    OP_ADDIC = 12,
    OP_ADDI = 14,
    OP_ADDIS = 15,
    OP_BC = 16,
    OP_SC = 17,  // system call (host-IO trap; see syscall.hpp)
    OP_B = 18,
    OP_XL = 19,   // bclr, rfi, isync
    OP_RLWINM = 21,
    OP_ORI = 24,
    OP_ORIS = 25,
    OP_XORI = 26,
    OP_XORIS = 27,
    OP_ANDI = 28,  // andi. (always records CR0)
    OP_ANDIS = 29,
    OP_X = 31,    // X/XO-form ALU, SPR/DCR/MSR moves
    OP_LWZ = 32,
    OP_LWZU = 33,
    OP_LBZ = 34,
    OP_LBZU = 35,
    OP_STW = 36,
    OP_STWU = 37,
    OP_STB = 38,
    OP_STBU = 39,
    OP_LHZ = 40,
    OP_LHZU = 41,
    OP_STH = 44,
    OP_STHU = 45,
};

// Extended opcodes for OP_X (bits 21..30, i.e. (insn >> 1) & 0x3FF).
enum XOp : std::uint32_t {
    X_CMP = 0,
    X_MFCR = 19,
    X_MTCRF = 144,
    X_SUBF = 40,
    X_AND = 28,
    X_CMPL = 32,
    X_ANDC = 60,
    X_MFMSR = 83,
    X_NEG = 104,
    X_NOR = 124,
    X_MTMSR = 146,
    X_WRTEEI = 163,  // PPC405 / Book-E embedded
    X_MULLW = 235,
    X_ADD = 266,
    X_XOR = 316,
    X_MFDCR = 323,
    X_MFSPR = 339,
    X_OR = 444,
    X_DIVWU = 459,
    X_MTDCR = 451,
    X_MTSPR = 467,
    X_DIVW = 491,
    X_SLW = 24,
    X_SRW = 536,
    X_SRAW = 792,
    X_SRAWI = 824,
    X_SYNC = 598,
};

// Extended opcodes for OP_XL.
enum XlOp : std::uint32_t {
    XL_BCLR = 16,
    XL_RFI = 50,
    XL_ISYNC = 150,
    XL_BCCTR = 528,
};

// SPR numbers (already un-split).
enum Spr : std::uint32_t {
    SPR_XER = 1,
    SPR_LR = 8,
    SPR_CTR = 9,
    SPR_SRR0 = 26,
    SPR_SRR1 = 27,
};

// MSR bits.
inline constexpr std::uint32_t MSR_EE = 0x0000'8000;

// CR0 field bits (stored in the 4 MSBs of our CR model).
inline constexpr std::uint32_t CR0_LT = 0x8;
inline constexpr std::uint32_t CR0_GT = 0x4;
inline constexpr std::uint32_t CR0_EQ = 0x2;
inline constexpr std::uint32_t CR0_SO = 0x1;

// Exception vectors (EVPR = 0).
inline constexpr std::uint32_t VEC_EXTERNAL = 0x0000'0500;

/// Split a 10-bit SPR/DCR number into the swapped-halves instruction field.
[[nodiscard]] constexpr std::uint32_t split_sprf(std::uint32_t n) {
    return ((n & 0x1F) << 16) | (((n >> 5) & 0x1F) << 11);
}

/// Recover a 10-bit SPR/DCR number from instruction bits.
[[nodiscard]] constexpr std::uint32_t unsplit_sprf(std::uint32_t insn) {
    return ((insn >> 16) & 0x1F) | (((insn >> 11) & 0x1F) << 5);
}

}  // namespace autovision::isa
