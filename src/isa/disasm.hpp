// Disassembler for the PowerPC subset.
//
// Produces assembler-compatible text: feeding the output of
// disassemble() back through assemble() reproduces the original encoding
// (round-trip property, tested). Used by debug tooling and the CPU trace
// hook.
#pragma once

#include <cstdint>
#include <string>

#include "assembler.hpp"

namespace autovision::isa {

/// One instruction at address `pc` (pc is needed to render branch targets
/// as absolute addresses). Unknown encodings render as ".word 0x....".
[[nodiscard]] std::string disassemble(std::uint32_t insn, std::uint32_t pc);

/// Full program listing: "address: encoding  mnemonic" per line.
[[nodiscard]] std::string disassemble_program(const Program& p);

}  // namespace autovision::isa
