// Two-pass assembler for the PowerPC subset.
//
// The demonstrator's firmware (drivers, ISRs, main loop) is written in real
// PPC assembly and assembled at testbench elaboration time, mirroring how
// the original project compiled C drivers with the EDK toolchain. Keeping
// the software in genuine machine code is what makes software bugs like
// bug.dpr.5/bug.dpr.6b faithful: they live in the instructions the ISS
// executes, not in C++ testbench glue.
//
// Supported syntax (one statement per line, '#' or ';' comments):
//   label:            .org ADDR        .equ NAME, EXPR
//   .word E0, E1...   .space NBYTES    .align POW2BYTES
//   li/lis/mr/not/nop/slwi/srwi and the usual PPC mnemonics
//   operands: rN registers, immediate expressions with + - * ( ),
//   hi(E) lo(E) ha(E) halves, d(rA) displacement addressing
#pragma once

#include <cstdint>
#include <map>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace autovision::isa {

/// Assembly failure with 1-based source line attribution.
class AsmError : public std::runtime_error {
public:
    AsmError(unsigned line, const std::string& what)
        : std::runtime_error("asm line " + std::to_string(line) + ": " + what),
          line_(line) {}
    [[nodiscard]] unsigned line() const { return line_; }

private:
    unsigned line_;
};

/// Assembled image: a contiguous word array starting at `origin` (gaps
/// between .org regions are zero-filled) plus the symbol table.
struct Program {
    std::uint32_t origin = 0;
    std::vector<std::uint32_t> words;
    std::map<std::string, std::uint32_t> symbols;

    [[nodiscard]] std::uint32_t size_bytes() const {
        return static_cast<std::uint32_t>(words.size() * 4);
    }

    /// Address of `_start` if defined, else the origin.
    [[nodiscard]] std::uint32_t entry() const;

    /// Symbol lookup; throws std::out_of_range for unknown names.
    [[nodiscard]] std::uint32_t sym(const std::string& name) const {
        return symbols.at(name);
    }
};

[[nodiscard]] Program assemble(std::string_view source);

}  // namespace autovision::isa
