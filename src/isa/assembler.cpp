#include "assembler.hpp"

#include <algorithm>
#include <cctype>
#include <functional>
#include <optional>

#include "ppc.hpp"

namespace autovision::isa {

namespace {

// ------------------------------------------------------------- tokenizing

std::string strip(std::string_view s) {
    std::size_t b = 0;
    std::size_t e = s.size();
    while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
    while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
    return std::string(s.substr(b, e - b));
}

std::string lower(std::string s) {
    std::transform(s.begin(), s.end(), s.begin(),
                   [](unsigned char c) { return std::tolower(c); });
    return s;
}

/// Split on top-level commas (not inside parentheses).
std::vector<std::string> split_operands(std::string_view s) {
    std::vector<std::string> out;
    int depth = 0;
    std::string cur;
    for (char c : s) {
        if (c == '(') ++depth;
        if (c == ')') --depth;
        if (c == ',' && depth == 0) {
            out.push_back(strip(cur));
            cur.clear();
        } else {
            cur.push_back(c);
        }
    }
    if (!strip(cur).empty()) out.push_back(strip(cur));
    return out;
}

// ----------------------------------------------------- expression parsing

/// Recursive-descent expression evaluator over symbols and literals.
/// Grammar: expr := term (('+'|'-') term)* ; term := unary ('*' unary)* ;
/// unary := '-' unary | primary ; primary := number | symbol | fn '(' e ')'
/// | '(' e ')'.
class ExprEval {
public:
    ExprEval(std::string_view text, const std::map<std::string, std::uint32_t>& syms,
             unsigned line)
        : s_(text), syms_(syms), line_(line) {}

    std::int64_t eval() {
        const std::int64_t v = expr();
        skip_ws();
        if (pos_ != s_.size()) fail("trailing junk in expression");
        return v;
    }

private:
    [[noreturn]] void fail(const std::string& m) const {
        throw AsmError(line_, m + " in '" + std::string(s_) + "'");
    }

    void skip_ws() {
        while (pos_ < s_.size() &&
               std::isspace(static_cast<unsigned char>(s_[pos_]))) {
            ++pos_;
        }
    }

    bool eat(char c) {
        skip_ws();
        if (pos_ < s_.size() && s_[pos_] == c) {
            ++pos_;
            return true;
        }
        return false;
    }

    std::int64_t expr() {
        std::int64_t v = term();
        while (true) {
            if (eat('+')) {
                v += term();
            } else if (eat('-')) {
                v -= term();
            } else {
                return v;
            }
        }
    }

    std::int64_t term() {
        std::int64_t v = unary();
        while (eat('*')) v *= unary();
        return v;
    }

    std::int64_t unary() {
        if (eat('-')) return -unary();
        return primary();
    }

    std::int64_t primary() {
        skip_ws();
        if (eat('(')) {
            const std::int64_t v = expr();
            if (!eat(')')) fail("missing ')'");
            return v;
        }
        if (pos_ >= s_.size()) fail("unexpected end");
        const char c = s_[pos_];
        if (std::isdigit(static_cast<unsigned char>(c))) return number();
        if (std::isalpha(static_cast<unsigned char>(c)) || c == '_' ||
            c == '.') {
            return identifier();
        }
        fail("unexpected character");
    }

    std::int64_t number() {
        std::size_t end = pos_;
        int base = 10;
        if (s_.compare(pos_, 2, "0x") == 0 || s_.compare(pos_, 2, "0X") == 0) {
            base = 16;
            end = pos_ + 2;
            while (end < s_.size() &&
                   std::isxdigit(static_cast<unsigned char>(s_[end]))) {
                ++end;
            }
        } else {
            while (end < s_.size() &&
                   std::isdigit(static_cast<unsigned char>(s_[end]))) {
                ++end;
            }
        }
        const std::string tok(s_.substr(pos_, end - pos_));
        pos_ = end;
        return std::stoll(tok, nullptr, base);
    }

    std::int64_t identifier() {
        std::size_t end = pos_;
        while (end < s_.size() &&
               (std::isalnum(static_cast<unsigned char>(s_[end])) ||
                s_[end] == '_' || s_[end] == '.')) {
            ++end;
        }
        std::string name(s_.substr(pos_, end - pos_));
        pos_ = end;
        const std::string lname = lower(name);
        if (lname == "hi" || lname == "lo" || lname == "ha") {
            if (!eat('(')) fail("expected '(' after " + lname);
            const std::int64_t v = expr();
            if (!eat(')')) fail("missing ')'");
            const auto u = static_cast<std::uint32_t>(v);
            if (lname == "hi") return (u >> 16) & 0xFFFF;
            if (lname == "lo") return u & 0xFFFF;
            // ha: high half adjusted for sign-extending low-half add.
            return ((u >> 16) + ((u & 0x8000) ? 1 : 0)) & 0xFFFF;
        }
        const auto it = syms_.find(name);
        if (it == syms_.end()) fail("undefined symbol '" + name + "'");
        return it->second;
    }

    std::string_view s_;
    const std::map<std::string, std::uint32_t>& syms_;
    unsigned line_;
    std::size_t pos_ = 0;
};

// ------------------------------------------------------------ statement IR

struct Stmt {
    unsigned line = 0;
    std::uint32_t addr = 0;
    std::string mnemonic;              // lowercase, empty for pure labels
    std::vector<std::string> operands;
};

// ------------------------------------------------------------- assembler

class Assembler {
public:
    explicit Assembler(std::string_view src) : src_(src) {}

    Program run() {
        pass1();
        pass2();
        return flatten();
    }

private:
    // ---- pass 1: layout + symbol table --------------------------------

    void pass1() {
        std::uint32_t pc = 0;
        bool origin_set = false;
        unsigned lineno = 0;
        std::size_t start = 0;
        while (start <= src_.size()) {
            const std::size_t nl = src_.find('\n', start);
            std::string line(src_.substr(
                start, nl == std::string_view::npos ? src_.size() - start
                                                    : nl - start));
            start = (nl == std::string_view::npos) ? src_.size() + 1 : nl + 1;
            ++lineno;

            // Strip comments.
            for (const char c : {'#', ';'}) {
                const auto p = line.find(c);
                if (p != std::string::npos) line.resize(p);
            }
            std::string text = strip(line);
            if (text.empty()) continue;

            // Labels (possibly several on one line).
            while (true) {
                const auto colon = text.find(':');
                if (colon == std::string::npos) break;
                const std::string label = strip(text.substr(0, colon));
                if (label.empty() ||
                    !std::all_of(label.begin(), label.end(), [](char c) {
                        return std::isalnum(static_cast<unsigned char>(c)) ||
                               c == '_' || c == '.';
                    })) {
                    break;  // not a label — maybe an operand with ':'? reject later
                }
                if (syms_.count(label) != 0) {
                    throw AsmError(lineno, "duplicate label '" + label + "'");
                }
                syms_[label] = pc;
                text = strip(text.substr(colon + 1));
            }
            if (text.empty()) continue;

            // Mnemonic + operand string.
            const auto sp = text.find_first_of(" \t");
            Stmt st;
            st.line = lineno;
            st.mnemonic = lower(text.substr(0, sp));
            if (sp != std::string::npos) {
                st.operands = split_operands(text.substr(sp + 1));
            }

            if (st.mnemonic == ".org") {
                if (st.operands.size() != 1) {
                    throw AsmError(lineno, ".org needs one operand");
                }
                pc = eval32(st.operands[0], lineno);
                if (!origin_set) {
                    origin_ = pc;
                    origin_set = true;
                }
                origin_ = std::min(origin_, pc);
                continue;
            }
            if (st.mnemonic == ".equ") {
                if (st.operands.size() != 2) {
                    throw AsmError(lineno, ".equ needs name, value");
                }
                syms_[st.operands[0]] = eval32(st.operands[1], lineno);
                continue;
            }
            if (st.mnemonic == ".align") {
                const std::uint32_t a = eval32(st.operands.at(0), lineno);
                if (a == 0 || (a & (a - 1)) != 0) {
                    throw AsmError(lineno, ".align needs a power of two");
                }
                pc = (pc + a - 1) & ~(a - 1);
                continue;
            }

            st.addr = pc;
            if (st.mnemonic == ".word") {
                pc += 4 * static_cast<std::uint32_t>(st.operands.size());
            } else if (st.mnemonic == ".space") {
                const std::uint32_t n = eval32(st.operands.at(0), lineno);
                if (n % 4 != 0) {
                    throw AsmError(lineno, ".space must be word-aligned");
                }
                pc += n;
            } else {
                pc += 4;  // every instruction is one word
            }
            stmts_.push_back(std::move(st));
            if (!origin_set) {
                origin_ = 0;
                origin_set = true;
            }
        }
        end_ = pc;
        for (const Stmt& st : stmts_) end_ = std::max(end_, next_addr(st));
    }

    static std::uint32_t next_addr(const Stmt& st) {
        if (st.mnemonic == ".word") {
            return st.addr + 4 * static_cast<std::uint32_t>(st.operands.size());
        }
        return st.addr + 4;  // .space handled via pass1 pc; emitted as zeros
    }

    // ---- pass 2: encoding ----------------------------------------------

    void pass2() {
        for (const Stmt& st : stmts_) encode(st);
    }

    std::uint32_t eval32(const std::string& e, unsigned line) const {
        return static_cast<std::uint32_t>(ExprEval(e, syms_, line).eval());
    }

    std::int64_t evals(const std::string& e, unsigned line) const {
        return ExprEval(e, syms_, line).eval();
    }

    /// Parse a register operand r0..r31 (bare numbers also accepted).
    std::uint32_t reg(const Stmt& st, std::size_t i) const {
        if (i >= st.operands.size()) {
            throw AsmError(st.line, st.mnemonic + ": missing operand");
        }
        std::string t = lower(st.operands[i]);
        if (!t.empty() && t[0] == 'r') t.erase(0, 1);
        try {
            const unsigned long v = std::stoul(t);
            if (v > 31) throw AsmError(st.line, "register out of range");
            return static_cast<std::uint32_t>(v);
        } catch (const std::invalid_argument&) {
            throw AsmError(st.line, "bad register '" + st.operands[i] + "'");
        }
    }

    /// Parse a displacement operand 'd(rA)'.
    void disp(const Stmt& st, std::size_t i, std::int64_t& d,
              std::uint32_t& ra) const {
        if (i >= st.operands.size()) {
            throw AsmError(st.line, st.mnemonic + ": missing operand");
        }
        const std::string& t = st.operands[i];
        const auto open = t.rfind('(');
        if (open == std::string::npos || t.back() != ')') {
            throw AsmError(st.line, "expected d(rA), got '" + t + "'");
        }
        const std::string dtext = strip(t.substr(0, open));
        d = dtext.empty() ? 0 : evals(dtext, st.line);
        std::string rtext = lower(strip(t.substr(open + 1, t.size() - open - 2)));
        if (!rtext.empty() && rtext[0] == 'r') rtext.erase(0, 1);
        ra = static_cast<std::uint32_t>(std::stoul(rtext));
        if (ra > 31) throw AsmError(st.line, "register out of range");
    }

    std::int64_t imm(const Stmt& st, std::size_t i) const {
        if (i >= st.operands.size()) {
            throw AsmError(st.line, st.mnemonic + ": missing operand");
        }
        return evals(st.operands[i], st.line);
    }

    void check_simm16(const Stmt& st, std::int64_t v) const {
        if (v < -32768 || v > 32767) {
            throw AsmError(st.line, "immediate out of signed 16-bit range");
        }
    }
    void check_uimm16(const Stmt& st, std::int64_t v) const {
        if (v < 0 || v > 0xFFFF) {
            throw AsmError(st.line, "immediate out of unsigned 16-bit range");
        }
    }

    void emit(std::uint32_t addr, std::uint32_t word) { image_[addr] = word; }

    // D-form: op | rT | rA | imm16
    std::uint32_t dform(std::uint32_t op, std::uint32_t rt, std::uint32_t ra,
                        std::uint32_t imm16) const {
        return (op << 26) | (rt << 21) | (ra << 16) | (imm16 & 0xFFFF);
    }

    // X-form: 31 | rT | rA | rB | xo | rc
    std::uint32_t xform(std::uint32_t rt, std::uint32_t ra, std::uint32_t rb,
                        std::uint32_t xo, bool rc = false) const {
        return (31u << 26) | (rt << 21) | (ra << 16) | (rb << 11) | (xo << 1) |
               (rc ? 1 : 0);
    }

    void encode_branch_cond(const Stmt& st, std::uint32_t bo, std::uint32_t bi) {
        const std::int64_t target = imm(st, st.operands.size() - 1);
        const std::int64_t off = target - static_cast<std::int64_t>(st.addr);
        if (off < -32768 || off > 32767 || (off & 3) != 0) {
            throw AsmError(st.line, "conditional branch target out of range");
        }
        emit(st.addr, (16u << 26) | (bo << 21) | (bi << 16) |
                          (static_cast<std::uint32_t>(off) & 0xFFFC));
    }

    void encode(const Stmt& st) {
        const std::string& m = st.mnemonic;
        const unsigned L = st.line;

        if (m == ".word") {
            for (std::size_t i = 0; i < st.operands.size(); ++i) {
                emit(st.addr + 4 * static_cast<std::uint32_t>(i),
                     eval32(st.operands[i], L));
            }
            return;
        }
        if (m == ".space") return;  // zeros by default

        // ---- D-form arithmetic/logical ---------------------------------
        if (m == "addi" || m == "addis" || m == "mulli" || m == "subfic" ||
            m == "addic") {
            const std::uint32_t rt = reg(st, 0);
            const std::uint32_t ra = reg(st, 1);
            const std::int64_t v = imm(st, 2);
            check_simm16(st, v);
            const std::uint32_t op = m == "addi"    ? OP_ADDI
                                     : m == "addis" ? OP_ADDIS
                                     : m == "mulli" ? OP_MULLI
                                     : m == "addic" ? OP_ADDIC
                                                    : OP_SUBFIC;
            emit(st.addr, dform(op, rt, ra, static_cast<std::uint32_t>(v)));
            return;
        }
        if (m == "li") {
            const std::uint32_t rt = reg(st, 0);
            const std::int64_t v = imm(st, 1);
            check_simm16(st, v);
            emit(st.addr, dform(OP_ADDI, rt, 0, static_cast<std::uint32_t>(v)));
            return;
        }
        if (m == "lis") {
            const std::uint32_t rt = reg(st, 0);
            const std::int64_t v = imm(st, 1);
            check_uimm16(st, v & 0xFFFF);
            emit(st.addr, dform(OP_ADDIS, rt, 0, static_cast<std::uint32_t>(v)));
            return;
        }
        if (m == "nop") {
            emit(st.addr, dform(OP_ORI, 0, 0, 0));
            return;
        }
        if (m == "ori" || m == "oris" || m == "xori" || m == "xoris" ||
            m == "andi." || m == "andis.") {
            // Syntax: op rA, rS, uimm — note rS goes in the rT slot.
            const std::uint32_t ra = reg(st, 0);
            const std::uint32_t rs = reg(st, 1);
            const std::int64_t v = imm(st, 2);
            check_uimm16(st, v);
            const std::uint32_t op = m == "ori"     ? OP_ORI
                                     : m == "oris"  ? OP_ORIS
                                     : m == "xori"  ? OP_XORI
                                     : m == "xoris" ? OP_XORIS
                                     : m == "andi." ? OP_ANDI
                                                    : OP_ANDIS;
            emit(st.addr, dform(op, rs, ra, static_cast<std::uint32_t>(v)));
            return;
        }

        // ---- X/XO-form ALU ----------------------------------------------
        if (m == "add" || m == "subf" || m == "mullw" || m == "divw" ||
            m == "divwu" || m == "add." || m == "subf.") {
            const bool rc = m.back() == '.';
            const std::string base = rc ? m.substr(0, m.size() - 1) : m;
            const std::uint32_t rt = reg(st, 0);
            const std::uint32_t ra = reg(st, 1);
            const std::uint32_t rb = reg(st, 2);
            const std::uint32_t xo = base == "add"     ? X_ADD
                                     : base == "subf"  ? X_SUBF
                                     : base == "mullw" ? X_MULLW
                                     : base == "divw"  ? X_DIVW
                                                       : X_DIVWU;
            emit(st.addr, xform(rt, ra, rb, xo, rc));
            return;
        }
        if (m == "sub") {  // sub rD,rA,rB == subf rD,rB,rA
            emit(st.addr, xform(reg(st, 0), reg(st, 2), reg(st, 1), X_SUBF));
            return;
        }
        if (m == "neg") {
            emit(st.addr, xform(reg(st, 0), reg(st, 1), 0, X_NEG));
            return;
        }
        if (m == "and" || m == "or" || m == "xor" || m == "nor" ||
            m == "andc" || m == "slw" || m == "srw" || m == "sraw" ||
            m == "and." || m == "or.") {
            const bool rc = m.back() == '.';
            const std::string base = rc ? m.substr(0, m.size() - 1) : m;
            // Syntax: op rA, rS, rB — rS goes in the rT slot.
            const std::uint32_t ra = reg(st, 0);
            const std::uint32_t rs = reg(st, 1);
            const std::uint32_t rb = reg(st, 2);
            const std::uint32_t xo = base == "and"    ? X_AND
                                     : base == "or"   ? X_OR
                                     : base == "xor"  ? X_XOR
                                     : base == "nor"  ? X_NOR
                                     : base == "andc" ? X_ANDC
                                     : base == "slw"  ? X_SLW
                                     : base == "srw"  ? X_SRW
                                                      : X_SRAW;
            emit(st.addr, xform(rs, ra, rb, xo, rc));
            return;
        }
        if (m == "mr") {
            const std::uint32_t ra = reg(st, 0);
            const std::uint32_t rs = reg(st, 1);
            emit(st.addr, xform(rs, ra, rs, X_OR));
            return;
        }
        if (m == "not") {
            const std::uint32_t ra = reg(st, 0);
            const std::uint32_t rs = reg(st, 1);
            emit(st.addr, xform(rs, ra, rs, X_NOR));
            return;
        }
        if (m == "srawi") {
            const std::uint32_t ra = reg(st, 0);
            const std::uint32_t rs = reg(st, 1);
            const auto sh = static_cast<std::uint32_t>(imm(st, 2)) & 31;
            emit(st.addr, xform(rs, ra, sh, X_SRAWI));
            return;
        }
        if (m == "rlwinm") {
            const std::uint32_t ra = reg(st, 0);
            const std::uint32_t rs = reg(st, 1);
            const auto sh = static_cast<std::uint32_t>(imm(st, 2)) & 31;
            const auto mb = static_cast<std::uint32_t>(imm(st, 3)) & 31;
            const auto me = static_cast<std::uint32_t>(imm(st, 4)) & 31;
            emit(st.addr, (21u << 26) | (rs << 21) | (ra << 16) | (sh << 11) |
                              (mb << 6) | (me << 1));
            return;
        }
        if (m == "slwi" || m == "srwi") {
            const std::uint32_t ra = reg(st, 0);
            const std::uint32_t rs = reg(st, 1);
            const auto n = static_cast<std::uint32_t>(imm(st, 2)) & 31;
            std::uint32_t sh;
            std::uint32_t mb;
            std::uint32_t me;
            if (m == "slwi") {
                sh = n;
                mb = 0;
                me = 31 - n;
            } else {
                sh = (32 - n) & 31;
                mb = n;
                me = 31;
            }
            emit(st.addr, (21u << 26) | (rs << 21) | (ra << 16) | (sh << 11) |
                              (mb << 6) | (me << 1));
            return;
        }

        // ---- compare ------------------------------------------------------
        if (m == "cmpw" || m == "cmplw") {
            const std::uint32_t ra = reg(st, 0);
            const std::uint32_t rb = reg(st, 1);
            emit(st.addr,
                 xform(0, ra, rb, m == "cmpw" ? X_CMP : X_CMPL));
            return;
        }
        if (m == "cmpwi" || m == "cmplwi") {
            const std::uint32_t ra = reg(st, 0);
            const std::int64_t v = imm(st, 1);
            if (m == "cmpwi") {
                check_simm16(st, v);
                emit(st.addr, dform(OP_CMPI, 0, ra, static_cast<std::uint32_t>(v)));
            } else {
                check_uimm16(st, v);
                emit(st.addr, dform(OP_CMPLI, 0, ra, static_cast<std::uint32_t>(v)));
            }
            return;
        }

        // ---- loads / stores -----------------------------------------------
        static const std::map<std::string, std::uint32_t> kMem = {
            {"lwz", OP_LWZ},   {"lwzu", OP_LWZU}, {"lbz", OP_LBZ},
            {"lbzu", OP_LBZU}, {"stw", OP_STW},   {"stwu", OP_STWU},
            {"stb", OP_STB},   {"stbu", OP_STBU}, {"lhz", OP_LHZ},
            {"lhzu", OP_LHZU}, {"sth", OP_STH},   {"sthu", OP_STHU},
        };
        if (const auto it = kMem.find(m); it != kMem.end()) {
            const std::uint32_t rt = reg(st, 0);
            std::int64_t d = 0;
            std::uint32_t ra = 0;
            disp(st, 1, d, ra);
            check_simm16(st, d);
            emit(st.addr,
                 dform(it->second, rt, ra, static_cast<std::uint32_t>(d)));
            return;
        }

        // ---- branches -------------------------------------------------------
        if (m == "b" || m == "bl") {
            const std::int64_t target = imm(st, 0);
            const std::int64_t off = target - static_cast<std::int64_t>(st.addr);
            if (off < -(1 << 25) || off >= (1 << 25) || (off & 3) != 0) {
                throw AsmError(L, "branch target out of range");
            }
            emit(st.addr, (18u << 26) |
                              (static_cast<std::uint32_t>(off) & 0x03FF'FFFC) |
                              (m == "bl" ? 1u : 0u));
            return;
        }
        if (m == "beq") return encode_branch_cond(st, 12, 2);
        if (m == "bne") return encode_branch_cond(st, 4, 2);
        if (m == "blt") return encode_branch_cond(st, 12, 0);
        if (m == "bge") return encode_branch_cond(st, 4, 0);
        if (m == "bgt") return encode_branch_cond(st, 12, 1);
        if (m == "ble") return encode_branch_cond(st, 4, 1);
        if (m == "bdnz") return encode_branch_cond(st, 16, 0);
        if (m == "blr") {
            emit(st.addr, (19u << 26) | (20u << 21) | (XL_BCLR << 1));
            return;
        }
        if (m == "bctr" || m == "bctrl") {
            emit(st.addr, (19u << 26) | (20u << 21) | (XL_BCCTR << 1) |
                              (m == "bctrl" ? 1u : 0u));
            return;
        }
        if (m == "rfi") {
            emit(st.addr, (19u << 26) | (XL_RFI << 1));
            return;
        }
        if (m == "isync") {
            emit(st.addr, (19u << 26) | (XL_ISYNC << 1));
            return;
        }
        if (m == "sync") {
            emit(st.addr, xform(0, 0, 0, X_SYNC));
            return;
        }
        if (m == "sc") {
            // Power encoding: primary op 17 with bit 30 set.
            emit(st.addr, (17u << 26) | 2u);
            return;
        }

        // ---- system registers ----------------------------------------------
        if (m == "mtspr") {
            const auto spr = static_cast<std::uint32_t>(imm(st, 0));
            const std::uint32_t rs = reg(st, 1);
            emit(st.addr, (31u << 26) | (rs << 21) | split_sprf(spr) |
                              (X_MTSPR << 1));
            return;
        }
        if (m == "mfspr") {
            const std::uint32_t rt = reg(st, 0);
            const auto spr = static_cast<std::uint32_t>(imm(st, 1));
            emit(st.addr, (31u << 26) | (rt << 21) | split_sprf(spr) |
                              (X_MFSPR << 1));
            return;
        }
        if (m == "mtlr" || m == "mtctr") {
            const std::uint32_t spr = m == "mtlr" ? SPR_LR : SPR_CTR;
            emit(st.addr, (31u << 26) | (reg(st, 0) << 21) | split_sprf(spr) |
                              (X_MTSPR << 1));
            return;
        }
        if (m == "mflr" || m == "mfctr") {
            const std::uint32_t spr = m == "mflr" ? SPR_LR : SPR_CTR;
            emit(st.addr, (31u << 26) | (reg(st, 0) << 21) | split_sprf(spr) |
                              (X_MFSPR << 1));
            return;
        }
        if (m == "mfcr") {
            emit(st.addr, xform(reg(st, 0), 0, 0, X_MFCR));
            return;
        }
        if (m == "mtcr") {  // mtcrf 0xFF, rS
            emit(st.addr, (31u << 26) | (reg(st, 0) << 21) | (0xFFu << 12) |
                              (X_MTCRF << 1));
            return;
        }
        if (m == "mfmsr") {
            emit(st.addr, xform(reg(st, 0), 0, 0, X_MFMSR));
            return;
        }
        if (m == "mtmsr") {
            emit(st.addr, xform(reg(st, 0), 0, 0, X_MTMSR));
            return;
        }
        if (m == "wrteei") {
            const auto e = static_cast<std::uint32_t>(imm(st, 0)) & 1;
            emit(st.addr, (31u << 26) | (e << 15) | (X_WRTEEI << 1));
            return;
        }
        if (m == "mtdcr") {
            const auto dcrn = static_cast<std::uint32_t>(imm(st, 0));
            const std::uint32_t rs = reg(st, 1);
            emit(st.addr, (31u << 26) | (rs << 21) | split_sprf(dcrn) |
                              (X_MTDCR << 1));
            return;
        }
        if (m == "mfdcr") {
            const std::uint32_t rt = reg(st, 0);
            const auto dcrn = static_cast<std::uint32_t>(imm(st, 1));
            emit(st.addr, (31u << 26) | (rt << 21) | split_sprf(dcrn) |
                              (X_MFDCR << 1));
            return;
        }

        throw AsmError(L, "unknown mnemonic '" + m + "'");
    }

    Program flatten() {
        Program p;
        p.origin = origin_;
        p.symbols = syms_;
        if (image_.empty() && stmts_.empty()) return p;
        std::uint32_t hi = origin_;
        for (const auto& [a, _] : image_) hi = std::max(hi, a + 4);
        hi = std::max(hi, end_);
        p.words.assign((hi - origin_) / 4, 0);
        for (const auto& [a, w] : image_) p.words[(a - origin_) / 4] = w;
        return p;
    }

    std::string_view src_;
    std::vector<Stmt> stmts_;
    std::map<std::string, std::uint32_t> syms_;
    std::map<std::uint32_t, std::uint32_t> image_;
    std::uint32_t origin_ = 0;
    std::uint32_t end_ = 0;
};

}  // namespace

std::uint32_t Program::entry() const {
    const auto it = symbols.find("_start");
    return it != symbols.end() ? it->second : origin;
}

Program assemble(std::string_view source) { return Assembler(source).run(); }

}  // namespace autovision::isa
