#include "disasm.hpp"

#include <cstdarg>
#include <cstdio>

#include "ppc.hpp"

namespace autovision::isa {

namespace {

std::string fmt(const char* f, ...) {
    char buf[96];
    va_list ap;
    va_start(ap, f);
    std::vsnprintf(buf, sizeof buf, f, ap);
    va_end(ap);
    return buf;
}

[[nodiscard]] std::int32_t sext16(std::uint32_t v) {
    return static_cast<std::int16_t>(v & 0xFFFF);
}

std::string dform_rt(const char* m, std::uint32_t insn) {
    return fmt("%s r%u, r%u, %d", m, (insn >> 21) & 31, (insn >> 16) & 31,
               sext16(insn));
}

std::string dform_ra(const char* m, std::uint32_t insn) {
    // Logical D-forms: destination is rA, source in the rT slot.
    return fmt("%s r%u, r%u, 0x%X", m, (insn >> 16) & 31, (insn >> 21) & 31,
               insn & 0xFFFF);
}

std::string memform(const char* m, std::uint32_t insn) {
    return fmt("%s r%u, %d(r%u)", m, (insn >> 21) & 31, sext16(insn),
               (insn >> 16) & 31);
}

std::string xform_rt(const char* m, std::uint32_t insn, bool rc) {
    return fmt("%s%s r%u, r%u, r%u", m, rc ? "." : "", (insn >> 21) & 31,
               (insn >> 16) & 31, (insn >> 11) & 31);
}

std::string xform_ra(const char* m, std::uint32_t insn, bool rc) {
    return fmt("%s%s r%u, r%u, r%u", m, rc ? "." : "", (insn >> 16) & 31,
               (insn >> 21) & 31, (insn >> 11) & 31);
}

}  // namespace

std::string disassemble(std::uint32_t insn, std::uint32_t pc) {
    const std::uint32_t op = insn >> 26;
    const std::uint32_t rt = (insn >> 21) & 31;
    const std::uint32_t ra = (insn >> 16) & 31;
    const std::uint32_t rb = (insn >> 11) & 31;
    const bool rc = (insn & 1) != 0;

    switch (op) {
        case OP_ADDI:
            if (ra == 0) return fmt("li r%u, %d", rt, sext16(insn));
            return dform_rt("addi", insn);
        case OP_ADDIS:
            if (ra == 0) return fmt("lis r%u, 0x%X", rt, insn & 0xFFFF);
            return dform_rt("addis", insn);
        case OP_ADDIC: return dform_rt("addic", insn);
        case OP_MULLI: return dform_rt("mulli", insn);
        case OP_SUBFIC: return dform_rt("subfic", insn);
        case OP_ORI:
            if (insn == 0x60000000) return "nop";
            return dform_ra("ori", insn);
        case OP_ORIS: return dform_ra("oris", insn);
        case OP_XORI: return dform_ra("xori", insn);
        case OP_XORIS: return dform_ra("xoris", insn);
        case OP_ANDI: return dform_ra("andi.", insn);
        case OP_ANDIS: return dform_ra("andis.", insn);
        case OP_CMPI: return fmt("cmpwi r%u, %d", ra, sext16(insn));
        case OP_CMPLI: return fmt("cmplwi r%u, 0x%X", ra, insn & 0xFFFF);

        case OP_RLWINM: {
            const std::uint32_t sh = (insn >> 11) & 31;
            const std::uint32_t mb = (insn >> 6) & 31;
            const std::uint32_t me = (insn >> 1) & 31;
            if (mb == 0 && me == 31 - sh) {
                return fmt("slwi r%u, r%u, %u", ra, rt, sh);
            }
            if (me == 31 && sh == ((32 - mb) & 31)) {
                return fmt("srwi r%u, r%u, %u", ra, rt, mb);
            }
            return fmt("rlwinm r%u, r%u, %u, %u, %u", ra, rt, sh, mb, me);
        }

        case OP_LWZ: return memform("lwz", insn);
        case OP_LWZU: return memform("lwzu", insn);
        case OP_LBZ: return memform("lbz", insn);
        case OP_LBZU: return memform("lbzu", insn);
        case OP_LHZ: return memform("lhz", insn);
        case OP_LHZU: return memform("lhzu", insn);
        case OP_STW: return memform("stw", insn);
        case OP_STWU: return memform("stwu", insn);
        case OP_STB: return memform("stb", insn);
        case OP_STBU: return memform("stbu", insn);
        case OP_STH: return memform("sth", insn);
        case OP_STHU: return memform("sthu", insn);

        case OP_SC: return "sc";

        case OP_B: {
            const std::int32_t li =
                (static_cast<std::int32_t>(insn << 6) >> 6) & ~3;
            const std::uint32_t target =
                (insn & 2) ? static_cast<std::uint32_t>(li)
                           : pc + static_cast<std::uint32_t>(li);
            return fmt("%s 0x%X", (insn & 1) ? "bl" : "b", target);
        }
        case OP_BC: {
            const std::uint32_t bo = rt;
            const std::uint32_t bi = ra;
            const std::uint32_t target =
                pc + static_cast<std::uint32_t>(sext16(insn & 0xFFFC));
            if (bo == 16 && bi == 0) return fmt("bdnz 0x%X", target);
            static const char* kTrue[] = {"blt", "bgt", "beq", "bso"};
            static const char* kFalse[] = {"bge", "ble", "bne", "bns"};
            if (bo == 12 && bi < 4) return fmt("%s 0x%X", kTrue[bi], target);
            if (bo == 4 && bi < 4) return fmt("%s 0x%X", kFalse[bi], target);
            return fmt(".word 0x%08X", insn);
        }

        case OP_XL: {
            const std::uint32_t xo = (insn >> 1) & 0x3FF;
            if (xo == XL_BCLR && rt == 20) return "blr";
            if (xo == XL_BCCTR && rt == 20) {
                return (insn & 1) ? "bctrl" : "bctr";
            }
            if (xo == XL_RFI) return "rfi";
            if (xo == XL_ISYNC) return "isync";
            return fmt(".word 0x%08X", insn);
        }

        case OP_X: {
            const std::uint32_t xo = (insn >> 1) & 0x3FF;
            switch (xo) {
                case X_ADD: return xform_rt("add", insn, rc);
                case X_SUBF: return xform_rt("subf", insn, rc);
                case X_MULLW: return xform_rt("mullw", insn, rc);
                case X_DIVW: return xform_rt("divw", insn, rc);
                case X_DIVWU: return xform_rt("divwu", insn, rc);
                case X_NEG: return fmt("neg r%u, r%u", rt, ra);
                case X_AND: return xform_ra("and", insn, rc);
                case X_OR:
                    if (rt == rb) return fmt("mr r%u, r%u", ra, rt);
                    return xform_ra("or", insn, rc);
                case X_XOR: return xform_ra("xor", insn, rc);
                case X_NOR:
                    if (rt == rb) return fmt("not r%u, r%u", ra, rt);
                    return xform_ra("nor", insn, rc);
                case X_ANDC: return xform_ra("andc", insn, rc);
                case X_SLW: return xform_ra("slw", insn, rc);
                case X_SRW: return xform_ra("srw", insn, rc);
                case X_SRAW: return xform_ra("sraw", insn, rc);
                case X_SRAWI:
                    return fmt("srawi r%u, r%u, %u", ra, rt, rb);
                case X_CMP: return fmt("cmpw r%u, r%u", ra, rb);
                case X_CMPL: return fmt("cmplw r%u, r%u", ra, rb);
                case X_MFCR: return fmt("mfcr r%u", rt);
                case X_MTCRF: return fmt("mtcr r%u", rt);
                case X_MFMSR: return fmt("mfmsr r%u", rt);
                case X_MTMSR: return fmt("mtmsr r%u", rt);
                case X_SYNC: return "sync";
                case X_WRTEEI:
                    return fmt("wrteei %u", (insn >> 15) & 1);
                case X_MFSPR: {
                    const std::uint32_t spr = unsplit_sprf(insn);
                    if (spr == SPR_LR) return fmt("mflr r%u", rt);
                    if (spr == SPR_CTR) return fmt("mfctr r%u", rt);
                    return fmt("mfspr r%u, %u", rt, spr);
                }
                case X_MTSPR: {
                    const std::uint32_t spr = unsplit_sprf(insn);
                    if (spr == SPR_LR) return fmt("mtlr r%u", rt);
                    if (spr == SPR_CTR) return fmt("mtctr r%u", rt);
                    return fmt("mtspr %u, r%u", spr, rt);
                }
                case X_MFDCR:
                    return fmt("mfdcr r%u, 0x%X", rt, unsplit_sprf(insn));
                case X_MTDCR:
                    return fmt("mtdcr 0x%X, r%u", unsplit_sprf(insn), rt);
                default: return fmt(".word 0x%08X", insn);
            }
        }

        default: return fmt(".word 0x%08X", insn);
    }
}

std::string disassemble_program(const Program& p) {
    std::string out;
    for (std::size_t i = 0; i < p.words.size(); ++i) {
        const auto addr = p.origin + 4 * static_cast<std::uint32_t>(i);
        out += fmt("%08X: %08X  ", addr, p.words[i]);
        out += disassemble(p.words[i], addr);
        out += '\n';
    }
    return out;
}

}  // namespace autovision::isa
