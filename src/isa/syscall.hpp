// Minimal syscall / host-IO layer for the ISS.
//
// Firmware traps to the host through the Power `sc` instruction; the call
// number is in r0, the single argument in r3, and the result (if any) comes
// back in r3. The CPU performs the genuine system-call SRR clobber
// (SRR0 <- next PC, SRR1 <- MSR) before dispatching here — that clobber is
// architecturally correct and is exactly what makes `sc` inside an ISR a
// software bug (bug.sw.5): the interrupt's own return state is destroyed.
//
// Services are deliberately tiny — enough for the driving-firmware suite to
// print progress, read simulated time, yield its scheduling quantum, and
// terminate a run with an exit code — and fully deterministic: `clock`
// returns simulated nanoseconds, never host time.
#pragma once

#include <array>
#include <cstdint>
#include <string>

#include "decode.hpp"
#include "kernel/snapshot.hpp"

namespace autovision::isa {

/// Syscall numbers (r0 at the `sc` instruction).
enum class Syscall : std::uint32_t {
    kExit = 0,     ///< exit(r3): latch exit code, halt the CPU
    kPutchar = 1,  ///< putchar(r3): append low byte to the host console
    kClock = 2,    ///< r3 <- low 32 bits of simulated time (ns)
    kYield = 3,    ///< scheduling hint; arch no-op, counted
};

inline constexpr std::uint32_t kNumSyscalls = 4;

/// Result r3 for an unknown syscall number.
inline constexpr std::uint32_t kSyscallEnosys = 0xFFFF'FFFFu;

/// Host side of the trap: console sink, exit latch, per-service counters.
/// Owned by the CPU and serialized inside its checkpoint section so a
/// restored run reproduces console output byte-for-byte from the save point.
class HostIo {
public:
    /// Service one `sc`. `st` is the architectural state *after* the SRR
    /// clobber with pc already past the sc; r3 is updated in place.
    /// Returns true when the call was kExit (the CPU halts).
    bool dispatch(ArchRegs& st, std::uint32_t clock_lo, bool in_isr) {
        const std::uint32_t num = st.gpr[0];
        if (in_isr) ++isr_calls_;
        if (num >= kNumSyscalls) {
            ++unknown_calls_;
            st.gpr[3] = kSyscallEnosys;
            return false;
        }
        ++calls_[num];
        switch (static_cast<Syscall>(num)) {
            case Syscall::kExit:
                exited_ = true;
                exit_code_ = st.gpr[3];
                return true;
            case Syscall::kPutchar:
                if (out_.size() < kMaxOutBytes) {
                    out_.push_back(static_cast<char>(st.gpr[3] & 0xFF));
                } else {
                    ++dropped_;
                }
                break;
            case Syscall::kClock: st.gpr[3] = clock_lo; break;
            case Syscall::kYield: break;
        }
        return false;
    }

    [[nodiscard]] const std::string& out() const { return out_; }
    [[nodiscard]] bool exited() const { return exited_; }
    [[nodiscard]] std::uint32_t exit_code() const { return exit_code_; }
    [[nodiscard]] std::uint64_t calls(Syscall s) const {
        return calls_[static_cast<std::uint32_t>(s)];
    }
    [[nodiscard]] std::uint64_t total_calls() const {
        std::uint64_t n = unknown_calls_;
        for (auto c : calls_) n += c;
        return n;
    }
    [[nodiscard]] std::uint64_t unknown_calls() const {
        return unknown_calls_;
    }
    [[nodiscard]] std::uint64_t isr_calls() const { return isr_calls_; }
    [[nodiscard]] std::uint64_t dropped() const { return dropped_; }

    void ckpt_save(rtlsim::SnapWriter& w) const;
    [[nodiscard]] bool ckpt_restore(rtlsim::SnapReader& r);

private:
    /// Console cap keeps a runaway putchar loop from growing snapshots and
    /// memory without bound; overflow is counted, not silently lost.
    static constexpr std::size_t kMaxOutBytes = 64 * 1024;

    std::string out_;
    std::uint64_t dropped_ = 0;
    bool exited_ = false;
    std::uint32_t exit_code_ = 0;
    std::array<std::uint64_t, kNumSyscalls> calls_{};
    std::uint64_t unknown_calls_ = 0;
    std::uint64_t isr_calls_ = 0;
};

}  // namespace autovision::isa
