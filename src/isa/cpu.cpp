#include "cpu.hpp"

#include "ppc.hpp"

namespace autovision::isa {

using rtlsim::is1;
using rtlsim::is_unknown;
using rtlsim::Word;

namespace {

[[nodiscard]] std::int32_t sext16(std::uint32_t v) {
    return static_cast<std::int16_t>(v & 0xFFFF);
}

}  // namespace

PpcCpu::PpcCpu(Scheduler& sch, const std::string& name, Signal<Logic>& clk,
               Signal<Logic>& rst, PlbMasterPort& port, DcrChain& dcr,
               Memory& imem, Signal<Logic>& ext_irq, Config cfg)
    : Module(sch, name),
      cfg_(cfg),
      clk_(clk),
      rst_(rst),
      dcr_(dcr),
      imem_(imem),
      ext_irq_(ext_irq),
      dma_(port, /*burst_limit=*/1) {
    pc_ = cfg_.reset_pc;
    sync_proc("exec", [this] { on_clock(); }, {rtlsim::posedge(clk_)});
}

void PpcCpu::set_cr0_signed(std::int32_t v) {
    cr0_ = (v < 0) ? CR0_LT : (v > 0) ? CR0_GT : CR0_EQ;
}

void PpcCpu::illegal(std::uint32_t insn, const std::string& why) {
    char buf[64];
    std::snprintf(buf, sizeof buf, "illegal instruction 0x%08x at 0x%08x (%s)",
                  insn, pc_ - 4, why.c_str());
    report(buf);
    fatal_ = true;
    sch_.request_stop(full_name() + ": " + buf);
}

void PpcCpu::take_interrupt() {
    srr0_ = pc_;
    srr1_ = msr_;
    msr_ &= ~MSR_EE;
    pc_ = VEC_EXTERNAL;
    halted_ = false;
    ++irqs_;
}

void PpcCpu::on_clock() {
    if (is1(rst_.read())) {
        in_reset_ = true;
        return;
    }
    if (in_reset_) {
        // Leaving reset: start clean at the reset vector.
        in_reset_ = false;
        pc_ = cfg_.reset_pc;
        msr_ = 0;
        halted_ = false;
        fatal_ = false;
        mem_busy_ = false;
        dcr_busy_ = false;
        dma_.reset();
    }
    if (fatal_) return;

    // Service an in-flight data transaction first.
    if (mem_busy_) {
        dma_.step();
        return;
    }
    if (dcr_busy_) return;  // completion callback clears the flag

    // Sample the external interrupt between instructions.
    const Logic irq = ext_irq_.read();
    if (is_unknown(irq)) {
        if (x_reports_ < cfg_.x_report_limit) {
            ++x_reports_;
            report("X on external interrupt input");
        }
    } else if (is1(irq) && (msr_ & MSR_EE) != 0) {
        take_interrupt();
        return;  // vector fetch starts next cycle
    }

    // Fetch (cached; backdoor read — see header timing model).
    if (!imem_.claims(pc_) || (pc_ & 3u) != 0) {
        char buf[48];
        std::snprintf(buf, sizeof buf, "bad fetch address 0x%08x", pc_);
        report(buf);
        fatal_ = true;
        sch_.request_stop(full_name() + ": bad fetch");
        return;
    }
    bool ok = true;
    const std::uint32_t insn = imem_.peek_u32(pc_, &ok);
    if (!ok) {
        char buf[56];
        std::snprintf(buf, sizeof buf, "fetched X/corrupted word at 0x%08x",
                      pc_);
        report(buf);
        fatal_ = true;
        sch_.request_stop(full_name() + ": corrupted instruction memory");
        return;
    }
    if (trace) trace(pc_, insn);
    pc_ += 4;
    ++icount_;
    execute(insn);
}

void PpcCpu::finish_mfdcr(Word w) {
    if (w.has_unknown() && x_reports_ < cfg_.x_report_limit) {
        ++x_reports_;
        report("mfdcr " + std::to_string(dcrop_.dcrn) +
               " returned X (broken daisy chain?)");
    }
    gpr_[dcrop_.rt] = static_cast<std::uint32_t>(w.to_u64());
    dcr_busy_ = false;
    dcrop_.kind = DcrOp::Kind::None;
}

void PpcCpu::finish_load(Word w) {
    if (w.has_unknown() && x_reports_ < cfg_.x_report_limit) {
        ++x_reports_;
        char buf[56];
        std::snprintf(buf, sizeof buf, "load of X/corrupted data at 0x%08x",
                      mem_.ea);
        report(buf);
    }
    const auto full = static_cast<std::uint32_t>(w.to_u64());
    std::uint32_t v = full;
    if (mem_.bytes == 1) {
        v = (full >> ((3 - (mem_.ea & 3u)) * 8)) & 0xFF;
    } else if (mem_.bytes == 2) {
        v = (full >> ((mem_.ea & 2u) ? 0 : 16)) & 0xFFFF;
    }
    gpr_[mem_.rt] = v;
}

void PpcCpu::rmw_merge(Word w) {
    const auto old = static_cast<std::uint32_t>(w.to_u64());
    std::uint32_t merged = old;
    if (mem_.bytes == 1) {
        const unsigned sh = (3 - (mem_.ea & 3u)) * 8;
        merged = (old & ~(0xFFu << sh)) | ((mem_.value & 0xFF) << sh);
    } else {
        const unsigned sh = (mem_.ea & 2u) ? 0 : 16;
        merged = (old & ~(0xFFFFu << sh)) | ((mem_.value & 0xFFFF) << sh);
    }
    mem_.value = merged;
}

void PpcCpu::issue_rmw_write() {
    mem_.kind = MemOp::Kind::RmwWrite;
    dma_.start_write(
        mem_.ea & ~3u, 1, [this](std::uint32_t) { return Word{mem_.value}; },
        [this] {
            mem_busy_ = false;
            mem_.kind = MemOp::Kind::None;
        });
}

void PpcCpu::load(std::uint32_t ea, unsigned bytes, std::uint32_t rt) {
    mem_busy_ = true;
    mem_ = MemOp{MemOp::Kind::Load, ea, bytes, rt, 0};
    dma_.start_read(
        ea & ~3u, 1, [this](std::uint32_t, Word w) { finish_load(w); },
        [this] {
            mem_busy_ = false;
            mem_.kind = MemOp::Kind::None;
        });
}

void PpcCpu::store(std::uint32_t ea, unsigned bytes, std::uint32_t value) {
    mem_busy_ = true;
    if (bytes == 4) {
        mem_ = MemOp{MemOp::Kind::Store4, ea, 4, 0, value};
        dma_.start_write(
            ea & ~3u, 1,
            [this](std::uint32_t) { return Word{mem_.value}; }, [this] {
                mem_busy_ = false;
                mem_.kind = MemOp::Kind::None;
            });
        return;
    }
    // Sub-word store: read-modify-write through the bus (the model's
    // substitute for byte enables; see header).
    mem_ = MemOp{MemOp::Kind::RmwRead, ea, bytes, 0, value};
    dma_.start_read(
        ea & ~3u, 1, [this](std::uint32_t, Word w) { rmw_merge(w); },
        [this] { issue_rmw_write(); });
}

void PpcCpu::ckpt_save(rtlsim::SnapWriter& w) const {
    dma_.ckpt_save(w);
    for (std::uint32_t g : gpr_) w.u32(g);
    w.u32(pc_);
    w.u32(msr_);
    w.u32(cr0_);
    w.u32(lr_);
    w.u32(ctr_);
    w.u32(xer_);
    w.u32(srr0_);
    w.u32(srr1_);
    w.bool8(in_reset_);
    w.bool8(halted_);
    w.bool8(fatal_);
    w.bool8(mem_busy_);
    w.bool8(dcr_busy_);
    w.u64(icount_);
    w.u64(irqs_);
    w.u32(x_reports_);
    w.u8(static_cast<std::uint8_t>(mem_.kind));
    w.u32(mem_.ea);
    w.u32(mem_.bytes);
    w.u32(mem_.rt);
    w.u32(mem_.value);
    w.u8(static_cast<std::uint8_t>(dcrop_.kind));
    w.u32(dcrop_.dcrn);
    w.u32(dcrop_.rt);
}

bool PpcCpu::ckpt_restore(rtlsim::SnapReader& r) {
    if (!dma_.ckpt_restore(r)) return false;
    for (std::uint32_t& g : gpr_) g = r.u32();
    pc_ = r.u32();
    msr_ = r.u32();
    cr0_ = r.u32();
    lr_ = r.u32();
    ctr_ = r.u32();
    xer_ = r.u32();
    srr0_ = r.u32();
    srr1_ = r.u32();
    in_reset_ = r.bool8();
    halted_ = r.bool8();
    fatal_ = r.bool8();
    mem_busy_ = r.bool8();
    dcr_busy_ = r.bool8();
    icount_ = r.u64();
    irqs_ = r.u64();
    x_reports_ = r.u32();
    const std::uint8_t mk = r.u8();
    if (mk > static_cast<std::uint8_t>(MemOp::Kind::RmwWrite)) return false;
    mem_.kind = static_cast<MemOp::Kind>(mk);
    mem_.ea = r.u32();
    mem_.bytes = r.u32();
    mem_.rt = r.u32();
    mem_.value = r.u32();
    const std::uint8_t dk = r.u8();
    if (dk > static_cast<std::uint8_t>(DcrOp::Kind::Write)) return false;
    dcrop_.kind = static_cast<DcrOp::Kind>(dk);
    dcrop_.dcrn = r.u32();
    dcrop_.rt = r.u32();
    if (!r.ok_so_far()) return false;
    if (mem_.rt >= gpr_.size() || dcrop_.rt >= gpr_.size()) return false;
    if (mem_busy_ != dma_.busy()) return false;
    if (mem_busy_ && mem_.kind == MemOp::Kind::None) return false;
    // Re-arm whichever completion closures the open operation needs.
    switch (mem_.kind) {
        case MemOp::Kind::Load:
            dma_.ckpt_rearm(
                [this](std::uint32_t, Word w) { finish_load(w); }, {},
                [this] {
                    mem_busy_ = false;
                    mem_.kind = MemOp::Kind::None;
                });
            break;
        case MemOp::Kind::RmwRead:
            dma_.ckpt_rearm([this](std::uint32_t, Word w) { rmw_merge(w); },
                            {}, [this] { issue_rmw_write(); });
            break;
        case MemOp::Kind::Store4:
        case MemOp::Kind::RmwWrite:
            dma_.ckpt_rearm(
                {}, [this](std::uint32_t) { return Word{mem_.value}; },
                [this] {
                    mem_busy_ = false;
                    mem_.kind = MemOp::Kind::None;
                });
            break;
        case MemOp::Kind::None: break;
    }
    if (dcr_busy_) {
        switch (dcrop_.kind) {
            case DcrOp::Kind::Read:
                dcr_.ckpt_rearm_read([this](Word w) { finish_mfdcr(w); });
                break;
            case DcrOp::Kind::Write:
                dcr_.ckpt_rearm_write([this] {
                    dcr_busy_ = false;
                    dcrop_.kind = DcrOp::Kind::None;
                });
                break;
            case DcrOp::Kind::None: return false;
        }
    }
    return true;
}

void PpcCpu::execute(std::uint32_t insn) {
    const std::uint32_t op = insn >> 26;
    const std::uint32_t rt = (insn >> 21) & 0x1F;
    const std::uint32_t ra = (insn >> 16) & 0x1F;
    const std::uint32_t imm = insn & 0xFFFF;
    const std::int32_t simm = sext16(imm);
    const std::uint32_t a0 = (ra == 0) ? 0 : gpr_[ra];  // (rA|0) semantics

    switch (op) {
        case OP_ADDI: gpr_[rt] = a0 + static_cast<std::uint32_t>(simm); return;
        case OP_ADDIS: gpr_[rt] = a0 + (imm << 16); return;
        case OP_ADDIC: gpr_[rt] = gpr_[ra] + static_cast<std::uint32_t>(simm); return;
        case OP_MULLI:
            gpr_[rt] = static_cast<std::uint32_t>(
                static_cast<std::int32_t>(gpr_[ra]) * simm);
            return;
        case OP_SUBFIC:
            gpr_[rt] = static_cast<std::uint32_t>(simm) - gpr_[ra];
            return;
        case OP_ORI: gpr_[ra] = gpr_[rt] | imm; return;
        case OP_ORIS: gpr_[ra] = gpr_[rt] | (imm << 16); return;
        case OP_XORI: gpr_[ra] = gpr_[rt] ^ imm; return;
        case OP_XORIS: gpr_[ra] = gpr_[rt] ^ (imm << 16); return;
        case OP_ANDI:
            gpr_[ra] = gpr_[rt] & imm;
            set_cr0_signed(static_cast<std::int32_t>(gpr_[ra]));
            return;
        case OP_ANDIS:
            gpr_[ra] = gpr_[rt] & (imm << 16);
            set_cr0_signed(static_cast<std::int32_t>(gpr_[ra]));
            return;

        case OP_CMPI: {
            const auto a = static_cast<std::int32_t>(gpr_[ra]);
            cr0_ = (a < simm) ? CR0_LT : (a > simm) ? CR0_GT : CR0_EQ;
            return;
        }
        case OP_CMPLI: {
            const std::uint32_t a = gpr_[ra];
            cr0_ = (a < imm) ? CR0_LT : (a > imm) ? CR0_GT : CR0_EQ;
            return;
        }

        case OP_RLWINM: {
            const std::uint32_t rs = rt;
            const std::uint32_t sh = (insn >> 11) & 0x1F;
            const std::uint32_t mb = (insn >> 6) & 0x1F;
            const std::uint32_t me = (insn >> 1) & 0x1F;
            const std::uint32_t rot =
                (gpr_[rs] << sh) | (sh == 0 ? 0 : (gpr_[rs] >> (32 - sh)));
            // Power mask: 1s from bit MB through bit ME inclusive, bits
            // numbered from the MSB; MB > ME wraps.
            const std::uint32_t m_begin = ~0u >> mb;
            const std::uint32_t m_end = ~0u << (31 - me);
            const std::uint32_t mask =
                (mb <= me) ? (m_begin & m_end) : (m_begin | m_end);
            gpr_[ra] = rot & mask;
            if (insn & 1) set_cr0_signed(static_cast<std::int32_t>(gpr_[ra]));
            return;
        }

        case OP_LWZ: load(a0 + static_cast<std::uint32_t>(simm), 4, rt); return;
        case OP_LBZ: load(a0 + static_cast<std::uint32_t>(simm), 1, rt); return;
        case OP_LHZ: load(a0 + static_cast<std::uint32_t>(simm), 2, rt); return;
        case OP_LWZU: {
            const std::uint32_t ea = gpr_[ra] + static_cast<std::uint32_t>(simm);
            gpr_[ra] = ea;
            load(ea, 4, rt);
            return;
        }
        case OP_LBZU: {
            const std::uint32_t ea = gpr_[ra] + static_cast<std::uint32_t>(simm);
            gpr_[ra] = ea;
            load(ea, 1, rt);
            return;
        }
        case OP_LHZU: {
            const std::uint32_t ea = gpr_[ra] + static_cast<std::uint32_t>(simm);
            gpr_[ra] = ea;
            load(ea, 2, rt);
            return;
        }
        case OP_STW: store(a0 + static_cast<std::uint32_t>(simm), 4, gpr_[rt]); return;
        case OP_STB: store(a0 + static_cast<std::uint32_t>(simm), 1, gpr_[rt]); return;
        case OP_STH: store(a0 + static_cast<std::uint32_t>(simm), 2, gpr_[rt]); return;
        case OP_STWU: {
            const std::uint32_t ea = gpr_[ra] + static_cast<std::uint32_t>(simm);
            gpr_[ra] = ea;
            store(ea, 4, gpr_[rt]);
            return;
        }
        case OP_STBU: {
            const std::uint32_t ea = gpr_[ra] + static_cast<std::uint32_t>(simm);
            gpr_[ra] = ea;
            store(ea, 1, gpr_[rt]);
            return;
        }
        case OP_STHU: {
            const std::uint32_t ea = gpr_[ra] + static_cast<std::uint32_t>(simm);
            gpr_[ra] = ea;
            store(ea, 2, gpr_[rt]);
            return;
        }

        case OP_B: {
            const std::int32_t li =
                (static_cast<std::int32_t>(insn << 6) >> 6) & ~3;
            const std::uint32_t from = pc_ - 4;
            if (insn & 1) lr_ = pc_;  // bl
            const std::uint32_t target =
                (insn & 2) ? static_cast<std::uint32_t>(li)
                           : from + static_cast<std::uint32_t>(li);
            if (target == from && (insn & 1) == 0) halted_ = true;
            pc_ = target;
            return;
        }
        case OP_BC: {
            const std::uint32_t bo = rt;
            const std::uint32_t bi = ra;
            const std::int32_t bd = sext16(insn & 0xFFFC);
            bool ctr_ok = true;
            if ((bo & 0x4) == 0) {  // decrement CTR
                --ctr_;
                ctr_ok = ((bo & 0x2) != 0) == (ctr_ == 0);
            }
            bool cond_ok = true;
            if ((bo & 0x10) == 0) {
                const bool bit = (cr0_ >> (3 - bi)) & 1;
                cond_ok = ((bo & 0x8) != 0) == bit;
            }
            if (ctr_ok && cond_ok) {
                const std::uint32_t from = pc_ - 4;
                if (insn & 1) lr_ = pc_;
                pc_ = from + static_cast<std::uint32_t>(bd);
                if (pc_ == from && (insn & 1) == 0) halted_ = true;
            }
            return;
        }

        case OP_XL: {
            const std::uint32_t xo = (insn >> 1) & 0x3FF;
            if (xo == XL_BCLR) {
                const std::uint32_t bo = rt;
                bool cond_ok = true;
                if ((bo & 0x10) == 0) {
                    const bool bit = (cr0_ >> (3 - ra)) & 1;
                    cond_ok = ((bo & 0x8) != 0) == bit;
                }
                if (cond_ok) {
                    const std::uint32_t target = lr_ & ~3u;
                    if (insn & 1) lr_ = pc_;
                    pc_ = target;
                }
                return;
            }
            if (xo == XL_BCCTR) {
                if (insn & 1) lr_ = pc_;
                pc_ = ctr_ & ~3u;
                return;
            }
            if (xo == XL_RFI) {
                msr_ = srr1_;
                pc_ = srr0_;
                return;
            }
            if (xo == XL_ISYNC) return;
            illegal(insn, "XL");
            return;
        }

        case OP_X: exec_op31(insn); return;

        default:
            illegal(insn, "primary opcode " + std::to_string(op));
            return;
    }
}

void PpcCpu::exec_op31(std::uint32_t insn) {
    const std::uint32_t rt = (insn >> 21) & 0x1F;
    const std::uint32_t ra = (insn >> 16) & 0x1F;
    const std::uint32_t rb = (insn >> 11) & 0x1F;
    const bool rc = (insn & 1) != 0;
    const std::uint32_t xo = (insn >> 1) & 0x3FF;

    auto put = [&](std::uint32_t dest, std::uint32_t v) {
        gpr_[dest] = v;
        if (rc) set_cr0_signed(static_cast<std::int32_t>(v));
    };

    switch (xo) {
        case X_ADD: put(rt, gpr_[ra] + gpr_[rb]); return;
        case X_SUBF: put(rt, gpr_[rb] - gpr_[ra]); return;
        case X_NEG: put(rt, 0u - gpr_[ra]); return;
        case X_MULLW:
            put(rt, static_cast<std::uint32_t>(
                        static_cast<std::int32_t>(gpr_[ra]) *
                        static_cast<std::int32_t>(gpr_[rb])));
            return;
        case X_DIVW:
            if (gpr_[rb] == 0) {
                report("divw by zero");
                put(rt, 0);
            } else {
                put(rt, static_cast<std::uint32_t>(
                            static_cast<std::int32_t>(gpr_[ra]) /
                            static_cast<std::int32_t>(gpr_[rb])));
            }
            return;
        case X_DIVWU:
            if (gpr_[rb] == 0) {
                report("divwu by zero");
                put(rt, 0);
            } else {
                put(rt, gpr_[ra] / gpr_[rb]);
            }
            return;

        // Logical/shift: dest is rA, source is the rT slot (rS).
        case X_AND: put(ra, gpr_[rt] & gpr_[rb]); return;
        case X_OR: put(ra, gpr_[rt] | gpr_[rb]); return;
        case X_XOR: put(ra, gpr_[rt] ^ gpr_[rb]); return;
        case X_NOR: put(ra, ~(gpr_[rt] | gpr_[rb])); return;
        case X_ANDC: put(ra, gpr_[rt] & ~gpr_[rb]); return;
        case X_SLW: {
            const std::uint32_t sh = gpr_[rb] & 0x3F;
            put(ra, sh >= 32 ? 0 : gpr_[rt] << sh);
            return;
        }
        case X_SRW: {
            const std::uint32_t sh = gpr_[rb] & 0x3F;
            put(ra, sh >= 32 ? 0 : gpr_[rt] >> sh);
            return;
        }
        case X_SRAW: {
            const std::uint32_t sh = gpr_[rb] & 0x3F;
            const auto s = static_cast<std::int32_t>(gpr_[rt]);
            put(ra, static_cast<std::uint32_t>(sh >= 32 ? (s < 0 ? -1 : 0)
                                                        : (s >> sh)));
            return;
        }
        case X_SRAWI: {
            const auto s = static_cast<std::int32_t>(gpr_[rt]);
            put(ra, static_cast<std::uint32_t>(s >> rb));
            return;
        }

        case X_CMP: {
            const auto a = static_cast<std::int32_t>(gpr_[ra]);
            const auto b = static_cast<std::int32_t>(gpr_[rb]);
            cr0_ = (a < b) ? CR0_LT : (a > b) ? CR0_GT : CR0_EQ;
            return;
        }
        case X_CMPL:
            cr0_ = (gpr_[ra] < gpr_[rb])   ? CR0_LT
                   : (gpr_[ra] > gpr_[rb]) ? CR0_GT
                                           : CR0_EQ;
            return;

        case X_MFSPR: {
            switch (unsplit_sprf(insn)) {
                case SPR_XER: gpr_[rt] = xer_; return;
                case SPR_LR: gpr_[rt] = lr_; return;
                case SPR_CTR: gpr_[rt] = ctr_; return;
                case SPR_SRR0: gpr_[rt] = srr0_; return;
                case SPR_SRR1: gpr_[rt] = srr1_; return;
                default: illegal(insn, "mfspr"); return;
            }
        }
        case X_MTSPR: {
            switch (unsplit_sprf(insn)) {
                case SPR_XER: xer_ = gpr_[rt]; return;
                case SPR_LR: lr_ = gpr_[rt]; return;
                case SPR_CTR: ctr_ = gpr_[rt]; return;
                case SPR_SRR0: srr0_ = gpr_[rt]; return;
                case SPR_SRR1: srr1_ = gpr_[rt]; return;
                default: illegal(insn, "mtspr"); return;
            }
        }
        // Condition-register moves: only CR0 is modelled; it occupies the
        // top nibble of the architectural CR.
        case X_MFCR: gpr_[rt] = cr0_ << 28; return;
        case X_MTCRF: cr0_ = (gpr_[rt] >> 28) & 0xF; return;

        case X_MFMSR: gpr_[rt] = msr_; return;
        case X_MTMSR: msr_ = gpr_[rt]; return;
        case X_WRTEEI:
            if (insn & (1u << 15)) {
                msr_ |= MSR_EE;
            } else {
                msr_ &= ~MSR_EE;
            }
            return;

        case X_MFDCR: {
            const std::uint32_t dcrn = unsplit_sprf(insn);
            dcr_busy_ = true;
            dcrop_ = DcrOp{DcrOp::Kind::Read, dcrn, rt};
            dcr_.start_read(dcrn, [this](Word w) { finish_mfdcr(w); });
            return;
        }
        case X_MTDCR: {
            const std::uint32_t dcrn = unsplit_sprf(insn);
            dcr_busy_ = true;
            dcrop_ = DcrOp{DcrOp::Kind::Write, dcrn, 0};
            dcr_.start_write(dcrn, Word{gpr_[rt]}, [this] {
                dcr_busy_ = false;
                dcrop_.kind = DcrOp::Kind::None;
            });
            return;
        }

        case X_SYNC: return;

        default:
            illegal(insn, "op31 xo " + std::to_string(xo));
            return;
    }
}

}  // namespace autovision::isa
