#include "cpu.hpp"

#include <algorithm>
#include <cassert>

#include "ppc.hpp"

namespace autovision::isa {

using rtlsim::is1;
using rtlsim::is_unknown;
using rtlsim::Word;

namespace {

[[nodiscard]] std::int32_t sext16(std::uint32_t v) {
    return static_cast<std::int16_t>(v & 0xFFFF);
}

// Signed 32x32 multiply low half without signed-overflow UB (the decode
// cache's exec_uop computes the same way; see decode.cpp).
[[nodiscard]] std::uint32_t mul_low32(std::uint32_t a, std::uint32_t b) {
    return static_cast<std::uint32_t>(
        static_cast<std::int64_t>(static_cast<std::int32_t>(a)) *
        static_cast<std::int64_t>(static_cast<std::int32_t>(b)));
}

}  // namespace

PpcCpu::PpcCpu(Scheduler& sch, const std::string& name, Signal<Logic>& clk,
               Signal<Logic>& rst, PlbMasterPort& port, DcrChain& dcr,
               Memory& imem, Signal<Logic>& ext_irq, Config cfg)
    : Module(sch, name),
      cfg_(cfg),
      clk_(clk),
      rst_(rst),
      dcr_(dcr),
      imem_(imem),
      ext_irq_(ext_irq),
      dma_(port, /*burst_limit=*/1),
      cache_(imem),
      wake_ev_(*this) {
    st_.pc = cfg_.reset_pc;
    sync_proc("exec", [this] { on_clock(); }, {rtlsim::posedge(clk_)});
}

void PpcCpu::set_cr0(std::int32_t v) {
    st_.cr0 = (v < 0) ? CR0_LT : (v > 0) ? CR0_GT : CR0_EQ;
}

void PpcCpu::illegal(std::uint32_t insn, const std::string& why) {
    char buf[64];
    std::snprintf(buf, sizeof buf, "illegal instruction 0x%08x at 0x%08x (%s)",
                  insn, st_.pc - 4, why.c_str());
    report(buf);
    fatal_ = true;
    sch_.request_stop(full_name() + ": " + buf);
}

void PpcCpu::take_interrupt() {
    st_.srr0 = st_.pc;
    st_.srr1 = st_.msr;
    st_.msr &= ~MSR_EE;
    st_.pc = VEC_EXTERNAL;
    st_.halted = false;
    ++irqs_;
    ++isr_depth_;
}

void PpcCpu::do_syscall() {
    // Genuine system-call SRR clobber: `sc` saves its return state into the
    // same SRR0/SRR1 an external interrupt uses. Inside an ISR this
    // destroys the interrupt's own return state — bug.sw.5's root cause —
    // so HostIo is told whether we are at ISR depth for the fault coverage.
    st_.srr0 = st_.pc;  // instruction after the sc
    st_.srr1 = st_.msr;
    const std::uint32_t call = st_.gpr[0];
    if (host_.dispatch(st_, static_cast<std::uint32_t>(sch_.now()),
                       isr_depth_ > 0)) {
        st_.halted = true;  // exit(): firmware convention is a trailing `b .`
    }
    if (obs_ != nullptr) {
        obs_->record(sch_.now(), obs::EventKind::kSyscall, obs::Source::kCpu,
                     call, st_.gpr[3], isr_depth_ > 0 ? 1 : 0);
    }
}

// --- sleep ----------------------------------------------------------------

void PpcCpu::enable_sleep(rtlsim::Clock& gclk) {
    gclk_ = &gclk;
    add_wake_signal(rst_);
    add_wake_signal(ext_irq_);
    // Any write into instruction memory (another master's DMA, a backdoor
    // poke) ends an open window: the pre-executed suffix may be stale.
    imem_.set_write_observer([this](std::uint32_t) { wake_early(); });
}

void PpcCpu::add_wake_signal(Signal<Logic>& sig) {
    sync_proc("wake" + std::to_string(wake_procs_++),
              [this] { wake_early(); }, {rtlsim::anyedge(sig)});
}

bool PpcCpu::maybe_sleep() {
    std::uint64_t len;
    if (st_.halted) {
        // Pure idle spin (`b .`): skip cycles without pre-executing; the
        // register file is a fixed point. Conditional self-branches are
        // not fixed points (CTR moves), so only kBHalt qualifies.
        const DecodeCache::Block* blk = cache_.lookup(st_.pc);
        if (blk == nullptr || blk->ops.front().kind != Uop::kBHalt) {
            return false;
        }
        len = kMaxSleep;
        sleep_end_ = st_;
    } else {
        ArchRegs scratch = st_;
        const ExecResult r = exec_cached(scratch, cache_, kMaxSleep);
        if (r.executed < kMinSleep) return false;
        len = r.executed;
        sleep_end_ = scratch;
    }
    sleeping_ = true;
    sleep_len_ = len;
    sleep_start_ = sch_.now();
    ++sleep_windows_;
    // Wake on the falling-edge phase point after the window's last
    // instruction slot: posedge j of the window sits at start + j*P, so the
    // resumed wave's first rise lands exactly on the free-running grid.
    const rtlsim::Time p = gclk_->period();
    sch_.schedule_event(sleep_start_ + len * p - p / 2, wake_ev_);
    gclk_->suspend();
    return true;
}

void PpcCpu::commit_sleep(std::uint64_t elapsed) {
    assert(sleeping_);
    sleeping_ = false;
    if (st_.halted) {
        // Idle-spin window: st_ is already the committed state.
    } else if (elapsed == sleep_len_) {
        st_ = sleep_end_;
    } else {
        // Early wake: replay the elapsed prefix over the scan-time decode
        // (assume_fresh) — the wake may itself be a store into that code
        // page, but every replayed instruction predates the store.
        const ExecResult r =
            exec_cached(st_, cache_, elapsed, /*assume_fresh=*/true);
        (void)r;
        assert(r.executed == elapsed);
    }
    icount_ += elapsed;
    sleep_insns_ += elapsed;
    cur_blk_ = nullptr;
    gclk_->resume();
}

void PpcCpu::wake_early() {
    if (!sleeping_) return;
    const rtlsim::Time p = gclk_->period();
    const std::uint64_t e = std::min<std::uint64_t>(
        (sch_.now() - sleep_start_) / p + 1, sleep_len_);
    sch_.cancel_event(wake_ev_);
    commit_sleep(e);
}

void PpcCpu::wake_now() { wake_early(); }

// --- per-cycle execution ----------------------------------------------------

bool PpcCpu::step_cached() {
    const DecodeCache::Block* blk = cur_blk_;
    if (blk == nullptr || cur_idx_ >= blk->ops.size() ||
        blk->start_pc + 4 * static_cast<std::uint32_t>(cur_idx_) != st_.pc ||
        !cache_.fresh(*blk)) {
        blk = cache_.lookup(st_.pc);
        cur_blk_ = blk;
        cur_idx_ = 0;
    }
    if (blk == nullptr) return false;  // undecodable: fetch path diagnoses

    const MicroOp& op = blk->ops[cur_idx_];
    if (trace) trace(st_.pc, op.raw);
    if (needs_interp(st_, op)) {
        st_.pc += 4;
        ++icount_;
        cur_blk_ = nullptr;
        execute(op.raw);
        return true;
    }
    exec_uop(st_, op);
    ++icount_;
    if (st_.pc ==
            blk->start_pc + 4 * static_cast<std::uint32_t>(cur_idx_ + 1) &&
        cur_idx_ + 1 < blk->ops.size()) {
        ++cur_idx_;  // fall-through: stay on the block
    } else {
        cur_blk_ = nullptr;  // branch or block end: re-enter via lookup
    }
    return true;
}

void PpcCpu::on_clock() {
    if (is1(rst_.read())) {
        in_reset_ = true;
        return;
    }
    if (in_reset_) {
        // Leaving reset: start clean at the reset vector.
        in_reset_ = false;
        st_.pc = cfg_.reset_pc;
        st_.msr = 0;
        st_.halted = false;
        fatal_ = false;
        mem_busy_ = false;
        dcr_busy_ = false;
        dma_.reset();
        cur_blk_ = nullptr;
    }
    if (fatal_) return;

    // Service an in-flight data transaction first.
    if (mem_busy_) {
        dma_.step();
        return;
    }
    if (dcr_busy_) return;  // completion callback clears the flag

    // Sample the external interrupt between instructions.
    const Logic irq = ext_irq_.read();
    if (is_unknown(irq)) {
        if (x_reports_ < cfg_.x_report_limit) {
            ++x_reports_;
            report("X on external interrupt input");
        }
    } else if (is1(irq) && (st_.msr & MSR_EE) != 0) {
        take_interrupt();
        return;  // vector fetch starts next cycle
    }

    if (cfg_.engine == Config::Engine::kCached) {
        // Sleep windows are per-cycle-equivalent batch execution; they stay
        // off while tracing (per-instruction hook) and while the interrupt
        // pin is X (the per-cycle X reports must keep firing).
        if (gclk_ != nullptr && !trace && !is_unknown(irq) && maybe_sleep()) {
            return;
        }
        if (step_cached()) return;
    }

    // Fetch (cached; backdoor read — see header timing model).
    if (!imem_.claims(st_.pc) || (st_.pc & 3u) != 0) {
        char buf[48];
        std::snprintf(buf, sizeof buf, "bad fetch address 0x%08x", st_.pc);
        report(buf);
        fatal_ = true;
        sch_.request_stop(full_name() + ": bad fetch");
        return;
    }
    bool ok = true;
    const std::uint32_t insn = imem_.peek_u32(st_.pc, &ok);
    if (!ok) {
        char buf[56];
        std::snprintf(buf, sizeof buf, "fetched X/corrupted word at 0x%08x",
                      st_.pc);
        report(buf);
        fatal_ = true;
        sch_.request_stop(full_name() + ": corrupted instruction memory");
        return;
    }
    if (trace) trace(st_.pc, insn);
    st_.pc += 4;
    ++icount_;
    execute(insn);
}

void PpcCpu::finish_mfdcr(Word w) {
    if (w.has_unknown() && x_reports_ < cfg_.x_report_limit) {
        ++x_reports_;
        report("mfdcr " + std::to_string(dcrop_.dcrn) +
               " returned X (broken daisy chain?)");
    }
    st_.gpr[dcrop_.rt] = static_cast<std::uint32_t>(w.to_u64());
    dcr_busy_ = false;
    dcrop_.kind = DcrOp::Kind::None;
}

void PpcCpu::finish_load(Word w) {
    if (w.has_unknown() && x_reports_ < cfg_.x_report_limit) {
        ++x_reports_;
        char buf[56];
        std::snprintf(buf, sizeof buf, "load of X/corrupted data at 0x%08x",
                      mem_.ea);
        report(buf);
    }
    const auto full = static_cast<std::uint32_t>(w.to_u64());
    std::uint32_t v = full;
    if (mem_.bytes == 1) {
        v = (full >> ((3 - (mem_.ea & 3u)) * 8)) & 0xFF;
    } else if (mem_.bytes == 2) {
        v = (full >> ((mem_.ea & 2u) ? 0 : 16)) & 0xFFFF;
    }
    st_.gpr[mem_.rt] = v;
}

void PpcCpu::rmw_merge(Word w) {
    const auto old = static_cast<std::uint32_t>(w.to_u64());
    std::uint32_t merged = old;
    if (mem_.bytes == 1) {
        const unsigned sh = (3 - (mem_.ea & 3u)) * 8;
        merged = (old & ~(0xFFu << sh)) | ((mem_.value & 0xFF) << sh);
    } else {
        const unsigned sh = (mem_.ea & 2u) ? 0 : 16;
        merged = (old & ~(0xFFFFu << sh)) | ((mem_.value & 0xFFFF) << sh);
    }
    mem_.value = merged;
}

void PpcCpu::issue_rmw_write() {
    mem_.kind = MemOp::Kind::RmwWrite;
    dma_.start_write(
        mem_.ea & ~3u, 1, [this](std::uint32_t) { return Word{mem_.value}; },
        [this] {
            mem_busy_ = false;
            mem_.kind = MemOp::Kind::None;
        });
}

void PpcCpu::load(std::uint32_t ea, unsigned bytes, std::uint32_t rt) {
    mem_busy_ = true;
    mem_ = MemOp{MemOp::Kind::Load, ea, bytes, rt, 0};
    dma_.start_read(
        ea & ~3u, 1, [this](std::uint32_t, Word w) { finish_load(w); },
        [this] {
            mem_busy_ = false;
            mem_.kind = MemOp::Kind::None;
        });
}

void PpcCpu::store(std::uint32_t ea, unsigned bytes, std::uint32_t value) {
    mem_busy_ = true;
    if (bytes == 4) {
        mem_ = MemOp{MemOp::Kind::Store4, ea, 4, 0, value};
        dma_.start_write(
            ea & ~3u, 1,
            [this](std::uint32_t) { return Word{mem_.value}; }, [this] {
                mem_busy_ = false;
                mem_.kind = MemOp::Kind::None;
            });
        return;
    }
    // Sub-word store: read-modify-write through the bus (the model's
    // substitute for byte enables; see header).
    mem_ = MemOp{MemOp::Kind::RmwRead, ea, bytes, 0, value};
    dma_.start_read(
        mem_.ea & ~3u, 1, [this](std::uint32_t, Word w) { rmw_merge(w); },
        [this] { issue_rmw_write(); });
}

void PpcCpu::ckpt_save(rtlsim::SnapWriter& w) const {
    dma_.ckpt_save(w);
    for (std::uint32_t g : st_.gpr) w.u32(g);
    w.u32(st_.pc);
    w.u32(st_.msr);
    w.u32(st_.cr0);
    w.u32(st_.lr);
    w.u32(st_.ctr);
    w.u32(st_.xer);
    w.u32(st_.srr0);
    w.u32(st_.srr1);
    w.bool8(in_reset_);
    w.bool8(st_.halted);
    w.bool8(fatal_);
    w.bool8(mem_busy_);
    w.bool8(dcr_busy_);
    w.u64(icount_);
    w.u64(irqs_);
    w.u32(x_reports_);
    w.u8(static_cast<std::uint8_t>(mem_.kind));
    w.u32(mem_.ea);
    w.u32(mem_.bytes);
    w.u32(mem_.rt);
    w.u32(mem_.value);
    w.u8(static_cast<std::uint8_t>(dcrop_.kind));
    w.u32(dcrop_.dcrn);
    w.u32(dcrop_.rt);
    // Appended after the seed image: syscall layer and sleep window. The
    // decode cache itself is derived state and stays out of the snapshot.
    host_.ckpt_save(w);
    w.u32(isr_depth_);
    w.bool8(sleeping_);
    w.u64(sleep_len_);
    w.u64(sleep_start_);
    w.u64(wake_ev_.time());
    w.bool8(wake_ev_.pending());
}

bool PpcCpu::ckpt_restore(rtlsim::SnapReader& r) {
    if (!dma_.ckpt_restore(r)) return false;
    for (std::uint32_t& g : st_.gpr) g = r.u32();
    st_.pc = r.u32();
    st_.msr = r.u32();
    st_.cr0 = r.u32();
    st_.lr = r.u32();
    st_.ctr = r.u32();
    st_.xer = r.u32();
    st_.srr0 = r.u32();
    st_.srr1 = r.u32();
    in_reset_ = r.bool8();
    st_.halted = r.bool8();
    fatal_ = r.bool8();
    mem_busy_ = r.bool8();
    dcr_busy_ = r.bool8();
    icount_ = r.u64();
    irqs_ = r.u64();
    x_reports_ = r.u32();
    const std::uint8_t mk = r.u8();
    if (mk > static_cast<std::uint8_t>(MemOp::Kind::RmwWrite)) return false;
    mem_.kind = static_cast<MemOp::Kind>(mk);
    mem_.ea = r.u32();
    mem_.bytes = r.u32();
    mem_.rt = r.u32();
    mem_.value = r.u32();
    const std::uint8_t dk = r.u8();
    if (dk > static_cast<std::uint8_t>(DcrOp::Kind::Write)) return false;
    dcrop_.kind = static_cast<DcrOp::Kind>(dk);
    dcrop_.dcrn = r.u32();
    dcrop_.rt = r.u32();
    if (!host_.ckpt_restore(r)) return false;
    isr_depth_ = r.u32();
    sleeping_ = r.bool8();
    sleep_len_ = r.u64();
    sleep_start_ = r.u64();
    const rtlsim::Time wake_time = r.u64();
    const bool wake_pending = r.bool8();
    if (!r.ok_so_far()) return false;
    if (mem_.rt >= st_.gpr.size() || dcrop_.rt >= st_.gpr.size()) return false;
    if (mem_busy_ != dma_.busy()) return false;
    if (mem_busy_ && mem_.kind == MemOp::Kind::None) return false;
    // Re-arm whichever completion closures the open operation needs.
    switch (mem_.kind) {
        case MemOp::Kind::Load:
            dma_.ckpt_rearm(
                [this](std::uint32_t, Word w) { finish_load(w); }, {},
                [this] {
                    mem_busy_ = false;
                    mem_.kind = MemOp::Kind::None;
                });
            break;
        case MemOp::Kind::RmwRead:
            dma_.ckpt_rearm([this](std::uint32_t, Word w) { rmw_merge(w); },
                            {}, [this] { issue_rmw_write(); });
            break;
        case MemOp::Kind::Store4:
        case MemOp::Kind::RmwWrite:
            dma_.ckpt_rearm(
                {}, [this](std::uint32_t) { return Word{mem_.value}; },
                [this] {
                    mem_busy_ = false;
                    mem_.kind = MemOp::Kind::None;
                });
            break;
        case MemOp::Kind::None: break;
    }
    if (dcr_busy_) {
        switch (dcrop_.kind) {
            case DcrOp::Kind::Read:
                dcr_.ckpt_rearm_read([this](Word w) { finish_mfdcr(w); });
                break;
            case DcrOp::Kind::Write:
                dcr_.ckpt_rearm_write([this] {
                    dcr_busy_ = false;
                    dcrop_.kind = DcrOp::Kind::None;
                });
                break;
            case DcrOp::Kind::None: return false;
        }
    }
    // The decode cache is rebuilt from restored memory (which must restore
    // before the CPU — the standard section order).
    cache_.flush();
    cur_blk_ = nullptr;
    if (sleeping_ != wake_pending) return false;
    if (sleeping_) {
        if (gclk_ == nullptr) return false;  // harness must enable_sleep first
        if (st_.halted) {
            sleep_end_ = st_;  // idle-spin window
        } else {
            sleep_end_ = st_;
            const ExecResult rr =
                exec_cached(sleep_end_, cache_, sleep_len_, true);
            if (rr.executed != sleep_len_) return false;
        }
        sch_.schedule_event(wake_time, wake_ev_);
    }
    return true;
}

void PpcCpu::execute(std::uint32_t insn) {
    const std::uint32_t op = insn >> 26;
    const std::uint32_t rt = (insn >> 21) & 0x1F;
    const std::uint32_t ra = (insn >> 16) & 0x1F;
    const std::uint32_t imm = insn & 0xFFFF;
    const std::int32_t simm = sext16(imm);
    const std::uint32_t a0 = (ra == 0) ? 0 : st_.gpr[ra];  // (rA|0) semantics

    switch (op) {
        case OP_ADDI: st_.gpr[rt] = a0 + static_cast<std::uint32_t>(simm); return;
        case OP_ADDIS: st_.gpr[rt] = a0 + (imm << 16); return;
        case OP_ADDIC: st_.gpr[rt] = st_.gpr[ra] + static_cast<std::uint32_t>(simm); return;
        case OP_MULLI:
            st_.gpr[rt] = mul_low32(st_.gpr[ra], static_cast<std::uint32_t>(simm));
            return;
        case OP_SUBFIC:
            st_.gpr[rt] = static_cast<std::uint32_t>(simm) - st_.gpr[ra];
            return;
        case OP_ORI: st_.gpr[ra] = st_.gpr[rt] | imm; return;
        case OP_ORIS: st_.gpr[ra] = st_.gpr[rt] | (imm << 16); return;
        case OP_XORI: st_.gpr[ra] = st_.gpr[rt] ^ imm; return;
        case OP_XORIS: st_.gpr[ra] = st_.gpr[rt] ^ (imm << 16); return;
        case OP_ANDI:
            st_.gpr[ra] = st_.gpr[rt] & imm;
            set_cr0(static_cast<std::int32_t>(st_.gpr[ra]));
            return;
        case OP_ANDIS:
            st_.gpr[ra] = st_.gpr[rt] & (imm << 16);
            set_cr0(static_cast<std::int32_t>(st_.gpr[ra]));
            return;

        case OP_CMPI: {
            const auto a = static_cast<std::int32_t>(st_.gpr[ra]);
            st_.cr0 = (a < simm) ? CR0_LT : (a > simm) ? CR0_GT : CR0_EQ;
            return;
        }
        case OP_CMPLI: {
            const std::uint32_t a = st_.gpr[ra];
            st_.cr0 = (a < imm) ? CR0_LT : (a > imm) ? CR0_GT : CR0_EQ;
            return;
        }

        case OP_RLWINM: {
            const std::uint32_t rs = rt;
            const std::uint32_t sh = (insn >> 11) & 0x1F;
            const std::uint32_t mb = (insn >> 6) & 0x1F;
            const std::uint32_t me = (insn >> 1) & 0x1F;
            const std::uint32_t rot =
                (st_.gpr[rs] << sh) | (sh == 0 ? 0 : (st_.gpr[rs] >> (32 - sh)));
            // Power mask: 1s from bit MB through bit ME inclusive, bits
            // numbered from the MSB; MB > ME wraps.
            const std::uint32_t m_begin = ~0u >> mb;
            const std::uint32_t m_end = ~0u << (31 - me);
            const std::uint32_t mask =
                (mb <= me) ? (m_begin & m_end) : (m_begin | m_end);
            st_.gpr[ra] = rot & mask;
            if (insn & 1) set_cr0(static_cast<std::int32_t>(st_.gpr[ra]));
            return;
        }

        case OP_LWZ: load(a0 + static_cast<std::uint32_t>(simm), 4, rt); return;
        case OP_LBZ: load(a0 + static_cast<std::uint32_t>(simm), 1, rt); return;
        case OP_LHZ: load(a0 + static_cast<std::uint32_t>(simm), 2, rt); return;
        case OP_LWZU: {
            const std::uint32_t ea = st_.gpr[ra] + static_cast<std::uint32_t>(simm);
            st_.gpr[ra] = ea;
            load(ea, 4, rt);
            return;
        }
        case OP_LBZU: {
            const std::uint32_t ea = st_.gpr[ra] + static_cast<std::uint32_t>(simm);
            st_.gpr[ra] = ea;
            load(ea, 1, rt);
            return;
        }
        case OP_LHZU: {
            const std::uint32_t ea = st_.gpr[ra] + static_cast<std::uint32_t>(simm);
            st_.gpr[ra] = ea;
            load(ea, 2, rt);
            return;
        }
        case OP_STW: store(a0 + static_cast<std::uint32_t>(simm), 4, st_.gpr[rt]); return;
        case OP_STB: store(a0 + static_cast<std::uint32_t>(simm), 1, st_.gpr[rt]); return;
        case OP_STH: store(a0 + static_cast<std::uint32_t>(simm), 2, st_.gpr[rt]); return;
        case OP_STWU: {
            const std::uint32_t ea = st_.gpr[ra] + static_cast<std::uint32_t>(simm);
            st_.gpr[ra] = ea;
            store(ea, 4, st_.gpr[rt]);
            return;
        }
        case OP_STBU: {
            const std::uint32_t ea = st_.gpr[ra] + static_cast<std::uint32_t>(simm);
            st_.gpr[ra] = ea;
            store(ea, 1, st_.gpr[rt]);
            return;
        }
        case OP_STHU: {
            const std::uint32_t ea = st_.gpr[ra] + static_cast<std::uint32_t>(simm);
            st_.gpr[ra] = ea;
            store(ea, 2, st_.gpr[rt]);
            return;
        }

        case OP_SC: do_syscall(); return;

        case OP_B: {
            const std::int32_t li =
                (static_cast<std::int32_t>(insn << 6) >> 6) & ~3;
            const std::uint32_t from = st_.pc - 4;
            if (insn & 1) st_.lr = st_.pc;  // bl
            const std::uint32_t target =
                (insn & 2) ? static_cast<std::uint32_t>(li)
                           : from + static_cast<std::uint32_t>(li);
            if (target == from && (insn & 1) == 0) st_.halted = true;
            st_.pc = target;
            return;
        }
        case OP_BC: {
            const std::uint32_t bo = rt;
            const std::uint32_t bi = ra;
            const std::int32_t bd = sext16(insn & 0xFFFC);
            bool ctr_ok = true;
            if ((bo & 0x4) == 0) {  // decrement CTR
                --st_.ctr;
                ctr_ok = ((bo & 0x2) != 0) == (st_.ctr == 0);
            }
            bool cond_ok = true;
            if ((bo & 0x10) == 0) {
                const bool bit = (st_.cr0 >> (3 - bi)) & 1;
                cond_ok = ((bo & 0x8) != 0) == bit;
            }
            if (ctr_ok && cond_ok) {
                const std::uint32_t from = st_.pc - 4;
                if (insn & 1) st_.lr = st_.pc;
                st_.pc = from + static_cast<std::uint32_t>(bd);
                if (st_.pc == from && (insn & 1) == 0) st_.halted = true;
            }
            return;
        }

        case OP_XL: {
            const std::uint32_t xo = (insn >> 1) & 0x3FF;
            if (xo == XL_BCLR) {
                const std::uint32_t bo = rt;
                bool cond_ok = true;
                if ((bo & 0x10) == 0) {
                    const bool bit = (st_.cr0 >> (3 - ra)) & 1;
                    cond_ok = ((bo & 0x8) != 0) == bit;
                }
                if (cond_ok) {
                    const std::uint32_t target = st_.lr & ~3u;
                    if (insn & 1) st_.lr = st_.pc;
                    st_.pc = target;
                }
                return;
            }
            if (xo == XL_BCCTR) {
                if (insn & 1) st_.lr = st_.pc;
                st_.pc = st_.ctr & ~3u;
                return;
            }
            if (xo == XL_RFI) {
                st_.msr = st_.srr1;
                st_.pc = st_.srr0;
                if (isr_depth_ > 0) --isr_depth_;
                return;
            }
            if (xo == XL_ISYNC) return;
            illegal(insn, "XL");
            return;
        }

        case OP_X: exec_op31(insn); return;

        default:
            illegal(insn, "primary opcode " + std::to_string(op));
            return;
    }
}

void PpcCpu::exec_op31(std::uint32_t insn) {
    const std::uint32_t rt = (insn >> 21) & 0x1F;
    const std::uint32_t ra = (insn >> 16) & 0x1F;
    const std::uint32_t rb = (insn >> 11) & 0x1F;
    const bool rc = (insn & 1) != 0;
    const std::uint32_t xo = (insn >> 1) & 0x3FF;

    auto put = [&](std::uint32_t dest, std::uint32_t v) {
        st_.gpr[dest] = v;
        if (rc) set_cr0(static_cast<std::int32_t>(v));
    };

    switch (xo) {
        case X_ADD: put(rt, st_.gpr[ra] + st_.gpr[rb]); return;
        case X_SUBF: put(rt, st_.gpr[rb] - st_.gpr[ra]); return;
        case X_NEG: put(rt, 0u - st_.gpr[ra]); return;
        case X_MULLW: put(rt, mul_low32(st_.gpr[ra], st_.gpr[rb])); return;
        case X_DIVW:
            if (st_.gpr[rb] == 0) {
                report("divw by zero");
                put(rt, 0);
            } else if (st_.gpr[ra] == 0x8000'0000u &&
                       st_.gpr[rb] == 0xFFFF'FFFFu) {
                // INT_MIN / -1: result undefined by the ISA (and a host
                // SIGFPE if computed naively); pin it and diagnose.
                report("divw overflow");
                put(rt, 0x8000'0000u);
            } else {
                put(rt, static_cast<std::uint32_t>(
                            static_cast<std::int32_t>(st_.gpr[ra]) /
                            static_cast<std::int32_t>(st_.gpr[rb])));
            }
            return;
        case X_DIVWU:
            if (st_.gpr[rb] == 0) {
                report("divwu by zero");
                put(rt, 0);
            } else {
                put(rt, st_.gpr[ra] / st_.gpr[rb]);
            }
            return;

        // Logical/shift: dest is rA, source is the rT slot (rS).
        case X_AND: put(ra, st_.gpr[rt] & st_.gpr[rb]); return;
        case X_OR: put(ra, st_.gpr[rt] | st_.gpr[rb]); return;
        case X_XOR: put(ra, st_.gpr[rt] ^ st_.gpr[rb]); return;
        case X_NOR: put(ra, ~(st_.gpr[rt] | st_.gpr[rb])); return;
        case X_ANDC: put(ra, st_.gpr[rt] & ~st_.gpr[rb]); return;
        case X_SLW: {
            const std::uint32_t sh = st_.gpr[rb] & 0x3F;
            put(ra, sh >= 32 ? 0 : st_.gpr[rt] << sh);
            return;
        }
        case X_SRW: {
            const std::uint32_t sh = st_.gpr[rb] & 0x3F;
            put(ra, sh >= 32 ? 0 : st_.gpr[rt] >> sh);
            return;
        }
        case X_SRAW: {
            const std::uint32_t sh = st_.gpr[rb] & 0x3F;
            const auto s = static_cast<std::int32_t>(st_.gpr[rt]);
            put(ra, static_cast<std::uint32_t>(sh >= 32 ? (s < 0 ? -1 : 0)
                                                        : (s >> sh)));
            return;
        }
        case X_SRAWI: {
            const auto s = static_cast<std::int32_t>(st_.gpr[rt]);
            put(ra, static_cast<std::uint32_t>(s >> rb));
            return;
        }

        case X_CMP: {
            const auto a = static_cast<std::int32_t>(st_.gpr[ra]);
            const auto b = static_cast<std::int32_t>(st_.gpr[rb]);
            st_.cr0 = (a < b) ? CR0_LT : (a > b) ? CR0_GT : CR0_EQ;
            return;
        }
        case X_CMPL:
            st_.cr0 = (st_.gpr[ra] < st_.gpr[rb])   ? CR0_LT
                      : (st_.gpr[ra] > st_.gpr[rb]) ? CR0_GT
                                                    : CR0_EQ;
            return;

        case X_MFSPR: {
            switch (unsplit_sprf(insn)) {
                case SPR_XER: st_.gpr[rt] = st_.xer; return;
                case SPR_LR: st_.gpr[rt] = st_.lr; return;
                case SPR_CTR: st_.gpr[rt] = st_.ctr; return;
                case SPR_SRR0: st_.gpr[rt] = st_.srr0; return;
                case SPR_SRR1: st_.gpr[rt] = st_.srr1; return;
                default: illegal(insn, "mfspr"); return;
            }
        }
        case X_MTSPR: {
            switch (unsplit_sprf(insn)) {
                case SPR_XER: st_.xer = st_.gpr[rt]; return;
                case SPR_LR: st_.lr = st_.gpr[rt]; return;
                case SPR_CTR: st_.ctr = st_.gpr[rt]; return;
                case SPR_SRR0: st_.srr0 = st_.gpr[rt]; return;
                case SPR_SRR1: st_.srr1 = st_.gpr[rt]; return;
                default: illegal(insn, "mtspr"); return;
            }
        }
        // Condition-register moves: only CR0 is modelled; it occupies the
        // top nibble of the architectural CR.
        case X_MFCR: st_.gpr[rt] = st_.cr0 << 28; return;
        case X_MTCRF: st_.cr0 = (st_.gpr[rt] >> 28) & 0xF; return;

        case X_MFMSR: st_.gpr[rt] = st_.msr; return;
        case X_MTMSR: st_.msr = st_.gpr[rt]; return;
        case X_WRTEEI:
            if (insn & (1u << 15)) {
                st_.msr |= MSR_EE;
            } else {
                st_.msr &= ~MSR_EE;
            }
            return;

        case X_MFDCR: {
            const std::uint32_t dcrn = unsplit_sprf(insn);
            dcr_busy_ = true;
            dcrop_ = DcrOp{DcrOp::Kind::Read, dcrn, rt};
            dcr_.start_read(dcrn, [this](Word w) { finish_mfdcr(w); });
            return;
        }
        case X_MTDCR: {
            const std::uint32_t dcrn = unsplit_sprf(insn);
            dcr_busy_ = true;
            dcrop_ = DcrOp{DcrOp::Kind::Write, dcrn, 0};
            dcr_.start_write(dcrn, Word{st_.gpr[rt]}, [this] {
                dcr_busy_ = false;
                dcrop_.kind = DcrOp::Kind::None;
            });
            return;
        }

        case X_SYNC: return;

        default:
            illegal(insn, "op31 xo " + std::to_string(xo));
            return;
    }
}

}  // namespace autovision::isa
