#include "decode.hpp"

#include <cassert>

namespace autovision::isa {

namespace {

[[nodiscard]] std::int32_t sext16(std::uint32_t v) {
    return static_cast<std::int16_t>(v & 0xFFFF);
}

[[nodiscard]] std::uint32_t mul_low32(std::uint32_t a, std::uint32_t b) {
    // 64-bit signed product truncated to 32: the same wrapped result the
    // interpreter's 32-bit expression produces, without the signed-overflow
    // UB that a randomized operand stream would trip under UBSan.
    return static_cast<std::uint32_t>(
        static_cast<std::int64_t>(static_cast<std::int32_t>(a)) *
        static_cast<std::int64_t>(static_cast<std::int32_t>(b)));
}

inline void put_rc(ArchRegs& st, const MicroOp* uop, std::uint32_t v) {
    st.gpr[uop->d] = v;
    if (uop->flags & kUopFlagRc) set_cr0_signed(st, v);
}

}  // namespace

// Micro-op semantics, defined exactly once. Each entry expands with `st`
// (ArchRegs&) and `uop` (const MicroOp*) in scope and st.pc already
// advanced past the instruction; the same list instantiates the portable
// switch in exec_uop and the computed-goto labels in exec_cached, so the
// two dispatchers cannot drift apart. kFallback is deliberately absent:
// callers filter it through needs_interp() first.
// clang-format off
#define AUTOVISION_UOP_SEMANTICS(X)                                          \
    X(kAddi,                                                                 \
      st.gpr[uop->d] = (uop->a != 0 ? st.gpr[uop->a] : 0u) + uop->imm;)      \
    X(kAddic, st.gpr[uop->d] = st.gpr[uop->a] + uop->imm;)                   \
    X(kMulli, st.gpr[uop->d] = mul_low32(st.gpr[uop->a], uop->imm);)         \
    X(kSubfic, st.gpr[uop->d] = uop->imm - st.gpr[uop->a];)                  \
    X(kOrImm, st.gpr[uop->d] = st.gpr[uop->a] | uop->imm;)                   \
    X(kXorImm, st.gpr[uop->d] = st.gpr[uop->a] ^ uop->imm;)                  \
    X(kAndImmRc,                                                             \
      const std::uint32_t v = st.gpr[uop->a] & uop->imm;                     \
      st.gpr[uop->d] = v;                                                    \
      set_cr0_signed(st, v);)                                                \
    X(kCmpi,                                                                 \
      const auto x = static_cast<std::int32_t>(st.gpr[uop->a]);              \
      const auto m = static_cast<std::int32_t>(uop->imm);                    \
      st.cr0 = (x < m) ? CR0_LT : (x > m) ? CR0_GT : CR0_EQ;)                \
    X(kCmpli,                                                                \
      const std::uint32_t x = st.gpr[uop->a];                                \
      st.cr0 = (x < uop->imm) ? CR0_LT : (x > uop->imm) ? CR0_GT : CR0_EQ;)  \
    X(kRlwinm,                                                               \
      const std::uint32_t rs = st.gpr[uop->a];                               \
      const std::uint32_t rot =                                              \
          (rs << uop->b) | (uop->b == 0 ? 0u : rs >> (32 - uop->b));         \
      const std::uint32_t v = rot & uop->imm;                                \
      st.gpr[uop->d] = v;                                                    \
      if (uop->flags & kUopFlagRc) set_cr0_signed(st, v);)                   \
    X(kB,                                                                    \
      if (uop->flags & kUopFlagLink) st.lr = st.pc;                          \
      st.pc = uop->imm;)                                                     \
    X(kBHalt,                                                                \
      st.halted = true;                                                      \
      st.pc = uop->imm;)                                                     \
    X(kBc,                                                                   \
      const std::uint32_t from = st.pc - 4;                                  \
      bool ctr_ok = true;                                                    \
      if ((uop->d & 0x4) == 0) {                                             \
          --st.ctr;                                                          \
          ctr_ok = ((uop->d & 0x2) != 0) == (st.ctr == 0);                   \
      }                                                                      \
      bool cond_ok = true;                                                   \
      if ((uop->d & 0x10) == 0) {                                            \
          const bool bit = (st.cr0 >> (3 - uop->a)) & 1;                     \
          cond_ok = ((uop->d & 0x8) != 0) == bit;                            \
      }                                                                      \
      if (ctr_ok && cond_ok) {                                               \
          if (uop->flags & kUopFlagLink) st.lr = st.pc;                      \
          st.pc = uop->imm;                                                  \
          if (uop->imm == from && (uop->flags & kUopFlagLink) == 0) {        \
              st.halted = true;                                              \
          }                                                                  \
      })                                                                     \
    X(kBclr,                                                                 \
      bool cond_ok = true;                                                   \
      if ((uop->d & 0x10) == 0) {                                            \
          const bool bit = (st.cr0 >> (3 - uop->a)) & 1;                     \
          cond_ok = ((uop->d & 0x8) != 0) == bit;                            \
      }                                                                      \
      if (cond_ok) {                                                         \
          const std::uint32_t target = st.lr & ~3u;                          \
          if (uop->flags & kUopFlagLink) st.lr = st.pc;                      \
          st.pc = target;                                                    \
      })                                                                     \
    X(kBcctr,                                                                \
      if (uop->flags & kUopFlagLink) st.lr = st.pc;                          \
      st.pc = st.ctr & ~3u;)                                                 \
    X(kNop, (void)uop;)                                                      \
    X(kAdd, put_rc(st, uop, st.gpr[uop->a] + st.gpr[uop->b]);)               \
    X(kSubf, put_rc(st, uop, st.gpr[uop->b] - st.gpr[uop->a]);)              \
    X(kNeg, put_rc(st, uop, 0u - st.gpr[uop->a]);)                           \
    X(kMullw, put_rc(st, uop, mul_low32(st.gpr[uop->a], st.gpr[uop->b]));)   \
    X(kDivw,                                                                 \
      put_rc(st, uop,                                                        \
             static_cast<std::uint32_t>(                                     \
                 static_cast<std::int32_t>(st.gpr[uop->a]) /                 \
                 static_cast<std::int32_t>(st.gpr[uop->b])));)               \
    X(kDivwu, put_rc(st, uop, st.gpr[uop->a] / st.gpr[uop->b]);)             \
    X(kAnd, put_rc(st, uop, st.gpr[uop->a] & st.gpr[uop->b]);)               \
    X(kOr, put_rc(st, uop, st.gpr[uop->a] | st.gpr[uop->b]);)                \
    X(kXor, put_rc(st, uop, st.gpr[uop->a] ^ st.gpr[uop->b]);)               \
    X(kNor, put_rc(st, uop, ~(st.gpr[uop->a] | st.gpr[uop->b]));)            \
    X(kAndc, put_rc(st, uop, st.gpr[uop->a] & ~st.gpr[uop->b]);)             \
    X(kSlw,                                                                  \
      const std::uint32_t sh = st.gpr[uop->b] & 0x3F;                        \
      put_rc(st, uop, sh >= 32 ? 0u : st.gpr[uop->a] << sh);)                \
    X(kSrw,                                                                  \
      const std::uint32_t sh = st.gpr[uop->b] & 0x3F;                        \
      put_rc(st, uop, sh >= 32 ? 0u : st.gpr[uop->a] >> sh);)                \
    X(kSraw,                                                                 \
      const std::uint32_t sh = st.gpr[uop->b] & 0x3F;                        \
      const auto s = static_cast<std::int32_t>(st.gpr[uop->a]);              \
      put_rc(st, uop,                                                        \
             static_cast<std::uint32_t>(sh >= 32 ? (s < 0 ? -1 : 0)          \
                                                 : (s >> sh)));)             \
    X(kSrawi,                                                                \
      const auto s = static_cast<std::int32_t>(st.gpr[uop->a]);              \
      put_rc(st, uop, static_cast<std::uint32_t>(s >> uop->b));)             \
    X(kCmp,                                                                  \
      const auto x = static_cast<std::int32_t>(st.gpr[uop->a]);              \
      const auto y = static_cast<std::int32_t>(st.gpr[uop->b]);              \
      st.cr0 = (x < y) ? CR0_LT : (x > y) ? CR0_GT : CR0_EQ;)                \
    X(kCmpl,                                                                 \
      const std::uint32_t x = st.gpr[uop->a];                                \
      const std::uint32_t y = st.gpr[uop->b];                                \
      st.cr0 = (x < y) ? CR0_LT : (x > y) ? CR0_GT : CR0_EQ;)                \
    X(kMfspr,                                                                \
      switch (uop->imm) {                                                    \
          case SPR_XER: st.gpr[uop->d] = st.xer; break;                      \
          case SPR_LR: st.gpr[uop->d] = st.lr; break;                        \
          case SPR_CTR: st.gpr[uop->d] = st.ctr; break;                      \
          case SPR_SRR0: st.gpr[uop->d] = st.srr0; break;                    \
          case SPR_SRR1: st.gpr[uop->d] = st.srr1; break;                    \
          default: break;                                                    \
      })                                                                     \
    X(kMtspr,                                                                \
      switch (uop->imm) {                                                    \
          case SPR_XER: st.xer = st.gpr[uop->d]; break;                      \
          case SPR_LR: st.lr = st.gpr[uop->d]; break;                        \
          case SPR_CTR: st.ctr = st.gpr[uop->d]; break;                      \
          case SPR_SRR0: st.srr0 = st.gpr[uop->d]; break;                    \
          case SPR_SRR1: st.srr1 = st.gpr[uop->d]; break;                    \
          default: break;                                                    \
      })                                                                     \
    X(kMfcr, st.gpr[uop->d] = st.cr0 << 28;)                                 \
    X(kMtcrf, st.cr0 = (st.gpr[uop->d] >> 28) & 0xF;)                        \
    X(kMfmsr, st.gpr[uop->d] = st.msr;)
// clang-format on

void exec_uop(ArchRegs& st, const MicroOp& op) {
    const MicroOp* uop = &op;
    st.pc += 4;
    switch (uop->kind) {
#define AUTOVISION_UOP_CASE(name, ...) \
    case Uop::name: {                  \
        __VA_ARGS__                    \
    }                                  \
        return;
        AUTOVISION_UOP_SEMANTICS(AUTOVISION_UOP_CASE)
#undef AUTOVISION_UOP_CASE
        case Uop::kFallback: break;
    }
    assert(false && "exec_uop: op needs the interpreter");
}

MicroOp decode_one(std::uint32_t insn, std::uint32_t pc) {
    MicroOp u;
    u.raw = insn;
    const std::uint32_t op = insn >> 26;
    const auto rt = static_cast<std::uint8_t>((insn >> 21) & 0x1F);
    const auto ra = static_cast<std::uint8_t>((insn >> 16) & 0x1F);
    const auto rb = static_cast<std::uint8_t>((insn >> 11) & 0x1F);
    const std::uint32_t imm16 = insn & 0xFFFF;
    const auto simm = static_cast<std::uint32_t>(sext16(imm16));
    const std::uint8_t rc = (insn & 1) ? kUopFlagRc : 0;

    switch (op) {
        case OP_ADDI: u = {Uop::kAddi, 0, rt, ra, 0, simm, insn}; break;
        case OP_ADDIS:
            u = {Uop::kAddi, 0, rt, ra, 0, imm16 << 16, insn};
            break;
        case OP_ADDIC: u = {Uop::kAddic, 0, rt, ra, 0, simm, insn}; break;
        case OP_MULLI: u = {Uop::kMulli, 0, rt, ra, 0, simm, insn}; break;
        case OP_SUBFIC: u = {Uop::kSubfic, 0, rt, ra, 0, simm, insn}; break;
        case OP_ORI: u = {Uop::kOrImm, 0, ra, rt, 0, imm16, insn}; break;
        case OP_ORIS:
            u = {Uop::kOrImm, 0, ra, rt, 0, imm16 << 16, insn};
            break;
        case OP_XORI: u = {Uop::kXorImm, 0, ra, rt, 0, imm16, insn}; break;
        case OP_XORIS:
            u = {Uop::kXorImm, 0, ra, rt, 0, imm16 << 16, insn};
            break;
        case OP_ANDI: u = {Uop::kAndImmRc, 0, ra, rt, 0, imm16, insn}; break;
        case OP_ANDIS:
            u = {Uop::kAndImmRc, 0, ra, rt, 0, imm16 << 16, insn};
            break;
        case OP_CMPI: u = {Uop::kCmpi, 0, 0, ra, 0, simm, insn}; break;
        case OP_CMPLI: u = {Uop::kCmpli, 0, 0, ra, 0, imm16, insn}; break;

        case OP_RLWINM: {
            const std::uint32_t sh = (insn >> 11) & 0x1F;
            const std::uint32_t mb = (insn >> 6) & 0x1F;
            const std::uint32_t me = (insn >> 1) & 0x1F;
            const std::uint32_t m_begin = ~0u >> mb;
            const std::uint32_t m_end = ~0u << (31 - me);
            const std::uint32_t mask =
                (mb <= me) ? (m_begin & m_end) : (m_begin | m_end);
            u = {Uop::kRlwinm, rc, ra, rt, static_cast<std::uint8_t>(sh),
                 mask, insn};
            break;
        }

        case OP_B: {
            const std::int32_t li =
                (static_cast<std::int32_t>(insn << 6) >> 6) & ~3;
            const bool link = (insn & 1) != 0;
            const std::uint32_t target =
                (insn & 2) ? static_cast<std::uint32_t>(li)
                           : pc + static_cast<std::uint32_t>(li);
            if (target == pc && !link) {
                u = {Uop::kBHalt, 0, 0, 0, 0, target, insn};
            } else {
                u = {Uop::kB, link ? kUopFlagLink : std::uint8_t{0}, 0, 0, 0,
                     target, insn};
            }
            break;
        }
        case OP_BC: {
            // BI is masked to the modelled CR0 field; the assembler and the
            // firmware corpus never emit BI > 3 (the interpreter's shift
            // would be out of range for them).
            const std::uint32_t target =
                pc + static_cast<std::uint32_t>(sext16(insn & 0xFFFC));
            u = {Uop::kBc, (insn & 1) ? kUopFlagLink : std::uint8_t{0}, rt,
                 static_cast<std::uint8_t>(ra & 3), 0, target, insn};
            break;
        }

        case OP_XL: {
            const std::uint32_t xo = (insn >> 1) & 0x3FF;
            if (xo == XL_BCLR) {
                u = {Uop::kBclr, (insn & 1) ? kUopFlagLink : std::uint8_t{0},
                     rt, static_cast<std::uint8_t>(ra & 3), 0, 0, insn};
            } else if (xo == XL_BCCTR) {
                u = {Uop::kBcctr,
                     (insn & 1) ? kUopFlagLink : std::uint8_t{0}, 0, 0, 0, 0,
                     insn};
            } else if (xo == XL_ISYNC) {
                u.kind = Uop::kNop;
            }
            // XL_RFI and unknown XL encodings stay kFallback.
            break;
        }

        case OP_X: {
            const std::uint32_t xo = (insn >> 1) & 0x3FF;
            switch (xo) {
                case X_ADD: u = {Uop::kAdd, rc, rt, ra, rb, 0, insn}; break;
                case X_SUBF: u = {Uop::kSubf, rc, rt, ra, rb, 0, insn}; break;
                case X_NEG: u = {Uop::kNeg, rc, rt, ra, 0, 0, insn}; break;
                case X_MULLW:
                    u = {Uop::kMullw, rc, rt, ra, rb, 0, insn};
                    break;
                case X_DIVW: u = {Uop::kDivw, rc, rt, ra, rb, 0, insn}; break;
                case X_DIVWU:
                    u = {Uop::kDivwu, rc, rt, ra, rb, 0, insn};
                    break;
                // Logical/shift forms: destination rA, source in rT slot.
                case X_AND: u = {Uop::kAnd, rc, ra, rt, rb, 0, insn}; break;
                case X_OR: u = {Uop::kOr, rc, ra, rt, rb, 0, insn}; break;
                case X_XOR: u = {Uop::kXor, rc, ra, rt, rb, 0, insn}; break;
                case X_NOR: u = {Uop::kNor, rc, ra, rt, rb, 0, insn}; break;
                case X_ANDC: u = {Uop::kAndc, rc, ra, rt, rb, 0, insn}; break;
                case X_SLW: u = {Uop::kSlw, rc, ra, rt, rb, 0, insn}; break;
                case X_SRW: u = {Uop::kSrw, rc, ra, rt, rb, 0, insn}; break;
                case X_SRAW: u = {Uop::kSraw, rc, ra, rt, rb, 0, insn}; break;
                case X_SRAWI:
                    u = {Uop::kSrawi, rc, ra, rt, rb, 0, insn};
                    break;
                case X_CMP: u = {Uop::kCmp, 0, 0, ra, rb, 0, insn}; break;
                case X_CMPL: u = {Uop::kCmpl, 0, 0, ra, rb, 0, insn}; break;
                case X_MFSPR:
                case X_MTSPR: {
                    const std::uint32_t spr = unsplit_sprf(insn);
                    switch (spr) {
                        case SPR_XER:
                        case SPR_LR:
                        case SPR_CTR:
                        case SPR_SRR0:
                        case SPR_SRR1:
                            u = {xo == X_MFSPR ? Uop::kMfspr : Uop::kMtspr, 0,
                                 rt, 0, 0, spr, insn};
                            break;
                        default: break;  // illegal SPR -> interpreter report
                    }
                    break;
                }
                case X_MFCR: u = {Uop::kMfcr, 0, rt, 0, 0, 0, insn}; break;
                case X_MTCRF: u = {Uop::kMtcrf, 0, rt, 0, 0, 0, insn}; break;
                case X_MFMSR: u = {Uop::kMfmsr, 0, rt, 0, 0, 0, insn}; break;
                case X_SYNC: u.kind = Uop::kNop; break;
                // mtmsr/wrteei can enable MSR[EE] (interrupt-visible),
                // mfdcr/mtdcr are multi-cycle ring transactions: kFallback.
                default: break;
            }
            break;
        }

        default: break;  // loads/stores, sc, unknown primaries: kFallback
    }
    return u;
}

void DecodeCache::decode_block(Block& b, std::uint32_t pc) {
    b.start_pc = pc;
    b.page = mem_.page_of(pc);
    b.gen = mem_.page_gen(b.page);
    b.ops.clear();
    std::uint32_t p = pc;
    while (b.ops.size() < kMaxBlockLen) {
        bool ok = true;
        const std::uint32_t insn = mem_.peek_u32(p, &ok);
        if (!ok) break;  // X/corrupted word: the interpreter path reports
        b.ops.push_back(decode_one(insn, p));
        if (ends_block(b.ops.back().kind)) break;
        p += 4;
        if (!mem_.claims(p) || mem_.page_of(p) != b.page) break;
    }
}

const DecodeCache::Block* DecodeCache::lookup(std::uint32_t pc,
                                              bool assume_fresh) {
    if ((pc & 3u) != 0 || !mem_.claims(pc)) return nullptr;
    auto [it, inserted] = blocks_.try_emplace(pc);
    Block& b = it->second;
    if (inserted) {
        ++decodes_;
        decode_block(b, pc);
    } else if (!assume_fresh && !fresh(b)) {
        ++stale_redecodes_;
        decode_block(b, pc);
    }
    return b.ops.empty() ? nullptr : &b;
}

ExecResult exec_cached(ArchRegs& st, DecodeCache& cache, std::uint64_t budget,
                       bool assume_fresh) {
#if defined(__GNUC__) || defined(__clang__)
    // Threaded dispatch: each retired op jumps straight to the next op's
    // semantics through a per-call label table (cheap to build — a few
    // dozen stores per multi-thousand-instruction window — and free of
    // static-initialization ordering or thread-safety concerns).
    const void* jump[static_cast<std::size_t>(Uop::kFallback) + 1];
#define AUTOVISION_UOP_ADDR(name, ...) \
    jump[static_cast<std::size_t>(Uop::name)] = &&lbl_##name;
    AUTOVISION_UOP_SEMANTICS(AUTOVISION_UOP_ADDR)
#undef AUTOVISION_UOP_ADDR
    jump[static_cast<std::size_t>(Uop::kFallback)] = &&lbl_trap;

    std::uint64_t n = 0;
    const DecodeCache::Block* blk;
    const MicroOp* uop;
    std::uint32_t base;
    std::size_t idx;
    std::size_t len;

refill:
    if (n >= budget) return {ExecStop::kBudget, n};
    blk = cache.lookup(st.pc, assume_fresh);
    if (blk == nullptr || blk->ops.empty()) return {ExecStop::kNoBlock, n};
    base = blk->start_pc;
    idx = 0;
    len = blk->ops.size();

dispatch:
    uop = &blk->ops[idx];
    if (needs_interp(st, *uop)) return {ExecStop::kTerminator, n};
    st.pc += 4;
    goto* jump[static_cast<std::size_t>(uop->kind)];

#define AUTOVISION_UOP_LABEL(name, ...) \
    lbl_##name : {                      \
        __VA_ARGS__                     \
    }                                   \
    goto retired;
    AUTOVISION_UOP_SEMANTICS(AUTOVISION_UOP_LABEL)
#undef AUTOVISION_UOP_LABEL

lbl_trap:
    assert(false && "exec_cached: fallback op reached dispatch");
    return {ExecStop::kTerminator, n};

retired:
    ++n;
    if (st.halted) return {ExecStop::kHalted, n};
    if (st.pc == base + 4 * static_cast<std::uint32_t>(idx + 1) &&
        idx + 1 < len) {
        ++idx;
        if (n >= budget) return {ExecStop::kBudget, n};
        goto dispatch;
    }
    goto refill;
#else
    std::uint64_t n = 0;
    while (n < budget) {
        const DecodeCache::Block* blk = cache.lookup(st.pc, assume_fresh);
        if (blk == nullptr || blk->ops.empty()) {
            return {ExecStop::kNoBlock, n};
        }
        const std::uint32_t base = blk->start_pc;
        const std::size_t len = blk->ops.size();
        for (std::size_t idx = 0; idx < len;) {
            const MicroOp& op = blk->ops[idx];
            if (needs_interp(st, op)) return {ExecStop::kTerminator, n};
            exec_uop(st, op);
            ++n;
            if (st.halted) return {ExecStop::kHalted, n};
            if (st.pc != base + 4 * static_cast<std::uint32_t>(idx + 1)) {
                break;  // taken branch: re-enter through the cache
            }
            if (n >= budget) return {ExecStop::kBudget, n};
            ++idx;
        }
    }
    return {ExecStop::kBudget, n};
#endif
}

}  // namespace autovision::isa
