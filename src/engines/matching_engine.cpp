#include "matching_engine.hpp"

#include <algorithm>
#include <bit>

namespace autovision {

using rtlsim::LVec;
using rtlsim::Word;

MatchingEngine::MatchingEngine(rtlsim::Scheduler& sch, const std::string& name,
                               rtlsim::Signal<rtlsim::Logic>& clk,
                               rtlsim::Signal<rtlsim::Logic>& rst,
                               EngineRegs& regs, unsigned burst_limit)
    : EngineBase(sch, name, clk, rst, regs, burst_limit),
      mv_out(sch, full_name() + ".mv_out", LVec<32>{0}) {}

void MatchingEngine::reset_job() {
    phase_ = Phase::LoadPrev;
    dma_issued_ = false;
    load_done_ = false;
    gx_ = 0;
    gy_ = 0;
    cand_ = 0;
    best_dx_ = 0;
    best_dy_ = 0;
    best_cost_ = ~0u;
    prev_.clear();
    cur_.clear();
    out_.clear();
}

void MatchingEngine::save_job_state(StateWriter& w) const {
    w.u32(w_);
    w.u32(h_);
    w.u32(cur_addr_);
    w.u32(prev_addr_);
    w.u32(dst_);
    w.i32(search_);
    w.u32(step_);
    w.u32(margin_);
    w.u32(gw_);
    w.u32(gh_);
    w.u8(static_cast<std::uint8_t>(phase_));
    w.bool8(load_done_);
    w.u32(gx_);
    w.u32(gy_);
    w.u32(cand_);
    w.i32(best_dx_);
    w.i32(best_dy_);
    w.u32(best_cost_);
    w.bytes(prev_);
    w.bytes(cur_);
    w.words(out_);
}

bool MatchingEngine::restore_job_state(StateReader& r) {
    w_ = r.u32();
    h_ = r.u32();
    cur_addr_ = r.u32();
    prev_addr_ = r.u32();
    dst_ = r.u32();
    search_ = r.i32();
    step_ = r.u32();
    margin_ = r.u32();
    gw_ = r.u32();
    gh_ = r.u32();
    const std::uint8_t ph = r.u8();
    if (ph > static_cast<std::uint8_t>(Phase::Write)) return false;
    phase_ = static_cast<Phase>(ph);
    load_done_ = r.bool8();
    gx_ = r.u32();
    gy_ = r.u32();
    cand_ = r.u32();
    best_dx_ = r.i32();
    best_dy_ = r.i32();
    best_cost_ = r.u32();
    prev_ = r.bytes();
    cur_ = r.bytes();
    out_ = r.words();
    dma_issued_ = false;
    if (!r.ok_so_far()) return false;
    if (w_ == 0 && h_ == 0) {
        // Idle image: captured before any job was configured (see
        // CensusEngine::restore_job_state).
        return prev_.empty() && cur_.empty() && out_.empty() && gx_ == 0 &&
               gy_ == 0;
    }
    return w_ > 0 && h_ > 0 && prev_.size() == std::size_t{w_} * h_ &&
           cur_.size() == std::size_t{w_} * h_ &&
           out_.size() == std::size_t{gw_} * gh_ && gx_ <= gw_ && gy_ <= gh_;
}

void MatchingEngine::ckpt_save_job(rtlsim::SnapWriter& w) const {
    w.u32(w_);
    w.u32(h_);
    w.u32(cur_addr_);
    w.u32(prev_addr_);
    w.u32(dst_);
    w.i32(search_);
    w.u32(step_);
    w.u32(margin_);
    w.u32(gw_);
    w.u32(gh_);
    w.u8(static_cast<std::uint8_t>(phase_));
    w.bool8(dma_issued_);
    w.bool8(load_done_);
    w.u32(gx_);
    w.u32(gy_);
    w.u32(cand_);
    w.i32(best_dx_);
    w.i32(best_dy_);
    w.u32(best_cost_);
    w.bytes(prev_);
    w.bytes(cur_);
    w.words(out_);
}

bool MatchingEngine::ckpt_restore_job(rtlsim::SnapReader& r) {
    w_ = r.u32();
    h_ = r.u32();
    cur_addr_ = r.u32();
    prev_addr_ = r.u32();
    dst_ = r.u32();
    search_ = r.i32();
    step_ = r.u32();
    margin_ = r.u32();
    gw_ = r.u32();
    gh_ = r.u32();
    const std::uint8_t ph = r.u8();
    if (ph > static_cast<std::uint8_t>(Phase::Write)) return false;
    phase_ = static_cast<Phase>(ph);
    dma_issued_ = r.bool8();
    load_done_ = r.bool8();
    gx_ = r.u32();
    gy_ = r.u32();
    cand_ = r.u32();
    best_dx_ = r.i32();
    best_dy_ = r.i32();
    best_cost_ = r.u32();
    prev_ = r.bytes();
    cur_ = r.bytes();
    out_ = r.words();
    if (!r.ok_so_far()) return false;
    if (dma_issued_ != dma_.busy()) return false;
    if (prev_.empty() && cur_.empty() && out_.empty()) {
        // Between jobs: reset_job cleared the buffers but the geometry
        // registers keep the last job's values. Only the post-reset
        // initial state is legal with empty buffers.
        return phase_ == Phase::LoadPrev && !dma_issued_ && !load_done_ &&
               gx_ == 0 && gy_ == 0 && cand_ == 0;
    }
    if (w_ == 0 || prev_.size() != std::size_t{w_} * h_ ||
        cur_.size() != std::size_t{w_} * h_ ||
        out_.size() != std::size_t{gw_} * gh_) {
        return false;
    }
    if (!dma_issued_) return true;
    // Re-arm the open burst's closures; the target follows from the phase
    // (the phase only advances after the load/write completes).
    switch (phase_) {
        case Phase::LoadPrev:
            if (dma_.words_total() > (std::size_t{w_} * h_) / 4) return false;
            rearm_read(prev_);
            return true;
        case Phase::LoadCur:
            if (dma_.words_total() > (std::size_t{w_} * h_) / 4) return false;
            rearm_read(cur_);
            return true;
        case Phase::Write:
            if (dma_.words_total() > out_.size()) return false;
            dma_.ckpt_rearm({},
                            [this](std::uint32_t i) { return Word{out_[i]}; },
                            [this] {
                                dma_issued_ = false;
                                load_done_ = true;
                            });
            return true;
        default:
            return false;  // Compute never has a burst open
    }
}

bool MatchingEngine::begin_job() {
    w_ = regs_.width();
    h_ = regs_.height();
    cur_addr_ = regs_.src();
    prev_addr_ = regs_.src2();
    dst_ = regs_.dst();
    const std::uint32_t p = regs_.param();
    search_ = static_cast<int>(p & 0xFF);
    step_ = (p >> 8) & 0xFF;
    margin_ = (p >> 16) & 0xFF;
    if (w_ == 0 || h_ == 0 || (w_ % 4) != 0 || step_ == 0 || search_ == 0) {
        return false;
    }
    reset_job();
    // Same grid formula as video::grid_points, restated independently.
    gw_ = (w_ < 2 * margin_) ? 0 : (w_ - 2 * margin_ + step_ - 1) / step_;
    gh_ = (h_ < 2 * margin_) ? 0 : (h_ - 2 * margin_ + step_ - 1) / step_;
    prev_.assign(std::size_t{w_} * h_, 0);
    cur_.assign(std::size_t{w_} * h_, 0);
    out_.assign(std::size_t{gw_} * gh_, 0);
    return true;
}

void MatchingEngine::issue_frame_read(std::uint32_t addr,
                                      std::vector<std::uint8_t>& dest) {
    dma_issued_ = true;
    dma_.start_read(
        addr, (w_ * h_) / 4,
        [this, &dest](std::uint32_t i, Word w) {
            if (w.has_unknown()) report_x_input();
            const auto v = static_cast<std::uint32_t>(w.to_u64());
            dest[4 * i + 0] = static_cast<std::uint8_t>(v >> 24);
            dest[4 * i + 1] = static_cast<std::uint8_t>(v >> 16);
            dest[4 * i + 2] = static_cast<std::uint8_t>(v >> 8);
            dest[4 * i + 3] = static_cast<std::uint8_t>(v);
        },
        [this] {
            dma_issued_ = false;
            load_done_ = true;
        });
}

void MatchingEngine::rearm_read(std::vector<std::uint8_t>& dest) {
    // Identical to the closures issue_frame_read installs.
    dma_.ckpt_rearm(
        [this, &dest](std::uint32_t i, Word w) {
            if (w.has_unknown()) report_x_input();
            const auto v = static_cast<std::uint32_t>(w.to_u64());
            dest[4 * i + 0] = static_cast<std::uint8_t>(v >> 24);
            dest[4 * i + 1] = static_cast<std::uint8_t>(v >> 16);
            dest[4 * i + 2] = static_cast<std::uint8_t>(v >> 8);
            dest[4 * i + 3] = static_cast<std::uint8_t>(v);
        },
        {}, [this] {
            dma_issued_ = false;
            load_done_ = true;
        });
}

std::uint8_t MatchingEngine::sample(const std::vector<std::uint8_t>& img,
                                    int x, int y) const {
    const int cx = std::clamp(x, 0, static_cast<int>(w_) - 1);
    const int cy = std::clamp(y, 0, static_cast<int>(h_) - 1);
    return img[static_cast<std::size_t>(cy) * w_ + static_cast<std::size_t>(cx)];
}

unsigned MatchingEngine::cost(unsigned x, unsigned y, int dx, int dy) const {
    // 3x3 patch Hamming comparator — evaluated in a single clock, as the
    // hardware computes all nine signature XOR/popcounts in parallel.
    unsigned c = 0;
    for (int oy = -1; oy <= 1; ++oy) {
        for (int ox = -1; ox <= 1; ++ox) {
            const std::uint8_t a =
                sample(cur_, static_cast<int>(x) + ox, static_cast<int>(y) + oy);
            const std::uint8_t b = sample(prev_, static_cast<int>(x) - dx + ox,
                                          static_cast<int>(y) - dy + oy);
            c += static_cast<unsigned>(std::popcount(
                static_cast<unsigned>(a ^ b)));
        }
    }
    return c;
}

bool MatchingEngine::work_cycle() {
    if (dma_issued_) return false;

    switch (phase_) {
        case Phase::LoadPrev:
            if (!load_done_) {
                issue_frame_read(prev_addr_, prev_);
                return false;
            }
            load_done_ = false;
            phase_ = Phase::LoadCur;
            return false;

        case Phase::LoadCur:
            if (!load_done_) {
                issue_frame_read(cur_addr_, cur_);
                return false;
            }
            load_done_ = false;
            phase_ = Phase::Compute;
            if (gw_ == 0 || gh_ == 0) phase_ = Phase::Write;  // nothing to do
            best_cost_ = ~0u;
            return false;

        case Phase::Compute: {
            // One candidate displacement per clock; scan order dy-major
            // from -search to +search, strict-improvement tie-break —
            // identical to the reference model.
            const unsigned span = 2 * static_cast<unsigned>(search_) + 1;
            const int dy = static_cast<int>(cand_ / span) - search_;
            const int dx = static_cast<int>(cand_ % span) - search_;
            const unsigned x = margin_ + gx_ * step_;
            const unsigned y = margin_ + gy_ * step_;
            const unsigned c = cost(x, y, dx, dy);
            if (c < best_cost_) {
                best_cost_ = c;
                best_dx_ = dx;
                best_dy_ = dy;
            }
            if (++cand_ == span * span) {
                cand_ = 0;
                const std::uint32_t wrd =
                    ((static_cast<std::uint32_t>(best_dx_ + 128) & 0xFF) << 24) |
                    ((static_cast<std::uint32_t>(best_dy_ + 128) & 0xFF) << 16) |
                    (best_cost_ & 0xFFFF);
                out_[std::size_t{gy_} * gw_ + gx_] = wrd;
                mv_out.write(LVec<32>{wrd});
                best_cost_ = ~0u;
                if (++gx_ == gw_) {
                    gx_ = 0;
                    if (++gy_ == gh_) phase_ = Phase::Write;
                }
            }
            return false;
        }

        case Phase::Write:
            if (!load_done_) {
                if (out_.empty()) return true;
                dma_issued_ = true;
                dma_.start_write(
                    dst_, static_cast<std::uint32_t>(out_.size()),
                    [this](std::uint32_t i) { return Word{out_[i]}; },
                    [this] {
                        dma_issued_ = false;
                        load_done_ = true;
                    });
                return false;
            }
            load_done_ = false;
            return true;  // job complete
    }
    return false;
}

}  // namespace autovision
