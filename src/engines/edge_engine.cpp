#include "edge_engine.hpp"

#include <algorithm>
#include <cstdlib>

namespace autovision {

using rtlsim::LVec;
using rtlsim::Word;

EdgeEngine::EdgeEngine(rtlsim::Scheduler& sch, const std::string& name,
                       rtlsim::Signal<rtlsim::Logic>& clk,
                       rtlsim::Signal<rtlsim::Logic>& rst, EngineRegs& regs,
                       unsigned burst_limit)
    : EngineBase(sch, name, clk, rst, regs, burst_limit) {}

void EdgeEngine::reset_job() {
    phase_ = Phase::LoadFirst;
    dma_issued_ = false;
    write_issued_ = false;
    y_ = 0;
    x_ = 0;
    prev_.clear();
    cur_.clear();
    next_.clear();
    out_row_.clear();
}

bool EdgeEngine::begin_job() {
    w_ = regs_.width();
    h_ = regs_.height();
    src_ = regs_.src();
    dst_ = regs_.dst();
    if (w_ == 0 || h_ == 0 || (w_ % 4) != 0) return false;
    reset_job();
    prev_.assign(w_, 0);
    cur_.assign(w_, 0);
    next_.assign(w_, 0);
    out_row_.assign(w_ / 4, 0);
    return true;
}

void EdgeEngine::save_job_state(StateWriter& w) const {
    w.u32(w_);
    w.u32(h_);
    w.u32(src_);
    w.u32(dst_);
    w.u8(static_cast<std::uint8_t>(phase_));
    w.bool8(write_issued_);
    w.u32(y_);
    w.u32(x_);
    w.bytes(prev_);
    w.bytes(cur_);
    w.bytes(next_);
    w.words(out_row_);
}

bool EdgeEngine::restore_job_state(StateReader& r) {
    w_ = r.u32();
    h_ = r.u32();
    src_ = r.u32();
    dst_ = r.u32();
    const std::uint8_t ph = r.u8();
    if (ph > static_cast<std::uint8_t>(Phase::WriteRow)) return false;
    phase_ = static_cast<Phase>(ph);
    write_issued_ = r.bool8();
    y_ = r.u32();
    x_ = r.u32();
    prev_ = r.bytes();
    cur_ = r.bytes();
    next_ = r.bytes();
    out_row_ = r.words();
    dma_issued_ = false;
    if (!r.ok_so_far()) return false;
    if (w_ == 0 && h_ == 0) {
        // Idle image: captured before any job was configured (see
        // CensusEngine::restore_job_state).
        return prev_.empty() && cur_.empty() && next_.empty() &&
               out_row_.empty() && y_ == 0 && x_ == 0;
    }
    return w_ > 0 && h_ > 0 && prev_.size() == w_ && cur_.size() == w_ &&
           next_.size() == w_ && out_row_.size() == w_ / 4;
}

void EdgeEngine::ckpt_save_job(rtlsim::SnapWriter& w) const {
    w.u32(w_);
    w.u32(h_);
    w.u32(src_);
    w.u32(dst_);
    w.u8(static_cast<std::uint8_t>(phase_));
    w.bool8(dma_issued_);
    w.bool8(write_issued_);
    w.u32(y_);
    w.u32(x_);
    w.bytes(prev_);
    w.bytes(cur_);
    w.bytes(next_);
    w.words(out_row_);
}

bool EdgeEngine::ckpt_restore_job(rtlsim::SnapReader& r) {
    w_ = r.u32();
    h_ = r.u32();
    src_ = r.u32();
    dst_ = r.u32();
    const std::uint8_t ph = r.u8();
    if (ph > static_cast<std::uint8_t>(Phase::WriteRow)) return false;
    phase_ = static_cast<Phase>(ph);
    dma_issued_ = r.bool8();
    write_issued_ = r.bool8();
    y_ = r.u32();
    x_ = r.u32();
    prev_ = r.bytes();
    cur_ = r.bytes();
    next_ = r.bytes();
    out_row_ = r.words();
    if (!r.ok_so_far()) return false;
    if (dma_issued_ != dma_.busy()) return false;
    if (prev_.empty() && cur_.empty() && next_.empty() && out_row_.empty()) {
        // Between jobs: reset_job cleared the buffers but w_/h_ keep the
        // last job's geometry; only the post-reset initial state is legal.
        return phase_ == Phase::LoadFirst && !dma_issued_ &&
               !write_issued_ && y_ == 0 && x_ == 0;
    }
    if (w_ == 0 || prev_.size() != w_ || cur_.size() != w_ ||
        next_.size() != w_ || out_row_.size() != w_ / 4) {
        return false;
    }
    if (!dma_issued_) return true;
    if (dma_.words_total() > w_ / 4) return false;
    // Same phase-to-target mapping as the CIE (structural sibling).
    switch (phase_) {
        case Phase::LoadNext:
            rearm_read(cur_);
            return true;
        case Phase::Compute:
            rearm_read(next_);
            return true;
        case Phase::WriteRow:
            if (!write_issued_) return false;
            dma_.ckpt_rearm(
                {}, [this](std::uint32_t i) { return Word{out_row_[i]}; },
                [this] { dma_issued_ = false; });
            return true;
        default:
            return false;
    }
}

void EdgeEngine::rearm_read(std::vector<std::uint8_t>& dest) {
    dma_.ckpt_rearm(
        [this, &dest](std::uint32_t i, Word w) {
            if (w.has_unknown()) report_x_input();
            const auto v = static_cast<std::uint32_t>(w.to_u64());
            dest[4 * i + 0] = static_cast<std::uint8_t>(v >> 24);
            dest[4 * i + 1] = static_cast<std::uint8_t>(v >> 16);
            dest[4 * i + 2] = static_cast<std::uint8_t>(v >> 8);
            dest[4 * i + 3] = static_cast<std::uint8_t>(v);
        },
        {}, [this] { dma_issued_ = false; });
}

void EdgeEngine::issue_row_read(unsigned row, std::vector<std::uint8_t>& dest) {
    dma_issued_ = true;
    dma_.start_read(
        src_ + row * w_, w_ / 4,
        [this, &dest](std::uint32_t i, Word w) {
            if (w.has_unknown()) report_x_input();
            const auto v = static_cast<std::uint32_t>(w.to_u64());
            dest[4 * i + 0] = static_cast<std::uint8_t>(v >> 24);
            dest[4 * i + 1] = static_cast<std::uint8_t>(v >> 16);
            dest[4 * i + 2] = static_cast<std::uint8_t>(v >> 8);
            dest[4 * i + 3] = static_cast<std::uint8_t>(v);
        },
        [this] { dma_issued_ = false; });
}

void EdgeEngine::issue_row_write() {
    dma_issued_ = true;
    dma_.start_write(
        dst_ + y_ * w_, w_ / 4,
        [this](std::uint32_t i) { return Word{out_row_[i]}; },
        [this] { dma_issued_ = false; });
}

int EdgeEngine::sample(const std::vector<std::uint8_t>& row, int x) const {
    return row[static_cast<std::size_t>(
        std::clamp(x, 0, static_cast<int>(w_) - 1))];
}

std::uint8_t EdgeEngine::magnitude(unsigned x) const {
    // Independent Sobel implementation over the three line buffers.
    const int xi = static_cast<int>(x);
    const int gx = (sample(prev_, xi + 1) + 2 * sample(cur_, xi + 1) +
                    sample(next_, xi + 1)) -
                   (sample(prev_, xi - 1) + 2 * sample(cur_, xi - 1) +
                    sample(next_, xi - 1));
    const int gy = (sample(next_, xi - 1) + 2 * sample(next_, xi) +
                    sample(next_, xi + 1)) -
                   (sample(prev_, xi - 1) + 2 * sample(prev_, xi) +
                    sample(prev_, xi + 1));
    const int mag = std::abs(gx) + std::abs(gy);
    return static_cast<std::uint8_t>(mag > 255 ? 255 : mag);
}

bool EdgeEngine::work_cycle() {
    if (dma_issued_) return false;

    switch (phase_) {
        case Phase::LoadFirst:
            issue_row_read(0, cur_);
            phase_ = Phase::LoadNext;
            return false;

        case Phase::LoadNext: {
            if (y_ == 0) prev_ = cur_;  // top edge: vertical clamp
            const unsigned next_row = std::min(y_ + 1, h_ - 1);
            if (next_row == y_) {
                next_ = cur_;
                phase_ = Phase::Compute;
                x_ = 0;
                return false;
            }
            issue_row_read(next_row, next_);
            phase_ = Phase::Compute;
            x_ = 0;
            return false;
        }

        case Phase::Compute: {
            const std::uint8_t m = magnitude(x_);
            stream_out.write(LVec<8>{m});  // streaming engine: per-pixel tap
            const unsigned shift = (3 - (x_ % 4)) * 8;
            out_row_[x_ / 4] =
                (out_row_[x_ / 4] & ~(0xFFu << shift)) |
                (static_cast<std::uint32_t>(m) << shift);
            if (++x_ == w_) phase_ = Phase::WriteRow;
            return false;
        }

        case Phase::WriteRow:
            if (!write_issued_) {
                write_issued_ = true;
                issue_row_write();
                return false;
            }
            write_issued_ = false;
            ++y_;
            if (y_ == h_) return true;
            prev_.swap(cur_);
            cur_.swap(next_);
            phase_ = Phase::LoadNext;
            return false;
    }
    return false;
}

}  // namespace autovision
