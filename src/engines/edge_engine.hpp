// Edge Detection Engine — RTL model.
//
// The third swappable engine of the demonstrator family: the AutoVision
// system exchanged its detection engines as driving conditions changed
// (highway / tunnel / urban), and an edge engine is the classic tunnel-mode
// processing step. Structurally a sibling of the Census Image Engine — a
// streaming datapath over three row buffers, one pixel per clock — but with
// a Sobel magnitude core, so it demonstrates that the reconfiguration
// machinery (portal, SimBs, isolation, state save) is engine-agnostic.
//
// Independent implementation, cross-checked against video::sobel_transform.
#pragma once

#include <vector>

#include "engine.hpp"

namespace autovision {

class EdgeEngine final : public EngineBase {
public:
    EdgeEngine(rtlsim::Scheduler& sch, const std::string& name,
               rtlsim::Signal<rtlsim::Logic>& clk,
               rtlsim::Signal<rtlsim::Logic>& rst, EngineRegs& regs,
               unsigned burst_limit = 16);

protected:
    bool begin_job() override;
    bool work_cycle() override;
    void reset_job() override;
    void save_job_state(StateWriter& w) const override;
    bool restore_job_state(StateReader& r) override;
    void ckpt_save_job(rtlsim::SnapWriter& w) const override;
    bool ckpt_restore_job(rtlsim::SnapReader& r) override;

private:
    enum class Phase { LoadFirst, LoadNext, Compute, WriteRow };

    void issue_row_read(unsigned row, std::vector<std::uint8_t>& dest);
    void issue_row_write();
    void rearm_read(std::vector<std::uint8_t>& dest);
    [[nodiscard]] std::uint8_t magnitude(unsigned x) const;
    [[nodiscard]] int sample(const std::vector<std::uint8_t>& row, int x) const;

    unsigned w_ = 0;
    unsigned h_ = 0;
    std::uint32_t src_ = 0;
    std::uint32_t dst_ = 0;

    Phase phase_ = Phase::LoadFirst;
    bool dma_issued_ = false;
    bool write_issued_ = false;
    unsigned y_ = 0;
    unsigned x_ = 0;
    std::vector<std::uint8_t> prev_;
    std::vector<std::uint8_t> cur_;
    std::vector<std::uint8_t> next_;
    std::vector<std::uint32_t> out_row_;
};

}  // namespace autovision
