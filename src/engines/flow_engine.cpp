#include "flow_engine.hpp"

namespace autovision {

using rtlsim::LVec;
using rtlsim::Word;

FlowEngine::FlowEngine(rtlsim::Scheduler& sch, const std::string& name,
                       rtlsim::Signal<rtlsim::Logic>& clk,
                       rtlsim::Signal<rtlsim::Logic>& rst, EngineRegs& regs,
                       unsigned burst_limit)
    : EngineBase(sch, name, clk, rst, regs, burst_limit) {}

void FlowEngine::reset_job() {
    phase_ = Phase::LoadCur;
    dma_issued_ = false;
    write_issued_ = false;
    y_ = 0;
    x_ = 0;
    cur_.clear();
    prev_.clear();
    out_row_.clear();
}

bool FlowEngine::begin_job() {
    w_ = regs_.width();
    h_ = regs_.height();
    src_ = regs_.src();
    src2_ = regs_.src2();
    dst_ = regs_.dst();
    if (w_ == 0 || h_ == 0 || (w_ % 4) != 0) return false;
    reset_job();
    cur_.assign(w_, 0);
    prev_.assign(w_, 0);
    out_row_.assign(w_ / 4, 0);
    return true;
}

void FlowEngine::save_job_state(StateWriter& w) const {
    w.u32(w_);
    w.u32(h_);
    w.u32(src_);
    w.u32(src2_);
    w.u32(dst_);
    w.u8(static_cast<std::uint8_t>(phase_));
    w.bool8(write_issued_);
    w.u32(y_);
    w.u32(x_);
    w.bytes(cur_);
    w.bytes(prev_);
    w.words(out_row_);
}

bool FlowEngine::restore_job_state(StateReader& r) {
    w_ = r.u32();
    h_ = r.u32();
    src_ = r.u32();
    src2_ = r.u32();
    dst_ = r.u32();
    const std::uint8_t ph = r.u8();
    if (ph > static_cast<std::uint8_t>(Phase::WriteRow)) return false;
    phase_ = static_cast<Phase>(ph);
    write_issued_ = r.bool8();
    y_ = r.u32();
    x_ = r.u32();
    cur_ = r.bytes();
    prev_ = r.bytes();
    out_row_ = r.words();
    dma_issued_ = false;
    if (!r.ok_so_far()) return false;
    if (w_ == 0 && h_ == 0) {
        // Idle image: captured before any job was configured (see
        // CensusEngine::restore_job_state).
        return cur_.empty() && prev_.empty() && out_row_.empty() && y_ == 0 &&
               x_ == 0;
    }
    return w_ > 0 && h_ > 0 && cur_.size() == w_ && prev_.size() == w_ &&
           out_row_.size() == w_ / 4;
}

void FlowEngine::ckpt_save_job(rtlsim::SnapWriter& w) const {
    w.u32(w_);
    w.u32(h_);
    w.u32(src_);
    w.u32(src2_);
    w.u32(dst_);
    w.u8(static_cast<std::uint8_t>(phase_));
    w.bool8(dma_issued_);
    w.bool8(write_issued_);
    w.u32(y_);
    w.u32(x_);
    w.bytes(cur_);
    w.bytes(prev_);
    w.words(out_row_);
}

bool FlowEngine::ckpt_restore_job(rtlsim::SnapReader& r) {
    w_ = r.u32();
    h_ = r.u32();
    src_ = r.u32();
    src2_ = r.u32();
    dst_ = r.u32();
    const std::uint8_t ph = r.u8();
    if (ph > static_cast<std::uint8_t>(Phase::WriteRow)) return false;
    phase_ = static_cast<Phase>(ph);
    dma_issued_ = r.bool8();
    write_issued_ = r.bool8();
    y_ = r.u32();
    x_ = r.u32();
    cur_ = r.bytes();
    prev_ = r.bytes();
    out_row_ = r.words();
    if (!r.ok_so_far()) return false;
    if (dma_issued_ != dma_.busy()) return false;
    if (cur_.empty() && prev_.empty() && out_row_.empty()) {
        // Between jobs: reset_job cleared the buffers but w_/h_ keep the
        // last job's geometry; only the post-reset initial state is legal.
        return phase_ == Phase::LoadCur && !dma_issued_ && !write_issued_ &&
               y_ == 0 && x_ == 0;
    }
    if (w_ == 0 || cur_.size() != w_ || prev_.size() != w_ ||
        out_row_.size() != w_ / 4) {
        return false;
    }
    if (!dma_issued_) return true;
    if (dma_.words_total() > w_ / 4) return false;
    // Same phase-to-target mapping as the CIE/EDGE (structural siblings).
    switch (phase_) {
        case Phase::LoadPrev:
            rearm_read(cur_);
            return true;
        case Phase::Compute:
            rearm_read(prev_);
            return true;
        case Phase::WriteRow:
            if (!write_issued_) return false;
            dma_.ckpt_rearm(
                {}, [this](std::uint32_t i) { return Word{out_row_[i]}; },
                [this] { dma_issued_ = false; });
            return true;
        default:
            return false;
    }
}

void FlowEngine::rearm_read(std::vector<std::uint8_t>& dest) {
    dma_.ckpt_rearm(
        [this, &dest](std::uint32_t i, Word w) {
            if (w.has_unknown()) report_x_input();
            const auto v = static_cast<std::uint32_t>(w.to_u64());
            dest[4 * i + 0] = static_cast<std::uint8_t>(v >> 24);
            dest[4 * i + 1] = static_cast<std::uint8_t>(v >> 16);
            dest[4 * i + 2] = static_cast<std::uint8_t>(v >> 8);
            dest[4 * i + 3] = static_cast<std::uint8_t>(v);
        },
        {}, [this] { dma_issued_ = false; });
}

void FlowEngine::issue_row_read(std::uint32_t base,
                                std::vector<std::uint8_t>& dest) {
    dma_issued_ = true;
    dma_.start_read(
        base + y_ * w_, w_ / 4,
        [this, &dest](std::uint32_t i, Word w) {
            if (w.has_unknown()) report_x_input();
            const auto v = static_cast<std::uint32_t>(w.to_u64());
            dest[4 * i + 0] = static_cast<std::uint8_t>(v >> 24);
            dest[4 * i + 1] = static_cast<std::uint8_t>(v >> 16);
            dest[4 * i + 2] = static_cast<std::uint8_t>(v >> 8);
            dest[4 * i + 3] = static_cast<std::uint8_t>(v);
        },
        [this] { dma_issued_ = false; });
}

void FlowEngine::issue_row_write() {
    dma_issued_ = true;
    dma_.start_write(
        dst_ + y_ * w_, w_ / 4,
        [this](std::uint32_t i) { return Word{out_row_[i]}; },
        [this] { dma_issued_ = false; });
}

bool FlowEngine::work_cycle() {
    if (dma_issued_) return false;

    switch (phase_) {
        case Phase::LoadCur:
            issue_row_read(src_, cur_);
            phase_ = Phase::LoadPrev;
            return false;

        case Phase::LoadPrev:
            issue_row_read(src2_, prev_);
            phase_ = Phase::Compute;
            x_ = 0;
            return false;

        case Phase::Compute: {
            const int d = static_cast<int>(cur_[x_]) - static_cast<int>(prev_[x_]);
            const auto m = static_cast<std::uint8_t>(d < 0 ? -d : d);
            stream_out.write(LVec<8>{m});  // streaming engine: per-pixel tap
            const unsigned shift = (3 - (x_ % 4)) * 8;
            out_row_[x_ / 4] =
                (out_row_[x_ / 4] & ~(0xFFu << shift)) |
                (static_cast<std::uint32_t>(m) << shift);
            if (++x_ == w_) phase_ = Phase::WriteRow;
            return false;
        }

        case Phase::WriteRow:
            if (!write_issued_) {
                write_issued_ = true;
                issue_row_write();
                return false;
            }
            write_issued_ = false;
            ++y_;
            if (y_ == h_) return true;
            phase_ = Phase::LoadCur;
            return false;
    }
    return false;
}

}  // namespace autovision
