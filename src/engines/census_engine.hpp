// Census Image Engine (CIE) — RTL model.
//
// A streaming engine: three row line-buffers, one census signature computed
// per clock, rows fetched and written back by DMA bursts. The per-pixel
// datapath makes the CIE the most signal-active block in the system, which
// is why it dominates simulation elapsed time in Table II.
//
// The census computation here is an independent implementation; the
// scoreboard cross-checks it against video::census_transform.
#pragma once

#include <vector>

#include "engine.hpp"

namespace autovision {

class CensusEngine final : public EngineBase {
public:
    CensusEngine(rtlsim::Scheduler& sch, const std::string& name,
                 rtlsim::Signal<rtlsim::Logic>& clk,
                 rtlsim::Signal<rtlsim::Logic>& rst, EngineRegs& regs,
                 unsigned burst_limit = 16);

protected:
    bool begin_job() override;
    bool work_cycle() override;
    void reset_job() override;
    void save_job_state(StateWriter& w) const override;
    bool restore_job_state(StateReader& r) override;
    void ckpt_save_job(rtlsim::SnapWriter& w) const override;
    bool ckpt_restore_job(rtlsim::SnapReader& r) override;

private:
    enum class Phase { LoadFirst, LoadNext, Compute, WriteRow };

    void issue_row_read(unsigned row, std::vector<std::uint8_t>& dest);
    void issue_row_write();
    void rearm_read(std::vector<std::uint8_t>& dest);
    [[nodiscard]] std::uint8_t signature(unsigned x) const;
    [[nodiscard]] std::uint8_t sample(const std::vector<std::uint8_t>& row,
                                      int x) const;

    unsigned w_ = 0;
    unsigned h_ = 0;
    std::uint32_t src_ = 0;
    std::uint32_t dst_ = 0;

    Phase phase_ = Phase::LoadFirst;
    bool dma_issued_ = false;
    bool write_issued_ = false;
    unsigned y_ = 0;
    unsigned x_ = 0;
    std::vector<std::uint8_t> prev_;
    std::vector<std::uint8_t> cur_;
    std::vector<std::uint8_t> next_;
    std::vector<std::uint32_t> out_row_;
};

}  // namespace autovision
