// Common machinery of the reconfigurable video engines.
//
// An engine is an RrModuleIf living in the reconfigurable region. Its pins
// (a private PlbMasterPort bundle plus the done-interrupt line) are muxed
// onto the region boundary by the Extended Portal (ReSim) or the
// Engine_Wrapper (Virtual Multiplexing). Control and status flow through an
// EngineRegs block in the static region: the engine samples one-cycle
// start/reset pulses, so commands issued while the engine is swapped out or
// mid-reconfiguration are physically lost (the bug.dpr.6b mechanism).
#pragma once

#include <cstdint>
#include <string>

#include "bus/plb.hpp"
#include "engine_regs.hpp"
#include "kernel/kernel.hpp"
#include "recon/rr_module.hpp"
#include "recon/state.hpp"

namespace autovision {

class EngineBase : public rtlsim::Module, public RrModuleIf {
public:
    /// Engine-side pins; the region mux connects them to the bus.
    PlbMasterPort pins;
    /// One-cycle completion pulse towards the interrupt controller.
    rtlsim::Signal<rtlsim::Logic> done_irq;
    /// Streaming datapath tap: per-pixel engines (CIE) toggle this every
    /// compute cycle, block engines (ME) only per result. It reproduces the
    /// signal-activity asymmetry behind Table II's elapsed-time inversion.
    rtlsim::Signal<rtlsim::LVec<8>> stream_out;

    EngineBase(rtlsim::Scheduler& sch, const std::string& name,
               rtlsim::Signal<rtlsim::Logic>& clk,
               rtlsim::Signal<rtlsim::Logic>& rst, EngineRegs& regs,
               unsigned burst_limit = 16);

    // --- RrModuleIf -----------------------------------------------------
    void rm_activate() override;
    void rm_deactivate() override;
    [[nodiscard]] bool rm_active() const override { return active_; }

    /// State capture (GCAPTURE): refuses while a DMA transaction is in
    /// flight — the module must be quiesced before readback, a design rule
    /// the portal checks.
    [[nodiscard]] std::vector<std::uint8_t> rm_save_state() override;
    [[nodiscard]] bool rm_restore_state(
        std::span<const std::uint8_t> state) override;

    [[nodiscard]] bool busy() const { return running_; }
    [[nodiscard]] std::uint64_t jobs_completed() const { return jobs_; }
    [[nodiscard]] std::uint64_t busy_cycles() const { return busy_cycles_; }

    // --- checkpoint ------------------------------------------------------
    /// Full-fidelity snapshot: residency/job bookkeeping + DMA FSM +
    /// derived datapath, legal mid-burst (unlike rm_save_state, which
    /// refuses while the DMA is in flight). The derived class re-arms the
    /// DMA data closures from its restored phase flags.
    void ckpt_save(rtlsim::SnapWriter& w) const;
    [[nodiscard]] bool ckpt_restore(rtlsim::SnapReader& r);

protected:
    /// Latch configuration from the registers; return false on a bad
    /// configuration (reported by the base).
    virtual bool begin_job() = 0;

    /// Advance the datapath by one clock; return true when the job is done.
    virtual bool work_cycle() = 0;

    /// Reset job-level state to the post-configuration initial state.
    virtual void reset_job() = 0;

    /// Serialize / reinstate the derived datapath state (DMA is known
    /// idle). restore_job_state returns false on a malformed image.
    virtual void save_job_state(StateWriter& w) const = 0;
    virtual bool restore_job_state(StateReader& r) = 0;

    /// Checkpoint the derived datapath including mid-DMA descriptors;
    /// ckpt_restore_job must re-install the DMA closures (via
    /// dma_.ckpt_rearm) when a burst was open at save time.
    virtual void ckpt_save_job(rtlsim::SnapWriter& w) const = 0;
    [[nodiscard]] virtual bool ckpt_restore_job(rtlsim::SnapReader& r) = 0;

    /// Capped diagnostic for X encountered in input data.
    void report_x_input();

    EngineRegs& regs_;
    DmaMaster dma_;

private:
    void on_clock();

    bool active_ = false;
    bool running_ = false;
    std::uint64_t jobs_ = 0;
    std::uint64_t busy_cycles_ = 0;
    unsigned x_reports_ = 0;
};

}  // namespace autovision
