// Matching Engine (ME) — RTL model.
//
// A block engine: both census images are DMA-loaded into internal block RAM,
// then one search candidate is evaluated per clock (the 3x3 patch comparator
// is fully parallel in hardware), and the motion field is written back in
// one burst sequence. Far fewer boundary-signal toggles than the CIE, which
// is the Table II asymmetry.
//
// Algorithm, scan order and tie-break replicate video::match_census exactly
// but are implemented independently so the scoreboard cross-check is real.
#pragma once

#include <vector>

#include "engine.hpp"

namespace autovision {

class MatchingEngine final : public EngineBase {
public:
    MatchingEngine(rtlsim::Scheduler& sch, const std::string& name,
                   rtlsim::Signal<rtlsim::Logic>& clk,
                   rtlsim::Signal<rtlsim::Logic>& rst, EngineRegs& regs,
                   unsigned burst_limit = 16);

    /// Motion-vector output tap (one toggle per grid point).
    rtlsim::Signal<rtlsim::LVec<32>> mv_out;

protected:
    bool begin_job() override;
    bool work_cycle() override;
    void reset_job() override;
    void save_job_state(StateWriter& w) const override;
    bool restore_job_state(StateReader& r) override;
    void ckpt_save_job(rtlsim::SnapWriter& w) const override;
    bool ckpt_restore_job(rtlsim::SnapReader& r) override;

private:
    enum class Phase { LoadPrev, LoadCur, Compute, Write };

    void issue_frame_read(std::uint32_t addr, std::vector<std::uint8_t>& dest);
    void rearm_read(std::vector<std::uint8_t>& dest);
    [[nodiscard]] std::uint8_t sample(const std::vector<std::uint8_t>& img,
                                      int x, int y) const;
    [[nodiscard]] unsigned cost(unsigned x, unsigned y, int dx, int dy) const;

    unsigned w_ = 0;
    unsigned h_ = 0;
    std::uint32_t cur_addr_ = 0;
    std::uint32_t prev_addr_ = 0;
    std::uint32_t dst_ = 0;
    int search_ = 4;
    unsigned step_ = 4;
    unsigned margin_ = 8;
    unsigned gw_ = 0;
    unsigned gh_ = 0;

    Phase phase_ = Phase::LoadPrev;
    bool dma_issued_ = false;
    bool load_done_ = false;
    unsigned gx_ = 0;
    unsigned gy_ = 0;
    unsigned cand_ = 0;
    int best_dx_ = 0;
    int best_dy_ = 0;
    unsigned best_cost_ = ~0u;
    std::vector<std::uint8_t> prev_;
    std::vector<std::uint8_t> cur_;
    std::vector<std::uint32_t> out_;
};

}  // namespace autovision
