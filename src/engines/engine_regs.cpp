#include "engine_regs.hpp"

namespace autovision {

using rtlsim::Logic;
using rtlsim::Word;

EngineRegs::EngineRegs(rtlsim::Scheduler& sch, const std::string& name,
                       rtlsim::Signal<Logic>& clk, std::uint32_t dcr_base)
    : Module(sch, name),
      start_pulse(sch, full_name() + ".start", Logic::L0),
      reset_pulse(sch, full_name() + ".reset", Logic::L0),
      base_(dcr_base) {
    sync_proc("pulse_gen", [this] { on_clock(); }, {rtlsim::posedge(clk)});
}

void EngineRegs::on_clock() {
    start_pulse.write(pend_start_ ? Logic::L1 : Logic::L0);
    reset_pulse.write(pend_reset_ ? Logic::L1 : Logic::L0);
    pend_start_ = false;
    pend_reset_ = false;
}

Word EngineRegs::dcr_read(std::uint32_t regno) {
    const std::uint32_t r = regno - base_;
    if (r == kStatus) {
        return Word{(busy_ ? 1u : 0u) | (done_ ? 2u : 0u)};
    }
    if (r == kCtrl) return Word{0};  // write-only pulse bits
    return Word{regs_[r]};
}

void EngineRegs::dcr_write(std::uint32_t regno, Word w) {
    const std::uint32_t r = regno - base_;
    if (w.has_unknown()) {
        // A corrupted write (e.g. driver using an X status value) must not
        // silently land; report and drop it.
        report("X written to register " + std::to_string(r));
        return;
    }
    const auto v = static_cast<std::uint32_t>(w.to_u64());
    switch (r) {
        case kCtrl:
            if (v & 1u) pend_start_ = true;
            if (v & 2u) pend_reset_ = true;
            break;
        case kStatus:
            if (v & 2u) done_ = false;  // W1C
            break;
        default:
            if (r < kCount) regs_[r] = v;
            break;
    }
}

}  // namespace autovision
