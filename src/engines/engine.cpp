#include "engine.hpp"

namespace autovision {

using rtlsim::Logic;
using rtlsim::is1;

EngineBase::EngineBase(rtlsim::Scheduler& sch, const std::string& name,
                       rtlsim::Signal<Logic>& clk, rtlsim::Signal<Logic>& rst,
                       EngineRegs& regs, unsigned burst_limit)
    : Module(sch, name),
      pins(sch, full_name() + ".pins"),
      done_irq(sch, full_name() + ".done_irq", Logic::L0),
      stream_out(sch, full_name() + ".stream", rtlsim::LVec<8>{0}),
      regs_(regs),
      dma_(pins, burst_limit) {
    sync_proc("datapath", [this] { on_clock(); }, {rtlsim::posedge(clk)});
    (void)rst;  // engines use the soft reset pulse; hard reset comes via
                // rm_activate (post-configuration state)
}

void EngineBase::rm_activate() {
    active_ = true;
    running_ = false;
    dma_.reset();
    reset_job();
    pins.idle();
    done_irq.write(Logic::L0);
}

void EngineBase::rm_deactivate() {
    active_ = false;
    running_ = false;
    dma_.reset();
    pins.idle();
    done_irq.write(Logic::L0);
}

std::vector<std::uint8_t> EngineBase::rm_save_state() {
    if (dma_.busy()) {
        report("state capture refused: DMA transaction in flight"
               " (module not quiescent)");
        return {};
    }
    StateWriter w;
    w.u32(0x5AFE'57A7);  // image magic
    w.bool8(running_);
    save_job_state(w);
    return w.take();
}

bool EngineBase::rm_restore_state(std::span<const std::uint8_t> state) {
    StateReader r(state);
    if (r.u32() != 0x5AFE'57A7) return false;
    const bool running = r.bool8();
    if (!restore_job_state(r) || !r.ok()) {
        // Reject atomically: come up in the initial state instead.
        reset_job();
        running_ = false;
        return false;
    }
    running_ = running;
    regs_.set_busy(running_);
    return true;
}

void EngineBase::ckpt_save(rtlsim::SnapWriter& w) const {
    dma_.ckpt_save(w);
    w.bool8(active_);
    w.bool8(running_);
    w.u64(jobs_);
    w.u64(busy_cycles_);
    w.u32(x_reports_);
    ckpt_save_job(w);
}

bool EngineBase::ckpt_restore(rtlsim::SnapReader& r) {
    if (!dma_.ckpt_restore(r)) return false;
    active_ = r.bool8();
    running_ = r.bool8();
    jobs_ = r.u64();
    busy_cycles_ = r.u64();
    x_reports_ = r.u32();
    return ckpt_restore_job(r) && r.ok_so_far();
}

void EngineBase::report_x_input() {
    if (x_reports_ < 5) {
        ++x_reports_;
        report("X in input data stream");
    }
}

void EngineBase::on_clock() {
    if (!active_) return;  // swapped out: flip-flops are not even configured

    dma_.step();
    done_irq.write(Logic::L0);

    if (is1(regs_.reset_pulse.read())) {
        running_ = false;
        dma_.reset();
        reset_job();
        regs_.set_busy(false);
        return;
    }

    if (!running_) {
        if (is1(regs_.start_pulse.read())) {
            if (begin_job()) {
                running_ = true;
                regs_.set_busy(true);
            } else {
                report("rejected start: bad configuration");
            }
        }
        return;
    }

    ++busy_cycles_;
    if (work_cycle()) {
        running_ = false;
        ++jobs_;
        regs_.set_done();
        done_irq.write(Logic::L1);
    }
}

}  // namespace autovision
