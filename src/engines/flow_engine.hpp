// Flow Engine — RTL model.
//
// The fourth swappable engine of the demonstrator family: a temporal-
// difference motion-energy stage, the cheapest motion cue in the library.
// Structurally the two-input sibling of the Edge Engine — a streaming
// datapath that reads one row from the *current* frame (SRC) and one from
// the *previous* frame (SRC2) per output row and emits the saturated
// absolute difference, one pixel per clock. Exercising a second DMA source
// stream makes it the engine that stresses per-region bus arbitration the
// hardest of the streaming family.
//
// Independent implementation, cross-checked against
// video::flow_energy_transform.
#pragma once

#include <vector>

#include "engine.hpp"

namespace autovision {

class FlowEngine final : public EngineBase {
public:
    FlowEngine(rtlsim::Scheduler& sch, const std::string& name,
               rtlsim::Signal<rtlsim::Logic>& clk,
               rtlsim::Signal<rtlsim::Logic>& rst, EngineRegs& regs,
               unsigned burst_limit = 16);

protected:
    bool begin_job() override;
    bool work_cycle() override;
    void reset_job() override;
    void save_job_state(StateWriter& w) const override;
    bool restore_job_state(StateReader& r) override;
    void ckpt_save_job(rtlsim::SnapWriter& w) const override;
    bool ckpt_restore_job(rtlsim::SnapReader& r) override;

private:
    enum class Phase { LoadCur, LoadPrev, Compute, WriteRow };

    void issue_row_read(std::uint32_t base, std::vector<std::uint8_t>& dest);
    void issue_row_write();
    void rearm_read(std::vector<std::uint8_t>& dest);

    unsigned w_ = 0;
    unsigned h_ = 0;
    std::uint32_t src_ = 0;   ///< current frame
    std::uint32_t src2_ = 0;  ///< previous frame
    std::uint32_t dst_ = 0;

    Phase phase_ = Phase::LoadCur;
    bool dma_issued_ = false;
    bool write_issued_ = false;
    unsigned y_ = 0;
    unsigned x_ = 0;
    std::vector<std::uint8_t> cur_;
    std::vector<std::uint8_t> prev_;
    std::vector<std::uint32_t> out_row_;
};

}  // namespace autovision
