#include "wire.hpp"

#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace autovision::svc {

const char* to_string(MsgType t) {
    switch (t) {
        case MsgType::kHello: return "hello";
        case MsgType::kHelloOk: return "hello-ok";
        case MsgType::kSubmit: return "submit";
        case MsgType::kSubmitOk: return "submit-ok";
        case MsgType::kStatus: return "status";
        case MsgType::kStatusOk: return "status-ok";
        case MsgType::kList: return "list";
        case MsgType::kListOk: return "list-ok";
        case MsgType::kWait: return "wait";
        case MsgType::kRecord: return "record";
        case MsgType::kDone: return "done";
        case MsgType::kCancel: return "cancel";
        case MsgType::kCancelOk: return "cancel-ok";
        case MsgType::kShutdown: return "shutdown";
        case MsgType::kShutdownOk: return "shutdown-ok";
        case MsgType::kError: return "error";
    }
    return "?";
}

const char* to_string(Priority p) {
    switch (p) {
        case Priority::kHigh: return "high";
        case Priority::kNormal: return "normal";
        case Priority::kBatch: return "batch";
    }
    return "?";
}

bool priority_from_string(const std::string& s, Priority* out) {
    if (s == "high") {
        *out = Priority::kHigh;
    } else if (s == "normal") {
        *out = Priority::kNormal;
    } else if (s == "batch") {
        *out = Priority::kBatch;
    } else {
        return false;
    }
    return true;
}

const char* to_string(JobState s) {
    switch (s) {
        case JobState::kQueued: return "queued";
        case JobState::kRunning: return "running";
        case JobState::kDone: return "done";
        case JobState::kFailed: return "failed";
        case JobState::kCancelled: return "cancelled";
        case JobState::kUnknown: return "unknown";
    }
    return "?";
}

// --- message bodies --------------------------------------------------------

void JobSpec::encode(rtlsim::SnapWriter& w) const {
    w.u64(id);
    w.str(kind);
    w.str(client);
    w.u8(static_cast<std::uint8_t>(priority));
    w.u32(static_cast<std::uint32_t>(params.size()));
    for (const auto& [k, v] : params) {
        w.str(k);
        w.str(v);
    }
}

bool JobSpec::decode(rtlsim::SnapReader& r) {
    id = r.u64();
    kind = r.str();
    client = r.str();
    const std::uint8_t p = r.u8();
    if (p > static_cast<std::uint8_t>(Priority::kBatch)) return false;
    priority = static_cast<Priority>(p);
    params.clear();
    const std::uint32_t n = r.u32();
    for (std::uint32_t i = 0; i < n && r.ok_so_far(); ++i) {
        std::string k = r.str();
        params[std::move(k)] = r.str();
    }
    return r.ok_so_far() && params.size() == n;
}

std::uint64_t JobSpec::config_hash() const {
    std::uint64_t h = rtlsim::snap_hash64("svc.job.v1");
    h = rtlsim::snap_hash64(kind, h);
    for (const auto& [k, v] : params) {  // std::map: deterministic order
        h = rtlsim::snap_hash64(k, h);
        h = rtlsim::snap_hash64(v, h);
    }
    return h;
}

void JobRef::encode(rtlsim::SnapWriter& w) const { w.u64(id); }

bool JobRef::decode(rtlsim::SnapReader& r) {
    id = r.u64();
    return r.ok_so_far();
}

void SubmitResult::encode(rtlsim::SnapWriter& w) const {
    w.bool8(accepted);
    w.u64(id);
    w.str(reason);
}

bool SubmitResult::decode(rtlsim::SnapReader& r) {
    accepted = r.bool8();
    id = r.u64();
    reason = r.str();
    return r.ok_so_far();
}

void JobStatusInfo::encode(rtlsim::SnapWriter& w) const {
    w.u64(id);
    w.u8(static_cast<std::uint8_t>(state));
    w.str(kind);
    w.u8(static_cast<std::uint8_t>(priority));
    w.u32(units_done);
    w.u32(units_total);
    w.u32(checkpoints);
    w.u32(resumed);
}

bool JobStatusInfo::decode(rtlsim::SnapReader& r) {
    id = r.u64();
    const std::uint8_t s = r.u8();
    if (s > static_cast<std::uint8_t>(JobState::kUnknown)) return false;
    state = static_cast<JobState>(s);
    kind = r.str();
    const std::uint8_t p = r.u8();
    if (p > static_cast<std::uint8_t>(Priority::kBatch)) return false;
    priority = static_cast<Priority>(p);
    units_done = r.u32();
    units_total = r.u32();
    checkpoints = r.u32();
    resumed = r.u32();
    return r.ok_so_far();
}

void JobList::encode(rtlsim::SnapWriter& w) const {
    w.u32(static_cast<std::uint32_t>(jobs.size()));
    for (const JobStatusInfo& j : jobs) j.encode(w);
}

bool JobList::decode(rtlsim::SnapReader& r) {
    jobs.clear();
    const std::uint32_t n = r.u32();
    for (std::uint32_t i = 0; i < n && r.ok_so_far(); ++i) {
        JobStatusInfo j;
        if (!j.decode(r)) return false;
        jobs.push_back(std::move(j));
    }
    return r.ok_so_far() && jobs.size() == n;
}

void RecordLine::encode(rtlsim::SnapWriter& w) const {
    w.u64(id);
    w.str(line);
}

bool RecordLine::decode(rtlsim::SnapReader& r) {
    id = r.u64();
    line = r.str();
    return r.ok_so_far();
}

void JobOutcome::encode(rtlsim::SnapWriter& w) const {
    w.u64(id);
    w.u8(static_cast<std::uint8_t>(state));
    w.bool8(pass);
    w.str(summary);
    w.str(verdicts);
    w.str(cover_json);
}

bool JobOutcome::decode(rtlsim::SnapReader& r) {
    id = r.u64();
    const std::uint8_t s = r.u8();
    if (s > static_cast<std::uint8_t>(JobState::kUnknown)) return false;
    state = static_cast<JobState>(s);
    pass = r.bool8();
    summary = r.str();
    verdicts = r.str();
    cover_json = r.str();
    return r.ok_so_far();
}

void ErrorInfo::encode(rtlsim::SnapWriter& w) const { w.str(message); }

bool ErrorInfo::decode(rtlsim::SnapReader& r) {
    message = r.str();
    return r.ok_so_far();
}

void Hello::encode(rtlsim::SnapWriter& w) const {
    w.u32(version);
    w.str(name);
}

bool Hello::decode(rtlsim::SnapReader& r) {
    version = r.u32();
    name = r.str();
    return r.ok_so_far();
}

// --- framing ---------------------------------------------------------------

bool decode_frame(std::span<const std::uint8_t> image, Frame* out,
                  std::size_t* consumed) {
    rtlsim::SnapReader r(image);
    const std::uint32_t len = r.u32();
    if (!r.ok_so_far() || len == 0 || len > kMaxFrame) return false;
    if (image.size() < 4 + std::size_t{len}) return false;
    out->type = static_cast<MsgType>(image[4]);
    out->body.assign(image.begin() + 5, image.begin() + 4 + len);
    if (consumed != nullptr) *consumed = 4 + std::size_t{len};
    return true;
}

namespace {

/// Full write, restarting on EINTR and resuming after short writes.
/// send(MSG_NOSIGNAL) instead of write() so a peer that disappeared
/// mid-frame surfaces as EPIPE here rather than a process-killing SIGPIPE
/// (the daemon must survive any client hanging up). Non-socket fds (the
/// tests drive frames through pipes) fall back to write().
bool write_all(int fd, const std::uint8_t* p, std::size_t n) {
    bool is_socket = true;
    while (n != 0) {
        ssize_t w;
        if (is_socket) {
            w = ::send(fd, p, n, MSG_NOSIGNAL);
            if (w < 0 && errno == ENOTSOCK) {
                is_socket = false;
                continue;
            }
        } else {
            w = ::write(fd, p, n);
        }
        if (w < 0) {
            if (errno == EINTR) continue;
            return false;
        }
        if (w == 0) return false;  // no progress — don't spin forever
        p += w;
        n -= static_cast<std::size_t>(w);
    }
    return true;
}

/// Full read; 1 = ok, 0 = clean EOF at a frame boundary, -1 = error/short.
int read_all(int fd, std::uint8_t* p, std::size_t n, bool eof_ok) {
    std::size_t got = 0;
    while (got != n) {
        const ssize_t r = ::read(fd, p + got, n - got);
        if (r < 0) {
            if (errno == EINTR) continue;
            return -1;
        }
        if (r == 0) return got == 0 && eof_ok ? 0 : -1;
        got += static_cast<std::size_t>(r);
    }
    return 1;
}

}  // namespace

bool write_frame_fd(int fd, MsgType t, std::span<const std::uint8_t> body) {
    if (body.size() + 1 > kMaxFrame) return false;
    rtlsim::SnapWriter head;
    head.u32(static_cast<std::uint32_t>(body.size() + 1));
    head.u8(static_cast<std::uint8_t>(t));
    // One writev-shaped pair of writes; the per-connection write mutex in
    // the daemon keeps frames from interleaving.
    if (!write_all(fd, head.buffer().data(), head.buffer().size())) {
        return false;
    }
    return write_all(fd, body.data(), body.size());
}

bool read_frame_fd(int fd, Frame* out) {
    std::uint8_t head[5];
    if (read_all(fd, head, sizeof head, /*eof_ok=*/true) != 1) return false;
    rtlsim::SnapReader r(std::span<const std::uint8_t>(head, 4));
    const std::uint32_t len = r.u32();
    if (len == 0 || len > kMaxFrame) return false;
    out->type = static_cast<MsgType>(head[4]);
    out->body.resize(len - 1);
    if (len > 1 &&
        read_all(fd, out->body.data(), out->body.size(), false) != 1) {
        return false;
    }
    return true;
}

}  // namespace autovision::svc
