// svc: thin synchronous client for the campaign service.
//
// One connection, one request in flight at a time — exactly the protocol's
// shape. campaign_client (and any future tool: a CI submitter, a dashboard
// scraper) layers argv/printing on top of this; tests drive a daemon
// through it in-process. Every call returns false with *err set on a
// transport error or a daemon-reported kError.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "socket.hpp"
#include "wire.hpp"

namespace autovision::svc {

class Client {
public:
    /// Connect + kHello handshake. `name` is the client tag admission
    /// accounts against (and the default JobSpec.client).
    [[nodiscard]] bool connect(const std::string& socket_path,
                               const std::string& name, std::string* err);

    [[nodiscard]] bool connected() const noexcept { return fd_.valid(); }
    void close() { fd_.reset(); }

    /// Submit a job. True when the exchange worked; check result->accepted
    /// for the admission decision.
    [[nodiscard]] bool submit(const JobSpec& spec, SubmitResult* result,
                              std::string* err);

    [[nodiscard]] bool status(std::uint64_t id, JobStatusInfo* info,
                              std::string* err);

    [[nodiscard]] bool list(JobList* out, std::string* err);

    /// Block until the job finishes; each streamed record line is handed
    /// to `on_record` (may be null), the terminal outcome lands in *out.
    [[nodiscard]] bool wait(
        std::uint64_t id,
        const std::function<void(const RecordLine&)>& on_record,
        JobOutcome* out, std::string* err);

    /// Cancel a queued or running job; *info reports the post-cancel state
    /// (cancellation of a running job is cooperative, between units).
    [[nodiscard]] bool cancel(std::uint64_t id, JobStatusInfo* info,
                              std::string* err);

    /// Ask the daemon to shut down gracefully (running jobs checkpoint and
    /// are preserved for resume).
    [[nodiscard]] bool shutdown_daemon(std::string* err);

private:
    /// One request -> one response of `want` (kError is decoded into *err).
    [[nodiscard]] bool roundtrip(MsgType send, MsgType want,
                                 std::span<const std::uint8_t> body,
                                 Frame* reply, std::string* err);

    Fd fd_;
};

}  // namespace autovision::svc
