// svc: crash-safe append-only journal.
//
// The persistence primitive under the campaign service's job queue. A
// journal file is a sequence of self-delimiting records:
//
//   u32  magic "AVJL" (0x41564A4C, big-endian)
//   u32  payload length (<= kMaxRecord)
//   u64  FNV-1a 64 of the payload bytes
//   ...  payload
//
// Appends are a single buffered write + flush + fdatasync, so a record is
// either fully on disk or detectably torn. Replay scans from the start and
// stops at the first record whose magic, length, or checksum does not hold
// — by construction that can only be the tail of the file after a crash
// (kill -9 mid-append, power loss). Recovery truncates the torn tail and
// reopens for append; every intact prefix record survives. The torn-record
// unit tests cut a journal at every byte offset of its last record and
// assert exactly this.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <string>
#include <vector>

namespace autovision::svc {

inline constexpr std::uint32_t kJournalMagic = 0x41564A4C;  // "AVJL"
/// Generous bound whose real job is to keep a corrupt length field from
/// driving a giant allocation during replay; actual records (job specs,
/// progress checkpoints) are far smaller.
inline constexpr std::uint32_t kMaxRecord = 64u << 20;

/// Result of scanning a journal file.
struct ReplayStats {
    std::size_t records = 0;     ///< intact records delivered
    std::size_t valid_bytes = 0; ///< offset of the first torn byte
    std::size_t torn_bytes = 0;  ///< bytes discarded after valid_bytes
    bool torn = false;           ///< true when a torn tail was found
    bool ok = true;              ///< false only on I/O errors (not torn)
    std::string error;
};

/// Scan `path`, invoking `fn` for each intact record in order. A missing
/// file is an empty, clean journal. Never modifies the file.
[[nodiscard]] ReplayStats replay_journal(
    const std::string& path,
    const std::function<void(std::span<const std::uint8_t>)>& fn);

/// Append-only writer. open() recovers first: it replays the existing file
/// and truncates any torn tail, so the writer always appends at a record
/// boundary.
class JournalWriter {
public:
    JournalWriter() = default;
    ~JournalWriter() { close(); }
    JournalWriter(const JournalWriter&) = delete;
    JournalWriter& operator=(const JournalWriter&) = delete;

    /// Open (creating if absent), replaying existing records through `fn`
    /// (may be null) and truncating a torn tail. False on I/O failure.
    [[nodiscard]] bool open(
        const std::string& path,
        const std::function<void(std::span<const std::uint8_t>)>& fn,
        std::string* err);

    /// Append one record durably (write + fdatasync). False on I/O failure
    /// or an oversized payload.
    [[nodiscard]] bool append(std::span<const std::uint8_t> payload);

    [[nodiscard]] bool is_open() const noexcept { return fd_ >= 0; }
    [[nodiscard]] const std::string& path() const noexcept { return path_; }
    /// Stats of the open()-time recovery scan.
    [[nodiscard]] const ReplayStats& recovery() const noexcept {
        return recovery_;
    }

    void close();

private:
    int fd_ = -1;
    std::string path_;
    ReplayStats recovery_;
};

}  // namespace autovision::svc
