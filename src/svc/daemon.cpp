#include "daemon.hpp"

#include <cstdarg>
#include <cstdio>
#include <fstream>
#include <utility>

#include "campaign/sink.hpp"

namespace autovision::svc {

namespace {

bool terminal(JobState s) {
    return s == JobState::kDone || s == JobState::kFailed ||
           s == JobState::kCancelled;
}

bool send_error(int fd, const std::string& msg) {
    ErrorInfo e;
    e.message = msg;
    return send_msg(fd, MsgType::kError, e);
}

}  // namespace

Daemon::Daemon(DaemonConfig cfg)
    : cfg_(std::move(cfg)), admission_(cfg_.admission) {}

Daemon::~Daemon() {
    // run() is the normal teardown path; this only covers start() without
    // run() (e.g. a failed start in a test).
    signal_stop();
    ready_.close();
    for (std::thread& t : executors_) {
        if (t.joinable()) t.join();
    }
    for (const auto& c : conns_) {
        if (c->th.joinable()) {
            c->fd.shutdown();
            c->th.join();
        }
    }
}

void Daemon::note(const char* fmt, ...) const {
    if (cfg_.quiet) return;
    std::va_list ap;
    va_start(ap, fmt);
    std::fputs("campaignd: ", stderr);
    std::vfprintf(stderr, fmt, ap);
    std::fputc('\n', stderr);
    va_end(ap);
}

bool Daemon::start(std::string* err) {
    if (!queue_.open(cfg_.state_dir, cfg_.shards, err)) return false;
    if (queue_.recovery_torn()) {
        note("journal recovery: torn tail truncated");
    }

    // Re-enqueue every job with no terminal record, each with its latest
    // resume blob already replayed into the queue entry. Recovery bypasses
    // admission *decisions* (the journal is the source of truth for what
    // was admitted) but still charges the budgets.
    const std::vector<std::uint64_t> pending = queue_.unfinished();
    for (const std::uint64_t id : pending) {
        QueueEntry e;
        if (!queue_.find(id, &e)) continue;
        (void)admission_.admit(e.spec);
        auto rt = std::make_shared<JobRt>();
        rt->spec = e.spec;
        rt->resumed = e.resumed;
        {
            const std::lock_guard lk(live_mu_);
            live_[id] = rt;
        }
        ready_.push(id, e.spec.priority);
    }
    if (!pending.empty()) {
        note("recovered %zu unfinished job(s) from the journal",
             pending.size());
    }

    if (!listener_.listen(cfg_.socket_path, err)) return false;

    executors_.reserve(cfg_.executors == 0 ? 1 : cfg_.executors);
    for (unsigned i = 0; i < std::max(1u, cfg_.executors); ++i) {
        executors_.emplace_back([this] { executor_loop(); });
    }
    started_ = true;
    note("listening on %s (%u shard(s), %u executor(s), %zu job(s) known)",
         cfg_.socket_path.c_str(), queue_.shards(),
         std::max(1u, cfg_.executors), queue_.size());
    return true;
}

void Daemon::signal_stop() noexcept {
    stop_.store(true);
    listener_.shutdown();
}

void Daemon::run() {
    while (!stop_.load()) {
        Fd c = listener_.accept();
        if (!c.valid()) {
            if (stop_.load()) break;
            continue;
        }
        auto conn = std::make_shared<Conn>();
        conn->fd = std::move(c);
        {
            const std::lock_guard lk(conns_mu_);
            conns_.push_back(conn);
        }
        conn->th = std::thread([this, conn] {
            serve_connection(conn->fd.get());
            // Wake nothing, close nothing: the fd stays open (and shut
            // down) until teardown so no other thread can race a close.
            conn->fd.shutdown();
        });
    }

    // Teardown. Executors first: they stop between units (ExecHooks
    // cancelled polls stop_), checkpoint out, and leave their jobs
    // unfinished in the journal.
    ready_.close();
    for (std::thread& t : executors_) {
        if (t.joinable()) t.join();
    }
    // Wake waiters of jobs that never got to run.
    std::vector<std::shared_ptr<JobRt>> leftover;
    {
        const std::lock_guard lk(live_mu_);
        for (auto& [id, rt] : live_) leftover.push_back(rt);
        live_.clear();
    }
    for (const auto& rt : leftover) {
        const std::lock_guard lk(rt->subs_mu);
        for (const auto& sub : rt->subs) {
            if (!sub->done) {
                (void)send_error(sub->fd,
                                 "daemon shutting down; job preserved");
                sub->done = true;
            }
        }
        rt->subs_cv.notify_all();
    }
    {
        const std::lock_guard lk(conns_mu_);
        for (const auto& c : conns_) c->fd.shutdown();
    }
    std::vector<std::shared_ptr<Conn>> conns;
    {
        const std::lock_guard lk(conns_mu_);
        conns.swap(conns_);
    }
    for (const auto& c : conns) {
        if (c->th.joinable()) c->th.join();
    }
    listener_.close();
    {
        const std::lock_guard lk(rollup_mu_);
        write_rollup_locked();
    }
    note("stopped (%zu job(s) in journal)", queue_.size());
}

// --- executors -------------------------------------------------------------

void Daemon::executor_loop() {
    while (true) {
        const std::optional<std::uint64_t> id = ready_.pop();
        if (!id.has_value()) break;
        if (stop_.load()) break;  // popped job stays unfinished: resumes
        const std::shared_ptr<JobRt> rt = live_find(*id);
        if (!rt) continue;  // cancelled while queued
        run_one(*id, rt);
    }
}

void Daemon::run_one(std::uint64_t id, const std::shared_ptr<JobRt>& rt) {
    admission_.started(rt->spec);
    rt->state.store(JobState::kRunning);
    QueueEntry e;
    if (!queue_.find(id, &e)) return;
    note("job %llu (%s) %s", static_cast<unsigned long long>(id),
         e.spec.kind.c_str(),
         e.resume_blob.empty() ? "started" : "resuming from checkpoint");

    // Per-job JSONL mirror, sink discipline: format the whole line first,
    // one write+flush under the lock.
    std::ofstream mirror(cfg_.state_dir + "/job-" + std::to_string(id) +
                             ".jsonl",
                         std::ios::out | std::ios::trunc);
    std::mutex mirror_mu;

    ExecHooks hooks;
    hooks.on_record = [&](const campaign::JobRecord& rec) {
        roll_up_metrics(rec);
        const std::string line = campaign::to_jsonl(rec);
        if (mirror.is_open()) {
            const std::lock_guard lk(mirror_mu);
            mirror << line << '\n';
            mirror.flush();
        }
        fan_out_record(rt, rec);
    };
    hooks.on_checkpoint = [&](const std::string& blob) {
        if (!queue_.record_progress(id, blob)) {
            note("job %llu: checkpoint write failed",
                 static_cast<unsigned long long>(id));
        }
    };
    hooks.on_progress = [&](std::uint32_t done, std::uint32_t total) {
        rt->units_done.store(done);
        rt->units_total.store(total);
    };
    hooks.cancelled = [&] { return rt->cancel.load() || stop_.load(); };

    JobOutcome out = run_service_job(e.spec, cfg_.exec, hooks, e.resume_blob);
    out.id = id;

    // A job stopped by daemon shutdown (not by a client cancel) gets no
    // terminal record: it stays unfinished in the journal and resumes from
    // its last checkpoint at the next start.
    const bool preserved = out.state == JobState::kCancelled &&
                           stop_.load() && !rt->cancel.load();
    if (!preserved && !queue_.record_done(id, out)) {
        note("job %llu: outcome write failed",
             static_cast<unsigned long long>(id));
    }
    admission_.finished(rt->spec);
    broadcast_done(rt, out);
    {
        const std::lock_guard lk(live_mu_);
        live_.erase(id);
    }
    {
        const std::lock_guard lk(rollup_mu_);
        write_rollup_locked();
    }
    note("job %llu %s%s", static_cast<unsigned long long>(id),
         preserved ? "preserved for resume" : to_string(out.state),
         !preserved && terminal(out.state)
             ? (out.pass ? " (pass)" : " (fail)")
             : "");
}

void Daemon::fan_out_record(const std::shared_ptr<JobRt>& rt,
                            const campaign::JobRecord& rec) {
    RecordLine rl;
    rl.id = rt->spec.id;
    rl.line = campaign::to_jsonl(rec);
    const std::lock_guard lk(rt->subs_mu);
    for (const auto& sub : rt->subs) {
        if (!sub->done) (void)send_msg(sub->fd, MsgType::kRecord, rl);
    }
}

void Daemon::broadcast_done(const std::shared_ptr<JobRt>& rt,
                            const JobOutcome& out) {
    const std::lock_guard lk(rt->subs_mu);
    rt->state.store(out.state);
    for (const auto& sub : rt->subs) {
        if (!sub->done) {
            (void)send_msg(sub->fd, MsgType::kDone, out);
            sub->done = true;
        }
    }
    rt->subs.clear();
    rt->subs_cv.notify_all();
}

// --- metrics rollup --------------------------------------------------------

void Daemon::roll_up_metrics(const campaign::JobRecord& rec) {
    const auto ends_with = [](const std::string& s, const char* suf) {
        const std::size_t n = std::char_traits<char>::length(suf);
        return s.size() >= n && s.compare(s.size() - n, n, suf) == 0;
    };
    const std::lock_guard lk(rollup_mu_);
    rollup_["records"] += 1.0;
    rollup_[rec.passed() ? "records_pass" : "records_fail"] += 1.0;
    for (const auto& [key, value] : rec.report.metrics) {
        if (key.rfind("obs.", 0) != 0) continue;
        const auto it = rollup_.find(key);
        if (it == rollup_.end()) {
            rollup_[key] = value;
        } else if (ends_with(key, ".min")) {
            it->second = std::min(it->second, value);
        } else if (ends_with(key, ".max")) {
            it->second = std::max(it->second, value);
        } else {
            it->second += value;  // counts and sums accumulate
        }
    }
}

void Daemon::write_rollup_locked() const {
    const std::string path = cfg_.state_dir + "/metrics-rollup.json";
    const std::string tmp = path + ".tmp";
    {
        std::ofstream os(tmp, std::ios::out | std::ios::trunc);
        if (!os) return;
        os << "{";
        bool first = true;
        for (const auto& [key, value] : rollup_) {
            if (!first) os << ",";
            first = false;
            os << "\n  \"" << campaign::json_escape(key) << "\": " << value;
        }
        os << (first ? "}" : "\n}") << "\n";
        if (!os.good()) return;
    }
    (void)std::rename(tmp.c_str(), path.c_str());
}

// --- status ---------------------------------------------------------------

std::shared_ptr<Daemon::JobRt> Daemon::live_find(std::uint64_t id) const {
    const std::lock_guard lk(live_mu_);
    const auto it = live_.find(id);
    return it != live_.end() ? it->second : nullptr;
}

JobStatusInfo Daemon::status_of(std::uint64_t id) const {
    JobStatusInfo info;
    info.id = id;
    QueueEntry e;
    if (!queue_.find(id, &e)) {
        info.state = JobState::kUnknown;
        return info;
    }
    info.kind = e.spec.kind;
    info.priority = e.spec.priority;
    info.checkpoints = e.checkpoints;
    info.resumed = e.resumed;
    if (const std::shared_ptr<JobRt> rt = live_find(id)) {
        info.state = rt->state.load();
        info.units_done = rt->units_done.load();
        info.units_total = rt->units_total.load();
    } else if (e.finished) {
        info.state = e.cancelled ? JobState::kCancelled : e.outcome.state;
    } else {
        info.state = JobState::kQueued;
    }
    return info;
}

// --- connections -----------------------------------------------------------

void Daemon::serve_connection(int fd) {
    Frame f;
    if (!read_frame_fd(fd, &f)) return;
    if (f.type != MsgType::kHello) {
        (void)send_error(fd, "expected hello");
        return;
    }
    Hello hello;
    {
        rtlsim::SnapReader r = f.reader();
        if (!hello.decode(r)) {
            (void)send_error(fd, "malformed hello");
            return;
        }
    }
    if (hello.version != kProtocolVersion) {
        (void)send_error(fd, "protocol version mismatch (daemon speaks v" +
                                 std::to_string(kProtocolVersion) + ")");
        return;
    }
    Hello ack;
    ack.name = "campaignd";
    if (!send_msg(fd, MsgType::kHelloOk, ack)) return;
    const std::string client =
        hello.name.empty() ? std::string("anonymous") : hello.name;

    while (read_frame_fd(fd, &f)) {
        rtlsim::SnapReader r = f.reader();
        switch (f.type) {
            case MsgType::kSubmit: {
                JobSpec spec;
                if (!spec.decode(r)) {
                    (void)send_error(fd, "malformed submit");
                    break;
                }
                spec.id = 0;
                if (spec.client.empty()) spec.client = client;
                SubmitResult res;
                if (stop_.load()) {
                    res.reason = "daemon shutting down";
                    (void)send_msg(fd, MsgType::kSubmitOk, res);
                    break;
                }
                const AdmissionController::Decision d =
                    admission_.admit(spec);
                if (!d.admit) {
                    res.reason = d.reason;
                    (void)send_msg(fd, MsgType::kSubmitOk, res);
                    break;
                }
                const std::uint64_t id = queue_.record_submit(spec);
                if (id == 0) {
                    admission_.started(spec);  // release the queued slot
                    admission_.finished(spec);
                    res.reason = "journal write failed";
                    (void)send_msg(fd, MsgType::kSubmitOk, res);
                    break;
                }
                spec.id = id;
                auto rt = std::make_shared<JobRt>();
                rt->spec = spec;
                {
                    const std::lock_guard lk(live_mu_);
                    live_[id] = rt;
                }
                ready_.push(id, spec.priority);
                note("job %llu (%s) submitted by '%s' [%s]",
                     static_cast<unsigned long long>(id), spec.kind.c_str(),
                     spec.client.c_str(), to_string(spec.priority));
                res.accepted = true;
                res.id = id;
                (void)send_msg(fd, MsgType::kSubmitOk, res);
                break;
            }
            case MsgType::kStatus: {
                JobRef ref;
                if (!ref.decode(r)) {
                    (void)send_error(fd, "malformed status request");
                    break;
                }
                (void)send_msg(fd, MsgType::kStatusOk, status_of(ref.id));
                break;
            }
            case MsgType::kList: {
                JobList list;
                for (const std::uint64_t id : queue_.ids()) {
                    list.jobs.push_back(status_of(id));
                }
                (void)send_msg(fd, MsgType::kListOk, list);
                break;
            }
            case MsgType::kWait: {
                JobRef ref;
                if (!ref.decode(r)) {
                    (void)send_error(fd, "malformed wait request");
                    break;
                }
                if (const std::shared_ptr<JobRt> rt = live_find(ref.id)) {
                    auto sub = std::make_shared<Subscriber>();
                    sub->fd = fd;
                    std::unique_lock lk(rt->subs_mu);
                    if (!terminal(rt->state.load())) {
                        rt->subs.push_back(sub);
                        rt->subs_cv.wait(lk, [&] { return sub->done; });
                        break;  // terminal frame already sent by executor
                    }
                    // Fell through: terminal between live_find and lock —
                    // answer from the recorded outcome below.
                }
                QueueEntry e;
                if (!queue_.find(ref.id, &e)) {
                    (void)send_error(fd, "unknown job id " +
                                             std::to_string(ref.id));
                } else if (e.finished) {
                    (void)send_msg(fd, MsgType::kDone, e.outcome);
                } else {
                    // Unfinished with no runtime: only reachable mid-
                    // teardown.
                    (void)send_error(fd,
                                     "daemon shutting down; job preserved");
                }
                break;
            }
            case MsgType::kCancel: {
                JobRef ref;
                if (!ref.decode(r)) {
                    (void)send_error(fd, "malformed cancel request");
                    break;
                }
                const std::shared_ptr<JobRt> rt = live_find(ref.id);
                if (rt && ready_.remove(ref.id)) {
                    // Still queued: cancel durably, release budgets, wake
                    // any waiters.
                    if (!queue_.record_cancel(ref.id)) {
                        note("job %llu: cancel write failed",
                             static_cast<unsigned long long>(ref.id));
                    }
                    admission_.started(rt->spec);
                    admission_.finished(rt->spec);
                    JobOutcome out;
                    out.id = ref.id;
                    out.state = JobState::kCancelled;
                    out.summary = "cancelled";
                    broadcast_done(rt, out);
                    {
                        const std::lock_guard lk(live_mu_);
                        live_.erase(ref.id);
                    }
                    note("job %llu cancelled while queued",
                         static_cast<unsigned long long>(ref.id));
                } else if (rt) {
                    rt->cancel.store(true);  // picked up between units
                    note("job %llu cancel requested (running)",
                         static_cast<unsigned long long>(ref.id));
                }
                const JobStatusInfo info = status_of(ref.id);
                if (info.state == JobState::kUnknown) {
                    (void)send_error(fd, "unknown job id " +
                                             std::to_string(ref.id));
                } else {
                    (void)send_msg(fd, MsgType::kCancelOk, info);
                }
                break;
            }
            case MsgType::kShutdown: {
                (void)write_frame_fd(fd, MsgType::kShutdownOk, {});
                note("shutdown requested by '%s'", client.c_str());
                signal_stop();
                break;
            }
            default:
                (void)send_error(fd, std::string("unexpected message ") +
                                         to_string(f.type));
                break;
        }
    }
}

}  // namespace autovision::svc
