#include "socket.hpp"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace autovision::svc {

namespace {

bool fill_addr(const std::string& path, sockaddr_un* addr, std::string* err) {
    if (path.size() >= sizeof addr->sun_path) {
        if (err != nullptr) *err = "socket path too long: " + path;
        return false;
    }
    std::memset(addr, 0, sizeof *addr);
    addr->sun_family = AF_UNIX;
    std::memcpy(addr->sun_path, path.c_str(), path.size() + 1);
    return true;
}

}  // namespace

Fd& Fd::operator=(Fd&& o) noexcept {
    if (this != &o) {
        reset();
        fd_ = std::exchange(o.fd_, -1);
    }
    return *this;
}

void Fd::reset(int fd) {
    if (fd_ >= 0) ::close(fd_);
    fd_ = fd;
}

void Fd::shutdown() const noexcept {
    if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
}

bool UnixListener::listen(const std::string& path, std::string* err) {
    sockaddr_un addr;
    if (!fill_addr(path, &addr, err)) return false;

    Fd fd(::socket(AF_UNIX, SOCK_STREAM, 0));
    if (!fd.valid()) {
        if (err != nullptr) *err = std::strerror(errno);
        return false;
    }
    // A daemon killed with SIGKILL leaves its socket file behind; the
    // journal (not the socket) is the source of truth, so rebinding over
    // the stale path is always safe.
    ::unlink(path.c_str());
    if (::bind(fd.get(), reinterpret_cast<const sockaddr*>(&addr),
               sizeof addr) != 0 ||
        ::listen(fd.get(), 64) != 0) {
        if (err != nullptr) {
            *err = path + ": " + std::strerror(errno);
        }
        return false;
    }
    fd_ = std::move(fd);
    path_ = path;
    return true;
}

Fd UnixListener::accept() const {
    while (true) {
        const int c = ::accept(fd_.get(), nullptr, nullptr);
        if (c >= 0) return Fd(c);
        if (errno != EINTR) return Fd();
    }
}

void UnixListener::close() {
    fd_.reset();
    if (!path_.empty()) {
        ::unlink(path_.c_str());
        path_.clear();
    }
}

Fd unix_connect(const std::string& path, std::string* err) {
    sockaddr_un addr;
    if (!fill_addr(path, &addr, err)) return Fd();

    Fd fd(::socket(AF_UNIX, SOCK_STREAM, 0));
    if (!fd.valid()) {
        if (err != nullptr) *err = std::strerror(errno);
        return Fd();
    }
    if (::connect(fd.get(), reinterpret_cast<const sockaddr*>(&addr),
                  sizeof addr) != 0) {
        if (err != nullptr) {
            *err = path + ": " + std::strerror(errno);
        }
        return Fd();
    }
    return fd;
}

}  // namespace autovision::svc
