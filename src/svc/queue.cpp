#include "queue.hpp"

#include <sys/stat.h>

#include <algorithm>
#include <cerrno>
#include <cstring>

namespace autovision::svc {

namespace {

enum RecordTag : std::uint8_t {
    kRecSubmit = 1,
    kRecProgress = 2,
    kRecDone = 3,
    kRecCancel = 4,
};

}  // namespace

void PersistentQueue::apply_record(std::span<const std::uint8_t> payload) {
    // Replay is trusting within a record (the journal checksum already
    // vouched for the bytes) but tolerant across records: a record for an
    // unknown id or with an undecodable body is skipped, not fatal —
    // service availability beats one lost progress blob.
    rtlsim::SnapReader r(payload);
    switch (r.u8()) {
        case kRecSubmit: {
            JobSpec spec;
            if (!spec.decode(r) || spec.id == 0) return;
            QueueEntry e;
            e.spec = spec;
            entries_[spec.id] = std::move(e);
            next_id_ = std::max(next_id_, spec.id + 1);
            return;
        }
        case kRecProgress: {
            const std::uint64_t id = r.u64();
            const std::uint32_t ordinal = r.u32();
            std::vector<std::uint8_t> blob = r.bytes();
            if (!r.ok_so_far()) return;
            const auto it = entries_.find(id);
            if (it == entries_.end()) return;
            it->second.resume_blob.assign(blob.begin(), blob.end());
            it->second.checkpoints = ordinal;
            ++it->second.resumed;
            return;
        }
        case kRecDone: {
            const std::uint64_t id = r.u64();
            JobOutcome out;
            if (!out.decode(r)) return;
            const auto it = entries_.find(id);
            if (it == entries_.end()) return;
            it->second.finished = true;
            it->second.outcome = std::move(out);
            it->second.resume_blob.clear();
            return;
        }
        case kRecCancel: {
            const std::uint64_t id = r.u64();
            const auto it = entries_.find(id);
            if (it == entries_.end()) return;
            it->second.finished = true;
            it->second.cancelled = true;
            it->second.outcome.id = id;
            it->second.outcome.state = JobState::kCancelled;
            it->second.outcome.summary = "cancelled";
            return;
        }
        default: return;
    }
}

bool PersistentQueue::open(const std::string& dir, unsigned shards,
                           std::string* err) {
    if (shards == 0) shards = 1;
    if (::mkdir(dir.c_str(), 0755) != 0 && errno != EEXIST) {
        if (err != nullptr) *err = dir + ": " + std::strerror(errno);
        return false;
    }
    entries_.clear();
    writers_.clear();
    shard_mu_.clear();
    next_id_ = 1;
    torn_ = false;
    for (unsigned k = 0; k < shards; ++k) {
        auto w = std::make_unique<JournalWriter>();
        const std::string path =
            dir + "/shard-" + std::to_string(k) + ".jnl";
        if (!w->open(path,
                     [this](std::span<const std::uint8_t> p) {
                         apply_record(p);
                     },
                     err)) {
            return false;
        }
        torn_ = torn_ || w->recovery().torn;
        writers_.push_back(std::move(w));
        shard_mu_.push_back(std::make_unique<std::mutex>());
    }
    // A resume counter bumped during replay means "this job has prior
    // progress"; normalize so one crash = one resume, not one per record.
    for (auto& [id, e] : entries_) {
        e.resumed = e.finished ? 0 : (e.resumed != 0 ? 1 : 0);
    }
    return true;
}

std::uint64_t PersistentQueue::record_submit(JobSpec spec) {
    std::unique_lock lk(mu_);
    spec.id = next_id_++;
    QueueEntry e;
    e.spec = spec;
    entries_[spec.id] = e;
    const std::uint64_t id = spec.id;
    lk.unlock();

    rtlsim::SnapWriter w;
    w.u8(kRecSubmit);
    spec.encode(w);
    const std::lock_guard sl(*shard_mu_[id % writers_.size()]);
    if (!shard_for(id).append(w.buffer())) {
        std::lock_guard lk2(mu_);
        entries_.erase(id);
        return 0;
    }
    return id;
}

bool PersistentQueue::record_progress(std::uint64_t id,
                                      const std::string& blob) {
    std::uint32_t ordinal = 0;
    {
        const std::lock_guard lk(mu_);
        const auto it = entries_.find(id);
        if (it == entries_.end() || it->second.finished) return false;
        ordinal = ++it->second.checkpoints;
        it->second.resume_blob = blob;
    }
    rtlsim::SnapWriter w;
    w.u8(kRecProgress);
    w.u64(id);
    w.u32(ordinal);
    w.bytes(std::span<const std::uint8_t>(
        reinterpret_cast<const std::uint8_t*>(blob.data()), blob.size()));
    const std::lock_guard sl(*shard_mu_[id % writers_.size()]);
    return shard_for(id).append(w.buffer());
}

bool PersistentQueue::record_done(std::uint64_t id, const JobOutcome& out) {
    {
        const std::lock_guard lk(mu_);
        const auto it = entries_.find(id);
        if (it == entries_.end()) return false;
        it->second.finished = true;
        it->second.outcome = out;
        it->second.resume_blob.clear();
    }
    rtlsim::SnapWriter w;
    w.u8(kRecDone);
    w.u64(id);
    out.encode(w);
    const std::lock_guard sl(*shard_mu_[id % writers_.size()]);
    return shard_for(id).append(w.buffer());
}

bool PersistentQueue::record_cancel(std::uint64_t id) {
    {
        const std::lock_guard lk(mu_);
        const auto it = entries_.find(id);
        if (it == entries_.end() || it->second.finished) return false;
        it->second.finished = true;
        it->second.cancelled = true;
        it->second.outcome.id = id;
        it->second.outcome.state = JobState::kCancelled;
        it->second.outcome.summary = "cancelled";
    }
    rtlsim::SnapWriter w;
    w.u8(kRecCancel);
    w.u64(id);
    const std::lock_guard sl(*shard_mu_[id % writers_.size()]);
    return shard_for(id).append(w.buffer());
}

std::vector<std::uint64_t> PersistentQueue::unfinished() const {
    const std::lock_guard lk(mu_);
    std::vector<std::uint64_t> out;
    for (const auto& [id, e] : entries_) {
        if (!e.finished) out.push_back(id);
    }
    return out;  // std::map iteration: already submission (id) order
}

std::vector<std::uint64_t> PersistentQueue::ids() const {
    const std::lock_guard lk(mu_);
    std::vector<std::uint64_t> out;
    out.reserve(entries_.size());
    for (const auto& [id, e] : entries_) out.push_back(id);
    return out;
}

bool PersistentQueue::find(std::uint64_t id, QueueEntry* out) const {
    const std::lock_guard lk(mu_);
    const auto it = entries_.find(id);
    if (it == entries_.end()) return false;
    *out = it->second;
    return true;
}

std::size_t PersistentQueue::size() const {
    const std::lock_guard lk(mu_);
    return entries_.size();
}

}  // namespace autovision::svc
